package chameleon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"chameleon"
	"chameleon/internal/obs"
)

// runPhaseObserved traces the PHASE workload (the phasechange example as
// a registry benchmark) with every observability facility enabled and
// returns the observer plus the journal bytes.
func runPhaseObserved(t *testing.T, p int) (*chameleon.Observer, []byte, *chameleon.Output) {
	t.Helper()
	var journal bytes.Buffer
	o := chameleon.NewObserver(chameleon.ObsOptions{
		Metrics:       true,
		Journal:       &journal,
		TimelineRanks: p,
	})
	out, err := chameleon.RunBenchmark("PHASE", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := o.Journal.Err(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	return o, journal.Bytes(), out
}

// stateSequence compresses the journal's rank-0 transition stream into
// the run-length form stored in the golden file: "AT C L*39 ... F".
func stateSequence(events []obs.Event) string {
	var parts []string
	state, n := "", 0
	flush := func() {
		if n == 0 {
			return
		}
		if n == 1 {
			parts = append(parts, state)
		} else {
			parts = append(parts, fmt.Sprintf("%s*%d", state, n))
		}
	}
	for _, ev := range events {
		if ev.Kind != obs.KindTransition {
			continue
		}
		if ev.To == state {
			n++
			continue
		}
		flush()
		state, n = ev.To, 1
	}
	flush()
	return strings.Join(parts, " ")
}

// TestJournalGoldenPhaseChange locks the transition sequence the PHASE
// workload must produce — the Figure 3 walk: All-Tracing, one marker of
// Clustering, a Lead run per phase with a re-clustering at each phase
// change, and a final Finalize — against a golden file, and requires at
// least one phase-change flush in the journal.
func TestJournalGoldenPhaseChange(t *testing.T) {
	_, raw, _ := runPhaseObserved(t, 16)
	events, err := chameleon.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}

	got := stateSequence(events)
	const golden = "testdata/phase_states.golden"
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (regenerate by writing the FAIL output): %v", golden, err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Errorf("state sequence mismatch\n got: %s\nwant: %s", got, strings.TrimSpace(string(want)))
	}

	// The sequence must be the AT -> C -> L... walk ending in F, with a
	// re-clustering (another C) after the first Lead run.
	if !strings.HasPrefix(got, "AT C L") {
		t.Errorf("sequence does not start with AT C L: %s", got)
	}
	if !strings.HasSuffix(got, "F") {
		t.Errorf("sequence does not end in F: %s", got)
	}
	if strings.Count(got, "C") < 2 {
		t.Errorf("no re-clustering in sequence: %s", got)
	}

	flushes := map[string]int{}
	for _, ev := range events {
		if ev.Kind == obs.KindFlush {
			flushes[ev.Note]++
		}
	}
	if flushes[obs.FlushPhaseChange] < 1 {
		t.Errorf("no phase-change flush in journal: %v", flushes)
	}
	if flushes[obs.FlushFinal] != 1 {
		t.Errorf("want exactly one final flush: %v", flushes)
	}
}

// TestMetricsEndToEnd checks the acceptance criterion directly: a PHASE
// run emits nonzero mpi_*, core_*, cluster_*, and tracer_* series.
func TestMetricsEndToEnd(t *testing.T) {
	o, _, out := runPhaseObserved(t, 16)
	s := o.Reg.Snapshot()

	nonzero := func(name string) uint64 {
		if v, ok := s.Counters[name]; ok {
			return v
		}
		if v, ok := s.Gauges[name]; ok {
			return uint64(v)
		}
		if h, ok := s.Histograms[name]; ok {
			return h.Count
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	for _, name := range []string{
		"mpi_sendrecv_calls_total",
		"mpi_alltoall_calls_total",
		"mpi_marker_barrier_total",
		"mpi_compute_vtime_ns",
		"core_marker_calls_total",
		"core_votes_total",
		"core_transitions_L_total",
		"core_flushes_total",
		"core_window_events",
		"cluster_distance_ops_total",
		"cluster_working_set_items",
		"tracer_events_observed_total",
		"tracer_merge_steps_total",
	} {
		if nonzero(name) == 0 {
			t.Errorf("metric %s is zero", name)
		}
	}

	// Rank-0-scoped counters count collective steps, not rank-multiplied
	// steps: every executed marker engages (Freq=1) and all but the first
	// trigger a vote.
	markers := s.Counters["core_marker_calls_total"]
	if int(markers) != out.StateCalls["AT"]+out.StateCalls["C"]+out.StateCalls["L"] {
		t.Errorf("marker calls %d != state calls %v", markers, out.StateCalls)
	}
	if votes := s.Counters["core_votes_total"]; votes != markers-1 {
		t.Errorf("votes = %d, want %d", votes, markers-1)
	}
	if got := s.Gauges["core_reclusterings_total"]; got != 0 {
		t.Errorf("reclusterings registered as gauge: %d", got)
	}
	if got := s.Counters["core_reclusterings_total"]; int(got) != out.Reclusterings {
		t.Errorf("reclusterings = %d, want %d", got, out.Reclusterings)
	}
	if got := s.Gauges["core_lead_count"]; int(got) != len(out.Leads) {
		t.Errorf("lead count = %d, want %d", got, len(out.Leads))
	}
	if got := s.Gauges["run_makespan_vtime_ns"]; got != int64(out.Time) {
		t.Errorf("makespan gauge = %d, want %d", got, int64(out.Time))
	}
}

// TestTimelineEndToEnd checks the Chrome trace export of a real run:
// valid JSON, complete events only, every category present.
func TestTimelineEndToEnd(t *testing.T) {
	o, _, _ := runPhaseObserved(t, 16)
	var buf bytes.Buffer
	if err := o.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Cat string  `json:"cat"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur <= 0 {
			t.Fatalf("non-positive span duration: %+v", ev)
		}
		cats[ev.Cat]++
	}
	for _, cat := range []string{obs.CatCompute, obs.CatP2P, obs.CatColl, obs.CatMarker, obs.CatClustering, obs.CatTracer} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans in timeline: %v", cat, cats)
		}
	}
}

// TestObservabilityDeterministic: the virtual makespan must be identical
// with observability on and off — the layer charges no virtual time.
func TestObservabilityDeterministic(t *testing.T) {
	base, err := chameleon.RunBenchmark("PHASE", "A", 16, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	_, _, observed := runPhaseObserved(t, 16)
	if base.Time != observed.Time {
		t.Errorf("makespan changed under observability: %v vs %v", base.Time, observed.Time)
	}
	if base.Reclusterings != observed.Reclusterings {
		t.Errorf("reclusterings changed: %d vs %d", base.Reclusterings, observed.Reclusterings)
	}
}
