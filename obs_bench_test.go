package chameleon_test

import (
	"encoding/json"
	"io"
	"os"
	"testing"

	"chameleon"
)

// benchStencil is a small 2D Jacobi halo-exchange body (a cut-down
// examples/stencil) used to price the observability layer.
func benchStencil(p *chameleon.Proc) {
	const (
		rows, cols = 4, 4
		timesteps  = 40
		haloBytes  = 4096
	)
	w := p.World()
	rank := p.Rank()
	row, col := rank/cols, rank%cols
	for step := 0; step < timesteps; step++ {
		p.Compute(2 * chameleon.Millisecond)
		if row > 0 {
			w.Send(rank-cols, 1, haloBytes, nil)
		}
		if row < rows-1 {
			w.Send(rank+cols, 2, haloBytes, nil)
		}
		if row < rows-1 {
			w.Recv(rank+cols, 1)
		}
		if row > 0 {
			w.Recv(rank-cols, 2)
		}
		if col > 0 {
			w.Sendrecv(rank-1, 3, haloBytes, nil, rank-1, 4)
		}
		if col < cols-1 {
			w.Sendrecv(rank+1, 4, haloBytes, nil, rank+1, 3)
		}
		chameleon.Marker(p)
	}
}

func runBenchStencil(tb testing.TB, o *chameleon.Observer) *chameleon.Output {
	out, err := chameleon.Run(chameleon.Config{
		P:      16,
		Tracer: chameleon.TracerChameleon,
		K:      4,
		Obs:    o,
	}, benchStencil)
	if err != nil {
		tb.Fatalf("run: %v", err)
	}
	return out
}

func fullObserver() *chameleon.Observer {
	return chameleon.NewObserver(chameleon.ObsOptions{
		Metrics:       true,
		Journal:       io.Discard,
		TimelineRanks: 16,
	})
}

// BenchmarkObsOverhead prices the observability layer on the stencil
// workload: disabled is the nil-Observer fast path (one pointer test
// per site), enabled runs metrics + journal + timeline all at once.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, nil)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, fullObserver())
		}
	})
}

// TestObsBenchReport writes BENCH_obs.json when BENCH_OBS_OUT names a
// path (`make bench`): wall-clock ns/op with the layer enabled vs
// disabled, and the virtual makespans, which must match exactly — the
// layer charges no virtual time, so the <5% makespan criterion holds
// with zero margin.
func TestObsBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_OBS_OUT")
	if path == "" {
		t.Skip("set BENCH_OBS_OUT=BENCH_obs.json to write the report")
	}

	disabledOut := runBenchStencil(t, nil)
	enabledOut := runBenchStencil(t, fullObserver())
	if disabledOut.Time != enabledOut.Time {
		t.Fatalf("virtual makespan changed under observability: %v vs %v",
			disabledOut.Time, enabledOut.Time)
	}

	disabled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, nil)
		}
	})
	enabled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, fullObserver())
		}
	})

	report := map[string]any{
		"workload":               "stencil 4x4, 40 timesteps, chameleon tracer",
		"disabled_ns_op":         disabled.NsPerOp(),
		"enabled_ns_op":          enabled.NsPerOp(),
		"wallclock_overhead_pct": 100 * (float64(enabled.NsPerOp()) - float64(disabled.NsPerOp())) / float64(disabled.NsPerOp()),
		"makespan_vtime_ns":      int64(disabledOut.Time),
		"makespan_overhead_pct":  0.0,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s: disabled=%dns/op enabled=%dns/op", path, disabled.NsPerOp(), enabled.NsPerOp())
}
