// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (laptop-scale parameters; run `cmd/chamexp -full`
// for the paper-scale sweep), plus ablation benchmarks for the design
// choices DESIGN.md calls out and micro-benchmarks of the compression
// kernels.
//
//	go test -bench=. -benchmem
package chameleon_test

import (
	"fmt"
	"testing"

	"chameleon"
	"chameleon/internal/exp"
	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
)

// benchExperiment runs one experiment driver per iteration and reports
// nothing else; the driver's own output is the regenerated table.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	params := exp.Quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := run(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }

// --- ablations --------------------------------------------------------------

// BenchmarkAblationK sweeps the cluster budget: trace overhead against K
// (the paper fixes K per benchmark a priori; this shows the sensitivity).
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{1, 3, 9, 16} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := chameleon.RunBenchmark("LU", "B", 36, chameleon.TracerChameleon,
					&chameleon.Config{K: k})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Overhead.Seconds(), "virt-overhead-s/op")
			}
		})
	}
}

// BenchmarkAblationAlgo compares the clustering selectors (the paper:
// "the accuracy of traces is very close for these clustering
// algorithms").
func BenchmarkAblationAlgo(b *testing.B) {
	for _, algo := range []string{"k-farthest", "k-medoid", "k-random"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := chameleon.RunBenchmark("LU", "B", 36, chameleon.TracerChameleon,
					&chameleon.Config{Algo: algo})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.OverheadBy["cluster"].Seconds(), "virt-cluster-s/op")
			}
		})
	}
}

// BenchmarkAblationMarkerFreq sweeps the marker frequency (Figure 9's
// knob) on BT.
func BenchmarkAblationMarkerFreq(b *testing.B) {
	for _, freq := range []int{50, 25, 5, 1} {
		b.Run(fmt.Sprintf("freq%d", freq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := chameleon.RunBenchmark("BT", "B", 36, chameleon.TracerChameleon,
					&chameleon.Config{Freq: freq})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.OverheadBy["marker"].Seconds(), "virt-marker-s/op")
			}
		})
	}
}

// BenchmarkAblationVote isolates Algorithm 1's Reduce+Bcast vote cost.
func BenchmarkAblationVote(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := mpi.Run(mpi.Config{P: p}, func(proc *mpi.Proc) {
					for v := 0; v < 50; v++ {
						proc.MarkerComm().RawAllreduceU64(uint64(proc.Rank()), mpi.OpSum)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- microbenchmarks of the compression kernels -----------------------------

func benchEvent(site int) trace.Event {
	return trace.Event{
		Op:    mpi.OpSend,
		Stack: sig.Stack(sig.Mix(uint64(site))),
		Dest:  trace.Relative(1),
		Tag:   site,
		Bytes: 64,
	}
}

// BenchmarkIntraCompression measures the per-event cost of the online
// RSD/PRSD folding (a 40-site timestep pattern).
func BenchmarkIntraCompression(b *testing.B) {
	events := make([]trace.Event, 40)
	for i := range events {
		events[i] = benchEvent(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c trace.Compressor
		for rep := 0; rep < 50; rep++ {
			for _, ev := range events {
				c.AppendLeaf(trace.NewLeaf(ev, ranklist.SingleRank(0), 1000))
			}
		}
		if trace.DynamicEvents(c.Seq) != 40*50 {
			b.Fatal("compression lost events")
		}
	}
}

// BenchmarkInterNodeMerge measures one pairwise trace merge (the unit of
// the O(n² log P) reduction).
func BenchmarkInterNodeMerge(b *testing.B) {
	build := func(rank int) []*trace.Node {
		var c trace.Compressor
		for rep := 0; rep < 20; rep++ {
			for site := 0; site < 40; site++ {
				c.AppendLeaf(trace.NewLeaf(benchEvent(site), ranklist.SingleRank(rank), 1000))
			}
		}
		return c.Seq
	}
	a, bb := build(0), build(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trace.Merger{P: 4}
		if out := m.Merge(a, bb); len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkSignatureWindow measures the per-event signature accumulation
// every rank pays even when not tracing.
func BenchmarkSignatureWindow(b *testing.B) {
	events := make([]trace.Event, 16)
	for i := range events {
		events[i] = benchEvent(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := newBenchWindow()
		for rep := 0; rep < 100; rep++ {
			for _, ev := range events {
				w.Add(ev)
			}
		}
		if w.Triple().CallPath == 0 {
			b.Fatal("empty signature")
		}
	}
}

// BenchmarkRuntimeP2P measures the simulated runtime's raw message rate.
func BenchmarkRuntimeP2P(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(mpi.Config{P: 2}, func(p *mpi.Proc) {
			w := p.World()
			for m := 0; m < 1000; m++ {
				if p.Rank() == 0 {
					w.Send(1, 1, 64, nil)
				} else {
					w.Recv(0, 1)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd traces BT class A on 16 ranks under Chameleon — the
// full pipeline per iteration.
func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := chameleon.RunBenchmark("BT", "A", 16, chameleon.TracerChameleon, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out.Trace == nil {
			b.Fatal("no trace")
		}
	}
}

// newBenchWindow builds a signature window via the tracer package.
func newBenchWindow() *tracer.Window { return tracer.NewWindow(tracer.SigFull) }
