// Phasechange: demonstrate the transition graph under program phases. A
// multi-phase solver alternates between a halo-exchange phase and a
// transpose-collective phase; at each boundary the Call-Path signature
// changes, Chameleon flushes the lead traces into the online trace and
// re-clusters for the new phase — the behavior Figure 3 of the paper
// illustrates.
//
//	go run ./examples/phasechange
package main

import (
	"fmt"
	"log"

	"chameleon"
)

const (
	ranks          = 16
	stepsPerPhase  = 40
	phases         = 4
	bytesPerPacket = 8192
)

func solver(p *chameleon.Proc) {
	w := p.World()
	rank := p.Rank()
	next := (rank + 1) % p.Size()
	prev := (rank + p.Size() - 1) % p.Size()

	for phase := 0; phase < phases; phase++ {
		for step := 0; step < stepsPerPhase; step++ {
			p.Compute(1 * chameleon.Millisecond)
			if phase%2 == 0 {
				// Phase A: ring halo exchange.
				w.Sendrecv(next, 11, bytesPerPacket, nil, prev, 11)
				w.Sendrecv(prev, 12, bytesPerPacket, nil, next, 12)
			} else {
				// Phase B: transpose via all-to-all plus a reduction.
				w.Alltoall(bytesPerPacket / p.Size())
				w.Allreduce(8, uint64(rank), chameleon.OpSum)
			}
			chameleon.Marker(p)
		}
	}
}

func main() {
	// Untraced reference for the accuracy metric (markers excluded —
	// they only exist for Chameleon).
	app, err := chameleon.Run(chameleon.Config{P: ranks}, solverNoMarkers)
	if err != nil {
		log.Fatal(err)
	}

	out, err := chameleon.Run(chameleon.Config{
		P:      ranks,
		Tracer: chameleon.TracerChameleon,
		K:      3,
	}, solver)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phase-change solver: %d ranks, %d phases x %d steps\n", ranks, phases, stepsPerPhase)
	fmt.Printf("  makespan:       %v\n", out.Time)
	fmt.Printf("  overhead:       %v\n", out.Overhead)
	fmt.Printf("  states:         AT=%d C=%d L=%d F=%d\n",
		out.StateCalls["AT"], out.StateCalls["C"], out.StateCalls["L"], out.StateCalls["F"])
	fmt.Printf("  re-clusterings: %d (one per phase change, plus the first)\n", out.Reclusterings)

	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  replay:         %v (%d events)\n", rep.Time, rep.Events)
	fmt.Printf("  accuracy:       %.2f%% vs application\n",
		chameleon.Accuracy(chameleon.Duration(app.Time), rep.Time)*100)
}

// solverNoMarkers is the same program without the tool-inserted markers.
func solverNoMarkers(p *chameleon.Proc) {
	w := p.World()
	rank := p.Rank()
	next := (rank + 1) % p.Size()
	prev := (rank + p.Size() - 1) % p.Size()
	for phase := 0; phase < phases; phase++ {
		for step := 0; step < stepsPerPhase; step++ {
			p.Compute(1 * chameleon.Millisecond)
			if phase%2 == 0 {
				w.Sendrecv(next, 11, bytesPerPacket, nil, prev, 11)
				w.Sendrecv(prev, 12, bytesPerPacket, nil, next, 12)
			} else {
				w.Alltoall(bytesPerPacket / p.Size())
				w.Allreduce(8, uint64(rank), chameleon.OpSum)
			}
		}
	}
}
