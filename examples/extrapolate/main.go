// Extrapolate: record an application at two small scales, extrapolate
// its trace to a much larger machine, and predict the communication
// behavior there without ever running at that size — the ScalaExtrap
// workflow on top of Chameleon traces. Also reports the DVFS energy
// estimate of the paper's future-work section.
//
//	go run ./examples/extrapolate
package main

import (
	"fmt"
	"log"

	"chameleon"
	"chameleon/internal/extrap"
)

func main() {
	const (
		bench  = "BT"
		class  = "B"
		small  = 16
		medium = 36
		target = 144
	)

	// Trace the code at two affordable scales.
	runAt := func(p int) *chameleon.Output {
		out, err := chameleon.RunBenchmark(bench, class, p, chameleon.TracerChameleon, nil)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	at16 := runAt(small)
	at36 := runAt(medium)
	fmt.Printf("%s class %s traced at P=%d and P=%d\n", bench, class, small, medium)
	fmt.Printf("  energy (P=%d): %s\n", medium, at36.Energy.String())

	// Extrapolate structurally from the larger trace, fit timing from
	// both.
	predicted, err := extrap.Extrapolate(at36.Trace, target)
	if err != nil {
		log.Fatal(err)
	}
	if err := extrap.FitTiming(
		[]*chameleon.TraceFile{at16.Trace, at36.Trace}, predicted); err != nil {
		log.Fatal(err)
	}

	// Replay the prediction at the target scale.
	rep, err := chameleon.Replay(predicted, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  extrapolated to P=%d: replay %v, %d events\n", target, rep.Time, rep.Events)

	// Validate against an actual run at the target scale.
	actual := runAt(target)
	actualRep, err := chameleon.Replay(actual.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  actual run at P=%d:   replay %v, %d events\n", target, actualRep.Time, actualRep.Events)
	fmt.Printf("  event counts match:   %v\n", rep.Events == actualRep.Events)
	fmt.Printf("  makespan prediction:  %.2f%% accurate\n",
		chameleon.Accuracy(actualRep.Time, rep.Time)*100)
}
