// Stencil: trace a custom application — a 5-point Jacobi iteration on a
// non-periodic 2D process grid — written directly against the public
// runtime API, with Chameleon markers at timestep boundaries.
//
// Boundary ranks skip the exchanges their missing neighbors would serve,
// so the grid clusters into up to nine Call-Path classes (corners,
// edges, interior) exactly like the paper's LU and Sweep3D runs.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"chameleon"
)

const (
	rows, cols = 6, 6
	ranks      = rows * cols
	timesteps  = 120
	haloBytes  = 4096
)

// jacobi is the per-rank program.
func jacobi(p *chameleon.Proc) {
	w := p.World()
	rank := p.Rank()
	row, col := rank/cols, rank%cols

	for step := 0; step < timesteps; step++ {
		// Local relaxation sweep.
		p.Compute(2 * chameleon.Millisecond)

		// Halo exchange with the existing neighbors (tag per direction).
		if row > 0 {
			w.Send(rank-cols, 1, haloBytes, nil)
		}
		if row < rows-1 {
			w.Send(rank+cols, 2, haloBytes, nil)
		}
		if col > 0 {
			w.Send(rank-1, 3, haloBytes, nil)
		}
		if col < cols-1 {
			w.Send(rank+1, 4, haloBytes, nil)
		}
		if row < rows-1 {
			w.Recv(rank+cols, 1)
		}
		if row > 0 {
			w.Recv(rank-cols, 2)
		}
		if col < cols-1 {
			w.Recv(rank+1, 3)
		}
		if col > 0 {
			w.Recv(rank-1, 4)
		}

		// Global residual every step.
		w.Allreduce(8, uint64(rank), chameleon.OpSum)

		// Chameleon marker at the timestep boundary.
		chameleon.Marker(p)
	}
}

func main() {
	out, err := chameleon.Run(chameleon.Config{
		P:      ranks,
		Tracer: chameleon.TracerChameleon,
		K:      9,
	}, jacobi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jacobi %dx%d, %d steps\n", rows, cols, timesteps)
	fmt.Printf("  makespan:        %v\n", out.Time)
	fmt.Printf("  overhead:        %v\n", out.Overhead)
	fmt.Printf("  states:          AT=%d C=%d L=%d F=%d\n",
		out.StateCalls["AT"], out.StateCalls["C"], out.StateCalls["L"], out.StateCalls["F"])
	fmt.Printf("  call-path groups: %d (corners, edges, interior)\n", out.CallPathClusters)
	fmt.Printf("  lead ranks:      %v\n", out.Leads)

	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  replay:          %v (%d events)\n", rep.Time, rep.Events)
}
