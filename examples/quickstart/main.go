// Quickstart: trace one of the paper's benchmarks under Chameleon and
// under plain ScalaTrace, compare their overheads, replay the clustered
// trace and compute the paper's accuracy metric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chameleon"
)

func main() {
	const (
		bench = "LU"
		class = "C"
		ranks = 32
	)

	// The uninstrumented application sets the baseline time.
	app, err := chameleon.RunBenchmark(bench, class, ranks, chameleon.TracerNone, nil)
	if err != nil {
		log.Fatal(err)
	}

	// ScalaTrace: every rank traces, one P-way merge in MPI_Finalize.
	st, err := chameleon.RunBenchmark(bench, class, ranks, chameleon.TracerScalaTrace, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Chameleon: online clustering with K lead ranks.
	ch, err := chameleon.RunBenchmark(bench, class, ranks, chameleon.TracerChameleon, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s class %s on %d simulated ranks\n", bench, class, ranks)
	fmt.Printf("  application makespan:   %v\n", app.Time)
	fmt.Printf("  ScalaTrace overhead:    %v\n", st.Overhead)
	fmt.Printf("  Chameleon overhead:     %v  (%.1fx lower)\n",
		ch.Overhead, float64(st.Overhead)/float64(ch.Overhead))
	fmt.Printf("  transition graph:       AT=%d C=%d L=%d F=%d\n",
		ch.StateCalls["AT"], ch.StateCalls["C"], ch.StateCalls["L"], ch.StateCalls["F"])
	fmt.Printf("  lead ranks:             %v (of %d Call-Path classes)\n",
		ch.Leads, ch.CallPathClusters)

	// Replay both traces; clustered replay re-interprets each lead trace
	// on every rank of its cluster.
	stRep, err := chameleon.Replay(st.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	chRep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  replay (ScalaTrace):    %v\n", stRep.Time)
	fmt.Printf("  replay (Chameleon):     %v\n", chRep.Time)
	fmt.Printf("  accuracy vs ScalaTrace: %.2f%%\n",
		chameleon.Accuracy(stRep.Time, chRep.Time)*100)
	fmt.Printf("  accuracy vs app:        %.2f%%\n",
		chameleon.Accuracy(chameleon.Duration(app.Time), chRep.Time)*100)
}
