// Masterworker: trace a bag-of-tasks pipeline (the shape of the paper's
// ElasticMedFlow workload) written against the public API. Rank 0 deals
// tasks from a wildcard receive loop; workers request, receive and
// process. Master and workers form two Call-Path classes, so Chameleon
// clusters the run with K=2 — and the master's replies are recorded with
// the reply-to-last-source encoding, keeping the clustered trace
// replayable even though the matching order is dynamic.
//
//	go run ./examples/masterworker
package main

import (
	"fmt"
	"log"

	"chameleon"
)

const (
	ranks     = 16
	rounds    = 120
	taskBytes = 16384
	tagReq    = 7
	tagTask   = 8
)

func pipeline(p *chameleon.Proc) {
	w := p.World()
	for round := 0; round < rounds; round++ {
		if p.Rank() == 0 {
			// Master: serve one task per worker per round, in whatever
			// order requests arrive.
			for i := 0; i < p.Size()-1; i++ {
				msg := w.Recv(chameleon.AnySource, tagReq)
				w.Send(msg.Source, tagTask, taskBytes, nil)
			}
		} else {
			w.Send(0, tagReq, 64, nil)
			w.Recv(0, tagTask)
			p.Compute(4 * chameleon.Millisecond) // process the task
		}
		if (round+1)%10 == 0 {
			chameleon.Marker(p)
		}
	}
}

func main() {
	out, err := chameleon.Run(chameleon.Config{
		P:      ranks,
		Tracer: chameleon.TracerChameleon,
		K:      2,
	}, pipeline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("master/worker: %d ranks, %d rounds\n", ranks, rounds)
	fmt.Printf("  makespan:   %v\n", out.Time)
	fmt.Printf("  overhead:   %v\n", out.Overhead)
	fmt.Printf("  states:     AT=%d C=%d L=%d F=%d\n",
		out.StateCalls["AT"], out.StateCalls["C"], out.StateCalls["L"], out.StateCalls["F"])
	fmt.Printf("  call-paths: %d (master vs workers)\n", out.CallPathClusters)
	fmt.Printf("  leads:      %v\n", out.Leads)

	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  replay:     %v (%d events)\n", rep.Time, rep.Events)
	fmt.Printf("  accuracy:   %.2f%% vs traced run\n",
		chameleon.Accuracy(chameleon.Duration(out.Time), rep.Time)*100)
}
