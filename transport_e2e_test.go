// Cross-backend determinism and failover e2e for the TCP transport.
//
// The transport contract is that virtual time is program-derived, so
// socket scheduling can never leak into results: the same seeded run
// must produce bit-identical merged traces whether all P ranks share a
// process or are split across a TCP fleet. These tests pin that at
// three levels — in-test fleets over localhost (canonical structure,
// signature identity, causal edge counts, zan closed-form stats), the
// literal acceptance scenario of two OS processes × four ranks each
// (re-exec of the test binary, byte-compared trace files), and a
// crash-failover run where one member's process SIGKILLs itself
// mid-run and the surviving member completes with the departure
// journaled and the dead leads failed over — over real sockets.
package chameleon_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/fleet"
	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/zan"
)

// freeJoinAddr grabs an ephemeral localhost port for a rendezvous.
func freeJoinAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fleetMemberOut is one member's view of a fleet run.
type fleetMemberOut struct {
	out   *chameleon.Output
	edges int
}

// runTCPFleetBenchmark splits a P-rank benchmark across in-test TCP
// members (one goroutine-hosted transport per [lo,hi] range, real
// sockets between them) and returns each member's output.
func runTCPFleetBenchmark(t *testing.T, bench, class string, p int, members [][2]int) []fleetMemberOut {
	t.Helper()
	addr := freeJoinAddr(t)
	fp := fmt.Sprintf("%s/%s/p%d", bench, class, p)
	outs := make([]fleetMemberOut, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			observer := chameleon.NewObserver(chameleon.ObsOptions{CausalRanks: p})
			tr, err := mpi.NewTCPTransport(mpi.TCPOptions{
				Join: addr, RankLo: lo, RankHi: hi, P: p, Fingerprint: fp,
			})
			if err != nil {
				errs[i] = err
				return
			}
			out, err := chameleon.RunBenchmark(bench, class, p, chameleon.TracerChameleon,
				&chameleon.Config{Obs: observer, Transport: tr})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = fleetMemberOut{out: out, edges: observer.Causal.EdgeCount()}
		}(i, m[0], m[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fleet member %d (ranks %d..%d): %v", i, members[i][0], members[i][1], err)
		}
	}
	return outs
}

// canonTrace renders a merged trace with the golden-test canonicalizer
// (sites renumbered in first-seen order) for diffable failures.
func canonTrace(out *chameleon.Output) string {
	var b strings.Builder
	canonSeq(&b, out.Trace.Nodes, 0, map[uint64]int{})
	return b.String()
}

// traceBinary serializes a merged trace in the compact binary format
// (site table included), the strongest byte-level identity check.
func traceBinary(t testing.TB, out *chameleon.Output) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := out.Trace.WriteBinary(&buf); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	return buf.Bytes()
}

// TestTransportCrossBackendDeterminism: same seeded benchmark, P=8, run
// in-process and as a 2×4-rank TCP fleet. The merged traces must agree
// in canonical structure and raw signature bytes, the causal edge
// totals must match (each member records the edges its ranks close),
// and the zan closed-form stats must be identical — the compressed
// representation, not just the makespan, is transport-invariant.
func TestTransportCrossBackendDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet runs are not short")
	}
	for _, bench := range []string{"PHASE", "STENCIL"} {
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			const p = 8
			observer := chameleon.NewObserver(chameleon.ObsOptions{CausalRanks: p})
			inproc, err := chameleon.RunBenchmark(bench, "A", p, chameleon.TracerChameleon,
				&chameleon.Config{Obs: observer})
			if err != nil {
				t.Fatal(err)
			}
			outs := runTCPFleetBenchmark(t, bench, "A", p, [][2]int{{0, 3}, {4, 7}})

			if got, want := outs[0].out.Time, inproc.Time; got != want {
				t.Errorf("fleet makespan %v, want in-process %v", got, want)
			}
			if got, want := canonTrace(outs[0].out), canonTrace(inproc); got != want {
				t.Errorf("canonical trace structure diverged across backends:\nfleet:\n%s\nin-process:\n%s", got, want)
			}
			if !bytes.Equal(traceBinary(t, outs[0].out), traceBinary(t, inproc)) {
				t.Errorf("binary trace bytes (signatures included) diverged across backends")
			}
			fleetEdges := 0
			for _, m := range outs {
				fleetEdges += m.edges
			}
			if want := observer.Causal.EdgeCount(); fleetEdges != want {
				t.Errorf("fleet causal edges = %d (summed over members), want %d", fleetEdges, want)
			}
			// Analyze the serialized artifact, not the in-memory tree:
			// cross-process merge traffic rides the binary trace codec,
			// whose delta histograms quantize, so in-memory stats can
			// differ in the 7th digit while the persisted traces (and
			// everything computed from them) are bit-identical.
			reload := func(raw []byte) *chameleon.TraceFile {
				f, err := trace.ReadBinary(bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				return f
			}
			fleetZan, err := zan.Analyze(reload(traceBinary(t, outs[0].out)), zan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			inprocZan, err := zan.Analyze(reload(traceBinary(t, inproc)), zan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fleetZan, inprocZan) {
				t.Errorf("zan closed-form stats diverged across backends:\n%v", zan.Diff(fleetZan, inprocZan, 0))
			}
		})
	}
}

// Re-exec plumbing: the acceptance scenario wants genuine OS processes.
// TestTransportFleetChild is not a test — it is the body of a child
// process, gated behind an env var so a plain `go test` never runs it.
const (
	childEnv    = "CHAMELEON_FLEET_CHILD"
	childJoin   = "CHAMELEON_FLEET_JOIN"
	childRanks  = "CHAMELEON_FLEET_RANKS"
	childOut    = "CHAMELEON_FLEET_OUT"
	childFaults = "CHAMELEON_FLEET_FAULTS"
)

func TestTransportFleetChild(t *testing.T) {
	if os.Getenv(childEnv) == "" {
		t.Skip("fleet child helper; driven by the subprocess tests")
	}
	const p = 8
	var injector *chameleon.FaultInjector
	if spec := os.Getenv(childFaults); spec != "" {
		plan, err := chameleon.ParseFaultPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		injector, err = chameleon.NewFaultInjector(plan, 1, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	tr, info, err := fleet.Connect(fleet.Options{
		Join:        os.Getenv(childJoin),
		Ranks:       os.Getenv(childRanks),
		P:           p,
		Fingerprint: "subprocess-e2e",
		ExitOnCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := chameleon.RunBenchmark("STENCIL", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Transport: tr, Fault: injector})
	if err != nil {
		t.Fatal(err)
	}
	if info.HostsRank0 {
		if path := os.Getenv(childOut); path != "" {
			if err := out.Trace.SaveBinary(path); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// spawnFleetChild re-execs the test binary as one fleet member.
func spawnFleetChild(t *testing.T, join, ranks, out, faults string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestTransportFleetChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		childEnv+"=1", childJoin+"="+join, childRanks+"="+ranks,
		childOut+"="+out, childFaults+"="+faults)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	t.Cleanup(func() {
		if t.Failed() && buf.Len() > 0 {
			t.Logf("child %s output:\n%s", ranks, buf.String())
		}
	})
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestTransportSubprocessBitIdentical is the literal acceptance check:
// two OS processes × four ranks each, seeded STENCIL, and the merged
// trace file is byte-identical to the one an 8-rank in-process run of
// a third process writes.
func TestTransportSubprocessBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	join := freeJoinAddr(t)
	fleetTrace := filepath.Join(dir, "fleet.trace")
	a := spawnFleetChild(t, join, "0..3", fleetTrace, "")
	b := spawnFleetChild(t, join, "4..7", "", "")
	if err := a.Wait(); err != nil {
		t.Fatalf("rank 0..3 member: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("rank 4..7 member: %v", err)
	}

	inproc, err := chameleon.RunBenchmark("STENCIL", "A", 8, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := traceBinary(t, inproc)
	got, err := os.ReadFile(fleetTrace)
	if err != nil {
		t.Fatalf("the rank-0 member did not write its trace: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet trace (%d B) is not byte-identical to the in-process trace (%d B)", len(got), len(want))
	}
}

// TestTransportCrashFailover: the member hosting ranks 4..7 runs a
// crash plan that kills all four of its ranks, so its process SIGKILLs
// itself mid-run. The surviving in-test member must complete the run
// over sockets, report the departed ranks, journal the peer loss as a
// planned fault, and fail over the dead leads.
func TestTransportCrashFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const p = 8
	const faults = "crash rank=4 at marker=3; crash rank=5 at marker=3; crash rank=6 at marker=3; crash rank=7 at marker=3"
	join := freeJoinAddr(t)
	child := spawnFleetChild(t, join, "4..7", "", faults)
	childDone := make(chan error, 1)
	go func() { childDone <- child.Wait() }()

	plan, err := chameleon.ParseFaultPlan(faults)
	if err != nil {
		t.Fatal(err)
	}
	injector, err := chameleon.NewFaultInjector(plan, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	observer := chameleon.NewObserver(chameleon.ObsOptions{Journal: &journal})
	tr, _, err := fleet.Connect(fleet.Options{
		Join: join, Ranks: "0..3", P: p, Fingerprint: "subprocess-e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := chameleon.RunBenchmark("STENCIL", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: observer, Transport: tr, Fault: injector})
	if err != nil {
		t.Fatalf("surviving member: %v", err)
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(out.Departed, want) {
		t.Fatalf("departed = %v, want %v", out.Departed, want)
	}
	assertSurvivorCoverage(t, out)

	kinds := journalKinds(t, journal.Bytes())
	if kinds[obsKindFault] == 0 {
		t.Errorf("no %q events journaled for the dead member (journal: %s)", obsKindFault, journal.String())
	}
	if kinds[obsKindFailover] == 0 {
		t.Errorf("no %q events journaled after losing leads 4,5,7", obsKindFailover)
	}
	if !strings.Contains(journal.String(), "peer-exit") {
		t.Errorf("journal does not attribute the loss to the peer process leaving:\n%s", journal.String())
	}

	// The dead member must actually be dead — killed by its own hand
	// (SIGKILL), not exited cleanly.
	select {
	case err := <-childDone:
		if err == nil {
			t.Errorf("crashed member exited cleanly; want SIGKILL")
		}
	case <-time.After(30 * time.Second):
		t.Errorf("crashed member still running 30s after the survivor finished")
	}
}

const (
	obsKindFault    = "fault"
	obsKindFailover = "lead_failover"
)
