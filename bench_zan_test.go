// Zan benchmark harness: prices the compressed-domain analysis engine
// against the replay-based reference on real skeleton traces. The
// headline claim (ISSUE 7): on PHASE and SWEEP3D traces scaled to 100x
// their iteration counts, zan computes the same metrics the replayer
// would derive while being >=10x faster and allocating >=10x less —
// and its cost stays flat as the iteration counts grow, because it
// multiplies per-iteration contributions instead of expanding loops.
//
// `make bench-zan` runs TestZanBenchReport, which measures both paths
// under testing.Benchmark and writes BENCH_zan.json.
//
//	go test -bench 'BenchmarkCompressedAnalysis' -benchmem
package chameleon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/trace"
	"chameleon/internal/zan"
)

// zanBenchApps maps report keys to the benchmark runs being analyzed.
// SWEEP3D is registered under its short name S3D in the facade.
var zanBenchApps = map[string]struct {
	bench string
	class string
}{
	"PHASE":   {bench: "PHASE", class: "A"},
	"SWEEP3D": {bench: "S3D", class: "A"},
}

// zanBenchTrace produces the trace under analysis: the skeleton run
// through the Chameleon online tracer at P=16, with every top-level
// loop's iteration count scaled by k ("the same program, k times
// longer" — the compressed representation keeps its exact size).
func zanBenchTrace(tb testing.TB, bench, class string, k uint64) *trace.File {
	tb.Helper()
	out, err := chameleon.RunBenchmark(bench, class, 16, chameleon.TracerChameleon, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if k == 1 {
		return out.Trace
	}
	return scaleTopIters(out.Trace, k)
}

// benchZanAnalyze measures the closed-form compressed-domain walk.
func benchZanAnalyze(b *testing.B, f *trace.File) {
	opts := zan.Options{Model: chameleon.DefaultModel()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := zan.Analyze(f, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Events == 0 {
			b.Fatal("no events analyzed")
		}
	}
}

// benchReplay measures the replay-based reference: simulated
// re-execution of every dynamic event, linear in the expanded trace.
func benchReplay(b *testing.B, f *trace.File) {
	model := chameleon.DefaultModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chameleon.Replay(f, model)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("no events replayed")
		}
	}
}

func BenchmarkCompressedAnalysis(b *testing.B) {
	for app, cfg := range zanBenchApps {
		f := zanBenchTrace(b, cfg.bench, cfg.class, 100)
		b.Run(app+"/zan", func(b *testing.B) { benchZanAnalyze(b, f) })
		b.Run(app+"/replay", func(b *testing.B) { benchReplay(b, f) })
	}
}

// TestZanBenchReport (gated by BENCH_ZAN_OUT, run via `make bench-zan`)
// measures zan vs. replay on PHASE and SWEEP3D at their recorded
// iteration counts and at 100x, verifies the metrics agree (expansion
// oracle field by field plus the replayed event count), and writes
// BENCH_zan.json. It fails unless, at 100x, zan is >=10x faster and
// allocates >=10x less than replay — and unless zan's cost stayed flat
// (<=3x) across the 100x scaling while replay's grew >=10x.
func TestZanBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_ZAN_OUT")
	if out == "" {
		t.Skip("set BENCH_ZAN_OUT to write BENCH_zan.json")
	}
	type row struct {
		Events      uint64       `json:"dynamic_events"`
		StoredNodes int          `json:"stored_nodes"`
		Zan         benchNumbers `json:"zan"`
		Replay      benchNumbers `json:"replay"`
		Speedup     string       `json:"zan_speedup"`
		AllocsRatio string       `json:"zan_alloc_reduction"`
	}
	report := struct {
		Note string                    `json:"note"`
		Apps map[string]map[string]row `json:"apps"`
	}{
		Note: "zan = one compressed walk (internal/zan); replay = simulated re-execution of every dynamic event; traces are P=16 Chameleon online traces, x100 scales every top-level loop's iteration count",
		Apps: map[string]map[string]row{},
	}
	measure := func(f *trace.File) row {
		rep, err := analysis.CrossCheck(f, chameleon.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		zr := testing.Benchmark(func(b *testing.B) { benchZanAnalyze(b, f) })
		rr := testing.Benchmark(func(b *testing.B) { benchReplay(b, f) })
		ratio := func(num, den int64) string {
			if den == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.1fx", float64(num)/float64(den))
		}
		return row{
			Events:      rep.Events,
			StoredNodes: rep.StoredNodes,
			Zan: benchNumbers{NsPerOp: zr.NsPerOp(), AllocsPerOp: zr.AllocsPerOp(),
				BytesPerOp: zr.AllocedBytesPerOp(), Events: rep.Events},
			Replay: benchNumbers{NsPerOp: rr.NsPerOp(), AllocsPerOp: rr.AllocsPerOp(),
				BytesPerOp: rr.AllocedBytesPerOp(), Events: rep.Events},
			Speedup:     ratio(rr.NsPerOp(), zr.NsPerOp()),
			AllocsRatio: ratio(rr.AllocsPerOp(), zr.AllocsPerOp()),
		}
	}
	for app, cfg := range zanBenchApps {
		base := measure(zanBenchTrace(t, cfg.bench, cfg.class, 1))
		scaled := measure(zanBenchTrace(t, cfg.bench, cfg.class, 100))
		report.Apps[app] = map[string]row{"x1": base, "x100": scaled}
		t.Logf("%s x1:   %d events, zan %d ns/op %d allocs, replay %d ns/op %d allocs",
			app, base.Events, base.Zan.NsPerOp, base.Zan.AllocsPerOp,
			base.Replay.NsPerOp, base.Replay.AllocsPerOp)
		t.Logf("%s x100: %d events, zan %d ns/op %d allocs, replay %d ns/op %d allocs (%s faster, %s fewer allocs)",
			app, scaled.Events, scaled.Zan.NsPerOp, scaled.Zan.AllocsPerOp,
			scaled.Replay.NsPerOp, scaled.Replay.AllocsPerOp,
			scaled.Speedup, scaled.AllocsRatio)
		if scaled.Replay.NsPerOp < 10*scaled.Zan.NsPerOp {
			t.Errorf("%s x100: zan %d ns/op is not >=10x faster than replay %d ns/op",
				app, scaled.Zan.NsPerOp, scaled.Replay.NsPerOp)
		}
		if scaled.Replay.AllocsPerOp < 10*scaled.Zan.AllocsPerOp {
			t.Errorf("%s x100: zan %d allocs/op is not >=10x below replay %d allocs/op",
				app, scaled.Zan.AllocsPerOp, scaled.Replay.AllocsPerOp)
		}
		if scaled.Zan.NsPerOp > 3*base.Zan.NsPerOp {
			t.Errorf("%s: zan cost grew %d -> %d ns/op across x100 scaling; the compressed walk must stay flat",
				app, base.Zan.NsPerOp, scaled.Zan.NsPerOp)
		}
		if scaled.Replay.NsPerOp < 10*base.Replay.NsPerOp {
			t.Errorf("%s: replay cost %d -> %d ns/op did not grow >=10x with the events; harness is not measuring the expansion",
				app, base.Replay.NsPerOp, scaled.Replay.NsPerOp)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
