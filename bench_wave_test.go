package chameleon_test

// Wave-detector pricing harness: the idle-wave detector is a post-hoc
// analysis over the causal edge stream, and its cost must stay a
// rounding error next to the replay-based analyses it complements. The
// headline claim (ISSUE 8): on a noise-injected STENCIL run, wave.Detect
// costs <5% of replaying the same run's trace, and its cost scales
// linearly as the edge stream grows.
//
// `make bench-wave` runs TestWaveBenchReport, which writes
// BENCH_wave.json.
//
//	go test -bench 'BenchmarkWaveDetect' -benchmem

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"chameleon"
	"chameleon/internal/obs"
	"chameleon/internal/trace"
	"chameleon/internal/wave"
)

const waveBenchP = 13

// waveBenchRun produces the inputs under measurement: a noise-pulsed
// sync-free STENCIL run traced by the Chameleon tracer with causal
// capture, yielding both the edge stream (detector input) and the
// compressed trace (replay baseline).
func waveBenchRun(tb testing.TB) ([]obs.Edge, *trace.File) {
	tb.Helper()
	plan, err := chameleon.ParseNoisePlan("periodic ranks=5 start=400ms period=200ms extra=80ms count=1", waveBenchP, 7)
	if err != nil {
		tb.Fatal(err)
	}
	injector, err := chameleon.NewFaultInjector(plan, 7, waveBenchP)
	if err != nil {
		tb.Fatal(err)
	}
	o := chameleon.NewObserver(chameleon.ObsOptions{CausalRanks: waveBenchP})
	res, err := chameleon.RunBenchmark("STENCIL", "A", waveBenchP, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o, Fault: injector, SyncEvery: -1})
	if err != nil {
		tb.Fatal(err)
	}
	return o.Causal.Edges(), res.Trace
}

// tileEdges lays k time-shifted copies of the edge stream end to end:
// the same run, k times longer, with the wave pattern recurring once
// per copy — a linear scaling axis for the detector.
func tileEdges(edges []obs.Edge, k int) []obs.Edge {
	var span int64
	for _, e := range edges {
		if e.RecvVT > span {
			span = e.RecvVT
		}
	}
	span++
	out := make([]obs.Edge, 0, len(edges)*k)
	for i := 0; i < k; i++ {
		shift := int64(i) * span
		for _, e := range edges {
			e.SendVT += shift
			e.ArriveVT += shift
			e.RecvVT += shift
			out = append(out, e)
		}
	}
	return out
}

func benchWaveDetect(b *testing.B, edges []obs.Edge) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := wave.Detect(edges, wave.Options{P: waveBenchP})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Waves) == 0 {
			b.Fatal("no waves detected")
		}
	}
}

func BenchmarkWaveDetect(b *testing.B) {
	edges, _ := waveBenchRun(b)
	for _, k := range []int{1, 4, 16} {
		tiled := tileEdges(edges, k)
		b.Run(fmt.Sprintf("x%d", k), func(b *testing.B) { benchWaveDetect(b, tiled) })
	}
}

// TestWaveBenchReport (gated by BENCH_WAVE_OUT, run via `make
// bench-wave`) prices wave.Detect against replaying the same run's
// trace and across a 16x edge-stream scaling, and writes
// BENCH_wave.json. It fails if detection on the run's own edges costs
// more than 5% of the replay.
func TestWaveBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_WAVE_OUT")
	if out == "" {
		t.Skip("set BENCH_WAVE_OUT to write BENCH_wave.json")
	}
	edges, f := waveBenchRun(t)

	report := struct {
		Note         string                  `json:"note"`
		Edges        int                     `json:"edges"`
		Replay       benchNumbers            `json:"replay"`
		Detect       map[string]benchNumbers `json:"detect"`
		DetectShare  string                  `json:"detect_share_of_replay"`
		ShareCeiling string                  `json:"share_ceiling"`
	}{
		Note:   "detect = wave.Detect over the causal edge stream of a noise-pulsed sync-free STENCIL run (P=13, Chameleon tracer); replay = simulated re-execution of the same run's trace; xN tiles the edge stream N times",
		Edges:  len(edges),
		Detect: map[string]benchNumbers{},
	}

	model := chameleon.DefaultModel()
	rr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := chameleon.Replay(f, model)
			if err != nil {
				b.Fatal(err)
			}
			if res.Events == 0 {
				b.Fatal("no events replayed")
			}
		}
	})
	report.Replay = benchNumbers{NsPerOp: rr.NsPerOp(), AllocsPerOp: rr.AllocsPerOp(), BytesPerOp: rr.AllocedBytesPerOp()}

	var base int64
	for _, k := range []int{1, 4, 16} {
		tiled := tileEdges(edges, k)
		dr := testing.Benchmark(func(b *testing.B) { benchWaveDetect(b, tiled) })
		key := fmt.Sprintf("x%d", k)
		report.Detect[key] = benchNumbers{NsPerOp: dr.NsPerOp(), AllocsPerOp: dr.AllocsPerOp(), BytesPerOp: dr.AllocedBytesPerOp()}
		t.Logf("detect %s: %d edges, %d ns/op, %d allocs/op", key, len(tiled), dr.NsPerOp(), dr.AllocsPerOp())
		if k == 1 {
			base = dr.NsPerOp()
		}
	}
	share := float64(base) / float64(rr.NsPerOp())
	report.DetectShare = fmt.Sprintf("%.2f%%", share*100)
	report.ShareCeiling = "5%"
	t.Logf("replay: %d ns/op; detect x1 is %s of replay", rr.NsPerOp(), report.DetectShare)
	if share > 0.05 {
		t.Errorf("wave.Detect costs %s of the replay time; the detector must stay below 5%%", report.DetectShare)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
