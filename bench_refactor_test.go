// Refactor benchmark harness: prices the hot tracing path — per-event
// record (stack capture, window signatures, intra-node compression) and
// the pairwise inter-node merge — on the PHASE and STENCIL event shapes.
// `make bench-refactor` runs TestRefactorBenchReport, which executes the
// same pipelines under testing.Benchmark and writes BENCH_refactor.json
// with the measured ns/op and allocs/op next to the baseline recorded on
// main before the call-site interning refactor.
//
//	go test -bench 'BenchmarkRecordCompressMerge' -benchmem
package chameleon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// The per-step MPI call shapes of the two fault-suite skeletons. Each
// entry is recorded through its own call site (siteFns below) so the
// stack-signature machinery sees genuinely distinct backtraces, like the
// distinct w.Send/w.Recv lines of the real apps.
var (
	// PHASE halo phase: two Sendrecv exchanges per step.
	phaseShape = []mpi.CallInfo{
		{Op: mpi.OpSendrecv, Comm: mpi.CommWorld, Dest: 1, Src: 3, Root: mpi.NoPeer, Tag: 11, Bytes: 8192},
		{Op: mpi.OpSendrecv, Comm: mpi.CommWorld, Dest: 3, Src: 1, Root: mpi.NoPeer, Tag: 12, Bytes: 8192},
	}
	// STENCIL interior rank: four halo sends, four receives, one
	// allreduce per step.
	stencilShape = []mpi.CallInfo{
		{Op: mpi.OpSend, Comm: mpi.CommWorld, Dest: 1, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 1, Bytes: 4096},
		{Op: mpi.OpSend, Comm: mpi.CommWorld, Dest: 2, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 2, Bytes: 4096},
		{Op: mpi.OpSend, Comm: mpi.CommWorld, Dest: 3, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 3, Bytes: 4096},
		{Op: mpi.OpSend, Comm: mpi.CommWorld, Dest: 0, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 4, Bytes: 4096},
		{Op: mpi.OpRecv, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: 2, Root: mpi.NoPeer, Tag: 1, Bytes: 4096},
		{Op: mpi.OpRecv, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: 1, Root: mpi.NoPeer, Tag: 2, Bytes: 4096},
		{Op: mpi.OpRecv, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: 0, Root: mpi.NoPeer, Tag: 3, Bytes: 4096},
		{Op: mpi.OpRecv, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: 3, Root: mpi.NoPeer, Tag: 4, Bytes: 4096},
		{Op: mpi.OpAllreduce, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: mpi.NoPeer, Root: mpi.NoPeer, Bytes: 8},
	}
)

// siteFns gives every pattern position its own call site: each function
// invokes Record from a distinct source line, so runtime backtraces (and
// therefore stack signatures) differ per position exactly as they do
// across the distinct MPI call lines of a real application.
//
//go:noinline
func recSite0(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite1(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite2(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite3(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite4(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite5(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite6(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite7(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

//go:noinline
func recSite8(r *tracer.Recorder, ci *mpi.CallInfo, t vtime.Time) { r.Record(ci, t, 0) }

var siteFns = []func(*tracer.Recorder, *mpi.CallInfo, vtime.Time){
	recSite0, recSite1, recSite2, recSite3, recSite4,
	recSite5, recSite6, recSite7, recSite8,
}

// feedShape replays `steps` timesteps of the shape through the recorder,
// one distinct call site per pattern position.
func feedShape(r *tracer.Recorder, shape []mpi.CallInfo, steps int, clk vtime.Time) {
	for s := 0; s < steps; s++ {
		for i := range shape {
			siteFns[i](r, &shape[i], clk)
		}
	}
}

// refactorShapes maps the benchmark names to (shape, steps-per-rank).
var refactorShapes = map[string]struct {
	shape []mpi.CallInfo
	steps int
}{
	"PHASE":   {phaseShape, 40},
	"STENCIL": {stencilShape, 60},
}

// runPipeline performs one record→compress→merge pipeline: ranksN
// recorders each trace `steps` timesteps of the shape, then the partial
// traces merge pairwise (the radix-tree unit). It returns the dynamic
// event count as a sanity check.
func runPipeline(p *mpi.Proc, app string, ranksN int) uint64 {
	cfg := refactorShapes[app]
	seqs := make([][]*trace.Node, ranksN)
	for r := 0; r < ranksN; r++ {
		rec := tracer.NewRecorder(p, tracer.SigFull, false)
		feedShape(rec, cfg.shape, cfg.steps, p.Clock.Now())
		if rec.Win.Triple().CallPath == 0 {
			panic("empty window signature")
		}
		seqs[r] = rec.TakePartial()
	}
	acc := seqs[0]
	for r := 1; r < ranksN; r++ {
		m := newPipelineMerger(p.Size())
		acc = m.Merge(acc, seqs[r])
	}
	return trace.DynamicEvents(acc)
}

// benchPipeline measures the pipeline on one shape.
func benchPipeline(b *testing.B, app string) {
	cfg := refactorShapes[app]
	eventsPerOp := float64(4 * cfg.steps * len(cfg.shape))
	_, err := mpi.Run(mpi.Config{P: 1}, func(p *mpi.Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if runPipeline(p, app, 4) == 0 {
				b.Fatal("pipeline produced no events")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*eventsPerOp), "ns/event")
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRecordCompressMerge(b *testing.B) {
	for _, app := range []string{"PHASE", "STENCIL"} {
		b.Run(app, func(b *testing.B) { benchPipeline(b, app) })
	}
}

// refactorBaseline holds the numbers measured on main (commit d26d837,
// immediately before the call-site interning refactor) with the exact
// harness above: one op = 4 ranks × steps × shape events recorded,
// compressed and merged.
var refactorBaseline = map[string]benchNumbers{
	"PHASE":   {NsPerOp: 355280, AllocsPerOp: 2370, BytesPerOp: 259408},
	"STENCIL": {NsPerOp: 3144480, AllocsPerOp: 15552, BytesPerOp: 1724674},
}

type benchNumbers struct {
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Events      uint64 `json:"events_per_op,omitempty"`
}

// TestRefactorBenchReport (gated by BENCH_REFACTOR_OUT, run via `make
// bench-refactor`) measures the pipeline and writes BENCH_refactor.json
// with the before/after table. It fails if the allocation reduction on
// the record→compress→merge path falls below the 30% the refactor
// promises.
func TestRefactorBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_REFACTOR_OUT")
	if out == "" {
		t.Skip("set BENCH_REFACTOR_OUT to write BENCH_refactor.json")
	}
	type row struct {
		Baseline  benchNumbers `json:"baseline"`
		Current   benchNumbers `json:"current"`
		NsWin     string       `json:"ns_reduction"`
		AllocsWin string       `json:"allocs_reduction"`
	}
	report := struct {
		BaselineCommit string         `json:"baseline_commit"`
		Note           string         `json:"note"`
		Pipelines      map[string]row `json:"pipelines"`
	}{
		BaselineCommit: "d26d837",
		Note:           "one op = 4 ranks x steps x shape events: record (stack capture, window sigs, intra compression) then radix merge",
		Pipelines:      map[string]row{},
	}
	for app := range refactorShapes {
		app := app
		res := testing.Benchmark(func(b *testing.B) { benchPipeline(b, app) })
		cur := benchNumbers{
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		base := refactorBaseline[app]
		pct := func(before, after int64) string {
			if before == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(before-after)/float64(before))
		}
		report.Pipelines[app] = row{
			Baseline:  base,
			Current:   cur,
			NsWin:     pct(base.NsPerOp, cur.NsPerOp),
			AllocsWin: pct(base.AllocsPerOp, cur.AllocsPerOp),
		}
		t.Logf("%s: ns/op %d -> %d, allocs/op %d -> %d, B/op %d -> %d",
			app, base.NsPerOp, cur.NsPerOp, base.AllocsPerOp, cur.AllocsPerOp,
			base.BytesPerOp, cur.BytesPerOp)
		if base.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > 0.7*float64(base.AllocsPerOp) {
			t.Errorf("%s: allocs/op %d not >=30%% below baseline %d",
				app, cur.AllocsPerOp, base.AllocsPerOp)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// newPipelineMerger returns the merger configuration the production
// radix-tree reduction uses.
func newPipelineMerger(p int) *trace.Merger {
	// Owned matches the production MergeOverTree configuration: partials
	// are detached from their recorders, so the merger may consume both
	// sides in place instead of deep-copying.
	return &trace.Merger{P: p, Owned: true}
}
