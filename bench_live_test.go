package chameleon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"chameleon"
)

// benchLiveInterval is the shipper period for the bench workload: short
// enough that periodic shipping fires within one run.
const benchLiveInterval = 50 * time.Millisecond

// runPhaseForBench runs the bench-live workload (PHASE class A, P=32,
// chameleon tracer); when srvURL is non-empty it attaches a live
// shipper exactly as `chamrun -live` does — at a 50ms interval so the
// periodic shipping path fires within the run — and returns the
// shipper's wire stats.
func runPhaseForBench(tb testing.TB, srvURL, session string) (deltas, bytesOut uint64) {
	tb.Helper()
	const p = 32
	opts := chameleon.ObsOptions{Metrics: true}
	if srvURL != "" {
		opts.ProgressRanks = p
		opts.JournalRing = 256
	}
	o := chameleon.NewObserver(opts)

	var shipper *chameleon.LiveShipper
	if srvURL != "" {
		var err error
		shipper, err = chameleon.NewLiveShipper(o, chameleon.LiveShipperOptions{
			URL:       srvURL,
			Session:   session,
			Benchmark: "PHASE",
			P:         p,
			Interval:  benchLiveInterval,
		})
		if err != nil {
			tb.Fatalf("shipper: %v", err)
		}
		shipper.Start()
	}
	_, err := chameleon.RunBenchmark("PHASE", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o})
	if shipper != nil {
		if serr := shipper.Stop(); serr != nil {
			tb.Fatalf("shipper stop: %v", serr)
		}
	}
	if err != nil {
		tb.Fatalf("run: %v", err)
	}
	if shipper != nil {
		st := shipper.Stats()
		return st.Deltas, uint64(st.BytesOut)
	}
	return 0, 0
}

// BenchmarkLiveOverhead prices the live telemetry pipeline: "off" is a
// metrics-only run (chamrun -metrics), "on" adds the progress board,
// journal ring, and the delta shipper posting to an in-process chamd
// (chamrun -metrics -live).
func BenchmarkLiveOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runPhaseForBench(b, "", "")
		}
	})
	b.Run("on", func(b *testing.B) {
		srv := newLiveDaemon(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPhaseForBench(b, srv.URL, fmt.Sprintf("bench-%d", i))
		}
	})
}

// TestLiveBenchReport writes BENCH_live.json when BENCH_LIVE_OUT names
// a path (`make bench-live`): wall-clock overhead of -live vs no -live
// (must stay under 5%) and bytes on the wire per shipped delta.
func TestLiveBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_LIVE_OUT")
	if path == "" {
		t.Skip("set BENCH_LIVE_OUT=BENCH_live.json to write the report")
	}

	srv := newLiveDaemon(t)

	// The workload's wall-clock drifts a few percent over the report's
	// lifetime, so interleave baseline/live passes (drift hits both
	// sides equally) and take the fastest pass per side — the standard
	// noise-robust statistic — before comparing.
	var deltas, bytesOut uint64
	var liveRuns, pass int
	baseFn := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runPhaseForBench(b, "", "")
		}
	}
	liveFn := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, by := runPhaseForBench(b, srv.URL, fmt.Sprintf("report-%d-%d", pass, i))
			deltas += d
			bytesOut += by
			liveRuns++
		}
		pass++
	}
	var baseline, live testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		if r := testing.Benchmark(baseFn); i == 0 || r.NsPerOp() < baseline.NsPerOp() {
			baseline = r
		}
		if r := testing.Benchmark(liveFn); i == 0 || r.NsPerOp() < live.NsPerOp() {
			live = r
		}
	}
	if deltas == 0 {
		t.Fatal("live runs shipped no deltas")
	}

	overheadPct := 100 * (float64(live.NsPerOp()) - float64(baseline.NsPerOp())) / float64(baseline.NsPerOp())
	bytesPerDelta := float64(bytesOut) / float64(deltas)

	report := map[string]any{
		"workload":               "PHASE class A, P=32, chameleon tracer",
		"interval":               benchLiveInterval.String(),
		"baseline_ns_op":         baseline.NsPerOp(),
		"live_ns_op":             live.NsPerOp(),
		"wallclock_overhead_pct": overheadPct,
		"deltas_per_run":         float64(deltas) / float64(liveRuns),
		"bytes_per_delta":        bytesPerDelta,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s: baseline=%dns/op live=%dns/op overhead=%.2f%% bytes/delta=%.0f",
		path, baseline.NsPerOp(), live.NsPerOp(), overheadPct, bytesPerDelta)

	if overheadPct > 5.0 {
		t.Fatalf("live shipper overhead %.2f%% exceeds the 5%% budget", overheadPct)
	}
}
