// Property test for the compressed-domain analysis engine: for every
// application skeleton, rank count, and tracer we exercise, the metrics
// zan computes by walking the compressed trace once must equal the
// replay-derived reference — the expansion oracle field by field
// (integer metrics bit-equal, pooled float moments within
// analysis.OracleTol), and the replayer's dynamic event count exactly.
// Faulted runs with departed ranks and iteration-scaled traces are
// covered too.
package chameleon_test

import (
	"fmt"
	"testing"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/trace"
	"chameleon/internal/zan"
)

// scaleTopIters returns a copy of the trace with every top-level loop's
// iteration count multiplied by k — the "run the same program k times
// longer" transform. The compressed representation keeps its exact
// size; only the dynamic event counts grow.
func scaleTopIters(f *trace.File, k uint64) *trace.File {
	out := *f
	out.Nodes = make([]*trace.Node, len(f.Nodes))
	for i, n := range f.Nodes {
		c := n.Clone()
		if c.IsLoop() {
			c.Iters = c.MeanIters() * k
			c.ItersHist = nil
		}
		out.Nodes[i] = c
	}
	return &out
}

func crossCheck(t *testing.T, f *chameleon.TraceFile) *zan.Report {
	t.Helper()
	rep, err := analysis.CrossCheck(f, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// propPs returns the rank counts to exercise for a benchmark: 16 works
// for every skeleton; the communication-pattern-flexible ones also run
// small, and EMF only runs at its native master/worker size.
func propPs(name string) []int {
	switch name {
	case "EMF":
		return []int{26}
	case "PHASE", "CG", "STENCIL":
		return []int{8, 16}
	}
	return []int{16}
}

func TestCompressedMetricsMatchReplayDerived(t *testing.T) {
	tracers := []chameleon.Tracer{chameleon.TracerScalaTrace, chameleon.TracerChameleon}
	for _, name := range chameleon.Benchmarks() {
		for _, p := range propPs(name) {
			for _, tr := range tracers {
				name, p, tr := name, p, tr
				t.Run(fmt.Sprintf("%s/P%d/%s", name, p, tr), func(t *testing.T) {
					t.Parallel()
					class := "A"
					if name == "EMF" {
						class = ""
					}
					out, err := chameleon.RunBenchmark(name, class, p, tr, nil)
					if err != nil {
						t.Fatal(err)
					}
					rep := crossCheck(t, out.Trace)
					if rep.Events == 0 {
						t.Fatal("trace represents no events")
					}
				})
			}
		}
	}
}

func TestCompressedMetricsScaleWithIters(t *testing.T) {
	out, err := chameleon.RunBenchmark("PHASE", "A", 8, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := crossCheck(t, out.Trace)
	for _, k := range []uint64{4, 16} {
		scaled := scaleTopIters(out.Trace, k)
		rep := crossCheck(t, scaled)
		if rep.StoredNodes != base.StoredNodes {
			t.Errorf("x%d: stored nodes %d != %d — scaling must not grow the representation",
				k, rep.StoredNodes, base.StoredNodes)
		}
		if rep.Events <= base.Events {
			t.Errorf("x%d: events %d did not grow from %d", k, rep.Events, base.Events)
		}
	}
}

func TestCompressedMetricsFaultedRun(t *testing.T) {
	out, _ := runFaulted(t, "PHASE", "crash rank=1 at marker=10", 42, 16)
	if len(out.Trace.Retired) == 0 {
		t.Fatal("fault plan retired no ranks")
	}
	rep := crossCheck(t, out.Trace)
	// The departed rank recorded fewer events than the survivors.
	retired := out.Trace.Retired[0]
	if rep.Ranks[retired].Events >= rep.Ranks[(retired+1)%16].Events {
		t.Errorf("retired rank %d has %d events, survivor has %d — expected fewer",
			retired, rep.Ranks[retired].Events, rep.Ranks[(retired+1)%16].Events)
	}
}
