GO ?= go

.PHONY: all check test test-race bench clean

all: check test

# check: everything must build, vet clean, and be gofmt'd.
check:
	$(GO) build ./...
	$(GO) vet ./...
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi

test:
	$(GO) test ./...

# test-race: the observability registry is hammered from 64 goroutines;
# the full suite runs under the race detector.
test-race:
	$(GO) test -race ./...

# bench: price the observability layer on the stencil workload and
# write BENCH_obs.json (ns/op enabled vs disabled, makespan overhead).
bench:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run TestObsBenchReport -v .
	$(GO) test -bench 'BenchmarkObsOverhead' -benchmem .

clean:
	rm -f BENCH_obs.json chameleon.journal.jsonl chameleon.trace.json
