GO ?= go

.PHONY: all check test test-race test-faults test-store test-live test-transport test-wave test-zan test-fed fuzz-trace fuzz-frame bench bench-causal bench-faults bench-refactor bench-store bench-live bench-transport bench-wave bench-zan bench-fed clean

all: check test

# check: everything must build, vet clean, and be gofmt'd.
check:
	$(GO) build ./...
	$(GO) vet ./...
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi

test:
	$(GO) test ./...

# test-race: the observability registry is hammered from 64 goroutines
# and the causal store is appended from every rank concurrently; the
# full suite (including internal/causal) runs under the race detector.
test-race:
	$(GO) test -race ./...

# bench: price the observability layer on the stencil workload and
# write BENCH_obs.json (ns/op enabled vs disabled, makespan overhead).
bench:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run TestObsBenchReport -v .
	$(GO) test -bench 'BenchmarkObsOverhead' -benchmem .

# bench-causal: price per-edge causal capture on top of the enabled
# observability layer; writes BENCH_causal.json (ns/op causal on vs
# off, edges captured, makespan overhead — must be zero).
bench-causal:
	BENCH_CAUSAL_OUT=$(CURDIR)/BENCH_causal.json $(GO) test -run TestCausalBenchReport -v .
	$(GO) test -bench 'BenchmarkCausalOverhead' -benchmem .

# bench-refactor: price the interned hot path (record -> compress ->
# merge pipeline on PHASE and STENCIL) against the pre-refactor baseline
# recorded in bench_refactor_test.go; writes BENCH_refactor.json and
# fails unless allocs/op dropped by at least 30%.
bench-refactor:
	BENCH_REFACTOR_OUT=$(CURDIR)/BENCH_refactor.json $(GO) test -run TestRefactorBenchReport -v .
	$(GO) test -bench 'BenchmarkRecordCompressMerge' -benchmem .

# test-store: the trace-archive suite under the race detector — the
# 64-goroutine mixed ingest/query/compaction storm, the chamd HTTP
# handlers, and the end-to-end push/fetch/diff round trip.
test-store:
	$(GO) test -race ./internal/store/
	$(GO) test -race -run 'TestStore' .

# test-live: the live-telemetry suite under the race detector — the
# delta shipper, chamd's session tracker and detectors, the
# 64-goroutine concurrent-pusher storm, and the end-to-end in-flight
# straggler test (chamrun -live -> chamd -> chamtop -follow).
test-live:
	$(GO) test -race -run 'TestLive|TestShipper|TestJournalRing|TestProgress' ./internal/obs/ ./internal/store/
	$(GO) test -race -run 'TestLiveSlowRankFlaggedInFlight|TestLiveCrashRankDeparts' .

# bench-live: price the live telemetry shipper against a no -live run
# of the same workload; writes BENCH_live.json (wall-clock overhead
# percent — budget 5%, the report fails beyond it — and wire bytes per
# shipped delta).
bench-live:
	BENCH_LIVE_OUT=$(CURDIR)/BENCH_live.json $(GO) test -run TestLiveBenchReport -v .
	$(GO) test -run '^$$' -bench 'BenchmarkNilObserver|BenchmarkNilProgress' -benchmem ./internal/obs/

# fuzz-trace: a short fuzz smoke over the binary trace decoder (the
# archive ingests untrusted payloads through it). CI runs this; local
# deep fuzzing just raises -fuzztime.
fuzz-trace:
	$(GO) test -run '^$$' -fuzz FuzzReadBinary -fuzztime=10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzReadAny -fuzztime=5s ./internal/trace/

# bench-store: price archive ingest (cold and dedup), fetch, and query
# on real benchmark traces; writes BENCH_store.json with throughput and
# the gzip storage ratio.
bench-store:
	BENCH_STORE_OUT=$(CURDIR)/BENCH_store.json $(GO) test -run TestStoreBenchReport -v .
	$(GO) test -bench 'BenchmarkStore' -benchmem .

# test-transport: the TCP multi-process transport suite under the race
# detector — the in-test fleet tests (rendezvous, wildcard matching
# across sockets, comm dup, config mismatch), the frame-decoder poison
# corpus, the fleet codecs, and the cross-process e2e: cross-backend
# determinism, the 2-process x 4-rank subprocess run byte-compared
# against in-process, and the crash-failover run where one member's
# process kills itself mid-run.
test-transport:
	$(GO) test -race ./internal/mpi/ ./internal/fleet/
	$(GO) test -race -run 'TestTransport' -v .

# bench-transport: price the socket hop (per-message overhead of a
# 2x4-rank fleet vs the same run in-process) and record the P=64
# four-member fleet makespan; writes BENCH_transport.json and fails if
# fleet and in-process makespans ever differ.
bench-transport:
	BENCH_TRANSPORT_OUT=$(CURDIR)/BENCH_transport.json $(GO) test -run TestTransportBenchReport -v .

# fuzz-frame: a short fuzz smoke over the TCP frame decoder (every mesh
# byte passes through it). CI runs the poison corpus as a plain test;
# local deep fuzzing just raises -fuzztime.
fuzz-frame:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime=10s ./internal/mpi/

# test-zan: the compressed-domain analysis suite — the engine's unit
# tests, the analysis guards and oracle, and the property test proving
# the closed-form metrics against the expansion oracle and the replayer
# on every application skeleton (see docs/ANALYSIS.md).
test-zan:
	$(GO) test ./internal/zan/ ./internal/analysis/
	$(GO) test -run 'TestCompressedMetrics' -v .

# bench-zan: price the compressed-domain walk against the replay-based
# reference on PHASE and SWEEP3D traces at 1x and 100x their recorded
# iteration counts; writes BENCH_zan.json and fails unless zan is >=10x
# faster and >=10x lighter on allocations at 100x while staying flat
# across the scaling.
bench-zan:
	BENCH_ZAN_OUT=$(CURDIR)/BENCH_zan.json $(GO) test -run TestZanBenchReport -v -timeout 20m .

# test-faults: the fault-injection suite, including the
# crash-at-every-marker sweep over the PHASE and STENCIL examples
# (see docs/FAULTS.md).
test-faults:
	$(GO) test -run 'TestZeroFaultIdentity|TestFault|TestPhaseLeadCrashFailover|TestStencilLeadPromotion|TestConcurrentCrashDuringClustering|TestReplayFaultedCollectiveTrace|TestCrashSweep|TestJournalGoldenLeadFailover' -v .
	$(GO) test ./internal/fault/

# bench-faults: measure perturbed-vs-clean virtual makespan and the
# lead-failover overhead; writes BENCH_fault.json.
bench-faults:
	BENCH_FAULT_OUT=$(CURDIR)/BENCH_fault.json $(GO) test -run TestFaultBenchReport -v .

# test-wave: the idle-wave suite — noise-plan generators, the wave
# detector (fitting edge cases: single rank, crashed rank, two origins,
# P=1), the archive edges/waves endpoints, the golden seeded-pulse
# scenario, and the live in-flight desync detection e2e
# (see docs/OBSERVABILITY.md, "Idle waves").
test-wave:
	$(GO) test -race ./internal/wave/
	$(GO) test -race -run 'TestNoise|TestExampleNoisePlans|TestPulse' ./internal/fault/
	$(GO) test -race -run 'TestEdgesAndWavesEndpoints|TestLiveDesync' ./internal/store/
	$(GO) test -race -run 'TestWaveGoldenScenario|TestLiveDesyncFlaggedInFlight' .

# bench-wave: price wave detection against replaying the same trace;
# writes BENCH_wave.json (detector ns/op at 1x/4x/16x edge counts —
# budget 5% of replay time, the report fails beyond it) and checks the
# nil-registry counter path stays allocation-free.
bench-wave:
	BENCH_WAVE_OUT=$(CURDIR)/BENCH_wave.json $(GO) test -run TestWaveBenchReport -v .
	$(GO) test -run '^$$' -bench BenchmarkNilWaveCounters -benchmem ./internal/wave/

# test-fed: the federation suite under the race detector — the
# consistent-hash ring and mesh node units, the continuous-query
# engine, the in-process 3-peer mesh tests (replication placement,
# scatter-gather pagination, tenancy/quota/rate limits, conditional
# GETs, CQ gates, anti-entropy, dead-owner fallback), the concurrent-
# pusher storm (64 workers under -race, 1024 in plain builds), and the
# subprocess peer-death e2e (push through A, SIGKILL B, byte-identical
# reads from the survivors, sweep-repaired B after restart).
test-fed:
	$(GO) test -race ./internal/mesh/ ./internal/cq/
	$(GO) test -race -run 'TestFed' ./internal/store/
	$(GO) test -race -run 'TestFedPeerDeathAndAntiEntropyRecovery' -v .

# bench-fed: price federated ingest against a single unfederated peer
# (same traces, same HTTP edge); writes BENCH_fed.json with the
# replication overhead ratio, warm fan-out cost, and scatter-gather
# list latency on a 3-peer R=2 mesh.
bench-fed:
	BENCH_FED_OUT=$(CURDIR)/BENCH_fed.json $(GO) test -run TestFedBenchReport -v -timeout 20m .

clean:
	rm -f BENCH_obs.json BENCH_causal.json BENCH_fault.json \
		BENCH_refactor.json BENCH_store.json BENCH_live.json \
		BENCH_zan.json BENCH_wave.json BENCH_transport.json \
		BENCH_fed.json \
		chameleon.journal.jsonl chameleon.trace.json chameleon.edges.jsonl
