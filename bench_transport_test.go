package chameleon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/mpi"
)

// runFleetForBench runs one benchmark split across TCP members and
// returns the wall time plus the transports' aggregate wire stats and
// the world makespan.
func runFleetForBench(tb testing.TB, bench string, p int, members [][2]int) (wall time.Duration, stats mpi.TCPStats, makespan chameleon.Duration) {
	tb.Helper()
	addr := freeJoinAddr(tb)
	fp := fmt.Sprintf("bench/%s/p%d", bench, p)
	outs := make([]*chameleon.Output, len(members))
	allStats := make([]mpi.TCPStats, len(members))
	errs := make([]error, len(members))
	start := time.Now()
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			tr, err := mpi.NewTCPTransport(mpi.TCPOptions{
				Join: addr, RankLo: lo, RankHi: hi, P: p, Fingerprint: fp,
			})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = chameleon.RunBenchmark(bench, "A", p, chameleon.TracerChameleon,
				&chameleon.Config{Transport: tr})
			allStats[i] = tr.Stats()
		}(i, m[0], m[1])
	}
	wg.Wait()
	wall = time.Since(start)
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("fleet member %d: %v", i, err)
		}
	}
	for _, s := range allStats {
		stats.FramesOut += s.FramesOut
		stats.BytesOut += s.BytesOut
		stats.FramesIn += s.FramesIn
		stats.BytesIn += s.BytesIn
		stats.BoundSweeps += s.BoundSweeps
	}
	return wall, stats, outs[0].Time
}

// TestTransportBenchReport writes BENCH_transport.json when
// BENCH_TRANSPORT_OUT names a path (`make bench-transport`): the
// per-message socket overhead of a 2×4-rank fleet against the 8-rank
// in-process run, and the makespan/wall-clock of a P=64 fleet split
// four ways — with the cross-backend determinism of both asserted.
func TestTransportBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_TRANSPORT_OUT")
	if path == "" {
		t.Skip("set BENCH_TRANSPORT_OUT=BENCH_transport.json to write the report")
	}

	const bench = "STENCIL"

	// Interleave in-process and fleet passes (machine drift hits both
	// sides equally) and keep the fastest pass per side.
	var inprocBest, fleetBest time.Duration
	var stats mpi.TCPStats
	var inprocSpan, fleetSpan chameleon.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		out, err := chameleon.RunBenchmark(bench, "A", 8, chameleon.TracerChameleon, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); i == 0 || d < inprocBest {
			inprocBest = d
		}
		inprocSpan = out.Time

		wall, st, span := runFleetForBench(t, bench, 8, [][2]int{{0, 3}, {4, 7}})
		if i == 0 || wall < fleetBest {
			fleetBest = wall
			stats = st
		}
		fleetSpan = span
	}
	if fleetSpan != inprocSpan {
		t.Fatalf("P=8 fleet makespan %v != in-process %v", fleetSpan, inprocSpan)
	}
	if stats.FramesOut == 0 {
		t.Fatal("fleet run crossed no frames")
	}
	perMsgNs := float64(fleetBest-inprocBest) / float64(stats.FramesOut)

	// P=64 split four ways: the acceptance-scale fleet. One pass — the
	// point is the makespan identity and the order of magnitude of the
	// wall clock, not a tight distribution.
	start := time.Now()
	big, err := chameleon.RunBenchmark(bench, "A", 64, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	bigInprocWall := time.Since(start)
	bigWall, bigStats, bigSpan := runFleetForBench(t, bench, 64,
		[][2]int{{0, 15}, {16, 31}, {32, 47}, {48, 63}})
	if bigSpan != big.Time {
		t.Fatalf("P=64 fleet makespan %v != in-process %v", bigSpan, big.Time)
	}

	report := map[string]any{
		"workload":             bench + " class A, chameleon tracer",
		"p8_inproc_wall_ns":    inprocBest.Nanoseconds(),
		"p8_fleet_wall_ns":     fleetBest.Nanoseconds(),
		"p8_frames_crossed":    stats.FramesOut,
		"p8_bytes_crossed":     stats.BytesOut,
		"p8_bound_sweeps":      stats.BoundSweeps,
		"per_message_ns":       perMsgNs,
		"p64_members":          4,
		"p64_makespan":         bigSpan.String(),
		"p64_inproc_wall_ns":   bigInprocWall.Nanoseconds(),
		"p64_fleet_wall_ns":    bigWall.Nanoseconds(),
		"p64_frames_crossed":   bigStats.FramesOut,
		"p64_bytes_crossed":    bigStats.BytesOut,
		"makespans_bitwise_eq": true,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s: P=8 %.0fns/msg over %d frames; P=64 fleet %v wall (in-proc %v)",
		path, perMsgNs, stats.FramesOut, bigWall, bigInprocWall)
}
