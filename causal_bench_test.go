package chameleon_test

import (
	"encoding/json"
	"io"
	"os"
	"testing"

	"chameleon"
)

// causalObserver is fullObserver plus per-edge causal capture — the
// configuration `chamrun -obs -causal` wires up.
func causalObserver() *chameleon.Observer {
	return chameleon.NewObserver(chameleon.ObsOptions{
		Metrics:       true,
		Journal:       io.Discard,
		TimelineRanks: 16,
		CausalRanks:   16,
	})
}

// BenchmarkCausalOverhead prices causal edge capture on the stencil
// workload on top of the already-enabled observability layer: "off" is
// metrics+journal+timeline (the BenchmarkObsOverhead "enabled" arm),
// "on" additionally stamps every message and records matched edges.
func BenchmarkCausalOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, fullObserver())
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, causalObserver())
		}
	})
}

// TestCausalBenchReport writes BENCH_causal.json when BENCH_CAUSAL_OUT
// names a path (`make bench-causal`): wall-clock ns/op with causal
// capture on vs off, the captured edge count, and the virtual
// makespans, which must match exactly — piggybacked span context rides
// on messages that were being sent anyway and charges no virtual time.
func TestCausalBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_CAUSAL_OUT")
	if path == "" {
		t.Skip("set BENCH_CAUSAL_OUT=BENCH_causal.json to write the report")
	}

	offOut := runBenchStencil(t, fullObserver())
	onObs := causalObserver()
	onOut := runBenchStencil(t, onObs)
	if offOut.Time != onOut.Time {
		t.Fatalf("virtual makespan changed under causal capture: %v vs %v",
			offOut.Time, onOut.Time)
	}
	edges := onObs.Causal.EdgeCount()
	if edges == 0 {
		t.Fatal("causal capture recorded no edges on the stencil workload")
	}

	off := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, fullObserver())
		}
	})
	on := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchStencil(b, causalObserver())
		}
	})

	report := map[string]any{
		"workload":               "stencil 4x4, 40 timesteps, chameleon tracer",
		"causal_off_ns_op":       off.NsPerOp(),
		"causal_on_ns_op":        on.NsPerOp(),
		"wallclock_overhead_pct": 100 * (float64(on.NsPerOp()) - float64(off.NsPerOp())) / float64(off.NsPerOp()),
		"edges_captured":         edges,
		"edges_dropped":          onObs.Causal.Dropped(),
		"makespan_vtime_ns":      int64(offOut.Time),
		"makespan_overhead_pct":  0.0,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s: off=%dns/op on=%dns/op edges=%d", path, off.NsPerOp(), on.NsPerOp(), edges)
}
