package chameleon_test

import (
	"fmt"
	"log"

	"chameleon"
)

// ExampleAccuracy shows the paper's replay-accuracy metric.
func ExampleAccuracy() {
	t := 100 * chameleon.Millisecond // unclustered replay time
	tp := 95 * chameleon.Millisecond // clustered replay time
	fmt.Printf("%.2f\n", chameleon.Accuracy(t, tp))
	// Output: 0.95
}

// ExampleRun traces a small iterative kernel under Chameleon and prints
// the transition-graph outcome — one clustering, then the lead phase.
func ExampleRun() {
	out, err := chameleon.Run(chameleon.Config{
		P:      8,
		Tracer: chameleon.TracerChameleon,
		K:      2,
	}, func(p *chameleon.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for step := 0; step < 50; step++ {
			p.Compute(100 * chameleon.Microsecond)
			w.Sendrecv(next, 1, 512, nil, prev, 1)
			if (step+1)%5 == 0 {
				chameleon.Marker(p)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusterings: %d\n", out.Reclusterings)
	fmt.Printf("states: AT=%d C=%d L=%d F=%d\n",
		out.StateCalls["AT"], out.StateCalls["C"], out.StateCalls["L"], out.StateCalls["F"])
	fmt.Printf("leads: %d of %d ranks\n", len(out.Leads), out.P)
	// Output:
	// clusterings: 1
	// states: AT=1 C=1 L=8 F=1
	// leads: 2 of 8 ranks
}

// ExampleReplay round-trips a benchmark through tracing and replay; the
// clustered trace re-issues every rank's events.
func ExampleReplay() {
	out, err := chameleon.RunBenchmark("CG", "A", 8, chameleon.TracerChameleon, nil)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	// CG: 75 iterations x (2 sendrecv + 2 allreduce) x 8 ranks.
	fmt.Printf("replayed events: %d\n", rep.Events)
	// Output: replayed events: 2400
}

// ExampleNewCart drives a halo exchange from a Cartesian topology.
func ExampleNewCart() {
	out, err := chameleon.Run(chameleon.Config{P: 6}, func(p *chameleon.Proc) {
		cart, err := chameleon.NewCart(p.World(), []int{2, 3}, []bool{true, true})
		if err != nil {
			panic(err)
		}
		src, dst, _, _ := cart.Shift(1, 1)
		p.World().Sendrecv(dst, 1, 64, nil, src, 1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Time > 0)
	// Output: true
}
