// Command chamstat analyzes and compares compressed trace files:
// summary statistics, per-rank communication volumes, the reconstructed
// point-to-point communication matrix, and equivalence checks between
// two traces (e.g., a Chameleon online trace vs. the ScalaTrace global
// trace of the same run).
//
// Usage:
//
//	chamstat trace-file                 # summary
//	chamstat -volumes trace-file        # per-rank volumes
//	chamstat -matrix  trace-file        # communication matrix (sparse)
//	chamstat -zstats  trace-file        # compressed-domain analysis (per-window metrics)
//	chamstat -diff a.trace b.trace      # equivalence check
//	chamstat -waves edges-or-run-ref    # idle-wave summary (docs/OBSERVABILITY.md)
//
// -waves takes either a causal edge file (chamrun -causal -edges-out)
// and runs the idle-wave detector locally, or an http(s)://host/runs/{id}
// reference, in which case the chamd archive computes the report
// server-side over the run's edge sidecar (chamrun -push-edges).
//
// -zstats computes wait/compute/communication time, load imbalance,
// per-op tallies, and send/recv match consistency by walking the
// compressed trace once (internal/zan, docs/ANALYSIS.md) — never
// expanding its loops. Add -check to also run the expansion oracle and
// the replayer and fail if the closed-form metrics diverge.
//
// A trace from a fault-injected run misses the retired (crashed) ranks;
// -diff -tolerate-ranks excludes those ranks from both sides so the
// survivor events still diff clean against a full fault-free baseline:
//
//	chamstat -diff -tolerate-ranks 1,5-7 full.trace faulted.trace
//	chamstat -diff -tolerate-ranks auto  full.trace faulted.trace
//
// "auto" tolerates the union of the retired-rank lists the two trace
// files carry.
//
// Every trace argument may also be an http(s):// run reference into a
// chamd archive (see docs/STORE.md), e.g.
//
//	chamstat -diff http://host:8321/runs/<id-a> http://host:8321/runs/<id-b>
//
// Remote fetches report their transfer sizes (gzip wire bytes vs. raw
// payload bytes) on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chameleon/internal/analysis"
	"chameleon/internal/fault"
	"chameleon/internal/obs"
	"chameleon/internal/store"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
	"chameleon/internal/wave"
	"chameleon/internal/zan"
)

// load resolves a trace reference (path or http(s):// run URL); remote
// fetches surface their compressed/uncompressed byte counts on stderr.
func load(ref string) (*trace.File, error) {
	f, stats, err := store.LoadTraceStats(ref)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		fmt.Fprintf(os.Stderr, "chamstat: fetched %s (%s)\n", ref, stats)
	}
	return f, nil
}

func main() {
	volumes := flag.Bool("volumes", false, "print per-rank communication volumes")
	matrix := flag.Bool("matrix", false, "print the reconstructed communication matrix")
	zstats := flag.Bool("zstats", false, "print the compressed-domain analysis report (per-window metrics)")
	check := flag.Bool("check", false, "with -zstats: cross-check the closed-form metrics against the expansion oracle and the replayer")
	diff := flag.Bool("diff", false, "compare two traces for event equivalence")
	tolerate := flag.String("tolerate-ranks", "", `with -diff: exclude these ranks ("0,5-7" set grammar, or "auto" = the traces' retired ranks)`)
	waves := flag.Bool("waves", false, "idle-wave summary over a causal edge file or a run URL's edge sidecar")
	cols := flag.Int("cols", 0, "with -waves: treat ranks as a row-major grid this many columns wide (0 = 1-D chain)")
	tenant := flag.String("tenant", "", "namespace requests to this archive tenant (X-Cham-Tenant header)")
	flag.Parse()
	if *tenant != "" {
		store.SetTenant(*tenant)
	}

	if *waves {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: chamstat -waves [-cols n] edges.jsonl | http://host:8321/runs/<id>")
			os.Exit(2)
		}
		waveSummary(flag.Arg(0), *cols)
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: chamstat -diff [-tolerate-ranks set|auto] a.trace b.trace")
			os.Exit(2)
		}
		a, err := load(flag.Arg(0))
		exitOn(err)
		b, err := load(flag.Arg(1))
		exitOn(err)
		tol, err := toleratedRanks(*tolerate, a, b)
		exitOn(err)
		d := analysis.CompareWith(a, b, analysis.CompareOpts{TolerateRanks: tol})
		if d.Equivalent() {
			if len(tol) > 0 {
				fmt.Printf("traces are event-equivalent ignoring ranks %v (same call sites, same per-rank and per-site dynamic counts)\n", tol)
				return
			}
			fmt.Println("traces are event-equivalent (same call sites, same per-rank and per-site dynamic counts)")
			return
		}
		fmt.Printf("DIVERGED: %s\n", d.Reason())
		if len(d.MissingInB) > 0 {
			fmt.Printf("call sites missing in %s: %d\n", flag.Arg(1), len(d.MissingInB))
		}
		if len(d.MissingInA) > 0 {
			fmt.Printf("call sites missing in %s: %d\n", flag.Arg(0), len(d.MissingInA))
		}
		if len(d.EventDeltas) > 0 {
			fmt.Printf("ranks with differing event counts: %d\n", len(d.EventDeltas))
			ranks := make([]int, 0, len(d.EventDeltas))
			for r := range d.EventDeltas {
				ranks = append(ranks, r)
			}
			sort.Ints(ranks)
			for _, r := range ranks[:min(10, len(ranks))] {
				fmt.Printf("  rank %d: %+d events\n", r, d.EventDeltas[r])
			}
		}
		if len(d.SiteCountDeltas) > 0 {
			fmt.Printf("call sites with differing event counts: %d\n", len(d.SiteCountDeltas))
			sites := make([]uint64, 0, len(d.SiteCountDeltas))
			for s := range d.SiteCountDeltas {
				sites = append(sites, s)
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
			for _, s := range sites[:min(10, len(sites))] {
				fmt.Printf("  site %#x: %+d events\n", s, d.SiteCountDeltas[s])
			}
		}
		os.Exit(1)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chamstat [-volumes|-matrix|-diff] trace-file")
		os.Exit(2)
	}
	f, err := load(flag.Arg(0))
	exitOn(err)

	switch {
	case *zstats:
		rep, err := zan.Analyze(f, zan.Options{})
		exitOn(err)
		fmt.Printf("trace %s (%s, benchmark=%s)\n", flag.Arg(0), f.Tracer, f.Benchmark)
		fmt.Print(rep.String())
		if *check {
			if _, err := analysis.CrossCheck(f, vtime.Default()); err != nil {
				fmt.Fprintf(os.Stderr, "chamstat: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("cross-check: closed-form metrics match the expansion oracle and the replayed event count")
		}
	case *volumes:
		for _, v := range analysis.Volumes(f) {
			fmt.Printf("rank %4d: sends=%d (%dB) recvs=%d collectives=%d\n",
				v.Rank, v.SendEvents, v.SendBytes, v.RecvEvents, v.CollEvents)
		}
	case *matrix:
		m := analysis.Matrix(f)
		fmt.Printf("point-to-point messages: %d (unresolved: %d)\n", m.TotalMessages(), m.Unresolved)
		srcs := make([]int, 0, len(m.Counts))
		for s := range m.Counts {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			dsts := make([]int, 0, len(m.Counts[s]))
			for d := range m.Counts[s] {
				dsts = append(dsts, d)
			}
			sort.Ints(dsts)
			for _, d := range dsts {
				fmt.Printf("  %4d -> %4d: %8d msgs %12d bytes\n", s, d, m.Counts[s][d], m.Bytes[s][d])
			}
		}
	default:
		s := analysis.Summarize(f)
		fmt.Printf("trace %s (%s, benchmark=%s, clustered=%v)\n", flag.Arg(0), f.Tracer, f.Benchmark, f.Clustered)
		fmt.Print(s.String())
		cp := analysis.CriticalPath(f, int64(vtime.Default().Alpha))
		fmt.Printf("critical-path estimate: %v\n", vtime.Duration(cp))
	}
}

// waveSummary is the -waves mode. A /runs/{id} URL asks the chamd
// archive for the server-side report over the run's edge sidecar; any
// other reference is read as a causal edge JSONL stream and analyzed
// locally.
func waveSummary(ref string, cols int) {
	var rep *wave.Report
	if store.IsRef(ref) {
		i := strings.LastIndex(ref, "/runs/")
		if i < 0 {
			exitOn(fmt.Errorf("%s: a remote -waves reference must name a run (…/runs/<id>)", ref))
		}
		resp, err := store.FetchWaves(ref[:i], ref[i+len("/runs/"):], cols)
		exitOn(err)
		rep = resp.Report
		fmt.Printf("run %s (server-side report)\n", resp.ID[:12])
	} else {
		f, err := os.Open(ref)
		exitOn(err)
		edges, err := obs.ReadEdges(f)
		f.Close()
		exitOn(err)
		p := 0
		for _, e := range edges {
			if e.From >= p {
				p = e.From + 1
			}
			if e.To >= p {
				p = e.To + 1
			}
		}
		if p == 0 {
			exitOn(fmt.Errorf("%s: no edges", ref))
		}
		rep, err = wave.Detect(edges, wave.Options{P: p, Cols: cols})
		exitOn(err)
		fmt.Printf("edges %s (P=%d inferred)\n", ref, p)
	}
	fmt.Print(wave.Summary(rep))
}

// toleratedRanks resolves the -tolerate-ranks flag: a rank-set spec, or
// "auto" for the union of the retired ranks recorded in either trace.
func toleratedRanks(spec string, a, b *trace.File) ([]int, error) {
	switch spec {
	case "":
		return nil, nil
	case "auto":
		set := map[int]bool{}
		for _, r := range a.Retired {
			set[r] = true
		}
		for _, r := range b.Retired {
			set[r] = true
		}
		out := make([]int, 0, len(set))
		for r := range set {
			out = append(out, r)
		}
		sort.Ints(out)
		return out, nil
	}
	rs, err := fault.ParseRankSet(spec)
	if err != nil {
		return nil, fmt.Errorf("tolerate-ranks: %w", err)
	}
	p := a.P
	if b.P > p {
		p = b.P
	}
	return rs.Ranks(p), nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamstat: %v\n", err)
		os.Exit(1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
