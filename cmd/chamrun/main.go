// Command chamrun traces one of the paper's benchmarks on the simulated
// MPI runtime and writes the resulting global trace file.
//
// Usage:
//
//	chamrun -bench LU -class D -p 64 -tracer chameleon -o lu.trace
//
// Tracers: none (timing only), scalatrace, chameleon, acurdion.
//
// Observability (see docs/OBSERVABILITY.md):
//
//	chamrun -bench PHASE -p 16 -metrics -journal -timeline
//
// -metrics prints a metrics snapshot after the run (JSON to a file via
// -metrics-out), -journal writes the structured JSONL event journal
// (path via -journal-out, summarized by chamtop), -timeline writes a
// Chrome trace-event JSON of per-rank virtual-time spans (path via
// -timeline-out) loadable in Perfetto or chrome://tracing, and
// -debug-addr serves net/http/pprof and expvar (including the live
// metrics snapshot under "chameleon") while the run executes.
//
// Causal tracing (-causal) records a matched send/recv edge for every
// message — point-to-point and every tree-collective hop — and writes
// them as JSONL (-edges-out) for chamtop -critical; combined with
// -timeline the Chrome trace gains flow events (Perfetto arrows) from
// each delaying send to the receive it blocked.
//
// Fault injection (see docs/FAULTS.md):
//
//	chamrun -bench PHASE -p 16 -faults 'crash rank=1 at marker=10' -fault-seed 7
//	chamrun -bench STENCIL -p 16 -faults @plan.json
//
// -faults takes an inline plan spec (or @file to load one); -fault-seed
// seeds the deterministic perturbation streams. Crash plans require the
// chameleon tracer (crashes fire at its markers).
//
// Noise plans (idle-wave studies, docs/OBSERVABILITY.md):
//
//	chamrun -bench STENCIL -p 16 -sync-every -1 -causal \
//	    -noise 'periodic ranks=5 start=400ms period=16ms extra=5ms count=10'
//
// -noise synthesizes a pulse-train fault plan from generator directives
// (periodic, resonant, random; see examples/noise/), reproducibly from
// -noise-seed, and merges it with -faults. -sync-every overrides a
// skeleton's built-in global synchronization period (negative disables
// it, letting idle waves propagate); -checkpoint-every injects a
// Recorder-style gather+IO checkpoint phase every N iterations.
// -push-edges uploads the causal edge stream as a sidecar of the pushed
// run so `chamd` serves GET /runs/{id}/waves (requires -causal -push).
//
// Multi-process fleets (see docs/ARCHITECTURE.md):
//
//	chamrun -bench STENCIL -p 8 -transport=tcp -join=:9307 -ranks=0..3 &
//	chamrun -bench STENCIL -p 8 -transport=tcp -join=:9307 -ranks=4..7
//
// -transport=tcp splits the world across OS processes: each invocation
// hosts the ranks named by -ranks, whichever process binds the -join
// address coordinates the rendezvous, and messages between processes
// cross real sockets. All members must pass identical run flags (the
// config fingerprint is checked at rendezvous). The member hosting
// rank 0 writes/pushes the merged trace; under -live every member
// ships its own telemetry deltas and chamd stitches them into one
// session.
//
// Trace archiving (see docs/STORE.md):
//
//	chamrun -bench PHASE -p 16 -push http://localhost:8321
//
// -push uploads the merged online trace to a chamd archive after the
// run; ingest is idempotent (content-addressed), so re-pushing an
// identical run stores nothing new.
package main

import (
	"bytes"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"chameleon"
	"chameleon/internal/fleet"
	"chameleon/internal/mpi"
	"chameleon/internal/store"
)

func main() {
	bench := flag.String("bench", "LU", "benchmark: "+strings.Join(chameleon.Benchmarks(), ", "))
	class := flag.String("class", "D", "NPB input class (A-D)")
	p := flag.Int("p", 64, "number of ranks")
	tr := flag.String("tracer", "chameleon", "tracer: none, scalatrace, chameleon, acurdion")
	k := flag.Int("k", 0, "cluster budget K (0 = benchmark default)")
	freq := flag.Int("freq", 0, "marker frequency in timesteps (0 = benchmark default)")
	algo := flag.String("algo", "", "clustering algorithm: k-farthest, k-medoid, k-random")
	out := flag.String("o", "", "trace output path (empty = don't write)")
	useBinary := flag.Bool("binary", false, "write the trace in the compact binary format")
	push := flag.String("push", "", "after the run, upload the merged trace to this chamd archive URL")
	pushGzip := flag.Bool("push-gzip", true, "gzip the -push transfer")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot after the run")
	metricsOut := flag.String("metrics-out", "", "also write the metrics snapshot as JSON to this path")
	journal := flag.Bool("journal", false, "write the structured JSONL event journal")
	journalOut := flag.String("journal-out", "chameleon.journal.jsonl", "journal output path")
	timeline := flag.Bool("timeline", false, "write a Chrome trace-event JSON timeline (Perfetto)")
	timelineOut := flag.String("timeline-out", "chameleon.trace.json", "timeline output path")
	causalFlag := flag.Bool("causal", false, "capture causal send/recv edges and write them as JSONL")
	edgesOut := flag.String("edges-out", "chameleon.edges.jsonl", "causal edge output path")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address during the run")
	live := flag.String("live", "", "stream live telemetry deltas to this chamd URL during the run (watch with chamtop -follow)")
	liveInterval := flag.Duration("live-interval", 250*time.Millisecond, "live telemetry snapshot/ship period")
	liveSession := flag.String("live-session", "", "live session ID (default: random)")
	faults := flag.String("faults", "", "fault plan: inline spec, or @path to a plan file")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault injector's perturbation streams")
	noise := flag.String("noise", "", "noise-plan generator spec (periodic/resonant/random directives), merged with -faults")
	noiseSeed := flag.Uint64("noise-seed", 1, "seed for the -noise generators")
	syncEvery := flag.Int("sync-every", 0, "override the skeleton's global-sync period (0 = default, negative = disable)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "inject a checkpoint (gather+IO) phase every N iterations")
	pushEdges := flag.Bool("push-edges", false, "also upload the causal edge stream as a sidecar of the pushed run (requires -causal and -push)")
	transport := flag.String("transport", "inproc", "rank transport: inproc (all P ranks in this process) or tcp (multi-process fleet)")
	join := flag.String("join", "", "tcp transport: rendezvous address (bind-or-dial; every fleet member passes the same address)")
	ranks := flag.String("ranks", "", `tcp transport: inclusive world-rank range hosted by this process ("lo..hi" or a single rank)`)
	crashExit := flag.Bool("crash-exit", true, "tcp transport: kill this process once all its ranks crash-stop (survivors journal the loss and fail over)")
	tenant := flag.String("tenant", "", "namespace requests to this archive tenant (X-Cham-Tenant header)")
	flag.Parse()
	if *tenant != "" {
		store.SetTenant(*tenant)
	}

	if *pushEdges && (*push == "" || !*causalFlag) {
		fatal("push-edges: requires both -causal and -push")
	}

	var plan *chameleon.FaultPlan
	if *faults != "" {
		var err error
		if (*faults)[0] == '@' {
			plan, err = chameleon.LoadFaultPlan((*faults)[1:])
		} else {
			plan, err = chameleon.ParseFaultPlan(*faults)
		}
		if err != nil {
			fatal("faults: %v", err)
		}
	}
	if *noise != "" {
		np, err := chameleon.ParseNoisePlan(*noise, *p, *noiseSeed)
		if err != nil {
			fatal("noise: %v", err)
		}
		if plan == nil {
			plan = np
		} else {
			plan.Merge(np)
		}
	}
	var injector *chameleon.FaultInjector
	if plan != nil {
		if plan.HasCrashes() && *tr != "chameleon" {
			fatal("faults: crash directives require -tracer chameleon (crashes fire at its markers)")
		}
		var err error
		injector, err = chameleon.NewFaultInjector(plan, *faultSeed, *p)
		if err != nil {
			fatal("faults: %v", err)
		}
	}

	// Fleet rendezvous happens before the observer exists so the crash
	// hook can flush whatever telemetry sinks get built below; the
	// closure reads shipper/journalFile at crash time, not now.
	var (
		journalFile *os.File
		shipper     *chameleon.LiveShipper
		fleetTr     *mpi.TCPTransport
		fleetInfo   mpi.FleetInfo
	)
	hostsRank0 := true // inproc hosts the whole world
	switch *transport {
	case "inproc":
		if *join != "" || *ranks != "" {
			fatal("transport: -join/-ranks require -transport=tcp")
		}
	case "tcp":
		if *ranks == "" {
			fatal("transport: -transport=tcp requires -ranks")
		}
		// Every member must run the identical configuration — the
		// fingerprint is compared at rendezvous so a mismatched fleet
		// fails fast instead of silently diverging.
		fp := fmt.Sprintf("bench=%s class=%s p=%d tracer=%s k=%d freq=%d algo=%s faults=%s noise=%s fseed=%d nseed=%d sync=%d ckpt=%d",
			*bench, *class, *p, *tr, *k, *freq, *algo, *faults, *noise,
			*faultSeed, *noiseSeed, *syncEvery, *checkpointEvery)
		var err error
		fleetTr, fleetInfo, err = fleet.Connect(fleet.Options{
			Join:        *join,
			Ranks:       *ranks,
			P:           *p,
			Session:     *liveSession,
			Fingerprint: fp,
			ExitOnCrash: *crashExit,
			OnCrashExit: func() {
				// Last words before the self-kill: flush the live
				// shipper and the journal so watchers see the
				// crash-stop instead of a silent disappearance.
				if shipper != nil {
					shipper.Stop()
				}
				if journalFile != nil {
					journalFile.Sync()
				}
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "chamrun: fleet: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal("transport: %v", err)
		}
		// The transport is closed by the runtime's Run lifecycle.
		hostsRank0 = fleetInfo.HostsRank0
		fmt.Printf("fleet       session %s, member %d of %d, hosting ranks %s\n",
			fleetInfo.Session, fleetInfo.Member, fleetInfo.Members, *ranks)
	default:
		fatal("transport: unknown transport %q (inproc or tcp)", *transport)
	}

	opts := chameleon.ObsOptions{
		Metrics: *metrics || *metricsOut != "" || *debugAddr != "" || *live != "",
	}
	if *live != "" {
		// Live telemetry needs the progress board and a journal tail ring
		// even when no journal file was requested.
		opts.ProgressRanks = *p
		opts.JournalRing = 1024
	}
	if *journal {
		f, err := os.Create(*journalOut)
		if err != nil {
			fatal("journal: %v", err)
		}
		journalFile = f
		opts.Journal = f
	}
	if *timeline {
		opts.TimelineRanks = *p
	}
	if *causalFlag {
		opts.CausalRanks = *p
	}
	observer := chameleon.NewObserver(opts)

	if *debugAddr != "" {
		expvar.Publish("chameleon", expvar.Func(func() any {
			return observer.Reg.Snapshot()
		}))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "chamrun: debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug       http://%s/debug/pprof http://%s/debug/vars\n", *debugAddr, *debugAddr)
	}

	if *live != "" {
		shipOpts := chameleon.LiveShipperOptions{
			URL:       *live,
			Session:   *liveSession,
			Benchmark: *bench,
			P:         *p,
			Interval:  *liveInterval,
		}
		if fleetTr != nil {
			// Each rank process ships its own independently-sequenced
			// delta stream; chamd attributes them all to the fleet
			// session, dedups per part, and only finalizes the session
			// once every member's final delta lands. The Ranks filter
			// keeps this member's zero rows from clobbering peers'
			// progress.
			shipOpts.Session = fleetInfo.Session
			shipOpts.Part = fmt.Sprintf("m%d", fleetInfo.Member)
			lo, hi, _ := fleet.ParseRanks(*ranks)
			for r := lo; r <= hi; r++ {
				shipOpts.Ranks = append(shipOpts.Ranks, r)
			}
		}
		var err error
		shipper, err = chameleon.NewLiveShipper(observer, shipOpts)
		if err != nil {
			fatal("live: %v", err)
		}
		shipper.Start()
		fmt.Printf("live        %s/live/sessions/%s (every %v; chamtop -follow %s -session %s)\n",
			strings.TrimSuffix(*live, "/"), shipper.Session(), *liveInterval, *live, shipper.Session())
	}

	override := &chameleon.Config{
		K: *k, Freq: *freq, Algo: *algo, Obs: observer, Fault: injector,
		SyncEvery: *syncEvery, CheckpointEvery: *checkpointEvery,
	}
	if fleetTr != nil {
		override.Transport = fleetTr
	}
	res, err := chameleon.RunBenchmark(*bench, *class, *p, chameleon.Tracer(*tr), override)
	if shipper != nil {
		// Flush the final delta even when the run failed, so watchers see
		// the ending either way.
		if serr := shipper.Stop(); serr != nil {
			fmt.Fprintf(os.Stderr, "chamrun: live: %v\n", serr)
		} else {
			st := shipper.Stats()
			fmt.Printf("live        shipped %d deltas in %d posts (%d B; errors=%d dropped=%d)\n",
				st.Deltas, st.Posts, st.BytesOut, st.Errors, st.Dropped)
		}
	}
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("benchmark   %s class %s, P=%d, tracer=%s\n", *bench, *class, *p, *tr)
	fmt.Printf("makespan    %v (virtual)\n", res.Time)
	fmt.Printf("overhead    %v aggregate across ranks\n", res.Overhead)
	keys := make([]string, 0, len(res.OverheadBy))
	for k := range res.OverheadBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %v\n", k, res.OverheadBy[k])
	}
	if len(res.StateCalls) > 0 {
		fmt.Printf("states      AT=%d C=%d L=%d F=%d (re-clusterings: %d, call-paths: %d)\n",
			res.StateCalls["AT"], res.StateCalls["C"], res.StateCalls["L"], res.StateCalls["F"],
			res.Reclusterings, res.CallPathClusters)
		fmt.Printf("leads       %v\n", res.Leads)
	}
	if len(res.Departed) > 0 {
		fmt.Printf("departed    %v (crash-stopped; %d of %d ranks survive)\n",
			res.Departed, *p-len(res.Departed), *p)
	}
	var pushedID string
	if !hostsRank0 {
		// Collectors are per-process and the tracers' merge trees root
		// at rank 0, so only the member hosting rank 0 holds the real
		// merged trace; everyone else's collector saw only local merge
		// traffic. Saving or pushing it would archive a fragment.
		if res.Trace != nil {
			fmt.Printf("trace       (merged trace lives with the rank-0 member; not saved here)\n")
		}
	} else if res.Trace != nil {
		fmt.Printf("trace       %d top-level nodes\n", len(res.Trace.Nodes))
		if *out != "" {
			save := res.Trace.Save
			if *useBinary {
				save = res.Trace.SaveBinary
			}
			if err := save(*out); err != nil {
				fatal("save: %v", err)
			}
			fmt.Printf("wrote       %s\n", *out)
		}
		if *push != "" {
			run, created, err := store.Push(*push, res.Trace, *pushGzip)
			if err != nil {
				fatal("push: %v", err)
			}
			verb := "stored"
			if !created {
				verb = "dedup"
			}
			pushedID = run.ID
			fmt.Printf("pushed      %s/runs/%s (%s, %d B raw)\n",
				strings.TrimSuffix(*push, "/"), run.ID[:12], verb, run.RawBytes)
		}
	} else if *push != "" {
		fatal("push: the run produced no trace (tracer %q)", *tr)
	}

	if journalFile != nil {
		if err := observer.Journal.Err(); err != nil {
			fatal("journal: %v", err)
		}
		if err := journalFile.Close(); err != nil {
			fatal("journal: %v", err)
		}
		fmt.Printf("journal     %s (%d events; summarize with chamtop)\n",
			*journalOut, observer.Journal.Events())
	}
	if *timeline {
		f, err := os.Create(*timelineOut)
		if err != nil {
			fatal("timeline: %v", err)
		}
		// With causal capture on, the trace also carries flow events
		// (Perfetto arrows) linking delaying sends to the receives they
		// blocked.
		if err := observer.Timeline.WriteChromeTraceFlows(f, observer.Causal); err != nil {
			fatal("timeline: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("timeline: %v", err)
		}
		fmt.Printf("timeline    %s (%d spans, %d dropped; open in Perfetto)\n",
			*timelineOut, observer.Timeline.SpanCount(), observer.Timeline.Dropped())
		if d := observer.Timeline.Dropped(); d > 0 {
			fmt.Printf("WARNING     span capture truncated at the per-rank cap (%d dropped)\n", d)
		}
	}
	if *causalFlag {
		var buf bytes.Buffer
		if err := observer.Causal.WriteEdges(&buf); err != nil {
			fatal("edges: %v", err)
		}
		if err := os.WriteFile(*edgesOut, buf.Bytes(), 0o644); err != nil {
			fatal("edges: %v", err)
		}
		fmt.Printf("edges       %s (%d edges, %d dropped; analyze with chamtop -critical or -waves)\n",
			*edgesOut, observer.Causal.EdgeCount(), observer.Causal.Dropped())
		if *pushEdges && pushedID != "" {
			if err := store.PushEdges(*push, pushedID, buf.Bytes(), *pushGzip); err != nil {
				fatal("push-edges: %v", err)
			}
			fmt.Printf("pushed      edge sidecar for %s (%d B; chamstat -waves %s/runs/%s)\n",
				pushedID[:12], buf.Len(), strings.TrimSuffix(*push, "/"), pushedID[:12])
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics: %v", err)
		}
		if err := observer.Reg.Snapshot().WriteJSON(f); err != nil {
			fatal("metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("metrics: %v", err)
		}
		fmt.Printf("metrics     %s\n", *metricsOut)
	}
	if *metrics {
		fmt.Println("metrics")
		if err := observer.Reg.Snapshot().WriteText(os.Stdout); err != nil {
			fatal("metrics: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chamrun: "+format+"\n", args...)
	os.Exit(1)
}
