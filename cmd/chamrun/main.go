// Command chamrun traces one of the paper's benchmarks on the simulated
// MPI runtime and writes the resulting global trace file.
//
// Usage:
//
//	chamrun -bench LU -class D -p 64 -tracer chameleon -o lu.trace
//
// Tracers: none (timing only), scalatrace, chameleon, acurdion.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chameleon"
)

func main() {
	bench := flag.String("bench", "LU", "benchmark: "+strings.Join(chameleon.Benchmarks(), ", "))
	class := flag.String("class", "D", "NPB input class (A-D)")
	p := flag.Int("p", 64, "number of ranks")
	tr := flag.String("tracer", "chameleon", "tracer: none, scalatrace, chameleon, acurdion")
	k := flag.Int("k", 0, "cluster budget K (0 = benchmark default)")
	freq := flag.Int("freq", 0, "marker frequency in timesteps (0 = benchmark default)")
	algo := flag.String("algo", "", "clustering algorithm: k-farthest, k-medoid, k-random")
	out := flag.String("o", "", "trace output path (empty = don't write)")
	useBinary := flag.Bool("binary", false, "write the trace in the compact binary format")
	flag.Parse()

	override := &chameleon.Config{K: *k, Freq: *freq, Algo: *algo}
	res, err := chameleon.RunBenchmark(*bench, *class, *p, chameleon.Tracer(*tr), override)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamrun: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark   %s class %s, P=%d, tracer=%s\n", *bench, *class, *p, *tr)
	fmt.Printf("makespan    %v (virtual)\n", res.Time)
	fmt.Printf("overhead    %v aggregate across ranks\n", res.Overhead)
	keys := make([]string, 0, len(res.OverheadBy))
	for k := range res.OverheadBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %v\n", k, res.OverheadBy[k])
	}
	if len(res.StateCalls) > 0 {
		fmt.Printf("states      AT=%d C=%d L=%d F=%d (re-clusterings: %d, call-paths: %d)\n",
			res.StateCalls["AT"], res.StateCalls["C"], res.StateCalls["L"], res.StateCalls["F"],
			res.Reclusterings, res.CallPathClusters)
		fmt.Printf("leads       %v\n", res.Leads)
	}
	if res.Trace != nil {
		fmt.Printf("trace       %d top-level nodes\n", len(res.Trace.Nodes))
		if *out != "" {
			save := res.Trace.Save
			if *useBinary {
				save = res.Trace.SaveBinary
			}
			if err := save(*out); err != nil {
				fmt.Fprintf(os.Stderr, "chamrun: save: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote       %s\n", *out)
		}
	}
}
