// Command chamreplay interprets a trace file produced by chamrun on the
// simulated runtime (the ScalaReplay reproduction) and reports the
// replay makespan. With -ref it also computes the paper's accuracy
// metric ACC = 1-|t-t'|/t against a reference trace's replay time.
//
// Usage:
//
//	chamreplay lu.trace
//	chamreplay -ref lu-scalatrace.trace lu-chameleon.trace
//
// Trace arguments may be http(s):// run references into a chamd
// archive (docs/STORE.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon"
	"chameleon/internal/replay"
	"chameleon/internal/store"
)

func main() {
	ref := flag.String("ref", "", "reference trace for the accuracy metric")
	delta := flag.String("delta", "mean", "computation-time draw: mean, min, max, sampled")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chamreplay [-ref reference.trace] trace-file")
		os.Exit(2)
	}

	f, err := store.LoadTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamreplay: %v\n", err)
		os.Exit(1)
	}
	mode, ok := map[string]replay.DeltaMode{
		"mean": replay.DeltaMean, "min": replay.DeltaMin,
		"max": replay.DeltaMax, "sampled": replay.DeltaSampled,
	}[*delta]
	if !ok {
		fmt.Fprintf(os.Stderr, "chamreplay: unknown delta mode %q\n", *delta)
		os.Exit(2)
	}
	res, err := replay.RunWith(f, replay.Options{Delta: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamreplay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace       %s (%s, P=%d, clustered=%v)\n", flag.Arg(0), f.Tracer, f.P, f.Clustered)
	fmt.Printf("replay time %v (virtual)\n", res.Time)
	fmt.Printf("events      %d dynamic MPI events re-issued\n", res.Events)

	if *ref != "" {
		rf, err := store.LoadTrace(*ref)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chamreplay: %v\n", err)
			os.Exit(1)
		}
		rres, err := chameleon.Replay(rf, chameleon.DefaultModel())
		if err != nil {
			fmt.Fprintf(os.Stderr, "chamreplay: reference: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("reference   %v (%s)\n", rres.Time, rf.Tracer)
		fmt.Printf("accuracy    %.2f%%\n", chameleon.Accuracy(rres.Time, res.Time)*100)
	}
}
