// Command chamtop summarizes a Chameleon observability journal (the
// JSONL file written by chamrun -journal) into human-readable tables:
// the rank-0 state timeline with per-segment virtual-time spans, the
// Algorithm 1 vote history, cluster formations, flushes into the online
// trace, radix-tree merge work, and per-rank finalize totals.
//
// With -critical it switches to the causal analysis view: it loads the
// edge file written by chamrun -causal, extracts per-collective critical
// paths, and prints the top straggler ranks with per-phase and
// per-window wait attribution (plus the span-category breakdown when a
// Chrome trace is given with -trace).
//
// With -follow it becomes the live monitor: it polls (long-poll) a
// chamd daemon's live-session endpoint and renders a refreshing view of
// an in-flight run — per-rank window progress, heartbeats, and the
// daemon's straggler/stall flags — while the run executes (start the
// run with chamrun -live; see docs/OBSERVABILITY.md).
//
// With -zan it ranks a finished trace's hottest marker windows by
// wait-state time, computed in the compressed domain (internal/zan,
// docs/ANALYSIS.md) without expanding the trace. Add -check to verify
// the closed-form metrics against the expansion oracle and the
// replayer before trusting the ranking.
//
// With -waves it runs the idle-wave detector (internal/wave,
// docs/OBSERVABILITY.md) over the causal edge file and renders a
// rank x virtual-time wait heatmap with the fitted wave fronts marked,
// followed by the per-wave kinematics summary (origin, speed, decay).
//
// Usage:
//
//	chamtop chameleon.journal.jsonl
//	chamtop -critical -edges chameleon.edges.jsonl [-trace t.json] [-top 10] [journal.jsonl]
//	chamtop -follow http://localhost:8321 [-session id] [-once]
//	chamtop -zan lu.trace [-check] [-top 10]
//	chamtop -waves -edges chameleon.edges.jsonl [-p 16] [-bins 96]
//
// The journal, edge, and trace arguments may also be http(s):// URLs
// (e.g. artifacts served by a chamd host, docs/STORE.md); chamtop
// fetches them before analyzing.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"chameleon/internal/analysis"
	"chameleon/internal/causal"
	"chameleon/internal/obs"
	"chameleon/internal/stats"
	"chameleon/internal/store"
	"chameleon/internal/vtime"
	"chameleon/internal/wave"
	"chameleon/internal/zan"
)

func main() {
	critical := flag.Bool("critical", false, "causal critical-path / straggler report (needs -edges)")
	edgesPath := flag.String("edges", "chameleon.edges.jsonl", "causal edge JSONL file (with -critical)")
	tracePath := flag.String("trace", "", "Chrome trace file for the span breakdown (with -critical)")
	topN := flag.Int("top", 10, "rows per table in the critical report")
	follow := flag.String("follow", "", "chamd base URL: watch a live session instead of reading a journal")
	session := flag.String("session", "", "live session ID to follow (default: the most recently updated)")
	once := flag.Bool("once", false, "with -follow: print one frame and exit (no refresh loop)")
	pollTimeout := flag.Duration("poll", 10*time.Second, "with -follow: long-poll timeout per request")
	zanRef := flag.String("zan", "", "trace path or run URL: rank its hottest windows by compressed-domain wait time")
	check := flag.Bool("check", false, "with -zan: cross-check the metrics against the expansion oracle and the replayer")
	waves := flag.Bool("waves", false, "idle-wave view: detect waves in the causal edge file and render the rank x time heatmap")
	nranks := flag.Int("p", 0, "with -waves: rank count (0 = infer from the edges)")
	bins := flag.Int("bins", 96, "with -waves: heatmap time bins")
	cols := flag.Int("cols", 0, "with -waves: treat ranks as a row-major grid this many columns wide (0 = 1-D chain)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: chamtop [-critical -edges edges.jsonl [-trace trace.json] [-top n]] [journal.jsonl]")
		fmt.Fprintln(os.Stderr, "       chamtop -follow http://host:8321 [-session id] [-once] [-poll 10s]")
		fmt.Fprintln(os.Stderr, "       chamtop -zan trace-ref [-check] [-top n]")
		fmt.Fprintln(os.Stderr, "       chamtop -waves -edges edges-ref [-p n] [-bins n] [-cols n]")
		flag.PrintDefaults()
	}
	tenant := flag.String("tenant", "", "namespace requests to this archive tenant (X-Cham-Tenant header)")
	flag.Parse()
	if *tenant != "" {
		store.SetTenant(*tenant)
	}

	if *follow != "" {
		followLive(*follow, *session, *once, *pollTimeout)
		return
	}
	if *zanRef != "" {
		zanReport(*zanRef, *topN, *check)
		return
	}
	if *waves {
		waveView(*edgesPath, *nranks, *bins, *cols)
		return
	}

	var events []obs.Event
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := store.OpenRef(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		events, err = obs.ReadJournal(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		if len(events) == 0 {
			fatal("%s: empty journal", flag.Arg(0))
		}
	}

	if *critical {
		criticalReport(*edgesPath, *tracePath, events, *topN)
		return
	}
	if events == nil {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("%s: %d events\n\n", flag.Arg(0), len(events))
	stateTimeline(events)
	votes(events)
	clusterings(events)
	flushes(events)
	merges(events)
	finalize(events)
}

// criticalReport runs the offline causal analysis: edges (required),
// journal events (optional, for window/phase attribution), Chrome trace
// (optional, for the span-category breakdown).
func criticalReport(edgesPath, tracePath string, events []obs.Event, topN int) {
	f, err := store.OpenRef(edgesPath)
	if err != nil {
		fatal("%v (run chamrun with -causal to produce an edge file)", err)
	}
	edges, err := obs.ReadEdges(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	if len(edges) == 0 {
		fatal("%s: no edges", edgesPath)
	}
	rep := causal.Analyze(edges, events)
	if err := rep.WriteText(os.Stdout, topN); err != nil {
		fatal("%v", err)
	}
	if tracePath != "" {
		tf, err := store.OpenRef(tracePath)
		if err != nil {
			fatal("%v", err)
		}
		ts, err := causal.ReadChromeTrace(tf)
		tf.Close()
		if err != nil {
			fatal("%v", err)
		}
		causal.WriteSpanBreakdown(os.Stdout, ts)
	}
}

// segment is one maximal run of marker calls spent in a single
// transition-graph state on rank 0.
type segment struct {
	state       string
	firstMarker int
	lastMarker  int
	startVT     int64
	endVT       int64
	calls       int
}

func stateTimeline(events []obs.Event) {
	var segs []segment
	for _, ev := range events {
		if ev.Kind != obs.KindTransition {
			continue
		}
		if n := len(segs); n > 0 && segs[n-1].state == ev.To {
			s := &segs[n-1]
			s.lastMarker = ev.Marker
			s.endVT = ev.VT
			s.calls++
			continue
		}
		segs = append(segs, segment{
			state: ev.To, firstMarker: ev.Marker, lastMarker: ev.Marker,
			startVT: ev.VT, endVT: ev.VT, calls: 1,
		})
	}
	if len(segs) == 0 {
		return
	}
	fmt.Println("state timeline (rank 0)")
	w := tab()
	fmt.Fprintln(w, "  #\tstate\tmarkers\tcalls\tvt-start\tvt-span")
	for i, s := range segs {
		markers := fmt.Sprintf("%d", s.firstMarker)
		if s.lastMarker != s.firstMarker {
			markers = fmt.Sprintf("%d-%d", s.firstMarker, s.lastMarker)
		}
		fmt.Fprintf(w, "  %d\t%s\t%s\t%d\t%s\t%s\n",
			i+1, s.state, markers, s.calls, vt(s.startVT), vt(s.endVT-s.startVT))
	}
	w.Flush()
	fmt.Println()
}

func votes(events []obs.Event) {
	h := stats.NewHistogram()
	total, mismatched := 0, 0
	for _, ev := range events {
		if ev.Kind != obs.KindVote {
			continue
		}
		total++
		v, ok := ev.VoteCount()
		if !ok {
			continue // malformed vote event: no recorded sum
		}
		h.Add(int64(v))
		if v > 0 {
			mismatched++
		}
	}
	if total == 0 {
		return
	}
	fmt.Println("votes (Algorithm 1 Reduce+Bcast)")
	w := tab()
	fmt.Fprintln(w, "  total\tmismatched\tmax-ranks\tp50-ranks\tp99-ranks")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		total, mismatched, h.Max, h.Quantile(0.50), h.Quantile(0.99))
	w.Flush()
	fmt.Println()
}

func clusterings(events []obs.Event) {
	var rows []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindCluster {
			rows = append(rows, ev)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("cluster formations")
	w := tab()
	fmt.Fprintln(w, "  #\tvt\tK\tcall-paths\tleads")
	for i, ev := range rows {
		fmt.Fprintf(w, "  %d\t%s\t%d\t%d\t%v\n", i+1, vt(ev.VT), ev.K, ev.Count, ev.Leads)
	}
	w.Flush()
	fmt.Println()
}

func flushes(events []obs.Event) {
	var rows []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindFlush {
			rows = append(rows, ev)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("flushes into the online trace")
	w := tab()
	fmt.Fprintln(w, "  #\tvt\tmarker\tround\tcause\tonline-bytes")
	for i, ev := range rows {
		fmt.Fprintf(w, "  %d\t%s\t%d\t%d\t%s\t%d\n",
			i+1, vt(ev.VT), ev.Marker, ev.Round, ev.Note, ev.Bytes)
	}
	w.Flush()
	fmt.Println()
}

func merges(events []obs.Event) {
	compares := stats.NewHistogram()
	steps := 0
	var bytes int64
	for _, ev := range events {
		if ev.Kind != obs.KindMerge {
			continue
		}
		steps++
		compares.Add(int64(ev.Count))
		bytes += ev.Bytes
	}
	if steps == 0 {
		return
	}
	fmt.Println("radix-tree merge steps")
	w := tab()
	fmt.Fprintln(w, "  steps\tbytes\tcompares-p50\tcompares-p99\tcompares-max")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		steps, bytes, compares.Quantile(0.50), compares.Quantile(0.99), compares.Max)
	w.Flush()
	fmt.Println()
}

func finalize(events []obs.Event) {
	type tot struct {
		rank   int
		events uint64
		bytes  int64
	}
	var rows []tot
	recorded := stats.NewHistogram()
	for _, ev := range events {
		if ev.Kind != obs.KindFinalize {
			continue
		}
		rows = append(rows, tot{ev.Rank, ev.Count, ev.Bytes})
		recorded.Add(int64(ev.Count))
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rank < rows[j].rank })
	var events64, bytes64 int64
	for _, r := range rows {
		events64 += int64(r.events)
		bytes64 += r.bytes
	}
	fmt.Println("finalize (per-rank recorded events)")
	w := tab()
	fmt.Fprintln(w, "  ranks\tevents-total\tbytes-total\tevents-p50\tevents-max")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		len(rows), events64, bytes64, recorded.Quantile(0.50), recorded.Max)
	w.Flush()
}

// waveView is the -waves mode: load the causal edge file (a local path
// or a chamd /runs/{id}/edges URL), run the idle-wave detector, and
// render the rank x virtual-time heatmap plus the per-wave kinematics.
func waveView(edgesRef string, p, bins, cols int) {
	f, err := store.OpenRef(edgesRef)
	if err != nil {
		fatal("%v (run chamrun with -causal to produce an edge file)", err)
	}
	edges, err := obs.ReadEdges(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	if len(edges) == 0 {
		fatal("%s: no edges", edgesRef)
	}
	if p <= 0 {
		for _, e := range edges {
			if e.From >= p {
				p = e.From + 1
			}
			if e.To >= p {
				p = e.To + 1
			}
		}
	}
	rep, err := wave.Detect(edges, wave.Options{P: p, Cols: cols})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: P=%d, %d edges, %d wait points (%d significant, floor %s, gap %s)\n\n",
		edgesRef, p, rep.Edges, rep.WaitPoints, rep.Significant, vt(rep.FloorNs), vt(rep.MaxGapNs))
	hm := wave.BuildHeatmap(edges, p, bins)
	fmt.Print(hm.Render(rep))
	fmt.Println()
	fmt.Print(wave.Summary(rep))
}

// zanReport is the -zan mode: one compressed-domain walk over the
// trace, then the hottest marker windows by wait-state time.
func zanReport(ref string, topN int, check bool) {
	f, err := store.LoadTrace(ref)
	if err != nil {
		fatal("%v", err)
	}
	rep, err := zan.Analyze(f, zan.Options{})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: P=%d, %d events in %d stored nodes (%.1fx), %d windows\n",
		ref, rep.P, rep.Events, rep.StoredNodes, rep.CompressionRatio, len(rep.Windows))
	fmt.Printf("compute=%v comm=%v wait=%v imbalance=%.2f comm/compute=%.3f\n\n",
		time.Duration(rep.ComputeNs), time.Duration(rep.CommNs), time.Duration(rep.WaitNs),
		rep.LoadImbalance, rep.CommRatio)

	fmt.Println("hottest windows by wait-state time")
	w := tab()
	fmt.Fprintln(w, "  window\twait\tcompute\tcomm\tevents\timbalance\tlocal-unmatched")
	for _, i := range rep.TopWaitWindows(topN) {
		win := &rep.Windows[i]
		fmt.Fprintf(w, "  %d\t%s\t%s\t%s\t%d\t%.2f\t%d\n",
			win.Index, vt(win.WaitNs), vt(win.ComputeNs), vt(win.CommNs),
			win.Events, win.LoadImbalance, win.LocalUnmatched)
	}
	w.Flush()

	m := rep.Match
	fmt.Printf("\nmatch: sends=%d recvs=%d paired=%d cross-window=%d order-violations=%d",
		m.Sends, m.Recvs, m.ResolvedPairs, m.CrossWindow, m.OrderViolations)
	if m.Consistent {
		fmt.Println(" => consistent")
	} else {
		fmt.Printf(" => INCONSISTENT (%d unmatched)\n", m.Unmatched)
	}

	if check {
		if _, err := analysis.CrossCheck(f, vtime.Default()); err != nil {
			fatal("%v", err)
		}
		fmt.Println("cross-check: closed-form metrics match the expansion oracle and the replayed event count")
	}
}

// followLive is the -follow mode: long-poll a chamd live session and
// redraw its view each time the server's version advances, until the
// run finalizes (or forever for -once=false sessions that never do;
// interrupt with ^C).
func followLive(base, session string, once bool, poll time.Duration) {
	if session == "" {
		sessions, err := store.FetchLiveSessions(base)
		if err != nil {
			fatal("follow: %v", err)
		}
		if len(sessions) == 0 {
			fatal("follow: %s has no live sessions (start one with chamrun -live %s)", base, base)
		}
		// List() returns newest-updated first; follow that one.
		session = sessions[0].Session
		if len(sessions) > 1 {
			fmt.Fprintf(os.Stderr, "chamtop: %d live sessions, following most recent %q (pick with -session):\n",
				len(sessions), session)
			for _, s := range sessions {
				fmt.Fprintf(os.Stderr, "  %-20s %-10s P=%d stragglers=%d\n", s.Session, s.Benchmark, s.P, s.Stragglers)
			}
		}
	}

	v, err := store.FetchLiveView(base, session)
	if err != nil {
		fatal("follow: %v", err)
	}
	for {
		if !once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: redraw in place
		}
		store.RenderSessionView(os.Stdout, v)
		if once || v.Final {
			return
		}
		next, err := store.WatchLiveView(base, session, v.Version, poll)
		if err != nil {
			// Transient watch errors (daemon restart, request timeout edge)
			// shouldn't kill the monitor; back off briefly and re-fetch.
			fmt.Fprintf(os.Stderr, "chamtop: watch: %v\n", err)
			time.Sleep(time.Second)
			next, err = store.FetchLiveView(base, session)
			if err != nil {
				fatal("follow: %v", err)
			}
		}
		v = next
	}
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// vt renders a virtual-nanosecond value as a duration.
func vt(ns int64) string { return time.Duration(ns).String() }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chamtop: "+format+"\n", args...)
	os.Exit(1)
}
