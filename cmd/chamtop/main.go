// Command chamtop summarizes a Chameleon observability journal (the
// JSONL file written by chamrun -journal) into human-readable tables:
// the rank-0 state timeline with per-segment virtual-time spans, the
// Algorithm 1 vote history, cluster formations, flushes into the online
// trace, radix-tree merge work, and per-rank finalize totals.
//
// Usage:
//
//	chamtop chameleon.journal.jsonl
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/stats"
)

func main() {
	if len(os.Args) != 2 || os.Args[1] == "-h" || os.Args[1] == "-help" {
		fmt.Fprintln(os.Stderr, "usage: chamtop <journal.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatal("%v", err)
	}
	events, err := obs.ReadJournal(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	if len(events) == 0 {
		fatal("%s: empty journal", os.Args[1])
	}

	fmt.Printf("%s: %d events\n\n", os.Args[1], len(events))
	stateTimeline(events)
	votes(events)
	clusterings(events)
	flushes(events)
	merges(events)
	finalize(events)
}

// segment is one maximal run of marker calls spent in a single
// transition-graph state on rank 0.
type segment struct {
	state       string
	firstMarker int
	lastMarker  int
	startVT     int64
	endVT       int64
	calls       int
}

func stateTimeline(events []obs.Event) {
	var segs []segment
	for _, ev := range events {
		if ev.Kind != obs.KindTransition {
			continue
		}
		if n := len(segs); n > 0 && segs[n-1].state == ev.To {
			s := &segs[n-1]
			s.lastMarker = ev.Marker
			s.endVT = ev.VT
			s.calls++
			continue
		}
		segs = append(segs, segment{
			state: ev.To, firstMarker: ev.Marker, lastMarker: ev.Marker,
			startVT: ev.VT, endVT: ev.VT, calls: 1,
		})
	}
	if len(segs) == 0 {
		return
	}
	fmt.Println("state timeline (rank 0)")
	w := tab()
	fmt.Fprintln(w, "  #\tstate\tmarkers\tcalls\tvt-start\tvt-span")
	for i, s := range segs {
		markers := fmt.Sprintf("%d", s.firstMarker)
		if s.lastMarker != s.firstMarker {
			markers = fmt.Sprintf("%d-%d", s.firstMarker, s.lastMarker)
		}
		fmt.Fprintf(w, "  %d\t%s\t%s\t%d\t%s\t%s\n",
			i+1, s.state, markers, s.calls, vt(s.startVT), vt(s.endVT-s.startVT))
	}
	w.Flush()
	fmt.Println()
}

func votes(events []obs.Event) {
	h := stats.NewHistogram()
	total, mismatched := 0, 0
	for _, ev := range events {
		if ev.Kind != obs.KindVote {
			continue
		}
		total++
		h.Add(int64(ev.Votes))
		if ev.Votes > 0 {
			mismatched++
		}
	}
	if total == 0 {
		return
	}
	fmt.Println("votes (Algorithm 1 Reduce+Bcast)")
	w := tab()
	fmt.Fprintln(w, "  total\tmismatched\tmax-ranks\tp50-ranks\tp99-ranks")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		total, mismatched, h.Max, h.Quantile(0.50), h.Quantile(0.99))
	w.Flush()
	fmt.Println()
}

func clusterings(events []obs.Event) {
	var rows []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindCluster {
			rows = append(rows, ev)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("cluster formations")
	w := tab()
	fmt.Fprintln(w, "  #\tvt\tK\tcall-paths\tleads")
	for i, ev := range rows {
		fmt.Fprintf(w, "  %d\t%s\t%d\t%d\t%v\n", i+1, vt(ev.VT), ev.K, ev.Count, ev.Leads)
	}
	w.Flush()
	fmt.Println()
}

func flushes(events []obs.Event) {
	var rows []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindFlush {
			rows = append(rows, ev)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("flushes into the online trace")
	w := tab()
	fmt.Fprintln(w, "  #\tvt\tmarker\tround\tcause\tonline-bytes")
	for i, ev := range rows {
		fmt.Fprintf(w, "  %d\t%s\t%d\t%d\t%s\t%d\n",
			i+1, vt(ev.VT), ev.Marker, ev.Round, ev.Note, ev.Bytes)
	}
	w.Flush()
	fmt.Println()
}

func merges(events []obs.Event) {
	compares := stats.NewHistogram()
	steps := 0
	var bytes int64
	for _, ev := range events {
		if ev.Kind != obs.KindMerge {
			continue
		}
		steps++
		compares.Add(int64(ev.Count))
		bytes += ev.Bytes
	}
	if steps == 0 {
		return
	}
	fmt.Println("radix-tree merge steps")
	w := tab()
	fmt.Fprintln(w, "  steps\tbytes\tcompares-p50\tcompares-p99\tcompares-max")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		steps, bytes, compares.Quantile(0.50), compares.Quantile(0.99), compares.Max)
	w.Flush()
	fmt.Println()
}

func finalize(events []obs.Event) {
	type tot struct {
		rank   int
		events uint64
		bytes  int64
	}
	var rows []tot
	recorded := stats.NewHistogram()
	for _, ev := range events {
		if ev.Kind != obs.KindFinalize {
			continue
		}
		rows = append(rows, tot{ev.Rank, ev.Count, ev.Bytes})
		recorded.Add(int64(ev.Count))
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rank < rows[j].rank })
	var events64, bytes64 int64
	for _, r := range rows {
		events64 += int64(r.events)
		bytes64 += r.bytes
	}
	fmt.Println("finalize (per-rank recorded events)")
	w := tab()
	fmt.Fprintln(w, "  ranks\tevents-total\tbytes-total\tevents-p50\tevents-max")
	fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\n",
		len(rows), events64, bytes64, recorded.Quantile(0.50), recorded.Max)
	w.Flush()
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// vt renders a virtual-nanosecond value as a duration.
func vt(ns int64) string { return time.Duration(ns).String() }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chamtop: "+format+"\n", args...)
	os.Exit(1)
}
