// Command chamdump pretty-prints a compressed trace file as an indented
// PRSD listing: loops with iteration counts, events with stack
// signatures, end-point encodings, rank lists and delta-time histograms.
//
// Usage:
//
//	chamdump lu.trace
//	chamdump -sites lu.trace   # print the interned call-site table
//	chamdump http://host:8321/runs/<id>   # fetch from a chamd archive
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon/internal/store"
	"chameleon/internal/trace"
)

func main() {
	stats := flag.Bool("stats", false, "print summary statistics only")
	sites := flag.Bool("sites", false, "print the interned call-site table and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chamdump [-stats] [-sites] trace-file")
		os.Exit(2)
	}
	f, err := store.LoadTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# tracer=%s benchmark=%s P=%d clustered=%v filter=%v\n",
		f.Tracer, f.Benchmark, f.P, f.Clustered, f.Filter)
	fmt.Printf("# nodes=%d leaves=%d dynamic-events=%d size=%dB\n",
		trace.NodeCount(f.Nodes), trace.LeafCount(f.Nodes),
		trace.DynamicEvents(f.Nodes), trace.SizeBytes(f.Nodes))
	if *sites {
		printSites(f)
		return
	}
	if *stats {
		return
	}
	fmt.Print(trace.Format(f.Nodes))
}

// printSites lists the trace's call-site table: one row per distinct
// interned signature, with function and file:line where the producing
// process resolved them (v1 traces and cross-process loads may carry
// signatures only).
func printSites(f *trace.File) {
	tab := f.Sites
	if len(tab) == 0 {
		tab = f.SiteTable()
	}
	fmt.Printf("# sites=%d\n", len(tab))
	for _, s := range tab {
		loc := "?"
		if s.Func != "" {
			loc = s.Func
			if s.File != "" {
				loc = fmt.Sprintf("%s %s:%d", s.Func, s.File, s.Line)
			}
		}
		fmt.Printf("site %4d  sig=%016x  %s\n", s.ID, uint64(s.Sig), loc)
	}
}
