// Command chamdump pretty-prints a compressed trace file as an indented
// PRSD listing: loops with iteration counts, events with stack
// signatures, end-point encodings, rank lists and delta-time histograms.
//
// Usage:
//
//	chamdump lu.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon/internal/trace"
)

func main() {
	stats := flag.Bool("stats", false, "print summary statistics only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chamdump [-stats] trace-file")
		os.Exit(2)
	}
	f, err := trace.LoadAny(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# tracer=%s benchmark=%s P=%d clustered=%v filter=%v\n",
		f.Tracer, f.Benchmark, f.P, f.Clustered, f.Filter)
	fmt.Printf("# nodes=%d leaves=%d dynamic-events=%d size=%dB\n",
		trace.NodeCount(f.Nodes), trace.LeafCount(f.Nodes),
		trace.DynamicEvents(f.Nodes), trace.SizeBytes(f.Nodes))
	if *stats {
		return
	}
	fmt.Print(trace.Format(f.Nodes))
}
