// Command chamdump pretty-prints a compressed trace file as an indented
// PRSD listing: loops with iteration counts, events with stack
// signatures, end-point encodings, rank lists and delta-time histograms.
//
// Usage:
//
//	chamdump lu.trace
//	chamdump -stats lu.trace   # compression ratio + per-window node counts
//	chamdump -sites lu.trace   # print the interned call-site table
//	chamdump http://host:8321/runs/<id>   # fetch from a chamd archive
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon/internal/store"
	"chameleon/internal/trace"
)

func main() {
	stats := flag.Bool("stats", false, "print summary statistics (compression ratio, per-window node counts) only")
	sites := flag.Bool("sites", false, "print the interned call-site table and exit")
	tenant := flag.String("tenant", "", "namespace requests to this archive tenant (X-Cham-Tenant header)")
	flag.Parse()
	if *tenant != "" {
		store.SetTenant(*tenant)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chamdump [-stats] [-sites] trace-file")
		os.Exit(2)
	}
	f, err := store.LoadTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# tracer=%s benchmark=%s P=%d clustered=%v filter=%v\n",
		f.Tracer, f.Benchmark, f.P, f.Clustered, f.Filter)
	fmt.Printf("# nodes=%d leaves=%d dynamic-events=%d size=%dB\n",
		trace.NodeCount(f.Nodes), trace.LeafCount(f.Nodes),
		trace.DynamicEvents(f.Nodes), trace.SizeBytes(f.Nodes))
	if *sites {
		printSites(f)
		return
	}
	if *stats {
		printStats(f)
		return
	}
	fmt.Print(trace.Format(f.Nodes))
}

// printStats reports how well the trace compresses — dynamic events per
// stored node — and breaks the stored representation down per marker
// window (top-level node), using the read-only visitor so nothing is
// expanded.
func printStats(f *trace.File) {
	winNodes := make([]int, len(f.Nodes))
	winLeaves := make([]int, len(f.Nodes))
	winEvents := make([]uint64, len(f.Nodes))
	winDepth := make([]int, len(f.Nodes))
	trace.Accept(f.Nodes, statsVisitor{nodes: winNodes, leaves: winLeaves, events: winEvents, depth: winDepth})

	nodes := trace.NodeCount(f.Nodes)
	// Rank-weighted dynamic events (occurrences x rank-list width), the
	// same totals zan and the replayer count.
	var events uint64
	for _, e := range winEvents {
		events += e
	}
	ratio := 0.0
	if nodes > 0 {
		ratio = float64(events) / float64(nodes)
	}
	fmt.Printf("# compression: %d dynamic events in %d stored nodes = %.1fx\n",
		events, nodes, ratio)
	fmt.Printf("# %-6s %8s %8s %12s %6s\n", "window", "nodes", "leaves", "events", "depth")
	for i := range f.Nodes {
		fmt.Printf("# %-6d %8d %8d %12d %6d\n",
			i, winNodes[i], winLeaves[i], winEvents[i], winDepth[i])
	}
}

// statsVisitor tallies per-window stored-node counts during one
// compressed walk.
type statsVisitor struct {
	nodes, leaves []int
	events        []uint64
	depth         []int
}

func (v statsVisitor) EnterLoop(n *trace.Node, c trace.Cursor) bool {
	v.nodes[c.Window]++
	if d := c.Depth + 1; d > v.depth[c.Window] {
		v.depth[c.Window] = d
	}
	return true
}

func (v statsVisitor) LeaveLoop(*trace.Node, trace.Cursor) {}

func (v statsVisitor) Leaf(n *trace.Node, c trace.Cursor) {
	v.nodes[c.Window]++
	v.leaves[c.Window]++
	v.events[c.Window] += c.Mult * uint64(n.Ranks.Size())
}

// printSites lists the trace's call-site table: one row per distinct
// interned signature, with function and file:line where the producing
// process resolved them (v1 traces and cross-process loads may carry
// signatures only).
func printSites(f *trace.File) {
	tab := f.Sites
	if len(tab) == 0 {
		tab = f.SiteTable()
	}
	fmt.Printf("# sites=%d\n", len(tab))
	for _, s := range tab {
		loc := "?"
		if s.Func != "" {
			loc = s.Func
			if s.File != "" {
				loc = fmt.Sprintf("%s %s:%d", s.Func, s.File, s.Line)
			}
		}
		fmt.Printf("site %4d  sig=%016x  %s\n", s.ID, uint64(s.Sig), loc)
	}
}
