// Command chamextrap extrapolates a compressed trace to a different rank
// count (the ScalaExtrap companion capability): topological rank-list
// classes re-instantiate on the target process grid, grid-dependent
// end-point strides rescale, and (given multiple input traces)
// computation deltas follow a fitted strong-scaling law.
//
// Usage:
//
//	chamextrap -target 1024 -o big.trace small.trace
//	chamextrap -target 1024 -o big.trace p16.trace p64.trace p256.trace
//
// With multiple inputs (ascending P), the last is the structural source
// and all contribute timing samples to the delta(P) = a + b/P fit.
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon"
	"chameleon/internal/extrap"
	"chameleon/internal/store"
	"chameleon/internal/trace"
)

func main() {
	target := flag.Int("target", 0, "target rank count")
	out := flag.String("o", "", "output trace path")
	replayIt := flag.Bool("replay", false, "replay the extrapolated trace and report its makespan")
	flag.Parse()

	if *target <= 1 || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: chamextrap -target P [-o out.trace] [-replay] trace-file...")
		os.Exit(2)
	}

	sources := make([]*trace.File, 0, flag.NArg())
	for _, path := range flag.Args() {
		f, err := store.LoadTrace(path)
		exitOn(err)
		sources = append(sources, f)
	}
	base := sources[len(sources)-1]

	result, err := extrap.Extrapolate(base, *target)
	exitOn(err)
	if len(sources) >= 2 {
		exitOn(extrap.FitTiming(sources, result))
		fmt.Printf("timing fitted from %d traces (P=", len(sources))
		for i, s := range sources {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(s.P)
		}
		fmt.Println(")")
	}
	fmt.Printf("extrapolated %s trace: P=%d -> P=%d, %d nodes\n",
		base.Benchmark, base.P, result.P, trace.NodeCount(result.Nodes))

	if *out != "" {
		exitOn(result.Save(*out))
		fmt.Printf("wrote %s\n", *out)
	}
	if *replayIt {
		res, err := chameleon.Replay(result, chameleon.DefaultModel())
		exitOn(err)
		fmt.Printf("replay at P=%d: %v (%d events)\n", result.P, res.Time, res.Events)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "chamextrap: %v\n", err)
		os.Exit(1)
	}
}
