// Command chamd serves a persistent Chameleon trace archive over HTTP:
// a content-addressed, append-only store of compressed online traces,
// queryable across runs (see docs/STORE.md).
//
// Usage:
//
//	chamd -dir /var/lib/chameleon -addr :8321 -gzip -metrics
//
// Endpoints:
//
//	PUT  /runs                            ingest a trace (idempotent; ETag = content address)
//	GET  /runs                            list runs (benchmark=, p=, sig=, sigset=, limit=, offset=; default page 100, cap 500, "next" = following offset)
//	GET  /runs/{id}                       fetch one run (binary, or ?format=json)
//	GET  /runs/{a}/diff/{b}               per-site divergence between two archived runs
//	GET  /runs/{id}/stats                 compressed-domain analysis report (ETag/If-None-Match)
//	PUT  /runs/{id}/edges                 attach a causal edge sidecar (chamrun -push-edges)
//	GET  /runs/{id}/edges                 fetch a run's edge sidecar (JSONL)
//	GET  /runs/{id}/waves                 idle-wave detector report over the sidecar (ETag/If-None-Match)
//	PUT  /cq                              register a continuous-query regression gate
//	GET  /cq                              list this tenant's gates (?all=1 intra-mesh)
//	DELETE /cq/{name}                     unregister a gate
//	GET  /cq/events                       the gate event feed (?version= long-polls)
//	POST /cq/events                       intra-mesh event broadcast (forwarded only; 403 at the edge)
//	GET  /mesh/manifest                   this peer's local holdings (anti-entropy)
//	GET  /mesh/status                     ring membership + per-tenant usage
//	POST /mesh/sweep                      trigger one anti-entropy sweep now
//	POST /live/sessions/{id}/deltas       ingest live telemetry deltas (chamrun -live)
//	GET  /live/sessions                   list in-flight sessions
//	GET  /live/sessions/{id}              one session's current view (?metrics=1)
//	GET  /live/sessions/{id}/watch        long-poll for the next version (chamtop -follow)
//	GET  /metrics                         Prometheus text (with -metrics; JSON via Accept)
//	GET  /healthz                         liveness probe
//
// Federation (docs/STORE.md, "Federation"): starting several daemons
// with the same -peers list (each naming itself via -self) makes them
// one logical archive — every run is placed on -replicas owners by
// consistent hashing over its content address, PUT fans out, GET
// proxies, GET /runs scatter-gathers, and anti-entropy sweeps (ridden
// on background compaction, or extra via -anti-entropy-every) repair
// any peer that missed writes while down. Requests are namespaced per
// tenant (X-Cham-Tenant header; tools take -tenant), with optional
// per-tenant storage quotas (-tenant-quota-mb) and token-bucket rate
// limits (-rate-limit/-rate-burst); either breach answers 429 +
// Retry-After at the edge. A -mesh-secret (or $CHAMD_MESH_SECRET),
// shared by every peer, authenticates intra-mesh traffic — without
// one, the X-Cham-Mesh loop-guard header is honored cooperatively and
// tenancy/rate limiting are not a security boundary. Continuous
// queries (PUT /cq) gate every ingest of a benchmark
// against a golden run via the chamstat diff engine and append
// regression/ok events to a long-pollable per-tenant feed.
//
// Producers push with `chamrun ... -push http://host:8321`; the analysis
// tools (chamstat, chamdump, chamreplay, chamextrap) accept
// http(s)://host/runs/{id} references wherever they take a trace path.
//
// Live telemetry (docs/OBSERVABILITY.md): runs started with
// `chamrun -live http://host:8321` stream sequence-numbered deltas here;
// the daemon tracks per-rank heartbeats and window progress, flags
// stragglers, stalls, and desynchronized rank bands (nascent idle
// waves) in flight, and `chamtop -follow` renders the view.
// -live-heartbeat, -live-ttl, and -live-desync tune the detectors.
//
// The daemon is hardened for unattended use: per-request timeouts,
// a PUT body cap, periodic background compaction of orphaned segments,
// graceful shutdown on SIGINT/SIGTERM (in-flight requests drain, the
// compactor stops, the manifest is already durable at every point), and
// -debug-addr serves net/http/pprof and expvar on a side listener.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"chameleon/internal/cq"
	"chameleon/internal/mesh"
	"chameleon/internal/obs"
	"chameleon/internal/store"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	dir := flag.String("dir", "chameleon-store", "archive directory")
	gzipSegs := flag.Bool("gzip", false, "store segments gzip-compressed (and serve gzip transfers without recompressing)")
	metrics := flag.Bool("metrics", false, "expose the obs metrics registry at GET /metrics")
	journalOut := flag.String("journal-out", "", "append store journal events (JSONL) to this path")
	maxBodyMB := flag.Int64("max-body-mb", 64, "maximum PUT body size in MiB")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request handling timeout")
	compactEvery := flag.Duration("compact-every", 10*time.Minute, "background orphan-segment compaction period (0 = disabled)")
	liveHeartbeat := flag.Duration("live-heartbeat", 5*time.Second, "live sessions: missed-heartbeat threshold before a rank is flagged stalled")
	liveTTL := flag.Duration("live-ttl", 10*time.Minute, "live sessions: drop sessions idle longer than this")
	liveDesync := flag.Duration("live-desync", time.Millisecond, "live sessions: window-arrival skew before a contiguous rank band is flagged desynchronized (negative = disable)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this side address")
	peers := flag.String("peers", "", "comma-separated peer URLs forming a federated mesh (must include -self)")
	self := flag.String("self", "", "this peer's own URL as listed in -peers")
	replicas := flag.Int("replicas", 2, "mesh replication factor R (clamped to the peer count)")
	meshSecret := flag.String("mesh-secret", os.Getenv("CHAMD_MESH_SECRET"),
		"shared key authenticating intra-mesh requests (default $CHAMD_MESH_SECRET; empty = cooperative trust, see docs/STORE.md)")
	antiEntropyEvery := flag.Duration("anti-entropy-every", 0, "extra anti-entropy sweep period (0 = sweep only with background compaction)")
	rateLimit := flag.Float64("rate-limit", 0, "per-tenant request rate limit in req/s (0 = unlimited; breaches get 429 + Retry-After)")
	rateBurst := flag.Int("rate-burst", 0, "per-tenant rate-limit burst (default: the rate)")
	tenantQuotaMB := flag.Int64("tenant-quota-mb", 0, "per-tenant storage quota in MiB of raw trace bytes (0 = unlimited)")
	cqFile := flag.String("cq-file", "", "persist continuous-query registrations to this JSON file (default: <dir>/cq.json)")
	flag.Parse()

	reg := obs.NewRegistry()
	var journal *obs.Journal
	if *journalOut != "" {
		jf, err := os.OpenFile(*journalOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("journal: %v", err)
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	// Federation: a -peers list turns this daemon into one peer of a
	// consistent-hash mesh (docs/STORE.md, "Federation").
	var node *mesh.Node
	if *peers != "" {
		if *self == "" {
			fatal("-peers requires -self")
		}
		n, err := mesh.NewNode(mesh.Options{
			Self:     *self,
			Peers:    strings.Split(*peers, ","),
			Replicas: *replicas,
			Secret:   *meshSecret,
			Reg:      reg,
		})
		if err != nil {
			fatal("%v", err)
		}
		node = n
	}

	// sweep is installed once the archive and CQ engine exist; the
	// background compactor may tick before then.
	var sweep atomic.Value // of func()
	storeOpts := store.Options{
		Gzip:         *gzipSegs,
		QuotaBytes:   *tenantQuotaMB << 20,
		Reg:          reg,
		Journal:      journal,
		CompactEvery: *compactEvery,
	}
	if node != nil {
		// Anti-entropy rides the compaction cadence: converge placement
		// in the same breath that reclaims orphans.
		storeOpts.OnCompact = func() {
			if f, ok := sweep.Load().(func()); ok {
				f()
			}
		}
	}
	archive, err := store.Open(*dir, storeOpts)
	if err != nil {
		fatal("%v", err)
	}
	defer archive.Close()

	cqPath := *cqFile
	if cqPath == "" {
		cqPath = filepath.Join(*dir, "cq.json")
	}
	engine, err := cq.New(cq.Options{
		Lookup:  store.FedLookup(archive, node),
		Persist: cqPath,
		Origin:  *self,
		OnEvent: store.BroadcastCQEvents(node),
		Reg:     reg,
	})
	if err != nil {
		fatal("cq: %v", err)
	}
	if node != nil {
		sweep.Store(func() {
			node.Sweep(archive.MeshTarget(), engine) //nolint:errcheck — next sweep retries
		})
	}

	live := store.NewLive(store.LiveOptions{
		HeartbeatTimeout: *liveHeartbeat,
		SessionTTL:       *liveTTL,
		DesyncSkewNs:     liveDesync.Nanoseconds(),
		Reg:              reg,
	})

	handler := store.NewServer(archive, store.ServerOptions{
		MaxBodyBytes:   *maxBodyMB << 20,
		RequestTimeout: *reqTimeout,
		Metrics:        *metrics,
		Reg:            reg,
		Live:           live,
		Mesh:           node,
		CQ:             engine,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
	})

	if node != nil && *antiEntropyEvery > 0 {
		ticker := time.NewTicker(*antiEntropyEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				node.Sweep(archive.MeshTarget(), engine) //nolint:errcheck — next sweep retries
			}
		}()
	}

	if *debugAddr != "" {
		// pprof registers on the default mux, which the main server's own
		// handler never exposes — only this side listener serves it.
		expvar.Publish("chameleon", expvar.Func(func() any {
			return reg.Snapshot()
		}))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "chamd: debug server: %v\n", err)
			}
		}()
		fmt.Printf("chamd       debug http://%s/debug/pprof http://%s/debug/vars\n", *debugAddr, *debugAddr)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// The handler's own timeout bounds work per request; these bound
		// slow-loris reads and stuck writes at the connection level.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("chamd       serving %s on %s (%d runs, gzip=%v, compact-every=%v)\n",
		*dir, *addr, archive.Len(), *gzipSegs, *compactEvery)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serve: %v", err)
		}
	case <-ctx.Done():
		fmt.Println("chamd       shutting down (draining in-flight requests)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fatal("shutdown: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chamd: "+format+"\n", args...)
	os.Exit(1)
}
