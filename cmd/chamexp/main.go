// Command chamexp regenerates the paper's evaluation: every table and
// figure (Tables I-IV, Figures 4-11) measured on the simulated runtime.
//
// Usage:
//
//	chamexp [-full] [-only id] [-list]
//
// By default chamexp runs laptop-scale parameters (P up to 64); -full
// runs the paper-scale parameters (P up to 1024, EMF up to 1001), which
// takes substantially longer. -only runs a single experiment by id
// (table1..table4, fig4..fig11).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chameleon/internal/exp"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale parameters (P up to 1024)")
	only := flag.String("only", "", "run a single experiment id (e.g. fig4)")
	ext := flag.Bool("ext", false, "run the beyond-the-paper extension experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		for _, id := range exp.ExtensionIDs() {
			fmt.Println(id, "(extension)")
		}
		return
	}

	params := exp.Quick()
	if *full {
		params = exp.Full()
	}

	if *only != "" {
		run, ok := exp.Lookup(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "chamexp: unknown experiment %q (use -list)\n", *only)
			os.Exit(2)
		}
		t0 := time.Now()
		table, err := run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chamexp: %s: %v\n", *only, err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		fmt.Printf("[%s completed in %v]\n", *only, time.Since(t0).Round(time.Millisecond))
		return
	}

	ids := exp.IDs()
	if *ext {
		ids = exp.ExtensionIDs()
	}
	for _, id := range ids {
		run, _ := exp.Lookup(id)
		t0 := time.Now()
		table, err := run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chamexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
