// Package chameleon is a reproduction of "Chameleon: Online Clustering
// of MPI Program Traces" (Bahmani & Mueller, IPDPS 2018) as a
// self-contained Go library.
//
// The package bundles everything the paper's system needs, built from
// scratch on the standard library:
//
//   - a deterministic in-process MPI runtime (goroutine ranks, MPI
//     matching semantics, log-P tree collectives, virtual-time cost
//     model) standing in for the paper's 108-node cluster;
//   - a ScalaTrace V2 reproduction: RSD/PRSD intra-node loop
//     compression, location-independent end-point encodings, rank
//     lists, and radix-tree inter-node compression;
//   - Chameleon itself: marker-driven phase recognition (the AT/C/L/F
//     transition graph voted on with O(log P) collectives), signature
//     clustering with K lead ranks, and the incrementally grown online
//     global trace;
//   - the ScalaTrace and ACURDION baselines, a ScalaReplay-style replay
//     engine with cluster-aware transposition, and communication
//     skeletons of the paper's benchmarks (NPB BT/LU/SP/CG, Sweep3D,
//     POP, EMF).
//
// Quick start: trace a benchmark under Chameleon and replay its trace.
//
//	out, err := chameleon.RunBenchmark("LU", "D", 64, chameleon.TracerChameleon, nil)
//	if err != nil { ... }
//	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
//
// Custom applications use Run with a per-rank body; insert
// chameleon.Marker at timestep boundaries so clustering can engage:
//
//	out, err := chameleon.Run(chameleon.Config{P: 16, Tracer: chameleon.TracerChameleon, K: 4},
//	    func(p *chameleon.Proc) {
//	        w := p.World()
//	        for step := 0; step < 100; step++ {
//	            w.Sendrecv((p.Rank()+1)%p.Size(), 1, 1024, nil, (p.Rank()+p.Size()-1)%p.Size(), 1)
//	            chameleon.Marker(p)
//	        }
//	    })
package chameleon

import (
	"fmt"
	"io"

	"chameleon/internal/acurdion"
	"chameleon/internal/apps"
	"chameleon/internal/cluster"
	"chameleon/internal/core"
	"chameleon/internal/energy"
	"chameleon/internal/fault"
	"chameleon/internal/mpi"
	"chameleon/internal/obs"
	"chameleon/internal/replay"
	"chameleon/internal/scalatrace"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// Re-exported fundamental types so applications outside internal/ can
// program against the runtime.
type (
	// Proc is a rank's handle inside a simulated run.
	Proc = mpi.Proc
	// Comm is a communicator handle.
	Comm = mpi.Comm
	// Duration is a span of virtual nanoseconds.
	Duration = vtime.Duration
	// Time is a virtual timestamp.
	Time = vtime.Time
	// CostModel prices the simulated machine.
	CostModel = vtime.CostModel
	// TraceFile is a serialized global trace.
	TraceFile = trace.File
	// Spec is a runnable benchmark instance.
	Spec = apps.Spec
	// ReplayResult summarizes a replay run.
	ReplayResult = replay.Result
	// EnergyReport is the DVFS energy estimate of a traced run.
	EnergyReport = energy.Report
	// EnergyModel holds the power parameters of the energy estimate.
	EnergyModel = energy.Model
	// Observer is the observability hub (metrics registry, structured
	// event journal, virtual-time timeline); nil disables everything.
	Observer = obs.Observer
	// ObsOptions selects which Observer facilities to enable.
	ObsOptions = obs.Options
	// ObsEvent is one structured journal record.
	ObsEvent = obs.Event
	// ObsSnapshot is a point-in-time copy of the metrics registry.
	ObsSnapshot = obs.Snapshot
	// ObsEdge is one matched send/recv causal edge pair.
	ObsEdge = obs.Edge
	// LiveShipper streams an Observer's state to a chamd live session.
	LiveShipper = obs.Shipper
	// LiveShipperOptions configures a live telemetry shipper.
	LiveShipperOptions = obs.ShipperOptions
	// FaultPlan is a parsed fault-injection plan (crash/delay/slow
	// directives).
	FaultPlan = fault.Plan
	// FaultInjector is a compiled, seeded fault plan ready to hook a run.
	FaultInjector = fault.Injector
)

// NewObserver assembles an Observer from the requested facilities; it
// returns nil (the disabled Observer) when none is enabled.
func NewObserver(o ObsOptions) *Observer { return obs.New(o) }

// NewLiveShipper builds a live telemetry shipper for the observer (see
// chamrun -live and docs/OBSERVABILITY.md).
func NewLiveShipper(o *Observer, opts LiveShipperOptions) (*LiveShipper, error) {
	return obs.NewShipper(o, opts)
}

// ReadJournal parses a JSONL observability journal back into events.
func ReadJournal(r io.Reader) ([]ObsEvent, error) { return obs.ReadJournal(r) }

// ReadEdges parses a JSONL causal edge stream back into edges.
func ReadEdges(r io.Reader) ([]ObsEdge, error) { return obs.ReadEdges(r) }

// ParseFaultPlan parses a fault-plan spec (the text directive grammar,
// or JSON when the input starts with '{'). An empty input yields an
// empty plan.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// LoadFaultPlan reads and parses a fault-plan file.
func LoadFaultPlan(path string) (*FaultPlan, error) { return fault.ParseFile(path) }

// ParseNoisePlan synthesizes a pulse-train fault plan from a noise-
// generator spec ("periodic ...", "resonant ...", "random ..."; see
// fault.ParseNoise). The result merges into a regular fault plan via
// Plan.Merge, which is how chamrun composes -faults with -noise.
func ParseNoisePlan(spec string, nranks int, seed uint64) (*FaultPlan, error) {
	return fault.ParseNoise(spec, nranks, seed)
}

// NewFaultInjector validates the plan against the rank count and
// compiles it with the seed. An empty (or nil) plan returns a nil
// injector: the runtime fault hooks stay disabled and the run is
// bit-identical to an uninjected one.
func NewFaultInjector(p *FaultPlan, seed uint64, nranks int) (*FaultInjector, error) {
	return fault.NewInjector(p, seed, nranks)
}

// Wildcards for point-to-point matching.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// ReduceOp combines reduction operands.
type ReduceOp = mpi.ReduceOp

// Built-in reduction operators.
var (
	OpSum = mpi.OpSum
	OpMax = mpi.OpMax
	OpMin = mpi.OpMin
)

// Virtual-time units.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// DefaultModel returns the calibrated virtual cost model.
func DefaultModel() CostModel { return vtime.Default() }

// Cart is a Cartesian topology view of a communicator.
type Cart = mpi.Cart

// NewCart attaches a Cartesian topology (dims, per-dimension
// periodicity) to a communicator, as MPI_Cart_create.
func NewCart(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	return mpi.NewCart(c, dims, periodic)
}

// Marker invokes Chameleon's clustering marker (a barrier on the
// reserved marker communicator). Applications call it at timestep
// boundaries; under non-clustering tracers it is an inert barrier.
func Marker(p *Proc) { apps.Marker(p) }

// Tracer selects the tracing tool interposed on a run.
type Tracer string

// Available tracers.
const (
	// TracerNone runs the application uninstrumented.
	TracerNone Tracer = "none"
	// TracerScalaTrace is the baseline: full per-rank tracing with one
	// P-way radix-tree merge in Finalize.
	TracerScalaTrace Tracer = "scalatrace"
	// TracerChameleon is the paper's system: online clustering with K
	// lead ranks and an incrementally grown online trace.
	TracerChameleon Tracer = "chameleon"
	// TracerACURDION clusters once, in Finalize (Table III baseline).
	TracerACURDION Tracer = "acurdion"
	// TracerAutoChameleon is Chameleon with automatic marker insertion:
	// no application Marker calls needed — a recurring collective call
	// site is discovered and used as the timestep anchor (the paper's
	// discussion item on automating marker placement).
	TracerAutoChameleon Tracer = "chameleon-auto"
)

// Config parameterizes a traced run.
type Config struct {
	// P is the rank count.
	P int
	// Tracer selects the tool (TracerNone by default).
	Tracer Tracer
	// K is the cluster budget (Chameleon/ACURDION); 0 uses 9.
	K int
	// Freq is Chameleon's Call_Frequency; 0 uses 1.
	Freq int
	// Algo names the selector: "k-farthest" (default), "k-medoid",
	// "k-random".
	Algo string
	// SigFiltered selects the filtered Call-Path construction.
	SigFiltered bool
	// Filter enables the loop-parameter filter during merges.
	Filter bool
	// Model prices the simulated machine (DefaultModel if zero).
	Model CostModel
	// Benchmark labels the run in the trace file metadata.
	Benchmark string
	// Obs, when non-nil, receives metrics, journal events, and timeline
	// spans from the run (see NewObserver). Nil disables observability
	// at the cost of one pointer test per instrumented site.
	Obs *Observer
	// Fault, when non-nil, injects the compiled fault plan into the run
	// (crash-stop at markers, compute perturbation); see
	// NewFaultInjector. Nil leaves every fault hook disabled.
	Fault *FaultInjector
	// SyncEvery overrides the period of a skeleton's built-in global
	// synchronization (see apps.BodyOpts.SyncEvery): 0 keeps the
	// skeleton default, negative disables it. Idle-wave experiments
	// disable the sync — it equalizes clocks and kills traveling waves.
	// Only honored through RunSpec/RunBenchmark.
	SyncEvery int
	// CheckpointEvery, when positive, injects a Recorder-style
	// checkpoint/IO phase every that many timesteps into skeletons that
	// support it (see apps.BodyOpts.CheckpointEvery). Only honored
	// through RunSpec/RunBenchmark.
	CheckpointEvery int
	// Transport routes messages between ranks. Nil hosts all P ranks in
	// this process; a TCP transport (internal/fleet.Connect) hosts a
	// slice of the world here and the rest in peer OS processes. Under
	// a fleet, only the process hosting rank 0 produces the real merged
	// trace — collectors are per-process, and the tracers' merge trees
	// root at rank 0.
	Transport Transport
}

// Transport is the rank-message routing seam (see mpi.Transport).
type Transport = mpi.Transport

// Output captures everything a traced run produces.
type Output struct {
	// P is the rank count.
	P int
	// Time is the virtual makespan, including tracing overhead.
	Time Duration
	// Overhead is the aggregate tracing-layer time across ranks.
	Overhead Duration
	// OverheadBy splits Overhead by activity: "intra", "marker",
	// "cluster", "intercomp".
	OverheadBy map[string]Duration
	// Trace is the resulting global trace (nil under TracerNone).
	Trace *TraceFile
	// StateCalls counts marker calls per transition-graph state
	// (Chameleon only): "AT", "C", "L", "F".
	StateCalls map[string]int
	// Reclusterings is the paper's r (Chameleon only).
	Reclusterings int
	// Leads is the most recent lead-rank set (clustering tracers).
	Leads []int
	// CallPathClusters is the number of Call-Path groups at the last
	// clustering (Chameleon only).
	CallPathClusters int
	// SpaceByState is per-rank trace bytes allocated per state
	// (Chameleon only; indexed [rank][AT,C,L,F]).
	SpaceByState [][4]int
	// AllocBytes is per-rank cumulative trace allocation (ScalaTrace
	// and ACURDION).
	AllocBytes []int
	// OnlineBytes is rank 0's online-trace allocation (Chameleon only).
	OnlineBytes int
	// Energy estimates the run's energy and the DVFS saving available
	// from ranks whose tracing clustering disabled (the paper's future
	// work; zero saving for non-clustering tracers).
	Energy EnergyReport
	// Departed lists ranks that crash-stopped under fault injection
	// (ascending; empty without faults).
	Departed []int
}

func (c Config) sigMode() tracer.SigMode {
	if c.SigFiltered {
		return tracer.SigFiltered
	}
	return tracer.SigFull
}

// Run executes body on cfg.P simulated ranks under the configured
// tracer and returns the run's outputs.
func Run(cfg Config, body func(*Proc)) (*Output, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("chameleon: invalid rank count %d", cfg.P)
	}
	mcfg := mpi.Config{P: cfg.P, Model: cfg.Model, Obs: cfg.Obs, Fault: cfg.Fault, Transport: cfg.Transport}

	out := &Output{P: cfg.P}
	var finish func(res *mpi.Result)

	switch cfg.Tracer {
	case "", TracerNone:
		finish = func(*mpi.Result) {}
	case TracerScalaTrace:
		col := scalatrace.NewCollector(cfg.P)
		mcfg.Hooks = scalatrace.New(col, scalatrace.Options{SigMode: cfg.sigMode(), Filter: cfg.Filter})
		finish = func(*mpi.Result) {
			out.Trace = col.File(cfg.P, cfg.Benchmark, cfg.Filter)
			out.AllocBytes = col.AllocBytes
		}
	case TracerChameleon:
		col := core.NewCollector(cfg.P)
		mcfg.Hooks = core.New(col, core.Options{
			K:             cfg.K,
			Algo:          cluster.ParseAlgorithm(cfg.Algo),
			CallFrequency: cfg.Freq,
			SigMode:       cfg.sigMode(),
			Filter:        cfg.Filter,
		})
		finish = func(res *mpi.Result) {
			model := cfg.Model
			if (model == CostModel{}) {
				model = DefaultModel()
			}
			saved := make([]vtime.Duration, cfg.P)
			for r := 0; r < cfg.P; r++ {
				saved[r] = energy.SavedTracingWork(model, col.ObservedPerRank[r], col.RecordedPerRank[r])
			}
			out.Energy = energy.Estimate(energy.Default(),
				energy.UsageFromLedgers(res.Clocks, res.Ledgers, saved))
			out.Trace = col.File(cfg.P, cfg.Benchmark, cfg.Filter)
			out.StateCalls = map[string]int{}
			for s := core.StateAT; s < core.NumStates; s++ {
				out.StateCalls[s.String()] = col.StateCalls[s]
			}
			out.Reclusterings = col.Reclusterings
			out.Leads = col.LeadRanks
			out.CallPathClusters = col.CallPathClusters
			out.SpaceByState = make([][4]int, cfg.P)
			raw := 0
			for r, row := range col.SpaceByState {
				out.SpaceByState[r] = [4]int(row)
				for _, b := range row {
					raw += b
				}
			}
			out.OnlineBytes = col.OnlineBytes
			if o := cfg.Obs; o != nil && o.Reg != nil && out.OnlineBytes > 0 {
				// Aggregate per-rank partial allocation vs. the online
				// global trace: the paper's inter-node compression ratio.
				o.Gauge("core_compression_ratio_x1000").Set(int64(raw) * 1000 / int64(out.OnlineBytes))
			}
		}
	case TracerAutoChameleon:
		col := core.NewCollector(cfg.P)
		mcfg.Hooks = core.NewAuto(col, core.AutoOptions{
			Options: core.Options{
				K:       cfg.K,
				Algo:    cluster.ParseAlgorithm(cfg.Algo),
				SigMode: cfg.sigMode(),
				Filter:  cfg.Filter,
			},
			Frequency: cfg.Freq,
		})
		finish = func(*mpi.Result) {
			out.Trace = col.File(cfg.P, cfg.Benchmark, cfg.Filter)
			out.StateCalls = map[string]int{}
			for s := core.StateAT; s < core.NumStates; s++ {
				out.StateCalls[s.String()] = col.StateCalls[s]
			}
			out.Reclusterings = col.Reclusterings
			out.Leads = col.LeadRanks
			out.CallPathClusters = col.CallPathClusters
		}
	case TracerACURDION:
		col := acurdion.NewCollector(cfg.P)
		mcfg.Hooks = acurdion.New(col, acurdion.Options{
			K:       cfg.K,
			Algo:    cluster.ParseAlgorithm(cfg.Algo),
			SigMode: cfg.sigMode(),
			Filter:  cfg.Filter,
		})
		finish = func(*mpi.Result) {
			out.Trace = col.File(cfg.P, cfg.Benchmark, cfg.Filter)
			out.AllocBytes = col.AllocBytes
			out.Leads = col.LeadRanks
		}
	default:
		return nil, fmt.Errorf("chameleon: unknown tracer %q", cfg.Tracer)
	}

	res, err := mpi.Run(mcfg, body)
	if err != nil {
		return nil, err
	}
	if out.Energy == (EnergyReport{}) && cfg.Tracer != TracerChameleon {
		out.Energy = energy.Estimate(energy.Default(),
			energy.UsageFromLedgers(res.Clocks, res.Ledgers, nil))
	}
	out.Time = res.Makespan
	agg := res.AggregateLedger()
	out.Overhead = agg.Overhead()
	out.OverheadBy = map[string]Duration{
		"intra":     agg.Spent(vtime.CatIntra),
		"marker":    agg.Spent(vtime.CatMarker),
		"cluster":   agg.Spent(vtime.CatCluster),
		"intercomp": agg.Spent(vtime.CatInterComp),
	}
	finish(res)
	out.Departed = res.Departed
	if out.Trace != nil && len(res.Departed) > 0 {
		out.Trace.Retired = res.Departed
	}
	if o := cfg.Obs; o != nil && o.Reg != nil {
		o.Gauge("run_makespan_vtime_ns").Set(int64(out.Time))
		o.Gauge("run_overhead_vtime_ns").Set(int64(out.Overhead))
	}
	return out, nil
}

// NewBenchmark builds the spec for one of the paper's benchmarks
// ("BT", "LU", "SP", "CG", "POP", "S3D", "LUW", "EMF") at the given NPB
// class ("A".."D") and rank count.
func NewBenchmark(name, class string, p int) (Spec, error) {
	return apps.Registry(name, apps.ParseClass(class), p)
}

// RunBenchmark traces one of the paper's benchmarks with its Table I/II
// parameters (K, Call_Frequency, signature mode). Non-nil overrides are
// applied on top of the spec defaults.
func RunBenchmark(name, class string, p int, tr Tracer, override *Config) (*Output, error) {
	spec, err := NewBenchmark(name, class, p)
	if err != nil {
		return nil, err
	}
	return RunSpec(spec, tr, override)
}

// RunSpec traces a prepared benchmark spec. Markers are inserted only
// for the Chameleon tracer (the baselines run unmodified binaries, as in
// the paper); the marker period defaults to the spec's Table II
// frequency and can be overridden via override.Freq.
func RunSpec(spec Spec, tr Tracer, override *Config) (*Output, error) {
	cfg := Config{
		P:           spec.P,
		Tracer:      tr,
		K:           spec.K,
		Freq:        1, // engage every executed marker
		SigFiltered: spec.SigMode == tracer.SigFiltered,
		Filter:      spec.Filter,
		Benchmark:   spec.Name,
	}
	markerFreq := spec.Freq
	var syncEvery, checkpointEvery int
	if override != nil {
		if override.K > 0 {
			cfg.K = override.K
		}
		if override.Freq > 0 {
			markerFreq = override.Freq
		}
		if override.Algo != "" {
			cfg.Algo = override.Algo
		}
		zero := CostModel{}
		if override.Model != zero {
			cfg.Model = override.Model
		}
		cfg.Obs = override.Obs
		cfg.Fault = override.Fault
		cfg.Transport = override.Transport
		syncEvery = override.SyncEvery
		checkpointEvery = override.CheckpointEvery
	}
	if tr == TracerAutoChameleon {
		// Automatic marker insertion needs no in-application markers;
		// the frequency steers the anchor firing rate instead.
		cfg.Freq = markerFreq
	}
	body := spec.Make(apps.BodyOpts{
		Freq:            markerFreq,
		Markers:         tr == TracerChameleon,
		SyncEvery:       syncEvery,
		CheckpointEvery: checkpointEvery,
	})
	return Run(cfg, body)
}

// Replay interprets a global trace on f.P simulated ranks and returns
// the replay makespan (ScalaReplay; cluster-aware for clustered traces).
func Replay(f *TraceFile, model CostModel) (*ReplayResult, error) {
	return replay.Run(f, model)
}

// Accuracy is the paper's metric ACC = 1 − |t−t′|/t.
func Accuracy(t, tPrime Duration) float64 { return replay.Accuracy(t, tPrime) }

// Benchmarks lists the available benchmark names.
func Benchmarks() []string { return apps.Names() }
