// Structure goldens for the hot-path refactor: the record→compress→merge
// pipelines from bench_refactor_test.go are rendered with call sites
// renumbered in first-seen order, so the text is independent of the raw
// PC-derived signature values (which move whenever the binary changes)
// but pins everything else bit-for-bit: loop structure, iteration
// counts, endpoint encodings, rank lists, and timing histograms. The
// goldens were generated before the interning refactor; the refactored
// path must reproduce them exactly.
//
// UPDATE_REFACTOR_GOLDEN=1 regenerates (only when the trace semantics
// intentionally change).
package chameleon_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
)

// canonSeq renders a node sequence with stack signatures replaced by
// dense first-seen ordinals.
func canonSeq(b *strings.Builder, seq []*trace.Node, depth int, sites map[uint64]int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range seq {
		if n.IsLoop() {
			iters := fmt.Sprintf("%d", n.Iters)
			if n.ItersHist != nil {
				iters += fmt.Sprintf("~%d", n.MeanIters())
			}
			fmt.Fprintf(b, "%sLOOP<%s> {\n", ind, iters)
			canonSeq(b, n.Body, depth+1, sites)
			fmt.Fprintf(b, "%s}\n", ind)
			continue
		}
		id, ok := sites[uint64(n.Ev.Stack)]
		if !ok {
			id = len(sites)
			sites[uint64(n.Ev.Stack)] = id
		}
		fmt.Fprintf(b, "%s%s site=%d dst=%s src=%s tag=%d bytes=%d ranks=%s",
			ind, n.Ev.Op, id, n.Ev.Dest, n.Ev.Src, n.Ev.Tag, n.Ev.Bytes, n.Ranks)
		if n.Delta != nil && n.Delta.Count() > 0 {
			fmt.Fprintf(b, " delta[n=%d min=%d max=%d mean=%d]",
				n.Delta.Count(), n.Delta.Min, n.Delta.Max, n.Delta.Mean())
		}
		b.WriteString("\n")
	}
}

func canonPipeline(app string) string {
	var out string
	_, err := mpi.Run(mpi.Config{P: 1}, func(p *mpi.Proc) {
		cfg := refactorShapes[app]
		seqs := make([][]*trace.Node, 4)
		var windows []string
		var triple0 sig.Triple
		for r := 0; r < 4; r++ {
			rec := tracer.NewRecorder(p, tracer.SigFull, false)
			feedShape(rec, cfg.shape, cfg.steps, p.Clock.Now())
			// Triple values are PC-derived; their *identity across ranks*
			// is the invariant worth pinning.
			tr := rec.Win.Triple()
			if r == 0 {
				triple0 = tr
			}
			windows = append(windows, fmt.Sprintf(
				"rank%d events=%d sites=%d sameAs0=%v",
				r, rec.Win.Events(), rec.Win.DistinctSites(), tr == triple0))
			seqs[r] = rec.TakePartial()
		}
		acc := seqs[0]
		var compares, bytesMerged int
		for r := 1; r < 4; r++ {
			m := newPipelineMerger(p.Size())
			acc = m.Merge(acc, seqs[r])
			compares += m.Stats.Compares
			bytesMerged += m.Stats.BytesMerged
		}
		var b strings.Builder
		fmt.Fprintf(&b, "pipeline %s steps=%d shape=%d\n", app, cfg.steps, len(cfg.shape))
		for _, w := range windows {
			b.WriteString(w + "\n")
		}
		fmt.Fprintf(&b, "merge compares=%d bytes=%d dynamic=%d size=%d\n",
			compares, bytesMerged, trace.DynamicEvents(acc), trace.SizeBytes(acc))
		canonSeq(&b, acc, 0, map[uint64]int{})
		out = b.String()
	})
	if err != nil {
		panic(err)
	}
	return out
}

func TestRefactorStructureGolden(t *testing.T) {
	for _, app := range []string{"PHASE", "STENCIL"} {
		t.Run(app, func(t *testing.T) {
			got := canonPipeline(app)
			path := "testdata/refactor_" + strings.ToLower(app) + ".golden"
			if os.Getenv("UPDATE_REFACTOR_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("canonical pipeline structure diverged from pre-refactor golden:\n%s", got)
			}
		})
	}
}
