// Federated-archive e2e: three genuine chamd-like OS processes form a
// consistent-hash mesh (R=2) over real sockets. The acceptance
// scenario is peer death — push runs through peer A, SIGKILL peer B,
// and every run must still read byte-identical from the survivors;
// restart B and one anti-entropy sweep must restore its share of the
// ring, including its persisted continuous-query registrations.
package chameleon_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chameleon/internal/cq"
	"chameleon/internal/mesh"
	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/store"
	"chameleon/internal/trace"
)

// Re-exec plumbing: TestFedPeerChild is the body of a child chamd
// process (archive + mesh + CQ engine + HTTP server), gated behind an
// env var so a plain `go test` never runs it. It serves until killed.
const (
	fedChildEnv   = "CHAMELEON_FED_CHILD"
	fedChildDir   = "CHAMELEON_FED_DIR"
	fedChildSelf  = "CHAMELEON_FED_SELF"
	fedChildPeers = "CHAMELEON_FED_PEERS"
)

func TestFedPeerChild(t *testing.T) {
	if os.Getenv(fedChildEnv) == "" {
		t.Skip("fed peer child helper; driven by the subprocess tests")
	}
	dir := os.Getenv(fedChildDir)
	self := os.Getenv(fedChildSelf)
	a, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	node, err := mesh.NewNode(mesh.Options{
		Self:     self,
		Peers:    strings.Split(os.Getenv(fedChildPeers), ","),
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cq.New(cq.Options{
		Lookup:  store.FedLookup(a, node),
		Persist: filepath.Join(dir, "cq.json"),
		Origin:  self,
		OnEvent: store.BroadcastCQEvents(node),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", strings.TrimPrefix(self, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	handler := store.NewServer(a, store.ServerOptions{Mesh: node, CQ: eng})
	(&http.Server{Handler: handler}).Serve(ln) //nolint:errcheck — killed by the parent
}

// spawnFedPeer re-execs the test binary as one federated peer.
func spawnFedPeer(t *testing.T, dir, self, peers string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFedPeerChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		fedChildEnv+"=1", fedChildDir+"="+dir, fedChildSelf+"="+self, fedChildPeers+"="+peers)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck — may already be dead
		cmd.Wait()         //nolint:errcheck
		if t.Failed() && buf.Len() > 0 {
			t.Logf("peer %s output:\n%s", self, buf.String())
		}
	})
	return cmd
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("peer %s never became healthy", url)
}

// fedHTTP issues one request with optional mesh-forward (strictly
// local) and tenant headers.
func fedHTTP(t *testing.T, method, url string, body []byte, local bool) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if local {
		req.Header.Set(mesh.HeaderForward, mesh.ForwardFanout)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// variantOf decodes a fresh copy of a canonical trace and perturbs one
// leaf's timing histogram: a new content address, same structure.
func variantOf(t *testing.T, canon []byte, i int64) *trace.File {
	t.Helper()
	f, err := trace.ReadAny(bytes.NewReader(canon))
	if err != nil {
		t.Fatal(err)
	}
	var leaf func(ns []*trace.Node) *trace.Node
	leaf = func(ns []*trace.Node) *trace.Node {
		for _, n := range ns {
			if n.Delta != nil {
				return n
			}
			if got := leaf(n.Body); got != nil {
				return got
			}
		}
		return nil
	}
	l := leaf(f.Nodes)
	if l == nil {
		t.Fatal("trace has no leaves")
	}
	l.Delta.Add(10_000 + i)
	return f
}

func TestFedPeerDeathAndAntiEntropyRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}

	// Reserve three ports, then start three peers on them.
	urls := make([]string, 3)
	dirs := make([]string, 3)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		urls[i] = "http://" + ln.Addr().String()
		ln.Close()
		dirs[i] = t.TempDir()
	}
	peerList := strings.Join(urls, ",")
	procs := make([]*exec.Cmd, 3)
	for i := range urls {
		procs[i] = spawnFedPeer(t, dirs[i], urls[i], peerList)
	}
	for _, u := range urls {
		waitHealthy(t, u)
	}

	// Push six distinct runs through peer A: one real benchmark trace
	// plus timing-perturbed variants (new content addresses, same
	// structure).
	base := runTrace(t, "STENCIL", "A", 8)
	baseCanon, _, err := store.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	canons := map[string][]byte{}
	var ids []string
	push := func(via string, f *trace.File) string {
		t.Helper()
		canon, id, err := store.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		code, body := fedHTTP(t, http.MethodPut, via+"/runs", canon, false)
		if code != http.StatusOK && code != http.StatusCreated {
			t.Fatalf("PUT via %s: %d: %s", via, code, body)
		}
		canons[id] = canon
		return id
	}
	ids = append(ids, push(urls[0], base))
	for i := int64(1); i < 6; i++ {
		ids = append(ids, push(urls[0], variantOf(t, baseCanon, i)))
	}

	// Arm a continuous-query gate against the first run; it fans out
	// now and must survive B's death via its persisted registration.
	if _, err := store.RegisterCQ(urls[0], cq.Spec{Name: "gate", Golden: ids[0]}); err != nil {
		t.Fatal(err)
	}

	// SIGKILL peer B mid-fleet.
	if err := procs[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[1].Wait() //nolint:errcheck — killed on purpose

	// Acceptance: every run reads byte-identical from both survivors,
	// whether the replica is local or proxied from the other survivor.
	for _, id := range ids {
		for _, u := range []string{urls[0], urls[2]} {
			code, body := fedHTTP(t, http.MethodGet, u+"/runs/"+id, nil, false)
			if code != http.StatusOK {
				t.Fatalf("run %s via %s with B dead: %d", id[:12], u, code)
			}
			if !bytes.Equal(body, canons[id]) {
				t.Fatalf("run %s via %s: not byte-identical (%d vs %d bytes)",
					id[:12], u, len(body), len(canons[id]))
			}
		}
	}

	// Writes keep landing while B is down — including edge sidecars,
	// which fan out to whichever of the run's holders are alive even
	// when the PUT arrives via a peer that does not hold the run.
	for i := int64(6); i < 9; i++ {
		ids = append(ids, push(urls[0], variantOf(t, baseCanon, i)))
	}
	sidecar := []byte(`{"from":0,"to":1,"seq":1,"send_ns":100,"arrive_ns":200,"recv_ns":250}` + "\n")
	if err := store.PushEdges(urls[0], ids[0], sidecar, false); err != nil {
		t.Fatalf("push edges with B dead: %v", err)
	}
	for _, u := range []string{urls[0], urls[2]} {
		edges, err := store.FetchEdges(u, ids[0])
		if err != nil || len(edges) != 1 {
			t.Fatalf("edges via %s with B dead: %v (%d edges)", u, err, len(edges))
		}
	}

	// Restart B on the same port and directory; one sweep per peer
	// converges the ring (B pulls what it missed, the survivors pull
	// anything that landed off-ring while the fleet was degraded).
	procs[1] = spawnFedPeer(t, dirs[1], urls[1], peerList)
	waitHealthy(t, urls[1])
	for _, u := range []string{urls[1], urls[0], urls[2]} {
		if _, err := store.TriggerSweep(u); err != nil {
			t.Fatalf("sweep %s: %v", u, err)
		}
	}

	// Placement is whole again: each run's R=2 owners serve it locally.
	ring, err := mesh.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		for _, owner := range ring.Owners(id, 2) {
			code, body := fedHTTP(t, http.MethodGet, owner+"/runs/"+id, nil, true)
			if code != http.StatusOK {
				t.Fatalf("owner %s lacks run %s after recovery: %d", owner, id[:12], code)
			}
			if !bytes.Equal(body, canons[id]) {
				t.Fatalf("owner %s run %s: bytes diverged after repair", owner, id[:12])
			}
		}
	}
	// The sidecar converged with its run: every owner serves it locally,
	// whether it took the original fan-out or pulled it in the sweep.
	for _, owner := range ring.Owners(ids[0], 2) {
		code, body := fedHTTP(t, http.MethodGet, owner+"/runs/"+ids[0]+"/edges", nil, true)
		if code != http.StatusOK || !bytes.Equal(body, sidecar) {
			t.Fatalf("owner %s lacks the edge sidecar after recovery: %d", owner, code)
		}
	}

	// The gate survived the crash: push a structural drift (one extra
	// call site) through peer C and catch the regression on peer A's
	// long-poll feed — wherever the primary owner is, the event
	// broadcasts fleet-wide.
	drift := variantOf(t, baseCanon, 99)
	extra := trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(0xfed)), Dest: trace.Relative(1), Tag: 3, Bytes: 64}
	drift.Nodes = append(drift.Nodes, trace.NewLeaf(extra, ranklist.FromRanks([]int{0}), 777))
	driftID := push(urls[2], drift)

	feed, err := store.FetchCQFeed(urls[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range feed.Events {
		if ev.Run == driftID {
			found = true
			if ev.Verdict != cq.VerdictRegression {
				t.Fatalf("drifted run gated %q (%s)", ev.Verdict, ev.Reason)
			}
			if ev.Golden != ids[0] {
				t.Fatalf("gate resolved golden %q, want %s", ev.Golden, ids[0])
			}
		}
	}
	if !found {
		t.Fatalf("no gate event for the drifted run %s in A's feed: %+v", driftID[:12], feed.Events)
	}

	// And the fleet agrees on what it holds: 2 copies of every run.
	total := 0
	for _, u := range urls {
		st, err := store.FetchMeshStatus(u)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Runs
	}
	if want := 2 * len(canons); total != want {
		t.Fatalf("fleet holds %d copies of %d runs after recovery, want %d", total, len(canons), want)
	}
}
