package chameleon_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/store"
)

// newLiveDaemon stands up an in-process chamd: archive + live session
// tracker behind the real HTTP handler stack.
func newLiveDaemon(t testing.TB) *httptest.Server {
	t.Helper()
	a, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("open archive: %v", err)
	}
	srv := httptest.NewServer(store.NewServer(a, store.ServerOptions{}))
	t.Cleanup(func() {
		srv.Close()
		a.Close()
	})
	return srv
}

// runPhaseLive traces PHASE with a live shipper attached (the exact
// wiring chamrun -live performs) and returns the final session view.
func runPhaseLive(t *testing.T, srv *httptest.Server, session, plan string, p int, during func()) *store.SessionView {
	t.Helper()
	var injector *chameleon.FaultInjector
	if plan != "" {
		parsed, err := chameleon.ParseFaultPlan(plan)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		injector, err = chameleon.NewFaultInjector(parsed, 1, p)
		if err != nil {
			t.Fatalf("injector: %v", err)
		}
	}
	o := chameleon.NewObserver(chameleon.ObsOptions{
		Metrics:       true,
		ProgressRanks: p,
		JournalRing:   256,
	})
	shipper, err := chameleon.NewLiveShipper(o, chameleon.LiveShipperOptions{
		URL:       srv.URL,
		Session:   session,
		Benchmark: "PHASE",
		P:         p,
		Interval:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}
	shipper.Start()

	done := make(chan error, 1)
	go func() {
		_, err := chameleon.RunBenchmark("PHASE", "A", p, chameleon.TracerChameleon,
			&chameleon.Config{Obs: o, Fault: injector})
		done <- err
	}()
	if during != nil {
		during()
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := shipper.Stop(); err != nil {
		t.Fatalf("shipper stop: %v", err)
	}
	st := shipper.Stats()
	if st.Deltas == 0 || st.Posts == 0 {
		t.Fatalf("shipper shipped nothing: %+v", st)
	}

	v, err := store.FetchLiveView(srv.URL, session)
	if err != nil {
		t.Fatalf("final view: %v", err)
	}
	return v
}

// TestLiveSlowRankFlaggedInFlight is the acceptance criterion: a PHASE
// run with rank 5 slowed 4x, streamed through chamrun -live's pipeline
// to an in-process chamd, must show rank 5 flagged as a straggler in
// the chamtop -follow rendering BEFORE the run finalizes.
func TestLiveSlowRankFlaggedInFlight(t *testing.T) {
	const p, session = 8, "e2e-slow"
	srv := newLiveDaemon(t)

	var liveFrame string // a -follow frame rendered while the run was in flight
	v := runPhaseLive(t, srv, session, "slow rank=5 factor=4x", p, func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			v, err := store.FetchLiveView(srv.URL, session)
			if err != nil {
				// The first delta may not have landed yet.
				time.Sleep(time.Millisecond)
				continue
			}
			if v.Final {
				return
			}
			if hasStraggler(v, 5) {
				var b bytes.Buffer
				store.RenderSessionView(&b, v)
				liveFrame = b.String()
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	})

	// In-flight observation: the frame must carry the straggler line and
	// the slow flag while the session was still live.
	if liveFrame != "" {
		if !strings.Contains(liveFrame, "stragglers: 5") {
			t.Errorf("live frame missing 'stragglers: 5':\n%s", liveFrame)
		}
		if !strings.Contains(liveFrame, "[live]") {
			t.Errorf("frame rendered after finalize:\n%s", liveFrame)
		}
	}

	// Deterministic backstop (robust to poll timing): the server's sticky
	// event log must show the straggler event raised strictly before the
	// final event — i.e. the flag went up while the run was in flight.
	straggler, final := -1, -1
	for i, ev := range v.LiveEvents {
		switch {
		case ev.Kind == store.LiveEventStraggler && ev.Rank == 5 && straggler < 0:
			straggler = i
		case ev.Kind == store.LiveEventFinal:
			final = i
		}
	}
	if straggler < 0 {
		t.Fatalf("no straggler event for rank 5 in %+v", v.LiveEvents)
	}
	if final < 0 {
		t.Fatalf("no final event in %+v", v.LiveEvents)
	}
	if straggler > final {
		t.Fatalf("straggler event (idx %d) not before final (idx %d)", straggler, final)
	}
	if liveFrame == "" && straggler >= 0 {
		t.Log("poller never caught a live frame (run outpaced it); event order proves in-flight flagging")
	}

	if !v.Final {
		t.Fatal("final view not marked final after shipper Stop")
	}
	if !hasStraggler(v, 5) {
		t.Fatalf("final stragglers = %v, want rank 5", v.Stragglers)
	}
	for _, rs := range v.Ranks {
		slow := containsFlag(rs.Flags, store.FlagSlow)
		if rs.Rank == 5 && !slow {
			t.Errorf("rank 5 flags = %v, want slow", rs.Flags)
		}
		if rs.Rank != 5 && slow {
			t.Errorf("rank %d spuriously flagged slow: %v", rs.Rank, rs.Flags)
		}
	}
}

// TestLiveCrashRankDeparts: a crash-stopped rank must surface live as
// departed (and behind in windows), and the final view must record it.
func TestLiveCrashRankDeparts(t *testing.T) {
	const p, session = 8, "e2e-crash"
	srv := newLiveDaemon(t)

	v := runPhaseLive(t, srv, session, "crash rank=2 at marker=50", p, nil)

	if !v.Final {
		t.Fatal("final view not marked final")
	}
	if !hasStraggler(v, 2) {
		t.Fatalf("stragglers = %v, want rank 2", v.Stragglers)
	}
	var crashed *store.RankStatus
	for i := range v.Ranks {
		if v.Ranks[i].Rank == 2 {
			crashed = &v.Ranks[i]
		}
	}
	if crashed == nil || !containsFlag(crashed.Flags, store.FlagDeparted) {
		t.Fatalf("rank 2 status = %+v, want departed flag", crashed)
	}
	// Departed short-circuits the other flags, but the window freeze must
	// still be visible in the progress columns: the crashed rank stops at
	// its crash marker while the survivors run to the end.
	var maxWindows uint64
	for _, rs := range v.Ranks {
		if rs.Rank != 2 && rs.Windows > maxWindows {
			maxWindows = rs.Windows
		}
	}
	if crashed.Windows >= maxWindows {
		t.Errorf("crashed rank windows = %d, want frozen below survivors' %d", crashed.Windows, maxWindows)
	}
	if found := countLiveEvents(v, store.LiveEventStraggler, 2); found != 1 {
		t.Errorf("straggler events for rank 2 = %d, want exactly 1 (sticky)", found)
	}
}

func hasStraggler(v *store.SessionView, rank int) bool {
	for _, r := range v.Stragglers {
		if r == rank {
			return true
		}
	}
	return false
}

func containsFlag(flags []string, want string) bool {
	for _, f := range flags {
		if f == want {
			return true
		}
	}
	return false
}

func countLiveEvents(v *store.SessionView, kind string, rank int) int {
	n := 0
	for _, ev := range v.LiveEvents {
		if ev.Kind == kind && ev.Rank == rank {
			n++
		}
	}
	return n
}
