package chameleon_test

import (
	"chameleon/internal/trace"
	"testing"

	"chameleon"
)

// tableII is the paper's Table II: per-benchmark marker-call and state
// counts, which this reproduction matches exactly.
var tableII = map[string]struct {
	c, l, at int
}{
	"BT":  {1, 8, 1},
	"LU":  {1, 11, 3},
	"SP":  {1, 21, 3},
	"POP": {1, 16, 3},
	"S3D": {1, 7, 2},
	"LUW": {1, 8, 1},
	"EMF": {1, 6, 2},
}

func TestTableIIStateCounts(t *testing.T) {
	for name, want := range tableII {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := 16
			if name == "EMF" {
				p = 126 // the paper's smallest EMF configuration
			}
			out, err := chameleon.RunBenchmark(name, "D", p, chameleon.TracerChameleon, nil)
			if err != nil {
				t.Fatal(err)
			}
			if out.StateCalls["C"] != want.c || out.StateCalls["L"] != want.l || out.StateCalls["AT"] != want.at {
				t.Fatalf("states C/L/AT = %d/%d/%d, want %d/%d/%d",
					out.StateCalls["C"], out.StateCalls["L"], out.StateCalls["AT"],
					want.c, want.l, want.at)
			}
			if out.StateCalls["F"] != 1 {
				t.Fatalf("finalize calls = %d", out.StateCalls["F"])
			}
			if out.Reclusterings != 1 {
				t.Fatalf("reclusterings = %d, want 1", out.Reclusterings)
			}
		})
	}
}

func TestCallPathClasses(t *testing.T) {
	// Table I's K values follow the benchmarks' Call-Path structure:
	// symmetric torus codes have one class, wavefront codes up to nine,
	// POP three (latitude rows), EMF two (master vs workers).
	cases := map[string]int{"BT": 1, "SP": 1, "LU": 9, "S3D": 9, "POP": 3}
	for name, want := range cases {
		out, err := chameleon.RunBenchmark(name, "D", 16, chameleon.TracerChameleon, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.CallPathClusters != want {
			t.Fatalf("%s call-path classes = %d, want %d", name, out.CallPathClusters, want)
		}
	}
	emf, err := chameleon.RunBenchmark("EMF", "", 26, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if emf.CallPathClusters != 2 {
		t.Fatalf("EMF call paths = %d", emf.CallPathClusters)
	}
}

func TestChameleonBeatsScalaTrace(t *testing.T) {
	// Observation 2's direction at small scale: the clustering machinery
	// (marker+cluster+intercomp) costs far less than the baseline's
	// P-way merge, and the gap grows with P.
	ratios := map[int]float64{}
	for _, p := range []int{16, 64} {
		st, err := chameleon.RunBenchmark("BT", "D", p, chameleon.TracerScalaTrace, nil)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := chameleon.RunBenchmark("BT", "D", p, chameleon.TracerChameleon, nil)
		if err != nil {
			t.Fatal(err)
		}
		stOv := st.OverheadBy["intercomp"]
		chOv := ch.OverheadBy["marker"] + ch.OverheadBy["cluster"] + ch.OverheadBy["intercomp"]
		if chOv >= stOv {
			t.Fatalf("P=%d: Chameleon %v not below ScalaTrace %v", p, chOv, stOv)
		}
		ratios[p] = float64(stOv) / float64(chOv)
	}
	if ratios[64] <= ratios[16] {
		t.Fatalf("gap does not grow with P: %v", ratios)
	}
}

func TestReplayAccuracy(t *testing.T) {
	// Observation 3/5: clustered replay within the paper's accuracy band
	// (87-98% in the paper; we assert >= 85% against the application).
	type tc struct {
		name  string
		p     int
		class string
	}
	for _, c := range []tc{{"BT", 16, "C"}, {"LU", 16, "C"}, {"POP", 16, ""}, {"S3D", 16, ""}, {"EMF", 26, ""}} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			app, err := chameleon.RunBenchmark(c.name, c.class, c.p, chameleon.TracerNone, nil)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := chameleon.RunBenchmark(c.name, c.class, c.p, chameleon.TracerChameleon, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
			if err != nil {
				t.Fatal(err)
			}
			acc := chameleon.Accuracy(chameleon.Duration(app.Time), rep.Time)
			if acc < 0.85 {
				t.Fatalf("accuracy = %.2f%%", acc*100)
			}
		})
	}
}

func TestReplayEventCoverage(t *testing.T) {
	// Chameleon must not miss any MPI event: the clustered replay
	// re-issues exactly as many dynamic events as the unclustered one.
	for _, name := range []string{"BT", "LU", "S3D"} {
		st, err := chameleon.RunBenchmark(name, "B", 16, chameleon.TracerScalaTrace, nil)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := chameleon.RunBenchmark(name, "B", 16, chameleon.TracerChameleon, nil)
		if err != nil {
			t.Fatal(err)
		}
		stRep, err := chameleon.Replay(st.Trace, chameleon.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		chRep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		if stRep.Events != chRep.Events {
			t.Fatalf("%s: %d vs %d replayed events", name, stRep.Events, chRep.Events)
		}
	}
}

func TestACURDIONComparison(t *testing.T) {
	// Table III's direction: ACURDION (one clustering at Finalize) costs
	// less than Chameleon at the maximum marker-call count, and both
	// stay below ScalaTrace.
	const p = 64
	st, err := chameleon.RunBenchmark("BT", "D", p, chameleon.TracerScalaTrace, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := chameleon.RunBenchmark("BT", "D", p, chameleon.TracerACURDION, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chameleon.RunBenchmark("BT", "D", p, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	stOv := st.OverheadBy["intercomp"]
	acOv := ac.OverheadBy["cluster"] + ac.OverheadBy["intercomp"]
	chOv := ch.OverheadBy["marker"] + ch.OverheadBy["cluster"] + ch.OverheadBy["intercomp"]
	if acOv >= chOv {
		t.Fatalf("ACURDION %v not below Chameleon-max-markers %v", acOv, chOv)
	}
	if chOv >= stOv {
		t.Fatalf("Chameleon-max-markers %v not below ScalaTrace %v", chOv, stOv)
	}
	// ACURDION replays too.
	rep, err := chameleon.Replay(ac.Trace, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 {
		t.Fatalf("ACURDION trace empty")
	}
}

func TestSpaceSavings(t *testing.T) {
	// Observation 9 / Table IV: non-leads allocate nothing during the
	// lead phase; ScalaTrace allocates everywhere.
	st, err := chameleon.RunBenchmark("BT", "D", 16, chameleon.TracerScalaTrace, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range st.AllocBytes {
		if b <= 0 {
			t.Fatalf("ScalaTrace rank %d allocated %d", r, b)
		}
	}
	ch, err := chameleon.RunBenchmark("BT", "D", 16, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	isLead := map[int]bool{}
	for _, l := range ch.Leads {
		isLead[l] = true
	}
	const stateL = 2
	for r := 0; r < 16; r++ {
		if !isLead[r] && ch.SpaceByState[r][stateL] != 0 {
			t.Fatalf("non-lead %d allocated %d bytes in L", r, ch.SpaceByState[r][stateL])
		}
	}
	if ch.OnlineBytes <= 0 {
		t.Fatalf("online trace bytes = %d", ch.OnlineBytes)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	ch, err := chameleon.RunBenchmark("CG", "A", 16, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cg.trace"
	if err := ch.Trace.Save(path); err != nil {
		t.Fatal(err)
	}
	direct, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	viaDisk, err := chameleon.Replay(loaded, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Events != viaDisk.Events {
		t.Fatalf("events changed across serialization: %d vs %d", direct.Events, viaDisk.Events)
	}
	if direct.Time != viaDisk.Time {
		t.Fatalf("replay time changed: %v vs %v", direct.Time, viaDisk.Time)
	}
}

func TestCustomApplication(t *testing.T) {
	out, err := chameleon.Run(chameleon.Config{P: 8, Tracer: chameleon.TracerChameleon, K: 2},
		func(p *chameleon.Proc) {
			w := p.World()
			for step := 0; step < 40; step++ {
				p.Compute(100 * chameleon.Microsecond)
				w.Sendrecv((p.Rank()+1)%8, 1, 512, nil, (p.Rank()+7)%8, 1)
				if (step+1)%4 == 0 {
					chameleon.Marker(p)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.StateCalls["C"] != 1 || len(out.Leads) != 2 {
		t.Fatalf("custom app clustering: %v leads=%v", out.StateCalls, out.Leads)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := chameleon.Run(chameleon.Config{P: 0}, func(*chameleon.Proc) {}); err == nil {
		t.Fatalf("P=0 accepted")
	}
	if _, err := chameleon.Run(chameleon.Config{P: 2, Tracer: "bogus"}, func(*chameleon.Proc) {}); err == nil {
		t.Fatalf("unknown tracer accepted")
	}
	if _, err := chameleon.RunBenchmark("NOPE", "A", 4, chameleon.TracerNone, nil); err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
}

func TestClusteringAlgorithms(t *testing.T) {
	for _, algo := range []string{"k-farthest", "k-medoid", "k-random"} {
		out, err := chameleon.RunBenchmark("BT", "B", 16, chameleon.TracerChameleon, &chameleon.Config{Algo: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(out.Leads) == 0 {
			t.Fatalf("%s: no leads", algo)
		}
		rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
		if err != nil {
			t.Fatalf("%s replay: %v", algo, err)
		}
		if rep.Events == 0 {
			t.Fatalf("%s: empty replay", algo)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := chameleon.Benchmarks()
	if len(names) < 8 {
		t.Fatalf("benchmarks = %v", names)
	}
	for _, n := range names {
		if _, err := chameleon.NewBenchmark(n, "A", 16); err != nil && n != "EMF" {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

// loadTrace reads a trace file from disk (helper around the internal
// loader; external users go through the chamreplay tool).
func loadTrace(path string) (*chameleon.TraceFile, error) {
	return trace.Load(path)
}

func TestAutoChameleonTracer(t *testing.T) {
	// The automatic marker mode needs no markers in the application and
	// still produces a clustered, replayable online trace.
	out, err := chameleon.RunBenchmark("SP", "C", 16, chameleon.TracerAutoChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.StateCalls["C"] != 1 {
		t.Fatalf("auto mode states: %v", out.StateCalls)
	}
	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	st, err := chameleon.RunBenchmark("SP", "C", 16, chameleon.TracerScalaTrace, nil)
	if err != nil {
		t.Fatal(err)
	}
	stRep, err := chameleon.Replay(st.Trace, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != stRep.Events {
		t.Fatalf("auto mode lost events: %d vs %d", rep.Events, stRep.Events)
	}
}

func TestEnergyReport(t *testing.T) {
	ch, err := chameleon.RunBenchmark("BT", "B", 16, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Energy.TotalJ <= 0 || ch.Energy.ActiveJ <= 0 {
		t.Fatalf("energy report empty: %+v", ch.Energy)
	}
	// Chameleon's disabled non-leads expose a DVFS saving.
	if ch.Energy.DVFSSavedJ <= 0 {
		t.Fatalf("no DVFS saving: %+v", ch.Energy)
	}
	st, err := chameleon.RunBenchmark("BT", "B", 16, chameleon.TracerScalaTrace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy.DVFSSavedJ != 0 {
		t.Fatalf("baseline claims a DVFS saving: %+v", st.Energy)
	}
}

func TestCommSplitViaFacade(t *testing.T) {
	out, err := chameleon.Run(chameleon.Config{P: 8}, func(p *chameleon.Proc) {
		row := p.Rank() / 4
		sub := p.World().Split(row, p.Rank())
		got := sub.Allreduce(8, uint64(1), chameleon.OpSum)
		if got != 4 {
			panic("row size wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Time <= 0 {
		t.Fatalf("no time elapsed")
	}
}

func TestTracerOutputsValidate(t *testing.T) {
	// Every tracer's output passes structural validation.
	for _, tr := range []chameleon.Tracer{chameleon.TracerScalaTrace, chameleon.TracerChameleon, chameleon.TracerACURDION, chameleon.TracerAutoChameleon} {
		out, err := chameleon.RunBenchmark("SP", "B", 16, tr, nil)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if err := out.Trace.Validate(); err != nil {
			t.Fatalf("%s trace invalid: %v", tr, err)
		}
	}
}
