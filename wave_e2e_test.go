package chameleon_test

// End-to-end idle-wave scenarios: a seeded noise pulse on a STENCIL run
// must come back out of the wave detector with the injected origin and
// the halo-exchange propagation speed, and a sustained pulse train must
// raise the live desync flag on chamd before the run finalizes.

import (
	"testing"
	"time"

	"chameleon"
	"chameleon/internal/store"
	"chameleon/internal/wave"
)

// TestWaveGoldenScenario is the acceptance criterion for the detector:
// inject one 80ms pulse on rank 5 of a 13-rank STENCIL run with the
// global sync disabled, capture the causal edges, and require the
// fitted wave to match the injection — origin adjacent to rank 5,
// origin time in the pulse's causal shadow, amplitude near the pulse
// width, and propagation speed near one hop per halo-exchange period.
func TestWaveGoldenScenario(t *testing.T) {
	const (
		p     = 13
		at    = 400 * time.Millisecond
		extra = 80 * time.Millisecond
	)
	plan, err := chameleon.ParseNoisePlan("periodic ranks=5 start=400ms period=200ms extra=80ms count=1", p, 7)
	if err != nil {
		t.Fatalf("noise: %v", err)
	}
	injector, err := chameleon.NewFaultInjector(plan, 7, p)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	o := chameleon.NewObserver(chameleon.ObsOptions{CausalRanks: p})
	res, err := chameleon.RunBenchmark("STENCIL", "A", p, chameleon.TracerNone,
		&chameleon.Config{Obs: o, Fault: injector, SyncEvery: -1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// 60 iterations of halo exchange set the propagation clock: an idle
	// wave moves about one rank per iteration.
	period := int64(res.Time) / 60

	rep, err := wave.Detect(o.Causal.Edges(), wave.Options{P: p})
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	if len(rep.Waves) == 0 {
		t.Fatalf("no waves detected over %d wait points", rep.WaitPoints)
	}
	// The injected pulse dominates everything else in the run.
	best := rep.Waves[0]
	for _, w := range rep.Waves[1:] {
		if w.AmplitudeNs > best.AmplitudeNs {
			best = w
		}
	}
	// The delayed rank itself never waits; its neighbors raise the wave.
	if best.OriginRank < 4 || best.OriginRank > 6 {
		t.Errorf("origin rank = %d, want within 1 of injected rank 5", best.OriginRank)
	}
	// The first wait surfaces once the pulse's delayed send lands:
	// between the injection and a few halo periods after at+extra.
	lo, hi := at.Nanoseconds(), (at+extra).Nanoseconds()+3*period
	if best.OriginVT < lo || best.OriginVT > hi {
		t.Errorf("origin VT = %v, want in [%v, %v]",
			time.Duration(best.OriginVT), time.Duration(lo), time.Duration(hi))
	}
	if min, max := extra.Nanoseconds()/2, extra.Nanoseconds()*3/2; best.AmplitudeNs < min || best.AmplitudeNs > max {
		t.Errorf("amplitude = %v, want within 50%% of the %v pulse", time.Duration(best.AmplitudeNs), extra)
	}
	if best.PerHopNs <= 0 {
		t.Fatalf("wave did not propagate: %+v", best)
	}
	if ratio := float64(best.PerHopNs) / float64(period); ratio < 0.5 || ratio > 1.5 {
		t.Errorf("propagation = %v/hop, want within 50%% of the %v halo period (ratio %.2f)",
			time.Duration(best.PerHopNs), time.Duration(period), ratio)
	}
	if best.Ranks < 3 {
		t.Errorf("wave touched only %d ranks, want a multi-hop front", best.Ranks)
	}
}

// TestLiveDesyncFlaggedInFlight drives a pulse train on rank 3 of a
// sync-free STENCIL run through the live telemetry pipeline and
// requires chamd to raise a desync event strictly before the final
// event — the nascent idle wave is flagged while the run is in flight.
func TestLiveDesyncFlaggedInFlight(t *testing.T) {
	const p, session = 13, "e2e-desync"
	srv := newLiveDaemon(t)

	plan, err := chameleon.ParseNoisePlan("periodic ranks=3 start=50ms period=5ms extra=30ms count=100000", p, 1)
	if err != nil {
		t.Fatalf("noise: %v", err)
	}
	injector, err := chameleon.NewFaultInjector(plan, 1, p)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	o := chameleon.NewObserver(chameleon.ObsOptions{
		Metrics:       true,
		ProgressRanks: p,
		JournalRing:   256,
	})
	shipper, err := chameleon.NewLiveShipper(o, chameleon.LiveShipperOptions{
		URL:       srv.URL,
		Session:   session,
		Benchmark: "STENCIL",
		P:         p,
		Interval:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}
	shipper.Start()
	_, err = chameleon.RunBenchmark("STENCIL", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o, Fault: injector, SyncEvery: -1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := shipper.Stop(); err != nil {
		t.Fatalf("shipper stop: %v", err)
	}

	v, err := store.FetchLiveView(srv.URL, session)
	if err != nil {
		t.Fatalf("final view: %v", err)
	}
	desync, final := -1, -1
	for i, ev := range v.LiveEvents {
		switch {
		case ev.Kind == store.LiveEventDesync && desync < 0:
			desync = i
		case ev.Kind == store.LiveEventFinal:
			final = i
		}
	}
	if desync < 0 {
		t.Fatalf("no desync event in the session log: %+v", v.LiveEvents)
	}
	if final < 0 {
		t.Fatalf("session never finalized: %+v", v.LiveEvents)
	}
	if desync > final {
		t.Errorf("desync event (index %d) raised after final (index %d)", desync, final)
	}
	// The flagged band must sit on the injected rank's neighborhood.
	ev := v.LiveEvents[desync]
	if ev.Rank < 2 || ev.Rank > 4 {
		t.Errorf("desync band head = rank %d, want near injected rank 3: %+v", ev.Rank, ev)
	}
}
