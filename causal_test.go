package chameleon_test

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"chameleon"
	"chameleon/internal/causal"
)

// runPhaseCausal traces PHASE with causal capture, a timeline, and a
// journal, under the given fault plan.
func runPhaseCausal(t *testing.T, p int, plan string) (*chameleon.Observer, []byte) {
	t.Helper()
	var injector *chameleon.FaultInjector
	if plan != "" {
		parsed, err := chameleon.ParseFaultPlan(plan)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		injector, err = chameleon.NewFaultInjector(parsed, 1, p)
		if err != nil {
			t.Fatalf("injector: %v", err)
		}
	}
	var journal bytes.Buffer
	o := chameleon.NewObserver(chameleon.ObsOptions{
		Journal:       &journal,
		TimelineRanks: p,
		CausalRanks:   p,
	})
	if _, err := chameleon.RunBenchmark("PHASE", "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o, Fault: injector}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return o, journal.Bytes()
}

// TestStragglerGoldenSlowRank is the acceptance criterion: on a PHASE
// run with rank 5 slowed 4x, chain-origin attribution must assign the
// plurality of collective wait to rank 5, and the full report text is
// locked against a golden file.
func TestStragglerGoldenSlowRank(t *testing.T) {
	const p = 8
	o, journal := runPhaseCausal(t, p, "slow rank=5 factor=4x")
	events, err := chameleon.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	rep := causal.Analyze(o.Causal.Edges(), events)
	if rep.EdgeCount == 0 {
		t.Fatal("no causal edges captured")
	}

	if len(rep.Stragglers) == 0 || rep.Stragglers[0].Rank != 5 {
		t.Fatalf("top straggler = %+v, want rank 5", rep.Stragglers)
	}
	top := rep.Stragglers[0]
	var rest int64
	for _, s := range rep.Stragglers[1:] {
		if s.CausedWait > rest {
			rest = s.CausedWait
		}
	}
	if top.CausedWait <= rest {
		t.Fatalf("rank 5 caused %d ns, runner-up %d ns: no plurality", top.CausedWait, rest)
	}
	// Every phase with meaningful wait should point at the same culprit.
	for _, ph := range rep.Phases {
		if ph.Wait > rep.TotalWait/10 && ph.TopRank != 5 {
			t.Errorf("phase %s blames rank %d, want 5", ph.State, ph.TopRank)
		}
	}

	var got bytes.Buffer
	if err := rep.WriteText(&got, 5); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/phase_straggler.golden"
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (regenerate by writing the FAIL output): %v", golden, err)
	}
	if got.String() != string(want) {
		t.Errorf("straggler report mismatch\n=== got ===\n%s=== want ===\n%s", got.String(), want)
	}
}

// TestFlowEventsLinkSlowRank checks the Perfetto export side of the
// criterion: the Chrome trace contains flow events, and rank 5's track
// sources flow arrows (its sends delayed receivers).
func TestFlowEventsLinkSlowRank(t *testing.T) {
	const p = 8
	o, _ := runPhaseCausal(t, p, "slow rank=5 factor=4x")
	var buf bytes.Buffer
	if err := o.Timeline.WriteChromeTraceFlows(&buf, o.Causal); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
			Bp  string `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	starts, finishes, fromSlow := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts++
			if ev.Tid == 5 {
				fromSlow++
			}
		case "f":
			finishes++
			if ev.Bp != "e" {
				t.Fatal(`flow finish must bind to the enclosing slice (bp:"e")`)
			}
		}
	}
	if starts == 0 || starts != finishes {
		t.Fatalf("flow events s=%d f=%d, want matched nonzero pairs", starts, finishes)
	}
	if fromSlow == 0 {
		t.Fatal("no flow arrows originate on the slowed rank's track")
	}
	if !strings.Contains(buf.String(), `"name":"chameleon_edges_dropped"`) {
		t.Fatal("trace missing the edges-dropped metadata event")
	}
}

// TestCausalDeterminism locks the capture itself: two identical runs
// must produce identical edge streams (virtual time, not wall clock,
// orders everything).
func TestCausalDeterminism(t *testing.T) {
	o1, _ := runPhaseCausal(t, 8, "slow rank=5 factor=4x")
	o2, _ := runPhaseCausal(t, 8, "slow rank=5 factor=4x")
	var b1, b2 bytes.Buffer
	if err := o1.Causal.WriteEdges(&b1); err != nil {
		t.Fatal(err)
	}
	if err := o2.Causal.WriteEdges(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("edge capture is not deterministic across identical runs")
	}
}
