package chameleon_test

// End-to-end trace-archive test: run a real benchmark, push the merged
// trace through the chamd HTTP surface, and prove the round trip is
// lossless — the ISSUE acceptance criteria for the store subsystem.
//
//	chamrun -push  -> PUT /runs      (idempotent: second push dedups)
//	chamstat http  -> GET /runs/{id} (byte-identical canonical payload)
//	chamstat -diff -> same verdict over HTTP refs as over local files
//	stats          -> GET /runs/{id}/stats (server-side zan report)

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/obs"
	"chameleon/internal/store"
)

func runTrace(t *testing.T, name, class string, p int) *chameleon.TraceFile {
	t.Helper()
	out, err := chameleon.RunBenchmark(name, class, p, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if out.Trace == nil {
		t.Fatalf("%s: no trace produced", name)
	}
	return out.Trace
}

func TestStoreEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := store.Open(t.TempDir(), store.Options{Gzip: true, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	srv := httptest.NewServer(store.NewServer(a, store.ServerOptions{Metrics: true, Reg: reg}))
	defer srv.Close()

	bt := runTrace(t, "BT", "D", 16)
	lu := runTrace(t, "LU", "D", 16)

	// Push the BT trace the way chamrun -push does.
	btRun, created, err := store.Push(srv.URL, bt, true)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first push reported dedup")
	}

	// Acceptance: ingesting the same run twice yields one stored
	// segment. Re-push the identical trace — the archive must answer
	// with the same content address and not grow.
	again, created, err := store.Push(srv.URL, bt, false) // uncompressed this time
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("second push of the same trace created a new run")
	}
	if again.ID != btRun.ID {
		t.Fatalf("dedup push returned %s, first push %s", again.ID, btRun.ID)
	}
	if a.Len() != 1 {
		t.Fatalf("archive holds %d runs after double push, want 1", a.Len())
	}

	luRun, created, err := store.Push(srv.URL, lu, true)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("LU push reported dedup against BT")
	}

	// The fetched trace must be byte-identical to the canonical local
	// encoding — the wire and the archive add or lose nothing.
	canonical, _, err := store.Encode(bt)
	if err != nil {
		t.Fatal(err)
	}
	payload, stats, err := store.FetchBytes(srv.URL + "/runs/" + btRun.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, canonical) {
		t.Fatalf("fetched payload differs from canonical encoding (%d vs %d bytes)",
			len(payload), len(canonical))
	}
	if !stats.Gzip {
		t.Fatal("gzip-stored segment was not served compressed")
	}

	// Acceptance: a diff over two http:// refs is identical to the same
	// diff over local files — chamstat's load path in both cases.
	dir := t.TempDir()
	btPath := filepath.Join(dir, "bt.trc")
	luPath := filepath.Join(dir, "lu.trc")
	if err := bt.SaveBinary(btPath); err != nil {
		t.Fatal(err)
	}
	if err := lu.SaveBinary(luPath); err != nil {
		t.Fatal(err)
	}
	refs := map[string][2]string{
		"local": {btPath, luPath},
		"http":  {srv.URL + "/runs/" + btRun.ID, srv.URL + "/runs/" + luRun.ID},
	}
	diffs := map[string]*analysis.Diff{}
	for kind, pair := range refs {
		fa, err := store.LoadTrace(pair[0])
		if err != nil {
			t.Fatalf("%s a: %v", kind, err)
		}
		fb, err := store.LoadTrace(pair[1])
		if err != nil {
			t.Fatalf("%s b: %v", kind, err)
		}
		diffs[kind] = analysis.CompareWith(fa, fb, analysis.CompareOpts{})
	}
	if !reflect.DeepEqual(diffs["local"], diffs["http"]) {
		t.Fatalf("diff over http refs diverges from local diff:\nlocal: %+v\nhttp:  %+v",
			diffs["local"], diffs["http"])
	}

	// Acceptance: GET /runs/{id}/stats serves the compressed-domain
	// analysis of the archived run, and it matches the report computed
	// locally on the pushed trace — the server analyzed the stored
	// nodes, not an expansion.
	sr, err := store.FetchStats(srv.URL, btRun.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != btRun.ID {
		t.Fatalf("stats for run %s, want %s", sr.ID, btRun.ID)
	}
	local, err := analysis.CrossCheck(bt, chameleon.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Report == nil || sr.Report.Events != local.Events {
		t.Fatalf("archived stats report %+v does not match local analysis (%d events)",
			sr.Report, local.Events)
	}
	if sr.Report.StoredNodes != local.StoredNodes || !sr.Report.Match.Consistent {
		t.Fatalf("archived stats: nodes=%d consistent=%v, want nodes=%d consistent=true",
			sr.Report.StoredNodes, sr.Report.Match.Consistent, local.StoredNodes)
	}

	// A trace must also diff clean against its own archived copy.
	self, err := store.LoadTrace(srv.URL + "/runs/" + btRun.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d := analysis.Compare(bt, self); !d.Equivalent() {
		t.Fatalf("archived BT trace is not equivalent to the original: %s", d.Reason())
	}

	// The storm left metrics behind: three ingest attempts, one dedup.
	snap := reg.Snapshot()
	if got := snap.Counters["store_ingests"]; got != 3 {
		t.Fatalf("store_ingests = %d, want 3", got)
	}
	if got := snap.Counters["store_ingest_dedups"]; got != 1 {
		t.Fatalf("store_ingest_dedups = %d, want 1", got)
	}
}

// TestStoreReopenServesIdenticalBytes proves durability: a fresh archive
// over the same directory serves the same canonical bytes.
func TestStoreReopenServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	bt := runTrace(t, "BT", "D", 4)

	a, err := store.Open(dir, store.Options{Gzip: true})
	if err != nil {
		t.Fatal(err)
	}
	run, _, err := a.Ingest(bt)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := a.Payload(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	second, _, err := b.Payload(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("payload changed across archive reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest: %v", err)
	}
}
