package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"chameleon/internal/vtime"
)

// TestRegistryConcurrent hammers one registry from 64 goroutines —
// handle registration, counter/gauge/histogram updates, and snapshots
// all racing — and checks the aggregate totals. Run under -race this is
// the package's memory-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	const (
		workers = 64
		iters   = 1000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Handles are fetched inside the loop on purpose: lookup
			// races with lookup and with updates.
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("bytes_total").Add(8)
				r.Gauge("level").Set(int64(i))
				r.Gauge("high_water").SetMax(int64(w*iters + i))
				r.Histogram("latency_ns").Observe(int64(i + 1))
				if i%97 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["shared_total"]; got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := s.Counters["bytes_total"]; got != workers*iters*8 {
		t.Fatalf("bytes_total = %d, want %d", got, workers*iters*8)
	}
	if got := s.Gauges["high_water"]; got != workers*iters-1 {
		t.Fatalf("high_water = %d, want %d", got, workers*iters-1)
	}
	h := s.Histograms["latency_ns"]
	if h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	if h.Min != 1 || h.Max != iters {
		t.Fatalf("histogram bounds = [%d, %d], want [1, %d]", h.Min, h.Max, iters)
	}
	if h.P50 <= 0 || h.P50 > h.P99 || h.P99 > h.Max {
		t.Fatalf("quantiles out of order: %+v", h)
	}
}

// TestJournalConcurrent races 64 emitters into one journal and checks
// every line survives as valid JSON.
func TestJournalConcurrent(t *testing.T) {
	const (
		workers = 64
		iters   = 100
	)
	var buf bytes.Buffer
	var mu sync.Mutex
	j := NewJournal(lockedWriter{&mu, &buf})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j.Emit(Event{Kind: KindWindow, Rank: w, VT: int64(i), Count: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	if j.Events() != workers*iters {
		t.Fatalf("events = %d, want %d", j.Events(), workers*iters)
	}
	evs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(evs) != workers*iters {
		t.Fatalf("read %d events, want %d", len(evs), workers*iters)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestTimelineConcurrentPerRank exercises the ownership contract: each
// rank's track is written by its own goroutine only.
func TestTimelineConcurrentPerRank(t *testing.T) {
	const ranks = 64
	tl := NewTimeline(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				start := vtime.Time(i * 10)
				tl.Add(r, "compute", CatCompute, start, start+5)
			}
		}(r)
	}
	wg.Wait()
	if got := tl.SpanCount(); got != ranks*100 {
		t.Fatalf("spans = %d, want %d", got, ranks*100)
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans != ranks*100 {
		t.Fatalf("trace spans = %d, want %d", spans, ranks*100)
	}
}

// TestNilSafety: a nil Observer and nil handles must absorb every call.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Counter("x").Add(1)
	o.Gauge("x").Set(1)
	o.Gauge("x").SetMax(2)
	o.Histogram("x").Observe(1)
	o.Emit(Event{Kind: KindVote})
	o.Span(0, "x", CatCompute, 0, 1)
	if o.Counter("x").Value() != 0 || o.Gauge("x").Value() != 0 || o.Histogram("x").Count() != 0 {
		t.Fatal("nil handles returned nonzero values")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned live handles")
	}
	var j *Journal
	j.Emit(Event{})
	if j.Events() != 0 || j.Err() != nil {
		t.Fatal("nil journal misbehaved")
	}
	var tl *Timeline
	tl.Add(0, "x", CatCompute, 0, 1)
	if tl.SpanCount() != 0 || tl.Dropped() != 0 {
		t.Fatal("nil timeline misbehaved")
	}
}

// TestNewDisabled: all-off options collapse to the nil Observer.
func TestNewDisabled(t *testing.T) {
	if o := New(Options{}); o != nil {
		t.Fatalf("New(Options{}) = %v, want nil", o)
	}
	if o := New(Options{Metrics: true}); o == nil || o.Reg == nil {
		t.Fatal("metrics-only observer missing registry")
	}
}

// TestTimelineDrop: spans beyond the per-rank cap are counted, not kept.
func TestTimelineDrop(t *testing.T) {
	tl := NewTimeline(1)
	for i := 0; i < defaultSpanCap+10; i++ {
		start := vtime.Time(i)
		tl.Add(0, "s", CatCompute, start, start+1)
	}
	if tl.SpanCount() != defaultSpanCap {
		t.Fatalf("spans = %d, want %d", tl.SpanCount(), defaultSpanCap)
	}
	if tl.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tl.Dropped())
	}
}

// TestSnapshotWriteText checks the flat rendering used by chamrun
// -metrics.
func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("c_ns").Observe(100)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"a_total 3\n", "b -2\n", "c_ns_count 1\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}
}
