package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured journal record. Kind is always set; the other
// fields are populated as relevant and omitted from the JSON otherwise.
// VT is the emitting rank's virtual clock in nanoseconds; Marker is the
// 1-based marker call index on the emitting rank (0 when outside marker
// processing).
type Event struct {
	Kind   string `json:"kind"`
	Rank   int    `json:"rank"`
	VT     int64  `json:"vt_ns"`
	Marker int    `json:"marker,omitempty"`
	// From/To are transition-graph states for kind "transition".
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Votes is the Algorithm 1 Reduce+Bcast mismatch sum (kind "vote").
	// It is a pointer so a unanimous "no mismatch" vote (0) still
	// serializes: omitempty would otherwise make Votes=0 events
	// indistinguishable from non-vote events in the journal. Use
	// VoteCount to read it.
	Votes *uint64 `json:"votes,omitempty"`
	// Leads and K describe a cluster formation (kind "cluster").
	Leads []int `json:"leads,omitempty"`
	K     int   `json:"k,omitempty"`
	// Round disambiguates flush/merge rounds.
	Round int `json:"round,omitempty"`
	// Count and Bytes carry kind-specific magnitudes (events in a
	// window, compares in a merge, bytes flushed, ...).
	Count uint64 `json:"count,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	// Note qualifies the event (e.g. a flush's cause).
	Note string `json:"note,omitempty"`
}

// Vote wraps a mismatch sum for Event.Votes (so KindVote emitters can
// set the field inline).
func Vote(v uint64) *uint64 { return &v }

// VoteCount returns the vote mismatch sum and whether the event carried
// one (true exactly for well-formed KindVote events).
func (ev *Event) VoteCount() (uint64, bool) {
	if ev.Votes == nil {
		return 0, false
	}
	return *ev.Votes, true
}

// Journal event kinds emitted by the instrumented stack.
const (
	KindTransition = "transition"    // transition-graph step (rank 0)
	KindVote       = "vote"          // Algorithm 1 Reduce+Bcast result (rank 0)
	KindCluster    = "cluster"       // cluster formation: lead set + K (rank 0)
	KindLead       = "lead"          // this rank was elected lead (per rank)
	KindFlush      = "flush"         // lead partials folded into the online trace
	KindMerge      = "merge"         // one pairwise radix-tree merge step
	KindWindow     = "window"        // per-rank marker-window summary
	KindFinalize   = "finalize"      // per-rank end-of-run totals
	KindFault      = "fault"         // injected fault fired (crash-stop rank)
	KindFailover   = "lead_failover" // dead lead replaced / cluster retired (rank 0)
)

// Flush causes recorded in Event.Note.
const (
	FlushInitial     = "initial"      // first clustering (AT -> C)
	FlushPhaseChange = "phase-change" // Call-Path mismatch while leading
	FlushFinal       = "final"        // MPI_Finalize
	FlushFailover    = "failover"     // lead died; survivors flush promptly
)

// Journal is a concurrency-safe JSONL event sink, optionally keeping a
// bounded in-memory ring of the most recent events so a live telemetry
// shipper can stream the tail without re-reading the output file. A nil
// *Journal discards events.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	n   uint64
	err error
	// ring holds the most recent ringCap events; ringBase is the
	// absolute index of ring[0] (events are numbered from 0 in emit
	// order, so ringBase+len(ring) == total events ever ringed).
	ring     []Event
	ringCap  int
	ringBase uint64
}

// NewJournal wraps w (nil returns a disabled journal).
func NewJournal(w io.Writer) *Journal {
	if w == nil {
		return nil
	}
	return &Journal{w: w, enc: json.NewEncoder(w)}
}

// NewJournalRing builds a journal that keeps the most recent `recent`
// events in memory (see Tail) in addition to encoding them to w; w may
// be nil for a ring-only journal (live telemetry without -journal).
func NewJournalRing(w io.Writer, recent int) *Journal {
	if recent <= 0 {
		return NewJournal(w)
	}
	j := &Journal{w: w, ringCap: recent}
	if w != nil {
		j.enc = json.NewEncoder(w)
	}
	return j
}

// Emit appends one event line. Write errors are latched (see Err) so
// hot paths never branch on them.
func (j *Journal) Emit(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if j.enc != nil {
		if err := j.enc.Encode(ev); err != nil {
			j.err = err
			return
		}
	}
	if j.ringCap > 0 {
		if len(j.ring) == j.ringCap {
			// Shift-free eviction: drop the oldest half in one copy so
			// amortized append stays O(1) without a circular index.
			half := j.ringCap / 2
			if half == 0 {
				half = 1
			}
			j.ring = append(j.ring[:0], j.ring[half:]...)
			j.ringBase += uint64(half)
		}
		j.ring = append(j.ring, ev)
	}
	j.n++
}

// Tail returns the ringed events with absolute index >= after, the
// index to pass as the next call's after, and how many events in the
// requested range had already been evicted from the ring. The returned
// slice is freshly allocated.
func (j *Journal) Tail(after uint64) (events []Event, next uint64, dropped uint64) {
	if j == nil {
		return nil, after, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.ringBase + uint64(len(j.ring))
	if after < j.ringBase {
		dropped = j.ringBase - after
		after = j.ringBase
	}
	if after >= end {
		return nil, end, dropped
	}
	events = append([]Event(nil), j.ring[after-j.ringBase:]...)
	return events, end, dropped
}

// Events returns how many events were successfully written.
func (j *Journal) Events() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJournal parses a JSONL journal stream back into events.
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: journal read: %w", err)
	}
	return out, nil
}
