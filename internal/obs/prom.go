package obs

// Prometheus text exposition of a metrics snapshot, so chamd (and any
// live run behind it) is scrapeable by standard tooling. Counters and
// gauges render as themselves; histograms render as summaries (the
// registry's log2 buckets already interpolate stable p50/p90/p99, which
// is what the snapshot carries).

import (
	"fmt"
	"io"
	"sort"
)

// PrometheusContentType is the exposition-format content type.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Metric families are sorted by
// name so output is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		// sum is reconstructed from the snapshot mean; the registry keeps
		// an exact sum but the snapshot carries the mean, and count*mean
		// is exact enough for rate math.
		sum := h.Mean * int64(h.Count)
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.9\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			name, name, h.P50, name, h.P90, name, h.P99, name, sum, name, h.Count)
		if err != nil {
			return err
		}
	}
	return nil
}
