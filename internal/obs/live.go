package obs

// Live telemetry: the delta shipper that turns a running Observer into
// a stream a chamd daemon can watch. A Shipper goroutine wakes on a
// wall-clock interval, snapshots the metrics registry, drains the
// journal ring tail, and copies the per-rank Progress board into one
// sequence-numbered Delta; deltas batch into a single POST to the
// daemon's live-session endpoint, with bounded buffering, retry, and
// exponential backoff when the daemon is slow or away. The simulated
// run never blocks on the network: every hot-path cost is an atomic
// update into Progress, and shipping happens entirely off to the side.

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Delta is one shipped telemetry increment. Seq starts at 1 and
// increases by 1 per delta built; the server applies deltas
// idempotently by sequence number, so retried batches are harmless.
type Delta struct {
	Session   string `json:"session"`
	Benchmark string `json:"benchmark,omitempty"`
	P         int    `json:"p"`
	// Part distinguishes independent shippers feeding one session — the
	// fleet case, where every rank process ships its own deltas with
	// its own sequence numbers. Empty for single-process runs; the
	// server dedups sequence numbers per part.
	Part string `json:"part,omitempty"`
	Seq  uint64 `json:"seq"`
	// SentUnixMs is the sender's wall clock at build time.
	SentUnixMs int64 `json:"sent_unix_ms"`
	// Final marks the run's last delta (sent by Stop).
	Final bool `json:"final,omitempty"`
	// Metrics is the full registry snapshot, pre-marshaled (nil when
	// metrics are disabled or thinned off this delta). Snapshots are
	// cumulative; the server keeps the latest and never looks inside,
	// so shipping raw JSON spares it a typed decode per delta.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Events is the journal tail since the previous delta.
	Events []Event `json:"events,omitempty"`
	// EventsDropped counts journal events evicted from the ring before
	// this delta could ship them.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// Ranks is the per-rank progress board.
	Ranks []RankProgress `json:"ranks,omitempty"`
}

// Ack is the server's response to a delta batch.
type Ack struct {
	AckSeq uint64 `json:"ack_seq"`
}

// ShipperOptions configures a live telemetry shipper.
type ShipperOptions struct {
	// URL is the chamd base URL (e.g. "http://host:8321").
	URL string
	// Session identifies the run; a random ID is generated when empty.
	Session string
	// Part labels this shipper within the session (fleet member index);
	// empty for single-process runs.
	Part string
	// Ranks limits the shipped progress board to these world ranks (a
	// fleet member only speaks for the ranks it hosts); nil ships all.
	Ranks []int
	// Benchmark and P label the session on the server.
	Benchmark string
	P         int
	// Interval is the snapshot/ship period (default 250ms).
	Interval time.Duration
	// Timeout bounds one POST (default 5s).
	Timeout time.Duration
	// MaxPending caps the unshipped delta buffer; when the daemon is
	// unreachable the oldest deltas are dropped (and counted) beyond
	// this (default 64).
	MaxPending int
	// FinalRetries is how many times Stop retries the final flush
	// (default 3).
	FinalRetries int
	// MetricsEvery thins the metrics payload: the full registry
	// snapshot (the bulk of a delta's bytes, and of the server's decode
	// time) rides only on every Nth delta, plus always the first and
	// final ones. Events and rank progress ship on every delta
	// regardless. Default 4; 1 ships metrics on every delta.
	MetricsEvery int
	// MaxEventsPerDelta bounds the journal tail one delta carries; a
	// chatty run keeps only its newest events per tick (the excess is
	// counted in EventsDropped, same as ring eviction). The server caps
	// its per-session event log anyway, so shipping an unbounded tail
	// buys nothing. Default 64.
	MaxEventsPerDelta int
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o ShipperOptions) normalized() ShipperOptions {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 64
	}
	if o.FinalRetries <= 0 {
		o.FinalRetries = 3
	}
	if o.MetricsEvery <= 0 {
		o.MetricsEvery = 4
	}
	if o.MaxEventsPerDelta <= 0 {
		o.MaxEventsPerDelta = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: o.Timeout}
	}
	return o
}

// Shipper streams an Observer's state to a chamd live session.
type Shipper struct {
	o    *Observer
	opts ShipperOptions
	url  string

	stop chan struct{}
	done chan struct{}

	// loop-goroutine state (no locking needed).
	seq       uint64
	eventNext uint64
	pending   []Delta
	backoff   time.Duration
	nextTry   time.Time

	mu       sync.Mutex
	shipped  uint64 // deltas acknowledged by the server
	posts    uint64 // successful POSTs
	bytesOut int64  // JSON bytes successfully POSTed
	errors   uint64 // failed POSTs
	dropped  uint64 // deltas evicted from the pending buffer
	lastErr  error
}

// NewShipper builds a shipper for the observer (which may be nil: the
// shipper then streams heartbeat-only deltas with no metrics, events,
// or progress — still enough for the server to track the session).
func NewShipper(o *Observer, opts ShipperOptions) (*Shipper, error) {
	opts = opts.normalized()
	if opts.URL == "" {
		return nil, fmt.Errorf("obs: shipper needs a URL")
	}
	if opts.Session == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("obs: session id: %w", err)
		}
		opts.Session = hex.EncodeToString(b[:])
	}
	if err := ValidateSessionID(opts.Session); err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(opts.URL, "/")
	return &Shipper{
		o:    o,
		opts: opts,
		url:  base + "/live/sessions/" + opts.Session + "/deltas",
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// ValidateSessionID enforces the session ID charset shared by shipper
// and server: 1-64 characters of [A-Za-z0-9._-].
func ValidateSessionID(id string) error {
	if len(id) == 0 || len(id) > 64 {
		return fmt.Errorf("obs: session id must be 1-64 chars, got %d", len(id))
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("obs: session id contains %q (allowed: [A-Za-z0-9._-])", c)
		}
	}
	return nil
}

// Session returns the (possibly generated) session ID.
func (s *Shipper) Session() string { return s.opts.Session }

// Start launches the shipping goroutine. It ships one delta
// immediately so the session exists on the server before the first
// interval elapses.
func (s *Shipper) Start() {
	go s.loop()
}

func (s *Shipper) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	s.tick(false)
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tick(false)
		}
	}
}

// Stop flushes the final delta (retrying a few times) and shuts the
// shipper down. It returns the last transport error if the final
// delta never landed.
func (s *Shipper) Stop() error {
	close(s.stop)
	<-s.done
	s.tick(true)
	for i := 0; i < s.opts.FinalRetries && len(s.pending) > 0; i++ {
		time.Sleep(s.opts.Interval)
		s.nextTry = time.Time{} // final flush overrides backoff
		s.send()
	}
	if len(s.pending) > 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return fmt.Errorf("obs: %d live deltas unshipped: %w", len(s.pending), s.lastErr)
	}
	return nil
}

// tick builds one delta, enqueues it, and attempts a send.
func (s *Shipper) tick(final bool) {
	s.enqueue(s.build(final))
	s.send()
}

// build snapshots the observer into the next sequence-numbered delta.
func (s *Shipper) build(final bool) Delta {
	s.seq++
	d := Delta{
		Session:    s.opts.Session,
		Benchmark:  s.opts.Benchmark,
		P:          s.opts.P,
		Part:       s.opts.Part,
		Seq:        s.seq,
		SentUnixMs: time.Now().UnixMilli(),
		Final:      final,
	}
	if s.o != nil {
		// Metrics snapshots are cumulative and dominate the delta's size,
		// so thin them to every Nth delta; the first establishes the
		// session's metrics and the final one is always exact.
		if s.o.Reg != nil && (final || s.seq == 1 || (s.seq-1)%uint64(s.opts.MetricsEvery) == 0) {
			if b, err := json.Marshal(s.o.Reg.Snapshot()); err == nil {
				d.Metrics = b
			}
		}
		d.Events, s.eventNext, d.EventsDropped = s.o.Journal.Tail(s.eventNext)
		if over := len(d.Events) - s.opts.MaxEventsPerDelta; over > 0 {
			d.Events = d.Events[over:]
			d.EventsDropped += uint64(over)
		}
		d.Ranks = s.o.Progress.Snapshot()
		if s.opts.Ranks != nil {
			// A fleet member only speaks for the ranks it hosts: its
			// board rows for remote ranks are empty and would clobber
			// the other members' progress on the server.
			keep := d.Ranks[:0]
			for _, rp := range d.Ranks {
				for _, r := range s.opts.Ranks {
					if rp.Rank == r {
						keep = append(keep, rp)
						break
					}
				}
			}
			d.Ranks = keep
		}
		if d.P == 0 {
			d.P = s.o.Progress.Ranks()
		}
	}
	return d
}

// enqueue appends to the bounded pending buffer, evicting the oldest
// deltas when the daemon has been away too long.
func (s *Shipper) enqueue(d Delta) {
	if over := len(s.pending) + 1 - s.opts.MaxPending; over > 0 {
		s.pending = append(s.pending[:0], s.pending[over:]...)
		s.mu.Lock()
		s.dropped += uint64(over)
		s.mu.Unlock()
	}
	s.pending = append(s.pending, d)
}

// send POSTs the whole pending batch, honoring the backoff window.
func (s *Shipper) send() {
	if len(s.pending) == 0 || time.Now().Before(s.nextTry) {
		return
	}
	body, err := json.Marshal(s.pending)
	if err != nil {
		s.fail(err)
		return
	}
	resp, err := s.opts.Client.Post(s.url, "application/json", bytes.NewReader(body))
	if err != nil {
		s.fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		s.fail(fmt.Errorf("POST %s: %s: %s", s.url, resp.Status, strings.TrimSpace(string(msg))))
		return
	}
	var ack Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		s.fail(fmt.Errorf("POST %s: decode ack: %w", s.url, err))
		return
	}
	// Drain the encoder's trailing newline so the keep-alive connection
	// is reusable; otherwise every POST dials a fresh one.
	io.Copy(io.Discard, resp.Body)
	n := uint64(len(s.pending))
	s.pending = s.pending[:0]
	s.backoff = 0
	s.nextTry = time.Time{}
	s.mu.Lock()
	s.shipped += n
	s.posts++
	s.bytesOut += int64(len(body))
	s.lastErr = nil
	s.mu.Unlock()
}

// fail records a transport error and arms exponential backoff
// (100ms..5s) so a dead daemon costs one connection attempt per window,
// not one per tick.
func (s *Shipper) fail(err error) {
	if s.backoff == 0 {
		s.backoff = 100 * time.Millisecond
	} else if s.backoff *= 2; s.backoff > 5*time.Second {
		s.backoff = 5 * time.Second
	}
	s.nextTry = time.Now().Add(s.backoff)
	s.mu.Lock()
	s.errors++
	s.lastErr = err
	s.mu.Unlock()
}

// Stats reports the shipper's transport totals.
type ShipperStats struct {
	Session  string `json:"session"`
	Deltas   uint64 `json:"deltas"`
	Posts    uint64 `json:"posts"`
	BytesOut int64  `json:"bytes_out"`
	Errors   uint64 `json:"errors"`
	Dropped  uint64 `json:"dropped"`
}

// Stats snapshots the shipper's counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShipperStats{
		Session:  s.opts.Session,
		Deltas:   s.shipped,
		Posts:    s.posts,
		BytesOut: s.bytesOut,
		Errors:   s.errors,
		Dropped:  s.dropped,
	}
}
