package obs

import (
	"sync/atomic"
)

// Progress is the live-run progress board: one cache-line-padded slot
// per rank, updated in-line by the rank's own goroutine and read by the
// telemetry shipper from its own goroutine. It answers the questions a
// monitoring service needs mid-run — how many marker windows has each
// rank completed, when (in virtual time) did it arrive at its last
// window boundary, how much application compute has it burned, is it
// still issuing MPI operations at all — without any locking: every
// field is an independent atomic, and a torn read across fields only
// smears one snapshot interval, which the consumer tolerates by
// construction.
//
// A nil *Progress is the disabled state: every method no-ops, so the
// runtime hooks cost one pointer test when live telemetry is off.
type Progress struct {
	slots []progressSlot
}

// progressSlot is one rank's live counters, padded to its own cache
// line so concurrent rank goroutines never false-share.
type progressSlot struct {
	// windows is the number of completed marker windows (the marker
	// call count, 1-based after the first marker).
	windows atomic.Uint64
	// arriveVT is the rank's virtual clock when it *entered* the last
	// marker barrier — before synchronization stretched it to the
	// collective exit time — so cross-rank skew survives the barrier.
	arriveVT atomic.Int64
	// computeVT accumulates application compute virtual time, including
	// fault-injected stretch: a 4x-slow rank shows ~4x the median here.
	computeVT atomic.Int64
	// ops counts completed MPI operations; the shipper and the server
	// treat a frozen ops count as a missed heartbeat.
	ops atomic.Uint64
	// departed is set when the rank crash-stops.
	departed atomic.Bool

	_ [24]byte // pad the slot past a 64-byte line
}

// RankProgress is the exported snapshot of one rank's slot — the
// per-rank payload of every live telemetry delta.
type RankProgress struct {
	Rank      int    `json:"rank"`
	Windows   uint64 `json:"windows"`
	ArriveVT  int64  `json:"arrive_vt_ns"`
	ComputeVT int64  `json:"compute_vt_ns"`
	Ops       uint64 `json:"ops"`
	Departed  bool   `json:"departed,omitempty"`
}

// NewProgress sizes a progress board for p ranks.
func NewProgress(p int) *Progress {
	if p <= 0 {
		return nil
	}
	return &Progress{slots: make([]progressSlot, p)}
}

// Window records that rank completed marker window (1-based), having
// arrived at the barrier at virtual time arriveVT.
func (p *Progress) Window(rank int, window uint64, arriveVT int64) {
	if p == nil || rank < 0 || rank >= len(p.slots) {
		return
	}
	s := &p.slots[rank]
	s.windows.Store(window)
	s.arriveVT.Store(arriveVT)
}

// AddCompute accumulates d virtual nanoseconds of application compute
// (post-perturbation, so fault-injected slowdowns are visible).
func (p *Progress) AddCompute(rank int, d int64) {
	if p == nil || rank < 0 || rank >= len(p.slots) {
		return
	}
	p.slots[rank].computeVT.Add(d)
}

// Op counts one completed MPI operation — the rank's heartbeat.
func (p *Progress) Op(rank int) {
	if p == nil || rank < 0 || rank >= len(p.slots) {
		return
	}
	p.slots[rank].ops.Add(1)
}

// Depart marks the rank crash-stopped.
func (p *Progress) Depart(rank int) {
	if p == nil || rank < 0 || rank >= len(p.slots) {
		return
	}
	p.slots[rank].departed.Store(true)
}

// Ranks returns the board's rank count (0 when disabled).
func (p *Progress) Ranks() int {
	if p == nil {
		return 0
	}
	return len(p.slots)
}

// Snapshot copies every slot. Safe to call concurrently with updates;
// each rank's fields are read independently, which is consistent enough
// for monitoring (a window count can be at most one snapshot interval
// newer than its arrival time).
func (p *Progress) Snapshot() []RankProgress {
	if p == nil {
		return nil
	}
	out := make([]RankProgress, len(p.slots))
	for r := range p.slots {
		s := &p.slots[r]
		out[r] = RankProgress{
			Rank:      r,
			Windows:   s.windows.Load(),
			ArriveVT:  s.arriveVT.Load(),
			ComputeVT: s.computeVT.Load(),
			Ops:       s.ops.Load(),
			Departed:  s.departed.Load(),
		}
	}
	return out
}
