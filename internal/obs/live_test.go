package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestJournalRingTail checks the shipper-facing tail contract: absolute
// indexing, eviction accounting, and cursor advancement.
func TestJournalRingTail(t *testing.T) {
	j := NewJournalRing(nil, 8)
	for i := 0; i < 4; i++ {
		j.Emit(Event{Kind: KindWindow, Rank: i})
	}
	evs, next, dropped := j.Tail(0)
	if len(evs) != 4 || next != 4 || dropped != 0 {
		t.Fatalf("tail(0) = %d events, next %d, dropped %d", len(evs), next, dropped)
	}
	if evs[0].Rank != 0 || evs[3].Rank != 3 {
		t.Fatalf("tail order wrong: %+v", evs)
	}
	// No new events: empty tail, cursor stays put.
	evs, next, dropped = j.Tail(next)
	if len(evs) != 0 || next != 4 || dropped != 0 {
		t.Fatalf("idle tail = %d events, next %d, dropped %d", len(evs), next, dropped)
	}
	// Overflow the ring: capacity 8 evicts the oldest half on the 9th
	// emit, so events 0..3 (already consumed) plus some unconsumed ones
	// are gone.
	for i := 4; i < 20; i++ {
		j.Emit(Event{Kind: KindWindow, Rank: i})
	}
	evs, next2, dropped := j.Tail(next)
	if next2 != 20 {
		t.Fatalf("next = %d, want 20", next2)
	}
	if dropped == 0 {
		t.Fatal("expected dropped events after ring overflow")
	}
	if uint64(len(evs))+dropped != 20-next {
		t.Fatalf("events (%d) + dropped (%d) != requested range (%d)", len(evs), dropped, 20-next)
	}
	// Returned events are the most recent, contiguous with the end.
	if evs[len(evs)-1].Rank != 19 {
		t.Fatalf("last tailed rank = %d, want 19", evs[len(evs)-1].Rank)
	}
	// The JSONL writer still sees everything when attached.
	var buf bytes.Buffer
	jw := NewJournalRing(&buf, 4)
	for i := 0; i < 10; i++ {
		jw.Emit(Event{Kind: KindWindow, Rank: i})
	}
	all, err := ReadJournal(&buf)
	if err != nil || len(all) != 10 {
		t.Fatalf("writer side kept %d events (err %v), want 10", len(all), err)
	}
	if jw.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", jw.Events())
	}
}

// TestProgressBoard exercises the per-rank slots and snapshot.
func TestProgressBoard(t *testing.T) {
	p := NewProgress(4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for w := uint64(1); w <= 10; w++ {
				p.Window(r, w, int64(w)*100*int64(r+1))
				p.AddCompute(r, int64(r+1)*50)
				p.Op(r)
			}
		}(r)
	}
	wg.Wait()
	p.Depart(3)
	snap := p.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for r, rp := range snap {
		if rp.Rank != r || rp.Windows != 10 || rp.Ops != 10 {
			t.Fatalf("rank %d snapshot wrong: %+v", r, rp)
		}
		if rp.ComputeVT != int64(r+1)*500 {
			t.Fatalf("rank %d computeVT = %d, want %d", r, rp.ComputeVT, (r+1)*500)
		}
	}
	if !snap[3].Departed || snap[0].Departed {
		t.Fatalf("departed flags wrong: %+v", snap)
	}
	// Out-of-range and nil are absorbed.
	p.Window(99, 1, 1)
	p.Op(-1)
	var nilP *Progress
	nilP.Window(0, 1, 1)
	nilP.AddCompute(0, 1)
	nilP.Op(0)
	nilP.Depart(0)
	if nilP.Ranks() != 0 || nilP.Snapshot() != nil {
		t.Fatal("nil progress misbehaved")
	}
}

// TestWritePrometheus checks the exposition format: type lines, sorted
// families, summary quantiles.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(3)
	r.Counter("aa_total").Inc()
	r.Gauge("level").Set(-2)
	for i := 1; i <= 100; i++ {
		r.Histogram("lat_ns").Observe(int64(i))
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aa_total counter\naa_total 1\n",
		"# TYPE zz_total counter\nzz_total 3\n",
		"# TYPE level gauge\nlevel -2\n",
		"# TYPE lat_ns summary\n",
		"lat_ns{quantile=\"0.5\"} ",
		"lat_ns{quantile=\"0.99\"} ",
		"lat_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// liveSink is a minimal in-test chamd: it accepts delta batches and
// remembers what it saw.
type liveSink struct {
	mu      sync.Mutex
	deltas  []Delta
	fail    atomic.Bool // reject requests while set
	reqs    atomic.Int64
	maxSeen uint64
}

func (ls *liveSink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ls.reqs.Add(1)
		if ls.fail.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		var batch []Delta
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ls.mu.Lock()
		for _, d := range batch {
			if d.Seq > ls.maxSeen {
				ls.maxSeen = d.Seq
				ls.deltas = append(ls.deltas, d)
			}
		}
		max := ls.maxSeen
		ls.mu.Unlock()
		json.NewEncoder(w).Encode(Ack{AckSeq: max})
	})
}

func (ls *liveSink) snapshot() []Delta {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return append([]Delta(nil), ls.deltas...)
}

// TestShipperHappyPath runs a shipper against an httptest sink and
// checks sequencing, payload contents, and the final flush.
func TestShipperHappyPath(t *testing.T) {
	sink := &liveSink{}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	o := New(Options{Metrics: true, JournalRing: 64, ProgressRanks: 2})
	o.Counter("widgets_total").Add(7)
	o.Emit(Event{Kind: KindWindow, Rank: 0})
	o.Progress.Window(0, 3, 1000)
	o.Progress.Window(1, 3, 4000)
	o.Progress.Op(0)

	sh, err := NewShipper(o, ShipperOptions{
		URL:       srv.URL,
		Benchmark: "TEST",
		P:         2,
		Interval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	if sh.Session() == "" {
		t.Fatal("no session id generated")
	}
	sh.Start()
	time.Sleep(30 * time.Millisecond)
	o.Counter("widgets_total").Add(1)
	o.Emit(Event{Kind: KindFinalize, Rank: 1})
	if err := sh.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	got := sink.snapshot()
	if len(got) < 2 {
		t.Fatalf("sink saw %d deltas, want >= 2", len(got))
	}
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Fatalf("delta %d has seq %d (gap or reorder)", i, d.Seq)
		}
		if d.Session != sh.Session() || d.Benchmark != "TEST" || d.P != 2 {
			t.Fatalf("delta header wrong: %+v", d)
		}
	}
	last := got[len(got)-1]
	if !last.Final {
		t.Fatalf("last delta not final: %+v", last)
	}
	var finalSnap Snapshot
	if err := json.Unmarshal(last.Metrics, &finalSnap); err != nil || finalSnap.Counters["widgets_total"] != 8 {
		t.Fatalf("final metrics wrong (err %v): %s", err, last.Metrics)
	}
	if len(last.Ranks) != 2 || last.Ranks[1].Windows != 3 {
		t.Fatalf("final ranks wrong: %+v", last.Ranks)
	}
	// Journal events arrive exactly once across the stream.
	events := 0
	for _, d := range got {
		events += len(d.Events)
	}
	if events != 2 {
		t.Fatalf("journal events shipped %d times, want 2", events)
	}
	st := sh.Stats()
	if st.Deltas != uint64(len(got)) || st.Errors != 0 || st.Dropped != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestShipperRetry makes the sink fail for a while and checks the
// shipper buffers, backs off, and delivers everything once the sink
// recovers — without duplicating sequence numbers.
func TestShipperRetry(t *testing.T) {
	sink := &liveSink{}
	sink.fail.Store(true)
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	o := New(Options{Metrics: true, ProgressRanks: 1})
	sh, err := NewShipper(o, ShipperOptions{
		URL:      srv.URL,
		Interval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	sh.Start()
	time.Sleep(20 * time.Millisecond)
	if st := sh.Stats(); st.Errors == 0 {
		t.Fatalf("expected transport errors while sink down, got %+v", st)
	}
	sink.fail.Store(false)
	time.Sleep(20 * time.Millisecond)
	if err := sh.Stop(); err != nil {
		t.Fatalf("Stop after recovery: %v", err)
	}
	got := sink.snapshot()
	if len(got) == 0 {
		t.Fatal("sink saw nothing after recovery")
	}
	seen := map[uint64]bool{}
	for _, d := range got {
		if seen[d.Seq] {
			t.Fatalf("duplicate seq %d", d.Seq)
		}
		seen[d.Seq] = true
	}
	if !got[len(got)-1].Final {
		t.Fatal("final delta missing after recovery")
	}
}

// TestShipperDropOldest bounds the pending buffer.
func TestShipperDropOldest(t *testing.T) {
	sink := &liveSink{}
	sink.fail.Store(true)
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	o := New(Options{ProgressRanks: 1})
	sh, err := NewShipper(o, ShipperOptions{
		URL:        srv.URL,
		Interval:   time.Millisecond,
		MaxPending: 4,
	})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	sh.Start()
	time.Sleep(30 * time.Millisecond)
	sink.fail.Store(false)
	_ = sh.Stop()
	if st := sh.Stats(); st.Dropped == 0 {
		t.Fatalf("expected dropped deltas with MaxPending=4, got %+v", st)
	}
}

// TestValidateSessionID pins the shared charset.
func TestValidateSessionID(t *testing.T) {
	for _, ok := range []string{"a", "run-1", "A.b_c-9", strings.Repeat("x", 64)} {
		if err := ValidateSessionID(ok); err != nil {
			t.Fatalf("ValidateSessionID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "a/b", "a b", "セ", strings.Repeat("x", 65)} {
		if err := ValidateSessionID(bad); err == nil {
			t.Fatalf("ValidateSessionID(%q) accepted", bad)
		}
	}
}

// BenchmarkNilObserver proves the PR-1 wart fix: every Observer entry
// point on a nil receiver costs a pointer test and nothing else — zero
// allocations, sub-nanosecond-scale per call.
func BenchmarkNilObserver(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Counter("x").Inc()
		o.Gauge("x").Set(1)
		o.Histogram("x").Observe(1)
		o.Span(0, "s", CatCompute, 0, 1)
		o.Window(0, 1, 1)
		o.ProgressBoard().Op(0)
		o.Emit(Event{})
	}
}

// BenchmarkNilProgress isolates the progress hooks (the new hot-path
// sites in mpi/core).
func BenchmarkNilProgress(b *testing.B) {
	var p *Progress
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Op(0)
		p.AddCompute(0, 10)
		p.Window(0, 1, 1)
	}
}
