package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
)

// Edge is one matched send/recv pair: the causal link between the moment
// a message left its origin rank and the moment the receiving rank's
// matching receive completed. The MPI runtime piggybacks (From, Seq,
// SendVT) on every message — point-to-point traffic and every hop of the
// tree collectives alike — and the receiver records the full edge at
// match time, so edges need no post-hoc join.
//
// All times are virtual nanoseconds. WaitVT is the receiver-side blocked
// time attributable to the sender: how long the receiver sat in the
// matching receive before the message arrived (zero when the message was
// already waiting in the mailbox). Ctx/CtxSeq name the collective
// instance the *receiver* was executing when the match completed ("vote",
// "merge:phase-change", "alltoall", ...), empty for plain point-to-point
// application traffic.
type Edge struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Seq      uint64 `json:"seq"`
	SendVT   int64  `json:"send_ns"`
	ArriveVT int64  `json:"arrive_ns"`
	RecvVT   int64  `json:"recv_ns"`
	WaitVT   int64  `json:"wait_ns,omitempty"`
	Bytes    int    `json:"bytes,omitempty"`
	Comm     int32  `json:"comm,omitempty"`
	Tag      int    `json:"tag,omitempty"`
	Ctx      string `json:"ctx,omitempty"`
	CtxSeq   int    `json:"ctx_seq,omitempty"`
}

// defaultEdgeCap bounds per-rank edge memory (~120B each, so ~60MB/rank
// at the cap). Excess edges are counted, not stored, mirroring the
// Timeline span cap.
const defaultEdgeCap = 1 << 19

// Causal is the per-rank causal edge store. Each rank's row is written
// only from that rank's own goroutine — the receiver records the edge,
// and edges are always appended to the receiver's row — so appends are
// unsynchronized; the drop counter is the only cross-rank state. A nil
// *Causal discards edges.
type Causal struct {
	perRank [][]Edge
	capPer  int
	dropped atomic.Uint64
}

// NewCausal sizes a causal store for p ranks.
func NewCausal(p int) *Causal {
	if p <= 0 {
		return nil
	}
	return &Causal{perRank: make([][]Edge, p), capPer: defaultEdgeCap}
}

// Record appends one edge to the receiving rank's row. Must be called
// from rank e.To's goroutine (the receiver records its own matches).
func (c *Causal) Record(e Edge) {
	if c == nil || e.To < 0 || e.To >= len(c.perRank) {
		return
	}
	if len(c.perRank[e.To]) >= c.capPer {
		c.dropped.Add(1)
		return
	}
	c.perRank[e.To] = append(c.perRank[e.To], e)
}

// Dropped returns how many edges were discarded at the per-rank cap.
func (c *Causal) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped.Load()
}

// EdgeCount returns the total number of stored edges.
func (c *Causal) EdgeCount() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, row := range c.perRank {
		n += len(row)
	}
	return n
}

// RankEdges returns the receiving rank's recorded row (the live slice;
// callers must not mutate it). Nil for out-of-range ranks.
func (c *Causal) RankEdges(r int) []Edge {
	if c == nil || r < 0 || r >= len(c.perRank) {
		return nil
	}
	return c.perRank[r]
}

// Edges concatenates every rank's row (receiver program order within a
// rank, rank order across rows) — a deterministic ordering for a
// deterministic virtual-time run.
func (c *Causal) Edges() []Edge {
	if c == nil {
		return nil
	}
	out := make([]Edge, 0, c.EdgeCount())
	for _, row := range c.perRank {
		out = append(out, row...)
	}
	return out
}

// WriteEdges streams the store as JSONL, one edge per line (the format
// chamrun -causal writes and chamtop -critical reads back).
func (c *Causal) WriteEdges(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if c != nil {
		for _, row := range c.perRank {
			for i := range row {
				if err := enc.Encode(&row[i]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdges parses a JSONL edge stream back into edges.
func ReadEdges(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Edge
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Edge
		if err := json.Unmarshal(b, &e); err != nil {
			return out, fmt.Errorf("obs: edges line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: edges read: %w", err)
	}
	return out, nil
}
