// Package obs is the observability layer of the tracing stack itself:
// the tracer tracing the tracer. It provides three coordinated
// facilities, all cheap enough to leave compiled into the hot paths and
// all disabled by a single nil check:
//
//   - a lock-free metrics Registry (atomic counters, gauges, and
//     log2-bucketed histograms built on internal/stats.Histogram) that
//     the MPI runtime, the transition graph, and the clusterer update
//     in-line;
//   - a structured JSONL Journal of discrete events — state
//     transitions, Algorithm 1 votes, cluster formations, lead
//     elections, phase-change flushes, radix-tree merge steps — each
//     stamped with rank, marker index, and virtual time;
//   - a per-rank virtual-time Timeline of spans (compute, blocked
//     communication, marker processing, clustering, merging) exported
//     in the Chrome trace-event format, loadable in chrome://tracing or
//     Perfetto.
//
// Everything hangs off an Observer. A nil *Observer is the disabled
// state: every method on it (and on the nil handles it returns) is a
// no-op, so instrumented code needs no flags or build tags — the cost
// of disabled observability is one pointer test per site.
package obs

import (
	"io"

	"chameleon/internal/vtime"
)

// Observer bundles the three observability facilities. Any field may be
// nil to disable that facility independently; a nil *Observer disables
// all of them.
type Observer struct {
	// Reg is the metrics registry.
	Reg *Registry
	// Journal receives structured events.
	Journal *Journal
	// Timeline receives per-rank virtual-time spans.
	Timeline *Timeline
	// Causal receives matched send/recv edge pairs.
	Causal *Causal
	// Progress is the per-rank live-run progress board.
	Progress *Progress
}

// Options selects which facilities New enables.
type Options struct {
	// Metrics enables the registry.
	Metrics bool
	// Journal, when non-nil, receives JSONL events.
	Journal io.Writer
	// TimelineRanks, when positive, enables span capture for that many
	// ranks.
	TimelineRanks int
	// CausalRanks, when positive, enables causal edge capture (matched
	// send/recv pairs) for that many ranks.
	CausalRanks int
	// ProgressRanks, when positive, enables the live progress board for
	// that many ranks (required for live telemetry shipping).
	ProgressRanks int
	// JournalRing, when positive, keeps that many recent journal events
	// in memory for the live shipper's Tail reads. It enables the
	// journal even when the Journal writer is nil (ring-only).
	JournalRing int
}

// New assembles an Observer, or returns nil when every facility is
// disabled (so callers can pass the result straight into a config).
func New(o Options) *Observer {
	ob := &Observer{}
	if o.Metrics {
		ob.Reg = NewRegistry()
	}
	if o.JournalRing > 0 {
		ob.Journal = NewJournalRing(o.Journal, o.JournalRing)
	} else if o.Journal != nil {
		ob.Journal = NewJournal(o.Journal)
	}
	if o.TimelineRanks > 0 {
		ob.Timeline = NewTimeline(o.TimelineRanks)
	}
	if o.CausalRanks > 0 {
		ob.Causal = NewCausal(o.CausalRanks)
	}
	if o.ProgressRanks > 0 {
		ob.Progress = NewProgress(o.ProgressRanks)
	}
	if ob.Reg == nil && ob.Journal == nil && ob.Timeline == nil && ob.Causal == nil && ob.Progress == nil {
		return nil
	}
	return ob
}

// Enabled reports whether any facility is live.
func (o *Observer) Enabled() bool { return o != nil }

// Counter returns the named counter handle (nil, and safe to use, when
// metrics are disabled).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Gauge returns the named gauge handle.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name)
}

// Histogram returns the named histogram handle.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name)
}

// Emit writes one journal event (no-op when the journal is disabled).
func (o *Observer) Emit(ev Event) {
	if o == nil {
		return
	}
	o.Journal.Emit(ev)
}

// Span records one [start, end) virtual-time span on the rank's
// timeline track.
func (o *Observer) Span(rank int, name, cat string, start, end vtime.Time) {
	if o == nil {
		return
	}
	o.Timeline.Add(rank, name, cat, start, end)
}

// CausalStore returns the causal edge store (nil, and safe to pass
// around, when causal capture is disabled).
func (o *Observer) CausalStore() *Causal {
	if o == nil {
		return nil
	}
	return o.Causal
}

// ProgressBoard returns the live progress board (nil, and safe to use,
// when progress tracking is disabled).
func (o *Observer) ProgressBoard() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Window records one completed marker window on the progress board.
func (o *Observer) Window(rank int, window uint64, arriveVT vtime.Time) {
	if o == nil {
		return
	}
	o.Progress.Window(rank, window, int64(arriveVT))
}
