package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"chameleon/internal/vtime"
)

// Span categories used by the instrumented stack. The category becomes
// the Chrome trace event's "cat" field, so Perfetto can filter tracks
// by activity class.
const (
	CatCompute    = "compute"    // application computation
	CatP2P        = "p2p"        // point-to-point communication (incl. blocked wait)
	CatColl       = "collective" // collective communication (incl. blocked wait)
	CatMarker     = "marker"     // marker barrier + Algorithm 1 vote
	CatClustering = "clustering" // Algorithm 2/3 clustering work
	CatTracer     = "tracer"     // tracing-layer work (compression, merging)
)

// Span is one half-open [Start, Start+Dur) interval of virtual time on
// one rank's track.
type Span struct {
	Rank  int
	Name  string
	Cat   string
	Start vtime.Time
	Dur   vtime.Duration
}

// defaultSpanCap bounds per-rank span memory (~48B each, so ~25MB/rank
// at the cap). Excess spans are counted, not stored.
const defaultSpanCap = 1 << 19

// Timeline captures per-rank spans for Chrome trace-event export. Each
// rank's track is written only from that rank's goroutine (the
// simulated runtime's threading model), so appends are unsynchronized;
// cross-rank state is atomic.
type Timeline struct {
	perRank [][]Span
	capPer  int
	dropped atomic.Uint64
}

// NewTimeline sizes a timeline for p ranks.
func NewTimeline(p int) *Timeline {
	if p <= 0 {
		return nil
	}
	return &Timeline{perRank: make([][]Span, p), capPer: defaultSpanCap}
}

// Add records one [start, end) span on rank's track. Zero- and
// negative-length spans are kept only if at least 1ns long after
// clamping (instant events add noise without information here).
func (t *Timeline) Add(rank int, name, cat string, start, end vtime.Time) {
	if t == nil || rank < 0 || rank >= len(t.perRank) || end <= start {
		return
	}
	if len(t.perRank[rank]) >= t.capPer {
		t.dropped.Add(1)
		return
	}
	t.perRank[rank] = append(t.perRank[rank], Span{
		Rank: rank, Name: name, Cat: cat,
		Start: start, Dur: vtime.Duration(end - start),
	})
}

// Dropped returns how many spans were discarded at the per-rank cap.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns rank r's recorded track (the live slice; callers must
// not mutate it). It returns nil for out-of-range ranks.
func (t *Timeline) Spans(r int) []Span {
	if t == nil || r < 0 || r >= len(t.perRank) {
		return nil
	}
	return t.perRank[r]
}

// SpanCount returns the total number of stored spans.
func (t *Timeline) SpanCount() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, s := range t.perRank {
		n += len(s)
	}
	return n
}

// WriteChromeTrace renders the timeline in the Chrome trace-event JSON
// format (the object form, with a traceEvents array of "X" complete
// events), which chrome://tracing and Perfetto load directly. Virtual
// nanoseconds map to trace microseconds with sub-microsecond precision
// preserved as decimals. Each rank becomes one thread track of pid 0.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceFlows(w, nil)
}

// WriteChromeTraceFlows is WriteChromeTrace plus causal flow events:
// every edge whose receiver actually waited (WaitVT > 0) becomes an
// "s"/"f" flow pair, so Perfetto renders an arrow from the delaying send
// span on the origin rank's track to the receive span it delayed. The
// trace always carries a "chameleon_spans_dropped" metadata event (and
// "chameleon_edges_dropped" when a causal store is given), so capped
// capture is visible in the artifact itself, never silently truncated.
func (t *Timeline) WriteChromeTraceFlows(w io.Writer, c *Causal) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(s)
	}
	if t != nil {
		for r := range t.perRank {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"rank %d"}}`, r, r))
		}
		for r := range t.perRank {
			for _, s := range t.perRank[r] {
				emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d}`,
					strconv.Quote(s.Name), strconv.Quote(s.Cat),
					usec(int64(s.Start)), usec(int64(s.Dur)), r))
			}
		}
	}
	emit(fmt.Sprintf(`{"name":"chameleon_spans_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":%d}}`, t.Dropped()))
	if c != nil {
		emit(fmt.Sprintf(`{"name":"chameleon_edges_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":%d}}`, c.Dropped()))
		for _, row := range c.perRank {
			for i := range row {
				e := &row[i]
				if e.WaitVT <= 0 {
					continue
				}
				name := e.Ctx
				if name == "" {
					name = "p2p"
				}
				id := uint64(e.From)<<32 | e.Seq&0xffffffff
				emit(fmt.Sprintf(`{"name":%s,"cat":"flow","ph":"s","id":%d,"ts":%s,"pid":0,"tid":%d}`,
					strconv.Quote(name), id, usec(e.SendVT), e.From))
				emit(fmt.Sprintf(`{"name":%s,"cat":"flow","ph":"f","bp":"e","id":%d,"ts":%s,"pid":0,"tid":%d}`,
					strconv.Quote(name), id, usec(e.ArriveVT), e.To))
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec formats nanoseconds as decimal microseconds without float
// rounding artifacts.
func usec(ns int64) string {
	q, r := ns/1000, ns%1000
	if r == 0 {
		return strconv.FormatInt(q, 10)
	}
	return fmt.Sprintf("%d.%03d", q, r)
}
