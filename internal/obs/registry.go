package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"chameleon/internal/stats"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter (metrics disabled) ignores updates.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. A nil *Gauge ignores updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a lock-free log2-bucketed histogram over int64 samples
// (virtual nanoseconds in practice). It mirrors stats.Histogram's
// bucketing so snapshots can reuse its quantile interpolation, but every
// field is atomic: Observe is a handful of uncontended atomic adds, safe
// from any goroutine. A nil *Histogram ignores observations.
type Histogram struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[stats.BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples recorded so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Stats materializes the histogram into a stats.Histogram snapshot
// (quantiles, mean, bounds). Concurrent Observe calls may land between
// field loads; the snapshot is internally consistent enough for
// reporting, which is all it serves.
func (h *Histogram) Stats() *stats.Histogram {
	out := stats.NewHistogram()
	if h == nil {
		return out
	}
	var n uint64
	var sum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		out.Buckets[i] = c
		n += c
	}
	sum = h.sum.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(sum) / float64(n)
	}
	min, max := h.min.Load(), h.max.Load()
	if n == 0 {
		min, max = math.MaxInt64, math.MinInt64
	}
	out.Restore(min, max, mean, n)
	return out
}

// Registry is a name-keyed collection of metric handles. Handle lookup
// takes a mutex (call sites fetch handles once, at setup); updates on
// the returned handles are lock-free. A nil *Registry returns nil
// handles, whose update methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the reported state of one histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. It is safe to call
// concurrently with updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		hs := v.Stats()
		snap := HistogramSnapshot{Count: hs.Count()}
		if snap.Count > 0 {
			snap.Min, snap.Max, snap.Mean = hs.Min, hs.Max, hs.Mean()
			snap.P50 = hs.Quantile(0.50)
			snap.P90 = hs.Quantile(0.90)
			snap.P99 = hs.Quantile(0.99)
		}
		s.Histograms[k] = snap
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as sorted "name value" lines, one
// metric per line (histograms expand to count/mean/p50/p99).
func (s Snapshot) WriteText(w io.Writer) error {
	var lines []string
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, h.Count),
			fmt.Sprintf("%s_mean %d", k, h.Mean),
			fmt.Sprintf("%s_p50 %d", k, h.P50),
			fmt.Sprintf("%s_p99 %d", k, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
