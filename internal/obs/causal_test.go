package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestCausalConcurrentPerRank exercises the store's threading model:
// each rank appends only to its own row (the receiver records its
// matches), concurrently across ranks. Run under -race this is the
// memory-safety proof.
func TestCausalConcurrentPerRank(t *testing.T) {
	const (
		ranks = 16
		edges = 2000
	)
	c := NewCausal(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < edges; i++ {
				c.Record(Edge{
					From: (r + 1) % ranks, To: r, Seq: uint64(i + 1),
					SendVT: int64(i), ArriveVT: int64(i + 5), RecvVT: int64(i + 6),
					WaitVT: int64(i % 3),
				})
			}
		}(r)
	}
	wg.Wait()
	if got := c.EdgeCount(); got != ranks*edges {
		t.Fatalf("EdgeCount = %d, want %d", got, ranks*edges)
	}
	if c.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", c.Dropped())
	}
	for r := 0; r < ranks; r++ {
		row := c.RankEdges(r)
		if len(row) != edges {
			t.Fatalf("rank %d: %d edges, want %d", r, len(row), edges)
		}
		// Receiver program order is preserved within a row.
		for i, e := range row {
			if e.Seq != uint64(i+1) || e.To != r {
				t.Fatalf("rank %d edge %d: seq=%d to=%d", r, i, e.Seq, e.To)
			}
		}
	}
}

// TestCausalCap verifies edges past the per-rank cap are counted, not
// stored, and that out-of-range ranks are ignored.
func TestCausalCap(t *testing.T) {
	c := NewCausal(1)
	c.capPer = 4
	for i := 0; i < 10; i++ {
		c.Record(Edge{From: 0, To: 0, Seq: uint64(i + 1)})
	}
	c.Record(Edge{From: 0, To: 5, Seq: 99})  // out of range
	c.Record(Edge{From: 0, To: -1, Seq: 99}) // out of range
	if got := len(c.RankEdges(0)); got != 4 {
		t.Fatalf("stored = %d, want 4", got)
	}
	if got := c.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
}

// TestCausalNil proves the disabled state: every method on a nil store
// is a safe no-op.
func TestCausalNil(t *testing.T) {
	var c *Causal
	c.Record(Edge{From: 0, To: 0, Seq: 1})
	if c.EdgeCount() != 0 || c.Dropped() != 0 || c.RankEdges(0) != nil || c.Edges() != nil {
		t.Fatal("nil Causal must be inert")
	}
	var buf bytes.Buffer
	if err := c.WriteEdges(&buf); err != nil {
		t.Fatalf("WriteEdges(nil): %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil store wrote %q", buf.String())
	}
	if NewCausal(0) != nil {
		t.Fatal("NewCausal(0) must be nil")
	}
}

// TestCausalRoundTrip checks WriteEdges/ReadEdges are inverse.
func TestCausalRoundTrip(t *testing.T) {
	c := NewCausal(3)
	want := []Edge{
		{From: 1, To: 0, Seq: 7, SendVT: 10, ArriveVT: 20, RecvVT: 25, WaitVT: 5, Bytes: 64, Comm: 2, Tag: 3, Ctx: "vote", CtxSeq: 4},
		{From: 0, To: 1, Seq: 1, SendVT: 1, ArriveVT: 2, RecvVT: 3},
		{From: 2, To: 2, Seq: 2, SendVT: 4, ArriveVT: 5, RecvVT: 6, Ctx: "merge:final"},
	}
	for _, e := range want {
		c.Record(e)
	}
	var buf bytes.Buffer
	if err := c.WriteEdges(&buf); err != nil {
		t.Fatalf("WriteEdges: %v", err)
	}
	got, err := ReadEdges(&buf)
	if err != nil {
		t.Fatalf("ReadEdges: %v", err)
	}
	// Edges() orders rows by receiving rank.
	if len(got) != len(want) {
		t.Fatalf("%d edges, want %d", len(got), len(want))
	}
	for i, e := range c.Edges() {
		if got[i] != e {
			t.Fatalf("edge %d: %+v != %+v", i, got[i], e)
		}
	}
}

// TestVoteZeroSerializes guards the Votes pointer-field fix: a unanimous
// "no mismatch" vote (0) must still emit the votes key, so KindVote
// events stay distinguishable in the journal.
func TestVoteZeroSerializes(t *testing.T) {
	b, err := json.Marshal(Event{Kind: KindVote, Rank: 0, Votes: Vote(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"votes":0`) {
		t.Fatalf("vote 0 dropped from JSON: %s", b)
	}
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatal(err)
	}
	if v, ok := ev.VoteCount(); !ok || v != 0 {
		t.Fatalf("VoteCount = %d, %v; want 0, true", v, ok)
	}
	// A non-vote event still omits the key entirely.
	b, err = json.Marshal(Event{Kind: KindTransition, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "votes") {
		t.Fatalf("non-vote event leaked a votes key: %s", b)
	}
	if _, ok := (&Event{}).VoteCount(); ok {
		t.Fatal("VoteCount on a non-vote event must report absence")
	}
}

// TestChromeTraceFlows checks the flow-event export: metadata dropped
// counters always present, s/f pairs only for edges that blocked the
// receiver.
func TestChromeTraceFlows(t *testing.T) {
	tl := NewTimeline(2)
	tl.Add(0, "compute", CatCompute, 0, 100)
	tl.Add(1, "recv", CatP2P, 0, 220)
	c := NewCausal(2)
	c.Record(Edge{From: 0, To: 1, Seq: 1, SendVT: 100, ArriveVT: 200, RecvVT: 220, WaitVT: 150, Ctx: "vote", CtxSeq: 3})
	c.Record(Edge{From: 1, To: 0, Seq: 1, SendVT: 50, ArriveVT: 60, RecvVT: 70, WaitVT: 0})

	var buf bytes.Buffer
	if err := tl.WriteChromeTraceFlows(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var s, f int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "s":
			s++
		case "f":
			f++
		}
	}
	if s != 1 || f != 1 {
		t.Fatalf("flow events s=%d f=%d, want 1/1 (only the waiting edge links)", s, f)
	}
	for _, want := range []string{
		`"name":"chameleon_spans_dropped"`,
		`"name":"chameleon_edges_dropped"`,
		`"cat":"flow"`,
		`"bp":"e"`,
		`"name":"vote"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
}
