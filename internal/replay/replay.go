// Package replay reproduces ScalaReplay: it interprets a compressed
// application trace on-the-fly, re-issues the recorded MPI communication
// on the simulated runtime, and models computation as virtual sleeps of
// the recorded delta times.
//
// For clustered (Chameleon) traces, the trace of a single lead rank is
// replayed by *all* ranks of its cluster: each member walks the same
// nodes (its rank is in the cluster rank list), transposing relative
// end-point encodings to its own rank — possible because ScalaTrace's
// end-point encodings are location independent — while all other
// parameters are taken verbatim from the lead.
//
// Limitations: all replayed traffic is issued on the world communicator
// (recorded communicator identities are not reconstructed), so traces
// whose sub-communicators reuse point-to-point tags across communicators
// could cross-match during replay; nonblocking receives are completed at
// their post point (Wait leaves are no-ops). The paper's workloads use
// neither pattern.
package replay

import (
	"fmt"
	"sort"

	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// replayTag offsets replayed point-to-point tags away from anything the
// tooling uses; recorded tags are preserved beneath it.
const replayTag = 1 << 30

// DeltaMode selects how replay draws computation times from the
// recorded delta histograms.
type DeltaMode int

// Delta modes.
const (
	// DeltaMean sleeps the histogram mean (the default; what the paper's
	// accuracy numbers use).
	DeltaMean DeltaMode = iota
	// DeltaMin sleeps the minimum — an optimistic lower bound.
	DeltaMin
	// DeltaMax sleeps the maximum — a pessimistic upper bound.
	DeltaMax
	// DeltaSampled draws deterministically from the histogram's bucket
	// distribution (probabilistic replay in the spirit of Wu et al.,
	// "Probabilistic communication and I/O tracing with deterministic
	// replay at scale").
	DeltaSampled
)

// Options configures a replay run.
type Options struct {
	// Model prices the simulated machine (vtime.Default() if zero).
	Model vtime.CostModel
	// Delta selects the computation-time draw (DeltaMean by default).
	Delta DeltaMode
}

// Result summarizes one replay.
type Result struct {
	// Time is the virtual makespan of the replay.
	Time vtime.Duration
	// Events is the number of dynamic events re-issued across ranks.
	Events uint64
	// Ledger aggregates per-category time across ranks.
	Ledger *vtime.Ledger
}

// Run replays the trace file on f.P simulated ranks with the default
// (mean-delta) options.
func Run(f *trace.File, model vtime.CostModel) (*Result, error) {
	return RunWith(f, Options{Model: model})
}

// RunWith replays the trace file under explicit options.
func RunWith(f *trace.File, opts Options) (*Result, error) {
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if (opts.Model == vtime.CostModel{}) {
		opts.Model = vtime.Default()
	}
	// Preorder node identities, shared by all ranks: collective nodes
	// covering only part of the world (traces from runs with crashed
	// ranks) are replayed as group collectives over exactly their rank
	// list, and every member must derive the same tag for the same node
	// occurrence.
	ids := make(map[*trace.Node]int)
	var number func(seq []*trace.Node)
	number = func(seq []*trace.Node) {
		for _, n := range seq {
			ids[n] = len(ids)
			if n.IsLoop() {
				number(n.Body)
			}
		}
	}
	number(f.Nodes)
	var events [1 << 12]uint64 // per-rank counters, bounded
	res, err := mpi.Run(mpi.Config{P: f.P, Model: opts.Model}, func(p *mpi.Proc) {
		e := engine{
			p:          p,
			w:          p.World(),
			lastAnySrc: -1,
			mode:       opts.Delta,
			rng:        uint64(p.Rank())*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9,
			ids:        ids,
			occ:        make(map[*trace.Node]int),
		}
		e.replaySeq(f.Nodes)
		if p.Rank() < len(events) {
			events[p.Rank()] = e.events
		}
	})
	if err != nil {
		return nil, err
	}
	var total uint64
	for _, e := range events {
		total += e
	}
	return &Result{Time: res.Makespan, Events: total, Ledger: res.AggregateLedger()}, nil
}

// engine is the per-rank trace interpreter.
type engine struct {
	p          *mpi.Proc
	w          *mpi.Comm
	lastAnySrc int
	events     uint64
	mode       DeltaMode
	rng        uint64
	// ids assigns shared preorder identities; occ counts this rank's
	// replays per node. Members of a node's rank list replay it the same
	// number of times (loop counts are node-global), so (id, occ) derives
	// matching group-collective tags on every member.
	ids map[*trace.Node]int
	occ map[*trace.Node]int
}

// members returns the node's sorted rank list when it covers only part
// of the world (retired ranks), nil for full coverage.
func (e *engine) members(n *trace.Node) []int {
	if n.Ranks.Size() >= e.p.Size() {
		return nil
	}
	m := append([]int(nil), n.Ranks.Ranks()...)
	sort.Ints(m)
	return m
}

// groupTag derives this occurrence's tag block for a partial-coverage
// collective node (bits 0-1 left free for the helpers' sub-tags).
func (e *engine) groupTag(n *trace.Node) int {
	occ := e.occ[n]
	e.occ[n] = occ + 1
	return 1<<40 | e.ids[n]<<18 | (occ&0xffff)<<2
}

// rootFirst reorders members so the group helpers' root (position 0) is
// the recorded collective root.
func rootFirst(m []int, root int) []int {
	if mpi.TreePos(m, root) <= 0 {
		return m
	}
	out := make([]int, 0, len(m))
	out = append(out, root)
	for _, r := range m {
		if r != root {
			out = append(out, r)
		}
	}
	return out
}

// next is a deterministic per-rank pseudo-random step (splitmix64).
func (e *engine) next() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// drawDelta picks the computation time for one event occurrence.
func (e *engine) drawDelta(n *trace.Node) vtime.Duration {
	h := n.Delta
	if h == nil || h.Count() == 0 {
		return 0
	}
	switch e.mode {
	case DeltaMin:
		return vtime.Duration(max64(h.Min, 0))
	case DeltaMax:
		return vtime.Duration(max64(h.Max, 0))
	case DeltaSampled:
		// Pick a bucket proportional to its count, then the geometric
		// middle of the bucket's value range, clamped to [min, max].
		target := e.next() % h.Count()
		var cum uint64
		for i, c := range h.Buckets {
			cum += c
			if target < cum {
				v := int64(1)
				if i > 0 {
					v = (int64(1) << uint(i-1)) + (int64(1)<<uint(i))/2
				}
				if v < h.Min {
					v = h.Min
				}
				if v > h.Max {
					v = h.Max
				}
				return vtime.Duration(max64(v, 0))
			}
		}
		return vtime.Duration(max64(h.Mean(), 0))
	default:
		return vtime.Duration(max64(h.Mean(), 0))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (e *engine) replaySeq(seq []*trace.Node) {
	for _, n := range seq {
		e.replayNode(n)
	}
}

func (e *engine) replayNode(n *trace.Node) {
	if n.IsLoop() {
		iters := n.MeanIters()
		for i := uint64(0); i < iters; i++ {
			e.replaySeq(n.Body)
		}
		return
	}
	if !n.Ranks.Contains(e.p.Rank()) {
		return
	}
	// Simulate the computation that preceded the event.
	if d := e.drawDelta(n); d > 0 {
		e.p.Compute(d)
	}
	e.events++
	e.issue(n)
}

// resolve maps an end-point to a concrete peer rank for this replaying
// rank, clamped into the world group.
func (e *engine) resolve(ep trace.Endpoint) (int, bool) {
	switch ep.Kind {
	case trace.EPReplyToLast:
		if e.lastAnySrc >= 0 {
			return e.lastAnySrc, true
		}
		return 0, false
	case trace.EPAnySource:
		return mpi.AnySource, true
	}
	r, ok := ep.Resolve(e.p.Rank())
	if !ok {
		return 0, false
	}
	// Relative offsets are recorded modulo the rank count (torus wrap);
	// resolve them the same way.
	p := e.p.Size()
	r = ((r % p) + p) % p
	return r, true
}

func (e *engine) issue(n *trace.Node) {
	ev := n.Ev
	tag := replayTag | ev.Tag
	switch ev.Op {
	case mpi.OpSend, mpi.OpIsend:
		if dest, ok := e.resolve(ev.Dest); ok {
			e.w.Send(dest, tag, ev.Bytes, nil)
		}
	case mpi.OpRecv, mpi.OpIrecv:
		// Nonblocking receives are replayed at their post point; the
		// matching Wait leaf is a no-op.
		if src, ok := e.resolve(ev.Src); ok {
			msg := e.w.Recv(src, tag)
			if src == mpi.AnySource {
				e.lastAnySrc = msg.Source
			}
		}
	case mpi.OpWait:
		// Completed by the Irecv replay above.
	case mpi.OpSendrecv:
		dest, okD := e.resolve(ev.Dest)
		src, okS := e.resolve(ev.Src)
		if okD && okS {
			msg := e.w.Sendrecv(dest, tag, ev.Bytes, nil, src, tag)
			if src == mpi.AnySource {
				e.lastAnySrc = msg.Source
			}
		}
	case mpi.OpBarrier:
		if m := e.members(n); m != nil {
			mpi.GroupBarrier(e.p, m, e.groupTag(n))
		} else {
			e.w.Barrier()
		}
	case mpi.OpBcast:
		root, _ := e.resolve(ev.Dest)
		if m := e.members(n); m != nil {
			mpi.GroupBcastObj(e.p, rootFirst(m, root), e.groupTag(n), nil, ev.Bytes)
		} else {
			e.w.Bcast(root, ev.Bytes, nil)
		}
	case mpi.OpReduce:
		root, _ := e.resolve(ev.Dest)
		if m := e.members(n); m != nil {
			mpi.GroupReduceU64(e.p, rootFirst(m, root), e.groupTag(n), 0, mpi.OpSum)
		} else {
			e.w.Reduce(root, ev.Bytes, 0, mpi.OpSum)
		}
	case mpi.OpAllreduce:
		if m := e.members(n); m != nil {
			mpi.GroupAllreduceU64(e.p, m, e.groupTag(n), 0, mpi.OpSum)
		} else {
			e.w.Allreduce(ev.Bytes, 0, mpi.OpSum)
		}
	case mpi.OpGather:
		root, _ := e.resolve(ev.Dest)
		if m := e.members(n); m != nil {
			mpi.GroupGatherObj(e.p, rootFirst(m, root), e.groupTag(n), ev.Bytes, nil)
		} else {
			e.w.Gather(root, ev.Bytes, nil)
		}
	case mpi.OpAllgather:
		if m := e.members(n); m != nil {
			tag := e.groupTag(n)
			mpi.GroupGatherObj(e.p, m, tag, ev.Bytes, nil)
			mpi.GroupBcastObj(e.p, m, tag|1, nil, ev.Bytes*len(m))
		} else {
			e.w.Allgather(ev.Bytes, nil)
		}
	case mpi.OpScatter:
		root, _ := e.resolve(ev.Dest)
		if m := e.members(n); m != nil {
			mpi.GroupScatter(e.p, rootFirst(m, root), e.groupTag(n), ev.Bytes)
		} else {
			e.w.Scatter(root, ev.Bytes, nil)
		}
	case mpi.OpAlltoall:
		if m := e.members(n); m != nil {
			mpi.GroupAlltoall(e.p, m, e.groupTag(n), ev.Bytes)
		} else {
			e.w.Alltoall(ev.Bytes)
		}
	}
}

// Accuracy is the paper's replay-accuracy metric: ACC = 1 − |t−t′|/t,
// where t is the reference time (unclustered replay or application) and
// t′ the clustered replay time.
func Accuracy(t, tPrime vtime.Duration) float64 {
	if t == 0 {
		return 0
	}
	d := t - tPrime
	if d < 0 {
		d = -d
	}
	return 1 - float64(d)/float64(t)
}
