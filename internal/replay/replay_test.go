package replay

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

func mkEvent(op mpi.OpCode, site int) trace.Event {
	return trace.Event{
		Op:    op,
		Stack: sig.Stack(sig.Mix(uint64(site))),
		Comm:  mpi.CommWorld,
		Tag:   site,
		Bytes: 64,
	}
}

func allRanks(p int) ranklist.List {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	return ranklist.FromRanks(ranks)
}

// leafFor builds a leaf covering the given rank list with a delta.
func leafFor(ev trace.Event, ranks ranklist.List, delta int64) *trace.Node {
	return trace.NewLeaf(ev, ranks, delta)
}

func TestReplayEmptyTrace(t *testing.T) {
	if _, err := Run(&trace.File{P: 2}, vtime.Default()); err == nil {
		t.Fatalf("empty trace accepted")
	}
}

func TestReplayRingExchange(t *testing.T) {
	// A ring sendrecv loop, all ranks covered by one leaf: replay must
	// terminate (pairing is consistent) and re-issue P*iters events.
	const P = 6
	ev := mkEvent(mpi.OpSendrecv, 1)
	ev.Dest = trace.Relative(1)
	ev.Src = trace.Relative(-1)
	f := &trace.File{
		P: P,
		Nodes: []*trace.Node{
			trace.NewLoop(10, []*trace.Node{leafFor(ev, allRanks(P), int64(vtime.Millisecond))}),
		},
	}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != P*10 {
		t.Fatalf("events = %d", res.Events)
	}
	// 10 iterations with 1ms compute each.
	if res.Time < 10*vtime.Millisecond {
		t.Fatalf("time = %v", res.Time)
	}
}

func TestReplayRanksFiltered(t *testing.T) {
	// Point-to-point nodes covering disjoint rank pairs: each rank
	// replays only the nodes whose rank list contains it.
	const P = 4
	send01 := mkEvent(mpi.OpSend, 1)
	send01.Dest = trace.Relative(1)
	recv01 := mkEvent(mpi.OpRecv, 1)
	recv01.Src = trace.Relative(-1)
	f := &trace.File{
		P: P,
		Nodes: []*trace.Node{
			leafFor(send01, ranklist.FromRanks([]int{0, 2}), 0),
			leafFor(recv01, ranklist.FromRanks([]int{1, 3}), 0),
		},
	}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 4 {
		t.Fatalf("events = %d, want 4", res.Events)
	}
}

func TestReplayCollectives(t *testing.T) {
	const P = 4
	ranks := allRanks(P)
	bcast := mkEvent(mpi.OpBcast, 1)
	bcast.Dest = trace.Absolute(0)
	reduce := mkEvent(mpi.OpReduce, 2)
	reduce.Dest = trace.Absolute(2)
	allred := mkEvent(mpi.OpAllreduce, 3)
	gather := mkEvent(mpi.OpGather, 4)
	gather.Dest = trace.Absolute(0)
	allgather := mkEvent(mpi.OpAllgather, 5)
	alltoall := mkEvent(mpi.OpAlltoall, 6)
	barrier := mkEvent(mpi.OpBarrier, 7)
	scatter := mkEvent(mpi.OpScatter, 8)
	scatter.Dest = trace.Absolute(0)
	var nodes []*trace.Node
	for _, ev := range []trace.Event{bcast, reduce, allred, gather, allgather, alltoall, barrier, scatter} {
		nodes = append(nodes, leafFor(ev, ranks, 1000))
	}
	f := &trace.File{P: P, Nodes: nodes}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(P*len(nodes)) {
		t.Fatalf("events = %d", res.Events)
	}
}

func TestReplayMasterWorker(t *testing.T) {
	// Wildcard receive + reply-to-last + absolute worker endpoints: the
	// clustered master/worker shape.
	const P = 4
	const rounds = 15
	recvAny := mkEvent(mpi.OpRecv, 1)
	recvAny.Src = trace.Endpoint{Kind: trace.EPAnySource}
	reply := mkEvent(mpi.OpSend, 2)
	reply.Dest = trace.Endpoint{Kind: trace.EPReplyToLast}
	request := mkEvent(mpi.OpSend, 3)
	request.Dest = trace.Absolute(0)
	request.Tag = 1 // must match the master's recv tag
	taskRecv := mkEvent(mpi.OpRecv, 4)
	taskRecv.Src = trace.Absolute(0)
	taskRecv.Tag = 2
	reply.Tag = 2

	workers := ranklist.FromRanks([]int{1, 2, 3})
	f := &trace.File{
		P:         P,
		Clustered: true,
		Nodes: []*trace.Node{
			trace.NewLoop(rounds*(P-1), []*trace.Node{
				leafFor(recvAny, ranklist.SingleRank(0), 0),
				leafFor(reply, ranklist.SingleRank(0), 0),
			}),
			trace.NewLoop(rounds, []*trace.Node{
				leafFor(request, workers, int64(vtime.Millisecond)),
				leafFor(taskRecv, workers, 0),
			}),
		},
	}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(rounds*(P-1)*2 + rounds*(P-1)*2)
	if res.Events != want {
		t.Fatalf("events = %d, want %d", res.Events, want)
	}
}

func TestReplayModuloResolution(t *testing.T) {
	// A torus shift recorded as -1 must wrap for rank 0.
	const P = 4
	ev := mkEvent(mpi.OpSendrecv, 1)
	ev.Dest = trace.Relative(-1)
	ev.Src = trace.Relative(1)
	f := &trace.File{P: P, Nodes: []*trace.Node{leafFor(ev, allRanks(P), 0)}}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != P {
		t.Fatalf("events = %d", res.Events)
	}
}

func TestReplayIrecvWait(t *testing.T) {
	const P = 2
	send := mkEvent(mpi.OpIsend, 1)
	send.Dest = trace.Relative(1)
	send.Tag = 5
	irecv := mkEvent(mpi.OpIrecv, 2)
	irecv.Src = trace.Relative(-1)
	irecv.Tag = 5
	wait := mkEvent(mpi.OpWait, 3)
	f := &trace.File{P: P, Nodes: []*trace.Node{
		leafFor(send, ranklist.SingleRank(0), 0),
		leafFor(irecv, ranklist.SingleRank(1), 0),
		leafFor(wait, ranklist.SingleRank(1), 0),
	}}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 3 {
		t.Fatalf("events = %d", res.Events)
	}
}

func TestReplayUsesItersMean(t *testing.T) {
	// A filtered loop replays its histogram-mean trip count.
	const P = 2
	ev := mkEvent(mpi.OpAllreduce, 1)
	loop := trace.NewLoop(10, []*trace.Node{leafFor(ev, allRanks(P), 0)})
	other := trace.NewLoop(20, []*trace.Node{leafFor(ev, allRanks(P), 0)})
	trace.MergeInto(loop, other, true) // iters histogram {10,20} -> mean 15
	f := &trace.File{P: P, Filter: true, Nodes: []*trace.Node{loop}}
	res, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 15*P {
		t.Fatalf("events = %d, want %d", res.Events, 15*P)
	}
}

func TestAccuracyMetric(t *testing.T) {
	if got := Accuracy(100, 90); got != 0.9 {
		t.Fatalf("acc = %v", got)
	}
	if got := Accuracy(100, 110); got != 0.9 {
		t.Fatalf("acc = %v (overshoot)", got)
	}
	if got := Accuracy(100, 100); got != 1 {
		t.Fatalf("acc = %v", got)
	}
	if got := Accuracy(0, 50); got != 0 {
		t.Fatalf("acc = %v (zero ref)", got)
	}
}

func TestReplayDeterministic(t *testing.T) {
	const P = 5
	ev := mkEvent(mpi.OpSendrecv, 1)
	ev.Dest = trace.Relative(1)
	ev.Src = trace.Relative(-1)
	f := &trace.File{P: P, Nodes: []*trace.Node{
		trace.NewLoop(20, []*trace.Node{leafFor(ev, allRanks(P), 5000)}),
	}}
	first, err := Run(f, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(f, vtime.Default())
		if err != nil {
			t.Fatal(err)
		}
		if again.Time != first.Time {
			t.Fatalf("nondeterministic replay: %v vs %v", again.Time, first.Time)
		}
	}
}

func TestReplayDeltaModes(t *testing.T) {
	// A histogram with spread: min 1ms, max 9ms, mean 5ms.
	const P = 2
	ev := mkEvent(mpi.OpSendrecv, 1)
	ev.Dest = trace.Relative(1)
	ev.Src = trace.Relative(-1)
	n := leafFor(ev, allRanks(P), int64(vtime.Millisecond))
	n.Delta.Add(int64(9 * vtime.Millisecond))
	f := &trace.File{P: P, Nodes: []*trace.Node{trace.NewLoop(10, []*trace.Node{n})}}

	times := map[DeltaMode]vtime.Duration{}
	for _, mode := range []DeltaMode{DeltaMin, DeltaMean, DeltaMax, DeltaSampled} {
		res, err := RunWith(f, Options{Delta: mode})
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = res.Time
	}
	if !(times[DeltaMin] < times[DeltaMean] && times[DeltaMean] < times[DeltaMax]) {
		t.Fatalf("mode ordering violated: %v", times)
	}
	if times[DeltaSampled] < times[DeltaMin] || times[DeltaSampled] > times[DeltaMax] {
		t.Fatalf("sampled time out of bounds: %v", times)
	}
	// Sampled replay is deterministic too.
	again, err := RunWith(f, Options{Delta: DeltaSampled})
	if err != nil {
		t.Fatal(err)
	}
	if again.Time != times[DeltaSampled] {
		t.Fatalf("sampled replay nondeterministic")
	}
}
