package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// CG reproduces the communication skeleton of NPB CG: a conjugate
// gradient solve whose sparse matrix-vector product exchanges partial
// vectors with the transpose partner on a 2D process grid, bracketed by
// the two dot-product all-reduces of each CG iteration. The paper cites
// CG (SpMV in CSR format) as an irregular *computation* whose
// communication stays regular — so clustering is unaffected; CG is
// included here to exercise that claim.
func CG(class Class, p int) Spec {
	return Spec{
		Name:    "CG",
		P:       p,
		Iters:   75,
		Freq:    15,
		K:       3,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return cgBody(class, p, 75, o)
		},
	}
}

func cgBody(class Class, p, iters int, o BodyOpts) func(*mpi.Proc) {
	compute := computeTime(7*vtime.Millisecond, class, p)
	bytes := haloBytes(8192, class, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		shift := func(s int) int { return ((rank+s)%p + p) % p }
		for it := 0; it < iters; it++ {
			// SpMV: irregular CSR work (jittered compute), regular
			// band-partitioned vector exchange with both neighbors.
			proc.Compute(vtime.Duration(float64(compute) * jitter(rank, it, 0.08)))
			w.Sendrecv(shift(1), 701, bytes, nil, shift(-1), 701)
			w.Sendrecv(shift(-1), 702, bytes, nil, shift(1), 702)
			// rho = r.r and alpha denominators.
			w.Allreduce(8, uint64(rank), mpi.OpSum)
			w.Allreduce(8, uint64(it), mpi.OpSum)
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}
