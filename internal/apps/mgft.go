package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// MG reproduces the communication skeleton of NPB MG: V-cycles over a
// grid hierarchy whose halo exchanges reach neighbors at doubling
// strides (rank ± 2^level over the rank ring). Every level's exchange
// shares the call site but not the offset, so the compressed trace keeps
// one leaf per level — a deeper, more varied PRSD than the stencil
// codes, exercised by the same single Call-Path clustering as BT. Not
// part of the paper's evaluation; included as an additional workload.
func MG(class Class, p int) Spec {
	return Spec{
		Name:    "MG",
		P:       p,
		Iters:   20,
		Freq:    4,
		K:       3,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return mgBody(class, p, 20, o)
		},
	}
}

func mgBody(class Class, p, iters int, o BodyOpts) func(*mpi.Proc) {
	levels := 0
	for 1<<uint(levels+1) < p {
		levels++
	}
	if levels < 1 {
		levels = 1
	}
	compute := computeTime(9*vtime.Millisecond, class, p)
	bytes := haloBytes(4096, class, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		shift := func(s int) int { return ((rank+s)%p + p) % p }
		for it := 0; it < iters; it++ {
			// Downward leg: restriction with halo exchange per level.
			for l := 0; l < levels; l++ {
				stride := 1 << uint(l)
				proc.Compute(vtime.Duration(float64(compute) / float64(levels) * jitter(rank, it*levels+l, 0.03)))
				w.Sendrecv(shift(stride), 801, bytes>>uint(l), nil, shift(-stride), 801)
			}
			// Coarsest-level solve: a reduction.
			w.Allreduce(8, uint64(rank), mpi.OpSum)
			// Upward leg: prolongation.
			for l := levels - 1; l >= 0; l-- {
				stride := 1 << uint(l)
				proc.Compute(vtime.Duration(float64(compute) / float64(2*levels) * jitter(rank, it*levels+l+iters, 0.03)))
				w.Sendrecv(shift(-stride), 802, bytes>>uint(l), nil, shift(stride), 802)
			}
			// Residual norm.
			w.Allreduce(8, uint64(it), mpi.OpMax)
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}

// FT reproduces the communication skeleton of NPB FT: per iteration, the
// 3D FFT's distributed transposes — two all-to-all exchanges bracketing
// the local FFT work — plus the periodic checksum reduction. The
// all-to-all volume dominates, exercising the collective path of the
// tracer. Not part of the paper's evaluation; included as an additional
// workload.
func FT(class Class, p int) Spec {
	return Spec{
		Name:    "FT",
		P:       p,
		Iters:   20,
		Freq:    4,
		K:       3,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return ftBody(class, p, 20, o)
		},
	}
}

func ftBody(class Class, p, iters int, o BodyOpts) func(*mpi.Proc) {
	compute := computeTime(14*vtime.Millisecond, class, p)
	slab := haloBytes(32768, class, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		for it := 0; it < iters; it++ {
			if it == 0 {
				// Twiddle-factor setup.
				w.Bcast(0, 8192, nil)
			}
			// FFT along the local dimensions.
			proc.Compute(vtime.Duration(float64(compute) * jitter(rank, it, 0.02)))
			// Transpose x<->z.
			w.Alltoall(slab / p)
			// FFT along the transposed dimension.
			proc.Compute(vtime.Duration(float64(compute) * 0.5 * jitter(rank, it+iters, 0.02)))
			// Transpose back.
			w.Alltoall(slab / p)
			// Checksum.
			w.Allreduce(16, uint64(it), mpi.OpSum)
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}
