// Package apps provides communication skeletons of the benchmarks the
// paper evaluates: NPB BT, LU, SP and CG, Sweep3D, POP and the EMF
// master/worker pipeline. A skeleton reproduces what the tracing layer
// observes — the per-rank MPI event stream (operations, call sites,
// end-points, sizes) and the inter-event computation times — without the
// numerics. Each skeleton also reproduces the structural features the
// evaluation depends on: BT/SP's fully symmetric torus exchanges (one
// Call-Path), LU's and Sweep3D's boundary-dependent wavefront branches
// (up to nine Call-Paths), POP's data-dependent solver iteration counts
// (requiring the parameter filter), EMF's master/worker asymmetry (two
// Call-Paths), and the one-off setup phases that produce the paper's
// All-Tracing marker counts (Table II).
package apps

import (
	"fmt"

	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// Class is an NPB input class.
type Class struct {
	Name string
	// Scale is the problem-size multiplier relative to class A.
	Scale float64
}

// NPB input classes (Scale tracks the roughly 4x grid-volume growth per
// class).
var (
	ClassA = Class{Name: "A", Scale: 1}
	ClassB = Class{Name: "B", Scale: 4}
	ClassC = Class{Name: "C", Scale: 16}
	ClassD = Class{Name: "D", Scale: 64}
)

// ParseClass maps "A".."D" to a Class (D for unknown input).
func ParseClass(s string) Class {
	switch s {
	case "A", "a":
		return ClassA
	case "B", "b":
		return ClassB
	case "C", "c":
		return ClassC
	}
	return ClassD
}

// BodyOpts parameterizes how a benchmark body is instantiated.
type BodyOpts struct {
	// Freq is the marker insertion period in timesteps: the marker
	// barrier executes every Freq-th timestep, so the number of executed
	// marker calls is Iters/Freq (Table II's #Calls column).
	Freq int
	// Markers enables marker insertion at all. The paper's baseline
	// (ScalaTrace) binaries carry no markers; only Chameleon runs do.
	Markers bool
	// SyncEvery overrides the period of a skeleton's built-in global
	// synchronization (STENCIL's per-iteration residual Allreduce).
	// Zero keeps the skeleton's default; negative disables the sync
	// entirely. Idle-wave experiments disable it: a global sync
	// equalizes every rank's clock and kills traveling waves.
	SyncEvery int
	// CheckpointEvery, when positive, injects a Recorder-style
	// checkpoint/IO phase every that many timesteps into skeletons that
	// support it (STENCIL): ranks gather their block to rank 0, which
	// then burns an IO-write compute burst — a serial phase that both
	// diversifies the workload mix and acts as a noise source.
	CheckpointEvery int
}

// Spec is a runnable benchmark instance.
type Spec struct {
	// Name identifies the benchmark ("BT", "LU", ...).
	Name string
	// P is the rank count the spec was built for.
	P int
	// Iters is the number of timesteps.
	Iters int
	// Freq is the paper's marker frequency for this benchmark
	// (Table II): markers execute every Freq-th timestep.
	Freq int
	// K is the a-priori cluster count (Table I).
	K int
	// SigMode and Filter are the signature/merge settings the benchmark
	// needs (POP requires the parameter filter).
	SigMode tracer.SigMode
	Filter  bool
	// Make instantiates the per-rank program.
	Make func(o BodyOpts) func(p *mpi.Proc)
}

// Body instantiates the program with the spec's default marker settings.
func (s Spec) Body(markers bool) func(p *mpi.Proc) {
	return s.Make(BodyOpts{Freq: s.Freq, Markers: markers})
}

// markerAt reports whether a marker executes after timestep it (0-based)
// under the given options.
func markerAt(o BodyOpts, it int) bool {
	return o.Markers && o.Freq > 0 && (it+1)%o.Freq == 0
}

// checkpoint runs a Recorder-style checkpoint/IO phase: every rank
// contributes a state block (16 halo widths) to rank 0 over the
// survivor communicator, and the root then charges a serial IO-write
// burst sized to the gathered volume (~1 byte/ns, a 1 GB/s writer),
// floored at one compute step. Besides diversifying the workload mix,
// the root-side burst is a built-in noise source: it delays rank 0's
// next halo exchange and launches an idle wave from the array edge.
func checkpoint(pr *mpi.Proc, blockBytes int, comp vtime.Duration) {
	block := 16 * blockBytes
	pr.ShrunkWorld().Gather(0, block, nil)
	if pr.Rank() == 0 {
		io := vtime.Duration(len(pr.AliveRanks()) * block)
		if io < comp {
			io = comp
		}
		pr.Compute(io)
	}
}

// Marker invokes Chameleon's marker: an MPI_Barrier on the reserved
// marker communicator, inserted at the progress-reporting point of each
// timestep. Tracers that do not implement clustering ignore it.
func Marker(p *mpi.Proc) {
	p.MarkerComm().Barrier()
}

// grid2D factors p into the most square rows x cols decomposition
// (rows is the largest factor not exceeding sqrt(p)).
func grid2D(p int) (rows, cols int) {
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	return best, p / best
}

// ringNeighbors returns this rank's successor and predecessor (world
// ranks) on a ring over the surviving ranks. Without fault injection the
// alive view is nil and the ring is the classic (rank±1) mod P.
func ringNeighbors(pr *mpi.Proc) (next, prev int) {
	alive := pr.AliveRanks()
	if alive == nil {
		p := pr.Size()
		return (pr.Rank() + 1) % p, (pr.Rank() + p - 1) % p
	}
	pos := mpi.TreePos(alive, pr.Rank())
	n := len(alive)
	return alive[(pos+1)%n], alive[(pos+n-1)%n]
}

// jitter returns a deterministic multiplicative load perturbation in
// [1-amp, 1+amp] for (rank, step).
func jitter(rank, step int, amp float64) float64 {
	x := uint64(rank)*0x9e3779b97f4a7c15 + uint64(step)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	u := float64(x%10000)/10000*2 - 1 // [-1, 1)
	return 1 + amp*u
}

// computeTime scales a per-rank, per-timestep computation duration with
// the input class and rank count (strong scaling divides the fixed
// problem across ranks).
func computeTime(base vtime.Duration, class Class, p int) vtime.Duration {
	d := vtime.Duration(float64(base) * class.Scale * 256.0 / float64(p))
	if d < 50*vtime.Microsecond {
		d = 50 * vtime.Microsecond
	}
	return d
}

// haloBytes scales a per-face halo message size with the class and rank
// count (face area shrinks with the square root of the per-rank share).
func haloBytes(base int, class Class, p int) int {
	b := int(float64(base) * sqrt(class.Scale*256.0/float64(p)))
	if b < 256 {
		b = 256
	}
	return b
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 32; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// Registry returns the spec for a benchmark by name.
func Registry(name string, class Class, p int) (Spec, error) {
	switch name {
	case "BT", "bt":
		return BT(class, p), nil
	case "LU", "lu":
		return LU(class, p), nil
	case "SP", "sp":
		return SP(class, p), nil
	case "CG", "cg":
		return CG(class, p), nil
	case "POP", "pop":
		return POP(p), nil
	case "S3D", "s3d", "sweep3d", "Sweep3D":
		return Sweep3D(p), nil
	case "LUW", "luw":
		return LUWeak(class, p), nil
	case "EMF", "emf":
		return EMF(p), nil
	case "MG", "mg":
		return MG(class, p), nil
	case "FT", "ft":
		return FT(class, p), nil
	case "PHASE", "phase":
		return Phase(class, p), nil
	case "STENCIL", "stencil":
		return Stencil(class, p), nil
	}
	return Spec{}, fmt.Errorf("apps: unknown benchmark %q", name)
}

// Names lists the available benchmarks.
func Names() []string {
	return []string{"BT", "LU", "SP", "CG", "MG", "FT", "POP", "S3D", "LUW", "EMF", "PHASE", "STENCIL"}
}
