package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// Sweep3D reproduces the communication skeleton of the ASCI Sweep3D
// particle-transport benchmark: a multidimensional wavefront over a
// non-periodic 2D process grid, sweeping from each of the four grid
// corners twice (the eight discrete-ordinate octants). Boundary ranks
// take different branches per sweep direction, yielding up to nine
// Call-Path classes (K=9). Sweep3D's characteristic load imbalance is
// modeled as a deterministic per-rank computation skew; the imbalance
// does not disturb clustering because delta times live in histograms
// attached to repetitive signatures. The paper runs the 100x100x1000
// problem for 10 timesteps with a marker each.
func Sweep3D(p int) Spec {
	return Spec{
		Name:    "S3D",
		P:       p,
		Iters:   10,
		Freq:    1,
		K:       9,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return sweepBody(p, 10, false, o)
		},
	}
}

// Sweep3DWeak is Sweep3D with a fixed per-rank subgrid (the paper's weak
// scaling mode: the global mesh grows with the processor count).
func Sweep3DWeak(p int) Spec {
	s := Sweep3D(p)
	s.Make = func(o BodyOpts) func(*mpi.Proc) {
		return sweepBody(p, 10, true, o)
	}
	return s
}

func sweepBody(p, iters int, weak bool, o BodyOpts) func(*mpi.Proc) {
	rows, cols := grid2D(p)
	compute := computeTime(12*vtime.Millisecond, ClassC, p)
	bytes := haloBytes(2048, ClassC, p)
	if weak {
		// Fixed per-rank share regardless of P.
		compute = computeTime(12*vtime.Millisecond, ClassC, 256)
		bytes = haloBytes(2048, ClassC, 256)
	}
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		row, col := rank/cols, rank%cols
		north, south := row > 0, row < rows-1
		west, east := col > 0, col < cols-1

		// sweep pipelines one octant pair: receive the incoming wavefront
		// faces, work the angle block, forward downstream. dr/dc give the
		// sweep direction.
		sweep := func(it, oct, dr, dc, tag int) {
			recvN, sendS := dr > 0 && north, dr > 0 && south
			recvS, sendN := dr < 0 && south, dr < 0 && north
			recvW, sendE := dc > 0 && west, dc > 0 && east
			recvE, sendW := dc < 0 && east, dc < 0 && west
			if recvN {
				w.Recv(rank-cols, tag)
			}
			if recvS {
				w.Recv(rank+cols, tag)
			}
			if recvW {
				w.Recv(rank-1, tag+1)
			}
			if recvE {
				w.Recv(rank+1, tag+1)
			}
			// Load imbalance grows toward the far corner of the sweep.
			skew := 1 + 0.1*float64((row*dr+col*dc+rows+cols)%7)/7
			proc.Compute(vtime.Duration(float64(compute) / 8 * skew * jitter(rank, it*8+oct, 0.05)))
			if sendS {
				w.Send(rank+cols, tag, bytes, nil)
			}
			if sendN {
				w.Send(rank-cols, tag, bytes, nil)
			}
			if sendE {
				w.Send(rank+1, tag+1, bytes, nil)
			}
			if sendW {
				w.Send(rank-1, tag+1, bytes, nil)
			}
		}

		for it := 0; it < iters; it++ {
			if it == 0 {
				// One-off input distribution.
				w.Bcast(0, 4096, nil)
			}
			// Eight octants: four corner origins, two angle blocks each.
			for angle := 0; angle < 2; angle++ {
				base := 500 + angle*8
				sweep(it, angle*4+0, +1, +1, base)
				sweep(it, angle*4+1, +1, -1, base+2)
				sweep(it, angle*4+2, -1, +1, base+4)
				sweep(it, angle*4+3, -1, -1, base+6)
			}
			// Flux fixup convergence check.
			w.Allreduce(8, uint64(rank), mpi.OpMax)
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}
