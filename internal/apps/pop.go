package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// POP reproduces the communication skeleton of the Parallel Ocean
// Program at one-degree resolution: per timestep a 2D halo exchange that
// is periodic in longitude (uniform ring shifts) but bounded in latitude
// (top row, bottom row and interior ranks execute different branches —
// the three Call-Paths the paper clusters POP with, K=3), followed by
// the barotropic solver, whose data-dependent iteration count varies
// from timestep to timestep. The varying trip counts are exactly why POP
// needs ScalaTrace's automatic parameter filter: with it, "the
// communication pattern becomes regular and can be represented by 3
// clusters". The paper traces 20 timesteps with a marker each.
func POP(p int) Spec {
	return Spec{
		Name:    "POP",
		P:       p,
		Iters:   20,
		Freq:    1,
		K:       3,
		SigMode: tracer.SigFiltered,
		Filter:  true,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return popBody(p, 20, o)
		},
	}
}

// popSolverIters is the barotropic solver's data-dependent trip count at
// a timestep — identical on every rank (convergence is decided by a
// global residual), varying across timesteps.
func popSolverIters(it int) int {
	x := uint64(it+1) * 2654435761
	x ^= x >> 16
	return 20 + int(x%16)
}

func popBody(p, iters int, o BodyOpts) func(*mpi.Proc) {
	rows, cols := grid2D(p)
	// One-degree grid: fixed problem, strong scaling only.
	compute := computeTime(10*vtime.Millisecond, ClassB, p)
	bytes := haloBytes(4096, ClassB, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		row := rank / cols
		north, south := row > 0, row < rows-1
		shift := func(s int) int { return ((rank+s)%p + p) % p }

		for it := 0; it < iters; it++ {
			switch it {
			case 0:
				// Grid metadata distribution.
				w.Bcast(0, 8192, nil)
			case 1:
				// Initial diagnostics gather.
				w.Gather(0, 512, nil)
			}
			// Baroclinic stage: halo exchange, periodic in longitude.
			proc.Compute(vtime.Duration(float64(compute) * jitter(rank, it, 0.04)))
			w.Sendrecv(shift(1), 401, bytes, nil, shift(-1), 401)
			w.Sendrecv(shift(-1), 402, bytes, nil, shift(1), 402)
			// Bounded in latitude: boundary rows skip their missing side.
			if south {
				w.Send(rank+cols, 403, bytes, nil)
			}
			if north {
				w.Recv(rank-cols, 403)
				w.Send(rank-cols, 404, bytes, nil)
			}
			if south {
				w.Recv(rank+cols, 404)
			}
			// Barotropic solver: conjugate-gradient iterations until the
			// global residual converges — the trip count is data
			// dependent and differs per timestep.
			for k := 0; k < popSolverIters(it); k++ {
				proc.Compute(vtime.Duration(float64(compute) / 20 * jitter(rank, it*100+k, 0.04)))
				w.Allreduce(16, uint64(k), mpi.OpSum)
			}
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}
