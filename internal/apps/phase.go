package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/vtime"
)

// Phase is a multi-phase solver skeleton built for exercising the
// transition graph (it mirrors examples/phasechange): the program
// alternates between a ring halo-exchange phase and a transpose phase
// (all-to-all plus a reduction). Every phase boundary changes the
// Call-Path signature, so a Chameleon run walks AT -> C -> L, flushes
// and re-clusters at each boundary, and finishes with a final flush —
// the Figure 3 behavior, packaged as a registry benchmark so the CLIs
// and the observability tests can run it by name.
func Phase(class Class, p int) Spec {
	const (
		phases        = 4
		stepsPerPhase = 40
	)
	return Spec{
		Name:  "PHASE",
		P:     p,
		Iters: phases * stepsPerPhase,
		Freq:  1,
		K:     3,
		Make: func(o BodyOpts) func(p *mpi.Proc) {
			bytes := haloBytes(8192, class, p)
			comp := computeTime(1*vtime.Millisecond, class, p)
			return func(pr *mpi.Proc) {
				w := pr.World()
				rank := pr.Rank()
				it := 0
				for phase := 0; phase < phases; phase++ {
					for step := 0; step < stepsPerPhase; step++ {
						// Neighbors are recomputed each step over the
						// surviving ranks so the ring re-closes around a
						// crashed rank; without faults this yields the
						// classic (rank±1) mod P ring.
						next, prev := ringNeighbors(pr)
						pr.Compute(vtime.Duration(float64(comp) * jitter(rank, it, 0.05)))
						if phase%2 == 0 {
							w.Sendrecv(next, 11, bytes, nil, prev, 11)
							w.Sendrecv(prev, 12, bytes, nil, next, 12)
						} else {
							sw := pr.ShrunkWorld()
							sw.Alltoall(bytes / pr.Size())
							sw.Allreduce(8, uint64(rank), mpi.OpSum)
						}
						if o.CheckpointEvery > 0 && (it+1)%o.CheckpointEvery == 0 {
							checkpoint(pr, bytes, comp)
						}
						if markerAt(o, it) {
							Marker(pr)
						}
						it++
					}
				}
			}
		},
	}
}
