package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// BT reproduces the communication skeleton of NPB BT: the multipartition
// scheme exchanges faces with logical ±1 and ±cols shifts over the full
// rank ring, so every rank executes the identical call sequence with
// identical (normalized) relative end-points — one Call-Path, fully
// foldable, which is why the paper clusters BT with K=3 and sees a
// single clustering per run. The paper runs class D for 250 timesteps
// with Call_Frequency 25.
func BT(class Class, p int) Spec {
	return Spec{
		Name:    "BT",
		P:       p,
		Iters:   250,
		Freq:    25,
		K:       3,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return btBody(class, p, 250, o)
		},
	}
}

func btBody(class Class, p, iters int, o BodyOpts) func(*mpi.Proc) {
	_, cols := grid2D(p)
	compute := computeTime(8*vtime.Millisecond, class, p)
	bytes := haloBytes(2048, class, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		shift := func(s int) int { return ((rank+s)%p + p) % p }
		// btStages is the number of substitution stages per solve
		// direction; each stage exchanges a distinctly-tagged block, so
		// the intra-node trace keeps one PRSD leaf per stage — the
		// realistic trace size (n in the tens) the paper's merge costs
		// assume.
		const btStages = 8
		for it := 0; it < iters; it++ {
			// copy_faces
			proc.Compute(vtime.Duration(float64(compute) * jitter(rank, it, 0.02)))
			w.Sendrecv(shift(1), 101, bytes, nil, shift(-1), 101)
			w.Sendrecv(shift(-1), 102, bytes, nil, shift(1), 102)
			w.Sendrecv(shift(cols), 103, bytes, nil, shift(-cols), 103)
			w.Sendrecv(shift(-cols), 104, bytes, nil, shift(cols), 104)
			// x_solve / y_solve: forward and backward substitution
			// pipelines along both multipartition diagonals.
			proc.Compute(vtime.Duration(float64(compute) * 0.5 * jitter(rank, it+iters, 0.02)))
			for s := 0; s < btStages; s++ {
				w.Sendrecv(shift(1), 110+s, bytes/4, nil, shift(-1), 110+s)
			}
			for s := 0; s < btStages; s++ {
				w.Sendrecv(shift(-1), 120+s, bytes/4, nil, shift(1), 120+s)
			}
			// z_solve
			proc.Compute(vtime.Duration(float64(compute) * 0.5 * jitter(rank, it+2*iters, 0.02)))
			for s := 0; s < btStages; s++ {
				w.Sendrecv(shift(cols), 130+s, bytes/4, nil, shift(-cols), 130+s)
			}
			for s := 0; s < btStages; s++ {
				w.Sendrecv(shift(-cols), 140+s, bytes/4, nil, shift(cols), 140+s)
			}
			if markerAt(o, it) {
				Marker(proc)
			}
		}
		// Verification norm after the timestep loop.
		w.Allreduce(8, uint64(rank), mpi.OpSum)
	}
}

// SP reproduces NPB SP: the same multipartition face exchanges as BT
// plus a per-timestep residual all-reduce, preceded by a setup phase
// (grid metadata broadcast) that spans the first Call_Frequency+1
// timesteps — producing the three All-Tracing marker calls Table II
// reports before clustering engages. Class D runs 500 timesteps with
// Call_Frequency 20 and K=3.
func SP(class Class, p int) Spec {
	return Spec{
		Name:    "SP",
		P:       p,
		Iters:   500,
		Freq:    20,
		K:       3,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return spBody(class, p, 500, 21, o)
		},
	}
}

func spBody(class Class, p, iters, setupLen int, o BodyOpts) func(*mpi.Proc) {
	_, cols := grid2D(p)
	compute := computeTime(6*vtime.Millisecond, class, p)
	bytes := haloBytes(1536, class, p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		shift := func(s int) int { return ((rank+s)%p + p) % p }
		// SP's scalar pentadiagonal solves pipeline more, thinner stages
		// than BT's block solves.
		const spStages = 12
		for it := 0; it < iters; it++ {
			if it < setupLen {
				// One-off setup: distribute grid metadata.
				w.Bcast(0, 4096, nil)
			}
			proc.Compute(vtime.Duration(float64(compute) * jitter(rank, it, 0.02)))
			w.Sendrecv(shift(1), 201, bytes, nil, shift(-1), 201)
			w.Sendrecv(shift(-1), 202, bytes, nil, shift(1), 202)
			w.Sendrecv(shift(cols), 203, bytes, nil, shift(-cols), 203)
			w.Sendrecv(shift(-cols), 204, bytes, nil, shift(cols), 204)
			proc.Compute(vtime.Duration(float64(compute) * 0.5 * jitter(rank, it+iters, 0.02)))
			for s := 0; s < spStages; s++ {
				w.Sendrecv(shift(1), 210+s, bytes/8, nil, shift(-1), 210+s)
			}
			for s := 0; s < spStages; s++ {
				w.Sendrecv(shift(cols), 230+s, bytes/8, nil, shift(-cols), 230+s)
			}
			w.Allreduce(8, uint64(rank), mpi.OpMax)
			if markerAt(o, it) {
				Marker(proc)
			}
		}
	}
}
