package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/vtime"
)

// Stencil is a 2D Jacobi-style halo-exchange skeleton built to exercise
// fault recovery: each rank exchanges halos with its (up to four) grid
// neighbors through per-direction conditional branches, so corner, edge
// and interior ranks produce distinct Call-Paths (nine classes on a
// rows >= 3 x cols >= 3 grid — the K=9 clustering of Table I's stencil
// codes). Because the neighbor branches also test liveness, a crashed
// rank simply drops out of its neighbors' halo pattern: survivors
// adjacent to it switch Call-Paths (a genuine phase change), while the
// rest of the interior cluster keeps its shape — which is exactly the
// situation lead failover must survive when an interior *lead* dies.
func Stencil(class Class, p int) Spec {
	const iters = 60
	return Spec{
		Name:  "STENCIL",
		P:     p,
		Iters: iters,
		Freq:  1,
		K:     9,
		Make: func(o BodyOpts) func(p *mpi.Proc) {
			bytes := haloBytes(4096, class, p)
			comp := computeTime(800*vtime.Microsecond, class, p)
			syncEvery := o.SyncEvery
			if syncEvery == 0 {
				syncEvery = 1 // default: residual Allreduce every timestep
			}
			return func(pr *mpi.Proc) {
				w := pr.World()
				rank := pr.Rank()
				rows, cols := grid2D(pr.Size())
				row, col := rank/cols, rank%cols
				up, down, left, right := -1, -1, -1, -1
				if row > 0 {
					up = rank - cols
				}
				if row < rows-1 {
					down = rank + cols
				}
				if col > 0 {
					left = rank - 1
				}
				if col < cols-1 {
					right = rank + 1
				}
				live := func(nb int) bool { return nb >= 0 && !pr.Departed(nb) }
				for it := 0; it < iters; it++ {
					pr.Compute(vtime.Duration(float64(comp) * jitter(rank, it, 0.05)))
					// Eager sends first (they never block), then the
					// matching receives; both sides skip departed
					// neighbors, so the exchange shrinks symmetrically.
					if live(up) {
						w.Send(up, 1, bytes, nil)
					}
					if live(down) {
						w.Send(down, 2, bytes, nil)
					}
					if live(left) {
						w.Send(left, 3, bytes, nil)
					}
					if live(right) {
						w.Send(right, 4, bytes, nil)
					}
					if live(down) {
						w.Recv(down, 1)
					}
					if live(up) {
						w.Recv(up, 2)
					}
					if live(right) {
						w.Recv(right, 3)
					}
					if live(left) {
						w.Recv(left, 4)
					}
					// The residual reduction is a global sync: it equalizes
					// every rank's clock, so idle-wave runs thin it out or
					// disable it (a wave cannot outlive a global sync).
					if syncEvery > 0 && (it+1)%syncEvery == 0 {
						pr.ShrunkWorld().Allreduce(8, uint64(rank), mpi.OpSum)
					}
					if o.CheckpointEvery > 0 && (it+1)%o.CheckpointEvery == 0 {
						checkpoint(pr, bytes, comp)
					}
					if markerAt(o, it) {
						Marker(pr)
					}
				}
			}
		},
	}
}
