package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// emfTasks is the paper's EMF workload: a 9-stage DNA preprocessing
// pipeline over 1000 patient datasets with four sequences each —
// 1000 x 4 x 9 = 36000 tasks, dealt by one master to P-1 workers. The
// paper's process counts (126, 251, 501, 1001) make the worker count
// divide the task count exactly, so Table II's iteration column is
// simply 36000/(P-1).
const emfTasks = 36000

// EMF reproduces the ElasticMedFlow master/worker pipeline: rank 0
// serves tasks from a wildcard receive loop; workers request, receive
// and process tasks. Master and workers execute disjoint call sequences
// — the two Call-Paths behind the paper's K=2 — and the master's replies
// are recorded with the reply-to-last-source encoding so the clustered
// trace replays without knowing the matching order. A marker closes
// every task round; Call_Frequency is rounds/9 so each run engages nine
// marker calls, as in Table II.
func EMF(p int) Spec {
	workers := p - 1
	rounds := emfTasks / workers
	freq := rounds / 9
	if freq < 1 {
		freq = 1
	}
	return Spec{
		Name:    "EMF",
		P:       p,
		Iters:   rounds,
		Freq:    freq,
		K:       2,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return emfBody(p, rounds, o)
		},
	}
}

func emfBody(p, rounds int, o BodyOpts) func(*mpi.Proc) {
	const (
		tagRequest = 601
		tagTask    = 602
	)
	taskTime := 3 * vtime.Millisecond
	taskBytes := 8192
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		for round := 0; round < rounds; round++ {
			if round == 0 {
				// Pipeline manifest distribution.
				w.Bcast(0, 16384, nil)
			}
			if rank == 0 {
				// Master: serve one task per worker per round.
				for i := 0; i < p-1; i++ {
					msg := w.Recv(mpi.AnySource, tagRequest)
					w.Send(msg.Source, tagTask, taskBytes, nil)
				}
			} else {
				w.Send(0, tagRequest, 64, nil)
				w.Recv(0, tagTask)
				proc.Compute(vtime.Duration(float64(taskTime) * jitter(rank, round, 0.05)))
			}
			if markerAt(o, round) {
				Marker(proc)
			}
		}
	}
}
