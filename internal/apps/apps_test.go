package apps

import (
	"testing"

	"chameleon/internal/mpi"
)

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p := 16
		if name == "EMF" {
			p = 26
		}
		spec, err := Registry(name, ClassA, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Name == "" || spec.Iters <= 0 || spec.Freq <= 0 || spec.K <= 0 {
			t.Fatalf("%s: bad spec %+v", name, spec)
		}
		if spec.Make == nil {
			t.Fatalf("%s: no body", name)
		}
	}
	if _, err := Registry("NOPE", ClassA, 4); err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
}

func TestParseClass(t *testing.T) {
	if ParseClass("A") != ClassA || ParseClass("b") != ClassB ||
		ParseClass("C") != ClassC || ParseClass("D") != ClassD {
		t.Fatalf("class parsing")
	}
	if ParseClass("weird") != ClassD {
		t.Fatalf("default class")
	}
	if !(ClassA.Scale < ClassB.Scale && ClassB.Scale < ClassC.Scale && ClassC.Scale < ClassD.Scale) {
		t.Fatalf("class scales not monotone")
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{
		16: {4, 4}, 12: {3, 4}, 7: {1, 7}, 1: {1, 1}, 36: {6, 6}, 64: {8, 8},
	}
	for p, want := range cases {
		r, c := grid2D(p)
		if r != want[0] || c != want[1] {
			t.Fatalf("grid2D(%d) = %dx%d", p, r, c)
		}
		if r*c != p {
			t.Fatalf("grid2D(%d) does not cover", p)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	for rank := 0; rank < 50; rank++ {
		for step := 0; step < 20; step++ {
			j := jitter(rank, step, 0.1)
			if j < 0.9 || j > 1.1 {
				t.Fatalf("jitter(%d,%d) = %v", rank, step, j)
			}
		}
	}
	if jitter(3, 7, 0.1) != jitter(3, 7, 0.1) {
		t.Fatalf("jitter not deterministic")
	}
}

func TestComputeTimeScaling(t *testing.T) {
	// Strong scaling: more ranks, less per-rank work.
	big := computeTime(8_000_000, ClassD, 16)
	small := computeTime(8_000_000, ClassD, 1024)
	if big <= small {
		t.Fatalf("strong scaling broken: %v vs %v", big, small)
	}
	// Larger class, more work.
	if computeTime(8_000_000, ClassA, 64) >= computeTime(8_000_000, ClassD, 64) {
		t.Fatalf("class scaling broken")
	}
	// Floor.
	if computeTime(1, ClassA, 1<<20) <= 0 {
		t.Fatalf("compute floor broken")
	}
}

func TestHaloBytesScaling(t *testing.T) {
	if haloBytes(2048, ClassD, 16) <= haloBytes(2048, ClassD, 1024) {
		t.Fatalf("halo scaling broken")
	}
	if haloBytes(1, ClassA, 1<<20) < 256 {
		t.Fatalf("halo floor broken")
	}
}

func TestMarkerAt(t *testing.T) {
	o := BodyOpts{Freq: 5, Markers: true}
	count := 0
	for it := 0; it < 20; it++ {
		if markerAt(o, it) {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("marker count = %d", count)
	}
	if markerAt(BodyOpts{Freq: 5, Markers: false}, 4) {
		t.Fatalf("markers fired when disabled")
	}
	if markerAt(BodyOpts{Freq: 0, Markers: true}, 4) {
		t.Fatalf("freq 0 fired")
	}
}

// runSpec executes a spec body untraced on its rank count.
func runSpec(t *testing.T, spec Spec, markers bool) *mpi.Result {
	t.Helper()
	res, err := mpi.Run(mpi.Config{P: spec.P}, spec.Body(markers))
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	return res
}

func TestBenchmarksRunToCompletion(t *testing.T) {
	// Every skeleton must run deadlock-free, with and without markers.
	type tc struct {
		name string
		p    int
	}
	for _, c := range []tc{{"BT", 16}, {"LU", 16}, {"SP", 16}, {"CG", 16},
		{"POP", 16}, {"S3D", 16}, {"LUW", 16}, {"EMF", 11}} {
		spec, err := Registry(c.name, ClassA, c.p)
		if err != nil {
			t.Fatal(err)
		}
		res := runSpec(t, spec, false)
		if res.Makespan <= 0 {
			t.Fatalf("%s: no virtual time", c.name)
		}
		resM := runSpec(t, spec, true)
		if resM.Makespan <= 0 {
			t.Fatalf("%s with markers: no virtual time", c.name)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	// Virtual makespans are bit-identical across runs (EMF included,
	// thanks to conservative wildcard matching).
	for _, name := range []string{"BT", "LU", "EMF"} {
		p := 16
		if name == "EMF" {
			p = 11
		}
		spec, err := Registry(name, ClassA, p)
		if err != nil {
			t.Fatal(err)
		}
		first := runSpec(t, spec, false).Makespan
		for i := 0; i < 2; i++ {
			if got := runSpec(t, spec, false).Makespan; got != first {
				t.Fatalf("%s nondeterministic: %v vs %v", name, got, first)
			}
		}
	}
}

func TestLUModified(t *testing.T) {
	spec := LUModified(ClassA, 16, 3)
	if spec.Name != "LU*" {
		t.Fatalf("name = %s", spec.Name)
	}
	res := runSpec(t, spec, true)
	if res.Makespan <= 0 {
		t.Fatalf("no time")
	}
}

func TestSweep3DWeak(t *testing.T) {
	// Weak scaling keeps per-rank work constant: aggregate app time per
	// rank should not shrink as P grows.
	small, err := mpi.Run(mpi.Config{P: 4}, Sweep3DWeak(4).Body(false))
	if err != nil {
		t.Fatal(err)
	}
	big, err := mpi.Run(mpi.Config{P: 16}, Sweep3DWeak(16).Body(false))
	if err != nil {
		t.Fatal(err)
	}
	// The wavefront's pipeline-fill depth grows with the grid diameter,
	// so weak-scaled sweeps legitimately slow down somewhat — but far
	// less than the 4x a strong-scaled fixed problem would shrink.
	ratio := float64(big.Makespan) / float64(small.Makespan)
	if ratio < 0.8 || ratio > 3.5 {
		t.Fatalf("weak scaling makespan ratio = %v", ratio)
	}
}

func TestEMFTaskDivision(t *testing.T) {
	// The paper's EMF process counts divide the task pool evenly.
	for _, p := range []int{126, 251, 501, 1001} {
		spec := EMF(p)
		if spec.Iters*(p-1) != emfTasks {
			t.Fatalf("P=%d: %d rounds x %d workers != %d tasks", p, spec.Iters, p-1, emfTasks)
		}
		if spec.Iters/spec.Freq != 9 {
			t.Fatalf("P=%d: %d calls, want 9", p, spec.Iters/spec.Freq)
		}
	}
}

func TestPopSolverItersVary(t *testing.T) {
	seen := map[int]bool{}
	for it := 0; it < 20; it++ {
		k := popSolverIters(it)
		if k < 20 || k >= 36 {
			t.Fatalf("solver iters out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) < 3 {
		t.Fatalf("solver iterations do not vary: %v", seen)
	}
}

func TestTableIIParameters(t *testing.T) {
	// The specs must carry the paper's Table I/II parameters.
	expect := map[string][3]int{ // iters, freq, K
		"BT":  {250, 25, 3},
		"LU":  {300, 20, 9},
		"SP":  {500, 20, 3},
		"POP": {20, 1, 3},
		"S3D": {10, 1, 9},
		"LUW": {250, 25, 9},
	}
	for name, want := range expect {
		spec, err := Registry(name, ClassD, 16)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Iters != want[0] || spec.Freq != want[1] || spec.K != want[2] {
			t.Fatalf("%s: iters/freq/K = %d/%d/%d, want %v",
				name, spec.Iters, spec.Freq, spec.K, want)
		}
	}
	emf := EMF(126)
	if emf.K != 2 || emf.Iters != 288 || emf.Freq != 32 {
		t.Fatalf("EMF(126) = %+v", emf)
	}
}

func TestMGAndFT(t *testing.T) {
	for _, name := range []string{"MG", "FT"} {
		spec, err := Registry(name, ClassA, 16)
		if err != nil {
			t.Fatal(err)
		}
		res := runSpec(t, spec, true)
		if res.Makespan <= 0 {
			t.Fatalf("%s: no virtual time", name)
		}
		// Deterministic.
		if again := runSpec(t, spec, true).Makespan; again != res.Makespan {
			t.Fatalf("%s nondeterministic", name)
		}
	}
}
