package apps

import (
	"chameleon/internal/mpi"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// LU reproduces the communication skeleton of NPB LU: an SSOR solver
// whose lower/upper sweeps pipeline wavefronts across a non-periodic 2D
// process grid. Boundary ranks skip the exchanges their missing
// neighbors would serve, so the grid splits into up to nine Call-Path
// classes (interior, four edges, four corners) — hence the paper's K=9
// for LU. Setup traffic spans the first Call_Frequency+1 timesteps,
// yielding Table II's three All-Tracing calls. Class D runs 300
// timesteps with Call_Frequency 20.
func LU(class Class, p int) Spec {
	iters := luIters(class)
	return Spec{
		Name:    "LU",
		P:       p,
		Iters:   iters,
		Freq:    20,
		K:       9,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return luBody(p, iters, 21, 0, luStrongTimes(class, p), o)
		},
	}
}

// luIters gives the per-class timestep count (Figure 11 sweeps input
// classes together with their timestep counts; class D is the paper's
// 300-step configuration).
func luIters(class Class) int {
	switch class.Name {
	case "A":
		return 100
	case "B":
		return 160
	case "C":
		return 240
	}
	return 300
}

// LUWeak is LU under weak scaling (Table II row LUW): the per-rank
// problem share is fixed, 250 timesteps, Call_Frequency 25, and the
// weak-scaling inputs skip the setup broadcast (the run starts from a
// restart file), so only the first marker call stays in All-Tracing.
func LUWeak(class Class, p int) Spec {
	return Spec{
		Name:    "LUW",
		P:       p,
		Iters:   250,
		Freq:    25,
		K:       9,
		SigMode: tracer.SigFull,
		Make: func(o BodyOpts) func(*mpi.Proc) {
			return luBody(p, 250, 0, 0, luWeakTimes(class), o)
		},
	}
}

// LUModified is the paper's re-clustering stressor (Figure 10): LU with
// an extra barrier — a new Call-Path — injected every tenth timestep,
// for the first 10*phases timesteps, forcing up to `phases` separate
// re-clusterings.
func LUModified(class Class, p, phases int) Spec {
	s := LU(class, p)
	s.Name = "LU*"
	s.Make = func(o BodyOpts) func(*mpi.Proc) {
		return luBody(p, 300, 21, phases, luStrongTimes(class, p), o)
	}
	return s
}

type luTimes struct {
	compute vtime.Duration
	bytes   int
}

func luStrongTimes(class Class, p int) luTimes {
	return luTimes{
		compute: computeTime(5*vtime.Millisecond, class, p),
		bytes:   haloBytes(1024, class, p),
	}
}

// luWeakTimes keeps the per-rank share constant regardless of P.
func luWeakTimes(class Class) luTimes {
	return luTimes{
		compute: vtime.Duration(float64(5*vtime.Millisecond) * class.Scale),
		bytes:   int(1024 * class.Scale),
	}
}

func luBody(p, iters, setupLen, phases int, t luTimes, o BodyOpts) func(*mpi.Proc) {
	rows, cols := grid2D(p)
	return func(proc *mpi.Proc) {
		w := proc.World()
		rank := proc.Rank()
		row, col := rank/cols, rank%cols
		north, south := row > 0, row < rows-1
		west, east := col > 0, col < cols-1
		half := vtime.Duration(float64(t.compute) * 0.5)

		for it := 0; it < iters; it++ {
			if it < setupLen {
				w.Bcast(0, 2048, nil)
			}
			if phases > 0 && it > 0 && it%10 == 0 && it <= 10*phases {
				// Injected phase change: a previously unseen Call-Path.
				w.Barrier()
			}
			// Lower-triangular sweep: wavefront flows NW -> SE, pipelined
			// over k-plane blocks (distinct tags keep one PRSD leaf per
			// block, as real LU's per-plane exchanges do).
			const blocks = 8
			for b := 0; b < blocks; b++ {
				if north {
					w.Recv(rank-cols, 310+b)
				}
				if west {
					w.Recv(rank-1, 330+b)
				}
				proc.Compute(vtime.Duration(float64(half) / blocks * jitter(rank, it*blocks+b, 0.03)))
				if south {
					w.Send(rank+cols, 310+b, t.bytes, nil)
				}
				if east {
					w.Send(rank+1, 330+b, t.bytes, nil)
				}
			}
			// Upper-triangular sweep: wavefront flows SE -> NW.
			for b := 0; b < blocks; b++ {
				if south {
					w.Recv(rank+cols, 350+b)
				}
				if east {
					w.Recv(rank+1, 370+b)
				}
				proc.Compute(vtime.Duration(float64(half) / blocks * jitter(rank, (it+iters)*blocks+b, 0.03)))
				if north {
					w.Send(rank-cols, 350+b, t.bytes, nil)
				}
				if west {
					w.Send(rank-1, 370+b, t.bytes, nil)
				}
			}
			if markerAt(o, it) {
				Marker(proc)
			}
		}
		// Final l2-norm verification.
		w.Allreduce(8, uint64(rank), mpi.OpSum)
	}
}
