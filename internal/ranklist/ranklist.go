// Package ranklist implements ScalaTrace's communication-group encoding.
//
// A rank list is the EBNF tuple <dimension, start_rank, iteration_length,
// stride>: it names the set of MPI ranks that share a trace entry without
// enumerating them. One dimension covers a strided run (start, start+s,
// ..., start+(n-1)*s); higher dimensions nest, so a 2D list describes a
// sub-grid of a process mesh. Irregular sets that no single descriptor
// covers are held as a union of descriptors (a List).
package ranklist

import (
	"fmt"
	"sort"
	"strings"
)

// Dim is one <iterations, stride> level of a rank list descriptor.
type Dim struct {
	Iters  int // number of ranks along this dimension (>= 1)
	Stride int // distance between consecutive ranks along this dimension
}

// RL is a single rank-list descriptor: a start rank plus nested
// dimensions. The zero value is invalid; use New or FromRanks.
type RL struct {
	Start int
	Dims  []Dim
}

// New builds a descriptor. Dims may be empty for a singleton rank.
func New(start int, dims ...Dim) RL {
	return RL{Start: start, Dims: dims}
}

// Single returns the descriptor for one rank.
func Single(rank int) RL { return RL{Start: rank} }

// Range returns a 1D descriptor covering iters ranks with the given stride.
func Range(start, iters, stride int) RL {
	if iters <= 1 {
		return Single(start)
	}
	return RL{Start: start, Dims: []Dim{{Iters: iters, Stride: stride}}}
}

// Size returns the number of ranks the descriptor covers.
func (r RL) Size() int {
	n := 1
	for _, d := range r.Dims {
		n *= d.Iters
	}
	return n
}

// Ranks expands the descriptor into an explicit sorted rank slice.
func (r RL) Ranks() []int {
	out := []int{r.Start}
	for _, d := range r.Dims {
		next := make([]int, 0, len(out)*d.Iters)
		for _, base := range out {
			for i := 0; i < d.Iters; i++ {
				next = append(next, base+i*d.Stride)
			}
		}
		out = next
	}
	sort.Ints(out)
	return out
}

// Contains reports whether rank is a member of the descriptor.
func (r RL) Contains(rank int) bool {
	return contains(rank-r.Start, r.Dims)
}

// ForEach calls fn for every rank the descriptor covers, without
// allocating. Ranks are produced in dimension order, not sorted.
func (r RL) ForEach(fn func(rank int)) {
	forEachDim(r.Start, r.Dims, fn)
}

func forEachDim(base int, dims []Dim, fn func(int)) {
	if len(dims) == 0 {
		fn(base)
		return
	}
	d := dims[0]
	for i := 0; i < d.Iters; i++ {
		forEachDim(base+i*d.Stride, dims[1:], fn)
	}
}

func contains(offset int, dims []Dim) bool {
	if len(dims) == 0 {
		return offset == 0
	}
	d := dims[len(dims)-1]
	rest := dims[:len(dims)-1]
	if d.Stride == 0 {
		return contains(offset, rest)
	}
	for i := 0; i < d.Iters; i++ {
		o := offset - i*d.Stride
		if contains(o, rest) {
			return true
		}
	}
	return false
}

// String renders the descriptor in the paper's EBNF-ish notation.
func (r RL) String() string {
	if len(r.Dims) == 0 {
		return fmt.Sprintf("<0,%d>", r.Start)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<%d,%d", len(r.Dims), r.Start)
	for _, d := range r.Dims {
		fmt.Fprintf(&b, ",%d,%d", d.Iters, d.Stride)
	}
	b.WriteString(">")
	return b.String()
}

// List is a union of descriptors — the representation carried on trace
// events. It is kept normalized (descriptors sorted by start rank).
type List struct {
	rls []RL
}

// FromRanks compacts an explicit rank set into a List, greedily detecting
// strided 1D runs and then stacking equal runs into a second dimension
// when they recur at a constant stride (the common case for sub-grids of
// a 2D process mesh).
func FromRanks(ranks []int) List {
	if len(ranks) == 0 {
		return List{}
	}
	rs := append([]int(nil), ranks...)
	sort.Ints(rs)
	rs = dedup(rs)

	// Pass 1: fold into maximal 1D strided runs.
	var runs []RL
	i := 0
	for i < len(rs) {
		j := i + 1
		if j >= len(rs) {
			runs = append(runs, Single(rs[i]))
			break
		}
		stride := rs[j] - rs[i]
		for j+1 < len(rs) && rs[j+1]-rs[j] == stride {
			j++
		}
		n := j - i + 1
		if n >= 2 {
			runs = append(runs, Range(rs[i], n, stride))
			i = j + 1
		} else {
			runs = append(runs, Single(rs[i]))
			i++
		}
	}

	// Pass 2: stack identical consecutive runs recurring at a constant
	// outer stride into a 2D descriptor.
	var out []RL
	i = 0
	for i < len(runs) {
		j := i + 1
		base := runs[i]
		if len(base.Dims) == 1 {
			outer := -1
			for j < len(runs) &&
				len(runs[j].Dims) == 1 &&
				runs[j].Dims[0] == base.Dims[0] {
				s := runs[j].Start - runs[j-1].Start
				if outer == -1 {
					outer = s
				}
				if s != outer {
					break
				}
				j++
			}
			if j-i >= 2 {
				out = append(out, RL{
					Start: base.Start,
					Dims:  []Dim{base.Dims[0], {Iters: j - i, Stride: outer}},
				})
				i = j
				continue
			}
		}
		out = append(out, base)
		i++
	}
	return List{rls: out}
}

func dedup(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// FromRL wraps a single descriptor.
func FromRL(r RL) List { return List{rls: []RL{r}} }

// SingleRank returns a list covering exactly one rank.
func SingleRank(rank int) List { return FromRL(Single(rank)) }

// Empty reports whether the list covers no ranks.
func (l List) Empty() bool { return len(l.rls) == 0 }

// Descriptors returns the underlying descriptors (do not mutate).
func (l List) Descriptors() []RL { return l.rls }

// Size returns the number of ranks covered.
func (l List) Size() int {
	n := 0
	for _, r := range l.rls {
		n += r.Size()
	}
	return n
}

// Ranks expands the list into a sorted, deduplicated rank slice.
func (l List) Ranks() []int {
	var out []int
	for _, r := range l.rls {
		out = append(out, r.Ranks()...)
	}
	sort.Ints(out)
	return dedup(out)
}

// ForEach calls fn for every rank in the list, without allocating — the
// hot iteration path of the compressed-domain analysis engine. Lists
// built by FromRanks/Union are normalized (descriptors disjoint), so fn
// runs exactly once per covered rank; hand-built overlapping unions may
// repeat ranks. Order follows the descriptors, not global rank order.
func (l List) ForEach(fn func(rank int)) {
	for _, r := range l.rls {
		r.ForEach(fn)
	}
}

// Contains reports membership.
func (l List) Contains(rank int) bool {
	for _, r := range l.rls {
		if r.Contains(rank) {
			return true
		}
	}
	return false
}

// Union merges two lists and re-compacts the result.
func (l List) Union(o List) List {
	if l.Empty() {
		return o
	}
	if o.Empty() {
		return l
	}
	return FromRanks(append(l.Ranks(), o.Ranks()...))
}

// Equal reports whether two lists cover the same rank set.
func (l List) Equal(o List) bool {
	a, b := l.Ranks(), o.Ranks()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Min returns the smallest rank in the list (or -1 when empty).
func (l List) Min() int {
	if l.Empty() {
		return -1
	}
	min := l.rls[0].Ranks()[0]
	for _, r := range l.rls[1:] {
		if first := r.Ranks()[0]; first < min {
			min = first
		}
	}
	return min
}

// SizeBytes approximates the in-memory footprint for the space ledger.
func (l List) SizeBytes() int {
	n := 24 // slice header
	for _, r := range l.rls {
		n += 8 + 24 + len(r.Dims)*16
	}
	return n
}

// String renders the union of descriptors.
func (l List) String() string {
	if l.Empty() {
		return "<>"
	}
	parts := make([]string, len(l.rls))
	for i, r := range l.rls {
		parts[i] = r.String()
	}
	return strings.Join(parts, "+")
}
