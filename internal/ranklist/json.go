package ranklist

import "encoding/json"

// rlJSON is the serialized form of one descriptor.
type rlJSON struct {
	Start int      `json:"start"`
	Dims  [][2]int `json:"dims,omitempty"` // [iters, stride] pairs
}

// MarshalJSON implements json.Marshaler.
func (l List) MarshalJSON() ([]byte, error) {
	out := make([]rlJSON, len(l.rls))
	for i, r := range l.rls {
		out[i].Start = r.Start
		for _, d := range r.Dims {
			out[i].Dims = append(out[i].Dims, [2]int{d.Iters, d.Stride})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *List) UnmarshalJSON(data []byte) error {
	var in []rlJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	l.rls = nil
	for _, r := range in {
		rl := RL{Start: r.Start}
		for _, d := range r.Dims {
			rl.Dims = append(rl.Dims, Dim{Iters: d[0], Stride: d[1]})
		}
		l.rls = append(l.rls, rl)
	}
	return nil
}
