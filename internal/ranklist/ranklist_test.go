package ranklist

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingle(t *testing.T) {
	r := Single(7)
	if r.Size() != 1 || !r.Contains(7) || r.Contains(6) {
		t.Fatalf("Single(7) misbehaves: %v", r)
	}
	if got := r.Ranks(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Ranks = %v", got)
	}
}

func TestRange(t *testing.T) {
	r := Range(2, 4, 3) // 2, 5, 8, 11
	want := []int{2, 5, 8, 11}
	if !reflect.DeepEqual(r.Ranks(), want) {
		t.Fatalf("Ranks = %v, want %v", r.Ranks(), want)
	}
	for _, w := range want {
		if !r.Contains(w) {
			t.Fatalf("missing %d", w)
		}
	}
	for _, n := range []int{0, 3, 6, 12} {
		if r.Contains(n) {
			t.Fatalf("spurious %d", n)
		}
	}
	if Range(5, 1, 3).Size() != 1 {
		t.Fatalf("degenerate range not singleton")
	}
}

func Test2D(t *testing.T) {
	// A 3x2 sub-grid of a 4-wide mesh: start 1, inner iters 2 stride 1,
	// outer iters 3 stride 4.
	r := New(1, Dim{Iters: 2, Stride: 1}, Dim{Iters: 3, Stride: 4})
	want := []int{1, 2, 5, 6, 9, 10}
	if !reflect.DeepEqual(r.Ranks(), want) {
		t.Fatalf("Ranks = %v, want %v", r.Ranks(), want)
	}
	if r.Size() != 6 {
		t.Fatalf("Size = %d", r.Size())
	}
	for _, w := range want {
		if !r.Contains(w) {
			t.Fatalf("missing %d", w)
		}
	}
	if r.Contains(3) || r.Contains(4) || r.Contains(13) {
		t.Fatalf("spurious membership")
	}
}

func TestFromRanksCompactsStride(t *testing.T) {
	l := FromRanks([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if len(l.Descriptors()) != 1 {
		t.Fatalf("contiguous run not compacted: %v", l)
	}
	l = FromRanks([]int{0, 4, 8, 12})
	if len(l.Descriptors()) != 1 {
		t.Fatalf("strided run not compacted: %v", l)
	}
}

func TestFromRanksCompacts2D(t *testing.T) {
	// Interior of a 4x4 grid at 8 columns: rows {1,2} cols {1,2}.
	ranks := []int{9, 10, 17, 18}
	l := FromRanks(ranks)
	if len(l.Descriptors()) != 1 {
		t.Fatalf("2D block not stacked: %v", l)
	}
	if !reflect.DeepEqual(l.Ranks(), ranks) {
		t.Fatalf("Ranks = %v", l.Ranks())
	}
}

func TestFromRanksRoundTrip(t *testing.T) {
	f := func(xs []uint8) bool {
		in := make([]int, len(xs))
		for i, x := range xs {
			in[i] = int(x)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		want = dedup(want)
		got := FromRanks(in).Ranks()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsMatchesRanks(t *testing.T) {
	f := func(xs []uint8, probe uint8) bool {
		in := make([]int, len(xs))
		member := false
		for i, x := range xs {
			in[i] = int(x)
			if x == probe {
				member = true
			}
		}
		return FromRanks(in).Contains(int(probe)) == member
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a := FromRanks([]int{0, 1, 2})
	b := FromRanks([]int{2, 3, 4})
	u := a.Union(b)
	if !reflect.DeepEqual(u.Ranks(), []int{0, 1, 2, 3, 4}) {
		t.Fatalf("union = %v", u.Ranks())
	}
	if !a.Union(List{}).Equal(a) || !(List{}).Union(a).Equal(a) {
		t.Fatalf("union with empty broken")
	}
}

func TestEqual(t *testing.T) {
	a := FromRanks([]int{5, 1, 3})
	b := FromRanks([]int{1, 3, 5})
	if !a.Equal(b) {
		t.Fatalf("order should not matter")
	}
	c := FromRanks([]int{1, 3})
	if a.Equal(c) {
		t.Fatalf("different sets equal")
	}
}

func TestMin(t *testing.T) {
	if (List{}).Min() != -1 {
		t.Fatalf("empty min")
	}
	if FromRanks([]int{9, 4, 7}).Min() != 4 {
		t.Fatalf("min wrong")
	}
}

func TestEmptyAndSize(t *testing.T) {
	var l List
	if !l.Empty() || l.Size() != 0 || l.Contains(0) {
		t.Fatalf("zero List misbehaves")
	}
	if SingleRank(3).Size() != 1 {
		t.Fatalf("SingleRank size")
	}
}

func TestString(t *testing.T) {
	if got := (List{}).String(); got != "<>" {
		t.Fatalf("empty string: %q", got)
	}
	if got := Single(4).String(); got != "<0,4>" {
		t.Fatalf("singleton string: %q", got)
	}
	l := FromRanks([]int{0, 1, 2, 3})
	if got := l.String(); got != "<1,0,4,1>" {
		t.Fatalf("range string: %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := func(xs []uint8) bool {
		in := make([]int, len(xs))
		for i, x := range xs {
			in[i] = int(x)
		}
		l := FromRanks(in)
		data, err := json.Marshal(l)
		if err != nil {
			return false
		}
		var back List
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	if FromRanks([]int{1, 2, 3}).SizeBytes() <= 0 {
		t.Fatalf("SizeBytes not positive")
	}
}

// TestForEachMatchesRanks proves the allocation-free iterator covers
// exactly the set Ranks() expands, for arbitrary normalized lists.
func TestForEachMatchesRanks(t *testing.T) {
	f := func(xs []uint8) bool {
		in := make([]int, len(xs))
		for i, x := range xs {
			in[i] = int(x)
		}
		l := FromRanks(in)
		var got []int
		l.ForEach(func(r int) { got = append(got, r) })
		sort.Ints(got)
		return reflect.DeepEqual(got, l.Ranks()) &&
			(len(got) == l.Size() || len(in) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach2D(t *testing.T) {
	r := New(1, Dim{Iters: 2, Stride: 1}, Dim{Iters: 3, Stride: 4})
	var got []int
	r.ForEach(func(rank int) { got = append(got, rank) })
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 2, 5, 6, 9, 10}) {
		t.Fatalf("ForEach = %v", got)
	}
}
