// Package extrap implements trace-based communication extrapolation in
// the spirit of ScalaExtrap (Wu & Mueller, PPoPP'11), the companion tool
// of the ScalaTrace/Chameleon ecosystem: given the compressed,
// location-independent global trace of an SPMD run at P ranks, rewrite
// it into the trace the same code would produce at a different rank
// count, without ever running at that scale.
//
// Three properties of the trace representation make this possible:
//
//   - rank lists are topological classes of a process grid (corners,
//     edges, interior, whole rows), which re-instantiate at any grid
//     size;
//   - end-points are relative ±c offsets whose only grid-dependent value
//     is the row stride (±cols), which rescales to the target grid;
//   - loop structure is scale-invariant for strong-scaled SPMD codes.
//
// Computation times extrapolate from multiple input traces by fitting
// delta ~ a + b/P per call site (strong scaling splits a fixed problem),
// mirroring ScalaExtrap's timing regression.
package extrap

import (
	"fmt"
	"sort"

	"chameleon/internal/ranklist"
	"chameleon/internal/stats"
	"chameleon/internal/trace"
)

// geometry is the inferred 2D process grid of a rank count.
type geometry struct {
	rows, cols int
}

func inferGeometry(p int) geometry {
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	return geometry{rows: best, cols: p / best}
}

// axisClass classifies a coordinate along one grid axis.
type axisClass int

const (
	classFirst axisClass = iota
	classMid
	classLast
)

func classify(x, n int) axisClass {
	switch {
	case x == 0:
		return classFirst
	case x == n-1:
		return classLast
	default:
		return classMid
	}
}

// axisMembers returns the coordinates of a class along an axis of size n.
func axisMembers(c axisClass, n int) []int {
	switch c {
	case classFirst:
		return []int{0}
	case classLast:
		return []int{n - 1}
	}
	out := make([]int, 0, n-2)
	for x := 1; x < n-1; x++ {
		out = append(out, x)
	}
	return out
}

// cellClass is a 2D topological class (row class x column class): the
// nine corner/edge/interior regions of a grid.
type cellClass struct {
	row, col axisClass
}

// classMembers expands a cell class on a grid.
func classMembers(c cellClass, g geometry) []int {
	var out []int
	for _, r := range axisMembers(c.row, g.rows) {
		for _, col := range axisMembers(c.col, g.cols) {
			out = append(out, r*g.cols+col)
		}
	}
	return out
}

// classesOf returns the set of cell classes a rank set covers and
// whether the set is exactly the union of those classes (class-complete).
func classesOf(ranks []int, g geometry) (map[cellClass]bool, bool) {
	classes := map[cellClass]bool{}
	for _, r := range ranks {
		classes[cellClass{classify(r/g.cols, g.rows), classify(r%g.cols, g.cols)}] = true
	}
	covered := 0
	for c := range classes {
		covered += len(classMembers(c, g))
	}
	return classes, covered == len(ranks)
}

// mapRank scales a single rank's grid position to the target geometry.
func mapRank(r int, src, dst geometry) int {
	row, col := r/src.cols, r%src.cols
	mapAxis := func(x, n, m int) int {
		switch classify(x, n) {
		case classFirst:
			return 0
		case classLast:
			return m - 1
		}
		if n <= 2 {
			return 0
		}
		// Proportional interior mapping.
		y := 1 + (x-1)*(m-2)/maxInt(1, n-2)
		if y > m-2 {
			y = m - 2
		}
		if y < 1 {
			y = minInt(1, m-1)
		}
		return y
	}
	return mapAxis(row, src.rows, dst.rows)*dst.cols + mapAxis(col, src.cols, dst.cols)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mapRanks extrapolates a rank list: class-complete sets re-instantiate
// their classes on the target grid; other sets map member-wise.
func mapRanks(l ranklist.List, src, dst geometry, srcP, dstP int) ranklist.List {
	ranks := l.Ranks()
	if len(ranks) == srcP {
		all := make([]int, dstP)
		for i := range all {
			all[i] = i
		}
		return ranklist.FromRanks(all)
	}
	if classes, complete := classesOf(ranks, src); complete {
		var out []int
		for c := range classes {
			out = append(out, classMembers(c, dst)...)
		}
		sort.Ints(out)
		return ranklist.FromRanks(out)
	}
	out := make([]int, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, mapRank(r, src, dst))
	}
	return ranklist.FromRanks(out)
}

// mapEndpoint rescales an end-point: the row stride ±cols becomes the
// target's ±cols'; unit and zero offsets are grid-invariant; absolute
// ranks map positionally.
func mapEndpoint(e trace.Endpoint, src, dst geometry) trace.Endpoint {
	switch e.Kind {
	case trace.EPRelative:
		switch {
		case e.Off == src.cols:
			return trace.Relative(dst.cols)
		case e.Off == -src.cols:
			return trace.Relative(-dst.cols)
		default:
			return e
		}
	case trace.EPAbsolute:
		return trace.Absolute(mapRank(e.Off, src, dst))
	}
	return e
}

// Extrapolate rewrites a global trace recorded at f.P ranks into the
// trace the same code would produce at targetP ranks. Loop structure and
// computation deltas are preserved; rank lists, end-points and
// (master/worker) round counts rescale with the process grid.
func Extrapolate(f *trace.File, targetP int) (*trace.File, error) {
	if f == nil || len(f.Nodes) == 0 {
		return nil, fmt.Errorf("extrap: empty trace")
	}
	if targetP <= 1 {
		return nil, fmt.Errorf("extrap: invalid target rank count %d", targetP)
	}
	src, dst := inferGeometry(f.P), inferGeometry(targetP)
	out := &trace.File{
		P:         targetP,
		Benchmark: f.Benchmark,
		Tracer:    f.Tracer + "+extrap",
		Clustered: f.Clustered,
		Filter:    f.Filter,
		Nodes:     extrapolateSeq(f.Nodes, src, dst, f.P, targetP),
	}
	return out, nil
}

func extrapolateSeq(seq []*trace.Node, src, dst geometry, srcP, dstP int) []*trace.Node {
	out := make([]*trace.Node, 0, len(seq))
	for _, n := range seq {
		c := n.Clone()
		if c.IsLoop() {
			c.Body = extrapolateSeq(c.Body, src, dst, srcP, dstP)
			out = append(out, c)
			continue
		}
		c.Ranks = mapRanks(n.Ranks, src, dst, srcP, dstP)
		c.Ev.Dest = mapEndpoint(c.Ev.Dest, src, dst)
		c.Ev.Src = mapEndpoint(c.Ev.Src, src, dst)
		out = append(out, c)
	}
	return out
}

// FitTiming refines an extrapolated trace's computation deltas from
// multiple source traces of the same code at different scales: for every
// call site present in all inputs, fit delta(P) = a + b/P (the strong
// scaling law: per-rank share of a fixed problem) and stamp the target's
// prediction. Inputs must be in ascending P order; the last one is the
// structural source.
func FitTiming(sources []*trace.File, target *trace.File) error {
	if len(sources) < 2 {
		return fmt.Errorf("extrap: timing fit needs >= 2 source traces, got %d", len(sources))
	}
	type sample struct{ invP, delta float64 }
	bySite := map[uint64][]sample{}
	for _, f := range sources {
		means := map[uint64]*stats.Welford{}
		collectDeltas(f.Nodes, means)
		for site, w := range means {
			bySite[site] = append(bySite[site], sample{invP: 1 / float64(f.P), delta: w.Mean()})
		}
	}
	fits := map[uint64][2]float64{} // site -> (a, b)
	for site, ss := range bySite {
		if len(ss) < 2 {
			continue
		}
		// Least squares on delta = a + b*invP.
		var sx, sy, sxx, sxy float64
		for _, s := range ss {
			sx += s.invP
			sy += s.delta
			sxx += s.invP * s.invP
			sxy += s.invP * s.delta
		}
		n := float64(len(ss))
		den := n*sxx - sx*sx
		if den == 0 {
			continue
		}
		b := (n*sxy - sx*sy) / den
		a := (sy - b*sx) / n
		fits[site] = [2]float64{a, b}
	}
	applyFits(target.Nodes, fits, float64(target.P))
	return nil
}

func collectDeltas(seq []*trace.Node, into map[uint64]*stats.Welford) {
	for _, n := range seq {
		if n.IsLoop() {
			collectDeltas(n.Body, into)
			continue
		}
		if n.Delta == nil || n.Delta.Count() == 0 {
			continue
		}
		w := into[uint64(n.Ev.Stack)]
		if w == nil {
			w = &stats.Welford{}
			into[uint64(n.Ev.Stack)] = w
		}
		w.Add(float64(n.Delta.Mean()))
	}
}

func applyFits(seq []*trace.Node, fits map[uint64][2]float64, p float64) {
	for _, n := range seq {
		if n.IsLoop() {
			applyFits(n.Body, fits, p)
			continue
		}
		fit, ok := fits[uint64(n.Ev.Stack)]
		if !ok || n.Delta == nil {
			continue
		}
		predicted := fit[0] + fit[1]/p
		if predicted < 0 {
			predicted = 0
		}
		h := stats.NewHistogram()
		h.Add(int64(predicted))
		n.Delta = h
	}
}
