package extrap

import (
	"reflect"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/replay"
	"chameleon/internal/sig"
	"chameleon/internal/stats"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

func TestInferGeometry(t *testing.T) {
	cases := map[int]geometry{16: {4, 4}, 12: {3, 4}, 7: {1, 7}, 36: {6, 6}}
	for p, want := range cases {
		if got := inferGeometry(p); got != want {
			t.Fatalf("geometry(%d) = %v", p, got)
		}
	}
}

func TestClassify(t *testing.T) {
	if classify(0, 5) != classFirst || classify(4, 5) != classLast || classify(2, 5) != classMid {
		t.Fatalf("axis classification broken")
	}
}

func TestClassMembersRoundTrip(t *testing.T) {
	g := geometry{rows: 4, cols: 5}
	total := 0
	for _, rc := range []axisClass{classFirst, classMid, classLast} {
		for _, cc := range []axisClass{classFirst, classMid, classLast} {
			total += len(classMembers(cellClass{rc, cc}, g))
		}
	}
	if total != 20 {
		t.Fatalf("classes cover %d of 20 ranks", total)
	}
}

func TestMapRanksClassComplete(t *testing.T) {
	src, dst := geometry{4, 4}, geometry{6, 6}
	// The full north edge (row 0, interior columns) of a 4x4 grid.
	l := ranklist.FromRanks([]int{1, 2})
	got := mapRanks(l, src, dst, 16, 36).Ranks()
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("north edge mapped to %v", got)
	}
	// The interior block.
	l = ranklist.FromRanks([]int{5, 6, 9, 10})
	got = mapRanks(l, src, dst, 16, 36).Ranks()
	want := []int{7, 8, 9, 10, 13, 14, 15, 16, 19, 20, 21, 22, 25, 26, 27, 28}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interior mapped to %v", got)
	}
	// All ranks.
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	if got := mapRanks(ranklist.FromRanks(all), src, dst, 16, 36); got.Size() != 36 {
		t.Fatalf("all-ranks mapped to %d", got.Size())
	}
}

func TestMapRanksCorners(t *testing.T) {
	src, dst := geometry{4, 4}, geometry{8, 8}
	corners := map[int]int{0: 0, 3: 7, 12: 56, 15: 63}
	for s, want := range corners {
		got := mapRanks(ranklist.SingleRank(s), src, dst, 16, 64).Ranks()
		if len(got) != 1 || got[0] != want {
			t.Fatalf("corner %d mapped to %v, want %d", s, got, want)
		}
	}
}

func TestMapEndpoint(t *testing.T) {
	src, dst := geometry{4, 4}, geometry{6, 6}
	if got := mapEndpoint(trace.Relative(4), src, dst); got.Off != 6 {
		t.Fatalf("row stride: %v", got)
	}
	if got := mapEndpoint(trace.Relative(-4), src, dst); got.Off != -6 {
		t.Fatalf("negative row stride: %v", got)
	}
	if got := mapEndpoint(trace.Relative(1), src, dst); got.Off != 1 {
		t.Fatalf("unit offset: %v", got)
	}
	if got := mapEndpoint(trace.Absolute(0), src, dst); got.Off != 0 {
		t.Fatalf("absolute root: %v", got)
	}
	reply := trace.Endpoint{Kind: trace.EPReplyToLast}
	if got := mapEndpoint(reply, src, dst); got != reply {
		t.Fatalf("reply changed: %v", got)
	}
}

func TestExtrapolateErrors(t *testing.T) {
	if _, err := Extrapolate(nil, 16); err == nil {
		t.Fatalf("nil trace accepted")
	}
	if _, err := Extrapolate(&trace.File{P: 4}, 16); err == nil {
		t.Fatalf("empty trace accepted")
	}
	f := &trace.File{P: 4, Nodes: []*trace.Node{trace.NewLeaf(trace.Event{Op: mpi.OpBarrier}, ranklist.SingleRank(0), 0)}}
	if _, err := Extrapolate(f, 1); err == nil {
		t.Fatalf("target 1 accepted")
	}
}

// traceAt produces a Chameleon-like global trace for a ring code at the
// given scale.
func traceAt(p int, deltaNs int64) *trace.File {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	ev := trace.Event{
		Op:    mpi.OpSendrecv,
		Stack: sig.Stack(sig.Mix(1)),
		Dest:  trace.Relative(1),
		Src:   trace.Relative(-1),
		Tag:   1,
		Bytes: 256,
	}
	return &trace.File{
		P: p,
		Nodes: []*trace.Node{
			trace.NewLoop(20, []*trace.Node{
				trace.NewLeaf(ev, ranklist.FromRanks(all), deltaNs),
			}),
		},
	}
}

func TestExtrapolatedTraceReplays(t *testing.T) {
	small := traceAt(8, int64(vtime.Millisecond))
	big, err := Extrapolate(small, 32)
	if err != nil {
		t.Fatal(err)
	}
	if big.P != 32 {
		t.Fatalf("target P = %d", big.P)
	}
	// The extrapolated trace must replay deadlock-free at the target
	// scale with the scaled event count.
	res, err := replayFile(big)
	if err != nil {
		t.Fatal(err)
	}
	if res != 32*20 {
		t.Fatalf("replayed %d events, want 640", res)
	}
}

func TestFitTiming(t *testing.T) {
	// delta(P) = 1ms + 64ms/P: samples at P=8 (9ms) and P=16 (5ms)
	// should predict 3ms at P=32.
	s8 := traceAt(8, int64(9*vtime.Millisecond))
	s16 := traceAt(16, int64(5*vtime.Millisecond))
	target, err := Extrapolate(s16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := FitTiming([]*trace.File{s8, s16}, target); err != nil {
		t.Fatal(err)
	}
	var got int64
	var walk func(seq []*trace.Node)
	walk = func(seq []*trace.Node) {
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body)
			} else {
				got = n.Delta.Mean()
			}
		}
	}
	walk(target.Nodes)
	want := int64(3 * vtime.Millisecond)
	if got < want-want/10 || got > want+want/10 {
		t.Fatalf("predicted delta = %v, want ~%v", got, want)
	}
}

func TestFitTimingNeedsTwo(t *testing.T) {
	s := traceAt(8, 1000)
	if err := FitTiming([]*trace.File{s}, s); err == nil {
		t.Fatalf("single source accepted")
	}
}

func TestCollectDeltasSkipsEmpty(t *testing.T) {
	n := trace.NewLeaf(trace.Event{Op: mpi.OpBarrier, Stack: 7}, ranklist.SingleRank(0), 0)
	n.Delta = stats.NewHistogram() // empty histogram
	into := map[uint64]*stats.Welford{}
	collectDeltas([]*trace.Node{n}, into)
	if len(into) != 0 {
		t.Fatalf("empty delta collected")
	}
}

// replayFile runs the replayer and returns the event count.
func replayFile(f *trace.File) (uint64, error) {
	res, err := replayRun(f)
	if err != nil {
		return 0, err
	}
	return res, nil
}

func replayRun(f *trace.File) (uint64, error) {
	res, err := replay.Run(f, vtime.Default())
	if err != nil {
		return 0, err
	}
	return res.Events, nil
}
