// Package zan is the compressed-domain analysis engine: it computes
// per-window and per-rank performance metrics on a compressed RSD trace
// by walking the stored nodes exactly once, multiplying each leaf's
// per-iteration contribution by the product of its enclosing loop trip
// counts and aggregating across rank lists in closed form — it never
// expands a loop and never replays an event.
//
// Cost is therefore proportional to stored nodes times rank-list width,
// independent of the dynamic event count the loops represent; the
// replay-based path in internal/replay, linear in dynamic events,
// serves as the cross-check oracle (see internal/analysis and
// docs/ANALYSIS.md).
//
// Metrics follow Haldar's time-resolved standard metrics, resolved to
// marker windows (the top-level segments of the global trace):
// compute/communication/wait time, load imbalance, communication-to-
// compute ratios, per-op event and byte tallies, log2 message-size
// histograms, and send/recv match-order (happens-before) consistency
// checks in the spirit of analyses on compressed traces (Kini, Mathur,
// Viswanathan).
package zan

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"chameleon/internal/mpi"
	"chameleon/internal/stats"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// Options configures an analysis.
type Options struct {
	// Model prices communication (vtime.Default() when zero).
	Model vtime.CostModel
	// Expand switches the engine into its reference mode: loops are
	// expanded iteration by iteration and every leaf contribution is
	// applied with weight 1. The result is bit-identical to the
	// closed-form walk (the sums are the same integers added in the
	// same per-window order), at a cost linear in dynamic events — this
	// is the expansion oracle the equivalence tests diff against.
	Expand bool
}

// OpStat tallies one MPI operation inside a window.
type OpStat struct {
	// Events is the dynamic occurrence count across all covered ranks.
	Events uint64 `json:"events"`
	// Bytes is the total payload: occurrences x per-event byte count.
	Bytes uint64 `json:"bytes"`
}

// Window is the metric set of one marker window (top-level trace node).
type Window struct {
	Index int `json:"index"`
	// Nodes and Leaves count the stored (compressed) representation.
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	// Events is the dynamic event count the window represents, summed
	// across ranks.
	Events uint64 `json:"events"`
	// ComputeNs is the modeled computation time (delta-histogram means),
	// summed across ranks and iterations.
	ComputeNs int64 `json:"compute_ns"`
	// CommNs is the modeled communication cost under the cost model.
	CommNs int64 `json:"comm_ns"`
	// WaitNs is the modeled wait-state time: for synchronizing events
	// (collectives, receives) the skew between the slowest and the mean
	// arrival, max(0, delta.Max - delta.Mean), per occurrence.
	WaitNs int64 `json:"wait_ns"`
	// LoadImbalance is max/mean of per-rank compute time over the ranks
	// participating in the window (1.0 = perfectly balanced, 0 = no
	// compute recorded).
	LoadImbalance float64 `json:"load_imbalance"`
	// CommRatio is CommNs/ComputeNs (0 when no compute was recorded).
	CommRatio float64 `json:"comm_ratio"`
	// Ops tallies events and bytes per operation.
	Ops map[string]OpStat `json:"ops,omitempty"`
	// ByteBuckets is a log2 histogram of per-event payload sizes,
	// weighted by dynamic occurrences (bucket index as in
	// stats.BucketOf; zero-payload events land in bucket 0).
	ByteBuckets map[int]uint64 `json:"byte_buckets,omitempty"`
	// LocalUnmatched counts send/recv occurrences on resolved channels
	// that found no partner inside this window (they may still match
	// across windows; see MatchReport.CrossWindow).
	LocalUnmatched uint64 `json:"local_unmatched,omitempty"`
	// Delta* summarize the distribution of per-event computation deltas
	// in the window, aggregated from the stored leaf histograms in O(1)
	// per leaf via stats.MergeScaled (count/min/max are exact; mean and
	// std are closed-form pooled moments).
	DeltaCount  uint64  `json:"delta_count,omitempty"`
	DeltaMinNs  int64   `json:"delta_min_ns,omitempty"`
	DeltaMaxNs  int64   `json:"delta_max_ns,omitempty"`
	DeltaMeanNs float64 `json:"delta_mean_ns,omitempty"`
	DeltaStdNs  float64 `json:"delta_std_ns,omitempty"`
}

// Rank is one rank's whole-trace totals.
type Rank struct {
	Rank      int    `json:"rank"`
	Events    uint64 `json:"events"`
	ComputeNs int64  `json:"compute_ns"`
	CommNs    int64  `json:"comm_ns"`
	WaitNs    int64  `json:"wait_ns"`
	SendBytes uint64 `json:"send_bytes"`
}

// MatchReport is the send/recv match-order consistency verdict.
//
// Conservation: every tag's dynamic send count must equal its dynamic
// recv count (Sendrecv contributes to both sides). Channels whose
// end-points resolve to concrete (src, dst) pairs are matched directed;
// wildcard (any-source) and reply-encoded end-points are checked at tag
// granularity only. Matches that only close across window boundaries
// are counted in CrossWindow; under marker-aligned windows (Chameleon
// online traces flush at markers, which are global barriers) a directed
// channel whose first receive window precedes its first send window is
// a happens-before violation and is counted in OrderViolations.
type MatchReport struct {
	// Sends and Recvs are dynamic point-to-point occurrence totals.
	Sends uint64 `json:"sends"`
	Recvs uint64 `json:"recvs"`
	// Wildcards counts recv occurrences with any-source/reply encodings
	// (matched at tag granularity).
	Wildcards uint64 `json:"wildcards,omitempty"`
	// ResolvedPairs counts directed-channel matches.
	ResolvedPairs uint64 `json:"resolved_pairs"`
	// CrossWindow counts directed matches that close only across window
	// boundaries.
	CrossWindow uint64 `json:"cross_window,omitempty"`
	// OrderViolations counts directed channels whose first receive
	// window precedes their first send window.
	OrderViolations uint64 `json:"order_violations,omitempty"`
	// UnmatchedByTag maps tag -> (sends - recvs) for tags that do not
	// conserve.
	UnmatchedByTag map[int]int64 `json:"unmatched_by_tag,omitempty"`
	// Unmatched is the total absolute conservation defect.
	Unmatched uint64 `json:"unmatched"`
	// Consistent reports Unmatched == 0.
	Consistent bool `json:"consistent"`
}

// Report is the full compressed-domain analysis of one trace.
type Report struct {
	P         int    `json:"p"`
	Benchmark string `json:"benchmark,omitempty"`
	Tracer    string `json:"tracer,omitempty"`
	// StoredNodes/StoredLeaves describe the compressed representation
	// the walk actually touched.
	StoredNodes  int `json:"stored_nodes"`
	StoredLeaves int `json:"stored_leaves"`
	// Events is the dynamic event total across ranks; it equals the
	// event count a full replay re-issues.
	Events uint64 `json:"events"`
	// CompressionRatio is dynamic events represented per stored node.
	CompressionRatio float64 `json:"compression_ratio"`
	// Whole-trace totals (sums of the window columns).
	ComputeNs int64 `json:"compute_ns"`
	CommNs    int64 `json:"comm_ns"`
	WaitNs    int64 `json:"wait_ns"`
	// LoadImbalance is max/mean per-rank compute over participating
	// ranks; CommRatio is CommNs/ComputeNs. Both 0 when undefined.
	LoadImbalance float64 `json:"load_imbalance"`
	CommRatio     float64 `json:"comm_ratio"`

	Windows []Window    `json:"windows"`
	Ranks   []Rank      `json:"ranks"`
	Match   MatchReport `json:"match"`
}

// chKey identifies a directed point-to-point channel.
type chKey struct {
	tag, src, dst int
}

// chCount tallies one channel. Window-local instances hold the
// window's full counts; the whole-trace map holds only the leftovers
// that failed to pair inside their window, plus first-activity windows
// for the happens-before check.
type chCount struct {
	sends, recvs uint64
	// first window that sent/received on the channel (-1 = never).
	firstSendWin, firstRecvWin int
}

type tagCount struct {
	sends, recvs uint64
}

// analyzer accumulates one walk. It implements trace.Visitor for the
// closed-form mode; the expansion oracle drives the same leaf method
// with weight 1 per dynamic occurrence.
type analyzer struct {
	p     int
	model vtime.CostModel

	windows []Window
	ranks   []Rank

	// Per-window scratch, valid while leaves of window cur arrive (both
	// walk modes emit leaves in window order).
	cur         int
	scratchComp []int64  // per-rank compute inside the current window
	scratchEv   []uint64 // per-rank events inside the current window
	touched     []int    // ranks touched in the current window
	winChans    map[chKey]*chCount
	winDelta    *stats.Histogram

	// Whole-trace match state.
	chans map[chKey]*chCount
	tags  map[int]*tagCount
	match MatchReport
}

// Analyze walks the trace once and returns its compressed-domain
// report. An empty trace yields an empty (but valid) report.
func Analyze(f *trace.File, opt Options) (*Report, error) {
	if f == nil {
		return nil, errors.New("zan: nil trace file")
	}
	if f.P <= 0 {
		return nil, fmt.Errorf("zan: invalid rank count %d", f.P)
	}
	if (opt.Model == vtime.CostModel{}) {
		opt.Model = vtime.Default()
	}
	a := &analyzer{
		p:           f.P,
		model:       opt.Model,
		windows:     make([]Window, len(f.Nodes)),
		ranks:       make([]Rank, f.P),
		scratchComp: make([]int64, f.P),
		scratchEv:   make([]uint64, f.P),
		chans:       map[chKey]*chCount{},
		tags:        map[int]*tagCount{},
	}
	for r := range a.ranks {
		a.ranks[r].Rank = r
	}
	for i, n := range f.Nodes {
		a.windows[i] = Window{
			Index:  i,
			Nodes:  trace.NodeCount([]*trace.Node{n}),
			Leaves: trace.LeafCount([]*trace.Node{n}),
		}
	}

	a.cur = -1
	if opt.Expand {
		for i, n := range f.Nodes {
			a.startWindow(i)
			a.expand(n)
		}
	} else {
		trace.Accept(f.Nodes, a)
	}
	a.startWindow(-1) // flush the last window

	return a.report(f), nil
}

// --- walk plumbing ---

func (a *analyzer) EnterLoop(n *trace.Node, c trace.Cursor) bool {
	a.startWindow(c.Window)
	return true
}

func (a *analyzer) LeaveLoop(*trace.Node, trace.Cursor) {}

func (a *analyzer) Leaf(n *trace.Node, c trace.Cursor) {
	a.startWindow(c.Window)
	a.leaf(n, c.Mult)
}

// expand is the reference walk: loops run MeanIters times, leaves apply
// with weight 1 per occurrence.
func (a *analyzer) expand(n *trace.Node) {
	if !n.IsLoop() {
		a.leaf(n, 1)
		return
	}
	iters := n.MeanIters()
	for i := uint64(0); i < iters; i++ {
		for _, b := range n.Body {
			a.expand(b)
		}
	}
}

// startWindow finalizes the previous window's derived metrics when the
// walk crosses into window w (or past the end, w == -1).
func (a *analyzer) startWindow(w int) {
	if w == a.cur {
		return
	}
	if a.cur >= 0 {
		a.flushWindow()
	}
	a.cur = w
	if w >= 0 {
		a.winChans = map[chKey]*chCount{}
		a.winDelta = stats.NewHistogram()
	}
}

func (a *analyzer) flushWindow() {
	win := &a.windows[a.cur]

	// Load imbalance and comm ratio over the ranks that participated.
	var maxComp, sumComp int64
	participants := 0
	for _, r := range a.touched {
		if a.scratchEv[r] == 0 {
			continue
		}
		participants++
		if a.scratchComp[r] > maxComp {
			maxComp = a.scratchComp[r]
		}
		sumComp += a.scratchComp[r]
		a.scratchEv[r] = 0
		a.scratchComp[r] = 0
	}
	a.touched = a.touched[:0]
	win.LoadImbalance = imbalance(maxComp, sumComp, participants)
	win.CommRatio = ratio(float64(win.CommNs), float64(win.ComputeNs))

	// Pair up the window's directed channels; only the leftovers roll
	// into the whole-trace channel map, so every pair formed there
	// later is by construction a cross-window match.
	for k, c := range a.winChans {
		paired := minU64(c.sends, c.recvs)
		a.match.ResolvedPairs += paired
		win.LocalUnmatched += (c.sends - paired) + (c.recvs - paired)
		g := a.chans[k]
		if g == nil {
			g = &chCount{firstSendWin: -1, firstRecvWin: -1}
			a.chans[k] = g
		}
		g.sends += c.sends - paired
		g.recvs += c.recvs - paired
		if c.sends > 0 && g.firstSendWin < 0 {
			g.firstSendWin = a.cur
		}
		if c.recvs > 0 && g.firstRecvWin < 0 {
			g.firstRecvWin = a.cur
		}
	}
	a.winChans = nil

	if a.winDelta != nil && a.winDelta.Count() > 0 {
		win.DeltaCount = a.winDelta.Count()
		win.DeltaMinNs = a.winDelta.Min
		win.DeltaMaxNs = a.winDelta.Max
		win.DeltaMeanNs = a.winDelta.FMean()
		win.DeltaStdNs = a.winDelta.Std()
	}
	a.winDelta = nil
}

// --- leaf contribution (shared by both walk modes) ---

// leaf applies one stored leaf with the given iteration weight. Every
// accumulator is an integer sum, so applying (n, mult) once or (n, 1)
// mult times yields bit-identical results — the property the expansion
// oracle verifies.
func (a *analyzer) leaf(n *trace.Node, mult uint64) {
	if mult == 0 {
		// A zero-trip loop body represents no dynamic events; skipping
		// it keeps the closed-form walk identical to the expansion
		// oracle, which never reaches these leaves.
		return
	}
	win := &a.windows[a.cur]
	ev := n.Ev
	size := n.Ranks.Size()
	occ := mult * uint64(size)

	compPer := int64(0)
	waitPer := int64(0)
	if n.Delta != nil && n.Delta.Count() > 0 {
		compPer = maxI64(n.Delta.Mean(), 0)
		if synchronizes(ev.Op) {
			waitPer = maxI64(n.Delta.Max-n.Delta.Mean(), 0)
		}
		a.winDelta.MergeScaled(n.Delta, occ)
	}
	commPer := int64(a.commCost(ev, size))

	win.Events += occ
	win.ComputeNs += int64(mult) * compPer * int64(size)
	win.CommNs += int64(mult) * commPer * int64(size)
	win.WaitNs += int64(mult) * waitPer * int64(size)

	if win.Ops == nil {
		win.Ops = map[string]OpStat{}
	}
	st := win.Ops[ev.Op.String()]
	st.Events += occ
	st.Bytes += occ * uint64(ev.Bytes)
	win.Ops[ev.Op.String()] = st

	if win.ByteBuckets == nil {
		win.ByteBuckets = map[int]uint64{}
	}
	win.ByteBuckets[stats.BucketOf(int64(ev.Bytes))] += occ

	sends, recvs := p2pSides(ev.Op)
	n.Ranks.ForEach(func(r int) {
		if r < 0 || r >= a.p {
			return
		}
		rk := &a.ranks[r]
		rk.Events += mult
		rk.ComputeNs += int64(mult) * compPer
		rk.CommNs += int64(mult) * commPer
		rk.WaitNs += int64(mult) * waitPer
		if sends {
			rk.SendBytes += mult * uint64(ev.Bytes)
		}
		if a.scratchEv[r] == 0 && a.scratchComp[r] == 0 {
			a.touched = append(a.touched, r)
		}
		a.scratchEv[r] += mult
		a.scratchComp[r] += int64(mult) * compPer

		if sends {
			a.match.Sends += mult
			a.addTag(ev.Tag).sends += mult
			if dst, ok := resolveMod(ev.Dest, r, a.p); ok {
				a.winChan(chKey{tag: ev.Tag, src: r, dst: dst}).sends += mult
			}
		}
		if recvs {
			a.match.Recvs += mult
			a.addTag(ev.Tag).recvs += mult
			if src, ok := resolveMod(ev.Src, r, a.p); ok {
				a.winChan(chKey{tag: ev.Tag, src: src, dst: r}).recvs += mult
			} else {
				a.match.Wildcards += mult
			}
		}
	})
}

func (a *analyzer) addTag(tag int) *tagCount {
	t := a.tags[tag]
	if t == nil {
		t = &tagCount{}
		a.tags[tag] = t
	}
	return t
}

func (a *analyzer) winChan(k chKey) *chCount {
	c := a.winChans[k]
	if c == nil {
		c = &chCount{firstSendWin: -1, firstRecvWin: -1}
		a.winChans[k] = c
	}
	return c
}

// commCost prices one occurrence of the event for one participating
// rank, in virtual nanoseconds: alpha-beta for point-to-point traffic,
// a log2(group)-depth tree for collectives over the leaf's rank list.
func (a *analyzer) commCost(ev trace.Event, group int) vtime.Duration {
	m := a.model
	switch {
	case ev.Op == mpi.OpSend || ev.Op == mpi.OpIsend:
		return m.PtoP(ev.Bytes)
	case ev.Op == mpi.OpRecv || ev.Op == mpi.OpIrecv:
		return m.Alpha
	case ev.Op == mpi.OpSendrecv:
		return m.PtoP(ev.Bytes) + m.Alpha
	case ev.Op.IsCollective():
		levels := vtime.Duration(vtime.Log2Ceil(group))
		return levels * (m.PtoP(ev.Bytes) + m.CollectivePerLevel)
	}
	return 0
}

// synchronizes reports whether the operation's delta skew counts as
// wait-state time: collectives and blocking receive-side operations
// wait for remote progress, sends and local ops do not.
func synchronizes(op mpi.OpCode) bool {
	switch op {
	case mpi.OpRecv, mpi.OpIrecv, mpi.OpWait, mpi.OpSendrecv:
		return true
	}
	return op.IsCollective()
}

// p2pSides reports which point-to-point sides the op contributes to.
func p2pSides(op mpi.OpCode) (sends, recvs bool) {
	switch op {
	case mpi.OpSend, mpi.OpIsend:
		return true, false
	case mpi.OpRecv, mpi.OpIrecv:
		return false, true
	case mpi.OpSendrecv:
		return true, true
	}
	return false, false
}

// resolveMod resolves an end-point for a rank, wrapped into [0, p) the
// way replay resolves relative (torus) offsets. Wildcard and reply
// encodings report ok=false.
func resolveMod(e trace.Endpoint, self, p int) (int, bool) {
	r, ok := e.Resolve(self)
	if !ok {
		return 0, false
	}
	return ((r % p) + p) % p, true
}

// --- finalization ---

func (a *analyzer) report(f *trace.File) *Report {
	rep := &Report{
		P:            f.P,
		Benchmark:    f.Benchmark,
		Tracer:       f.Tracer,
		StoredNodes:  trace.NodeCount(f.Nodes),
		StoredLeaves: trace.LeafCount(f.Nodes),
		Windows:      a.windows,
		Ranks:        a.ranks,
	}
	for i := range a.windows {
		w := &a.windows[i]
		rep.Events += w.Events
		rep.ComputeNs += w.ComputeNs
		rep.CommNs += w.CommNs
		rep.WaitNs += w.WaitNs
	}
	rep.CompressionRatio = ratio(float64(rep.Events), float64(rep.StoredNodes))
	rep.CommRatio = ratio(float64(rep.CommNs), float64(rep.ComputeNs))

	var maxComp, sumComp int64
	participants := 0
	for i := range a.ranks {
		if a.ranks[i].Events == 0 {
			continue
		}
		participants++
		if a.ranks[i].ComputeNs > maxComp {
			maxComp = a.ranks[i].ComputeNs
		}
		sumComp += a.ranks[i].ComputeNs
	}
	rep.LoadImbalance = imbalance(maxComp, sumComp, participants)

	// Cross-window matching over the per-channel leftovers, and the
	// windowed happens-before check.
	m := a.match
	for _, c := range a.chans {
		// The per-window pairing already subtracted its matches before
		// rolling leftovers into this map, so every pair formed here is
		// by construction a cross-window match.
		m.CrossWindow += minU64(c.sends, c.recvs)
		if c.firstSendWin >= 0 && c.firstRecvWin >= 0 &&
			c.firstRecvWin < c.firstSendWin {
			m.OrderViolations++
		}
	}
	// m.ResolvedPairs so far counted window-local pairs only; the
	// cross-window pairs complete the directed total.
	m.ResolvedPairs += m.CrossWindow

	for tag, t := range a.tags {
		if t.sends != t.recvs {
			if m.UnmatchedByTag == nil {
				m.UnmatchedByTag = map[int]int64{}
			}
			d := int64(t.sends) - int64(t.recvs)
			m.UnmatchedByTag[tag] = d
			if d < 0 {
				d = -d
			}
			m.Unmatched += uint64(d)
		}
	}
	m.Consistent = m.Unmatched == 0
	rep.Match = m
	return rep
}

func imbalance(maxComp, sumComp int64, participants int) float64 {
	if participants == 0 || sumComp <= 0 {
		return 0
	}
	mean := float64(sumComp) / float64(participants)
	return ratio(float64(maxComp), mean)
}

// ratio returns num/den with a guarded denominator: 0 when den is zero
// (or not finite), so empty windows and zero-compute traces never
// produce NaN or Inf.
func ratio(num, den float64) float64 {
	if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 0
	}
	return num / den
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- comparison ---

// Diff compares two reports field by field: integer-valued metrics must
// be identical, float-valued ratios must agree within relative
// tolerance tol. It returns human-readable mismatch descriptions
// (empty = equal). The equivalence tests use it to prove the
// closed-form walk against the expansion oracle; chamstat/chamtop
// -check uses it against a fresh oracle run.
func Diff(a, b *Report, tol float64) []string {
	var out []string
	mism := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	eqI := func(name string, x, y int64) {
		if x != y {
			mism("%s: %d != %d", name, x, y)
		}
	}
	eqU := func(name string, x, y uint64) {
		if x != y {
			mism("%s: %d != %d", name, x, y)
		}
	}
	eqF := func(name string, x, y float64) {
		if !closeEnough(x, y, tol) {
			mism("%s: %g != %g (tol %g)", name, x, y, tol)
		}
	}
	eqI("p", int64(a.P), int64(b.P))
	eqI("stored_nodes", int64(a.StoredNodes), int64(b.StoredNodes))
	eqI("stored_leaves", int64(a.StoredLeaves), int64(b.StoredLeaves))
	eqU("events", a.Events, b.Events)
	eqI("compute_ns", a.ComputeNs, b.ComputeNs)
	eqI("comm_ns", a.CommNs, b.CommNs)
	eqI("wait_ns", a.WaitNs, b.WaitNs)
	eqF("compression_ratio", a.CompressionRatio, b.CompressionRatio)
	eqF("load_imbalance", a.LoadImbalance, b.LoadImbalance)
	eqF("comm_ratio", a.CommRatio, b.CommRatio)

	if len(a.Windows) != len(b.Windows) {
		mism("windows: %d != %d", len(a.Windows), len(b.Windows))
		return out
	}
	for i := range a.Windows {
		wa, wb := &a.Windows[i], &b.Windows[i]
		pre := fmt.Sprintf("window[%d].", i)
		eqI(pre+"nodes", int64(wa.Nodes), int64(wb.Nodes))
		eqI(pre+"leaves", int64(wa.Leaves), int64(wb.Leaves))
		eqU(pre+"events", wa.Events, wb.Events)
		eqI(pre+"compute_ns", wa.ComputeNs, wb.ComputeNs)
		eqI(pre+"comm_ns", wa.CommNs, wb.CommNs)
		eqI(pre+"wait_ns", wa.WaitNs, wb.WaitNs)
		eqU(pre+"local_unmatched", wa.LocalUnmatched, wb.LocalUnmatched)
		eqF(pre+"load_imbalance", wa.LoadImbalance, wb.LoadImbalance)
		eqF(pre+"comm_ratio", wa.CommRatio, wb.CommRatio)
		eqU(pre+"delta_count", wa.DeltaCount, wb.DeltaCount)
		eqI(pre+"delta_min_ns", wa.DeltaMinNs, wb.DeltaMinNs)
		eqI(pre+"delta_max_ns", wa.DeltaMaxNs, wb.DeltaMaxNs)
		eqF(pre+"delta_mean_ns", wa.DeltaMeanNs, wb.DeltaMeanNs)
		eqF(pre+"delta_std_ns", wa.DeltaStdNs, wb.DeltaStdNs)
		diffOps(pre, wa.Ops, wb.Ops, &out)
		diffBuckets(pre, wa.ByteBuckets, wb.ByteBuckets, &out)
	}
	if len(a.Ranks) != len(b.Ranks) {
		mism("ranks: %d != %d", len(a.Ranks), len(b.Ranks))
		return out
	}
	for i := range a.Ranks {
		ra, rb := &a.Ranks[i], &b.Ranks[i]
		pre := fmt.Sprintf("rank[%d].", i)
		eqU(pre+"events", ra.Events, rb.Events)
		eqI(pre+"compute_ns", ra.ComputeNs, rb.ComputeNs)
		eqI(pre+"comm_ns", ra.CommNs, rb.CommNs)
		eqI(pre+"wait_ns", ra.WaitNs, rb.WaitNs)
		eqU(pre+"send_bytes", ra.SendBytes, rb.SendBytes)
	}
	eqU("match.sends", a.Match.Sends, b.Match.Sends)
	eqU("match.recvs", a.Match.Recvs, b.Match.Recvs)
	eqU("match.wildcards", a.Match.Wildcards, b.Match.Wildcards)
	eqU("match.resolved_pairs", a.Match.ResolvedPairs, b.Match.ResolvedPairs)
	eqU("match.cross_window", a.Match.CrossWindow, b.Match.CrossWindow)
	eqU("match.order_violations", a.Match.OrderViolations, b.Match.OrderViolations)
	eqU("match.unmatched", a.Match.Unmatched, b.Match.Unmatched)
	return out
}

func diffOps(pre string, a, b map[string]OpStat, out *[]string) {
	for op, sa := range a {
		sb, ok := b[op]
		if !ok || sa != sb {
			*out = append(*out, fmt.Sprintf("%sops[%s]: %+v != %+v", pre, op, sa, sb))
		}
	}
	for op := range b {
		if _, ok := a[op]; !ok {
			*out = append(*out, fmt.Sprintf("%sops[%s]: missing in first", pre, op))
		}
	}
}

func diffBuckets(pre string, a, b map[int]uint64, out *[]string) {
	for k, va := range a {
		if vb := b[k]; va != vb {
			*out = append(*out, fmt.Sprintf("%sbyte_buckets[%d]: %d != %d", pre, k, va, vb))
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok && vb != 0 {
			*out = append(*out, fmt.Sprintf("%sbyte_buckets[%d]: 0 != %d", pre, k, vb))
		}
	}
}

func closeEnough(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d <= tol
	}
	return d/scale <= tol
}

// String renders a compact human-readable report (chamstat -zstats).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d stored=%d nodes (%d leaves) events=%d ratio=%.1fx\n",
		r.P, r.StoredNodes, r.StoredLeaves, r.Events, r.CompressionRatio)
	fmt.Fprintf(&b, "compute=%v comm=%v wait=%v imbalance=%.2f comm/compute=%.3f\n",
		vtime.Duration(r.ComputeNs), vtime.Duration(r.CommNs), vtime.Duration(r.WaitNs),
		r.LoadImbalance, r.CommRatio)
	m := r.Match
	verdict := "consistent"
	if !m.Consistent {
		verdict = fmt.Sprintf("INCONSISTENT (%d unmatched)", m.Unmatched)
	}
	fmt.Fprintf(&b, "match: sends=%d recvs=%d wildcard=%d paired=%d cross-window=%d order-violations=%d => %s\n",
		m.Sends, m.Recvs, m.Wildcards, m.ResolvedPairs, m.CrossWindow, m.OrderViolations, verdict)
	fmt.Fprintf(&b, "%-4s %6s %6s %10s %12s %12s %12s %6s %6s\n",
		"win", "nodes", "leaves", "events", "compute", "comm", "wait", "imbal", "c/c")
	for i := range r.Windows {
		w := &r.Windows[i]
		fmt.Fprintf(&b, "%-4d %6d %6d %10d %12v %12v %12v %6.2f %6.3f\n",
			w.Index, w.Nodes, w.Leaves, w.Events,
			vtime.Duration(w.ComputeNs), vtime.Duration(w.CommNs), vtime.Duration(w.WaitNs),
			w.LoadImbalance, w.CommRatio)
	}
	return b.String()
}

// TopWaitWindows returns the indices of the n windows with the most
// wait-state time, descending (chamtop -zan).
func (r *Report) TopWaitWindows(n int) []int {
	idx := make([]int, len(r.Windows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		wi, wj := r.Windows[idx[i]].WaitNs, r.Windows[idx[j]].WaitNs
		if wi != wj {
			return wi > wj
		}
		return idx[i] < idx[j]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
