package zan

import (
	"strings"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// twoRankTrace is the hand-checked fixture:
//
//	window 0: Send rank0->rank1 (tag 7, 1024 B, delta 500),
//	          Recv rank1<-rank0 (tag 7, 1024 B, delta 800)
//	window 1: loop(5){ Barrier ranks{0,1} (delta 200) }
func twoRankTrace() *trace.File {
	send := trace.NewLeaf(trace.Event{
		Op: mpi.OpSend, Dest: trace.Absolute(1), Tag: 7, Bytes: 1024,
	}, ranklist.SingleRank(0), 500)
	recv := trace.NewLeaf(trace.Event{
		Op: mpi.OpRecv, Src: trace.Absolute(0), Tag: 7, Bytes: 1024,
	}, ranklist.SingleRank(1), 800)
	barrier := trace.NewLeaf(trace.Event{
		Op: mpi.OpBarrier,
	}, ranklist.FromRL(ranklist.Range(0, 2, 1)), 200)
	return &trace.File{
		P: 2,
		Nodes: []*trace.Node{
			trace.NewLoop(1, []*trace.Node{send, recv}),
			trace.NewLoop(5, []*trace.Node{barrier}),
		},
	}
}

func TestAnalyzeHandChecked(t *testing.T) {
	rep, err := Analyze(twoRankTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Default model: Alpha=1000ns, Beta=0.3125 ns/B.
	// Send(1024B)=1320ns, Recv=1000ns, Barrier over 2 ranks =
	// log2ceil(2) * (PtoP(0) + 500) = 1500ns per rank per iteration.
	if rep.Events != 12 {
		t.Errorf("Events = %d, want 12", rep.Events)
	}
	if got := rep.Windows[0]; got.Events != 2 || got.ComputeNs != 1300 ||
		got.CommNs != 2320 || got.WaitNs != 0 {
		t.Errorf("window 0 = %+v, want events=2 compute=1300 comm=2320 wait=0", got)
	}
	if got := rep.Windows[1]; got.Events != 10 || got.ComputeNs != 2000 ||
		got.CommNs != 15000 {
		t.Errorf("window 1 = %+v, want events=10 compute=2000 comm=15000", got)
	}
	if rep.StoredNodes != 5 || rep.StoredLeaves != 3 {
		t.Errorf("stored = %d nodes / %d leaves, want 5/3", rep.StoredNodes, rep.StoredLeaves)
	}
	if rep.CompressionRatio != 12.0/5.0 {
		t.Errorf("CompressionRatio = %g, want 2.4", rep.CompressionRatio)
	}
	if rep.Ranks[0].Events != 6 || rep.Ranks[1].Events != 6 {
		t.Errorf("rank events = %d/%d, want 6/6", rep.Ranks[0].Events, rep.Ranks[1].Events)
	}
	if rep.Ranks[0].ComputeNs != 1500 || rep.Ranks[1].ComputeNs != 1800 {
		t.Errorf("rank compute = %d/%d, want 1500/1800",
			rep.Ranks[0].ComputeNs, rep.Ranks[1].ComputeNs)
	}
	if rep.Ranks[0].SendBytes != 1024 || rep.Ranks[1].SendBytes != 0 {
		t.Errorf("send bytes = %d/%d, want 1024/0",
			rep.Ranks[0].SendBytes, rep.Ranks[1].SendBytes)
	}
	wantImb := 1800.0 / 1650.0
	if !closeEnough(rep.LoadImbalance, wantImb, 1e-12) {
		t.Errorf("LoadImbalance = %g, want %g", rep.LoadImbalance, wantImb)
	}
	m := rep.Match
	if m.Sends != 1 || m.Recvs != 1 || m.ResolvedPairs != 1 ||
		m.CrossWindow != 0 || m.OrderViolations != 0 || !m.Consistent {
		t.Errorf("match = %+v, want 1 send/recv paired locally, consistent", m)
	}
	if st := rep.Windows[0].Ops["Send"]; st.Events != 1 || st.Bytes != 1024 {
		t.Errorf("window 0 Send op = %+v, want {1, 1024}", st)
	}
	if st := rep.Windows[1].Ops["Barrier"]; st.Events != 10 || st.Bytes != 0 {
		t.Errorf("window 1 Barrier op = %+v, want {10, 0}", st)
	}
	if rep.Windows[1].DeltaCount != 10 || rep.Windows[1].DeltaMeanNs != 200 {
		t.Errorf("window 1 delta = n=%d mean=%g, want n=10 mean=200",
			rep.Windows[1].DeltaCount, rep.Windows[1].DeltaMeanNs)
	}
}

func TestWaitStateSkew(t *testing.T) {
	// A barrier whose delta histogram spreads {100, 300}: mean 200, max
	// 300, so each occurrence carries 100 ns of modeled wait.
	b := trace.NewLeaf(trace.Event{Op: mpi.OpBarrier},
		ranklist.FromRL(ranklist.Range(0, 2, 1)), 100)
	b.Delta.Add(300)
	f := &trace.File{P: 2, Nodes: []*trace.Node{b}}
	rep, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WaitNs != 200 {
		t.Errorf("WaitNs = %d, want 200 (skew 100 x 2 ranks)", rep.WaitNs)
	}
	// Sends never accrue wait even with skewed deltas.
	s := trace.NewLeaf(trace.Event{Op: mpi.OpSend, Dest: trace.Absolute(1), Bytes: 8},
		ranklist.SingleRank(0), 100)
	s.Delta.Add(300)
	rep, err = Analyze(&trace.File{P: 2, Nodes: []*trace.Node{s}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WaitNs != 0 {
		t.Errorf("send WaitNs = %d, want 0", rep.WaitNs)
	}
}

func TestExpandOracleBitEqual(t *testing.T) {
	f := twoRankTrace()
	fast, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Analyze(f, Options{Expand: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(fast, slow, 1e-9); len(d) != 0 {
		t.Fatalf("closed-form vs expansion oracle:\n%s", strings.Join(d, "\n"))
	}
}

func TestZeroIterationLoop(t *testing.T) {
	// A zero-trip loop represents no events: its leaves must not leak
	// into any metric, matching the oracle (which never reaches them).
	dead := trace.NewLeaf(trace.Event{Op: mpi.OpSend, Dest: trace.Absolute(1), Bytes: 64},
		ranklist.SingleRank(0), 100)
	live := trace.NewLeaf(trace.Event{Op: mpi.OpBarrier},
		ranklist.FromRL(ranklist.Range(0, 2, 1)), 50)
	f := &trace.File{P: 2, Nodes: []*trace.Node{
		trace.NewLoop(0, []*trace.Node{dead}),
		live,
	}}
	fast, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Events != 2 || fast.Match.Sends != 0 {
		t.Errorf("zero-trip loop leaked: events=%d sends=%d", fast.Events, fast.Match.Sends)
	}
	w := fast.Windows[0]
	if w.Events != 0 || len(w.Ops) != 0 || w.LoadImbalance != 0 || w.CommRatio != 0 {
		t.Errorf("empty window not inert: %+v", w)
	}
	slow, err := Analyze(f, Options{Expand: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(fast, slow, 1e-9); len(d) != 0 {
		t.Fatalf("zero-trip loop diverges from oracle:\n%s", strings.Join(d, "\n"))
	}
}

func TestEmptyTrace(t *testing.T) {
	rep, err := Analyze(&trace.File{P: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 0 || len(rep.Windows) != 0 || len(rep.Ranks) != 4 {
		t.Errorf("empty trace report: %+v", rep)
	}
	if rep.CompressionRatio != 0 || rep.CommRatio != 0 || rep.LoadImbalance != 0 {
		t.Errorf("empty trace ratios must be 0, got %g/%g/%g",
			rep.CompressionRatio, rep.CommRatio, rep.LoadImbalance)
	}
	if !rep.Match.Consistent {
		t.Error("empty trace must be match-consistent")
	}
	if s := rep.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := Analyze(&trace.File{P: 0}, Options{}); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestCrossWindowMatchAndOrderViolation(t *testing.T) {
	// Recv in window 0, its Send only in window 1: the pair closes
	// across windows, and — windows being marker-barrier aligned — the
	// receive observed before the send is a happens-before violation.
	recv := trace.NewLeaf(trace.Event{
		Op: mpi.OpRecv, Src: trace.Absolute(0), Tag: 3, Bytes: 16,
	}, ranklist.SingleRank(1), 10)
	send := trace.NewLeaf(trace.Event{
		Op: mpi.OpSend, Dest: trace.Absolute(1), Tag: 3, Bytes: 16,
	}, ranklist.SingleRank(0), 10)
	f := &trace.File{P: 2, Nodes: []*trace.Node{recv, send}}
	rep, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Match
	if m.ResolvedPairs != 1 || m.CrossWindow != 1 {
		t.Errorf("pairs=%d cross=%d, want 1/1", m.ResolvedPairs, m.CrossWindow)
	}
	if m.OrderViolations != 1 {
		t.Errorf("OrderViolations = %d, want 1", m.OrderViolations)
	}
	if !m.Consistent {
		t.Error("tag conservation holds, report must stay consistent")
	}
	if rep.Windows[0].LocalUnmatched != 1 || rep.Windows[1].LocalUnmatched != 1 {
		t.Errorf("LocalUnmatched = %d/%d, want 1/1",
			rep.Windows[0].LocalUnmatched, rep.Windows[1].LocalUnmatched)
	}
}

func TestInconsistentTrace(t *testing.T) {
	// Two sends, one recv on the same tag: conservation fails by 1.
	send := trace.NewLeaf(trace.Event{
		Op: mpi.OpSend, Dest: trace.Absolute(1), Tag: 9, Bytes: 4,
	}, ranklist.SingleRank(0), 10)
	f := &trace.File{P: 2, Nodes: []*trace.Node{
		trace.NewLoop(2, []*trace.Node{send}),
		trace.NewLeaf(trace.Event{
			Op: mpi.OpRecv, Src: trace.Absolute(0), Tag: 9, Bytes: 4,
		}, ranklist.SingleRank(1), 10),
	}}
	rep, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Match
	if m.Consistent || m.Unmatched != 1 || m.UnmatchedByTag[9] != 1 {
		t.Errorf("match = %+v, want 1 unmatched send on tag 9", m)
	}
	if !strings.Contains(rep.String(), "INCONSISTENT") {
		t.Error("String() must flag inconsistency")
	}
}

func TestWildcardRecvCountedNotPaired(t *testing.T) {
	recv := trace.NewLeaf(trace.Event{
		Op: mpi.OpRecv, Src: trace.Endpoint{Kind: trace.EPAnySource}, Tag: 1, Bytes: 4,
	}, ranklist.SingleRank(1), 10)
	send := trace.NewLeaf(trace.Event{
		Op: mpi.OpSend, Dest: trace.Absolute(1), Tag: 1, Bytes: 4,
	}, ranklist.SingleRank(0), 10)
	rep, err := Analyze(&trace.File{P: 2, Nodes: []*trace.Node{
		trace.NewLoop(1, []*trace.Node{send, recv}),
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Match
	if m.Wildcards != 1 || m.ResolvedPairs != 0 {
		t.Errorf("match = %+v, want 1 wildcard, 0 directed pairs", m)
	}
	if !m.Consistent {
		t.Error("wildcard recv still conserves its tag")
	}
}

func TestDiffDetectsMismatches(t *testing.T) {
	f := twoRankTrace()
	a, _ := Analyze(f, Options{})
	b, _ := Analyze(f, Options{})
	if d := Diff(a, b, 0); len(d) != 0 {
		t.Fatalf("identical reports diff: %v", d)
	}
	b.Windows[1].CommNs++
	b.Ranks[0].Events++
	b.Match.Sends++
	d := Diff(a, b, 0)
	if len(d) != 3 {
		t.Fatalf("want 3 mismatches, got %v", d)
	}
}

func TestTopWaitWindows(t *testing.T) {
	r := &Report{Windows: []Window{
		{Index: 0, WaitNs: 5}, {Index: 1, WaitNs: 50}, {Index: 2, WaitNs: 20},
	}}
	if got := r.TopWaitWindows(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("TopWaitWindows(2) = %v, want [1 2]", got)
	}
	if got := r.TopWaitWindows(10); len(got) != 3 {
		t.Errorf("TopWaitWindows(10) returned %d entries, want 3", len(got))
	}
}

func TestSendrecvContributesBothSides(t *testing.T) {
	sr := trace.NewLeaf(trace.Event{
		Op: mpi.OpSendrecv, Dest: trace.Relative(1), Src: trace.Relative(-1),
		Tag: 2, Bytes: 32,
	}, ranklist.FromRL(ranklist.Range(0, 4, 1)), 10)
	rep, err := Analyze(&trace.File{P: 4, Nodes: []*trace.Node{sr}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Match
	if m.Sends != 4 || m.Recvs != 4 {
		t.Errorf("sendrecv sides = %d/%d, want 4/4", m.Sends, m.Recvs)
	}
	// Relative ±1 endpoints wrap mod P into a ring: every directed
	// channel pairs inside the window.
	if m.ResolvedPairs != 4 || !m.Consistent {
		t.Errorf("match = %+v, want 4 ring pairs, consistent", m)
	}
	// Cost model prices both the send and the recv half; wait counts.
	if rep.CommNs == 0 || rep.WaitNs != 0 {
		t.Errorf("comm=%d wait=%d; sendrecv must price comm, single-sample delta has no skew",
			rep.CommNs, rep.WaitNs)
	}
}

func BenchmarkZanAnalyze(b *testing.B) {
	f := twoRankTrace()
	// Make the compressed representation non-trivially nested.
	f.Nodes = append(f.Nodes, trace.NewLoop(1000, []*trace.Node{
		trace.NewLoop(100, []*trace.Node{
			trace.NewLeaf(trace.Event{Op: mpi.OpAllreduce, Bytes: 8},
				ranklist.FromRL(ranklist.Range(0, 2, 1)), 40),
		}),
	}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(f, Options{Model: vtime.Default()}); err != nil {
			b.Fatal(err)
		}
	}
}
