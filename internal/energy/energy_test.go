package energy

import (
	"math"
	"testing"

	"chameleon/internal/vtime"
)

func TestJoules(t *testing.T) {
	if got := Joules(10, 2*vtime.Second); got != 20 {
		t.Fatalf("joules = %v", got)
	}
	if Joules(10, 0) != 0 {
		t.Fatalf("zero duration")
	}
}

func TestEstimate(t *testing.T) {
	m := Model{PActive: 10, PIdle: 4, PDVFS: 1}
	usage := []RankUsage{
		{Active: 2 * vtime.Second, Wall: 3 * vtime.Second},                                 // 1s idle
		{Active: 1 * vtime.Second, Wall: 3 * vtime.Second, TracingSaved: 1 * vtime.Second}, // 2s idle
	}
	rep := Estimate(m, usage)
	if math.Abs(rep.ActiveJ-30) > 1e-9 { // (2+1)s * 10W
		t.Fatalf("active = %v", rep.ActiveJ)
	}
	if math.Abs(rep.IdleJ-12) > 1e-9 { // (1+2)s * 4W
		t.Fatalf("idle = %v", rep.IdleJ)
	}
	if math.Abs(rep.TotalJ-42) > 1e-9 {
		t.Fatalf("total = %v", rep.TotalJ)
	}
	if math.Abs(rep.DVFSSavedJ-3) > 1e-9 { // 1s * (4-1)W
		t.Fatalf("dvfs = %v", rep.DVFSSavedJ)
	}
	if rep.String() == "" {
		t.Fatalf("empty string")
	}
}

func TestEstimateClampsNegativeIdle(t *testing.T) {
	// Active time exceeding the wall clock (overlapping charges) must
	// not produce negative idle energy.
	m := Default()
	rep := Estimate(m, []RankUsage{{Active: 5 * vtime.Second, Wall: 3 * vtime.Second}})
	if rep.IdleJ != 0 {
		t.Fatalf("idle = %v", rep.IdleJ)
	}
}

func TestUsageFromLedgers(t *testing.T) {
	l0, l1 := &vtime.Ledger{}, &vtime.Ledger{}
	l0.Charge(vtime.CatApp, 2*vtime.Second)
	l0.Charge(vtime.CatIntra, 1*vtime.Second)
	l1.Charge(vtime.CatApp, 1*vtime.Second)
	clocks := []vtime.Time{vtime.Time(4 * vtime.Second), vtime.Time(4 * vtime.Second)}
	saved := []vtime.Duration{0, 500 * vtime.Millisecond}
	usage := UsageFromLedgers(clocks, []*vtime.Ledger{l0, l1}, saved)
	if usage[0].Active != 3*vtime.Second || usage[0].TracingSaved != 0 {
		t.Fatalf("rank0: %+v", usage[0])
	}
	if usage[1].Active != 1*vtime.Second || usage[1].TracingSaved != 500*vtime.Millisecond {
		t.Fatalf("rank1: %+v", usage[1])
	}
	// nil saved slice works.
	usage = UsageFromLedgers(clocks, []*vtime.Ledger{l0, l1}, nil)
	if usage[1].TracingSaved != 0 {
		t.Fatalf("nil saved")
	}
}

func TestSavedTracingWork(t *testing.T) {
	m := vtime.Default()
	if SavedTracingWork(m, 100, 100) != 0 || SavedTracingWork(m, 50, 100) != 0 {
		t.Fatalf("no saving expected")
	}
	if got := SavedTracingWork(m, 1000, 0); got != 1000*m.CompressPerEvent {
		t.Fatalf("saving = %v", got)
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := Default()
	if !(m.PActive > m.PIdle && m.PIdle > m.PDVFS && m.PDVFS > 0) {
		t.Fatalf("power ordering: %+v", m)
	}
}
