// Package energy estimates the energy impact of clustered tracing — the
// paper's stated future work: "We currently plan to leverage the idle
// time for non representative processes at interim execution points by
// utilizing dynamic voltage frequency scaling (DVFS). This would reduce
// energy consumption and make clustered tracing energy efficient as
// well."
//
// The model is deliberately simple and standard: each rank draws
// PActive while doing application or tracing work and PIdle while
// blocked; a rank whose tracing is disabled during Chameleon's lead
// phase can additionally be dropped to a DVFS low-power state for the
// tracing work it no longer performs. Feeding it the virtual-time
// ledgers of a traced run yields the per-run energy of the tracing
// layer and the saving Chameleon's P-K idle ranks enable.
package energy

import (
	"fmt"

	"chameleon/internal/vtime"
)

// Model holds the power parameters (watts) of one node.
type Model struct {
	// PActive is the per-rank power while executing (compute or
	// tracing-layer work).
	PActive float64
	// PIdle is the per-rank power while blocked waiting.
	PIdle float64
	// PDVFS is the per-rank power in the lowered frequency/voltage state
	// a non-lead rank can enter while its tracing is off.
	PDVFS float64
}

// Default returns a model with typical HPC-node ballpark figures
// (per-core share of a 2-way Opteron 6128 node, the paper's testbed).
func Default() Model {
	return Model{PActive: 12.0, PIdle: 6.0, PDVFS: 3.5}
}

// Joules converts (watts, virtual duration) to joules.
func Joules(watts float64, d vtime.Duration) float64 {
	return watts * d.Seconds()
}

// RankUsage summarizes one rank's run for the energy model.
type RankUsage struct {
	// Active is the rank's busy virtual time (application + tracing).
	Active vtime.Duration
	// Wall is the rank's total virtual time (makespan on its clock).
	Wall vtime.Duration
	// TracingSaved is tracing-layer work this rank avoided because
	// clustering disabled its tracing (a non-lead's would-have-been
	// intra-compression time).
	TracingSaved vtime.Duration
}

// Report is the energy breakdown of one traced run.
type Report struct {
	// ActiveJ/IdleJ split the run's baseline energy.
	ActiveJ float64
	IdleJ   float64
	// TotalJ = ActiveJ + IdleJ.
	TotalJ float64
	// DVFSSavedJ is the additional energy a DVFS policy would recover by
	// down-clocking non-lead ranks for their avoided tracing work
	// (PIdle -> PDVFS over the saved span).
	DVFSSavedJ float64
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("energy{active=%.1fJ idle=%.1fJ total=%.1fJ dvfsSaved=%.1fJ}",
		r.ActiveJ, r.IdleJ, r.TotalJ, r.DVFSSavedJ)
}

// Estimate computes the energy of a run from per-rank usage.
func Estimate(m Model, usage []RankUsage) Report {
	var rep Report
	for _, u := range usage {
		idle := u.Wall - u.Active
		if idle < 0 {
			idle = 0
		}
		rep.ActiveJ += Joules(m.PActive, u.Active)
		rep.IdleJ += Joules(m.PIdle, idle)
		rep.DVFSSavedJ += Joules(m.PIdle-m.PDVFS, u.TracingSaved)
	}
	rep.TotalJ = rep.ActiveJ + rep.IdleJ
	return rep
}

// UsageFromLedgers derives RankUsage from a run's virtual clocks and
// ledgers. tracingSaved gives each rank's avoided tracing work (zero for
// baseline tracers; for Chameleon, the per-event costs the disabled
// non-lead ranks skipped).
func UsageFromLedgers(clocks []vtime.Time, ledgers []*vtime.Ledger, tracingSaved []vtime.Duration) []RankUsage {
	usage := make([]RankUsage, len(clocks))
	for r := range usage {
		var active vtime.Duration
		for _, c := range vtime.Categories() {
			active += ledgers[r].Spent(c)
		}
		usage[r] = RankUsage{Active: active, Wall: vtime.Duration(clocks[r])}
		if tracingSaved != nil && r < len(tracingSaved) {
			usage[r].TracingSaved = tracingSaved[r]
		}
	}
	return usage
}

// SavedTracingWork estimates the tracing work a disabled rank avoided:
// the per-event compression cost over the events it observed but did not
// record.
func SavedTracingWork(m vtime.CostModel, observed, recorded uint64) vtime.Duration {
	if observed <= recorded {
		return 0
	}
	return vtime.Duration(observed-recorded) * m.CompressPerEvent
}
