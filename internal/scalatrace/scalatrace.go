// Package scalatrace implements the baseline tracer the paper compares
// against: ScalaTrace V2 without clustering. Every rank records and
// intra-compresses its full event stream; at MPI_Finalize all P ranks
// consolidate their traces in a reduction over a radix tree rooted at
// rank 0 — the O(n² log P) step whose cost Chameleon eliminates.
package scalatrace

import (
	"sync"

	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// Collector receives the run's outputs (shared across rank goroutines).
type Collector struct {
	mu sync.Mutex
	// Global is the merged global trace (held by rank 0).
	Global []*trace.Node
	// AllocBytes is each rank's cumulative trace allocation.
	AllocBytes []int
	// Events is the total number of dynamic events recorded.
	Events uint64
}

// NewCollector sizes a collector for p ranks.
func NewCollector(p int) *Collector {
	return &Collector{AllocBytes: make([]int, p)}
}

// File packages the collected global trace for the replayer.
func (c *Collector) File(p int, benchmark string, filter bool) *trace.File {
	f := &trace.File{
		P:         p,
		Benchmark: benchmark,
		Tracer:    "scalatrace",
		Filter:    filter,
		Nodes:     c.Global,
	}
	f.Sites = f.SiteTable()
	return f
}

// Options configures the baseline tracer.
type Options struct {
	// SigMode and Filter mirror the Chameleon settings so traces are
	// comparable (signatures are still accumulated even though the
	// baseline never clusters).
	SigMode tracer.SigMode
	Filter  bool
}

// Tracer is the per-rank interposer.
type Tracer struct {
	rec *tracer.Recorder
	col *Collector
	pre vtime.Time
}

// New returns a hook factory for mpi.Config.Hooks.
func New(col *Collector, opt Options) func(p *mpi.Proc) mpi.Interposer {
	return func(p *mpi.Proc) mpi.Interposer {
		return &Tracer{rec: tracer.NewRecorder(p, opt.SigMode, opt.Filter), col: col}
	}
}

// Pre implements mpi.Interposer.
func (t *Tracer) Pre(ci *mpi.CallInfo) { t.pre = t.rec.Proc.Clock.Now() }

// Post implements mpi.Interposer.
func (t *Tracer) Post(ci *mpi.CallInfo) {
	// Chameleon's marker barrier is tool traffic, not application
	// behavior; no tracer records it (the baseline ignores it entirely).
	if ci.Op == mpi.OpBarrier && ci.Comm == mpi.CommMarker {
		return
	}
	if ci.Op == mpi.OpFinalize {
		return
	}
	t.rec.Record(ci, t.pre, 1)
}

// Finalize implements mpi.Interposer: the P-way radix-tree inter-node
// compression.
func (t *Tracer) Finalize() {
	p := t.rec.Proc
	members := make([]int, p.Size())
	for i := range members {
		members[i] = i
	}
	mine := t.rec.TakePartial()
	global := tracer.MergeOverTree(p, members, mine, t.rec.Comp.Filter,
		tracer.MergeTag(0), vtime.CatInterComp)

	t.col.mu.Lock()
	defer t.col.mu.Unlock()
	t.col.AllocBytes[p.Rank()] = t.rec.AllocBytes
	t.col.Events += t.rec.Events
	if p.Rank() == 0 {
		// Charge the final trace write-out.
		p.ChargeOverhead(vtime.CatInterComp,
			vtime.Duration(trace.SizeBytes(global))*p.Model().WritePerByte)
		t.col.Global = global
	}
}
