package scalatrace

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

func ring(steps int) func(*mpi.Proc) {
	return func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < steps; it++ {
			p.Compute(50 * vtime.Microsecond)
			w.Sendrecv(next, 1, 128, nil, prev, 1)
		}
	}
}

func TestGlobalTraceCoverage(t *testing.T) {
	const P = 8
	col := NewCollector(P)
	res, err := mpi.Run(mpi.Config{P: P, Hooks: New(col, Options{})}, ring(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Global) == 0 {
		t.Fatalf("no global trace")
	}
	// All ranks' events merge into a single loop covering everyone.
	for r := 0; r < P; r++ {
		found := false
		var walk func(seq []*trace.Node)
		walk = func(seq []*trace.Node) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body)
				} else if n.Ranks.Contains(r) {
					found = true
				}
			}
		}
		walk(col.Global)
		if !found {
			t.Fatalf("rank %d missing from global trace", r)
		}
	}
	if col.Events != P*50 {
		t.Fatalf("events = %d", col.Events)
	}
	// Every rank allocated trace space (no clustering savings here).
	for r, b := range col.AllocBytes {
		if b <= 0 {
			t.Fatalf("rank %d allocated %d", r, b)
		}
	}
	// Inter-node compression cost was charged.
	agg := res.AggregateLedger()
	if agg.Spent(vtime.CatInterComp) <= 0 {
		t.Fatalf("no intercomp cost")
	}
	if agg.Spent(vtime.CatCluster) != 0 {
		t.Fatalf("baseline charged clustering")
	}
}

func TestIgnoresMarkers(t *testing.T) {
	const P = 4
	col := NewCollector(P)
	_, err := mpi.Run(mpi.Config{P: P, Hooks: New(col, Options{})}, func(p *mpi.Proc) {
		p.World().Barrier()
		p.MarkerComm().Barrier() // must not be recorded
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.DynamicEvents(col.Global); got != 1 {
		t.Fatalf("events = %d, want 1 (the world barrier only)", got)
	}
}

func TestFilePackaging(t *testing.T) {
	col := NewCollector(2)
	if _, err := mpi.Run(mpi.Config{P: 2, Hooks: New(col, Options{})}, ring(5)); err != nil {
		t.Fatal(err)
	}
	f := col.File(2, "RING", false)
	if f.P != 2 || f.Tracer != "scalatrace" || f.Clustered || f.Benchmark != "RING" {
		t.Fatalf("file metadata: %+v", f)
	}
}
