// Package fleet glues the mpi TCP transport to the tracing stack: it
// registers wire codecs for the payload types the tracers ship between
// ranks (compressed trace sequences, cluster candidate lists — types
// the mpi package cannot import without a cycle), and parses the
// chamrun -ranks/-join flags into a connected transport.
//
// A multi-process run is N invocations of the same binary:
//
//	chamrun -transport=tcp -join=:9307 -ranks=0..3  ...
//	chamrun -transport=tcp -join=:9307 -ranks=4..7  ...
//
// Whichever process binds the join address coordinates the rendezvous;
// the rest dial it. Every process must be started with the same
// benchmark, seed, tracer, and fault plan — the config fingerprint is
// checked at rendezvous so a mismatched fleet fails fast instead of
// diverging.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"chameleon/internal/cluster"
	"chameleon/internal/mpi"
	"chameleon/internal/trace"
)

func init() {
	// Compressed trace sequences (inter-node merge traffic). The trace
	// binary codec is the wire format: its file-local site table plus
	// decode-time re-interning is exactly the cross-process story — a
	// receiving process re-interns each call site into its own table
	// and the PC-derived Stack signatures stay globally stable, so
	// Event.Equal keeps working across machines.
	mpi.RegisterPayloadCodec(mpi.PayloadCodec{
		Name: "trace.nodes",
		Zero: []*trace.Node{},
		Encode: func(v any) ([]byte, error) {
			f := &trace.File{P: 1, Nodes: v.([]*trace.Node)}
			var buf bytes.Buffer
			if err := f.WriteBinary(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			f, err := trace.ReadBinary(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return f.Nodes, nil
		},
	})
	// Cluster candidate lists (Algorithm 2's merge tree). Plain JSON:
	// every Item field marshals, and signature triples are value types.
	mpi.RegisterPayloadCodec(mpi.PayloadCodec{
		Name: "cluster.items",
		Zero: []cluster.Item{},
		Encode: func(v any) ([]byte, error) {
			return json.Marshal(v.([]cluster.Item))
		},
		Decode: func(data []byte) (any, error) {
			var items []cluster.Item
			if err := json.Unmarshal(data, &items); err != nil {
				return nil, err
			}
			if items == nil {
				items = []cluster.Item{}
			}
			return items, nil
		},
	})
}

// ParseRanks parses a -ranks value: "a..b" (inclusive) or a single
// rank "a".
func ParseRanks(s string) (lo, hi int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, fmt.Errorf("fleet: empty rank range")
	}
	if lo64, err := strconv.Atoi(s); err == nil {
		return lo64, lo64, nil
	}
	a, b, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("fleet: rank range %q is not \"lo..hi\"", s)
	}
	if lo, err = strconv.Atoi(strings.TrimSpace(a)); err != nil {
		return 0, 0, fmt.Errorf("fleet: bad rank range start %q", a)
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(b)); err != nil {
		return 0, 0, fmt.Errorf("fleet: bad rank range end %q", b)
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("fleet: invalid rank range %d..%d", lo, hi)
	}
	return lo, hi, nil
}

// Options parameterizes Connect.
type Options struct {
	// Join is the rendezvous address (required).
	Join string
	// Ranks is the inclusive world-rank range hosted by this process,
	// in "lo..hi" (or single "r") form.
	Ranks string
	// P is the world size.
	P int
	// Session optionally names the fleet session (live telemetry);
	// empty lets the coordinator assign one.
	Session string
	// Fingerprint summarizes the run config; all members must match.
	Fingerprint string
	// ExitOnCrash kills this process once all its ranks crash-stop.
	ExitOnCrash bool
	// OnCrashExit flushes journals and telemetry before the self-kill.
	OnCrashExit func()
	// Logf receives transport progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Connect parses the rank range, performs the fleet rendezvous, and
// returns the connected transport. The transport is ready to pass as
// chameleon.Config.Transport; Info describes this process's place in
// the fleet.
func Connect(o Options) (*mpi.TCPTransport, mpi.FleetInfo, error) {
	lo, hi, err := ParseRanks(o.Ranks)
	if err != nil {
		return nil, mpi.FleetInfo{}, err
	}
	if o.Join == "" {
		return nil, mpi.FleetInfo{}, fmt.Errorf("fleet: -join address required for the tcp transport")
	}
	tr, err := mpi.NewTCPTransport(mpi.TCPOptions{
		Join:        o.Join,
		RankLo:      lo,
		RankHi:      hi,
		P:           o.P,
		Session:     o.Session,
		Fingerprint: o.Fingerprint,
		ExitOnCrash: o.ExitOnCrash,
		OnCrashExit: o.OnCrashExit,
		Logf:        o.Logf,
	})
	if err != nil {
		return nil, mpi.FleetInfo{}, err
	}
	return tr, tr.Info(), nil
}
