package fleet

import (
	"testing"

	"chameleon/internal/cluster"
	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
)

func TestParseRanks(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		err    bool
	}{
		{in: "0..3", lo: 0, hi: 3},
		{in: "4..7", lo: 4, hi: 7},
		{in: " 2 .. 5 ", lo: 2, hi: 5},
		{in: "6", lo: 6, hi: 6},
		{in: "0..0", lo: 0, hi: 0},
		{in: "", err: true},
		{in: "3..1", err: true},
		{in: "-1..2", err: true},
		{in: "a..b", err: true},
		{in: "1-4", err: true},
		{in: "1..", err: true},
	}
	for _, tc := range cases {
		lo, hi, err := ParseRanks(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseRanks(%q) = %d..%d, want error", tc.in, lo, hi)
			}
			continue
		}
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Errorf("ParseRanks(%q) = %d..%d, %v; want %d..%d", tc.in, lo, hi, err, tc.lo, tc.hi)
		}
	}
}

// TestTraceNodesCodec: the merge-traffic payload codec must round-trip
// a compressed sequence through the binary wire format — Event equality
// (the merge predicate) has to survive the hop to another process.
func TestTraceNodesCodec(t *testing.T) {
	ev := trace.Event{
		Op:    mpi.OpSend,
		Stack: sig.FromPCs([]uintptr{0x1000, 0x2000}),
		Dest:  trace.Relative(1),
		Tag:   7,
		Bytes: 4096,
	}
	nodes := []*trace.Node{trace.NewLeaf(ev, ranklist.SingleRank(0), 1500)}

	codec, ok := mpi.LookupPayloadCodec("trace.nodes")
	if !ok {
		t.Fatal("trace.nodes codec not registered")
	}
	data, err := codec.Encode(nodes)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.([]*trace.Node)
	if !ok {
		t.Fatalf("decoded %T, want []*trace.Node", back)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d nodes, want 1", len(got))
	}
	if !got[0].Ev.Equal(nodes[0].Ev) {
		t.Errorf("event identity lost in transit: %+v vs %+v", got[0].Ev, nodes[0].Ev)
	}
	if got[0].Ranks.String() != nodes[0].Ranks.String() {
		t.Errorf("ranks = %s, want %s", got[0].Ranks, nodes[0].Ranks)
	}
	if got[0].Delta == nil || got[0].Delta.Count() != 1 {
		t.Errorf("delta histogram lost in transit: %+v", got[0].Delta)
	}
}

func TestClusterItemsCodec(t *testing.T) {
	codec, ok := mpi.LookupPayloadCodec("cluster.items")
	if !ok {
		t.Fatal("cluster.items codec not registered")
	}
	items := []cluster.Item{{
		Lead:  3,
		Ranks: ranklist.SingleRank(3),
		Sig:   sig.Triple{CallPath: 1, Src: 2, Dest: 3},
	}}
	data, err := codec.Encode(items)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.([]cluster.Item)
	if len(got) != 1 || got[0].Lead != 3 || got[0].Sig != items[0].Sig ||
		got[0].Ranks.String() != items[0].Ranks.String() {
		t.Errorf("round-trip = %+v, want %+v", got, items)
	}

	// nil round-trips to an empty (non-nil) slice so receivers can
	// range over it without a nil check.
	data, err = codec.Encode([]cluster.Item(nil))
	if err != nil {
		t.Fatal(err)
	}
	back, err = codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.([]cluster.Item); got == nil || len(got) != 0 {
		t.Errorf("nil round-trip = %#v, want empty non-nil slice", got)
	}
}
