// Package acurdion implements the ACURDION baseline of Table III:
// signature-based clustering performed once, inside MPI_Finalize, as in
// the authors' pre-Chameleon work. Every rank traces the entire run (so
// no process ever saves trace space — Table IV's comparison point), and
// at Finalize the ranks cluster on their whole-run signature triples and
// merge only the K lead traces. ACURDION therefore pays one clustering
// and one K-way merge, where Chameleon pays r of each — which is why
// Table III shows Chameleon's overhead at roughly twice ACURDION's under
// the maximum marker-call count, while both stay orders of magnitude
// below plain ScalaTrace.
package acurdion

import (
	"sync"

	"chameleon/internal/cluster"
	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// Options configures the baseline.
type Options struct {
	K       int
	Algo    cluster.Algorithm
	SigMode tracer.SigMode
	Filter  bool
}

// Collector receives the run's outputs.
type Collector struct {
	mu sync.Mutex
	// Global is the clustered global trace (held by rank 0).
	Global []*trace.Node
	// AllocBytes is each rank's cumulative trace allocation.
	AllocBytes []int
	// LeadRanks is the selected lead set.
	LeadRanks []int
}

// NewCollector sizes a collector for p ranks.
func NewCollector(p int) *Collector {
	return &Collector{AllocBytes: make([]int, p)}
}

// File packages the global trace for the replayer.
func (c *Collector) File(p int, benchmark string, filter bool) *trace.File {
	f := &trace.File{
		P:         p,
		Benchmark: benchmark,
		Tracer:    "acurdion",
		Clustered: true,
		Filter:    filter,
		Nodes:     c.Global,
	}
	f.Sites = f.SiteTable()
	return f
}

// Tracer is the per-rank interposer.
type Tracer struct {
	rec *tracer.Recorder
	opt Options
	col *Collector
	pre vtime.Time
}

// New returns a hook factory for mpi.Config.Hooks.
func New(col *Collector, opt Options) func(p *mpi.Proc) mpi.Interposer {
	if opt.K <= 0 {
		opt.K = 9
	}
	return func(p *mpi.Proc) mpi.Interposer {
		return &Tracer{rec: tracer.NewRecorder(p, opt.SigMode, opt.Filter), opt: opt, col: col}
	}
}

// Pre implements mpi.Interposer.
func (t *Tracer) Pre(ci *mpi.CallInfo) { t.pre = t.rec.Proc.Clock.Now() }

// Post implements mpi.Interposer.
func (t *Tracer) Post(ci *mpi.CallInfo) {
	if ci.Op == mpi.OpBarrier && ci.Comm == mpi.CommMarker {
		return // markers exist for Chameleon only
	}
	if ci.Op == mpi.OpFinalize {
		return
	}
	t.rec.Record(ci, t.pre, 1)
}

// Finalize implements mpi.Interposer: one clustering over whole-run
// signatures, then one merge over the K lead traces.
func (t *Tracer) Finalize() {
	p := t.rec.Proc
	self := cluster.Item{
		Lead:  p.Rank(),
		Ranks: ranklist.SingleRank(p.Rank()),
		Sig:   t.rec.Win.Triple(),
	}
	top := cluster.DistributedSelect(p, self, t.opt.K, t.opt.Algo,
		1<<52, vtime.CatCluster)

	leads := make([]int, 0, len(top))
	isLead := false
	variant := false
	var myCluster ranklist.List
	for _, it := range top {
		leads = append(leads, it.Lead)
		if it.Lead == p.Rank() {
			isLead = true
			myCluster = it.Ranks
			variant = it.Variant
		}
	}

	mine := t.rec.TakePartial()
	var global []*trace.Node
	if isLead {
		if variant {
			trace.ResolveEndpoints(mine, p.Rank(), p.Size())
		}
		if !myCluster.Empty() {
			trace.RewriteRanks(mine, myCluster)
		}
		global = tracer.MergeOverTree(p, leads, mine, t.opt.Filter,
			tracer.MergeTag(1<<20), vtime.CatInterComp)
	}

	// Route to rank 0 when the lead-tree root is another rank.
	const tag = 1<<52 | 1
	rootLead := leads[0]
	switch {
	case rootLead == p.Rank() && rootLead != 0:
		p.World().RawSend(0, tag, trace.SizeBytes(global), global)
		global = nil
	case p.Rank() == 0 && rootLead != 0:
		msg := p.World().RawRecv(rootLead, tag)
		global, _ = msg.Payload.([]*trace.Node)
	}

	t.col.mu.Lock()
	defer t.col.mu.Unlock()
	t.col.AllocBytes[p.Rank()] = t.rec.AllocBytes
	if p.Rank() == 0 {
		p.ChargeOverhead(vtime.CatInterComp,
			vtime.Duration(trace.SizeBytes(global))*p.Model().WritePerByte)
		t.col.Global = global
		t.col.LeadRanks = leads
	}
}
