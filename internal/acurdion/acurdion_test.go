package acurdion

import (
	"testing"

	"chameleon/internal/cluster"
	"chameleon/internal/mpi"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

func ring(steps int) func(*mpi.Proc) {
	return func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < steps; it++ {
			p.Compute(50 * vtime.Microsecond)
			w.Sendrecv(next, 1, 128, nil, prev, 1)
		}
	}
}

func TestFinalizeClustering(t *testing.T) {
	const P = 8
	col := NewCollector(P)
	res, err := mpi.Run(mpi.Config{P: P, Hooks: New(col, Options{K: 3, Algo: cluster.KFarthest})}, ring(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.LeadRanks) != 3 {
		t.Fatalf("leads = %v", col.LeadRanks)
	}
	if len(col.Global) == 0 {
		t.Fatalf("no global trace")
	}
	// Cluster rank lists cover every rank.
	for r := 0; r < P; r++ {
		covered := false
		var walk func(seq []*trace.Node)
		walk = func(seq []*trace.Node) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body)
				} else if n.Ranks.Contains(r) {
					covered = true
				}
			}
		}
		walk(col.Global)
		if !covered {
			t.Fatalf("rank %d not covered", r)
		}
	}
	// ACURDION pays clustering once but full tracing everywhere: every
	// rank allocated trace space (Table IV's comparison point).
	for r, b := range col.AllocBytes {
		if b <= 0 {
			t.Fatalf("rank %d allocated %d", r, b)
		}
	}
	agg := res.AggregateLedger()
	if agg.Spent(vtime.CatCluster) <= 0 || agg.Spent(vtime.CatInterComp) <= 0 {
		t.Fatalf("cost categories empty: %v %v",
			agg.Spent(vtime.CatCluster), agg.Spent(vtime.CatInterComp))
	}
}

func TestFileMetadata(t *testing.T) {
	col := NewCollector(4)
	if _, err := mpi.Run(mpi.Config{P: 4, Hooks: New(col, Options{K: 2})}, ring(10)); err != nil {
		t.Fatal(err)
	}
	f := col.File(4, "RING", false)
	if !f.Clustered || f.Tracer != "acurdion" {
		t.Fatalf("metadata: %+v", f)
	}
}
