package trace

import (
	"bytes"
	"slices"
	"strings"
	"testing"

	"chameleon/internal/ranklist"
)

func sampleFile() *File {
	any := leaf(3)
	any.Ev.Src = Endpoint{Kind: EPAnySource}
	reply := leaf(4)
	reply.Ev.Dest = Endpoint{Kind: EPReplyToLast}
	inner := NewLoop(5, []*Node{leaf(2)})
	other := NewLoop(7, []*Node{leaf(2)})
	MergeInto(inner, other, true) // gives inner an iters histogram
	return &File{
		P:         8,
		Benchmark: "BT",
		Tracer:    "chameleon",
		Clustered: true,
		Filter:    true,
		Nodes: []*Node{
			leaf(1),
			NewLoop(10, []*Node{rankLeaf(5, 2), inner}),
			any,
			reply,
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.P != f.P || back.Benchmark != f.Benchmark || back.Tracer != f.Tracer ||
		back.Clustered != f.Clustered || back.Filter != f.Filter {
		t.Fatalf("metadata: %+v", back)
	}
	if !SeqStructuralEqual(f.Nodes, back.Nodes, false) {
		t.Fatalf("structure lost:\n%s\nvs\n%s", Format(f.Nodes), Format(back.Nodes))
	}
	if DynamicEvents(back.Nodes) != DynamicEvents(f.Nodes) {
		t.Fatalf("events differ")
	}
	// Delta statistics survive.
	if back.Nodes[0].Delta.Count() != f.Nodes[0].Delta.Count() ||
		back.Nodes[0].Delta.Mean() != f.Nodes[0].Delta.Mean() {
		t.Fatalf("histogram lost: %v vs %v", back.Nodes[0].Delta, f.Nodes[0].Delta)
	}
	// The filtered loop's iteration histogram survives.
	loop := back.Nodes[1].Body[1]
	if loop.ItersHist == nil || loop.MeanIters() != 6 {
		t.Fatalf("iters hist lost: %+v", loop)
	}
}

// TestBinaryRetiredRoundTrip pins the retired-ranks section: the set
// survives a binary round trip canonically (sorted, deduplicated), a
// retired-free file encodes byte-identical with the field nil or empty
// (content-address stability), and corrupt sections are rejected.
func TestBinaryRetiredRoundTrip(t *testing.T) {
	f := sampleFile()
	f.Retired = []int{5, 1, 5, 3}
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 3, 5}; !slices.Equal(back.Retired, want) {
		t.Fatalf("retired = %v, want %v", back.Retired, want)
	}
	// Same set, different crash order: identical bytes (the content
	// address must be a function of the set).
	f.Retired = []int{3, 5, 1}
	var buf2 bytes.Buffer
	if err := f.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("retired order changed the encoding")
	}
	// No retired ranks: byte-identical whether the field is nil or
	// empty, and identical to the pre-section format.
	f.Retired = nil
	var bare bytes.Buffer
	if err := f.WriteBinary(&bare); err != nil {
		t.Fatal(err)
	}
	f.Retired = []int{}
	var empty bytes.Buffer
	if err := f.WriteBinary(&empty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare.Bytes(), empty.Bytes()) {
		t.Fatal("empty retired slice changed the encoding")
	}
	if bytes.Equal(bare.Bytes(), buf.Bytes()) {
		t.Fatal("retired section missing from the encoding")
	}
	if got, err := ReadBinary(bytes.NewReader(bare.Bytes())); err != nil || got.Retired != nil {
		t.Fatalf("bare decode: retired=%v err=%v", got.Retired, err)
	}
	// Corrupt sections: count past P, rank past P.
	f.Retired = []int{1}
	var one bytes.Buffer
	if err := f.WriteBinary(&one); err != nil {
		t.Fatal(err)
	}
	good := one.Bytes()
	for name, mutate := range map[string]func([]byte) []byte{
		"count past P": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)-2] = 200 // count varint (P is 8)
			return b
		},
		"rank past P": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)-1] = 100 // zigzag varint 50 (P is 8)
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
	} {
		if _, err := ReadBinary(bytes.NewReader(mutate(good))); err == nil {
			t.Errorf("%s: corrupt retired section accepted", name)
		}
	}
}

func TestBinaryCompact(t *testing.T) {
	f := sampleFile()
	var bin, js bytes.Buffer
	if err := f.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&js); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Fatalf("binary (%d) not smaller than JSON (%d)", bin.Len(), js.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace file at all")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("CHAMTRC1")); err == nil {
		t.Fatalf("truncated accepted")
	}
}

func TestLoadAnySniffs(t *testing.T) {
	f := sampleFile()
	dir := t.TempDir()
	binPath, jsonPath := dir+"/t.bin", dir+"/t.json"
	if err := f.SaveBinary(binPath); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{binPath, jsonPath} {
		got, err := LoadAny(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !SeqStructuralEqual(f.Nodes, got.Nodes, false) {
			t.Fatalf("%s: structure lost", path)
		}
	}
	if _, err := LoadAny(dir + "/missing"); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestBinaryRanklistFidelity(t *testing.T) {
	n := leaf(1)
	n.Ranks = ranklist.FromRanks([]int{0, 2, 4, 6, 9})
	f := &File{P: 16, Nodes: []*Node{n}}
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Nodes[0].Ranks.Equal(n.Ranks) {
		t.Fatalf("ranks = %v, want %v", back.Nodes[0].Ranks, n.Ranks)
	}
}
