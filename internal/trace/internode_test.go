package trace

import (
	"os"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
)

// rankLeaf builds a leaf recorded by the given rank.
func rankLeaf(site, rank int) *Node {
	return NewLeaf(ev(site), ranklist.SingleRank(rank), 1000)
}

func TestMergeIdenticalTraces(t *testing.T) {
	a := []*Node{rankLeaf(1, 0), rankLeaf(2, 0)}
	b := []*Node{rankLeaf(1, 1), rankLeaf(2, 1)}
	m := Merger{P: 4}
	out := m.Merge(a, b)
	if len(out) != 2 {
		t.Fatalf("merged %d nodes", len(out))
	}
	want := ranklist.FromRanks([]int{0, 1})
	for _, n := range out {
		if !n.Ranks.Equal(want) {
			t.Fatalf("ranks = %v", n.Ranks)
		}
		if n.Delta.Count() != 2 {
			t.Fatalf("delta not merged")
		}
	}
	if m.Stats.Compares == 0 || m.Stats.BytesMerged == 0 {
		t.Fatalf("no work accounted")
	}
}

func TestMergeDivergentTraces(t *testing.T) {
	// Rank 1 has an extra event (a different branch): the merge must
	// keep every node, interleaved at the alignment point.
	a := []*Node{rankLeaf(1, 0), rankLeaf(3, 0)}
	b := []*Node{rankLeaf(1, 1), rankLeaf(2, 1), rankLeaf(3, 1)}
	m := Merger{P: 4}
	out := m.Merge(a, b)
	stacks := map[uint64]struct{}{}
	CollectStacks(out, stacks)
	if len(stacks) != 3 {
		t.Fatalf("stacks = %d, want 3", len(stacks))
	}
	// Events 1 and 3 carry both ranks; event 2 only rank 1.
	for _, n := range out {
		switch n.Ev.Tag {
		case 1, 3:
			if n.Ranks.Size() != 2 {
				t.Fatalf("tag %d ranks = %v", n.Ev.Tag, n.Ranks)
			}
		case 2:
			if !n.Ranks.Equal(ranklist.SingleRank(1)) {
				t.Fatalf("tag 2 ranks = %v", n.Ranks)
			}
		}
	}
}

func TestMergeDisjointTraces(t *testing.T) {
	// Completely different call paths (master vs workers): everything is
	// preserved, nothing merges.
	a := []*Node{rankLeaf(1, 0), rankLeaf(2, 0)}
	b := []*Node{rankLeaf(3, 1), rankLeaf(4, 1)}
	m := Merger{P: 4}
	out := m.Merge(a, b)
	if len(out) != 4 {
		t.Fatalf("merged %d nodes, want 4", len(out))
	}
}

func TestMergeLoops(t *testing.T) {
	mkLoop := func(rank int, iters uint64) []*Node {
		return []*Node{NewLoop(iters, []*Node{rankLeaf(1, rank), rankLeaf(2, rank)})}
	}
	m := Merger{P: 4}
	out := m.Merge(mkLoop(0, 10), mkLoop(1, 10))
	if len(out) != 1 || !out[0].IsLoop() || out[0].Iters != 10 {
		t.Fatalf("loop merge failed: %+v", out)
	}
	if out[0].Body[0].Ranks.Size() != 2 {
		t.Fatalf("body ranks not merged")
	}

	// Differing trip counts: strict mode keeps them apart...
	strict := Merger{P: 4}
	out = strict.Merge(mkLoop(0, 10), mkLoop(1, 12))
	if len(out) != 2 {
		t.Fatalf("strict merged differing iters")
	}
	// ...the parameter filter folds them with an iters histogram.
	filter := Merger{P: 4, Filter: true}
	out = filter.Merge(mkLoop(0, 10), mkLoop(1, 12))
	if len(out) != 1 || out[0].ItersHist == nil {
		t.Fatalf("filter did not merge differing iters: %+v", out)
	}
	if got := out[0].MeanIters(); got != 11 {
		t.Fatalf("mean iters = %d", got)
	}
}

func TestMergeSingletonAbsolute(t *testing.T) {
	// Workers 3 and 5 both send to rank 0 with different offsets: the
	// merge must recognize the common absolute target.
	a := rankLeaf(1, 3)
	a.Ev.Dest = Relative(-3)
	b := rankLeaf(1, 5)
	b.Ev.Dest = Relative(-5)
	m := Merger{P: 8}
	out := m.Merge([]*Node{a}, []*Node{b})
	if len(out) != 1 {
		t.Fatalf("not merged: %d nodes", len(out))
	}
	if out[0].Ev.Dest.Kind != EPAbsolute || out[0].Ev.Dest.Off != 0 {
		t.Fatalf("dest = %v", out[0].Ev.Dest)
	}
}

func TestMergeKeepsByteAndTagDistinct(t *testing.T) {
	a := rankLeaf(1, 0)
	b := rankLeaf(1, 1)
	b.Ev.Bytes = 999 // different size must not merge
	m := Merger{P: 4}
	if out := m.Merge([]*Node{a}, []*Node{b}); len(out) != 2 {
		t.Fatalf("different sizes merged")
	}
}

func TestMergeEmptySides(t *testing.T) {
	m := Merger{P: 4}
	a := []*Node{rankLeaf(1, 0)}
	if out := m.Merge(a, nil); len(out) != 1 {
		t.Fatalf("merge with empty right")
	}
	if out := m.Merge(nil, a); len(out) != 1 {
		t.Fatalf("merge with empty left")
	}
	if out := m.Merge(nil, nil); len(out) != 0 {
		t.Fatalf("merge of empties")
	}
}

func TestMergeConservation(t *testing.T) {
	// Property over pseudo-random traces: restricting the merged trace
	// to one rank's membership reproduces that rank's per-stack event
	// counts exactly — the invariant replay depends on. (Merged nodes
	// union rank lists; they do not add counts.)
	state := uint64(99)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	countForRank := func(seq []*Node, rank int) map[uint64]uint64 {
		got := map[uint64]uint64{}
		var walk func(seq []*Node, mult uint64)
		walk = func(seq []*Node, mult uint64) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body, mult*n.Iters)
				} else if n.Ranks.Contains(rank) {
					got[uint64(n.Ev.Stack)] += mult
				}
			}
		}
		walk(seq, 1)
		return got
	}
	for trial := 0; trial < 30; trial++ {
		build := func(rank int) []*Node {
			var c Compressor
			for i, n := 0, next(60)+1; i < n; i++ {
				l := leaf(next(5) + 1)
				l.Ranks = ranklist.SingleRank(rank)
				c.AppendLeaf(l)
			}
			return c.Seq
		}
		a, b := build(0), build(1)
		wantA, wantB := countForRank(a, 0), countForRank(b, 1)
		m := Merger{P: 4}
		merged := m.Merge(a, b)
		for rank, want := range map[int]map[uint64]uint64{0: wantA, 1: wantB} {
			got := countForRank(merged, rank)
			if len(got) != len(want) {
				t.Fatalf("trial %d rank %d: %d stacks, want %d", trial, rank, len(got), len(want))
			}
			for s, w := range want {
				if got[s] != w {
					t.Fatalf("trial %d rank %d: stack %x count %d, want %d", trial, rank, got[s], w, w)
				}
			}
		}
	}
}

func TestStructuralEqual(t *testing.T) {
	a := leaf(1)
	b := leaf(1)
	if !StructuralEqual(a, b, false) {
		t.Fatalf("identical leaves unequal")
	}
	c := leaf(2)
	if StructuralEqual(a, c, false) {
		t.Fatalf("different leaves equal")
	}
	la := NewLoop(3, []*Node{leaf(1)})
	lb := NewLoop(3, []*Node{leaf(1)})
	if !StructuralEqual(la, lb, false) {
		t.Fatalf("identical loops unequal")
	}
	lc := NewLoop(4, []*Node{leaf(1)})
	if StructuralEqual(la, lc, false) {
		t.Fatalf("differing iters equal in strict mode")
	}
	if !StructuralEqual(la, lc, true) {
		t.Fatalf("differing iters unequal under filter")
	}
	if StructuralEqual(a, la, false) {
		t.Fatalf("leaf equals loop")
	}
	// Rank lists are part of intra-fold equality.
	d := leaf(1)
	d.Ranks = ranklist.SingleRank(7)
	if StructuralEqual(a, d, false) {
		t.Fatalf("different ranks equal")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	n := leaf(1)
	n.Ev.Src = Endpoint{Kind: EPAnySource}
	inner := NewLoop(4, []*Node{leaf(2)})
	inner.ItersHist = nil
	f := &File{
		P:         8,
		Benchmark: "TEST",
		Tracer:    "chameleon",
		Clustered: true,
		Filter:    true,
		Nodes:     []*Node{n, NewLoop(10, []*Node{rankLeaf(3, 2), inner})},
	}
	path := t.TempDir() + "/trace.json"
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.P != 8 || back.Benchmark != "TEST" || !back.Clustered || !back.Filter {
		t.Fatalf("metadata lost: %+v", back)
	}
	if !SeqStructuralEqual(f.Nodes, back.Nodes, false) {
		t.Fatalf("structure lost:\n%s\nvs\n%s", Format(f.Nodes), Format(back.Nodes))
	}
	if DynamicEvents(back.Nodes) != DynamicEvents(f.Nodes) {
		t.Fatalf("event counts differ")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/path"); err == nil {
		t.Fatalf("missing file accepted")
	}
	path := t.TempDir() + "/bad.json"
	if err := writeFile(path, "{\"p\":0,\"nodes\":[]}"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatalf("invalid P accepted")
	}
	if err := writeFile(path, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func writeFile(path, content string) error {
	f := &File{}
	_ = f
	return osWriteFile(path, content)
}

func TestEventString(t *testing.T) {
	e := ev(1)
	if e.String() == "" {
		t.Fatalf("empty event string")
	}
	if (Event{Op: mpi.OpBarrier, Stack: sig.Stack(1)}).String() == "" {
		t.Fatalf("empty barrier string")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
