package trace

import (
	"fmt"

	"chameleon/internal/mpi"
)

// Validate checks a trace file's structural invariants before replay or
// analysis consumes it: rank lists within [0, P), loop nodes non-empty
// with positive trip counts, leaf operations known, end-point encodings
// well-formed for their operation, and nesting within the serializer's
// depth bound. It returns the first violation found.
func (f *File) Validate() error {
	if f.P <= 0 {
		return fmt.Errorf("trace: invalid rank count %d", f.P)
	}
	return validateSeq(f.Nodes, f.P, 0)
}

func validateSeq(seq []*Node, p, depth int) error {
	if depth > maxBinaryDepth {
		return fmt.Errorf("trace: loop nesting exceeds %d", maxBinaryDepth)
	}
	for i, n := range seq {
		if n == nil {
			return fmt.Errorf("trace: nil node at depth %d index %d", depth, i)
		}
		if n.IsLoop() {
			if n.Iters == 0 && (n.ItersHist == nil || n.ItersHist.Count() == 0) {
				return fmt.Errorf("trace: loop with zero iterations at depth %d index %d", depth, i)
			}
			if len(n.Body) == 0 {
				return fmt.Errorf("trace: empty loop body at depth %d index %d", depth, i)
			}
			if err := validateSeq(n.Body, p, depth+1); err != nil {
				return err
			}
			continue
		}
		if err := validateLeaf(n, p); err != nil {
			return fmt.Errorf("%w (depth %d index %d)", err, depth, i)
		}
	}
	return nil
}

func validateLeaf(n *Node, p int) error {
	if n.Ev.Op == mpi.OpNone || n.Ev.Op.String() == "op?" {
		return fmt.Errorf("trace: unknown operation %d", n.Ev.Op)
	}
	if n.Ranks.Empty() {
		return fmt.Errorf("trace: leaf with empty rank list")
	}
	for _, r := range n.Ranks.Ranks() {
		if r < 0 || r >= p {
			return fmt.Errorf("trace: rank %d outside [0,%d)", r, p)
		}
	}
	if n.Ev.Bytes < 0 {
		return fmt.Errorf("trace: negative byte count %d", n.Ev.Bytes)
	}
	if err := validateEndpoint(n.Ev.Dest, p); err != nil {
		return fmt.Errorf("dest: %w", err)
	}
	if err := validateEndpoint(n.Ev.Src, p); err != nil {
		return fmt.Errorf("src: %w", err)
	}
	// Sends need a destination; receives need a source.
	switch n.Ev.Op {
	case mpi.OpSend, mpi.OpIsend:
		if n.Ev.Dest.Kind == EPNone {
			return fmt.Errorf("trace: send without destination")
		}
	case mpi.OpRecv, mpi.OpIrecv:
		if n.Ev.Src.Kind == EPNone {
			return fmt.Errorf("trace: receive without source")
		}
	case mpi.OpSendrecv:
		if n.Ev.Dest.Kind == EPNone || n.Ev.Src.Kind == EPNone {
			return fmt.Errorf("trace: sendrecv missing an end-point")
		}
	}
	return nil
}

func validateEndpoint(e Endpoint, p int) error {
	switch e.Kind {
	case EPNone, EPRelative, EPReplyToLast, EPAnySource:
		return nil
	case EPAbsolute:
		if e.Off < 0 || e.Off >= p {
			return fmt.Errorf("trace: absolute rank %d outside [0,%d)", e.Off, p)
		}
		return nil
	}
	return fmt.Errorf("trace: unknown end-point kind %d", e.Kind)
}
