package trace

// Inter-node compression: merging two ranks' (or subtrees') compressed
// traces into one. Structurally equal nodes merge by unioning rank lists
// and folding statistics; mismatching regions are interleaved with a
// bounded look-ahead so SPMD traces with small divergences (an if/else
// branch, a master rank) still align. This is the pairwise step of the
// radix-tree reduction ScalaTrace runs in MPI_Finalize and Chameleon
// runs online over the K lead traces; its comparison count is the n²
// term of the paper's O(n² log P) complexity.

import "chameleon/internal/stats"

// MergeStats accumulates the work performed by merges, which the virtual
// cost model prices.
type MergeStats struct {
	// Compares counts node structural comparisons (the n² term).
	Compares int
	// BytesMerged counts trace bytes touched while merging.
	BytesMerged int
}

// mergeLookahead bounds how far the aligner scans for a re-sync point
// after a mismatch.
const mergeLookahead = 16

// Merger merges node sequences under one filter setting, accumulating
// MergeStats.
type Merger struct {
	Filter bool
	// P is the rank count, used to normalize absolute end-points; 0
	// disables normalization.
	P int
	// Owned declares that the merger owns both input sequences: matched
	// pairs merge in place into the left node, unmatched nodes move into
	// the output without deep copies, and consumed right-side nodes are
	// recycled into Pool. The inputs are unusable afterwards. Cost
	// accounting (Compares, BytesMerged) is identical to the cloning
	// mode, so the virtual-time charges do not change.
	Owned bool
	// Pool receives the nodes an Owned merge consumes (optional).
	Pool  *Pool
	Stats MergeStats
}

// eventMatch reports whether two leaves can merge across ranks: same
// operation, stack signature, communicator, tag and size, and mergeable
// end-points. Unlike the intra-node fold it ignores rank lists (they
// union) and tolerates end-point encodings that agree once resolved.
func (m *Merger) eventMatch(a, b *Node) bool {
	ea, eb := a.Ev, b.Ev
	if ea.Op != eb.Op || ea.Stack != eb.Stack || ea.Comm != eb.Comm ||
		ea.Tag != eb.Tag || ea.Bytes != eb.Bytes {
		return false
	}
	if _, ok := m.mergeEndpoint(ea.Dest, a, eb.Dest, b); !ok {
		return false
	}
	if _, ok := m.mergeEndpoint(ea.Src, a, eb.Src, b); !ok {
		return false
	}
	return true
}

func (m *Merger) mergeEndpoint(a Endpoint, an *Node, b Endpoint, bn *Node) (Endpoint, bool) {
	return MergeEndpoints(
		a, an.Ranks.Min(), an.Ranks.Size() == 1,
		b, bn.Ranks.Min(), bn.Ranks.Size() == 1,
		m.P,
	)
}

// nodeMatch reports whether two nodes (leaf or loop) can merge.
func (m *Merger) nodeMatch(a, b *Node) bool {
	m.Stats.Compares++
	if a.IsLoop() != b.IsLoop() {
		return false
	}
	if !a.IsLoop() {
		return m.eventMatch(a, b)
	}
	if !m.Filter && a.Iters != b.Iters {
		return false
	}
	if len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Body {
		if !m.nodeMatch(a.Body[i], b.Body[i]) {
			return false
		}
	}
	return true
}

// mergeNode combines two matching nodes into a node covering both rank
// sets: a fresh deep copy by default, or a in place (consuming b) when
// the merger owns its inputs.
func (m *Merger) mergeNode(a, b *Node) *Node {
	if m.Owned {
		return m.mergeNodeOwned(a, b)
	}
	if a.IsLoop() {
		body := make([]*Node, len(a.Body))
		for i := range a.Body {
			body[i] = m.mergeNode(a.Body[i], b.Body[i])
		}
		out := NewLoop(a.Iters, body)
		if m.Filter && (a.Iters != b.Iters || a.ItersHist != nil || b.ItersHist != nil) {
			out.ItersHist = mergedItersHist(a, b)
		}
		m.Stats.BytesMerged += out.SizeBytes()
		return out
	}
	out := a.Clone()
	dest, _ := m.mergeEndpoint(a.Ev.Dest, a, b.Ev.Dest, b)
	src, _ := m.mergeEndpoint(a.Ev.Src, a, b.Ev.Src, b)
	out.Ev.Dest = dest
	out.Ev.Src = src
	out.Ranks = a.Ranks.Union(b.Ranks)
	out.Delta.Merge(b.Delta)
	m.Stats.BytesMerged += out.SizeBytes()
	return out
}

// mergeNodeOwned is mergeNode without the copies: statistics fold into
// a's own storage and b's carcass recycles. The values produced — node
// contents and BytesMerged — are exactly those of the cloning path.
func (m *Merger) mergeNodeOwned(a, b *Node) *Node {
	if a.IsLoop() {
		for i := range a.Body {
			a.Body[i] = m.mergeNodeOwned(a.Body[i], b.Body[i])
		}
		if m.Filter && (a.Iters != b.Iters || a.ItersHist != nil || b.ItersHist != nil) {
			mergeItersHistInto(a, b)
		}
		m.Stats.BytesMerged += a.SizeBytes()
		// The recursion above already consumed (and recycled) b's body.
		b.Body = nil
		m.Pool.Put(b)
		return a
	}
	// End-points must merge before a's rank list unions: the encoding
	// rules depend on each side's own rank set.
	dest, _ := m.mergeEndpoint(a.Ev.Dest, a, b.Ev.Dest, b)
	src, _ := m.mergeEndpoint(a.Ev.Src, a, b.Ev.Src, b)
	a.Ev.Dest = dest
	a.Ev.Src = src
	a.Ranks = a.Ranks.Union(b.Ranks)
	a.Delta.Merge(b.Delta)
	m.Stats.BytesMerged += a.SizeBytes()
	m.Pool.Put(b)
	return a
}

// mergeItersHistInto is the in-place form of mergedItersHist: it leaves
// a.ItersHist holding exactly the histogram the cloning path would have
// built (merging into an empty histogram copies it bitwise, so folding b
// into a's existing histogram is equivalent).
func mergeItersHistInto(a, b *Node) {
	if a.ItersHist == nil {
		a.ItersHist = stats.NewHistogram()
		a.ItersHist.Add(int64(a.Iters))
	}
	if b.ItersHist != nil {
		a.ItersHist.Merge(b.ItersHist)
	} else {
		a.ItersHist.Add(int64(b.Iters))
	}
}

func mergedItersHist(a, b *Node) *stats.Histogram {
	h := stats.NewHistogram()
	if a.ItersHist != nil {
		h.Merge(a.ItersHist)
	} else {
		h.Add(int64(a.Iters))
	}
	if b.ItersHist != nil {
		h.Merge(b.ItersHist)
	} else {
		h.Add(int64(b.Iters))
	}
	return h
}

// take emits an unmatched node into the output: moved verbatim when the
// merger owns its inputs, deep-copied otherwise. BytesMerged accounting
// is the same either way.
func (m *Merger) take(n *Node) *Node {
	m.Stats.BytesMerged += n.SizeBytes()
	if m.Owned {
		return n
	}
	return n.Clone()
}

// Merge aligns and merges two compressed sequences, returning the merged
// sequence. Unmatched nodes are preserved in order (interleaved at their
// alignment position), so no MPI event is ever dropped. With Owned set,
// both inputs are consumed (see Merger.Owned).
func (m *Merger) Merge(a, b []*Node) []*Node {
	out := make([]*Node, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if m.nodeMatch(a[i], b[j]) {
			out = append(out, m.mergeNode(a[i], b[j]))
			i++
			j++
			continue
		}
		// Re-sync: find the nearest forward match in either sequence.
		ai, bj := m.findSync(a, i, b, j)
		switch {
		case ai >= 0 && (bj < 0 || ai <= bj):
			// a[i..i+ai) is unmatched; emit it.
			for k := 0; k < ai; k++ {
				out = append(out, m.take(a[i]))
				i++
			}
		case bj >= 0:
			for k := 0; k < bj; k++ {
				out = append(out, m.take(b[j]))
				j++
			}
		default:
			// No re-sync within the look-ahead: emit both heads.
			out = append(out, m.take(a[i]))
			i++
			if j < len(b) {
				out = append(out, m.take(b[j]))
				j++
			}
		}
	}
	for ; i < len(a); i++ {
		out = append(out, m.take(a[i]))
	}
	for ; j < len(b); j++ {
		out = append(out, m.take(b[j]))
	}
	return out
}

// findSync scans ahead for the smallest skip that re-aligns the
// sequences: ai is the number of a-nodes to skip so a[i+ai] matches
// b[j], bj the number of b-nodes to skip so b[j+bj] matches a[i]; -1
// when no match lies within the look-ahead.
func (m *Merger) findSync(a []*Node, i int, b []*Node, j int) (ai, bj int) {
	ai, bj = -1, -1
	for k := 1; k <= mergeLookahead && i+k < len(a); k++ {
		if m.nodeMatch(a[i+k], b[j]) {
			ai = k
			break
		}
	}
	for k := 1; k <= mergeLookahead && j+k < len(b); k++ {
		if m.nodeMatch(a[i], b[j+k]) {
			bj = k
			break
		}
	}
	return ai, bj
}
