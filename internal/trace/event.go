// Package trace reproduces ScalaTrace V2's trace representation and its
// two-stage compression:
//
//   - intra-node compression folds each rank's MPI event stream into
//     RSDs/PRSDs — loop nodes over repeated event subsequences — online,
//     as events are recorded (Compressor);
//   - inter-node compression merges per-rank compressed traces into one
//     location-independent global trace by aligning structurally equal
//     nodes and unioning their rank lists (MergeSequences), normally run
//     over a radix tree.
//
// Events carry ScalaTrace's three key encodings: 64-bit stack signatures
// for calling-sequence identification, relative (±c) communication
// end-points, and rank lists for communication groups. Inter-event
// computation times are folded into histograms so repetitive signatures
// with noisy timing still compress.
package trace

import (
	"fmt"

	"chameleon/internal/mpi"
	"chameleon/internal/sig"
)

// EPKind classifies how a communication end-point is encoded.
type EPKind uint8

// End-point encodings.
const (
	// EPNone marks an absent end-point (collectives' peer fields).
	EPNone EPKind = iota
	// EPRelative encodes the peer as a ±c offset from the calling rank —
	// ScalaTrace's location-independent encoding.
	EPRelative
	// EPAbsolute pins the peer to a fixed rank; produced when merging
	// ranks whose offsets differ but whose absolute target agrees (e.g.
	// all workers sending to a master at rank 0).
	EPAbsolute
	// EPReplyToLast marks a send whose destination equals the source of
	// the immediately preceding wildcard receive — the master/worker
	// reply pattern, replayable without knowing the rank a priori.
	EPReplyToLast
	// EPAnySource marks a wildcard receive.
	EPAnySource
)

func (k EPKind) String() string {
	switch k {
	case EPNone:
		return "none"
	case EPRelative:
		return "rel"
	case EPAbsolute:
		return "abs"
	case EPReplyToLast:
		return "reply"
	case EPAnySource:
		return "any"
	}
	return "ep?"
}

// Endpoint is one encoded communication end-point.
type Endpoint struct {
	Kind EPKind
	Off  int // relative offset (EPRelative) or absolute rank (EPAbsolute)
}

// NoEndpoint is the absent end-point.
var NoEndpoint = Endpoint{Kind: EPNone}

// Relative returns a ±c relative end-point.
func Relative(off int) Endpoint { return Endpoint{Kind: EPRelative, Off: off} }

// Absolute returns a fixed-rank end-point.
func Absolute(rank int) Endpoint { return Endpoint{Kind: EPAbsolute, Off: rank} }

// Resolve maps the end-point to a concrete rank for the given replaying
// rank. ReplyToLast and AnySource must be handled by the caller; Resolve
// returns ok=false for them.
func (e Endpoint) Resolve(self int) (rank int, ok bool) {
	switch e.Kind {
	case EPRelative:
		return self + e.Off, true
	case EPAbsolute:
		return e.Off, true
	}
	return 0, false
}

func (e Endpoint) String() string {
	switch e.Kind {
	case EPRelative:
		return fmt.Sprintf("%+d", e.Off)
	case EPAbsolute:
		return fmt.Sprintf("@%d", e.Off)
	case EPReplyToLast:
		return "reply"
	case EPAnySource:
		return "*"
	}
	return "-"
}

// SigValue returns the value folded into SRC/DEST signatures for this
// end-point: the relative offset for relative encodings, the absolute
// rank biased by nothing for absolute ones, and fixed sentinels for the
// special kinds so they cluster together.
func (e Endpoint) SigValue() (int, bool) {
	switch e.Kind {
	case EPRelative, EPAbsolute:
		return e.Off, true
	case EPReplyToLast:
		return 1 << 20, true
	case EPAnySource:
		return -(1 << 20), true
	}
	return 0, false
}

// Event is the parameter tuple of one MPI event in the trace.
type Event struct {
	Op    mpi.OpCode
	Stack sig.Stack
	// Site is the interned call-site ID behind Stack (sig.NoSite for
	// events that never passed through the intern table: hand-built test
	// events and traces read from the v1 binary format). It is derived
	// state — Stack == sig.Sites.Signature(Site) whenever set — so it is
	// excluded from equality and from the JSON encoding.
	Site  sig.SiteID `json:"-"`
	Comm  mpi.CommID
	Dest  Endpoint // destination (sends) or root (rooted collectives)
	Src   Endpoint // source (receives)
	Tag   int
	Bytes int
}

// Equal reports exact parameter equality (the intra-node fold criterion:
// "alternating send/receive calls with identical parameters"). Site is
// ignored: it is a cache of Stack's identity, and traces mixing interned
// and uninterned events (e.g. replayed v1 segments) must still fold.
func (e Event) Equal(o Event) bool {
	return e.Op == o.Op && e.Stack == o.Stack && e.Comm == o.Comm &&
		e.Dest == o.Dest && e.Src == o.Src && e.Tag == o.Tag && e.Bytes == o.Bytes
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%s#%016x", e.Op, uint64(e.Stack))
	if e.Dest.Kind != EPNone {
		s += " dst=" + e.Dest.String()
	}
	if e.Src.Kind != EPNone {
		s += " src=" + e.Src.String()
	}
	if e.Bytes != 0 {
		s += fmt.Sprintf(" %dB", e.Bytes)
	}
	return s
}

// MergeEndpoints attempts to combine two end-points of matching events
// recorded by (possibly different) rank sets, following ScalaTrace's
// location-independent encoding rules; absolute targets are normalized
// modulo the rank count p. It reports the merged encoding and whether
// the merge is possible.
func MergeEndpoints(a Endpoint, aMin int, aSingle bool, b Endpoint, bMin int, bSingle bool, p int) (Endpoint, bool) {
	if a == b {
		return a, true
	}
	mod := func(r int) int {
		if p <= 0 {
			return r
		}
		return ((r % p) + p) % p
	}
	if a.Kind == EPRelative && b.Kind == EPRelative {
		// Different offsets can still agree on an absolute target when
		// each side is a single rank.
		if aSingle && bSingle && mod(aMin+a.Off) == mod(bMin+b.Off) {
			return Absolute(mod(aMin + a.Off)), true
		}
		return a, false
	}
	if a.Kind == EPRelative && b.Kind == EPAbsolute {
		if aSingle && mod(aMin+a.Off) == mod(b.Off) {
			return Absolute(mod(b.Off)), true
		}
		return a, false
	}
	if a.Kind == EPAbsolute && b.Kind == EPRelative {
		if bSingle && mod(bMin+b.Off) == mod(a.Off) {
			return Absolute(mod(a.Off)), true
		}
		return a, false
	}
	if a.Kind == EPAbsolute && b.Kind == EPAbsolute && mod(a.Off) == mod(b.Off) {
		return Absolute(mod(a.Off)), true
	}
	return a, false
}
