package trace

import (
	"chameleon/internal/sig"
	"chameleon/internal/stats"

	"encoding/json"
	"fmt"
	"io"
	"os"
)

// File is a complete trace file: the global compressed sequence plus the
// run metadata the replayer needs.
type File struct {
	// P is the number of ranks of the traced run.
	P int `json:"p"`
	// Benchmark names the traced application (informational).
	Benchmark string `json:"benchmark,omitempty"`
	// Tracer names the producing tool ("scalatrace", "chameleon", ...).
	Tracer string `json:"tracer,omitempty"`
	// Clustered reports whether rank lists are cluster rank lists (the
	// replayer then re-interprets lead traces for all members).
	Clustered bool `json:"clustered"`
	// Filter records whether the parameter filter was active.
	Filter bool `json:"filter,omitempty"`
	// Retired lists ranks that crash-stopped during the traced run (their
	// events end at the crash marker; empty for fault-free runs).
	Retired []int `json:"retired,omitempty"`
	// Sites is the interned call-site table of the trace: one entry per
	// distinct stack signature, with resolved function/file:line where
	// known. The binary codec always persists it (v2 format); producers
	// populate it via SiteTable.
	Sites []sig.SiteInfo `json:"sites,omitempty"`
	// Nodes is the compressed global trace.
	Nodes []*Node `json:"nodes"`
}

// SiteTable computes the file's call-site table from its node sequence:
// distinct signatures in first-appearance order, with metadata resolved
// through the process intern table where leaves carry SiteIDs.
func (f *File) SiteTable() []sig.SiteInfo {
	return collectSites(f.Nodes, make(map[uint64]int), nil)
}

// nodeJSON mirrors Node for serialization (Node itself would marshal
// fine, but the mirror keeps empty leaf/loop halves out of the output).
type nodeJSON struct {
	Ev    *Event          `json:"ev,omitempty"`
	Ranks json.RawMessage `json:"ranks,omitempty"`
	Delta json.RawMessage `json:"delta,omitempty"`

	Iters     uint64          `json:"iters,omitempty"`
	Body      []*Node         `json:"body,omitempty"`
	ItersHist json.RawMessage `json:"itersHist,omitempty"`
}

// MarshalJSON implements json.Marshaler for Node.
func (n *Node) MarshalJSON() ([]byte, error) {
	var j nodeJSON
	var err error
	if n.IsLoop() {
		j.Iters = n.Iters
		j.Body = n.Body
		if n.ItersHist != nil {
			if j.ItersHist, err = json.Marshal(n.ItersHist); err != nil {
				return nil, err
			}
		}
	} else {
		ev := n.Ev
		j.Ev = &ev
		if j.Ranks, err = json.Marshal(n.Ranks); err != nil {
			return nil, err
		}
		if n.Delta != nil {
			if j.Delta, err = json.Marshal(n.Delta); err != nil {
				return nil, err
			}
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler for Node.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*n = Node{}
	if j.Ev != nil {
		n.Ev = *j.Ev
		if j.Ranks != nil {
			if err := json.Unmarshal(j.Ranks, &n.Ranks); err != nil {
				return err
			}
		}
		if j.Delta != nil {
			n.Delta = new(stats.Histogram)
			if err := json.Unmarshal(j.Delta, n.Delta); err != nil {
				return err
			}
		}
		return nil
	}
	n.Iters = j.Iters
	n.Body = j.Body
	if n.Body == nil {
		// A loop always carries a body; an empty one keeps IsLoop true.
		n.Body = []*Node{}
	}
	if j.ItersHist != nil {
		n.ItersHist = new(stats.Histogram)
		if err := json.Unmarshal(j.ItersHist, n.ItersHist); err != nil {
			return err
		}
	}
	return nil
}

// Write serializes the trace file to w.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Read deserializes a trace file from r.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if f.P <= 0 {
		return nil, fmt.Errorf("trace: invalid rank count %d", f.P)
	}
	return &f, nil
}

// Save writes the trace file to path.
func (f *File) Save(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := f.Write(out); err != nil {
		return err
	}
	return out.Close()
}

// Load reads a trace file from path.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}
