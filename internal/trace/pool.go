package trace

// Node pooling for the per-rank hot path. Every recorded MPI event costs
// a Node and a Histogram; the compressor's absorb/create folds then
// discard most of them within a few events. A Pool keeps those carcasses
// on free lists so steady-state recording allocates nothing.
//
// Pools are intentionally lock-free and goroutine-local: each recorder
// (one per simulated rank) owns one, and nodes recycled into a pool may
// only be touched by that pool's owner afterwards. Ownership of live
// nodes is linear — TakePartial hands a sequence away, the radix-tree
// merge consumes both inputs (Merger.Owned), and the online compressor
// folds what reaches rank 0 — so a node is never reachable from two
// places when it dies.

import (
	"chameleon/internal/ranklist"
	"chameleon/internal/stats"
)

// Pool is a free list of trace nodes and delta histograms. The zero
// value is ready to use; a nil *Pool is valid and falls back to plain
// allocation everywhere.
type Pool struct {
	nodes []*Node
	hists []*stats.Histogram
}

// Leaf builds a leaf node for one observed event, reusing pooled
// storage. It is the pooled analogue of NewLeaf.
func (p *Pool) Leaf(ev Event, ranks ranklist.List, deltaNs int64) *Node {
	h := p.hist()
	h.Add(deltaNs)
	n := p.node()
	n.Ev = ev
	n.Ranks = ranks
	n.Delta = h
	return n
}

// Loop builds a loop node from pooled storage.
func (p *Pool) Loop(iters uint64, body []*Node) *Node {
	n := p.node()
	n.Iters = iters
	n.Body = body
	return n
}

func (p *Pool) node() *Node {
	if p == nil || len(p.nodes) == 0 {
		return &Node{}
	}
	n := p.nodes[len(p.nodes)-1]
	p.nodes = p.nodes[:len(p.nodes)-1]
	return n
}

func (p *Pool) hist() *stats.Histogram {
	if p == nil || len(p.hists) == 0 {
		return stats.NewHistogram()
	}
	h := p.hists[len(p.hists)-1]
	p.hists = p.hists[:len(p.hists)-1]
	h.Reset()
	return h
}

// Put recycles one node and everything it owns (its histogram, and for
// loops the whole body subtree). The caller must be the node's sole
// owner.
func (p *Pool) Put(n *Node) {
	if p == nil || n == nil {
		return
	}
	if n.Delta != nil {
		p.hists = append(p.hists, n.Delta)
	}
	if n.ItersHist != nil {
		p.hists = append(p.hists, n.ItersHist)
	}
	for _, c := range n.Body {
		p.Put(c)
	}
	*n = Node{}
	p.nodes = append(p.nodes, n)
}

// PutSeq recycles a whole detached sequence (a discarded partial trace).
func (p *Pool) PutSeq(seq []*Node) {
	if p == nil {
		return
	}
	for _, n := range seq {
		p.Put(n)
	}
}
