package trace

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
)

// ev builds a test event with a distinct call-site id.
func ev(site int) Event {
	return Event{
		Op:    mpi.OpSend,
		Stack: sig.Stack(sig.Mix(uint64(site))),
		Comm:  mpi.CommWorld,
		Dest:  Relative(1),
		Tag:   site,
		Bytes: 64,
	}
}

// leaf builds a test leaf for rank 0.
func leaf(site int) *Node {
	return NewLeaf(ev(site), ranklist.SingleRank(0), 1000)
}

func TestEndpointResolve(t *testing.T) {
	if r, ok := Relative(3).Resolve(5); !ok || r != 8 {
		t.Fatalf("relative resolve: %d/%v", r, ok)
	}
	if r, ok := Absolute(2).Resolve(5); !ok || r != 2 {
		t.Fatalf("absolute resolve: %d/%v", r, ok)
	}
	if _, ok := (Endpoint{Kind: EPReplyToLast}).Resolve(0); ok {
		t.Fatalf("reply resolved without context")
	}
	if _, ok := (Endpoint{Kind: EPAnySource}).Resolve(0); ok {
		t.Fatalf("wildcard resolved")
	}
	if _, ok := NoEndpoint.Resolve(0); ok {
		t.Fatalf("none resolved")
	}
}

func TestEndpointSigValue(t *testing.T) {
	if v, ok := Relative(-2).SigValue(); !ok || v != -2 {
		t.Fatalf("relative sig")
	}
	if v, ok := (Endpoint{Kind: EPReplyToLast}).SigValue(); !ok || v != 1<<20 {
		t.Fatalf("reply sig = %d", v)
	}
	if _, ok := NoEndpoint.SigValue(); ok {
		t.Fatalf("none has sig value")
	}
}

func TestEndpointStrings(t *testing.T) {
	cases := map[string]Endpoint{
		"+3":    Relative(3),
		"-1":    Relative(-1),
		"@7":    Absolute(7),
		"reply": {Kind: EPReplyToLast},
		"*":     {Kind: EPAnySource},
		"-":     NoEndpoint,
	}
	for want, ep := range cases {
		if got := ep.String(); got != want {
			t.Fatalf("%v = %q, want %q", ep, got, want)
		}
	}
}

func TestMergeEndpointsRules(t *testing.T) {
	// Equal encodings merge.
	if _, ok := MergeEndpoints(Relative(1), 0, true, Relative(1), 5, true, 16); !ok {
		t.Fatalf("equal relative should merge")
	}
	// Singletons agreeing on the absolute target merge to Absolute.
	got, ok := MergeEndpoints(Relative(-3), 3, true, Relative(-5), 5, true, 16)
	if !ok || got.Kind != EPAbsolute || got.Off != 0 {
		t.Fatalf("singleton absolute rule: %v/%v", got, ok)
	}
	// Non-singletons with differing offsets must not merge.
	if _, ok := MergeEndpoints(Relative(1), 0, false, Relative(2), 0, false, 16); ok {
		t.Fatalf("non-singleton differing offsets merged")
	}
	// Relative vs Absolute when the singleton resolves to it.
	got, ok = MergeEndpoints(Relative(2), 3, true, Absolute(5), 0, true, 16)
	if !ok || got.Off != 5 || got.Kind != EPAbsolute {
		t.Fatalf("rel-abs merge: %v/%v", got, ok)
	}
	// Modulo normalization: offsets wrapping to the same rank merge.
	got, ok = MergeEndpoints(Relative(63), 63, true, Relative(-62), 62, true, 126)
	if !ok || got.Kind != EPAbsolute || got.Off != 0 {
		t.Fatalf("mod-P absolute rule: %v/%v", got, ok)
	}
	// Absolutes equal mod P merge normalized.
	got, ok = MergeEndpoints(Absolute(126), 0, true, Absolute(0), 0, true, 126)
	if !ok || got.Off != 0 {
		t.Fatalf("absolute mod-P: %v/%v", got, ok)
	}
}

func TestCompressorFoldsSimpleLoop(t *testing.T) {
	var c Compressor
	for i := 0; i < 100; i++ {
		c.AppendLeaf(leaf(1))
		c.AppendLeaf(leaf(2))
	}
	if len(c.Seq) != 1 || !c.Seq[0].IsLoop() {
		t.Fatalf("not folded: %d nodes", len(c.Seq))
	}
	loop := c.Seq[0]
	if loop.Iters != 100 || len(loop.Body) != 2 {
		t.Fatalf("loop = %d x %d", loop.Iters, len(loop.Body))
	}
	if DynamicEvents(c.Seq) != 200 {
		t.Fatalf("dynamic events = %d", DynamicEvents(c.Seq))
	}
}

func TestCompressorFoldsNestedLoops(t *testing.T) {
	// for 10 { for 5 { a; b }; c } — the paper's PRSD example shape.
	var c Compressor
	for outer := 0; outer < 10; outer++ {
		for inner := 0; inner < 5; inner++ {
			c.AppendLeaf(leaf(1))
			c.AppendLeaf(leaf(2))
		}
		c.AppendLeaf(leaf(3))
	}
	if len(c.Seq) != 1 {
		t.Fatalf("top nodes = %d, want 1 PRSD", len(c.Seq))
	}
	outer := c.Seq[0]
	if !outer.IsLoop() || outer.Iters != 10 || len(outer.Body) != 2 {
		t.Fatalf("outer = %+v", outer)
	}
	inner := outer.Body[0]
	if !inner.IsLoop() || inner.Iters != 5 {
		t.Fatalf("inner = %+v", inner)
	}
	if DynamicEvents(c.Seq) != 10*(5*2+1) {
		t.Fatalf("dynamic events = %d", DynamicEvents(c.Seq))
	}
}

func TestCompressorPreservesDynamicEvents(t *testing.T) {
	// Property: compression never loses or duplicates events, whatever
	// the input stream.
	streams := [][]int{
		{1, 1, 1, 1},
		{1, 2, 3, 1, 2, 3, 1, 2, 3},
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},
		{5},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1, 1, 2, 2, 1, 1, 2, 2},
	}
	for _, s := range streams {
		var c Compressor
		for _, site := range s {
			c.AppendLeaf(leaf(site))
		}
		if got := DynamicEvents(c.Seq); got != uint64(len(s)) {
			t.Fatalf("stream %v: %d events, want %d", s, got, len(s))
		}
	}
}

func TestCompressorPseudoRandomStreams(t *testing.T) {
	// Deterministic pseudo-random streams over a small alphabet: event
	// conservation must hold for arbitrary shapes.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for trial := 0; trial < 50; trial++ {
		length := next(200) + 1
		var c Compressor
		counts := map[int]uint64{}
		for i := 0; i < length; i++ {
			site := next(4) + 1
			counts[site]++
			c.AppendLeaf(leaf(site))
		}
		if got := DynamicEvents(c.Seq); got != uint64(length) {
			t.Fatalf("trial %d: %d events, want %d", trial, got, length)
		}
		// Per-site occurrence counts must also be conserved.
		got := map[int]uint64{}
		var walk func(seq []*Node, mult uint64)
		walk = func(seq []*Node, mult uint64) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body, mult*n.Iters)
				} else {
					got[n.Ev.Tag] += mult
				}
			}
		}
		walk(c.Seq, 1)
		for site, want := range counts {
			if got[site] != want {
				t.Fatalf("trial %d site %d: %d, want %d", trial, site, got[site], want)
			}
		}
	}
}

func TestCompressorWindowLimit(t *testing.T) {
	// Bodies longer than the window must not fold (but still conserve).
	var c Compressor
	c.MaxWindow = 4
	for rep := 0; rep < 3; rep++ {
		for site := 1; site <= 6; site++ {
			c.AppendLeaf(leaf(site))
		}
	}
	if DynamicEvents(c.Seq) != 18 {
		t.Fatalf("events = %d", DynamicEvents(c.Seq))
	}
	for _, n := range c.Seq {
		if n.IsLoop() && len(n.Body) > 4 {
			t.Fatalf("window exceeded: body %d", len(n.Body))
		}
	}
}

func TestCompressorDeltaHistograms(t *testing.T) {
	var c Compressor
	c.AppendLeaf(NewLeaf(ev(1), ranklist.SingleRank(0), 100))
	c.AppendLeaf(NewLeaf(ev(1), ranklist.SingleRank(0), 300))
	if len(c.Seq) != 1 {
		t.Fatalf("identical events did not fold")
	}
	h := c.Seq[0].Body[0].Delta
	if h.Count() != 2 || h.Mean() != 200 {
		t.Fatalf("delta histogram: %v", h)
	}
}

func TestCompressorFilterMergesVaryingIters(t *testing.T) {
	// POP's case: the same inner loop with varying trip counts folds
	// only under the parameter filter.
	build := func(filter bool) *Compressor {
		c := &Compressor{Filter: filter}
		for _, iters := range []int{3, 5, 4} {
			for i := 0; i < iters; i++ {
				c.AppendLeaf(leaf(1))
			}
			c.AppendLeaf(leaf(2))
		}
		return c
	}
	strict := build(false)
	filtered := build(true)
	if NodeCount(filtered.Seq) >= NodeCount(strict.Seq) {
		t.Fatalf("filter did not improve folding: %d vs %d",
			NodeCount(filtered.Seq), NodeCount(strict.Seq))
	}
	// The filtered trace records the iteration spread.
	found := false
	var walk func(seq []*Node)
	walk = func(seq []*Node) {
		for _, n := range seq {
			if n.IsLoop() {
				if n.ItersHist != nil {
					found = true
				}
				walk(n.Body)
			}
		}
	}
	walk(filtered.Seq)
	if !found {
		t.Fatalf("no iteration histogram recorded")
	}
}

func TestCompressorReset(t *testing.T) {
	var c Compressor
	c.AppendLeaf(leaf(1))
	old := c.Reset()
	if len(old) != 1 || len(c.Seq) != 0 {
		t.Fatalf("reset: old=%d cur=%d", len(old), len(c.Seq))
	}
}

func TestMeanIters(t *testing.T) {
	l := NewLoop(7, []*Node{leaf(1)})
	if l.MeanIters() != 7 {
		t.Fatalf("exact iters")
	}
	l.ItersHist = nil
	other := NewLoop(9, []*Node{leaf(1)})
	MergeInto(l, other, true)
	if l.ItersHist == nil || l.MeanIters() != 8 {
		t.Fatalf("filtered mean iters = %d", l.MeanIters())
	}
}

func TestCounts(t *testing.T) {
	seq := []*Node{
		leaf(1),
		NewLoop(10, []*Node{leaf(2), NewLoop(3, []*Node{leaf(3)})}),
	}
	if LeafCount(seq) != 3 {
		t.Fatalf("leaf count = %d", LeafCount(seq))
	}
	if NodeCount(seq) != 5 {
		t.Fatalf("node count = %d", NodeCount(seq))
	}
	if DynamicEvents(seq) != 1+10*(1+3) {
		t.Fatalf("dynamic events = %d", DynamicEvents(seq))
	}
	if SizeBytes(seq) <= 0 {
		t.Fatalf("size bytes")
	}
}

func TestCloneIndependent(t *testing.T) {
	orig := NewLoop(2, []*Node{leaf(1)})
	c := orig.Clone()
	c.Iters = 99
	c.Body[0].Delta.Add(1)
	if orig.Iters != 2 || orig.Body[0].Delta.Count() != 1 {
		t.Fatalf("clone shares state")
	}
}

func TestRewriteRanks(t *testing.T) {
	seq := []*Node{leaf(1), NewLoop(2, []*Node{leaf(2)})}
	cluster := ranklist.FromRanks([]int{0, 1, 2, 3})
	RewriteRanks(seq, cluster)
	if !seq[0].Ranks.Equal(cluster) || !seq[1].Body[0].Ranks.Equal(cluster) {
		t.Fatalf("ranks not rewritten")
	}
}

func TestResolveEndpoints(t *testing.T) {
	n := leaf(1)
	n.Ev.Dest = Relative(-3)
	n.Ev.Src = Relative(2)
	seq := []*Node{NewLoop(2, []*Node{n})}
	ResolveEndpoints(seq, 1, 8)
	got := seq[0].Body[0].Ev
	if got.Dest.Kind != EPAbsolute || got.Dest.Off != 6 { // (1-3+8)%8
		t.Fatalf("dest = %v", got.Dest)
	}
	if got.Src.Kind != EPAbsolute || got.Src.Off != 3 {
		t.Fatalf("src = %v", got.Src)
	}
}

func TestCollectStacks(t *testing.T) {
	seq := []*Node{leaf(1), NewLoop(5, []*Node{leaf(2), leaf(1)})}
	got := map[uint64]struct{}{}
	CollectStacks(seq, got)
	if len(got) != 2 {
		t.Fatalf("stacks = %d", len(got))
	}
}

func TestFormat(t *testing.T) {
	seq := []*Node{leaf(1), NewLoop(3, []*Node{leaf(2)})}
	s := Format(seq)
	if s == "" || len(s) < 20 {
		t.Fatalf("format too short: %q", s)
	}
}
