package trace

import (
	"testing"
	"testing/quick"

	"chameleon/internal/ranklist"
)

// stream decodes a byte slice into an event-site stream over a small
// alphabet (the generator for compression property tests).
func stream(bs []byte, alphabet int) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = int(b)%alphabet + 1
	}
	return out
}

// compress runs a stream through the intra-node compressor.
func compress(sites []int, filter bool) *Compressor {
	c := &Compressor{Filter: filter}
	for _, s := range sites {
		c.AppendLeaf(leaf(s))
	}
	return c
}

// siteCounts tallies dynamic events per site in a compressed sequence.
func siteCounts(seq []*Node) map[int]uint64 {
	got := map[int]uint64{}
	var walk func(seq []*Node, mult uint64)
	walk = func(seq []*Node, mult uint64) {
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.Iters)
			} else {
				got[n.Ev.Tag] += mult
			}
		}
	}
	walk(seq, 1)
	return got
}

func TestQuickCompressionConservesEvents(t *testing.T) {
	f := func(bs []byte) bool {
		sites := stream(bs, 4)
		c := compress(sites, false)
		if DynamicEvents(c.Seq) != uint64(len(sites)) {
			return false
		}
		want := map[int]uint64{}
		for _, s := range sites {
			want[s]++
		}
		got := siteCounts(c.Seq)
		if len(got) != len(want) {
			return false
		}
		for s, w := range want {
			if got[s] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompressionNeverGrows(t *testing.T) {
	// The compressed node count never exceeds the input length.
	f := func(bs []byte) bool {
		sites := stream(bs, 3)
		c := compress(sites, false)
		return NodeCount(c.Seq) <= len(sites)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompressionFoldsRepetition(t *testing.T) {
	// Any pattern repeated enough compresses well: the stored node count
	// is bounded by the pattern size (plus nesting overhead), not the
	// repetition count.
	f := func(pattern []byte, reps uint8) bool {
		if len(pattern) == 0 || len(pattern) > 12 {
			return true // out of scope
		}
		n := int(reps%40) + 10
		var sites []int
		base := stream(pattern, 5)
		for i := 0; i < n; i++ {
			sites = append(sites, base...)
		}
		c := compress(sites, false)
		return NodeCount(c.Seq) <= 4*len(pattern)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergePerRankConservation(t *testing.T) {
	// Merging two ranks' compressed traces preserves each rank's
	// restricted per-site counts.
	countFor := func(seq []*Node, rank int) map[int]uint64 {
		got := map[int]uint64{}
		var walk func(seq []*Node, mult uint64)
		walk = func(seq []*Node, mult uint64) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body, mult*n.Iters)
				} else if n.Ranks.Contains(rank) {
					got[n.Ev.Tag] += mult
				}
			}
		}
		walk(seq, 1)
		return got
	}
	f := func(as, bs []byte) bool {
		build := func(bsx []byte, rank int) ([]*Node, map[int]uint64) {
			sites := stream(bsx, 4)
			c := &Compressor{}
			want := map[int]uint64{}
			for _, s := range sites {
				l := leaf(s)
				l.Ranks = ranklist.SingleRank(rank)
				c.AppendLeaf(l)
				want[s]++
			}
			return c.Seq, want
		}
		a, wantA := build(as, 0)
		b, wantB := build(bs, 1)
		m := Merger{P: 4}
		merged := m.Merge(a, b)
		for rank, want := range map[int]map[int]uint64{0: wantA, 1: wantB} {
			got := countFor(merged, rank)
			if len(got) != len(want) {
				return false
			}
			for s, w := range want {
				if got[s] != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	// Serialization round-trips arbitrary compressed traces.
	f := func(bs []byte) bool {
		sites := stream(bs, 5)
		if len(sites) == 0 {
			return true
		}
		c := compress(sites, false)
		file := &File{P: 4, Benchmark: "Q", Tracer: "quick", Nodes: c.Seq}
		path := t.TempDir() + "/q.bin"
		if err := file.SaveBinary(path); err != nil {
			return false
		}
		back, err := LoadAny(path)
		if err != nil {
			return false
		}
		return SeqStructuralEqual(file.Nodes, back.Nodes, false) &&
			DynamicEvents(back.Nodes) == uint64(len(sites))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValidateAcceptsCompressorOutput(t *testing.T) {
	f := func(bs []byte) bool {
		sites := stream(bs, 4)
		if len(sites) == 0 {
			return true
		}
		c := compress(sites, false)
		file := &File{P: 4, Nodes: c.Seq}
		return file.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
