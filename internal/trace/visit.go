package trace

// Read-only visitor API over compressed RSD trees.
//
// A walk touches every stored node exactly once; it never expands
// loops. Instead the Cursor carries the product of the enclosing loop
// trip counts (Mult), so a visitor can weight each leaf's
// per-iteration contribution in closed form — the core move of
// compressed-domain analysis (cost proportional to stored nodes, not
// to the dynamic events they represent).
//
// Windows: the top-level nodes of a global trace are its marker
// windows. Marker barriers themselves are never recorded (every tracer
// skips the marker communicator), but the online compressor flushes at
// marker boundaries, so consecutive top-level segments align with the
// application's timestep windows. Cursor.Window is the index of the
// enclosing top-level node.

// Cursor is the walk state handed to a Visitor at each node.
type Cursor struct {
	// Mult is the product of the enclosing loops' trip counts
	// (MeanIters); a leaf visited with Mult == m represents m dynamic
	// occurrences per covered rank.
	Mult uint64
	// Depth is the loop-nesting depth (0 at top level).
	Depth int
	// Window is the index of the enclosing top-level node.
	Window int
}

// Visitor receives the nodes of a compressed walk.
type Visitor interface {
	// EnterLoop is called before a loop's body; returning false prunes
	// the subtree (LeaveLoop is not called for pruned loops).
	EnterLoop(n *Node, c Cursor) bool
	// LeaveLoop is called after a loop's body has been walked.
	LeaveLoop(n *Node, c Cursor)
	// Leaf is called for each leaf node.
	Leaf(n *Node, c Cursor)
}

// Accept walks the sequence depth-first in trace order, visiting every
// stored node exactly once.
func Accept(seq []*Node, v Visitor) {
	for i, n := range seq {
		acceptNode(n, Cursor{Mult: 1, Window: i}, v)
	}
}

func acceptNode(n *Node, c Cursor, v Visitor) {
	if !n.IsLoop() {
		v.Leaf(n, c)
		return
	}
	if !v.EnterLoop(n, c) {
		return
	}
	bc := Cursor{Mult: c.Mult * n.MeanIters(), Depth: c.Depth + 1, Window: c.Window}
	for _, b := range n.Body {
		acceptNode(b, bc, v)
	}
	v.LeaveLoop(n, c)
}

// leafVisitor adapts a plain function to the Visitor interface.
type leafVisitor func(*Node, Cursor)

func (f leafVisitor) EnterLoop(*Node, Cursor) bool { return true }
func (f leafVisitor) LeaveLoop(*Node, Cursor)      {}
func (f leafVisitor) Leaf(n *Node, c Cursor)       { f(n, c) }

// VisitLeaves walks the sequence and calls fn once per stored leaf with
// its cursor (iteration weight, depth, window).
func VisitLeaves(seq []*Node, fn func(n *Node, c Cursor)) {
	Accept(seq, leafVisitor(fn))
}
