package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
)

// fuzzSeedFile builds a representative v2 trace for the fuzz corpus:
// loops, leaves, rank lists with strides, histograms with spread.
func fuzzSeedFile() *File {
	ranks := ranklist.FromRanks([]int{0, 1, 2, 3, 4, 5, 6, 7})
	odd := ranklist.FromRanks([]int{1, 3, 5, 7})
	send := Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(1)), Dest: Relative(1), Tag: 7, Bytes: 512}
	recv := Event{Op: mpi.OpRecv, Stack: sig.Stack(sig.Mix(2)), Src: Relative(-1), Tag: 7, Bytes: 512}
	coll := Event{Op: mpi.OpAllreduce, Stack: sig.Stack(sig.Mix(3)), Bytes: 8}
	sendLeaf := NewLeaf(send, ranks, 1200)
	sendLeaf.Delta.Add(900)
	sendLeaf.Delta.Add(4000)
	return &File{
		P:         8,
		Benchmark: "PHASE",
		Tracer:    "chameleon",
		Nodes: []*Node{
			NewLoop(40, []*Node{
				sendLeaf,
				NewLeaf(recv, odd, 0),
			}),
			NewLeaf(coll, ranks, 500),
		},
	}
}

// FuzzReadBinary feeds arbitrary bytes to the binary decoder. The
// decoder must never panic or allocate unboundedly: corrupt input
// returns an error. Decoded files must survive re-encoding.
func FuzzReadBinary(f *testing.F) {
	// Seed 1: the v1 compat fixture from the repository testdata.
	v1, err := os.ReadFile(filepath.Join("..", "..", "testdata", "compat_v1_phase.trc"))
	if err != nil {
		f.Fatalf("v1 seed: %v", err)
	}
	f.Add(v1)

	// Seed 2: a representative v2 golden built in-process.
	var v2 bytes.Buffer
	if err := fuzzSeedFile().WriteBinary(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())

	// Seed 3: truncated v2.
	f.Add(v2.Bytes()[:v2.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode cleanly.
		if err := decoded.WriteBinary(io.Discard); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
	})
}

// FuzzReadAny exercises the format sniffer (binary magics + the JSON
// fallback) on arbitrary input.
func FuzzReadAny(f *testing.F) {
	var v2 bytes.Buffer
	if err := fuzzSeedFile().WriteBinary(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	var js bytes.Buffer
	if err := fuzzSeedFile().Write(&js); err != nil {
		f.Fatal(err)
	}
	f.Add(js.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadAny(bytes.NewReader(data)) //nolint:errcheck — must not panic
	})
}

// corrupter hand-assembles binary trace files so the regression tests
// below can hit specific decoder bounds.
type corrupter struct{ buf bytes.Buffer }

func (c *corrupter) magic(v byte)    { c.buf.Write([]byte{'C', 'H', 'A', 'M', 'T', 'R', 'C', v}) }
func (c *corrupter) bytes(b ...byte) { c.buf.Write(b) }

func (c *corrupter) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	c.buf.Write(tmp[:n])
}

func (c *corrupter) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	c.buf.Write(tmp[:n])
}

func (c *corrupter) str(s string) {
	c.uvarint(uint64(len(s)))
	c.buf.WriteString(s)
}

// header writes a v2 preamble with an empty site table.
func (c *corrupter) header() {
	c.magic('2')
	c.uvarint(1) // P
	c.bytes(0)   // flags
	c.str("")    // benchmark
	c.str("")    // tracer
	c.uvarint(0) // site table count
}

func mustErr(t *testing.T, name string, data []byte) {
	t.Helper()
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatalf("%s: corrupt input decoded without error", name)
	}
}

func TestReadBinaryCorruptInputs(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		var good bytes.Buffer
		if err := fuzzSeedFile().WriteBinary(&good); err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < good.Len(); cut += 7 {
			if _, err := ReadBinary(bytes.NewReader(good.Bytes()[:cut])); err == nil {
				t.Fatalf("truncation at %d bytes decoded without error", cut)
			}
		}
	})

	t.Run("huge node count", func(t *testing.T) {
		var c corrupter
		c.header()
		c.uvarint(1 << 40) // node count far past the 1<<24 cap
		mustErr(t, "node count", c.buf.Bytes())
	})

	t.Run("node count within cap but no data", func(t *testing.T) {
		// A count under the cap must not commit a huge allocation before
		// the decoder notices the stream is empty.
		var c corrupter
		c.header()
		c.uvarint(1 << 23)
		mustErr(t, "empty-bodied count", c.buf.Bytes())
	})

	t.Run("negative rank iters", func(t *testing.T) {
		// Pre-hardening this panicked: RL.Ranks computed a negative
		// slice capacity from a corrupt iteration count.
		var c corrupter
		c.header()
		c.uvarint(1)  // one node
		c.bytes(0x01) // leaf
		c.uvarint(1)  // op
		c.uvarint(0)  // site index (v2, empty table -> out of range later is fine)
		mustErr(t, "negative iters", c.buf.Bytes())
	})

	t.Run("negative rank iters full leaf", func(t *testing.T) {
		var c corrupter
		c.magic('1') // v1: leaves carry raw signatures, no site table
		c.uvarint(4) // P
		c.bytes(0)   // flags
		c.str("")    // benchmark
		c.str("")    // tracer
		c.uvarint(1) // node count
		c.bytes(0x01)
		c.uvarint(1)  // op
		c.uvarint(42) // raw signature
		c.varint(0)   // comm
		c.varint(0)   // tag
		c.varint(0)   // bytes
		c.bytes(0)    // dest endpoint kind none
		c.bytes(0)    // src endpoint kind none
		c.uvarint(1)  // one rank descriptor
		c.varint(0)   // start
		c.uvarint(1)  // one dim
		c.varint(-5)  // iters: negative — must error, not panic
		c.varint(1)   // stride
		mustErr(t, "negative iters leaf", c.buf.Bytes())
	})

	t.Run("huge rank expansion", func(t *testing.T) {
		var c corrupter
		c.magic('1')
		c.uvarint(4)
		c.bytes(0)
		c.str("")
		c.str("")
		c.uvarint(1)
		c.bytes(0x01)
		c.uvarint(1)
		c.uvarint(42)
		c.varint(0)
		c.varint(0)
		c.varint(0)
		c.bytes(0)
		c.bytes(0)
		c.uvarint(1)      // one rank descriptor
		c.varint(0)       // start
		c.uvarint(2)      // two dims
		c.varint(1 << 19) // iters
		c.varint(1)       // stride
		c.varint(1 << 19) // iters: product 1<<38 — must be rejected
		c.varint(1)       // stride
		mustErr(t, "rank expansion", c.buf.Bytes())
	})

	t.Run("site index out of range", func(t *testing.T) {
		var c corrupter
		c.header() // empty site table
		c.uvarint(1)
		c.bytes(0x01)
		c.uvarint(1)
		c.uvarint(99) // site index into the empty table
		mustErr(t, "site index", c.buf.Bytes())
	})

	t.Run("huge site table", func(t *testing.T) {
		var c corrupter
		c.magic('2')
		c.uvarint(1)
		c.bytes(0)
		c.str("")
		c.str("")
		c.uvarint(1 << 30) // site count past the cap
		mustErr(t, "site table", c.buf.Bytes())
	})

	t.Run("huge string", func(t *testing.T) {
		var c corrupter
		c.magic('2')
		c.uvarint(1)
		c.bytes(0)
		c.uvarint(1 << 30) // benchmark length
		mustErr(t, "string length", c.buf.Bytes())
	})

	t.Run("bad magic", func(t *testing.T) {
		mustErr(t, "magic", []byte("NOTATRCE"))
	})
}

// TestLoadAnyCorruptFile proves the path-level loader surfaces decode
// errors instead of panicking.
func TestLoadAnyCorruptFile(t *testing.T) {
	dir := t.TempDir()
	var c corrupter
	c.header()
	c.uvarint(1 << 40)
	path := filepath.Join(dir, "corrupt.trc")
	if err := os.WriteFile(path, c.buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(path); err == nil {
		t.Fatal("corrupt file loaded without error")
	}
}
