package trace

import "chameleon/internal/ranklist"

// RewriteRanks replaces every leaf's rank list with the given list.
// Before the online inter-compression step, "each lead process replaces
// the ranklist of events with the ranklist of its cluster", so merging
// only the K lead traces still yields a global trace covering all P
// ranks.
func RewriteRanks(seq []*Node, ranks ranklist.List) {
	for _, n := range seq {
		if n.IsLoop() {
			RewriteRanks(n.Body, ranks)
		} else {
			n.Ranks = ranks
		}
	}
}

// ResolveEndpoints pins every relative end-point in the sequence to the
// absolute rank it resolves to for rank self (modulo p). Leads of
// endpoint-variant clusters apply this before the flush so cluster
// members replay the concrete peers instead of transposing offsets that
// were never location independent.
func ResolveEndpoints(seq []*Node, self, p int) {
	for _, n := range seq {
		if n.IsLoop() {
			ResolveEndpoints(n.Body, self, p)
			continue
		}
		n.Ev.Dest = resolveEP(n.Ev.Dest, self, p)
		n.Ev.Src = resolveEP(n.Ev.Src, self, p)
	}
}

func resolveEP(e Endpoint, self, p int) Endpoint {
	if e.Kind != EPRelative {
		return e
	}
	r := ((self+e.Off)%p + p) % p
	return Absolute(r)
}

// CollectStacks returns the set of distinct stack signatures appearing
// in the sequence (coverage checks: Chameleon must not miss any event).
func CollectStacks(seq []*Node, into map[uint64]struct{}) {
	for _, n := range seq {
		if n.IsLoop() {
			CollectStacks(n.Body, into)
		} else {
			into[uint64(n.Ev.Stack)] = struct{}{}
		}
	}
}
