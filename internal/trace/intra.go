package trace

// Intra-node (loop-level) compression: the online folding of a rank's
// event stream into RSD/PRSD loop nodes, run inside the PMPI wrapper as
// events are recorded.
//
// The folding rules mirror ScalaTrace's:
//
//  1. absorb — if the sequence ends with a loop node followed by a run
//     of nodes structurally equal to that loop's body, the run is folded
//     into the loop (Iters++);
//  2. create — otherwise, if the last L nodes structurally equal the L
//     nodes before them (for the smallest such L up to MaxWindow), the
//     two runs become a new loop node with Iters=2.
//
// Applied after every append, these two rules build nested PRSDs for
// loop nests: the inner repetition folds first, the enclosing pattern
// (now containing the inner loop node) folds at the next level.

// DefaultMaxWindow bounds the pattern length the compressor searches. It
// must exceed the largest per-timestep event count of the traced codes
// (LU's pipelined sweeps emit ~65 distinct leaves per timestep) or the
// timestep loop never folds; the absorb/create scans stay cheap because
// mismatching candidates fail on their first element.
const DefaultMaxWindow = 160

// Compressor folds an event stream into a compressed node sequence.
type Compressor struct {
	// Seq is the compressed sequence so far.
	Seq []*Node
	// MaxWindow bounds candidate loop-body lengths (DefaultMaxWindow if 0).
	MaxWindow int
	// Filter enables ScalaTrace's parameter filter: loops whose trip
	// counts differ may still fold, recording the spread in a histogram.
	Filter bool
	// Compares counts structural comparisons performed (cost accounting).
	Compares int
	// Pool, when set, receives the nodes the absorb/create folds discard,
	// so steady-state recording reuses instead of reallocating them. It
	// must be owned by the same goroutine as the compressor.
	Pool *Pool

	// size is the exact footprint of Seq in SizeBytes terms, maintained
	// incrementally (leaf histograms have constant footprint, so only
	// appends, folds and iteration-histogram creation can change it).
	size int
}

func (c *Compressor) window() int {
	if c.MaxWindow > 0 {
		return c.MaxWindow
	}
	return DefaultMaxWindow
}

// AppendLeaf records one event and re-folds the tail.
func (c *Compressor) AppendLeaf(n *Node) {
	c.size += n.SizeBytes()
	c.Seq = append(c.Seq, n)
	for c.fold() {
	}
}

// AppendNode appends a pre-built node (used when growing the online
// global trace from flushed segments) and re-folds the tail.
func (c *Compressor) AppendNode(n *Node) {
	c.size += n.SizeBytes()
	c.Seq = append(c.Seq, n)
	for c.fold() {
	}
}

// equal wraps StructuralEqual with comparison counting.
func (c *Compressor) equal(a, b *Node) bool {
	c.Compares++
	return StructuralEqual(a, b, c.Filter)
}

// fold applies one absorb or create step; it reports whether anything
// changed (the caller loops until a fixed point, which builds nested
// loops bottom-up).
func (c *Compressor) fold() bool {
	if c.absorb() {
		return true
	}
	return c.create()
}

// absorb folds a completed body repetition into the loop preceding it:
// for each candidate run length m, if the node m positions back is a
// loop with an m-node body equal to the trailing run, the run is folded
// (Iters++). Smaller m first so inner loops absorb before outer ones.
func (c *Compressor) absorb() bool {
	n := len(c.Seq)
	for m := 1; m <= c.window() && m < n; m++ {
		loop := c.Seq[n-1-m]
		if !loop.IsLoop() || len(loop.Body) != m {
			continue
		}
		run := c.Seq[n-m:]
		ok := true
		for k := 0; k < m; k++ {
			if !c.equal(loop.Body[k], run[k]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < m; k++ {
			c.size += MergeInto(loop.Body[k], run[k], c.Filter) - run[k].SizeBytes()
			c.Pool.Put(run[k])
		}
		loop.Iters++
		c.Seq = c.Seq[:n-m]
		return true
	}
	return false
}

// create folds the last L nodes with the L before them into a new loop.
func (c *Compressor) create() bool {
	n := len(c.Seq)
	maxL := c.window()
	if maxL > n/2 {
		maxL = n / 2
	}
	for L := 1; L <= maxL; L++ {
		a := c.Seq[n-2*L : n-L]
		b := c.Seq[n-L:]
		ok := true
		for k := 0; k < L; k++ {
			if !c.equal(a[k], b[k]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		body := make([]*Node, L)
		for k := 0; k < L; k++ {
			body[k] = a[k]
			c.size += MergeInto(body[k], b[k], c.Filter) - b[k].SizeBytes()
			c.Pool.Put(b[k])
		}
		loop := c.Pool.Loop(2, body)
		c.size += 16 + 24 // the new loop node's own overhead (see Node.SizeBytes)
		c.Seq = append(c.Seq[:n-2*L], loop)
		return true
	}
	return false
}

// Reset clears the sequence (Chameleon deletes partial traces after each
// flush) and returns the old one. Ownership of the returned nodes moves
// to the caller — recycle them via Pool.PutSeq when they are discarded
// rather than handed on.
func (c *Compressor) Reset() []*Node {
	old := c.Seq
	c.Seq = nil
	c.size = 0
	return old
}

// SizeBytes reports the current compressed trace footprint. It is O(1):
// the compressor maintains the byte count incrementally across appends
// and folds.
func (c *Compressor) SizeBytes() int { return c.size }
