package trace

import (
	"strings"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
)

func validFile() *File {
	send := leaf(1)
	recv := leaf(2)
	recv.Ev.Op = mpi.OpRecv
	recv.Ev.Dest = NoEndpoint
	recv.Ev.Src = Relative(-1)
	return &File{P: 4, Nodes: []*Node{
		send,
		NewLoop(3, []*Node{recv}),
	}}
}

func TestValidateOK(t *testing.T) {
	if err := validFile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatches(t *testing.T) {
	cases := map[string]func(f *File){
		"invalid rank count": func(f *File) { f.P = 0 },
		"zero iterations": func(f *File) {
			f.Nodes[1].Iters = 0
		},
		"empty loop body": func(f *File) {
			f.Nodes[1].Body = []*Node{}
		},
		"empty rank list": func(f *File) {
			f.Nodes[0].Ranks = ranklist.List{}
		},
		"outside": func(f *File) {
			f.Nodes[0].Ranks = ranklist.SingleRank(99)
		},
		"unknown operation": func(f *File) {
			f.Nodes[0].Ev.Op = mpi.OpNone
		},
		"negative byte count": func(f *File) {
			f.Nodes[0].Ev.Bytes = -1
		},
		"send without destination": func(f *File) {
			f.Nodes[0].Ev.Dest = NoEndpoint
		},
		"receive without source": func(f *File) {
			f.Nodes[1].Body[0].Ev.Src = NoEndpoint
		},
		"absolute rank": func(f *File) {
			f.Nodes[0].Ev.Dest = Absolute(7)
		},
		"unknown end-point kind": func(f *File) {
			f.Nodes[0].Ev.Dest = Endpoint{Kind: 99}
		},
		"nil node": func(f *File) {
			f.Nodes = append(f.Nodes, nil)
		},
	}
	for wantSubstr, corrupt := range cases {
		f := validFile()
		corrupt(f)
		err := f.Validate()
		if err == nil {
			t.Fatalf("%q not caught", wantSubstr)
		}
		if !strings.Contains(err.Error(), wantSubstr) {
			t.Fatalf("%q: got %v", wantSubstr, err)
		}
	}
}

func TestValidateFilteredLoop(t *testing.T) {
	// A filtered loop may carry Iters=0 if its histogram has samples.
	f := validFile()
	loop := f.Nodes[1]
	loop.Iters = 0
	other := NewLoop(4, []*Node{loop.Body[0].Clone()})
	loop.ItersHist = nil
	MergeInto(loop, other, true)
	if err := f.Validate(); err != nil {
		t.Fatalf("filtered loop rejected: %v", err)
	}
}

func TestValidateDeepNesting(t *testing.T) {
	inner := []*Node{leaf(1)}
	for i := 0; i < maxBinaryDepth+2; i++ {
		inner = []*Node{NewLoop(2, inner)}
	}
	f := &File{P: 4, Nodes: inner}
	if err := f.Validate(); err == nil {
		t.Fatalf("deep nesting accepted")
	}
}

func TestTracersProduceValidTraces(t *testing.T) {
	// Round-trip guard: traces from the real pipeline validate cleanly
	// (checked again at the facade level in the integration tests).
	f := validFile()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}
