package trace

import (
	"fmt"
	"strings"

	"chameleon/internal/ranklist"
	"chameleon/internal/stats"
)

// Node is one element of a compressed trace: either a leaf (one MPI
// event with its rank list and timing statistics) or a loop (an RSD /
// PRSD: Iters repetitions of Body). PRSDs arise naturally because Body
// members may themselves be loops.
type Node struct {
	// Leaf fields (valid when Body == nil).
	Ev    Event
	Ranks ranklist.List
	Delta *stats.Histogram // computation time preceding the event (ns)

	// Loop fields (valid when Body != nil).
	Iters     uint64
	Body      []*Node
	ItersHist *stats.Histogram // iteration-count spread when the
	// parameter filter merged loops with differing trip counts
}

// IsLoop reports whether the node is an RSD/PRSD loop.
func (n *Node) IsLoop() bool { return n.Body != nil }

// NewLeaf builds a leaf node for one observed event.
func NewLeaf(ev Event, ranks ranklist.List, deltaNs int64) *Node {
	h := stats.NewHistogram()
	h.Add(deltaNs)
	return &Node{Ev: ev, Ranks: ranks, Delta: h}
}

// NewLoop builds a loop node.
func NewLoop(iters uint64, body []*Node) *Node {
	return &Node{Iters: iters, Body: body}
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	c := &Node{Ev: n.Ev, Ranks: n.Ranks, Iters: n.Iters}
	if n.Delta != nil {
		c.Delta = n.Delta.Clone()
	}
	if n.ItersHist != nil {
		c.ItersHist = n.ItersHist.Clone()
	}
	if n.Body != nil {
		c.Body = CloneSeq(n.Body)
	}
	return c
}

// CloneSeq deep-copies a node sequence.
func CloneSeq(seq []*Node) []*Node {
	out := make([]*Node, len(seq))
	for i, n := range seq {
		out[i] = n.Clone()
	}
	return out
}

// StructuralEqual reports whether two nodes describe the same trace
// structure (the intra-node fold criterion): equal events, equal rank
// lists, and for loops equal bodies. With filter set, loop iteration
// counts may differ (ScalaTrace's parameter filter for irregular codes
// like POP); without it they must match exactly.
func StructuralEqual(a, b *Node, filter bool) bool {
	if a.IsLoop() != b.IsLoop() {
		return false
	}
	if !a.IsLoop() {
		return a.Ev.Equal(b.Ev) && a.Ranks.Equal(b.Ranks)
	}
	if !filter && a.Iters != b.Iters {
		return false
	}
	return SeqStructuralEqual(a.Body, b.Body, filter)
}

// SeqStructuralEqual compares two node sequences element-wise.
func SeqStructuralEqual(a, b []*Node, filter bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !StructuralEqual(a[i], b[i], filter) {
			return false
		}
	}
	return true
}

// MergeInto folds src's statistics into dst. Both must be structurally
// equal under the given filter setting. It returns the number of bytes
// dst grew by (only the creation of an iteration-count histogram changes
// a node's footprint), so the compressor can track its size exactly
// without re-walking the sequence.
func MergeInto(dst, src *Node, filter bool) int {
	if !dst.IsLoop() {
		dst.Delta.Merge(src.Delta)
		return 0
	}
	grown := 0
	if filter && dst.Iters != src.Iters {
		if dst.ItersHist == nil {
			dst.ItersHist = stats.NewHistogram()
			dst.ItersHist.Add(int64(dst.Iters))
			grown += dst.ItersHist.SizeBytes()
		}
		dst.ItersHist.Add(int64(src.Iters))
		if src.ItersHist != nil {
			dst.ItersHist.Merge(src.ItersHist)
		}
	}
	for i := range dst.Body {
		grown += MergeInto(dst.Body[i], src.Body[i], filter)
	}
	return grown
}

// MeanIters returns the loop trip count to use during replay: the exact
// count, or the histogram mean when the parameter filter merged
// differing counts.
func (n *Node) MeanIters() uint64 {
	if n.ItersHist != nil && n.ItersHist.Count() > 0 {
		m := n.ItersHist.Mean()
		if m < 1 {
			m = 1
		}
		return uint64(m)
	}
	return n.Iters
}

// LeafCount returns the number of leaf nodes in PRSD notation — the
// paper's n, "the number of MPI events in PRSD compressed notation".
func LeafCount(seq []*Node) int {
	n := 0
	for _, nd := range seq {
		if nd.IsLoop() {
			n += LeafCount(nd.Body)
		} else {
			n++
		}
	}
	return n
}

// NodeCount returns the total number of nodes (leaves and loops).
func NodeCount(seq []*Node) int {
	n := 0
	for _, nd := range seq {
		n++
		if nd.IsLoop() {
			n += NodeCount(nd.Body)
		}
	}
	return n
}

// DynamicEvents returns the number of dynamic MPI events the sequence
// represents (leaves weighted by enclosing loop iterations).
func DynamicEvents(seq []*Node) uint64 {
	var total uint64
	for _, nd := range seq {
		if nd.IsLoop() {
			total += nd.Iters * DynamicEvents(nd.Body)
		} else {
			total++
		}
	}
	return total
}

// SizeBytes approximates the serialized/in-memory footprint of the
// sequence; the space ledger (Table IV) and the merge cost model consume
// it.
func SizeBytes(seq []*Node) int {
	total := 0
	for _, nd := range seq {
		total += nd.SizeBytes()
	}
	return total
}

// SizeBytes approximates one node's footprint.
func (n *Node) SizeBytes() int {
	if n.IsLoop() {
		s := 16 + 24 // iters + slice header
		if n.ItersHist != nil {
			s += n.ItersHist.SizeBytes()
		}
		return s + SizeBytes(n.Body)
	}
	s := 64 // event tuple
	s += n.Ranks.SizeBytes()
	if n.Delta != nil {
		s += n.Delta.SizeBytes()
	}
	return s
}

// Format renders the sequence as an indented PRSD listing (chamdump).
func Format(seq []*Node) string {
	var b strings.Builder
	formatSeq(&b, seq, 0)
	return b.String()
}

func formatSeq(b *strings.Builder, seq []*Node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range seq {
		if n.IsLoop() {
			iters := fmt.Sprintf("%d", n.Iters)
			if n.ItersHist != nil {
				iters = fmt.Sprintf("~%d", n.MeanIters())
			}
			fmt.Fprintf(b, "%sPRSD<%s> {\n", ind, iters)
			formatSeq(b, n.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
			continue
		}
		fmt.Fprintf(b, "%s%s ranks=%s", ind, n.Ev.String(), n.Ranks.String())
		if n.Delta != nil && n.Delta.Count() > 0 {
			fmt.Fprintf(b, " delta=%s", n.Delta.String())
		}
		b.WriteString("\n")
	}
}
