package trace

// Binary trace format: a compact varint encoding of trace files, the
// analogue of ScalaTrace's on-disk format (the JSON form is for
// debugging and interchange).
//
// Version 2 ("CHAMTRC2", written by WriteBinary) interns call sites into
// a file-local table so every leaf stores a small varint index instead
// of its full 64-bit stack signature:
//
//	magic "CHAMTRC2"
//	varint P, flags byte (clustered, filter, has-retired), strings
//	benchmark/tracer
//	site table: varint count, then per site:
//	  uvarint signature, strings func/file, varint line
//	varint node count, then nodes depth-first:
//	  0x01 leaf:  op, site-index, comm, tag, bytes, dest, src, ranklist, hist
//	  0x02 loop:  iters, optional iters-hist, body count, body nodes
//	if flags has-retired: varint count, then the sorted retired ranks
//
// The retired section is written only when non-empty and announced by
// its flag bit, so a trace with no crashed ranks encodes byte-identical
// to files written before the section existed — content addresses of
// archived runs are stable across the addition.
//
// Version 1 ("CHAMTRC1") had no site table and stored the raw stack
// signature on each leaf; ReadBinary still reads it.
//
// Everything integer is unsigned/signed varint; histograms store count,
// min, max, mean and the sparse bucket set.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/stats"
)

var (
	binaryMagicV1 = [8]byte{'C', 'H', 'A', 'M', 'T', 'R', 'C', '1'}
	binaryMagicV2 = [8]byte{'C', 'H', 'A', 'M', 'T', 'R', 'C', '2'}
)

const (
	tagLeaf byte = 0x01
	tagLoop byte = 0x02
)

type binWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) varint(v int64) {
	if b.err != nil {
		return
	}
	n := binary.PutVarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) byte(v byte) {
	if b.err != nil {
		return
	}
	b.err = b.w.WriteByte(v)
}

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	b.err = err
	return v
}

func (b *binReader) varint() int64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(b.r)
	b.err = err
	return v
}

func (b *binReader) byte() byte {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}

func (b *binReader) str() string {
	n := b.uvarint()
	if b.err != nil || n > 1<<20 {
		if b.err == nil {
			b.err = fmt.Errorf("trace: string too long")
		}
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return ""
	}
	return string(buf)
}

// WriteBinary serializes the trace file in the compact binary format
// (version 2: site-indexed leaves behind a file-local call-site table).
func (f *File) WriteBinary(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.Write(binaryMagicV2[:]); err != nil {
		return err
	}
	bw.uvarint(uint64(f.P))
	retired := canonicalRetired(f.Retired)
	var flags byte
	if f.Clustered {
		flags |= 1
	}
	if f.Filter {
		flags |= 2
	}
	if len(retired) > 0 {
		flags |= 4
	}
	bw.byte(flags)
	bw.str(f.Benchmark)
	bw.str(f.Tracer)
	index := make(map[uint64]int)
	sites := collectSites(f.Nodes, index, nil)
	bw.uvarint(uint64(len(sites)))
	for _, s := range sites {
		bw.uvarint(s.Sig)
		bw.str(s.Func)
		bw.str(s.File)
		bw.varint(int64(s.Line))
	}
	writeSeq(bw, f.Nodes, index)
	if len(retired) > 0 {
		bw.uvarint(uint64(len(retired)))
		for _, rk := range retired {
			bw.varint(int64(rk))
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// canonicalRetired returns the retired list sorted and deduplicated —
// the encoding must be a function of the set, not of crash order, or
// identical runs would hash to different content addresses.
func canonicalRetired(retired []int) []int {
	if len(retired) == 0 {
		return nil
	}
	out := append([]int(nil), retired...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// collectSites walks the sequence and assigns every distinct call-site
// signature a dense file-local index in first-appearance order,
// resolving function/file/line metadata through the process intern
// table when the leaf carries an interned SiteID.
func collectSites(seq []*Node, index map[uint64]int, sites []sig.SiteInfo) []sig.SiteInfo {
	for _, n := range seq {
		if n.IsLoop() {
			sites = collectSites(n.Body, index, sites)
			continue
		}
		k := uint64(n.Ev.Stack)
		if _, ok := index[k]; ok {
			continue
		}
		info := sig.SiteInfo{ID: uint32(len(sites)), Sig: k}
		if n.Ev.Site != sig.NoSite {
			if ri, ok := sig.Sites.Resolve(n.Ev.Site); ok && ri.Sig == k {
				info.Func, info.File, info.Line = ri.Func, ri.File, ri.Line
			}
		}
		index[k] = len(sites)
		sites = append(sites, info)
	}
	return sites
}

func writeSeq(bw *binWriter, seq []*Node, index map[uint64]int) {
	bw.uvarint(uint64(len(seq)))
	for _, n := range seq {
		writeNode(bw, n, index)
	}
}

func writeNode(bw *binWriter, n *Node, index map[uint64]int) {
	if n.IsLoop() {
		bw.byte(tagLoop)
		bw.uvarint(n.Iters)
		writeHist(bw, n.ItersHist)
		writeSeq(bw, n.Body, index)
		return
	}
	bw.byte(tagLeaf)
	bw.uvarint(uint64(n.Ev.Op))
	bw.uvarint(uint64(index[uint64(n.Ev.Stack)]))
	bw.varint(int64(n.Ev.Comm))
	bw.varint(int64(n.Ev.Tag))
	bw.varint(int64(n.Ev.Bytes))
	writeEndpoint(bw, n.Ev.Dest)
	writeEndpoint(bw, n.Ev.Src)
	writeRanks(bw, n.Ranks)
	writeHist(bw, n.Delta)
}

func writeEndpoint(bw *binWriter, e Endpoint) {
	bw.byte(byte(e.Kind))
	if e.Kind == EPRelative || e.Kind == EPAbsolute {
		bw.varint(int64(e.Off))
	}
}

func writeRanks(bw *binWriter, l ranklist.List) {
	rls := l.Descriptors()
	bw.uvarint(uint64(len(rls)))
	for _, r := range rls {
		bw.varint(int64(r.Start))
		bw.uvarint(uint64(len(r.Dims)))
		for _, d := range r.Dims {
			bw.varint(int64(d.Iters))
			bw.varint(int64(d.Stride))
		}
	}
}

func writeHist(bw *binWriter, h *stats.Histogram) {
	if h == nil || h.Count() == 0 {
		bw.uvarint(0)
		return
	}
	bw.uvarint(h.Count())
	bw.varint(h.Min)
	bw.varint(h.Max)
	bw.uvarint(math.Float64bits(float64(h.Mean())))
	nonzero := 0
	for _, c := range h.Buckets {
		if c > 0 {
			nonzero++
		}
	}
	bw.uvarint(uint64(nonzero))
	for i, c := range h.Buckets {
		if c > 0 {
			bw.uvarint(uint64(i))
			bw.uvarint(c)
		}
	}
}

// decodeSites is the deserialized file-local site table: leaf indices
// map through it to stack signatures and process-interned SiteIDs. nil
// for version-1 files (leaves carry raw signatures).
type decodeSites struct {
	sigs []sig.Stack
	ids  []sig.SiteID
}

// ReadBinary deserializes a binary trace file (either format version).
func ReadBinary(r io.Reader) (*File, error) {
	br := &binReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(br.r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	var version int
	switch magic {
	case binaryMagicV1:
		version = 1
	case binaryMagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("trace: not a binary trace file")
	}
	f := &File{}
	f.P = int(br.uvarint())
	flags := br.byte()
	f.Clustered = flags&1 != 0
	f.Filter = flags&2 != 0
	f.Benchmark = br.str()
	f.Tracer = br.str()
	var sites *decodeSites
	if version >= 2 {
		sites = readSiteTable(br, f)
	}
	f.Nodes = readSeq(br, 0, sites)
	if flags&4 != 0 {
		f.Retired = readRetired(br, f.P)
	}
	if br.err != nil {
		return nil, fmt.Errorf("trace: decode binary: %w", br.err)
	}
	if f.P <= 0 {
		return nil, fmt.Errorf("trace: invalid rank count %d", f.P)
	}
	return f, nil
}

// readSiteTable decodes the v2 call-site table, re-interning each entry
// into the process table (so decoded events get live SiteIDs) and
// recording the serializable form on the file.
func readSiteTable(br *binReader, f *File) *decodeSites {
	n := br.uvarint()
	if br.err != nil || n > 1<<20 {
		if br.err == nil {
			br.err = fmt.Errorf("trace: site table too large")
		}
		return nil
	}
	// Cap the preallocation: n is attacker-controlled in a corrupt
	// file, and each entry consumes at least three bytes of input, so a
	// bogus huge count hits EOF long before the slices grow this large.
	pre := n
	if pre > 4096 {
		pre = 4096
	}
	ds := &decodeSites{
		sigs: make([]sig.Stack, 0, pre),
		ids:  make([]sig.SiteID, 0, pre),
	}
	for i := uint64(0); i < n && br.err == nil; i++ {
		info := sig.SiteInfo{
			ID:   uint32(i),
			Sig:  br.uvarint(),
			Func: br.str(),
			File: br.str(),
			Line: int(br.varint()),
		}
		ds.sigs = append(ds.sigs, sig.Stack(info.Sig))
		ds.ids = append(ds.ids, sig.Sites.InternSigMeta(info))
		f.Sites = append(f.Sites, info)
	}
	return ds
}

const maxBinaryDepth = 64

func readSeq(br *binReader, depth int, sites *decodeSites) []*Node {
	if depth > maxBinaryDepth {
		br.err = fmt.Errorf("trace: nesting too deep")
		return nil
	}
	n := br.uvarint()
	if br.err != nil || n > 1<<24 {
		if br.err == nil {
			br.err = fmt.Errorf("trace: node count too large")
		}
		return nil
	}
	// Bound the preallocation: a corrupt count up to 1<<24 would
	// otherwise commit a 128MB slice before the first decode error.
	pre := n
	if pre > 4096 {
		pre = 4096
	}
	seq := make([]*Node, 0, pre)
	for i := uint64(0); i < n && br.err == nil; i++ {
		seq = append(seq, readNode(br, depth, sites))
	}
	return seq
}

func readNode(br *binReader, depth int, sites *decodeSites) *Node {
	switch br.byte() {
	case tagLoop:
		node := &Node{Iters: br.uvarint()}
		node.ItersHist = readHist(br)
		node.Body = readSeq(br, depth+1, sites)
		if node.Body == nil {
			node.Body = []*Node{}
		}
		return node
	case tagLeaf:
		node := &Node{}
		node.Ev.Op = mpi.OpCode(br.uvarint())
		if sites != nil {
			idx := br.uvarint()
			if idx >= uint64(len(sites.sigs)) {
				if br.err == nil {
					br.err = fmt.Errorf("trace: site index %d out of range", idx)
				}
				node.Delta = stats.NewHistogram()
				return node
			}
			node.Ev.Stack = sites.sigs[idx]
			node.Ev.Site = sites.ids[idx]
		} else {
			node.Ev.Stack = sig.Stack(br.uvarint())
		}
		node.Ev.Comm = mpi.CommID(br.varint())
		node.Ev.Tag = int(br.varint())
		node.Ev.Bytes = int(br.varint())
		node.Ev.Dest = readEndpoint(br)
		node.Ev.Src = readEndpoint(br)
		node.Ranks = readRanks(br)
		node.Delta = readHist(br)
		if node.Delta == nil {
			node.Delta = stats.NewHistogram()
		}
		return node
	default:
		if br.err == nil {
			br.err = fmt.Errorf("trace: unknown node tag")
		}
		return &Node{Delta: stats.NewHistogram()}
	}
}

// readRetired decodes the optional trailing retired-ranks section. The
// count is bounded by the file's rank count (a retired rank must be a
// world rank), so a corrupt count cannot force a huge allocation.
func readRetired(br *binReader, p int) []int {
	n := br.uvarint()
	if br.err != nil {
		return nil
	}
	if p < 0 || n > uint64(p) {
		br.err = fmt.Errorf("trace: retired count %d out of range", n)
		return nil
	}
	// Cap the preallocation: P is attacker-controlled in a corrupt file.
	pre := n
	if pre > 4096 {
		pre = 4096
	}
	out := make([]int, 0, pre)
	for i := uint64(0); i < n && br.err == nil; i++ {
		rk := br.varint()
		if rk < 0 || rk >= int64(p) {
			br.err = fmt.Errorf("trace: retired rank %d out of range", rk)
			return nil
		}
		out = append(out, int(rk))
	}
	return out
}

func readEndpoint(br *binReader) Endpoint {
	e := Endpoint{Kind: EPKind(br.byte())}
	if e.Kind == EPRelative || e.Kind == EPAbsolute {
		e.Off = int(br.varint())
	}
	return e
}

func readRanks(br *binReader) ranklist.List {
	n := br.uvarint()
	if br.err != nil || n > 1<<20 {
		if br.err == nil {
			br.err = fmt.Errorf("trace: rank list too large")
		}
		return ranklist.List{}
	}
	// maxRankExpansion bounds the total rank count one leaf may decode
	// to: RL.Ranks materializes the cross product of its dimensions, so
	// corrupt iteration counts must be rejected before expansion (a
	// negative Iters would panic the allocator; a huge one would OOM).
	const maxRankExpansion = 1 << 20
	var ranks []int
	total := uint64(0)
	for i := uint64(0); i < n && br.err == nil; i++ {
		start := int(br.varint())
		if start < 0 || start > 1<<30 {
			br.err = fmt.Errorf("trace: rank list start %d out of range", start)
			return ranklist.List{}
		}
		dims := br.uvarint()
		if dims > 8 {
			br.err = fmt.Errorf("trace: rank list dims too large")
			return ranklist.List{}
		}
		rl := ranklist.RL{Start: start}
		size := uint64(1)
		for d := uint64(0); d < dims; d++ {
			iters := br.varint()
			stride := br.varint()
			if iters < 1 || iters > maxRankExpansion ||
				stride < -(1<<30) || stride > 1<<30 {
				if br.err == nil {
					br.err = fmt.Errorf("trace: rank list dimension out of range")
				}
				return ranklist.List{}
			}
			size *= uint64(iters)
			if size > maxRankExpansion {
				br.err = fmt.Errorf("trace: rank list too large")
				return ranklist.List{}
			}
			rl.Dims = append(rl.Dims, ranklist.Dim{
				Iters:  int(iters),
				Stride: int(stride),
			})
		}
		total += size
		if total > maxRankExpansion {
			br.err = fmt.Errorf("trace: rank list too large")
			return ranklist.List{}
		}
		if br.err != nil {
			return ranklist.List{}
		}
		ranks = append(ranks, rl.Ranks()...)
	}
	return ranklist.FromRanks(ranks)
}

func readHist(br *binReader) *stats.Histogram {
	count := br.uvarint()
	if count == 0 {
		return nil
	}
	h := stats.NewHistogram()
	min := br.varint()
	max := br.varint()
	mean := math.Float64frombits(br.uvarint())
	nonzero := br.uvarint()
	if nonzero > 64 {
		br.err = fmt.Errorf("trace: histogram buckets out of range")
		return h
	}
	for i := uint64(0); i < nonzero && br.err == nil; i++ {
		idx := br.uvarint()
		c := br.uvarint()
		if idx < 64 {
			h.Buckets[idx] = c
		}
	}
	h.Restore(min, max, mean, count)
	return h
}

// SaveBinary writes the trace to path in binary form.
func (f *File) SaveBinary(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := f.WriteBinary(out); err != nil {
		return err
	}
	return out.Close()
}

// LoadAny reads a trace file in either format, sniffing the magic.
func LoadAny(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return ReadAny(in)
}

// ReadAny reads a trace from r in either format (binary v1/v2 or
// JSON), sniffing the magic.
func ReadAny(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err == nil && ([8]byte(head) == binaryMagicV1 || [8]byte(head) == binaryMagicV2) {
		return ReadBinary(br)
	}
	return Read(br)
}
