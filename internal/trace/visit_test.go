package trace

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
)

// buildVisitFixture returns [leaf0, loop(3){leaf1, loop(2){leaf2}}, leaf3]:
// three windows, nested loops, known weights.
func buildVisitFixture() []*Node {
	leaf := func(tag int) *Node {
		return NewLeaf(Event{Op: mpi.OpSend, Tag: tag, Bytes: 8}, ranklist.SingleRank(0), 100)
	}
	inner := NewLoop(2, []*Node{leaf(2)})
	outer := NewLoop(3, []*Node{leaf(1), inner})
	return []*Node{leaf(0), outer, leaf(3)}
}

func TestVisitLeavesWeightsAndWindows(t *testing.T) {
	seq := buildVisitFixture()
	type got struct {
		tag    int
		mult   uint64
		depth  int
		window int
	}
	var out []got
	VisitLeaves(seq, func(n *Node, c Cursor) {
		out = append(out, got{n.Ev.Tag, c.Mult, c.Depth, c.Window})
	})
	want := []got{
		{0, 1, 0, 0},
		{1, 3, 1, 1},
		{2, 6, 2, 1},
		{3, 1, 0, 2},
	}
	if len(out) != len(want) {
		t.Fatalf("visited %d leaves, want %d: %+v", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("leaf %d: got %+v, want %+v", i, out[i], want[i])
		}
	}
}

// TestVisitWeightedCountMatchesDynamicEvents proves the closed-form
// identity the analysis engine rests on: summing Mult over leaves equals
// expanding every loop. MeanIters and Iters agree for unfiltered traces.
func TestVisitWeightedCountMatchesDynamicEvents(t *testing.T) {
	seq := buildVisitFixture()
	var sum uint64
	VisitLeaves(seq, func(n *Node, c Cursor) { sum += c.Mult })
	if want := DynamicEvents(seq); sum != want {
		t.Fatalf("weighted leaf sum %d != DynamicEvents %d", sum, want)
	}
}

// pruningVisitor prunes loops and counts what it saw.
type pruningVisitor struct {
	enters, leaves, leafs int
}

func (p *pruningVisitor) EnterLoop(*Node, Cursor) bool { p.enters++; return false }
func (p *pruningVisitor) LeaveLoop(*Node, Cursor)      { p.leaves++ }
func (p *pruningVisitor) Leaf(*Node, Cursor)           { p.leafs++ }

func TestAcceptPrunesOnEnterLoopFalse(t *testing.T) {
	seq := buildVisitFixture()
	v := &pruningVisitor{}
	Accept(seq, v)
	if v.enters != 1 {
		t.Errorf("EnterLoop called %d times, want 1 (outer loop only)", v.enters)
	}
	if v.leaves != 0 {
		t.Errorf("LeaveLoop called %d times for pruned loops, want 0", v.leaves)
	}
	if v.leafs != 2 {
		t.Errorf("visited %d top-level leaves, want 2", v.leafs)
	}
}

func TestAcceptEmptySequence(t *testing.T) {
	VisitLeaves(nil, func(*Node, Cursor) { t.Fatal("leaf visited in empty sequence") })
}
