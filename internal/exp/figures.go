package exp

import (
	"fmt"

	"chameleon"
	"chameleon/internal/apps"
	"chameleon/internal/vtime"
)

// Figure4 measures strong-scaling execution overhead: the
// non-instrumented application time against Chameleon's and ScalaTrace's
// tracing overhead (paper Figure 4, log-scale y).
func Figure4(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Strong scaling: overhead [secs] — APP vs Chameleon vs ScalaTrace",
		Header: []string{"Pgm", "P", "APP", "Chameleon", "ScalaTrace", "ST/CH"},
	}
	type cfg struct {
		name   string
		scales []int
	}
	cfgs := []cfg{
		{"BT", p.Scales}, {"LU", p.Scales}, {"SP", p.Scales}, {"POP", p.Scales},
		{"EMF", p.EMFScales},
	}
	for _, c := range cfgs {
		for _, scale := range c.scales {
			app, st, ch, err := runTriple(c.name, "D", scale, nil)
			if err != nil {
				return nil, fmt.Errorf("%s(%d): %w", c.name, scale, err)
			}
			chOv, stOv := chOverhead(ch), stOverhead(st)
			ratio := float64(stOv) / float64(chOv)
			t.Rows = append(t.Rows, []string{
				c.name, fmt.Sprintf("%d", scale),
				secs(vtime.Duration(app.Time)*vtime.Duration(scale)) + " (agg)",
				secs(chOv), secs(stOv), fmt.Sprintf("%.1fx", ratio),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Chameleon 2-3 orders of magnitude below ScalaTrace at scale (Obs. 2),",
		"except EMF's tiny 6-event traces, where the gap narrows and inverts at small P")
	return t, nil
}

// Figure5 replays the strong-scaling traces and reports replay times and
// the accuracy metric ACC = 1-|t-t'|/t (paper Figure 5; BT 97.75%, SP
// 95.5%, LU 91%, POP 89.75%, EMF 87%).
func Figure5(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Strong scaling: replay time [secs] and accuracy",
		Header: []string{"Pgm", "P", "APP", "ST-replay", "CH-replay", "ACC vs ST", "ACC vs APP"},
	}
	type cfg struct {
		name   string
		scales []int
	}
	cfgs := []cfg{
		{"BT", p.Scales}, {"LU", p.Scales}, {"SP", p.Scales}, {"POP", p.Scales},
		{"EMF", p.EMFScales},
	}
	for _, c := range cfgs {
		for _, scale := range c.scales {
			app, st, ch, err := runTriple(c.name, "D", scale, nil)
			if err != nil {
				return nil, err
			}
			strep, err := chameleon.Replay(st.Trace, chameleon.DefaultModel())
			if err != nil {
				return nil, fmt.Errorf("%s(%d) ST replay: %w", c.name, scale, err)
			}
			chrep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
			if err != nil {
				return nil, fmt.Errorf("%s(%d) CH replay: %w", c.name, scale, err)
			}
			t.Rows = append(t.Rows, []string{
				c.name, fmt.Sprintf("%d", scale),
				secs(vtime.Duration(app.Time)), secs(strep.Time), secs(chrep.Time),
				pct(chameleon.Accuracy(strep.Time, chrep.Time)),
				pct(chameleon.Accuracy(vtime.Duration(app.Time), chrep.Time)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: clustered replay ~87-98% accurate vs application time (Obs. 3)")
	return t, nil
}

// Figure6 measures weak-scaling overhead for LU and Sweep3D (paper
// Figure 6, log-scale y).
func Figure6(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Weak scaling: overhead [secs] — APP vs Chameleon vs ScalaTrace",
		Header: []string{"Pgm", "P", "APP", "Chameleon", "ScalaTrace", "ST/CH"},
	}
	for _, scale := range p.Scales {
		for _, name := range []string{"LUW", "S3DW"} {
			app, st, ch, err := weakTriple(name, scale)
			if err != nil {
				return nil, err
			}
			chOv, stOv := chOverhead(ch), stOverhead(st)
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", scale),
				secs(vtime.Duration(app.Time) * vtime.Duration(scale)),
				secs(chOv), secs(stOv),
				fmt.Sprintf("%.1fx", float64(stOv)/float64(chOv)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Chameleon 1-3 orders of magnitude below ScalaTrace (Obs. 4)")
	return t, nil
}

func weakSpec(name string, p int) (chameleon.Spec, error) {
	if name == "S3DW" {
		return apps.Sweep3DWeak(p), nil
	}
	return apps.Registry("LUW", apps.ClassD, p)
}

func weakTriple(name string, p int) (app, st, ch *chameleon.Output, err error) {
	spec, err := weakSpec(name, p)
	if err != nil {
		return nil, nil, nil, err
	}
	if app, err = chameleon.RunSpec(spec, chameleon.TracerNone, nil); err != nil {
		return
	}
	if st, err = chameleon.RunSpec(spec, chameleon.TracerScalaTrace, nil); err != nil {
		return
	}
	ch, err = chameleon.RunSpec(spec, chameleon.TracerChameleon, nil)
	return
}

// Figure7 replays the weak-scaling traces (paper Figure 7; LU 90.75%,
// Sweep3D 98.32% accurate).
func Figure7(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Weak scaling: replay time [secs] and accuracy",
		Header: []string{"Pgm", "P", "APP", "ST-replay", "CH-replay", "ACC vs ST", "ACC vs APP"},
	}
	for _, scale := range p.Scales {
		for _, name := range []string{"LUW", "S3DW"} {
			app, st, ch, err := weakTriple(name, scale)
			if err != nil {
				return nil, err
			}
			strep, err := chameleon.Replay(st.Trace, chameleon.DefaultModel())
			if err != nil {
				return nil, err
			}
			chrep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", scale),
				secs(vtime.Duration(app.Time)), secs(strep.Time), secs(chrep.Time),
				pct(chameleon.Accuracy(strep.Time, chrep.Time)),
				pct(chameleon.Accuracy(vtime.Duration(app.Time), chrep.Time)),
			})
		}
	}
	t.Notes = append(t.Notes, "paper shape: weak-scaling replay ~91-98% accurate (Obs. 5)")
	return t, nil
}

// Figure8 charts time per clustering state for Chameleon vs ScalaTrace
// under the maximum number of marker calls — one per timestep (paper
// Figure 8, P=1024).
func Figure8(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Overhead per activity, max marker calls, P=%d [secs]", p.TableP),
		Header: []string{"Pgm", "CH-marker", "CH-cluster", "CH-intercomp", "CH-total", "ST-intercomp"},
	}
	for _, name := range []string{"BT", "LU", "SP", "POP", "S3D", "EMF"} {
		scale := p.TableP
		if name == "EMF" {
			scale = p.EMFScales[len(p.EMFScales)-1]
		}
		st, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerScalaTrace, nil)
		if err != nil {
			return nil, err
		}
		ch, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			secs(ch.OverheadBy["marker"]),
			secs(ch.OverheadBy["cluster"]),
			secs(ch.OverheadBy["intercomp"]),
			secs(chOverhead(ch)),
			secs(stOverhead(st)),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: even at max marker calls, Chameleon stays ~an order below ScalaTrace (Obs. 6)")
	return t, nil
}

// Figure9 sweeps the number of marker calls for LU class D (paper
// Figure 9: overhead grows with marker calls, maxing at one call per
// timestep, still an order below ScalaTrace).
func Figure9(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Chameleon overhead vs # marker calls: LU class D, P=%d", p.TableP),
		Header: []string{"#Calls", "Chameleon [secs]", "ST [secs]"},
	}
	st, err := chameleon.RunBenchmark("LU", "D", p.TableP, chameleon.TracerScalaTrace, nil)
	if err != nil {
		return nil, err
	}
	stS := secs(stOverhead(st))
	for _, freq := range []int{20, 10, 4, 2, 1} {
		ch, err := chameleon.RunBenchmark("LU", "D", p.TableP, chameleon.TracerChameleon, &chameleon.Config{Freq: freq})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", 300/freq), secs(chOverhead(ch)), stS,
		})
	}
	t.Notes = append(t.Notes, "paper shape: overhead maxes at 300 calls, still an order below ScalaTrace")
	return t, nil
}

// Figure10 forces phase changes in a modified LU (a new barrier every
// tenth timestep) and sweeps the number of re-clusterings (paper
// Figure 10).
func Figure10(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("Re-clustering cost: modified LU class D, 300 markers, P=%d", p.TableP),
		Header: []string{"#Phases", "#Re-clusterings", "Chameleon [secs]", "ST [secs]"},
	}
	st, err := chameleon.RunBenchmark("LU", "D", p.TableP, chameleon.TracerScalaTrace, nil)
	if err != nil {
		return nil, err
	}
	stS := secs(stOverhead(st))
	for _, phases := range []int{1, 5, 10, 20, 30} {
		spec := apps.LUModified(apps.ClassD, p.TableP, phases)
		ch, err := chameleon.RunSpec(spec, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", phases),
			fmt.Sprintf("%d", ch.Reclusterings),
			secs(chOverhead(ch)), stS,
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: cost grows mildly with re-clusterings; at 30 still an order below ScalaTrace (Obs. 7)")
	return t, nil
}

// Figure11 sweeps the input class for LU at P=SmallP (paper Figure 11:
// overhead grows with timestep count/problem size, stays an order below
// ScalaTrace across classes).
func Figure11(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("Overhead per activity vs input class: LU, P=%d [secs]", p.SmallP),
		Header: []string{"Class", "CH-marker", "CH-cluster", "CH-intercomp", "CH-total", "ST-intercomp"},
	}
	for _, class := range []string{"A", "B", "C", "D"} {
		st, err := chameleon.RunBenchmark("LU", class, p.SmallP, chameleon.TracerScalaTrace, nil)
		if err != nil {
			return nil, err
		}
		ch, err := chameleon.RunBenchmark("LU", class, p.SmallP, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			class,
			secs(ch.OverheadBy["marker"]),
			secs(ch.OverheadBy["cluster"]),
			secs(ch.OverheadBy["intercomp"]),
			secs(chOverhead(ch)),
			secs(stOverhead(st)),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: an order of magnitude below ScalaTrace irrespective of input size (Obs. 8)")
	return t, nil
}
