package exp

import (
	"bytes"
	"fmt"
	"strings"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/obs"
)

// ExpResilience sweeps the crash count on the PHASE workload: 0 to 3
// lead-phase crashes, each at a different rank and marker, measuring how
// trace completeness and the virtual makespan degrade. The shape claim:
// every run completes, every crash of a lead journals a failover, the
// trace keeps covering every surviving rank, and the makespan grows only
// by the re-trace windows the failovers force.
func ExpResilience(Params) (*Table, error) {
	t := &Table{
		ID:    "resilience",
		Title: "Extension: crash count vs. trace completeness and makespan (PHASE, P=16)",
		Header: []string{"faults", "survivors", "makespan [s]", "failovers",
			"trace events", "coverage"},
	}
	const p = 16
	crashes := []string{
		"crash rank=1 at marker=10",
		"crash rank=2 at marker=50",
		"crash rank=3 at marker=90",
	}
	for n := 0; n <= len(crashes); n++ {
		plan, err := chameleon.ParseFaultPlan(strings.Join(crashes[:n], "; "))
		if err != nil {
			return nil, err
		}
		inj, err := chameleon.NewFaultInjector(plan, 1, p)
		if err != nil {
			return nil, err
		}
		var journal bytes.Buffer
		o := chameleon.NewObserver(chameleon.ObsOptions{Journal: &journal})
		out, err := chameleon.RunBenchmark("PHASE", "A", p, chameleon.TracerChameleon,
			&chameleon.Config{Obs: o, Fault: inj})
		if err != nil {
			return nil, fmt.Errorf("%d crashes: %w", n, err)
		}
		events, err := chameleon.ReadJournal(bytes.NewReader(journal.Bytes()))
		if err != nil {
			return nil, err
		}
		failovers := 0
		for _, ev := range events {
			if ev.Kind == obs.KindFailover {
				failovers++
			}
		}
		if err := out.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("%d crashes: trace invalid: %w", n, err)
		}
		survivors := p - len(out.Departed)
		var total uint64
		covered := 0
		for _, v := range analysis.Volumes(out.Trace) {
			ev := v.SendEvents + v.RecvEvents + v.CollEvents
			total += ev
			dead := false
			for _, r := range out.Departed {
				if v.Rank == r {
					dead = true
				}
			}
			if !dead && ev > 0 {
				covered++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", survivors), secs(out.Time),
			fmt.Sprintf("%d", failovers), fmt.Sprintf("%d", total),
			fmt.Sprintf("%d/%d", covered, survivors),
		})
		if covered < survivors {
			t.Notes = append(t.Notes,
				fmt.Sprintf("%d crashes: trace covers only %d of %d survivors", n, covered, survivors))
		}
		if failovers < n {
			t.Notes = append(t.Notes,
				fmt.Sprintf("%d crashes: only %d failovers journaled", n, failovers))
		}
	}
	t.Notes = append(t.Notes,
		"shape: every crash of a lead journals a failover; the merged trace keeps covering all survivors")
	return t, nil
}
