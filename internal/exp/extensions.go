package exp

import (
	"fmt"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/extrap"
	"chameleon/internal/vtime"
)

// ExpEnergy estimates the DVFS energy saving the paper's future-work
// section projects: non-lead ranks idle through the lead phase, so
// down-clocking them recovers the tracing energy clustering already
// avoided spending.
func ExpEnergy(p Params) (*Table, error) {
	t := &Table{
		ID:     "energy",
		Title:  "Extension: DVFS energy estimate (paper future work)",
		Header: []string{"Pgm", "P", "ST total [J]", "CH total [J]", "CH DVFS-saved [J]"},
	}
	for _, name := range []string{"BT", "LU"} {
		scale := p.Scales[len(p.Scales)-1]
		st, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerScalaTrace, nil)
		if err != nil {
			return nil, err
		}
		ch, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", scale),
			fmt.Sprintf("%.0f", st.Energy.TotalJ),
			fmt.Sprintf("%.0f", ch.Energy.TotalJ),
			fmt.Sprintf("%.1f", ch.Energy.DVFSSavedJ),
		})
		if ch.Energy.DVFSSavedJ <= 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: no DVFS saving measured", name))
		}
	}
	t.Notes = append(t.Notes,
		"shape: only Chameleon exposes a DVFS saving — its P-K non-lead ranks skip tracing work entirely")
	return t, nil
}

// ExpExtrap validates trace extrapolation: a trace recorded at a small
// scale, extrapolated to a larger one, must be event-equivalent to the
// trace actually recorded there.
func ExpExtrap(p Params) (*Table, error) {
	t := &Table{
		ID:     "extrap",
		Title:  "Extension: ScalaExtrap-style trace extrapolation",
		Header: []string{"Pgm", "P src", "P dst", "events(extrap)", "events(actual)", "match"},
	}
	small, big := p.Scales[0], p.Scales[len(p.Scales)-1]
	for _, name := range []string{"BT", "CG"} {
		src, err := chameleon.RunBenchmark(name, "B", small, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, err
		}
		actual, err := chameleon.RunBenchmark(name, "B", big, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, err
		}
		predicted, err := extrap.Extrapolate(src.Trace, big)
		if err != nil {
			return nil, err
		}
		pe, err := chameleon.Replay(predicted, chameleon.DefaultModel())
		if err != nil {
			return nil, fmt.Errorf("%s extrapolated replay: %w", name, err)
		}
		ae, err := chameleon.Replay(actual.Trace, chameleon.DefaultModel())
		if err != nil {
			return nil, err
		}
		match := "yes"
		if pe.Events != ae.Events {
			match = fmt.Sprintf("no (%+d)", int64(pe.Events)-int64(ae.Events))
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", small), fmt.Sprintf("%d", big),
			fmt.Sprintf("%d", pe.Events), fmt.Sprintf("%d", ae.Events), match,
		})
	}
	t.Notes = append(t.Notes,
		"shape: the extrapolated trace replays the same dynamic event counts as a real run at the target scale")
	return t, nil
}

// ExpOnlineEquivalence checks the paper's correctness property across
// the suite: Chameleon's online trace is event-equivalent to
// ScalaTrace's Finalize-time global trace.
func ExpOnlineEquivalence(p Params) (*Table, error) {
	t := &Table{
		ID:     "equiv",
		Title:  "Extension: online trace vs ScalaTrace global trace equivalence",
		Header: []string{"Pgm", "P", "sites ST", "sites CH", "per-rank events equal"},
	}
	scale := p.Scales[0]
	for _, name := range []string{"BT", "LU", "SP", "CG", "MG", "FT", "S3D"} {
		st, err := chameleon.RunBenchmark(name, "B", scale, chameleon.TracerScalaTrace, nil)
		if err != nil {
			return nil, err
		}
		ch, err := chameleon.RunBenchmark(name, "B", scale, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, err
		}
		d := analysis.Compare(st.Trace, ch.Trace)
		sST := analysis.Summarize(st.Trace)
		sCH := analysis.Summarize(ch.Trace)
		equal := "yes"
		if len(d.EventDeltas) != 0 {
			equal = fmt.Sprintf("no (%d ranks differ)", len(d.EventDeltas))
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", sST.DistinctSites), fmt.Sprintf("%d", sCH.DistinctSites),
			equal,
		})
	}
	t.Notes = append(t.Notes,
		`paper claim: "Chameleon does not miss any MPI event"`)
	return t, nil
}

// ExpAblationK sweeps the cluster budget K for LU (the paper's prior
// work studied this; DESIGN.md lists it as an ablation).
func ExpAblationK(p Params) (*Table, error) {
	t := &Table{
		ID:     "ablation-k",
		Title:  "Ablation: cluster budget K (LU class D)",
		Header: []string{"K", "leads", "call-paths", "overhead [s]", "replay ACC vs APP"},
	}
	scale := p.SmallP
	app, err := chameleon.RunBenchmark("LU", "D", scale, chameleon.TracerNone, nil)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 3, 9, 18} {
		ch, err := chameleon.RunBenchmark("LU", "D", scale, chameleon.TracerChameleon, &chameleon.Config{K: k})
		if err != nil {
			return nil, err
		}
		rep, err := chameleon.Replay(ch.Trace, chameleon.DefaultModel())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", len(ch.Leads)),
			fmt.Sprintf("%d", ch.CallPathClusters),
			secs(chOverhead(ch)),
			pct(chameleon.Accuracy(vtime.Duration(app.Time), rep.Time)),
		})
	}
	t.Notes = append(t.Notes,
		"shape: K below the Call-Path count grows dynamically (leads >= call-paths); accuracy stays high")
	return t, nil
}

// ExpAutoMarker compares manual marker insertion with the automatic
// anchor detection (paper discussion item 2).
func ExpAutoMarker(p Params) (*Table, error) {
	t := &Table{
		ID:     "automarker",
		Title:  "Extension: automatic marker insertion vs manual markers",
		Header: []string{"Pgm", "P", "mode", "C", "L", "AT", "overhead [s]"},
	}
	scale := p.Scales[0]
	for _, name := range []string{"SP", "CG"} {
		manual, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, err
		}
		auto, err := chameleon.RunBenchmark(name, "D", scale, chameleon.TracerAutoChameleon, nil)
		if err != nil {
			return nil, err
		}
		for _, row := range []struct {
			mode string
			out  *chameleon.Output
		}{{"manual", manual}, {"auto", auto}} {
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", scale), row.mode,
				fmt.Sprintf("%d", row.out.StateCalls["C"]),
				fmt.Sprintf("%d", row.out.StateCalls["L"]),
				fmt.Sprintf("%d", row.out.StateCalls["AT"]),
				secs(chOverhead(row.out)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"shape: the auto-anchored run clusters once and spends most calls in the lead state, like the manual one")
	return t, nil
}
