// Package exp is the experiment harness: one driver per table and figure
// of the paper's evaluation (Tables I-IV, Figures 4-11), each emitting
// the same rows or series the paper reports, measured on the simulated
// runtime. Absolute numbers are virtual seconds under the calibrated
// cost model; the reproduced claims are the shapes — who wins, by what
// factor, where crossovers fall.
package exp

import (
	"fmt"
	"strings"

	"chameleon"
	"chameleon/internal/apps"
	"chameleon/internal/vtime"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // "table1", "fig4", ...
	Title  string
	Header []string
	Rows   [][]string
	// Notes records shape observations computed from the data.
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Params controls experiment scale.
type Params struct {
	// Scales are the strong/weak scaling rank counts (paper: 16..1024).
	Scales []int
	// EMFScales are the EMF rank counts (paper: 126..1001).
	EMFScales []int
	// TableP is the rank count for single-scale experiments (paper: 1024
	// for Table II / Figures 8-10, 256 for Figure 11 / Table IV).
	TableP int
	// SmallP is the reduced rank count (paper: 256).
	SmallP int
}

// Quick returns laptop-scale parameters (used by go test -bench).
func Quick() Params {
	return Params{
		Scales:    []int{16, 64},
		EMFScales: []int{26, 126},
		TableP:    64,
		SmallP:    36,
	}
}

// Full returns the paper-scale parameters.
func Full() Params {
	return Params{
		Scales:    []int{16, 64, 256, 1024},
		EMFScales: []int{126, 251, 501, 1001},
		TableP:    1024,
		SmallP:    256,
	}
}

// secs renders a virtual duration as seconds.
func secs(d vtime.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// chOverhead is the clustering-machinery overhead the paper's figures
// chart for Chameleon: marker handling + clustering + online
// inter-compression. Intra-node compression is excluded on both sides
// (it is common to every tracer).
func chOverhead(o *chameleon.Output) vtime.Duration {
	return o.OverheadBy["marker"] + o.OverheadBy["cluster"] + o.OverheadBy["intercomp"]
}

// stOverhead is the baseline's figure metric: the Finalize inter-node
// compression.
func stOverhead(o *chameleon.Output) vtime.Duration {
	return o.OverheadBy["intercomp"]
}

// runTriple runs a benchmark untraced, under ScalaTrace and under
// Chameleon.
func runTriple(name, class string, p int, override *chameleon.Config) (app, st, ch *chameleon.Output, err error) {
	if app, err = chameleon.RunBenchmark(name, class, p, chameleon.TracerNone, override); err != nil {
		return
	}
	if st, err = chameleon.RunBenchmark(name, class, p, chameleon.TracerScalaTrace, override); err != nil {
		return
	}
	ch, err = chameleon.RunBenchmark(name, class, p, chameleon.TracerChameleon, override)
	return
}

// All runs every experiment and returns the rendered tables in paper
// order.
func All(p Params) ([]*Table, error) {
	type job struct {
		name string
		run  func(Params) (*Table, error)
	}
	jobs := []job{
		{"table1", TableI},
		{"table2", TableII},
		{"fig4", Figure4},
		{"fig5", Figure5},
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"fig8", Figure8},
		{"fig9", Figure9},
		{"fig10", Figure10},
		{"fig11", Figure11},
		{"table3", TableIII},
		{"table4", TableIV},
	}
	var out []*Table
	for _, j := range jobs {
		t, err := j.run(p)
		if err != nil {
			return out, fmt.Errorf("%s: %w", j.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Lookup returns a single experiment driver by id.
func Lookup(id string) (func(Params) (*Table, error), bool) {
	switch id {
	case "table1":
		return TableI, true
	case "table2":
		return TableII, true
	case "table3":
		return TableIII, true
	case "table4":
		return TableIV, true
	case "fig4":
		return Figure4, true
	case "fig5":
		return Figure5, true
	case "fig6":
		return Figure6, true
	case "fig7":
		return Figure7, true
	case "fig8":
		return Figure8, true
	case "fig9":
		return Figure9, true
	case "fig10":
		return Figure10, true
	case "fig11":
		return Figure11, true
	case "energy":
		return ExpEnergy, true
	case "extrap":
		return ExpExtrap, true
	case "equiv":
		return ExpOnlineEquivalence, true
	case "ablation-k":
		return ExpAblationK, true
	case "automarker":
		return ExpAutoMarker, true
	case "resilience":
		return ExpResilience, true
	}
	return nil, false
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "table3", "table4"}
}

// ExtensionIDs lists the beyond-the-paper experiments (run with
// chamexp -ext): the future-work energy estimate, trace extrapolation,
// the online-trace equivalence audit, the K ablation, automatic marker
// insertion, and the fault-injection resilience sweep.
func ExtensionIDs() []string {
	return []string{"equiv", "energy", "extrap", "ablation-k", "automarker", "resilience"}
}

// benchSpec fetches the spec for one of the evaluation benchmarks at
// class D (the paper's input size) unless the benchmark is size-fixed.
func benchSpec(name string, p int) (chameleon.Spec, error) {
	return apps.Registry(name, apps.ClassD, p)
}
