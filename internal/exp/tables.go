package exp

import (
	"fmt"

	"chameleon"
)

// TableI reports the a-priori cluster counts per benchmark (paper
// Table I; the values are inputs, "determined a priori").
func TableI(p Params) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "# of Clusters for the Tested Benchmarks",
		Header: []string{"Pgm", "BT", "LU", "SP", "POP", "S3D", "LUW", "EMF"},
	}
	row := []string{"K"}
	for _, name := range []string{"BT", "LU", "SP", "POP", "S3D", "LUW"} {
		spec, err := benchSpec(name, 16)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%d", spec.K))
	}
	spec, err := benchSpec("EMF", 26)
	if err != nil {
		return nil, err
	}
	row = append(row, fmt.Sprintf("%d", spec.K))
	t.Rows = append(t.Rows, row)
	return t, nil
}

// TableII runs every benchmark under Chameleon and reports the executed
// marker calls and the transition-graph state counts (paper Table II).
func TableII(p Params) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "# of Marker Calls, and # of times in states C, L and AT",
		Header: []string{"Pgm (P)", "#Iters.", "#Freq.", "#Calls", "#C", "#L", "#AT"},
	}
	type run struct {
		name string
		p    int
	}
	runs := []run{
		{"BT", p.TableP}, {"LU", p.TableP}, {"SP", p.TableP},
		{"POP", p.TableP}, {"S3D", p.TableP}, {"LUW", p.TableP},
	}
	for _, ep := range p.EMFScales {
		runs = append(runs, run{"EMF", ep})
	}
	for _, r := range runs {
		spec, err := benchSpec(r.name, r.p)
		if err != nil {
			return nil, err
		}
		out, err := chameleon.RunBenchmark(r.name, "D", r.p, chameleon.TracerChameleon, nil)
		if err != nil {
			return nil, fmt.Errorf("%s(%d): %w", r.name, r.p, err)
		}
		calls := out.StateCalls["AT"] + out.StateCalls["C"] + out.StateCalls["L"]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s(%d)", r.name, r.p),
			fmt.Sprintf("%d", spec.Iters),
			fmt.Sprintf("%d", spec.Freq),
			fmt.Sprintf("%d", calls),
			fmt.Sprintf("%d", out.StateCalls["C"]),
			fmt.Sprintf("%d", out.StateCalls["L"]),
			fmt.Sprintf("%d", out.StateCalls["AT"]),
		})
		if out.StateCalls["C"] == 1 {
			continue
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %d clusterings (paper: 1)", r.name, out.StateCalls["C"]))
	}
	t.Notes = append(t.Notes, "paper shape: one clustering per run; Lead state >= 70% of calls")
	return t, nil
}

// TableIII compares ACURDION with Chameleon under the maximum number of
// marker calls (paper Table III: BT class D, markers at every timestep).
func TableIII(p Params) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Overhead[secs]: BT Class D — ACURDION vs Chameleon (max marker calls)",
		Header: []string{"Pgm (P)"},
	}
	acRow := []string{"ACURDION"}
	chRow := []string{"Chameleon"}
	for _, scale := range p.Scales {
		t.Header = append(t.Header, fmt.Sprintf("%d", scale))
		ac, err := chameleon.RunBenchmark("BT", "D", scale, chameleon.TracerACURDION, nil)
		if err != nil {
			return nil, err
		}
		// Max marker calls: a marker at every timestep (freq 1).
		ch, err := chameleon.RunBenchmark("BT", "D", scale, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
		if err != nil {
			return nil, err
		}
		acOv := ac.OverheadBy["cluster"] + ac.OverheadBy["intercomp"]
		chOv := chOverhead(ch)
		acRow = append(acRow, secs(acOv))
		chRow = append(chRow, secs(chOv))
		if chOv > acOv {
			t.Notes = append(t.Notes, fmt.Sprintf("P=%d: Chameleon/ACURDION = %.1fx (paper: ~2x)",
				scale, float64(chOv)/float64(acOv)))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("P=%d: SHAPE DEVIATION — ACURDION not cheaper", scale))
		}
	}
	t.Rows = append(t.Rows, acRow, chRow)
	return t, nil
}

// TableIV reports per-state trace memory for lead and non-lead ranks
// (paper Table IV: BT class D, P=SmallP, markers at every timestep).
func TableIV(p Params) (*Table, error) {
	out, err := chameleon.RunBenchmark("BT", "D", p.SmallP, chameleon.TracerChameleon, &chameleon.Config{Freq: 1})
	if err != nil {
		return nil, err
	}
	// Classify ranks.
	isLead := make(map[int]bool, len(out.Leads))
	for _, l := range out.Leads {
		isLead[l] = true
	}
	var leadRanks []int
	for r := 0; r < out.P; r++ {
		if isLead[r] && r != 0 {
			leadRanks = append(leadRanks, r)
		}
	}
	states := []string{"AT", "C", "L", "F"}
	t := &Table{
		ID: "table4",
		Title: fmt.Sprintf("Memory Allocation for Traces in Bytes, BT Class D P=%d (%d leads, %d non-leads)",
			out.P, len(out.Leads), out.P-len(out.Leads)),
		Header: []string{"State", "#Calls", "rank0*", "leads(avg)", "non-lead(avg)"},
	}
	var r0Tot, leadTot, nonTot int
	for si, st := range states {
		r0 := out.SpaceByState[0][si]
		leadSum, nonSum, nonCount := 0, 0, 0
		for r := 1; r < out.P; r++ {
			if isLead[r] {
				leadSum += out.SpaceByState[r][si]
			} else {
				nonSum += out.SpaceByState[r][si]
				nonCount++
			}
		}
		leadAvg := 0
		if len(leadRanks) > 0 {
			leadAvg = leadSum / len(leadRanks)
		}
		nonAvg := 0
		if nonCount > 0 {
			nonAvg = nonSum / nonCount
		}
		r0Tot += r0
		leadTot += leadAvg
		nonTot += nonAvg
		t.Rows = append(t.Rows, []string{
			st,
			fmt.Sprintf("%d", out.StateCalls[st]),
			fmt.Sprintf("%d", r0),
			fmt.Sprintf("%d", leadAvg),
			fmt.Sprintf("%d", nonAvg),
		})
	}
	t.Rows = append(t.Rows, []string{"Total", "", fmt.Sprintf("%d", r0Tot),
		fmt.Sprintf("%d", leadTot), fmt.Sprintf("%d", nonTot)})
	t.Notes = append(t.Notes,
		"* rank 0 allocates space for its own trace + the global online trace")
	// Shape checks.
	lIdx := 2 // state L row
	nonLeadL := out.SpaceByState[1][lIdx]
	for r := 1; r < out.P; r++ {
		if !isLead[r] {
			nonLeadL = out.SpaceByState[r][lIdx]
			break
		}
	}
	if nonLeadL == 0 {
		t.Notes = append(t.Notes, "shape ok: non-lead ranks allocate 0 bytes in state L")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("SHAPE DEVIATION: non-lead L allocation = %d", nonLeadL))
	}
	if r0Tot > leadTot && leadTot > 0 && nonTot < leadTot {
		t.Notes = append(t.Notes, "shape ok: rank0 > leads > non-leads")
	}
	return t, nil
}
