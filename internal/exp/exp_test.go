package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableIStatic(t *testing.T) {
	tab, err := TableI(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 8 {
		t.Fatalf("shape: %+v", tab.Rows)
	}
	// The paper's Table I values.
	want := []string{"K", "3", "9", "3", "3", "9", "9", "2"}
	for i, w := range want {
		if tab.Rows[0][i] != w {
			t.Fatalf("col %d = %s, want %s", i, tab.Rows[0][i], w)
		}
	}
}

func TestRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note one"},
	}
	s := tab.Render()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") || !strings.Contains(s, "note one") {
		t.Fatalf("render: %q", s)
	}
}

func TestLookupAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("missing driver for %s", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatalf("bogus id resolved")
	}
	if len(IDs()) != 12 {
		t.Fatalf("experiments = %d, want 12 (4 tables + 8 figures)", len(IDs()))
	}
}

func TestParams(t *testing.T) {
	q, f := Quick(), Full()
	if q.TableP >= f.TableP || q.Scales[len(q.Scales)-1] >= f.Scales[len(f.Scales)-1] {
		t.Fatalf("quick params not smaller than full")
	}
	if f.Scales[len(f.Scales)-1] != 1024 || f.EMFScales[len(f.EMFScales)-1] != 1001 {
		t.Fatalf("full params not paper scale: %+v", f)
	}
}

// TestTableIIQuickShape runs the cheapest state-count experiment at
// reduced scale and validates the paper's shape: exactly one clustering,
// lead state dominating.
func TestTableIIQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several traced benchmarks")
	}
	tab, err := TableII(Params{Scales: []int{16}, EMFScales: []int{26}, TableP: 16, SmallP: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		c, _ := strconv.Atoi(row[4])
		l, _ := strconv.Atoi(row[5])
		calls, _ := strconv.Atoi(row[3])
		if c != 1 {
			t.Fatalf("%s: %d clusterings", row[0], c)
		}
		if float64(l) < 0.6*float64(calls) {
			t.Fatalf("%s: lead state only %d of %d calls", row[0], l, calls)
		}
	}
}

// TestExtensionDriversSmoke runs the beyond-the-paper experiments at a
// tiny scale.
func TestExtensionDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs traced benchmarks")
	}
	tiny := Params{Scales: []int{16, 36}, EMFScales: []int{26}, TableP: 16, SmallP: 16}
	for _, id := range ExtensionIDs() {
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := run(tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if tab.Render() == "" {
			t.Fatalf("%s renders empty", id)
		}
	}
}
