package vtime

import (
	"sync"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock not zero")
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("advance: %d", c.Now())
	}
	c.Advance(-5) // no-op
	c.Advance(0)
	if c.Now() != 100 {
		t.Fatalf("negative/zero advance changed clock")
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(50)
	c.AdvanceTo(30) // must not rewind
	if c.Now() != 50 {
		t.Fatalf("AdvanceTo rewound: %d", c.Now())
	}
	c.AdvanceTo(80)
	if c.Now() != 80 {
		t.Fatalf("AdvanceTo: %d", c.Now())
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Fatalf("concurrent advance lost updates: %d", c.Now())
	}
}

func TestPtoP(t *testing.T) {
	m := Default()
	zero := m.PtoP(0)
	if zero != m.Alpha {
		t.Fatalf("empty message cost = %v, want alpha %v", zero, m.Alpha)
	}
	big := m.PtoP(1 << 20)
	if big <= zero {
		t.Fatalf("transfer cost not monotone")
	}
	// ~3.2GB/s: 1MiB should take ~330us on top of alpha.
	transfer := big - m.Alpha
	if transfer < 250*Microsecond || transfer > 450*Microsecond {
		t.Fatalf("1MiB transfer = %v, want ~328us", transfer)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for p, want := range cases {
		if got := Log2Ceil(p); got != want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", p, got, want)
		}
	}
	if Log2Ceil(0) != 0 || Log2Ceil(-3) != 0 {
		t.Fatalf("degenerate Log2Ceil")
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Charge(CatApp, 100)
	l.Charge(CatIntra, 10)
	l.Charge(CatMarker, 20)
	l.Charge(CatCluster, 30)
	l.Charge(CatInterComp, 40)
	l.Charge(CatIntra, -5) // negative ignored
	if l.Spent(CatIntra) != 10 {
		t.Fatalf("intra = %v", l.Spent(CatIntra))
	}
	// Overhead excludes the application category.
	if l.Overhead() != 10+20+30+40 {
		t.Fatalf("overhead = %v", l.Overhead())
	}
	var m Ledger
	m.Charge(CatIntra, 1)
	l.Merge(&m)
	if l.Spent(CatIntra) != 11 {
		t.Fatalf("merge = %v", l.Spent(CatIntra))
	}
	l.Reset()
	if l.Overhead() != 0 || l.Spent(CatApp) != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestChargeReturnsInput(t *testing.T) {
	var l Ledger
	if got := l.Charge(CatApp, 42); got != 42 {
		t.Fatalf("Charge return = %v", got)
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range Categories() {
		if c.String() == "" || c.String()[0] == 'c' && len(c.String()) > 9 {
			t.Fatalf("bad category name %q", c.String())
		}
	}
	if Category(99).String() == "" {
		t.Fatalf("unknown category empty")
	}
}

func TestDurationHelpers(t *testing.T) {
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 {
		t.Fatalf("seconds = %v", d.Seconds())
	}
	if d.String() != "1.5s" {
		t.Fatalf("string = %q", d.String())
	}
	if Time(2*Second).Seconds() != 2 {
		t.Fatalf("time seconds")
	}
	if Max(Time(3), Time(5)) != 5 || Max(Time(5), Time(3)) != 5 {
		t.Fatalf("Max broken")
	}
}

func TestDefaultCalibration(t *testing.T) {
	m := Default()
	if m.Alpha <= 0 || m.ComparePerOp <= 0 || m.MergeFixed <= 0 ||
		m.SigPerEvent <= 0 || m.CompressPerEvent <= 0 {
		t.Fatalf("default model has zero charges: %+v", m)
	}
	// The calibration invariant behind the paper's shape: one pairwise
	// merge must dwarf one marker vote by orders of magnitude.
	vote := Duration(Log2Ceil(1024)) * (m.Alpha + m.CollectivePerLevel)
	merge := m.MergeFixed + 50*m.ComparePerOp
	if merge < 50*vote {
		t.Fatalf("merge/vote ratio too small: %v vs %v", merge, vote)
	}
}
