// Package vtime provides the virtual-time substrate of the simulated MPI
// runtime.
//
// Every rank owns a Clock, a monotonically advancing virtual timestamp in
// nanoseconds. MPI operations advance clocks according to a CostModel (an
// alpha-beta latency/bandwidth model plus per-unit work charges for the
// tracing layer), and synchronizing operations propagate timestamps
// between ranks, so the maximum final clock across ranks is the virtual
// makespan of the run. Reported overheads are therefore deterministic and
// machine-independent, which is what lets the experiment harness
// regenerate the paper's figures with stable shapes.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp in nanoseconds.
type Time int64

// Duration is a span of virtual nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Std converts to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return d.Std().String() }

// Seconds converts a timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Max returns the later of two timestamps.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a per-rank virtual clock. It is owned by a single rank
// goroutine, but other ranks may read it through message timestamps, so
// access is atomic.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d (no-op for d <= 0).
func (c *Clock) Advance(d Duration) Time {
	if d <= 0 {
		return c.Now()
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to at least t and returns the new time.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// CostModel prices the primitive operations of the simulated machine.
// Defaults are calibrated to a QDR InfiniBand-era cluster (the paper's
// testbed): ~1.5us point-to-point latency, ~3.2GB/s effective bandwidth,
// and tracing-layer work charges chosen so ScalaTrace's P-way merge at
// P=1024 lands in the paper's tens-to-hundreds-of-seconds range.
type CostModel struct {
	// Alpha is the per-message latency.
	Alpha Duration
	// BetaNsPerByte is the transfer time per byte in (fractional)
	// nanoseconds; 0.3125 ns/B is ~3.2 GB/s.
	BetaNsPerByte float64
	// CollectivePerLevel is the software overhead per tree level of a
	// collective beyond the point-to-point costs.
	CollectivePerLevel Duration

	// SigPerEvent is the cost of hashing one event into a signature.
	SigPerEvent Duration
	// ComparePerOp is the cost of one PRSD operation comparison during
	// inter-node merging (the n^2 term).
	ComparePerOp Duration
	// MergeFixed is the fixed software cost of one pairwise trace merge
	// (setup, serialization, allocation) independent of trace size.
	MergeFixed Duration
	// MergePerByte is the cost of copying/merging one byte of trace data.
	MergePerByte Duration
	// CompressPerEvent is the intra-node (loop) compression cost charged
	// per recorded event.
	CompressPerEvent Duration
	// ClusterPerItem is the clustering cost per candidate item
	// (distance-matrix row work in Algorithm 2).
	ClusterPerItem Duration
	// WriteBandwidth prices trace I/O at flush points, per byte.
	WritePerByte Duration
}

// Default returns the calibrated cost model.
func Default() CostModel {
	// The communication constants track a QDR InfiniBand-era cluster;
	// the tracing-layer work charges are calibrated so the ScalaTrace
	// baseline reproduces the magnitude of the paper's reported
	// overheads (per-merge costs in the low milliseconds at the paper's
	// trace sizes). The experiments' claims rest on the resulting
	// *shapes* (who wins, by what factor, where crossovers fall), not on
	// the constants.
	return CostModel{
		Alpha:              1 * Microsecond,
		BetaNsPerByte:      0.3125,
		CollectivePerLevel: 500 * Nanosecond,
		SigPerEvent:        25 * Nanosecond,
		ComparePerOp:       50 * Microsecond,
		MergeFixed:         100 * Microsecond,
		MergePerByte:       1 * Microsecond,
		CompressPerEvent:   150 * Nanosecond,
		ClusterPerItem:     2 * Microsecond,
		WritePerByte:       4 * Nanosecond,
	}
}

// PtoP returns the time for one point-to-point message of n bytes.
func (m CostModel) PtoP(bytes int) Duration {
	return m.Alpha + Duration(float64(bytes)*m.BetaNsPerByte)
}

// Log2Ceil returns ceil(log2(p)) with Log2Ceil(1) == 0.
func Log2Ceil(p int) int {
	if p <= 1 {
		return 0
	}
	n, v := 0, 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}

// Category labels where tracing-layer time is spent; the experiment
// harness reports per-category totals (Figures 8 and 11).
type Category int

// Ledger categories.
const (
	CatApp       Category = iota // application compute + communication
	CatIntra                     // intra-node (loop) compression
	CatMarker                    // marker vote (Algorithm 1 Reduce+Bcast)
	CatCluster                   // clustering (Algorithm 2 over the radix tree)
	CatInterComp                 // inter-node compression / online merge
	CatReplay                    // replay interpretation
	CatFault                     // injected fault perturbation (delay/slow)
	numCategories
)

var categoryNames = [...]string{"app", "intra", "marker", "cluster", "intercomp", "replay", "fault"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// Ledger accumulates virtual time per category for one rank. Rank
// goroutines own their ledgers; the harness aggregates after Finalize.
type Ledger struct {
	spent [numCategories]Duration
}

// Charge adds d to category c and returns d so call sites can also
// advance their clock with the same value.
func (l *Ledger) Charge(c Category, d Duration) Duration {
	if d > 0 {
		l.spent[c] += d
	}
	return d
}

// Spent returns the total charged to category c.
func (l *Ledger) Spent(c Category) Duration { return l.spent[c] }

// Overhead returns the total tracing-layer time (everything except the
// application itself).
func (l *Ledger) Overhead() Duration {
	var t Duration
	for c := CatIntra; c < numCategories; c++ {
		if c == CatFault {
			// Injected perturbation is application-side noise, not
			// tracing-layer work.
			continue
		}
		t += l.spent[c]
	}
	return t
}

// Merge adds another ledger into this one (used to aggregate ranks).
func (l *Ledger) Merge(o *Ledger) {
	for i := range l.spent {
		l.spent[i] += o.spent[i]
	}
}

// Reset zeroes all categories.
func (l *Ledger) Reset() { l.spent = [numCategories]Duration{} }

// Snapshot returns the per-category spent durations in Category order,
// for serializing a ledger across process boundaries (fleet result
// exchange).
func (l *Ledger) Snapshot() []Duration {
	out := make([]Duration, numCategories)
	copy(out, l.spent[:])
	return out
}

// Restore overwrites the ledger from a Snapshot slice; extra entries
// from a newer category set are ignored, missing ones stay zero.
func (l *Ledger) Restore(s []Duration) {
	l.spent = [numCategories]Duration{}
	copy(l.spent[:], s)
}

// Categories returns the list of ledger categories in display order.
func Categories() []Category {
	cats := make([]Category, numCategories)
	for i := range cats {
		cats[i] = Category(i)
	}
	return cats
}
