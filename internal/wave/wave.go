// Package wave reconstructs idle waves from the causal edge store.
//
// An idle wave (Afzal et al., PAPERS.md) is the signature of a one-off
// noise injection in a bulk-synchronous program: the disturbed rank
// finishes its compute late, its halo-exchange neighbors block waiting
// for it, their neighbors block one iteration later, and the excess wait
// travels outward at roughly one rank per iteration until it decays
// (noise landing on already-waiting ranks is absorbed) or hits a global
// synchronization. The causal layer already records exactly the raw
// material: every receiver-matched edge carries WaitVT, the blocked time
// attributable to the sender.
//
// Detect walks those edges and reconstructs each wave: it thresholds
// receiver wait times against a noise floor, clusters the significant
// wait points in (rank, virtual-time) space, finds each cluster's
// origins (local minima of the front), and fits per-wave kinematics —
// origin (rank, VT), propagation period per hop, amplitude, and decay
// length — plus interactions where two fronts meet. The detector is
// read-only and post-hoc: it never touches the runtime, so it can run
// against a live snapshot, a -edges-out file, or the archive sidecar.
package wave

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"chameleon/internal/obs"
)

// Options tunes detection. The zero value auto-calibrates everything
// except P, which callers must set to the run's rank count.
type Options struct {
	// P is the rank count of the traced run (required).
	P int
	// Cols, when positive, interprets ranks as a row-major grid with
	// that many columns and measures rank distance as Manhattan
	// distance on the grid. Zero means linear rank distance |a-b|.
	Cols int
	// MinWait is the significance floor in virtual nanoseconds: wait
	// points below it are noise. Zero auto-calibrates to a multiple of
	// the median positive wait across all application edges.
	MinWait int64
	// MaxGap is the largest virtual-time separation between two wait
	// points joined into one wave. Zero auto-calibrates from the median
	// spacing of significant points (≈ the iteration period).
	MaxGap int64
	// MaxRankGap is the largest rank distance joined into one wave;
	// zero means 1 (halo neighbors).
	MaxRankGap int
	// Reg receives detector counters (nil-safe, see Metrics in obs).
	Reg *obs.Registry
}

// Point is one significant wait observation: rank To blocked for Wait
// virtual nanoseconds in a receive that completed at VT.
type Point struct {
	Rank int   `json:"rank"`
	VT   int64 `json:"vt_ns"`
	Wait int64 `json:"wait_ns"`
}

// Wave is one fitted idle wave.
type Wave struct {
	ID         int   `json:"id"`
	OriginRank int   `json:"origin_rank"`
	OriginVT   int64 `json:"origin_vt_ns"`
	// AmplitudeNs is the excess wait at the origin — the injected
	// disturbance as seen by the first blocked neighbor.
	AmplitudeNs int64 `json:"amplitude_ns"`
	// PerHopNs is the fitted propagation period: virtual nanoseconds
	// for the front to advance one rank (≈ the halo-exchange period).
	PerHopNs float64 `json:"per_hop_ns"`
	// SpeedRanksPerMs is 1e6/PerHopNs, the conventional wave speed.
	SpeedRanksPerMs float64 `json:"speed_ranks_per_ms"`
	// DecayHops is the fitted e-folding distance of the amplitude in
	// hops; zero means no measurable decay over the observed front.
	DecayHops float64 `json:"decay_hops,omitempty"`
	// Decayed reports that the farthest observed front amplitude had
	// dropped below 1/e of the origin amplitude.
	Decayed bool `json:"decayed,omitempty"`
	// Ranks is how many distinct ranks the wave touched; Points counts
	// all significant wait observations assigned to it.
	Ranks  int   `json:"ranks"`
	Points int   `json:"points"`
	MinVT  int64 `json:"min_vt_ns"`
	MaxVT  int64 `json:"max_vt_ns"`
	// Front is the leading edge: the earliest significant wait per
	// rank, rank-sorted.
	Front []Point `json:"front"`
}

// Interaction is two wave fronts meeting.
type Interaction struct {
	Waves [2]int `json:"waves"`
	// Kind is "merge" when the meeting amplitude carries at least the
	// larger wave's local amplitude onward, "cancel" when the fronts
	// annihilate (the meeting amplitude collapses).
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	VT   int64  `json:"vt_ns"`
}

// Report is the full detector output for one trace.
type Report struct {
	P            int           `json:"p"`
	FloorNs      int64         `json:"floor_ns"`
	MaxGapNs     int64         `json:"max_gap_ns"`
	Edges        int           `json:"edges"`
	WaitPoints   int           `json:"wait_points"`
	Significant  int           `json:"significant"`
	Waves        []Wave        `json:"waves"`
	Interactions []Interaction `json:"interactions,omitempty"`
}

// Detect reconstructs idle waves from a causal edge slice. Only
// point-to-point application edges participate (collective hops carry a
// Ctx and synchronize globally — they end waves, they don't carry them).
func Detect(edges []obs.Edge, opts Options) (*Report, error) {
	if opts.P <= 0 {
		return nil, fmt.Errorf("wave: Options.P must be positive")
	}
	if opts.MaxRankGap <= 0 {
		opts.MaxRankGap = 1
	}
	rep := &Report{P: opts.P, Edges: len(edges)}

	// Collect application wait points. A counting pass first: the point
	// and scratch slices are the detector's dominant memory traffic, so
	// they are allocated at exact size.
	n := 0
	for i := range edges {
		e := &edges[i]
		if e.Ctx == "" && e.To >= 0 && e.To < opts.P && e.WaitVT > 0 {
			n++
		}
	}
	pts := make([]Point, 0, n)
	for i := range edges {
		e := &edges[i]
		if e.Ctx != "" || e.To < 0 || e.To >= opts.P || e.WaitVT <= 0 {
			continue
		}
		pts = append(pts, Point{Rank: e.To, VT: e.RecvVT, Wait: e.WaitVT})
	}
	rep.WaitPoints = len(pts)

	// Significance floor: well above the jitter-scale waits every
	// bulk-synchronous step produces, well below a real disturbance.
	floor := opts.MinWait
	if floor <= 0 {
		waits := make([]int64, len(pts))
		for i := range pts {
			waits[i] = pts[i].Wait
		}
		floor = 4 * medianInt64(waits)
		if floor <= 0 {
			floor = 1
		}
	}
	rep.FloorNs = floor

	nsig := 0
	for i := range pts {
		if pts[i].Wait >= floor {
			nsig++
		}
	}
	sig := make([]Point, 0, nsig)
	for _, p := range pts {
		if p.Wait >= floor {
			sig = append(sig, p)
		}
	}
	rep.Significant = len(sig)
	slices.SortFunc(sig, func(a, b Point) int {
		if a.VT != b.VT {
			return cmp.Compare(a.VT, b.VT)
		}
		return a.Rank - b.Rank
	})

	// Clustering window: significant points inside one wave are spaced
	// about one halo-exchange period apart; eight medians of slack
	// tolerates skipped ranks and jitter without bridging independent
	// waves emitted hundreds of periods apart.
	maxGap := opts.MaxGap
	if maxGap <= 0 {
		var gaps []int64
		for i := 1; i < len(sig); i++ {
			if d := sig[i].VT - sig[i-1].VT; d > 0 {
				gaps = append(gaps, d)
			}
		}
		maxGap = 8 * medianInt64(gaps)
		if maxGap <= 0 {
			maxGap = 1
		}
	}
	rep.MaxGapNs = maxGap

	dist := func(a, b int) int { return rankDist(a, b, opts.Cols) }

	// Union-find over the time-sorted points: joinable when close in
	// both time and rank space.
	parent := make([]int, len(sig))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := range sig {
		for j := i - 1; j >= 0 && sig[i].VT-sig[j].VT <= maxGap; j-- {
			if dist(sig[i].Rank, sig[j].Rank) <= opts.MaxRankGap {
				union(i, j)
			}
		}
	}

	clusters := map[int][]Point{}
	for i, p := range sig {
		r := find(i)
		clusters[r] = append(clusters[r], p)
	}
	roots := make([]int, 0, len(clusters))
	for r := range clusters {
		roots = append(roots, r)
	}
	// Deterministic wave order: by earliest point.
	sort.Slice(roots, func(i, j int) bool {
		a, b := clusters[roots[i]][0], clusters[roots[j]][0]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		return a.Rank < b.Rank
	})

	var lastVT int64
	for _, p := range sig {
		if p.VT > lastVT {
			lastVT = p.VT
		}
	}

	inflight := 0
	for _, root := range roots {
		cl := clusters[root]
		waves, inter := fitCluster(cl, len(rep.Waves), dist)
		for _, w := range waves {
			if !w.Decayed && lastVT-w.MaxVT <= maxGap {
				inflight++
			}
			rep.Waves = append(rep.Waves, w)
		}
		rep.Interactions = append(rep.Interactions, inter...)
	}

	if reg := opts.Reg; reg != nil {
		reg.Counter("wave_detected_total").Add(uint64(len(rep.Waves)))
		decayed := 0
		for _, w := range rep.Waves {
			if w.Decayed {
				decayed++
			}
		}
		reg.Counter("wave_decayed_total").Add(uint64(decayed))
		reg.Gauge("wave_fronts_inflight").Set(int64(inflight))
	}
	return rep, nil
}

// fitCluster turns one cluster of wait points into one or more waves.
// The front (earliest significant wait per rank) is scanned for local
// VT minima: each minimum is a wave origin, and every front point joins
// the origin reachable with the smallest hop count. Two origins in one
// cluster mean the fronts met — an interaction.
func fitCluster(cl []Point, firstID int, dist func(a, b int) int) ([]Wave, []Interaction) {
	front := map[int]Point{}
	byRank := map[int][]Point{}
	for _, p := range cl {
		if f, ok := front[p.Rank]; !ok || p.VT < f.VT {
			front[p.Rank] = p
		}
		byRank[p.Rank] = append(byRank[p.Rank], p)
	}
	ranks := make([]int, 0, len(front))
	for r := range front {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	// Origins: front points whose VT is no later than both rank
	// neighbors'. A plateau of equal VTs counts once, at its start.
	var origins []Point
	for i, r := range ranks {
		p := front[r]
		leftLater := i == 0 || front[ranks[i-1]].VT >= p.VT
		rightLater := i == len(ranks)-1 || front[ranks[i+1]].VT >= p.VT
		if leftLater && rightLater {
			if i > 0 && front[ranks[i-1]].VT == p.VT {
				continue // plateau continuation
			}
			origins = append(origins, p)
		}
	}
	if len(origins) == 0 { // can't happen, but never emit a cluster blind
		origins = append(origins, front[ranks[0]])
	}

	// Assign each front rank to the nearest origin (ties to the earlier
	// origin), building one wave per origin.
	assign := make(map[int]int, len(ranks))
	for _, r := range ranks {
		best, bestD := 0, math.MaxInt
		for oi, o := range origins {
			if d := dist(r, o.Rank); d < bestD {
				best, bestD = oi, d
			}
		}
		assign[r] = best
	}

	waves := make([]Wave, len(origins))
	for oi, o := range origins {
		w := &waves[oi]
		w.ID = firstID + oi
		w.OriginRank = o.Rank
		w.OriginVT = o.VT
		w.AmplitudeNs = o.Wait
		w.MinVT = math.MaxInt64
		for _, r := range ranks {
			if assign[r] != oi {
				continue
			}
			w.Front = append(w.Front, front[r])
			w.Ranks++
			for _, p := range byRank[r] {
				w.Points++
				if p.VT < w.MinVT {
					w.MinVT = p.VT
				}
				if p.VT > w.MaxVT {
					w.MaxVT = p.VT
				}
			}
		}
		sort.Slice(w.Front, func(i, j int) bool { return w.Front[i].Rank < w.Front[j].Rank })
		fitKinematics(w, dist)
	}

	// Interactions: adjacent origin pairs whose basins touch. The
	// meeting point is the latest front point on the boundary between
	// the two basins.
	var inter []Interaction
	for oi := 0; oi+1 < len(origins); oi++ {
		var meet Point
		found := false
		for i := 0; i+1 < len(ranks); i++ {
			a, b := assign[ranks[i]], assign[ranks[i+1]]
			if (a == oi && b == oi+1) || (a == oi+1 && b == oi) {
				// Boundary between the basins: take the later of the
				// two facing front points as the meeting event.
				pa, pb := front[ranks[i]], front[ranks[i+1]]
				meet = pa
				if pb.VT > pa.VT {
					meet = pb
				}
				found = true
			}
		}
		if !found {
			continue
		}
		kind := "cancel"
		// Merge when the amplitude at the meeting point still carries
		// at least half the smaller wave's origin amplitude — the
		// fronts reinforced rather than annihilated.
		small := origins[oi].Wait
		if origins[oi+1].Wait < small {
			small = origins[oi+1].Wait
		}
		if meet.Wait*2 >= small {
			kind = "merge"
		}
		inter = append(inter, Interaction{
			Waves: [2]int{waves[oi].ID, waves[oi+1].ID},
			Kind:  kind,
			Rank:  meet.Rank,
			VT:    meet.VT,
		})
	}
	return waves, inter
}

// fitKinematics fits propagation speed and decay from a wave's front.
func fitKinematics(w *Wave, dist func(a, b int) int) {
	// Through-origin least squares of (hop distance → arrival delay):
	// perHop = Σ(t·d)/Σ(d²), using only ranks the front actually hit.
	var std, sdd float64
	var maxD int
	var farWait int64 = -1
	for _, p := range w.Front {
		d := dist(p.Rank, w.OriginRank)
		if d == 0 {
			continue
		}
		t := float64(p.VT - w.OriginVT)
		std += t * float64(d)
		sdd += float64(d) * float64(d)
		if d > maxD {
			maxD, farWait = d, p.Wait
		}
	}
	if sdd > 0 && std > 0 {
		w.PerHopNs = std / sdd
		w.SpeedRanksPerMs = 1e6 / w.PerHopNs
	}

	// Decay: least squares of ln(amplitude) against hop distance. A
	// negative slope m gives the e-folding length -1/m.
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range w.Front {
		if p.Wait <= 0 {
			continue
		}
		x := float64(dist(p.Rank, w.OriginRank))
		y := math.Log(float64(p.Wait))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n >= 2 {
		den := float64(n)*sxx - sx*sx
		if den > 0 {
			m := (float64(n)*sxy - sx*sy) / den
			if m < 0 {
				w.DecayHops = -1 / m
			}
		}
	}
	if maxD > 0 && farWait >= 0 {
		w.Decayed = float64(farWait) <= float64(w.AmplitudeNs)/math.E
	}
}

func rankDist(a, b, cols int) int {
	if cols <= 0 {
		if a > b {
			return a - b
		}
		return b - a
	}
	dr, dc := a/cols-b/cols, a%cols-b%cols
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

func medianInt64(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	// Hoare selection with a median-of-three pivot: expected linear
	// time, and the medians here sit on Detect's hot path. Selection
	// reorders v; every caller passes scratch it owns.
	s := v
	k := len(s) / 2
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	return s[k]
}
