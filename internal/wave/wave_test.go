package wave

import (
	"math"
	"strings"
	"testing"

	"chameleon/internal/obs"
)

const ms = int64(1e6)

// background fills the trace with the jitter-scale waits every
// bulk-synchronous step produces, so the floor auto-calibrates.
func background(p int, iters int, period int64) []obs.Edge {
	var edges []obs.Edge
	for it := 0; it < iters; it++ {
		for r := 0; r < p; r++ {
			edges = append(edges, obs.Edge{
				From:   (r + 1) % p,
				To:     r,
				RecvVT: int64(it)*period + int64(r)*1000,
				WaitVT: 20_000 + int64((r*7+it)%13)*1000, // 20-32µs
			})
		}
	}
	return edges
}

// frontEdges emits one idle wave: origin rank blocked at t0 for amp,
// and each hop outward blocked perHop later with exponentially decayed
// amplitude (decayHops = 0 means no decay).
func frontEdges(p, origin int, t0, perHop, amp int64, decayHops float64) []obs.Edge {
	var edges []obs.Edge
	add := func(rank int, d int) {
		if rank < 0 || rank >= p {
			return
		}
		w := float64(amp)
		if decayHops > 0 {
			w *= math.Exp(-float64(d) / decayHops)
		}
		edges = append(edges, obs.Edge{
			From:   origin,
			To:     rank,
			RecvVT: t0 + int64(d)*perHop,
			WaitVT: int64(w),
		})
	}
	add(origin, 0)
	for d := 1; d < p; d++ {
		add(origin-d, d)
		add(origin+d, d)
	}
	return edges
}

func TestDetectSingleWave(t *testing.T) {
	const p = 16
	perHop := 2 * ms
	edges := append(background(p, 40, perHop), frontEdges(p, 5, 100*ms, perHop, 50*ms, 0)...)
	reg := obs.NewRegistry()
	rep, err := Detect(edges, Options{P: p, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 1 {
		t.Fatalf("detected %d waves, want 1 (report %+v)", len(rep.Waves), rep)
	}
	w := rep.Waves[0]
	if w.OriginRank != 5 {
		t.Errorf("origin rank = %d, want 5", w.OriginRank)
	}
	if w.OriginVT != 100*ms {
		t.Errorf("origin VT = %d, want %d", w.OriginVT, 100*ms)
	}
	if w.AmplitudeNs != 50*ms {
		t.Errorf("amplitude = %d, want %d", w.AmplitudeNs, 50*ms)
	}
	if math.Abs(w.PerHopNs-float64(perHop)) > 0.05*float64(perHop) {
		t.Errorf("per-hop = %.0fns, want ~%d", w.PerHopNs, perHop)
	}
	if math.Abs(w.SpeedRanksPerMs-0.5) > 0.05 {
		t.Errorf("speed = %.3f ranks/ms, want ~0.5", w.SpeedRanksPerMs)
	}
	if w.Ranks != p {
		t.Errorf("wave touched %d ranks, want %d", w.Ranks, p)
	}
	if w.Decayed {
		t.Error("undecayed wave reported as decayed")
	}
	if got := reg.Counter("wave_detected_total").Value(); got != 1 {
		t.Errorf("wave_detected_total = %d, want 1", got)
	}
	if got := reg.Gauge("wave_fronts_inflight").Value(); got != 1 {
		t.Errorf("wave_fronts_inflight = %d, want 1", got)
	}
}

func TestDetectDecay(t *testing.T) {
	const p = 12
	perHop := 2 * ms
	edges := append(background(p, 40, perHop), frontEdges(p, 2, 100*ms, perHop, 50*ms, 3)...)
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 1 {
		t.Fatalf("detected %d waves, want 1", len(rep.Waves))
	}
	w := rep.Waves[0]
	if !w.Decayed {
		t.Error("wave decayed over 9 hops at 3-hop e-folding but not flagged")
	}
	if w.DecayHops < 2 || w.DecayHops > 4 {
		t.Errorf("decay = %.2f hops, want ~3", w.DecayHops)
	}
}

func TestSingleRankWave(t *testing.T) {
	const p = 8
	edges := background(p, 40, 2*ms)
	// A burst of large waits confined to rank 3: a "wave" that never
	// propagates (e.g. the disturbance was absorbed immediately).
	for i := int64(0); i < 4; i++ {
		edges = append(edges, obs.Edge{From: 2, To: 3, RecvVT: 100*ms + i*2*ms, WaitVT: 30 * ms})
	}
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 1 {
		t.Fatalf("detected %d waves, want 1", len(rep.Waves))
	}
	w := rep.Waves[0]
	if w.Ranks != 1 || w.OriginRank != 3 {
		t.Errorf("wave = %+v, want single-rank at 3", w)
	}
	if w.PerHopNs != 0 || w.SpeedRanksPerMs != 0 {
		t.Errorf("single-rank wave has speed %.2f/%.2f, want 0", w.PerHopNs, w.SpeedRanksPerMs)
	}
}

func TestWaveHitsDepartedRank(t *testing.T) {
	const p = 12
	perHop := 2 * ms
	edges := background(p, 40, perHop)
	// Rank 9 crashed: the wave from rank 5 travels down freely but
	// stops at rank 8 going up (no halo traffic crosses a dead rank).
	for _, e := range frontEdges(p, 5, 100*ms, perHop, 40*ms, 0) {
		if e.To >= 9 && e.WaitVT > ms {
			continue
		}
		edges = append(edges, e)
	}
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 1 {
		t.Fatalf("detected %d waves, want 1", len(rep.Waves))
	}
	w := rep.Waves[0]
	if w.OriginRank != 5 {
		t.Errorf("origin = %d, want 5", w.OriginRank)
	}
	for _, f := range w.Front {
		if f.Rank >= 9 {
			t.Errorf("front crossed departed rank: %+v", f)
		}
	}
	if w.Ranks != 9 { // ranks 0..8
		t.Errorf("wave touched %d ranks, want 9", w.Ranks)
	}
}

func TestTwoSimultaneousOrigins(t *testing.T) {
	const p = 16
	perHop := 2 * ms
	edges := background(p, 60, perHop)
	edges = append(edges, frontEdges(p, 2, 100*ms, perHop, 40*ms, 0)...)
	edges = append(edges, frontEdges(p, 13, 100*ms, perHop, 40*ms, 0)...)
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 2 {
		t.Fatalf("detected %d waves, want 2", len(rep.Waves))
	}
	got := map[int]bool{}
	for _, w := range rep.Waves {
		got[w.OriginRank] = true
	}
	if !got[2] || !got[13] {
		t.Errorf("origins = %v, want {2, 13}", got)
	}
	if len(rep.Interactions) != 1 {
		t.Fatalf("got %d interactions, want 1 (fronts meet mid-array)", len(rep.Interactions))
	}
	in := rep.Interactions[0]
	if in.Rank < 6 || in.Rank > 9 {
		t.Errorf("interaction at rank %d, want mid-array (6-9)", in.Rank)
	}
	if in.Kind != "merge" && in.Kind != "cancel" {
		t.Errorf("interaction kind %q", in.Kind)
	}
}

func TestP1(t *testing.T) {
	rep, err := Detect(background(1, 20, 2*ms), Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 0 {
		t.Errorf("P=1 background-only trace yielded %d waves", len(rep.Waves))
	}
	// And with a burst: one degenerate single-rank wave, no panic.
	edges := append(background(1, 20, 2*ms), obs.Edge{From: 0, To: 0, RecvVT: 50 * ms, WaitVT: 30 * ms})
	if rep, err = Detect(edges, Options{P: 1}); err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 1 || rep.Waves[0].Ranks != 1 {
		t.Errorf("P=1 burst: %+v", rep.Waves)
	}
}

func TestDetectRejectsBadOptions(t *testing.T) {
	if _, err := Detect(nil, Options{}); err == nil {
		t.Error("Detect accepted P=0")
	}
}

func TestDetectEmpty(t *testing.T) {
	rep, err := Detect(nil, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != 0 || len(rep.Waves) != 0 {
		t.Errorf("empty trace: %+v", rep)
	}
}

func TestCollectiveEdgesIgnored(t *testing.T) {
	const p = 8
	edges := background(p, 40, 2*ms)
	// Huge waits inside a collective must not register as wave points.
	for r := 0; r < p; r++ {
		edges = append(edges, obs.Edge{From: 0, To: r, RecvVT: 100 * ms, WaitVT: 90 * ms, Ctx: "vote"})
	}
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != 0 {
		t.Errorf("collective edges produced %d waves", len(rep.Waves))
	}
}

func TestManhattanDistance(t *testing.T) {
	// On a 4-column grid, ranks 1 and 5 are vertical neighbors even
	// though |1-5| = 4 linearly.
	if d := rankDist(1, 5, 4); d != 1 {
		t.Errorf("grid dist(1,5) = %d, want 1", d)
	}
	if d := rankDist(1, 5, 0); d != 4 {
		t.Errorf("linear dist(1,5) = %d, want 4", d)
	}
	if d := rankDist(0, 15, 4); d != 6 {
		t.Errorf("grid dist(0,15) = %d, want 6", d)
	}
}

func TestHeatmapRender(t *testing.T) {
	const p = 8
	perHop := 2 * ms
	edges := append(background(p, 40, perHop), frontEdges(p, 3, 60*ms, perHop, 40*ms, 0)...)
	rep, err := Detect(edges, Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	hm := BuildHeatmap(edges, p, 40)
	out := hm.Render(rep)
	if !strings.Contains(out, "O") {
		t.Errorf("render lacks origin marker:\n%s", out)
	}
	if got := strings.Count(out, "|\n"); got != p {
		t.Errorf("render has %d rank rows, want %d:\n%s", got, p, out)
	}
	sum := Summary(rep)
	if !strings.Contains(sum, "origin rank 3") {
		t.Errorf("summary lacks origin:\n%s", sum)
	}
	// Nil-safety.
	if out := (*Heatmap)(nil).Render(nil); out == "" {
		t.Error("nil heatmap render empty")
	}
	if BuildHeatmap(nil, 0, 10) != nil {
		t.Error("BuildHeatmap accepted p=0")
	}
}

// TestNilRegistryCounterPathAllocs pins the disabled-metrics contract:
// updating the wave counters through a nil registry must not allocate.
func TestNilRegistryCounterPathAllocs(t *testing.T) {
	var reg *obs.Registry
	if n := testing.AllocsPerRun(100, func() {
		reg.Counter("wave_detected_total").Inc()
		reg.Counter("wave_decayed_total").Add(2)
		reg.Gauge("wave_fronts_inflight").Set(3)
	}); n != 0 {
		t.Errorf("nil-registry counter path allocates %.1f/op, want 0", n)
	}
}

// BenchmarkNilWaveCounters prices the same path: the cost of leaving
// metrics off must be a few predictable branches.
func BenchmarkNilWaveCounters(b *testing.B) {
	var reg *obs.Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("wave_detected_total").Inc()
		reg.Counter("wave_decayed_total").Add(2)
		reg.Gauge("wave_fronts_inflight").Set(int64(i))
	}
}
