package wave

import (
	"fmt"
	"sort"
	"strings"

	"chameleon/internal/obs"
)

// Heatmap is per-rank wait time bucketed over virtual time — the
// rank×time picture in which idle waves appear as diagonal streaks.
type Heatmap struct {
	P     int   `json:"p"`
	Bins  int   `json:"bins"`
	MinVT int64 `json:"min_vt_ns"`
	MaxVT int64 `json:"max_vt_ns"`
	// Cells[rank][bin] is the summed receiver wait (virtual ns) of
	// application edges completing in that bin.
	Cells [][]int64 `json:"cells"`
}

// BuildHeatmap buckets application-edge wait time into a rank×bins grid.
func BuildHeatmap(edges []obs.Edge, p, bins int) *Heatmap {
	if p <= 0 || bins <= 0 {
		return nil
	}
	hm := &Heatmap{P: p, Bins: bins, Cells: make([][]int64, p)}
	for r := range hm.Cells {
		hm.Cells[r] = make([]int64, bins)
	}
	first := true
	for i := range edges {
		e := &edges[i]
		if e.Ctx != "" || e.To < 0 || e.To >= p {
			continue
		}
		if first || e.RecvVT < hm.MinVT {
			hm.MinVT = e.RecvVT
		}
		if first || e.RecvVT > hm.MaxVT {
			hm.MaxVT = e.RecvVT
		}
		first = false
	}
	if first {
		return hm
	}
	span := hm.MaxVT - hm.MinVT
	for i := range edges {
		e := &edges[i]
		if e.Ctx != "" || e.To < 0 || e.To >= p || e.WaitVT <= 0 {
			continue
		}
		bin := 0
		if span > 0 {
			bin = int(int64(bins) * (e.RecvVT - hm.MinVT) / (span + 1))
		}
		hm.Cells[e.To][bin] += e.WaitVT
	}
	return hm
}

// shades maps cell intensity to glyphs, darkest last.
const shades = " .:-=+*#%@"

// Render draws the heatmap with one row per rank and marks each fitted
// wave origin with 'O'. Intensity is normalized to the hottest cell.
func (hm *Heatmap) Render(rep *Report) string {
	if hm == nil || hm.P == 0 {
		return "no edges\n"
	}
	var peak int64
	for _, row := range hm.Cells {
		for _, c := range row {
			if c > peak {
				peak = c
			}
		}
	}
	span := hm.MaxVT - hm.MinVT
	origin := map[[2]int]bool{}
	if rep != nil && span > 0 {
		for _, w := range rep.Waves {
			bin := int(int64(hm.Bins) * (w.OriginVT - hm.MinVT) / (span + 1))
			if bin >= 0 && bin < hm.Bins {
				origin[[2]int{w.OriginRank, bin}] = true
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rank×time wait heatmap  [%.1fms .. %.1fms]  peak %.2fms wait/bin\n",
		float64(hm.MinVT)/1e6, float64(hm.MaxVT)/1e6, float64(peak)/1e6)
	for r := 0; r < hm.P; r++ {
		fmt.Fprintf(&b, "%4d |", r)
		for bin := 0; bin < hm.Bins; bin++ {
			if origin[[2]int{r, bin}] {
				b.WriteByte('O')
				continue
			}
			ch := shades[0]
			if peak > 0 {
				idx := int(hm.Cells[r][bin] * int64(len(shades)-1) / peak)
				ch = shades[idx]
			}
			b.WriteByte(ch)
		}
		b.WriteString("|\n")
	}
	if rep != nil && len(rep.Waves) > 0 {
		b.WriteString("O = fitted wave origin\n")
	}
	return b.String()
}

// Summary formats the detector report as the chamstat wave section.
func Summary(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "idle waves: %d detected  (%d/%d wait points above %.2fms floor)\n",
		len(rep.Waves), rep.Significant, rep.WaitPoints, float64(rep.FloorNs)/1e6)
	waves := append([]Wave(nil), rep.Waves...)
	sort.Slice(waves, func(i, j int) bool { return waves[i].AmplitudeNs > waves[j].AmplitudeNs })
	for _, w := range waves {
		state := "in flight"
		if w.Decayed {
			state = "decayed"
		}
		fmt.Fprintf(&b, "  wave %d: origin rank %d @ %.1fms  amp %.2fms  speed %.2f ranks/ms (%.2fms/hop)  %d ranks  %s",
			w.ID, w.OriginRank, float64(w.OriginVT)/1e6, float64(w.AmplitudeNs)/1e6,
			w.SpeedRanksPerMs, w.PerHopNs/1e6, w.Ranks, state)
		if w.DecayHops > 0 {
			fmt.Fprintf(&b, "  decay %.1f hops", w.DecayHops)
		}
		b.WriteByte('\n')
	}
	for _, in := range rep.Interactions {
		fmt.Fprintf(&b, "  interaction: waves %d+%d %s at rank %d @ %.1fms\n",
			in.Waves[0], in.Waves[1], in.Kind, in.Rank, float64(in.VT)/1e6)
	}
	return b.String()
}
