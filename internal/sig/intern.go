package sig

// Call-site interning: the process-wide table that maps a backtrace (a
// PC slice) to a small dense SiteID exactly once, caching the mixed
// Stack signature alongside. The hot tracing path then pays one hash of
// the raw PCs and a shard-local lookup per event instead of re-mixing
// every frame through splitmix64; loop iterations hitting the same call
// site skip the per-frame fold entirely and everything downstream
// (windows, compressor, codec) can key on the integer ID.
//
// The in-process MPI simulator runs every rank as a goroutine of one
// process, so the table is shared by all ranks: lookups take only a
// shard mutex, and the ID → metadata mapping is a copy-on-write slice
// read without any lock.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SiteID is a dense process-wide identifier of an interned call site.
// 0 (NoSite) marks events that never went through the intern table
// (hand-built test events, traces deserialized from the v1 format).
type SiteID uint32

// NoSite is the zero SiteID.
const NoSite SiteID = 0

// SiteMeta is the cached metadata of one interned call site.
type SiteMeta struct {
	// Sig is the mixed stack signature (FromPCs of the backtrace, or the
	// verbatim signature for sites interned by signature only).
	Sig Stack
	// PCs is the captured backtrace; nil for signature-only sites.
	PCs []uintptr
	// Func/File/Line describe the innermost frame, resolved at intern
	// time for signature-only sites carrying serialized metadata and on
	// demand (Resolve) for captured ones.
	Func string
	File string
	Line int
}

// SiteInfo is the serializable form of a call-site table entry.
type SiteInfo struct {
	ID   uint32 `json:"id"`
	Sig  uint64 `json:"sig"`
	Func string `json:"func,omitempty"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

const internShards = 64

type internShard struct {
	mu sync.Mutex
	// byHash buckets candidate IDs by raw backtrace hash (captured
	// sites) or by signature value (signature-only sites); candidates
	// are verified against the stored metadata, so cross-kind key
	// collisions are harmless.
	byHash map[uint64][]SiteID
}

// Table is a sharded, concurrency-safe call-site intern table.
type Table struct {
	shards [internShards]internShard
	// growMu serializes meta growth; meta itself is copy-on-write so
	// Signature/Meta reads are lock-free.
	growMu sync.Mutex
	meta   atomic.Pointer[[]SiteMeta]
}

// Sites is the process-wide intern table.
var Sites = NewTable()

// NewTable returns an empty intern table.
func NewTable() *Table {
	t := &Table{}
	empty := make([]SiteMeta, 0)
	t.meta.Store(&empty)
	for i := range t.shards {
		t.shards[i].byHash = make(map[uint64][]SiteID)
	}
	return t
}

// hashPCs folds the raw backtrace into the shard/bucket key. Unlike the
// signature fold it is order-sensitive (FNV-style), so stacks that would
// XOR-cancel still land in distinct buckets; collisions only cost a
// verification pass.
func hashPCs(pcs []uintptr) uint64 {
	h := uint64(1469598103934665603)
	for _, pc := range pcs {
		h ^= uint64(pc)
		h *= 1099511628211
	}
	return h
}

func pcsEqual(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InternPCs interns a backtrace, returning its SiteID. The first call
// for a given PC vector computes and caches FromPCs; later calls from
// any goroutine hit the shard map without touching the frames.
func (t *Table) InternPCs(pcs []uintptr) SiteID {
	h := hashPCs(pcs)
	s := &t.shards[h%internShards]
	s.mu.Lock()
	meta := *t.meta.Load()
	for _, id := range s.byHash[h] {
		m := &meta[id-1]
		if m.PCs != nil && pcsEqual(m.PCs, pcs) {
			s.mu.Unlock()
			return id
		}
	}
	// Miss: compute the signature and publish the new site. The PC slice
	// is cloned — the caller's array is usually stack-allocated.
	own := make([]uintptr, len(pcs))
	copy(own, pcs)
	id := t.grow(SiteMeta{Sig: FromPCs(own), PCs: own})
	s.byHash[h] = append(s.byHash[h], id)
	s.mu.Unlock()
	return id
}

// InternSig interns a site known only by its stack signature (synthetic
// test events, v1 traces where the backtrace was never serialized). The
// same signature always returns the same SiteID.
func (t *Table) InternSig(sig Stack) SiteID {
	return t.InternSigMeta(SiteInfo{Sig: uint64(sig)})
}

// InternSigMeta interns a signature-only site carrying serialized
// metadata (the v2 codec's site-table entries). Metadata of an already
// interned signature is kept from the first intern.
func (t *Table) InternSigMeta(info SiteInfo) SiteID {
	h := uint64(info.Sig)
	s := &t.shards[h%internShards]
	s.mu.Lock()
	meta := *t.meta.Load()
	for _, id := range s.byHash[h] {
		m := &meta[id-1]
		if m.PCs == nil && m.Sig == Stack(info.Sig) {
			s.mu.Unlock()
			return id
		}
	}
	id := t.grow(SiteMeta{
		Sig: Stack(info.Sig), Func: info.Func, File: info.File, Line: info.Line,
	})
	s.byHash[h] = append(s.byHash[h], id)
	s.mu.Unlock()
	return id
}

// grow appends one site under the growth lock and publishes the new
// copy-on-write snapshot. Callers hold a shard lock, which serializes
// duplicate publication per bucket; distinct shards growing concurrently
// serialize here.
func (t *Table) grow(m SiteMeta) SiteID {
	t.growMu.Lock()
	old := *t.meta.Load()
	next := make([]SiteMeta, len(old)+1)
	copy(next, old)
	next[len(old)] = m
	t.meta.Store(&next)
	t.growMu.Unlock()
	return SiteID(len(next))
}

// Signature returns the cached stack signature of an interned site
// (lock-free; 0 for NoSite).
func (t *Table) Signature(id SiteID) Stack {
	if id == NoSite {
		return 0
	}
	return (*t.meta.Load())[id-1].Sig
}

// Meta returns a copy of the site's metadata (lock-free).
func (t *Table) Meta(id SiteID) (SiteMeta, bool) {
	if id == NoSite {
		return SiteMeta{}, false
	}
	meta := *t.meta.Load()
	if int(id) > len(meta) {
		return SiteMeta{}, false
	}
	return meta[id-1], true
}

// Len returns the number of interned sites.
func (t *Table) Len() int { return len(*t.meta.Load()) }

// machineryPrefixes lists function-name prefixes Resolve treats as
// tracing machinery: the reported frame is the innermost frame outside
// these packages, so site tables show application call sites rather
// than the interposer plumbing every backtrace shares.
var machineryPrefixes = []string{
	"chameleon/internal/mpi.",
	"chameleon/internal/tracer.",
	"chameleon/internal/core.",
	"chameleon/internal/scalatrace.",
	"chameleon/internal/acurdion.",
}

func isMachinery(fn string) bool {
	for _, p := range machineryPrefixes {
		if len(fn) >= len(p) && fn[:len(p)] == p {
			return true
		}
	}
	return false
}

// Resolve returns the serializable description of a site, resolving
// captured backtraces on demand (a cold path: only serialization and
// chamdump call it). The reported frame is the innermost frame outside
// the tracing machinery, falling back to the innermost frame when the
// whole backtrace is machinery.
func (t *Table) Resolve(id SiteID) (SiteInfo, bool) {
	m, ok := t.Meta(id)
	if !ok {
		return SiteInfo{}, false
	}
	info := SiteInfo{ID: uint32(id), Sig: uint64(m.Sig), Func: m.Func, File: m.File, Line: m.Line}
	if info.Func == "" && len(m.PCs) > 0 {
		frames := runtime.CallersFrames(m.PCs)
		var innermost runtime.Frame
		for {
			fr, more := frames.Next()
			if innermost.PC == 0 && fr.PC != 0 {
				innermost = fr
			}
			if fr.Function != "" && !isMachinery(fr.Function) {
				innermost = fr
				break
			}
			if !more {
				break
			}
		}
		if innermost.PC != 0 {
			info.Func, info.File, info.Line = innermost.Function, innermost.File, innermost.Line
		}
	}
	return info, true
}

// CaptureSite walks the current goroutine stack (skipping skip frames
// above the caller) and interns it, returning the site ID. It replaces
// Capture on the hot path: the skip arithmetic matches, so CaptureSite
// observes exactly the frames Capture used to fold.
func CaptureSite(skip int) SiteID {
	var pcs [32]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	return Sites.InternPCs(pcs[:n])
}
