package sig

import (
	"testing"
	"testing/quick"
)

// two distinct call sites for Capture determinism tests.
func captureSiteA() Stack { return Capture(0) }
func captureSiteB() Stack { return Capture(0) }

func TestCaptureDeterministic(t *testing.T) {
	// Same source line (same return PCs) must always produce the same
	// signature — loop iterations are indistinguishable, like in C.
	var sigs [4]Stack
	for i := range sigs {
		sigs[i] = captureSiteA()
	}
	for _, s := range sigs[1:] {
		if s != sigs[0] {
			t.Fatalf("same call site produced different signatures: %x vs %x", sigs[0], s)
		}
	}
}

func TestCaptureDistinguishesCallSites(t *testing.T) {
	if captureSiteA() == captureSiteB() {
		t.Fatalf("distinct call sites share a signature")
	}
}

func TestCaptureDistinguishesCallers(t *testing.T) {
	via := func() Stack { return captureSiteA() }
	direct := captureSiteA()
	indirect := via()
	if direct == indirect {
		t.Fatalf("different call paths share a signature")
	}
}

func TestFromPCs(t *testing.T) {
	if FromPCs(nil) != 0 {
		t.Fatalf("empty backtrace should be zero")
	}
	a := FromPCs([]uintptr{0x1000, 0x2000})
	b := FromPCs([]uintptr{0x2000, 0x1000})
	if a != b {
		t.Fatalf("XOR fold should be order independent at frame level")
	}
	if a == FromPCs([]uintptr{0x1000}) {
		t.Fatalf("different frame sets collide")
	}
}

func TestMixSpreads(t *testing.T) {
	// Nearby inputs must differ substantially after mixing.
	if Mix(1) == Mix(2) {
		t.Fatalf("mix collision")
	}
	f := func(x uint64) bool { return Mix(x) == Mix(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCallPathOrderSensitivity(t *testing.T) {
	// The (seq%10)+1 multiplier makes permuted call sequences differ.
	var a, b CallPath
	s1, s2 := Stack(Mix(1)), Stack(Mix(2))
	a.Add(s1)
	a.Add(s2)
	b.Add(s2)
	b.Add(s1)
	if a.Value() == b.Value() {
		t.Fatalf("permuted sequences produced equal Call-Paths")
	}
	if a.Events() != 2 {
		t.Fatalf("events = %d", a.Events())
	}
}

func TestCallPathReset(t *testing.T) {
	var c CallPath
	c.Add(Stack(Mix(3)))
	c.Reset()
	if c.Value() != 0 || c.Events() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestCallPathAddN(t *testing.T) {
	var a, b CallPath
	s := Stack(Mix(9))
	for i := 0; i < 5; i++ {
		a.Add(s)
	}
	b.AddN(s, 5)
	if a.Value() != b.Value() {
		t.Fatalf("AddN differs from repeated Add")
	}
}

func TestEndpointBiasPreservesDistance(t *testing.T) {
	var plus, minus Endpoint
	plus.Add(5)
	minus.Add(-5)
	if plus.Value() == minus.Value() {
		t.Fatalf("+5 and -5 collide")
	}
	d := plus.Value() - minus.Value()
	if d != 10 {
		t.Fatalf("distance +5/-5 = %d, want 10", d)
	}
}

func TestEndpointAverages(t *testing.T) {
	var e Endpoint
	e.Add(2)
	e.Add(4)
	want := (bias(2) + bias(4)) / 2
	if e.Value() != want {
		t.Fatalf("avg = %d, want %d", e.Value(), want)
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
	e.Reset()
	if e.Count() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestEndpointAddN(t *testing.T) {
	var a, b Endpoint
	for i := 0; i < 4; i++ {
		a.Add(-3)
	}
	b.AddN(-3, 4)
	if a.Value() != b.Value() || a.Count() != b.Count() {
		t.Fatalf("AddN mismatch")
	}
}

func TestDistance(t *testing.T) {
	a := Triple{CallPath: 1, Src: 100, Dest: 200}
	b := Triple{CallPath: 1, Src: 90, Dest: 230}
	if got := Distance(a, b); got != 10+30 {
		t.Fatalf("distance = %d", got)
	}
	if Distance(a, a) != 0 {
		t.Fatalf("self distance nonzero")
	}
	if Distance(a, b) != Distance(b, a) {
		t.Fatalf("distance not symmetric")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(s1, d1, s2, d2 uint64) bool {
		a := Triple{Src: s1, Dest: d1}
		b := Triple{Src: s2, Dest: d2}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
