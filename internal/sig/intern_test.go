package sig

import (
	"math/rand"
	"sync"
	"testing"
)

// makePCSets builds n distinct synthetic backtraces of varying depth.
func makePCSets(n int) [][]uintptr {
	rng := rand.New(rand.NewSource(42))
	sets := make([][]uintptr, n)
	for i := range sets {
		depth := 3 + rng.Intn(12)
		pcs := make([]uintptr, depth)
		for d := range pcs {
			pcs[d] = uintptr(0x400000 + rng.Intn(1<<24))
		}
		sets[i] = pcs
	}
	return sets
}

// TestInternConcurrent hammers one table from 64 goroutines interning a
// shared working set in goroutine-specific orders. Run under -race this
// is the concurrency-safety check; the assertions verify agreement: the
// same PC vector gets the same SiteID from every goroutine, and the
// cached signature always equals the direct fold.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 64
	table := NewTable()
	sets := makePCSets(200)
	ids := make([][]SiteID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine walks the working set in its own order so
			// first-intern races hit every site.
			order := rand.New(rand.NewSource(int64(g))).Perm(len(sets))
			got := make([]SiteID, len(sets))
			for _, i := range order {
				got[i] = table.InternPCs(sets[i])
			}
			// Second pass: hits must be stable.
			for _, i := range order {
				if again := table.InternPCs(sets[i]); again != got[i] {
					t.Errorf("goroutine %d: set %d interned to %d then %d", g, i, got[i], again)
					return
				}
			}
			ids[g] = got
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range sets {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("set %d: goroutine %d got id %d, goroutine 0 got %d",
					i, g, ids[g][i], ids[0][i])
			}
		}
	}
	if table.Len() != len(sets) {
		t.Fatalf("table has %d sites, want %d", table.Len(), len(sets))
	}
	for i, pcs := range sets {
		if got, want := table.Signature(ids[0][i]), FromPCs(pcs); got != want {
			t.Errorf("set %d: cached signature %016x != direct fold %016x", i, uint64(got), uint64(want))
		}
	}
}

// TestInternOrderIndependence is the property test: for random PC sets
// interned in random interleavings across fresh tables, the (PC set →
// signature) mapping is invariant, and within one table the mapping
// (PC set → SiteID) is a bijection however the interns are ordered.
func TestInternOrderIndependence(t *testing.T) {
	sets := makePCSets(64)
	ref := NewTable()
	refIDs := make(map[SiteID]int)
	for i, pcs := range sets {
		id := ref.InternPCs(pcs)
		if prev, dup := refIDs[id]; dup {
			t.Fatalf("sets %d and %d interned to the same id %d", prev, i, id)
		}
		refIDs[id] = i
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		table := NewTable()
		seen := make(map[SiteID]int)
		for _, i := range rng.Perm(len(sets)) {
			id := table.InternPCs(sets[i])
			if prev, dup := seen[id]; dup {
				t.Fatalf("trial %d: sets %d and %d share id %d", trial, prev, i, id)
			}
			seen[id] = i
			if got, want := table.Signature(id), ref.Signature(refIDs2(refIDs, i)); got != want {
				t.Fatalf("trial %d set %d: signature %016x, reference %016x",
					trial, i, uint64(got), uint64(want))
			}
		}
		if table.Len() != len(sets) {
			t.Fatalf("trial %d: %d sites, want %d", trial, table.Len(), len(sets))
		}
	}
}

func refIDs2(m map[SiteID]int, set int) SiteID {
	for id, i := range m {
		if i == set {
			return id
		}
	}
	return NoSite
}

// TestInternSigAgreesWithPCs checks the signature-only fallback: a site
// interned by signature is distinct from PC-interned sites but stable,
// and CaptureSite matches Capture's frame window.
func TestInternSigAgreesWithPCs(t *testing.T) {
	table := NewTable()
	a := table.InternSig(Stack(0xdeadbeef))
	b := table.InternSig(Stack(0xdeadbeef))
	if a != b {
		t.Fatalf("signature-only intern not stable: %d vs %d", a, b)
	}
	if got := table.Signature(a); got != Stack(0xdeadbeef) {
		t.Fatalf("signature-only site stored %016x", uint64(got))
	}
	// The same call instruction must intern to the same site on every
	// execution (the loop-iteration hit path), and the cached signature
	// must equal the direct fold of the captured frames.
	var ids [3]SiteID
	for i := range ids {
		ids[i] = CaptureSite(0)
	}
	if ids[0] == NoSite || ids[1] != ids[0] || ids[2] != ids[0] {
		t.Fatalf("repeated capture from one call site gave ids %v", ids)
	}
	m, ok := Sites.Meta(ids[0])
	if !ok || m.Sig != FromPCs(m.PCs) {
		t.Errorf("cached signature %016x != fold of stored backtrace", uint64(m.Sig))
	}
	info, ok := Sites.Resolve(ids[0])
	if !ok || info.Func == "" {
		t.Errorf("captured site did not resolve to a function: %+v", info)
	}
}
