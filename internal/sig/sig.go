// Package sig implements the 64-bit signatures Chameleon clusters on.
//
// ScalaTrace distinguishes MPI events originating from different source
// locations by a "stack signature": a fold of the backtrace return
// addresses at the call site. Chameleon aggregates the stack signatures
// of all events observed between two markers into one 64-bit Call-Path
// signature: each event's stack signature is multiplied by
// (sequence_number mod 10) + 1 and XORed into the accumulator, so that
// permuted call sequences or recursion cannot cancel out. SRC and DEST
// signatures summarize the communication end-points of the same window
// with an overflow-safe running average.
package sig

import (
	"runtime"

	"chameleon/internal/stats"
)

// Stack is a 64-bit stack signature of an MPI call site.
type Stack uint64

// Mix is the package's 64-bit finalizer (splitmix64), exported for
// callers that fold auxiliary values (e.g. occurrence counts) into
// signatures with the same diffusion.
func Mix(x uint64) uint64 { return mix(x) }

// mix is a 64-bit finalizer (splitmix64) applied to each frame address so
// nearby PCs produce well-spread signatures before XOR folding.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FromPCs folds a backtrace (as program counters) into a stack signature.
func FromPCs(pcs []uintptr) Stack {
	var s uint64
	for _, pc := range pcs {
		s ^= mix(uint64(pc))
	}
	return Stack(s)
}

// Capture walks the current goroutine stack (skipping skip frames above
// the caller) and returns its signature. It is the Go stand-in for the
// backtrace() walk ScalaTrace performs inside its PMPI wrappers: ranks
// executing the same source path get identical signatures; ranks on
// different branches diverge.
func Capture(skip int) Stack {
	var pcs [32]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	return FromPCs(pcs[:n])
}

// CallPath accumulates the Call-Path signature of an event window.
type CallPath struct {
	acc uint64
	seq uint64
}

// Add folds one event's stack signature into the Call-Path. The
// (seq%10)+1 multiplier is the paper's ordering term: it makes the
// signature sensitive to event order so interleaved or recursive call
// sequences cannot XOR-cancel.
func (c *CallPath) Add(s Stack) {
	c.seq++
	mult := c.seq%10 + 1
	c.acc ^= uint64(s) * mult
}

// AddN folds an event that the intra-node compressor observed n times
// (an RSD member with n iterations); the fold is applied per occurrence
// to preserve the sequence-number scaling.
func (c *CallPath) AddN(s Stack, n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Add(s)
	}
}

// Value returns the 64-bit Call-Path signature.
func (c *CallPath) Value() uint64 { return c.acc }

// Events returns the number of events folded in.
func (c *CallPath) Events() uint64 { return c.seq }

// Reset clears the accumulator for the next marker window.
func (c *CallPath) Reset() { c.acc, c.seq = 0, 0 }

// Endpoint accumulates the SRC or DEST signature of a window: the
// overflow-safe average of the (relative) end-point parameters of the
// window's events.
type Endpoint struct {
	r stats.Running
}

// Add folds one end-point parameter (already relative-encoded, biased to
// be non-negative) into the signature.
func (e *Endpoint) Add(rel int) {
	e.r.Add(bias(rel))
}

// AddN folds an end-point observed n times.
func (e *Endpoint) AddN(rel int, n uint64) {
	e.r.AddN(bias(rel), n)
}

// bias maps a relative offset (which may be negative) onto uint64 while
// preserving distance: offsets -k and +k land 2k apart.
func bias(rel int) uint64 {
	const center = uint64(1) << 32
	if rel >= 0 {
		return center + uint64(rel)
	}
	return center - uint64(-rel)
}

// Value returns the 64-bit end-point signature.
func (e *Endpoint) Value() uint64 { return e.r.Sig() }

// Count returns the number of end-points folded in.
func (e *Endpoint) Count() uint64 { return e.r.Count() }

// Reset clears the accumulator.
func (e *Endpoint) Reset() { e.r = stats.Running{} }

// Triple is the (Call-Path, SRC, DEST) signature vector that one rank
// contributes to clustering. The paper found these three cover the other
// event parameters in practice.
type Triple struct {
	CallPath uint64
	Src      uint64
	Dest     uint64
}

// Distance is the clustering metric over SRC/DEST signatures (Call-Path
// equality partitions first; distance orders within a partition).
func Distance(a, b Triple) uint64 {
	return absDiff(a.Src, b.Src) + absDiff(a.Dest, b.Dest)
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
