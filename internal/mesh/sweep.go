package mesh

// Anti-entropy: each peer periodically asks every other peer for its
// manifest, pulls any run it owns but lacks, and merges continuous-
// query registrations (newest wins). Sweeping is pull-only — a peer
// repairs itself, never pushes — so a restarted or newly added peer
// converges without any coordination beyond the shared -peers list.
// chamd piggybacks the sweep on the archive's background compaction
// cadence; tests and operators trigger it directly (POST /mesh/sweep).

import (
	"encoding/json"
	"fmt"

	"chameleon/internal/cq"
)

// SweepReport summarizes one anti-entropy pass.
type SweepReport struct {
	PeersAsked  int `json:"peers_asked"`
	PeersFailed int `json:"peers_failed"`
	Pulled      int `json:"pulled"`
	EdgesPulled int `json:"edges_pulled"`
	CQMerged    int `json:"cq_merged"`
}

// Sweep runs one anti-entropy pass: pull every run this peer owns but
// lacks, and merge peer CQ registrations into engine (nil skips CQ
// sync). Unreachable peers are skipped, not fatal — the next sweep
// retries.
func (n *Node) Sweep(target Target, engine *cq.Engine) (SweepReport, error) {
	var rep SweepReport
	var firstErr error
	n.mSweeps.Inc()
	for _, peer := range n.others {
		rep.PeersAsked++
		if err := n.sweepPeer(peer, target, engine, &rep); err != nil {
			rep.PeersFailed++
			n.mSweepErrs.Inc()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return rep, firstErr
}

func (n *Node) sweepPeer(peer string, target Target, engine *cq.Engine, rep *SweepReport) error {
	body, err := n.getBody(peer, "/mesh/manifest", "", ForwardRepair)
	if err != nil {
		return err
	}
	var entries []Entry
	if err := json.Unmarshal(body, &entries); err != nil {
		return fmt.Errorf("mesh: %s manifest: %w", peer, err)
	}
	for _, e := range entries {
		if !n.IsOwner(e.ID) {
			continue
		}
		if !target.Have(e.Tenant, e.ID) {
			payload, err := n.getBody(peer, "/runs/"+e.ID, e.Tenant, ForwardRepair)
			if err != nil {
				return err
			}
			if err := target.Pull(e.Tenant, payload); err != nil {
				return fmt.Errorf("mesh: pull %s/%s from %s: %w", e.Tenant, e.ID[:12], peer, err)
			}
			rep.Pulled++
			n.mPulled.Inc()
		}
		// Sidecars converge like runs: an owner that lacks one a peer
		// advertises pulls it, so a replaced or newly attached sidecar
		// survives an owner's death just like the trace itself.
		if e.Edges && !target.HaveEdges(e.Tenant, e.ID) {
			jsonl, err := n.getBody(peer, "/runs/"+e.ID+"/edges", e.Tenant, ForwardRepair)
			if err != nil {
				return err
			}
			if err := target.PullEdges(e.Tenant, e.ID, jsonl); err != nil {
				return fmt.Errorf("mesh: pull edges %s/%s from %s: %w", e.Tenant, e.ID[:12], peer, err)
			}
			rep.EdgesPulled++
		}
	}
	if engine != nil {
		raw, err := n.getBody(peer, "/cq?all=1", "", ForwardRepair)
		if err != nil {
			return err
		}
		var specs []cq.Spec
		if err := json.Unmarshal(raw, &specs); err != nil {
			return fmt.Errorf("mesh: %s cq specs: %w", peer, err)
		}
		rep.CQMerged += engine.Merge(specs)
	}
	return nil
}
