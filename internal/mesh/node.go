package mesh

// Node is one chamd peer's view of the federation: the ring, its own
// identity, and the HTTP plumbing for talking to the other owners.
// The store's HTTP layer drives it (fan-out on PUT, proxy on GET,
// scatter-gather on list); the anti-entropy Sweep drives itself.

import (
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"chameleon/internal/obs"
)

// Federation request headers.
const (
	// HeaderTenant namespaces every run, live session, and query.
	HeaderTenant = "X-Cham-Tenant"
	// HeaderForward marks intra-mesh traffic. A forwarded request is
	// served strictly locally (no re-fan-out, no re-proxy), which is
	// both the loop guard and the "ask this exact peer" primitive.
	HeaderForward = "X-Cham-Mesh"
	// HeaderKey carries the shared mesh secret. When a mesh is started
	// with one, HeaderForward is only honored alongside a matching key,
	// so external clients cannot claim intra-mesh trust by setting a
	// header.
	HeaderKey = "X-Cham-Mesh-Key"
	// ForwardFanout is a peer-to-peer replica write or scatter read.
	ForwardFanout = "fanout"
	// ForwardRepair is an anti-entropy pull; receivers skip continuous-
	// query evaluation so a converging peer never re-fires a gate.
	ForwardRepair = "repair"
)

// Forwarded reports whether the request is intra-mesh traffic.
func Forwarded(r *http.Request) bool { return r.Header.Get(HeaderForward) != "" }

// Repair reports whether the request is an anti-entropy pull.
func Repair(r *http.Request) bool { return r.Header.Get(HeaderForward) == ForwardRepair }

// Entry is one (tenant, run) pair in a peer's manifest, the unit the
// anti-entropy sweep reasons about. Edges marks a run carrying a causal
// edge sidecar, so sidecars converge onto owners exactly like runs.
type Entry struct {
	Tenant string `json:"tenant"`
	ID     string `json:"id"`
	Edges  bool   `json:"edges,omitempty"`
}

// Target is the local archive surface the sweep converges: what runs
// and sidecars it has, and how to store copies pulled from a peer.
type Target interface {
	// Entries lists every (tenant, run) the local archive holds.
	Entries() []Entry
	// Have reports whether the run is already stored locally.
	Have(tenant, id string) bool
	// Pull ingests a canonical payload fetched from a peer.
	Pull(tenant string, payload []byte) error
	// HaveEdges reports whether the run's edge sidecar is stored
	// locally.
	HaveEdges(tenant, id string) bool
	// PullEdges attaches a sidecar (JSONL bytes) fetched from a peer.
	PullEdges(tenant, id string, jsonl []byte) error
}

// Options configures a Node.
type Options struct {
	// Self is this peer's own URL as it appears in Peers.
	Self string
	// Peers is the full static membership, self included.
	Peers []string
	// Replicas is the ownership factor R (default 2, clamped to the
	// peer count).
	Replicas int
	// Vnodes per peer (default DefaultVnodes).
	Vnodes int
	// Client overrides the intra-mesh HTTP client.
	Client *http.Client
	// Secret, when non-empty, is the shared mesh key: every intra-mesh
	// request carries it (HeaderKey) and peers reject the forward
	// header without it. Empty means cooperative trust — the forward
	// header alone is honored, which is fine on a private network but
	// is not a security boundary (docs/STORE.md).
	Secret string
	// BroadcastTimeout bounds each best-effort fan-out call (CQ
	// registrations, deletions, event broadcasts) so one partitioned
	// peer cannot stall the ingest path for the full mesh client
	// timeout. Default 3s.
	BroadcastTimeout time.Duration
	// Reg receives mesh_* counters.
	Reg *obs.Registry
}

// Node is one peer's federation state. All methods are safe for
// concurrent use (the ring is immutable).
type Node struct {
	ring     *Ring
	self     string
	others   []string
	replicas int
	secret   string
	hc       *http.Client
	bc       *http.Client // short-timeout client for best-effort broadcasts

	mSweeps, mPulled, mSweepErrs *obs.Counter
}

// NewNode builds a peer's federation state. Self must appear in the
// peer list.
func NewNode(opts Options) (*Node, error) {
	ring, err := NewRing(opts.Peers, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	self := strings.TrimSuffix(strings.TrimSpace(opts.Self), "/")
	var others []string
	found := false
	for _, p := range ring.Peers() {
		if p == self {
			found = true
			continue
		}
		others = append(others, p)
	}
	if !found {
		return nil, fmt.Errorf("mesh: self %q is not in the peer list %v", self, ring.Peers())
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(ring.Peers()) {
		opts.Replicas = len(ring.Peers())
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.BroadcastTimeout <= 0 {
		opts.BroadcastTimeout = 3 * time.Second
	}
	return &Node{
		ring:       ring,
		self:       self,
		others:     others,
		replicas:   opts.Replicas,
		secret:     opts.Secret,
		hc:         hc,
		bc:         &http.Client{Timeout: opts.BroadcastTimeout},
		mSweeps:    opts.Reg.Counter("mesh_sweeps"),
		mPulled:    opts.Reg.Counter("mesh_sweep_pulled"),
		mSweepErrs: opts.Reg.Counter("mesh_sweep_errors"),
	}, nil
}

// Self returns this peer's normalized URL.
func (n *Node) Self() string { return n.self }

// Peers returns the full membership.
func (n *Node) Peers() []string { return n.ring.Peers() }

// Others returns the membership minus self.
func (n *Node) Others() []string { return append([]string(nil), n.others...) }

// Replicas returns the ownership factor R.
func (n *Node) Replicas() int { return n.replicas }

// Owners returns the R peers owning a run, primary first.
func (n *Node) Owners(id string) []string { return n.ring.Owners(id, n.replicas) }

// IsOwner reports whether this peer is one of the run's R owners.
func (n *Node) IsOwner(id string) bool {
	for _, o := range n.Owners(id) {
		if o == n.self {
			return true
		}
	}
	return false
}

// IsPrimary reports whether this peer is the run's first owner — the
// one that evaluates continuous queries on ingest.
func (n *Node) IsPrimary(id string) bool {
	owners := n.Owners(id)
	return len(owners) > 0 && owners[0] == n.self
}

// Secured reports whether the mesh authenticates intra-mesh traffic
// with a shared key.
func (n *Node) Secured() bool { return n.secret != "" }

// Authorized reports whether a request is trusted intra-mesh traffic:
// the forward header plus, when the mesh has a shared secret, the
// matching key. Without a secret the header alone is honored —
// cooperative trust, not a security boundary (docs/STORE.md).
func (n *Node) Authorized(r *http.Request) bool {
	if !Forwarded(r) {
		return false
	}
	if n.secret == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(HeaderKey)), []byte(n.secret)) == 1
}

// Decorate marks a caller-built request as intra-mesh: forward kind,
// tenant, and the shared mesh key when one is configured.
func (n *Node) Decorate(req *http.Request, tenant, kind string) {
	if kind == "" {
		kind = ForwardFanout
	}
	req.Header.Set(HeaderForward, kind)
	if n.secret != "" {
		req.Header.Set(HeaderKey, n.secret)
	}
	if tenant != "" {
		req.Header.Set(HeaderTenant, tenant)
	}
}

// Do sends an intra-mesh request: the forward header (loop guard),
// mesh key, and tenant are set, and the response is returned as-is.
func (n *Node) Do(method, peer, path, tenant, kind string, contentType string, body io.Reader) (*http.Response, error) {
	return n.do(n.hc, method, peer, path, tenant, kind, contentType, body)
}

// Broadcast is Do on the short-timeout best-effort client: CQ
// registration/delete fan-outs and event broadcasts ride it, so a
// partitioned (non-refusing) peer delays the caller by at most
// BroadcastTimeout instead of the full mesh client timeout.
func (n *Node) Broadcast(method, peer, path, tenant, kind string, contentType string, body io.Reader) (*http.Response, error) {
	return n.do(n.bc, method, peer, path, tenant, kind, contentType, body)
}

func (n *Node) do(hc *http.Client, method, peer, path, tenant, kind string, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, peer+path, body)
	if err != nil {
		return nil, err
	}
	n.Decorate(req, tenant, kind)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return hc.Do(req)
}

// Send issues a caller-built request on the intra-mesh client. The
// caller is responsible for setting the forward header.
func (n *Node) Send(req *http.Request) (*http.Response, error) { return n.hc.Do(req) }

// getBody fetches an intra-mesh URL and returns the body on 200.
func (n *Node) getBody(peer, path, tenant, kind string) ([]byte, error) {
	resp, err := n.Do(http.MethodGet, peer, path, tenant, kind, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("mesh: GET %s%s: %s: %s", peer, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return io.ReadAll(resp.Body)
}
