package mesh

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func peers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://peer%d:8321", i)
	}
	return out
}

// contentID fabricates a realistic run ID: hex SHA-256 of the seed.
func contentID(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("run-%d", seed)))
	return hex.EncodeToString(sum[:])
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r, err := NewRing(peers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := contentID(i)
		owners := r.Owners(id, 2)
		if len(owners) != 2 {
			t.Fatalf("id %s: got %d owners, want 2", id[:12], len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("id %s: duplicate owner %s", id[:12], owners[0])
		}
		// Placement is a pure function: a second ring built from the same
		// peers agrees exactly.
		r2, _ := NewRing(peers(3), 0)
		again := r2.Owners(id, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("id %s: placement not deterministic: %v vs %v", id[:12], owners, again)
		}
	}
}

func TestRingReplicaClamp(t *testing.T) {
	r, err := NewRing(peers(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owners(contentID(1), 5); len(got) != 2 {
		t.Fatalf("R should clamp to peer count: got %d owners", len(got))
	}
	if got := r.Owners(contentID(1), 0); len(got) != 1 {
		t.Fatalf("R<=0 should clamp to 1: got %d owners", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(peers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owners(contentID(i), 1)[0]]++
	}
	for p, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of keys: ring badly unbalanced (%v)", p, 100*frac, counts)
		}
	}
}

func TestRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a/"}, 0); err == nil {
		t.Fatal("duplicate (after normalization) peer list accepted")
	}
}

func TestRingNormalizesPeers(t *testing.T) {
	r, err := NewRing([]string{" http://a/ ", "http://b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Peers()
	if got[0] != "http://a" || got[1] != "http://b" {
		t.Fatalf("peers not normalized: %v", got)
	}
}

func TestNodeOwnershipRoles(t *testing.T) {
	ps := peers(3)
	nodes := make([]*Node, len(ps))
	for i := range ps {
		n, err := NewNode(Options{Self: ps[i], Peers: ps, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for i := 0; i < 100; i++ {
		id := contentID(i)
		primaries, owners := 0, 0
		for _, n := range nodes {
			if n.IsPrimary(id) {
				primaries++
			}
			if n.IsOwner(id) {
				owners++
			}
		}
		if primaries != 1 {
			t.Fatalf("id %s: %d primaries, want exactly 1", id[:12], primaries)
		}
		if owners != 2 {
			t.Fatalf("id %s: %d owners, want exactly 2", id[:12], owners)
		}
	}
}

func TestNodeRejectsSelfNotInPeers(t *testing.T) {
	if _, err := NewNode(Options{Self: "http://elsewhere", Peers: peers(3)}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
}
