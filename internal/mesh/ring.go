// Package mesh federates N chamd peers into one logical archive.
//
// Placement is a consistent-hash ring: each peer contributes a fixed
// number of virtual nodes (points on a 64-bit circle derived from
// SHA-256 of "peerURL#vnode"), and a run lands on the R distinct peers
// that follow its point clockwise. Run IDs are already content
// addresses (hex SHA-256 of the canonical trace encoding), so the key
// point is simply the ID's leading 64 bits — no re-hashing, and the
// placement of a run is a pure function of its bytes that every peer
// computes identically from the same static -peers list.
//
// The ring is static membership with replication, not a gossip system:
// adding a peer means restarting the fleet with a longer -peers list,
// after which the anti-entropy sweep (Node.Sweep) pulls every run the
// new peer now owns but lacks. Peer death is survived by the R-1 other
// owners; a restarted peer converges the same way.
package mesh

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVnodes is the virtual-node count per peer: enough that a
// 3-peer ring splits ownership within a few percent of evenly.
const DefaultVnodes = 64

type point struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is an immutable consistent-hash ring over a static peer list.
type Ring struct {
	peers  []string
	points []point
}

// NewRing builds a ring with vnodes virtual nodes per peer (0 means
// DefaultVnodes). Peer URLs are normalized (trailing slash stripped)
// and must be unique.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	norm := make([]string, 0, len(peers))
	seen := map[string]bool{}
	for _, p := range peers {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if seen[p] {
			return nil, fmt.Errorf("mesh: duplicate peer %q", p)
		}
		seen[p] = true
		norm = append(norm, p)
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("mesh: empty peer list")
	}
	r := &Ring{peers: norm, points: make([]point, 0, len(norm)*vnodes)}
	for i, p := range norm {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(p + "#" + strconv.Itoa(v)))
			r.points = append(r.points, point{hash: binary.BigEndian.Uint64(sum[:8]), peer: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the normalized peer list in input order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// keyPoint maps a run reference onto the circle. A content address is
// its own hash: the leading 16 hex digits are the point. Anything else
// (tests, non-hex keys) falls back to SHA-256.
func keyPoint(id string) uint64 {
	if len(id) >= 16 {
		if v, err := strconv.ParseUint(id[:16], 16, 64); err == nil {
			return v
		}
	}
	sum := sha256.Sum256([]byte(id))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owners returns the R distinct peers owning id, primary first,
// walking clockwise from the run's point. R is clamped to the peer
// count.
func (r *Ring) Owners(id string, replicas int) []string {
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(r.peers) {
		replicas = len(r.peers)
	}
	h := keyPoint(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, replicas)
	taken := make(map[int]bool, replicas)
	for i := 0; len(owners) < replicas && i < len(r.points); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if taken[pt.peer] {
			continue
		}
		taken[pt.peer] = true
		owners = append(owners, r.peers[pt.peer])
	}
	return owners
}
