package cluster

import (
	"sort"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/vtime"
)

func item(rank int, cp, src, dest uint64) Item {
	return Item{
		Lead:  rank,
		Ranks: ranklist.SingleRank(rank),
		Sig:   sig.Triple{CallPath: cp, Src: src, Dest: dest},
	}
}

func leads(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.Lead
	}
	sort.Ints(out)
	return out
}

func coveredRanks(items []Item) []int {
	var all []int
	for _, it := range items {
		all = append(all, it.Ranks.Ranks()...)
	}
	sort.Ints(all)
	return all
}

func TestFindTopKSmallInput(t *testing.T) {
	items := []Item{item(3, 1, 0, 0), item(1, 1, 0, 0)}
	res := FindTopK(items, 5, KFarthest)
	if len(res.Top) != 2 {
		t.Fatalf("k >= n should keep all items: %d", len(res.Top))
	}
	if got := leads(res.Top); got[0] != 1 || got[1] != 3 {
		t.Fatalf("leads = %v", got)
	}
}

func TestFindTopKEmpty(t *testing.T) {
	if res := FindTopK(nil, 3, KFarthest); len(res.Top) != 0 {
		t.Fatalf("empty input produced items")
	}
	if res := FindTopK([]Item{item(0, 1, 0, 0)}, 0, KFarthest); len(res.Top) != 0 {
		t.Fatalf("k=0 produced items")
	}
}

func TestFindTopKSelectsExtremes(t *testing.T) {
	// Three well-separated signature groups; K-Farthest must pick one
	// representative from each.
	var items []Item
	for r := 0; r < 9; r++ {
		items = append(items, item(r, 1, uint64(r/3*1000), 0))
	}
	res := FindTopK(items, 3, KFarthest)
	if len(res.Top) != 3 {
		t.Fatalf("top = %d", len(res.Top))
	}
	groups := map[uint64]bool{}
	for _, it := range res.Top {
		groups[it.Sig.Src/1000] = true
	}
	if len(groups) != 3 {
		t.Fatalf("K-Farthest missed a group: %v", leads(res.Top))
	}
	// Every input rank is covered by exactly the union of cluster lists.
	if got := coveredRanks(res.Top); len(got) != 9 {
		t.Fatalf("coverage = %v", got)
	}
}

func TestFindTopKAssignsToNearest(t *testing.T) {
	items := []Item{
		item(0, 1, 0, 0),
		item(1, 1, 10, 0),   // near rank 0
		item(5, 1, 1000, 0), // far group
		item(6, 1, 1010, 0), // near rank 5
	}
	res := FindTopK(items, 2, KFarthest)
	if len(res.Top) != 2 {
		t.Fatalf("top = %d", len(res.Top))
	}
	// K-Farthest seeds with the lowest rank (0) and picks the farthest
	// item (rank 6); the remaining items must join their near group.
	for _, it := range res.Top {
		switch it.Lead {
		case 0:
			if !it.Ranks.Contains(1) || it.Ranks.Contains(5) {
				t.Fatalf("lead 0 cluster = %v", it.Ranks)
			}
		case 6:
			if !it.Ranks.Contains(5) || it.Ranks.Contains(1) {
				t.Fatalf("lead 6 cluster = %v", it.Ranks)
			}
		default:
			t.Fatalf("unexpected lead %d", it.Lead)
		}
	}
}

func TestVariantFlag(t *testing.T) {
	// Identical signatures merge without the variant flag...
	same := []Item{item(0, 1, 5, 5), item(1, 1, 5, 5), item(2, 1, 5, 5)}
	res := FindTopK(same, 1, KFarthest)
	if res.Top[0].Variant {
		t.Fatalf("identical members flagged variant")
	}
	// ...while rank-dependent end-points set it (the master/worker case).
	diff := []Item{item(0, 1, 5, 5), item(1, 1, 7, 9), item(2, 1, 8, 11)}
	res = FindTopK(diff, 1, KFarthest)
	if !res.Top[0].Variant {
		t.Fatalf("differing members not flagged variant")
	}
	// The flag propagates through further merging levels.
	carried := []Item{{Lead: 0, Ranks: ranklist.SingleRank(0), Sig: sig.Triple{CallPath: 1}, Variant: true},
		item(1, 1, 0, 0)}
	res = FindTopK(carried, 1, KFarthest)
	if !res.Top[0].Variant {
		t.Fatalf("variant flag lost in merge")
	}
}

func TestAlgorithmsProduceK(t *testing.T) {
	var items []Item
	for r := 0; r < 20; r++ {
		items = append(items, item(r, 1, uint64(r*37), uint64(r*11)))
	}
	for _, algo := range []Algorithm{KFarthest, KMedoid, KRandom} {
		res := FindTopK(items, 4, algo)
		if len(res.Top) != 4 {
			t.Fatalf("%v produced %d leads", algo, len(res.Top))
		}
		if got := coveredRanks(res.Top); len(got) != 20 {
			t.Fatalf("%v coverage = %d ranks", algo, len(got))
		}
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	var items []Item
	for r := 0; r < 15; r++ {
		items = append(items, item(r, 1, uint64(r*r*13), 0))
	}
	for _, algo := range []Algorithm{KFarthest, KMedoid, KRandom} {
		a := leads(FindTopK(items, 3, algo).Top)
		b := leads(FindTopK(items, 3, algo).Top)
		if len(a) != len(b) {
			t.Fatalf("%v nondeterministic", algo)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v nondeterministic: %v vs %v", algo, a, b)
			}
		}
	}
}

func TestKMedoidRefines(t *testing.T) {
	// Two tight groups with an outlier seed: K-Medoid should still land
	// representatives inside each group.
	var items []Item
	for r := 0; r < 5; r++ {
		items = append(items, item(r, 1, uint64(100+r), 0))
	}
	for r := 5; r < 10; r++ {
		items = append(items, item(r, 1, uint64(9000+r), 0))
	}
	res := FindTopK(items, 2, KMedoid)
	var lows, highs int
	for _, it := range res.Top {
		if it.Sig.Src < 5000 {
			lows++
		} else {
			highs++
		}
	}
	if lows != 1 || highs != 1 {
		t.Fatalf("medoid picks: %v", leads(res.Top))
	}
}

func TestPartitionByCallPath(t *testing.T) {
	items := []Item{item(0, 7, 0, 0), item(1, 3, 0, 0), item(2, 7, 0, 0)}
	keys, groups := PartitionByCallPath(items)
	if len(keys) != 2 || keys[0] != 3 || keys[1] != 7 {
		t.Fatalf("keys = %v", keys)
	}
	if len(groups[7]) != 2 || len(groups[3]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestSelectLeadsPerCallPathBudget(t *testing.T) {
	// Two Call-Paths, K=4: two representatives per path.
	var items []Item
	for r := 0; r < 8; r++ {
		items = append(items, item(r, uint64(r%2+1), uint64(r*500), 0))
	}
	res := SelectLeads(items, 4, KFarthest)
	if len(res.Top) != 4 {
		t.Fatalf("leads = %d", len(res.Top))
	}
	perPath := map[uint64]int{}
	for _, it := range res.Top {
		perPath[it.Sig.CallPath]++
	}
	if perPath[1] != 2 || perPath[2] != 2 {
		t.Fatalf("per-path split: %v", perPath)
	}
}

func TestSelectLeadsDynamicK(t *testing.T) {
	// More Call-Paths than K: every path still gets one representative
	// ("Chameleon does not miss any MPI event").
	var items []Item
	for r := 0; r < 12; r++ {
		items = append(items, item(r, uint64(r), 0, 0)) // 12 distinct paths
	}
	res := SelectLeads(items, 3, KFarthest)
	if len(res.Top) != 12 {
		t.Fatalf("dynamic K: %d leads, want 12", len(res.Top))
	}
}

func TestSelectLeadsEmpty(t *testing.T) {
	if res := SelectLeads(nil, 3, KFarthest); len(res.Top) != 0 {
		t.Fatalf("empty select")
	}
}

func TestParseAlgorithm(t *testing.T) {
	if ParseAlgorithm("k-medoid") != KMedoid || ParseAlgorithm("medoid") != KMedoid {
		t.Fatalf("medoid parse")
	}
	if ParseAlgorithm("random") != KRandom {
		t.Fatalf("random parse")
	}
	if ParseAlgorithm("") != KFarthest || ParseAlgorithm("nonsense") != KFarthest {
		t.Fatalf("default parse")
	}
	for _, a := range []Algorithm{KFarthest, KMedoid, KRandom} {
		if a.String() == "algo?" {
			t.Fatalf("missing name")
		}
	}
}

func TestDistributedSelect(t *testing.T) {
	const P = 13
	const K = 3
	results := make([][]Item, P)
	_, err := mpi.Run(mpi.Config{P: P}, func(p *mpi.Proc) {
		self := Item{
			Lead:  p.Rank(),
			Ranks: ranklist.SingleRank(p.Rank()),
			// Three behavior groups by rank range.
			Sig: sig.Triple{CallPath: 42, Src: uint64(p.Rank() / 5 * 10000), Dest: 0},
		}
		results[p.Rank()] = DistributedSelect(p, self, K, KFarthest, 1<<50, vtime.CatCluster)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank receives the same Top-K list.
	ref := leads(results[0])
	for r := 1; r < P; r++ {
		got := leads(results[r])
		if len(got) != len(ref) {
			t.Fatalf("rank %d list differs", r)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("rank %d leads %v vs %v", r, got, ref)
			}
		}
	}
	if len(ref) != K {
		t.Fatalf("leads = %v", ref)
	}
	// The cluster rank lists partition all P ranks.
	got := coveredRanks(results[0])
	if len(got) != P {
		t.Fatalf("coverage = %v", got)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("rank %d missing or duplicated: %v", i, got)
		}
	}
}

func TestItemsBytes(t *testing.T) {
	if ItemsBytes(nil) != 0 {
		t.Fatalf("empty bytes")
	}
	if ItemsBytes([]Item{item(0, 1, 0, 0)}) <= 0 {
		t.Fatalf("bytes not positive")
	}
}
