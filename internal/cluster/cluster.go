// Package cluster implements the signature-based clustering algorithms
// Chameleon selects lead processes with (the paper's Algorithm 2 plus
// the K-Farthest / K-Medoid / K-Random selectors studied in the authors'
// prior work).
//
// Clustering operates on signatures, never on traces: each item is a
// candidate cluster carrying a (Call-Path, SRC, DEST) signature triple
// and the rank list it represents. Items are first partitioned by
// Call-Path (every Call-Path keeps at least one representative so no MPI
// event is lost), then within a partition the selector picks
// K/NumCallPath representatives by SRC/DEST distance, and remaining
// items merge into their closest selected cluster.
package cluster

import (
	"sort"

	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
)

// Item is one candidate cluster: a representative rank, the ranks it
// stands for, and its signature triple.
type Item struct {
	Lead  int
	Ranks ranklist.List
	Sig   sig.Triple
	// Variant records that members with *differing* SRC/DEST signatures
	// were merged into this cluster: their end-point parameters are
	// rank-dependent, so ScalaTrace's relative encoding is not location
	// independent for them. The lead then pins its end-points to
	// absolute ranks before the flush (the master/worker case), instead
	// of letting every member transpose them.
	Variant bool
}

// Algorithm selects which representative-selection strategy FindTopK
// uses.
type Algorithm int

// Selection strategies.
const (
	// KFarthest greedily picks the item farthest from the selected set
	// (maximal signature diversity).
	KFarthest Algorithm = iota
	// KMedoid runs a bounded PAM refinement that minimizes total
	// distance from items to their representative.
	KMedoid
	// KRandom picks deterministically pseudo-random representatives
	// (the baseline selector).
	KRandom
)

func (a Algorithm) String() string {
	switch a {
	case KFarthest:
		return "k-farthest"
	case KMedoid:
		return "k-medoid"
	case KRandom:
		return "k-random"
	}
	return "algo?"
}

// ParseAlgorithm maps a name to an Algorithm (KFarthest for unknown).
func ParseAlgorithm(s string) Algorithm {
	switch s {
	case "k-medoid", "kmedoid", "medoid":
		return KMedoid
	case "k-random", "krandom", "random":
		return KRandom
	}
	return KFarthest
}

// Result is the outcome of FindTopK: the representative items (each now
// covering its own ranks plus every merged cluster's ranks) and the
// amount of distance work performed (for cost accounting).
type Result struct {
	Top       []Item
	Distances int
}

// FindTopK implements Algorithm 2: it selects up to k representatives
// among items by SRC/DEST signature distance and merges every
// non-selected item into its closest representative. Items must share a
// Call-Path (the caller partitions first). The input order must be
// deterministic; FindTopK sorts by lead rank to make sure.
func FindTopK(items []Item, k int, algo Algorithm) Result {
	var res Result
	if len(items) == 0 || k <= 0 {
		return res
	}
	its := append([]Item(nil), items...)
	sort.Slice(its, func(i, j int) bool { return its[i].Lead < its[j].Lead })
	if k >= len(its) {
		res.Top = its
		return res
	}

	var chosen []int
	switch algo {
	case KMedoid:
		chosen = selectMedoid(its, k, &res.Distances)
	case KRandom:
		chosen = selectRandom(its, k)
	default:
		chosen = selectFarthest(its, k, &res.Distances)
	}

	// Assign every non-selected item to its closest representative
	// (Algorithm 2 lines 6-9) and union the rank lists.
	top := make([]Item, len(chosen))
	for i, idx := range chosen {
		top[i] = its[idx]
	}
	isChosen := make([]bool, len(its))
	for _, idx := range chosen {
		isChosen[idx] = true
	}
	for i, it := range its {
		if isChosen[i] {
			continue
		}
		best, bestD := 0, ^uint64(0)
		for j, rep := range top {
			d := sig.Distance(it.Sig, rep.Sig)
			res.Distances++
			if d < bestD {
				best, bestD = j, d
			}
		}
		top[best].Ranks = top[best].Ranks.Union(it.Ranks)
		if bestD != 0 || it.Variant {
			top[best].Variant = true
		}
	}
	res.Top = top
	return res
}

// selectFarthest greedily grows the representative set with the item
// maximizing its minimum distance to the set ("find farthest cluster to
// TopK list"). The seed is the lowest-rank item for determinism.
func selectFarthest(its []Item, k int, dist *int) []int {
	chosen := []int{0}
	minDist := make([]uint64, len(its))
	for i := range its {
		minDist[i] = sig.Distance(its[i].Sig, its[0].Sig)
		*dist++
	}
	for len(chosen) < k {
		best, bestD := -1, uint64(0)
		for i := range its {
			if containsInt(chosen, i) {
				continue
			}
			if best == -1 || minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if best == -1 {
			break
		}
		chosen = append(chosen, best)
		for i := range its {
			d := sig.Distance(its[i].Sig, its[best].Sig)
			*dist++
			if d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// selectMedoid seeds with K-Farthest and refines with bounded PAM swaps.
// Each Chameleon node clusters at most 2K+1 items, so the K³ PAM cost
// stays constant.
func selectMedoid(its []Item, k int, dist *int) []int {
	chosen := selectFarthest(its, k, dist)
	cost := func(reps []int) uint64 {
		var total uint64
		for i := range its {
			best := ^uint64(0)
			for _, r := range reps {
				d := sig.Distance(its[i].Sig, its[r].Sig)
				*dist++
				if d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	cur := cost(chosen)
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		improved := false
		for ci := range chosen {
			for cand := range its {
				if containsInt(chosen, cand) {
					continue
				}
				trial := append([]int(nil), chosen...)
				trial[ci] = cand
				if c := cost(trial); c < cur {
					chosen, cur = trial, c
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	sort.Ints(chosen)
	return chosen
}

// selectRandom picks k deterministic pseudo-random items (splitmix over
// the item count so runs are reproducible).
func selectRandom(its []Item, k int) []int {
	chosen := make([]int, 0, k)
	seen := make([]bool, len(its))
	state := uint64(0x9e3779b97f4a7c15)
	for len(chosen) < k {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		idx := int((z ^ (z >> 31)) % uint64(len(its)))
		if !seen[idx] {
			seen[idx] = true
			chosen = append(chosen, idx)
		}
	}
	sort.Ints(chosen)
	return chosen
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PartitionByCallPath groups items by Call-Path signature, returning the
// groups keyed by signature in deterministic (sorted) order.
func PartitionByCallPath(items []Item) (keys []uint64, groups map[uint64][]Item) {
	groups = make(map[uint64][]Item)
	for _, it := range items {
		groups[it.Sig.CallPath] = append(groups[it.Sig.CallPath], it)
	}
	keys = make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, groups
}

// SelectLeads runs the full per-node clustering step: partition by
// Call-Path, give each partition a budget of K/NumCallPath (at least 1 —
// "Chameleon does not miss any MPI event by selecting at least one
// representative from each callpath cluster"; K grows dynamically when
// Call-Paths exceed it), and run FindTopK per partition.
func SelectLeads(items []Item, k int, algo Algorithm) Result {
	keys, groups := PartitionByCallPath(items)
	if len(keys) == 0 {
		return Result{}
	}
	perPath := k / len(keys)
	if perPath < 1 {
		perPath = 1 // dynamic K increase
	}
	var res Result
	for _, key := range keys {
		sub := FindTopK(groups[key], perPath, algo)
		res.Top = append(res.Top, sub.Top...)
		res.Distances += sub.Distances
	}
	sort.Slice(res.Top, func(i, j int) bool { return res.Top[i].Lead < res.Top[j].Lead })
	return res
}
