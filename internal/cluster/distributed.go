package cluster

import (
	"chameleon/internal/mpi"
	"chameleon/internal/vtime"
)

// DistributedSelect runs the distributed clustering of Algorithm 3's
// "Clustering" branch over all ranks: each rank contributes one item
// (itself), items flow up a binomial radix tree, every internal node
// caps its working set at k with SelectLeads, the root makes the final
// selection, and the Top-K list is broadcast to everyone.
//
// Communication wait time and distance-computation work are charged to
// the given ledger category. The call is collective over the world
// communicator; tag must be unique per invocation and identical across
// ranks.
func DistributedSelect(p *mpi.Proc, self Item, k int, algo Algorithm, tag int, cat vtime.Category) []Item {
	return DistributedSelectMembers(p, self, nil, k, algo, tag, cat)
}

// DistributedSelectMembers is DistributedSelect restricted to an
// explicit member list (sorted world ranks), the form the fault-tolerant
// path uses once ranks have crashed: the radix tree spans only the
// survivors, and the Top-K broadcast reaches only them. A nil members
// list means all ranks. Non-members must not call it.
func DistributedSelectMembers(p *mpi.Proc, self Item, members []int, k int, algo Algorithm, tag int, cat vtime.Category) []Item {
	model := p.Model()
	world := p.World()
	items := []Item{self}
	// Default causal label (tag distinguishes invocations); core's
	// explicit "cluster" context, when set, takes precedence.
	defer p.CausalContextDefault("cluster", tag)()

	// Handles are nil-safe when metrics are off; no guard needed.
	o := p.Obs()
	cDistances := o.Counter("cluster_distance_ops_total")
	cSelections := o.Counter("cluster_selections_total")
	cItems := o.Counter("cluster_items_gathered_total")
	cWorking := o.Histogram("cluster_working_set_items")

	if members == nil {
		members = make([]int, p.Size())
		for i := range members {
			members[i] = i
		}
	}
	pos := mpi.TreePos(members, p.Rank())
	for _, childPos := range mpi.TreeChildPositions(pos, len(members)) {
		msg := world.RawRecv(members[childPos], tag)
		p.Ledger.Charge(cat, model.Alpha+model.CollectivePerLevel)
		childItems, _ := msg.Payload.([]Item)
		items = append(items, childItems...)
		cItems.Add(uint64(len(childItems)))
		if len(items) > k {
			cWorking.Observe(int64(len(items)))
			res := SelectLeads(items, k, algo)
			items = res.Top
			cSelections.Inc()
			cDistances.Add(uint64(res.Distances))
			p.ChargeOverhead(cat, vtime.Duration(res.Distances)*model.ClusterPerItem)
		}
	}
	if parent := mpi.TreeParentPos(pos); parent >= 0 {
		world.RawSend(members[parent], tag, ItemsBytes(items), items)
		p.Ledger.Charge(cat, model.Alpha)
	} else {
		cWorking.Observe(int64(len(items)))
		res := SelectLeads(items, k, algo)
		items = res.Top
		cSelections.Inc()
		cDistances.Add(uint64(res.Distances))
		p.ChargeOverhead(cat, vtime.Duration(res.Distances)*model.ClusterPerItem)
	}

	var top []Item
	if len(members) == p.Size() {
		top = world.RawBcastObj(0, items, ItemsBytes(items)).([]Item)
	} else {
		top = mpi.GroupBcastObj(p, members, tag|1, items, ItemsBytes(items)).([]Item)
	}
	p.Ledger.Charge(cat, model.Alpha+model.CollectivePerLevel)
	return top
}

// ItemsBytes approximates the wire size of an item list (signatures plus
// rank-list descriptors).
func ItemsBytes(items []Item) int {
	n := 0
	for _, it := range items {
		n += 32 + it.Ranks.SizeBytes()
	}
	return n
}
