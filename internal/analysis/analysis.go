// Package analysis inspects and compares compressed trace files: summary
// statistics, per-rank communication volumes, a reconstructed
// point-to-point communication matrix, and structural comparison of two
// traces (the checks behind "Chameleon does not miss any MPI event").
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"chameleon/internal/mpi"
	"chameleon/internal/trace"
)

// Summary is the headline statistics of one trace file.
type Summary struct {
	P             int
	Nodes         int
	Leaves        int
	DynamicEvents uint64
	DistinctSites int
	SizeBytes     int
	// MaxLoopDepth is the deepest PRSD nesting.
	MaxLoopDepth int
	// CompressionRatio is dynamic events per stored leaf (higher =
	// better loop compression).
	CompressionRatio float64
	// OpCounts tallies dynamic events per MPI operation.
	OpCounts map[string]uint64
}

// Summarize computes the Summary of a trace file.
func Summarize(f *trace.File) Summary {
	s := Summary{
		P:             f.P,
		Nodes:         trace.NodeCount(f.Nodes),
		Leaves:        trace.LeafCount(f.Nodes),
		DynamicEvents: trace.DynamicEvents(f.Nodes),
		SizeBytes:     trace.SizeBytes(f.Nodes),
		OpCounts:      map[string]uint64{},
	}
	sites := map[uint64]struct{}{}
	trace.CollectStacks(f.Nodes, sites)
	s.DistinctSites = len(sites)
	s.MaxLoopDepth = maxDepth(f.Nodes, 0)
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		if mult == 0 {
			return // zero-trip loop: no dynamic events below here
		}
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
			} else {
				s.OpCounts[n.Ev.Op.String()] += mult
			}
		}
	}
	walk(f.Nodes, 1)
	s.CompressionRatio = Ratio(float64(s.DynamicEvents), float64(s.Leaves))
	return s
}

// Ratio returns num/den with a guarded denominator: 0 when den is zero
// or not finite, so empty traces, empty windows, and zero-iteration
// loops never produce NaN or Inf in derived metrics.
func Ratio(num, den float64) float64 {
	if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 0
	}
	return num / den
}

func maxDepth(seq []*trace.Node, depth int) int {
	max := depth
	for _, n := range seq {
		if n.IsLoop() {
			if d := maxDepth(n.Body, depth+1); d > max {
				max = d
			}
		}
	}
	return max
}

// String renders the summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d nodes=%d leaves=%d events=%d sites=%d size=%dB depth=%d ratio=%.1fx\n",
		s.P, s.Nodes, s.Leaves, s.DynamicEvents, s.DistinctSites, s.SizeBytes,
		s.MaxLoopDepth, s.CompressionRatio)
	ops := make([]string, 0, len(s.OpCounts))
	for op := range s.OpCounts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "  %-10s %d\n", op, s.OpCounts[op])
	}
	return b.String()
}

// Volume is one rank's communication totals.
type Volume struct {
	Rank       int
	SendEvents uint64
	SendBytes  uint64
	RecvEvents uint64
	CollEvents uint64
}

// Volumes reconstructs per-rank communication volumes from a trace.
func Volumes(f *trace.File) []Volume {
	out := make([]Volume, f.P)
	for r := range out {
		out[r].Rank = r
	}
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		if mult == 0 {
			return
		}
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
				continue
			}
			for _, r := range n.Ranks.Ranks() {
				if r < 0 || r >= f.P {
					continue
				}
				v := &out[r]
				switch {
				case n.Ev.Op == mpi.OpSend || n.Ev.Op == mpi.OpIsend:
					v.SendEvents += mult
					v.SendBytes += mult * uint64(n.Ev.Bytes)
				case n.Ev.Op == mpi.OpRecv || n.Ev.Op == mpi.OpIrecv:
					v.RecvEvents += mult
				case n.Ev.Op == mpi.OpSendrecv:
					v.SendEvents += mult
					v.SendBytes += mult * uint64(n.Ev.Bytes)
					v.RecvEvents += mult
				case n.Ev.Op.IsCollective():
					v.CollEvents += mult
				}
			}
		}
	}
	walk(f.Nodes, 1)
	return out
}

// CommMatrix reconstructs the point-to-point communication matrix
// (message counts keyed by [src][dst]) by resolving each send leaf's
// end-point for every covered rank. Wildcard/reply encodings cannot be
// attributed to a single peer and are tallied under Unresolved.
type CommMatrix struct {
	P          int
	Counts     map[int]map[int]uint64
	Bytes      map[int]map[int]uint64
	Unresolved uint64
}

// Matrix reconstructs the communication matrix of a trace.
func Matrix(f *trace.File) *CommMatrix {
	m := &CommMatrix{P: f.P, Counts: map[int]map[int]uint64{}, Bytes: map[int]map[int]uint64{}}
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		if mult == 0 {
			return
		}
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
				continue
			}
			op := n.Ev.Op
			if op != mpi.OpSend && op != mpi.OpIsend && op != mpi.OpSendrecv {
				continue
			}
			for _, src := range n.Ranks.Ranks() {
				dst, ok := resolve(n.Ev.Dest, src, f.P)
				if !ok {
					m.Unresolved += mult
					continue
				}
				m.add(src, dst, mult, mult*uint64(n.Ev.Bytes))
			}
		}
	}
	walk(f.Nodes, 1)
	return m
}

func (m *CommMatrix) add(src, dst int, count, bytes uint64) {
	if m.Counts[src] == nil {
		m.Counts[src] = map[int]uint64{}
		m.Bytes[src] = map[int]uint64{}
	}
	m.Counts[src][dst] += count
	m.Bytes[src][dst] += bytes
}

func resolve(e trace.Endpoint, self, p int) (int, bool) {
	r, ok := e.Resolve(self)
	if !ok {
		return 0, false
	}
	return ((r % p) + p) % p, true
}

// TotalMessages sums the matrix.
func (m *CommMatrix) TotalMessages() uint64 {
	var total uint64
	for _, row := range m.Counts {
		for _, c := range row {
			total += c
		}
	}
	return total
}

// Diff compares two traces of the same run: call-site coverage and
// per-rank dynamic event counts. Empty results mean the traces are
// equivalent by these measures — the Chameleon-vs-ScalaTrace check.
type Diff struct {
	// MissingSites lists call sites present in A but not B (and vice
	// versa).
	MissingInB []uint64
	MissingInA []uint64
	// EventDeltas maps rank -> (eventsA - eventsB) for ranks that
	// disagree.
	EventDeltas map[int]int64
	// SiteCountDeltas maps call site -> (dynamic events in A - in B),
	// summed over all ranks, for sites whose counts disagree. This
	// catches traces that shift events between call sites while keeping
	// the site sets and per-rank totals identical.
	SiteCountDeltas map[uint64]int64
}

// Equivalent reports whether the diff is empty.
func (d *Diff) Equivalent() bool {
	return len(d.MissingInA) == 0 && len(d.MissingInB) == 0 &&
		len(d.EventDeltas) == 0 && len(d.SiteCountDeltas) == 0
}

// Reason summarizes the first divergence in one line ("" when
// equivalent), for tools that need a non-zero exit with a cause.
func (d *Diff) Reason() string {
	switch {
	case len(d.MissingInB) > 0:
		return fmt.Sprintf("%d call sites present only in the first trace", len(d.MissingInB))
	case len(d.MissingInA) > 0:
		return fmt.Sprintf("%d call sites present only in the second trace", len(d.MissingInA))
	case len(d.EventDeltas) > 0:
		ranks := make([]int, 0, len(d.EventDeltas))
		for r := range d.EventDeltas {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		return fmt.Sprintf("%d ranks differ in dynamic event count (first: rank %d, %+d events)",
			len(d.EventDeltas), ranks[0], d.EventDeltas[ranks[0]])
	case len(d.SiteCountDeltas) > 0:
		sites := make([]uint64, 0, len(d.SiteCountDeltas))
		for s := range d.SiteCountDeltas {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		return fmt.Sprintf("%d call sites differ in dynamic event count (first: site %#x, %+d events)",
			len(d.SiteCountDeltas), sites[0], d.SiteCountDeltas[sites[0]])
	}
	return ""
}

// CompareOpts tunes a trace comparison.
type CompareOpts struct {
	// TolerateRanks lists ranks whose contribution is excluded from both
	// sides of the diff — the retired (crashed) ranks, so a trace from a
	// faulted run can diff clean against a full fault-free baseline.
	TolerateRanks []int
}

// Compare diffs two trace files.
func Compare(a, b *trace.File) *Diff {
	return CompareWith(a, b, CompareOpts{})
}

// CompareWith diffs two trace files under explicit options.
func CompareWith(a, b *trace.File, opts CompareOpts) *Diff {
	tol := make(map[int]bool, len(opts.TolerateRanks))
	for _, r := range opts.TolerateRanks {
		tol[r] = true
	}
	d := &Diff{EventDeltas: map[int]int64{}, SiteCountDeltas: map[uint64]int64{}}
	sa, sb := stacksWith(a.Nodes, tol), stacksWith(b.Nodes, tol)
	for s := range sa {
		if _, ok := sb[s]; !ok {
			d.MissingInB = append(d.MissingInB, s)
		}
	}
	for s := range sb {
		if _, ok := sa[s]; !ok {
			d.MissingInA = append(d.MissingInA, s)
		}
	}
	p := a.P
	if b.P > p {
		p = b.P
	}
	for r := 0; r < p; r++ {
		if tol[r] {
			continue
		}
		ea, eb := eventsForRank(a.Nodes, r), eventsForRank(b.Nodes, r)
		if ea != eb {
			d.EventDeltas[r] = int64(ea) - int64(eb)
		}
	}
	ca, cb := siteCounts(a.Nodes, tol), siteCounts(b.Nodes, tol)
	for s, na := range ca {
		if nb := cb[s]; na != nb {
			d.SiteCountDeltas[s] = int64(na) - int64(nb)
		}
	}
	for s, nb := range cb {
		if _, ok := ca[s]; !ok && nb != 0 {
			d.SiteCountDeltas[s] = -int64(nb)
		}
	}
	sort.Slice(d.MissingInA, func(i, j int) bool { return d.MissingInA[i] < d.MissingInA[j] })
	sort.Slice(d.MissingInB, func(i, j int) bool { return d.MissingInB[i] < d.MissingInB[j] })
	return d
}

// survivingSize counts a leaf's rank-list members outside the tolerated
// set.
func survivingSize(n *trace.Node, tol map[int]bool) int {
	if len(tol) == 0 {
		return n.Ranks.Size()
	}
	count := 0
	for _, r := range n.Ranks.Ranks() {
		if !tol[r] {
			count++
		}
	}
	return count
}

// stacksWith collects the call sites covered by at least one
// non-tolerated rank.
func stacksWith(seq []*trace.Node, tol map[int]bool) map[uint64]struct{} {
	out := map[uint64]struct{}{}
	if len(tol) == 0 {
		trace.CollectStacks(seq, out)
		return out
	}
	var walk func(seq []*trace.Node)
	walk = func(seq []*trace.Node) {
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body)
			} else if survivingSize(n, tol) > 0 {
				out[uint64(n.Ev.Stack)] = struct{}{}
			}
		}
	}
	walk(seq)
	return out
}

// siteCounts tallies dynamic events per call site across all
// non-tolerated ranks.
func siteCounts(seq []*trace.Node, tol map[int]bool) map[uint64]uint64 {
	out := map[uint64]uint64{}
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		if mult == 0 {
			return // zero-trip loops contribute no events, and a
			// zero-count entry would poison the count diff
		}
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
			} else {
				out[uint64(n.Ev.Stack)] += mult * uint64(survivingSize(n, tol))
			}
		}
	}
	walk(seq, 1)
	return out
}

func eventsForRank(seq []*trace.Node, rank int) uint64 {
	var total uint64
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
			} else if n.Ranks.Contains(rank) {
				total += mult
			}
		}
	}
	walk(seq, 1)
	return total
}

// CriticalPath estimates the trace's serial lower bound: the maximum
// over ranks of (compute deltas + per-event message latency), a cheap
// replay-free makespan estimate.
func CriticalPath(f *trace.File, alphaNs int64) int64 {
	var worst int64
	for r := 0; r < f.P; r++ {
		var total int64
		var walk func(seq []*trace.Node, mult uint64)
		walk = func(seq []*trace.Node, mult uint64) {
			for _, n := range seq {
				if n.IsLoop() {
					walk(n.Body, mult*n.MeanIters())
					continue
				}
				if !n.Ranks.Contains(r) {
					continue
				}
				if n.Delta != nil {
					total += int64(mult) * n.Delta.Mean()
				}
				total += int64(mult) * alphaNs
			}
		}
		walk(f.Nodes, 1)
		if total > worst {
			worst = total
		}
	}
	return worst
}
