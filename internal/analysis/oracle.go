package analysis

import (
	"fmt"
	"strings"

	"chameleon/internal/replay"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
	"chameleon/internal/zan"
)

// OracleTol is the relative tolerance CrossCheck grants float-valued
// metrics. Integer-valued metrics (event counts, nanosecond sums, match
// counters) must be bit-identical between the closed-form walk and the
// expansion oracle; only the pooled delta moments (mean/std via
// stats.MergeScaled) and the derived ratios may drift by float
// round-off.
const OracleTol = 1e-9

// ExpandedStats is the replay-flavored reference for the
// compressed-domain engine: it runs zan in expansion mode, applying
// every leaf contribution once per dynamic occurrence instead of
// multiplying by loop trip counts. Linear in dynamic events — use it to
// validate, not to analyze.
func ExpandedStats(f *trace.File, model vtime.CostModel) (*zan.Report, error) {
	return zan.Analyze(f, zan.Options{Model: model, Expand: true})
}

// CrossCheck proves a trace's closed-form report against two
// independent references: the expansion oracle (field-by-field via
// zan.Diff) and the event replayer (dynamic event count). It returns
// the closed-form report on success and an error describing the first
// divergences otherwise.
func CrossCheck(f *trace.File, model vtime.CostModel) (*zan.Report, error) {
	fast, err := zan.Analyze(f, zan.Options{Model: model})
	if err != nil {
		return nil, err
	}
	slow, err := ExpandedStats(f, model)
	if err != nil {
		return nil, err
	}
	if diffs := zan.Diff(fast, slow, OracleTol); len(diffs) > 0 {
		if len(diffs) > 8 {
			diffs = append(diffs[:8], fmt.Sprintf("... and %d more", len(diffs)-8))
		}
		return nil, fmt.Errorf("analysis: closed-form walk diverges from expansion oracle:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	if len(f.Nodes) == 0 {
		return fast, nil // replay rejects empty traces; nothing to count
	}
	if len(f.Retired) > 0 {
		// A crash trace is generally not replayable: surviving ranks
		// whose point-to-point partner departed would wait forever (the
		// documented replay limit, docs/FAULTS.md). The expansion oracle
		// above still validated every metric field by field.
		return fast, nil
	}
	res, err := replay.Run(f, model)
	if err != nil {
		return nil, fmt.Errorf("analysis: replay oracle failed: %w", err)
	}
	if fast.Events != res.Events {
		return nil, fmt.Errorf("analysis: compressed-domain event count %d != replayed %d",
			fast.Events, res.Events)
	}
	return fast, nil
}
