package analysis

import (
	"math"
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
)

func mkFile(p int) *trace.File {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	ranks := ranklist.FromRanks(all)
	send := trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(1)), Dest: trace.Relative(1), Tag: 1, Bytes: 100}
	recv := trace.Event{Op: mpi.OpRecv, Stack: sig.Stack(sig.Mix(2)), Src: trace.Relative(-1), Tag: 1, Bytes: 100}
	coll := trace.Event{Op: mpi.OpAllreduce, Stack: sig.Stack(sig.Mix(3)), Bytes: 8}
	return &trace.File{
		P: p,
		Nodes: []*trace.Node{
			trace.NewLoop(10, []*trace.Node{
				trace.NewLeaf(send, ranks, 1000),
				trace.NewLeaf(recv, ranks, 0),
			}),
			trace.NewLeaf(coll, ranks, 500),
		},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(mkFile(4))
	if s.P != 4 || s.Leaves != 3 || s.DistinctSites != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.DynamicEvents != 10*2+1 {
		t.Fatalf("events = %d", s.DynamicEvents)
	}
	if s.MaxLoopDepth != 1 {
		t.Fatalf("depth = %d", s.MaxLoopDepth)
	}
	if s.CompressionRatio != 7 {
		t.Fatalf("ratio = %v", s.CompressionRatio)
	}
	if s.OpCounts["Send"] != 10 || s.OpCounts["Allreduce"] != 1 {
		t.Fatalf("op counts: %v", s.OpCounts)
	}
	if s.String() == "" {
		t.Fatalf("empty render")
	}
}

func TestVolumes(t *testing.T) {
	vols := Volumes(mkFile(4))
	if len(vols) != 4 {
		t.Fatalf("volumes = %d", len(vols))
	}
	for _, v := range vols {
		if v.SendEvents != 10 || v.SendBytes != 1000 || v.RecvEvents != 10 || v.CollEvents != 1 {
			t.Fatalf("rank %d: %+v", v.Rank, v)
		}
	}
}

func TestMatrix(t *testing.T) {
	m := Matrix(mkFile(4))
	// Ring: each rank sends 10 messages to rank+1 mod 4.
	if m.TotalMessages() != 40 {
		t.Fatalf("total = %d", m.TotalMessages())
	}
	if m.Counts[0][1] != 10 || m.Counts[3][0] != 10 {
		t.Fatalf("counts: %v", m.Counts)
	}
	if m.Bytes[0][1] != 1000 {
		t.Fatalf("bytes: %v", m.Bytes)
	}
	if m.Unresolved != 0 {
		t.Fatalf("unresolved = %d", m.Unresolved)
	}
}

func TestMatrixUnresolved(t *testing.T) {
	reply := trace.Event{Op: mpi.OpSend, Stack: 9, Dest: trace.Endpoint{Kind: trace.EPReplyToLast}, Bytes: 8}
	f := &trace.File{P: 2, Nodes: []*trace.Node{trace.NewLeaf(reply, ranklist.SingleRank(0), 0)}}
	m := Matrix(f)
	if m.Unresolved != 1 || m.TotalMessages() != 0 {
		t.Fatalf("unresolved = %d total = %d", m.Unresolved, m.TotalMessages())
	}
}

func TestCompareEquivalent(t *testing.T) {
	d := Compare(mkFile(4), mkFile(4))
	if !d.Equivalent() {
		t.Fatalf("identical traces differ: %+v", d)
	}
}

func TestCompareFindsDifferences(t *testing.T) {
	a, b := mkFile(4), mkFile(4)
	// Remove the collective from b.
	b.Nodes = b.Nodes[:1]
	d := Compare(a, b)
	if d.Equivalent() {
		t.Fatalf("diff missed a dropped site")
	}
	if len(d.MissingInB) != 1 || len(d.MissingInA) != 0 {
		t.Fatalf("missing: %v / %v", d.MissingInA, d.MissingInB)
	}
	if len(d.EventDeltas) != 4 {
		t.Fatalf("event deltas: %v", d.EventDeltas)
	}
	if d.EventDeltas[0] != 1 {
		t.Fatalf("delta = %d", d.EventDeltas[0])
	}
}

func TestCriticalPath(t *testing.T) {
	got := CriticalPath(mkFile(4), 1000)
	// Per rank: 10*(1000 delta + 1000 alpha) + 10*1000 alpha (recv) +
	// (500 delta + 1000 alpha) for the collective.
	want := int64(10*2000 + 10*1000 + 1500)
	if got != want {
		t.Fatalf("critical path = %d, want %d", got, want)
	}
}

func TestCompareSiteCountShift(t *testing.T) {
	// Same sites, same per-rank totals: b runs the send site 11 times and
	// the recv site 9 times where a runs each 10 times. Before per-site
	// counting this diffed as equivalent.
	a, b := mkFile(4), mkFile(4)
	loop := b.Nodes[0]
	send, recv := loop.Body[0], loop.Body[1]
	b.Nodes = []*trace.Node{
		trace.NewLoop(9, []*trace.Node{send, recv}),
		trace.NewLeaf(send.Ev, send.Ranks, 1000),
		trace.NewLeaf(send.Ev, send.Ranks, 1000),
		b.Nodes[1],
	}
	d := Compare(a, b)
	if d.Equivalent() {
		t.Fatalf("diff missed a per-site count shift")
	}
	if len(d.EventDeltas) != 0 {
		t.Fatalf("per-rank totals should agree: %v", d.EventDeltas)
	}
	if len(d.SiteCountDeltas) != 2 {
		t.Fatalf("site deltas: %v", d.SiteCountDeltas)
	}
	sendSite, recvSite := uint64(send.Ev.Stack), uint64(recv.Ev.Stack)
	if d.SiteCountDeltas[sendSite] != -4 || d.SiteCountDeltas[recvSite] != 4 {
		t.Fatalf("site deltas: %v", d.SiteCountDeltas)
	}
	if d.Reason() == "" {
		t.Fatalf("divergent diff has empty reason")
	}
}

func TestDiffReason(t *testing.T) {
	if r := Compare(mkFile(4), mkFile(4)).Reason(); r != "" {
		t.Fatalf("equivalent diff has reason %q", r)
	}
	a, b := mkFile(4), mkFile(4)
	b.Nodes = b.Nodes[:1]
	d := Compare(a, b)
	if r := d.Reason(); r == "" {
		t.Fatalf("missing-site diff has empty reason")
	}
}

// stripRank clones a node sequence with one rank removed from every
// leaf's rank list, dropping leaves left with no members — the shape of
// a trace whose rank crash-stopped before recording anything.
func stripRank(seq []*trace.Node, rank int) []*trace.Node {
	var out []*trace.Node
	for _, n := range seq {
		if n.IsLoop() {
			out = append(out, trace.NewLoop(n.Iters, stripRank(n.Body, rank)))
			continue
		}
		var keep []int
		for _, r := range n.Ranks.Ranks() {
			if r != rank {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			continue
		}
		out = append(out, trace.NewLeaf(n.Ev, ranklist.FromRanks(keep), 0))
	}
	return out
}

func TestCompareWithTolerateRanks(t *testing.T) {
	full := mkFile(4)
	faulted := mkFile(4)
	faulted.Nodes = stripRank(faulted.Nodes, 2)
	faulted.Retired = []int{2}
	// A site covered only by the retired rank: present in full, gone
	// entirely from faulted.
	solo := trace.Event{Op: mpi.OpBarrier, Stack: sig.Stack(sig.Mix(4))}
	full.Nodes = append(full.Nodes, trace.NewLeaf(solo, ranklist.SingleRank(2), 0))

	if Compare(full, faulted).Equivalent() {
		t.Fatalf("plain compare must see the missing rank")
	}
	d := CompareWith(full, faulted, CompareOpts{TolerateRanks: []int{2}})
	if !d.Equivalent() {
		t.Fatalf("tolerated compare diverges: %s", d.Reason())
	}

	// Tolerance must not mask divergence among the surviving ranks.
	broken := mkFile(4)
	broken.Nodes = stripRank(broken.Nodes, 2)
	broken.Nodes = broken.Nodes[:1] // drop the survivors' collective too
	d = CompareWith(full, broken, CompareOpts{TolerateRanks: []int{2}})
	if d.Equivalent() {
		t.Fatalf("tolerated compare missed a survivor divergence")
	}
}

func TestCompareWithEmptyOptsMatchesCompare(t *testing.T) {
	a, b := mkFile(4), mkFile(4)
	b.Nodes = b.Nodes[:1]
	plain, opted := Compare(a, b), CompareWith(a, b, CompareOpts{})
	if plain.Reason() != opted.Reason() {
		t.Fatalf("CompareWith{} diverges from Compare: %q vs %q", plain.Reason(), opted.Reason())
	}
	if len(plain.EventDeltas) != len(opted.EventDeltas) || len(plain.SiteCountDeltas) != len(opted.SiteCountDeltas) {
		t.Fatalf("CompareWith{} deltas differ from Compare")
	}
}

// TestZeroIterationLoopMetrics pins the empty-window guards: a trace
// whose only loop never trips must produce clean zeros everywhere — no
// NaN, no Inf, no phantom zero-count map entries.
func TestZeroIterationLoopMetrics(t *testing.T) {
	dead := trace.NewLeaf(
		trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(77)), Dest: trace.Relative(1), Bytes: 64},
		ranklist.FromRanks([]int{0, 1}), 100)
	f := &trace.File{P: 2, Nodes: []*trace.Node{trace.NewLoop(0, []*trace.Node{dead})}}

	s := Summarize(f)
	if s.DynamicEvents != 0 || s.CompressionRatio != 0 {
		t.Errorf("summary: events=%d ratio=%g, want zeros", s.DynamicEvents, s.CompressionRatio)
	}
	if len(s.OpCounts) != 0 {
		t.Errorf("summary leaked zero-count ops: %v", s.OpCounts)
	}

	for _, v := range Volumes(f) {
		if v.SendEvents != 0 || v.SendBytes != 0 {
			t.Errorf("volumes leaked from zero-trip loop: %+v", v)
		}
	}

	m := Matrix(f)
	if m.TotalMessages() != 0 || m.Unresolved != 0 || len(m.Counts) != 0 {
		t.Errorf("matrix leaked from zero-trip loop: %+v", m)
	}

	if cp := CriticalPath(f, 1000); cp != 0 {
		t.Errorf("critical path = %d, want 0", cp)
	}

	// Site *presence* is structural (the call exists in the program even
	// if its loop never trips), but the count diff must not record
	// phantom zero-valued deltas for it.
	empty := &trace.File{P: 2}
	if d := Compare(f, empty); len(d.SiteCountDeltas) != 0 || len(d.EventDeltas) != 0 {
		t.Errorf("zero-trip loop produced phantom count deltas: %+v", d)
	}
}

// TestEmptyTraceMetrics covers the degenerate no-node trace.
func TestEmptyTraceMetrics(t *testing.T) {
	f := &trace.File{P: 3}
	s := Summarize(f)
	if s.CompressionRatio != 0 || s.DynamicEvents != 0 || s.Leaves != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if got := len(Volumes(f)); got != 3 {
		t.Errorf("Volumes length = %d, want 3", got)
	}
	if m := Matrix(f); m.TotalMessages() != 0 {
		t.Errorf("empty matrix has messages")
	}
}

// TestRatioGuards pins the shared denominator guard.
func TestRatioGuards(t *testing.T) {
	cases := []struct{ num, den, want float64 }{
		{1, 0, 0},
		{0, 0, 0},
		{1, math.NaN(), 0},
		{1, math.Inf(1), 0},
		{6, 3, 2},
	}
	for _, c := range cases {
		if got := Ratio(c.num, c.den); got != c.want {
			t.Errorf("Ratio(%g, %g) = %g, want %g", c.num, c.den, got, c.want)
		}
	}
}
