package store

// Causal-edge sidecars: a run's causal edge stream (the JSONL format
// WriteEdges produces) can be attached to its archived trace, so the
// idle-wave detector runs server-side against the archive instead of
// requiring the original -edges-out file. Sidecars live next to the
// segments in the run's tenant tree:
//
//	edges/ab/abcd....jsonl             default tenant
//	tenants/<t>/edges/ab/abcd....jsonl everyone else
//
// A sidecar is plain data about a run, not part of its identity — the
// content address still covers only the canonical trace payload, and
// re-pushing edges simply replaces the sidecar. Orphaned sidecars
// (their run deleted) are reclaimed by Compact alongside orphaned
// segments.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"chameleon/internal/obs"
	"chameleon/internal/wave"
)

func (a *Archive) edgesPath(tenant, id string) string {
	return filepath.Join(a.tenantRoot(tenant), "edges", id[:2], id+".jsonl")
}

// hasEdges reports whether a sidecar exists for the (full) run ID.
func (a *Archive) hasEdges(tenant, id string) bool {
	_, err := os.Stat(a.edgesPath(tenant, id))
	return err == nil
}

// PutEdges attaches a causal edge stream (JSONL bytes) to an archived
// default-tenant run, replacing any previous sidecar. The payload must
// parse; the number of edges is returned. The run may be named by
// unique prefix.
func (a *Archive) PutEdges(id string, jsonl []byte) (int, Run, error) {
	return a.Tenant(DefaultTenant).PutEdges(id, jsonl)
}

func (a *Archive) putEdges(tenant, id string, jsonl []byte) (int, Run, error) {
	run, err := a.resolve(tenant, id)
	if err != nil {
		return 0, Run{}, err
	}
	edges, err := obs.ReadEdges(bytes.NewReader(jsonl))
	if err != nil {
		return 0, Run{}, fmt.Errorf("store: edges for %s: %w", run.ID[:12], err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	path := a.edgesPath(tenant, run.ID)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(a.dir, "tmp"), "edges-*")
	if err != nil {
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(jsonl); err != nil {
		tmp.Close()
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	return len(edges), run, nil
}

// EdgesPayload returns a default-tenant run's stored edge stream
// verbatim.
func (a *Archive) EdgesPayload(id string) ([]byte, Run, error) {
	return a.Tenant(DefaultTenant).EdgesPayload(id)
}

func (a *Archive) edgesPayload(tenant, id string) ([]byte, Run, error) {
	run, err := a.resolve(tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	b, err := os.ReadFile(a.edgesPath(tenant, run.ID))
	if os.IsNotExist(err) {
		return nil, Run{}, fmt.Errorf("store: edge sidecar for run %s not found", run.ID[:12])
	}
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	return b, run, nil
}

// Edges decodes a default-tenant run's edge sidecar.
func (a *Archive) Edges(id string) ([]obs.Edge, Run, error) {
	return a.Tenant(DefaultTenant).Edges(id)
}

func (a *Archive) edges(tenant, id string) ([]obs.Edge, Run, error) {
	b, run, err := a.edgesPayload(tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	edges, err := obs.ReadEdges(bytes.NewReader(b))
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: edges for %s: %w", run.ID[:12], err)
	}
	return edges, run, nil
}

// Waves runs the idle-wave detector over a default-tenant run's edge
// sidecar. A positive cols interprets ranks as a row-major cols-wide
// grid (Manhattan rank distance) instead of a 1-D chain.
func (a *Archive) Waves(id string, cols int) (*wave.Report, Run, error) {
	return a.Tenant(DefaultTenant).Waves(id, cols)
}

func (a *Archive) waves(tenant, id string, cols int) (*wave.Report, Run, error) {
	edges, run, err := a.edges(tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	rep, err := wave.Detect(edges, wave.Options{P: run.P, Cols: cols, Reg: a.opts.Reg})
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: waves for %s: %w", run.ID[:12], err)
	}
	return rep, run, nil
}
