package store

// Causal-edge sidecars: a run's causal edge stream (the JSONL format
// WriteEdges produces) can be attached to its archived trace, so the
// idle-wave detector runs server-side against the archive instead of
// requiring the original -edges-out file. Sidecars live next to the
// segments:
//
//	edges/ab/abcd....jsonl   edge stream keyed by the run's content address
//
// A sidecar is plain data about a run, not part of its identity — the
// content address still covers only the canonical trace payload, and
// re-pushing edges simply replaces the sidecar. Orphaned sidecars
// (their run deleted) are reclaimed by Compact alongside orphaned
// segments.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chameleon/internal/obs"
	"chameleon/internal/wave"
)

func (a *Archive) edgesPath(id string) string {
	return filepath.Join(a.dir, "edges", id[:2], id+".jsonl")
}

// PutEdges attaches a causal edge stream (JSONL bytes) to an archived
// run, replacing any previous sidecar. The payload must parse; the
// number of edges is returned. The run may be named by unique prefix.
func (a *Archive) PutEdges(id string, jsonl []byte) (int, Run, error) {
	run, err := a.Resolve(id)
	if err != nil {
		return 0, Run{}, err
	}
	edges, err := obs.ReadEdges(bytes.NewReader(jsonl))
	if err != nil {
		return 0, Run{}, fmt.Errorf("store: edges for %s: %w", run.ID[:12], err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	path := a.edgesPath(run.ID)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(a.dir, "tmp"), "edges-*")
	if err != nil {
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(jsonl); err != nil {
		tmp.Close()
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	return len(edges), run, nil
}

// EdgesPayload returns a run's stored edge stream verbatim.
func (a *Archive) EdgesPayload(id string) ([]byte, Run, error) {
	run, err := a.Resolve(id)
	if err != nil {
		return nil, Run{}, err
	}
	b, err := os.ReadFile(a.edgesPath(run.ID))
	if os.IsNotExist(err) {
		return nil, Run{}, fmt.Errorf("store: edge sidecar for run %s not found", run.ID[:12])
	}
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: edges: %w", err)
	}
	return b, run, nil
}

// Edges decodes a run's edge sidecar.
func (a *Archive) Edges(id string) ([]obs.Edge, Run, error) {
	b, run, err := a.EdgesPayload(id)
	if err != nil {
		return nil, Run{}, err
	}
	edges, err := obs.ReadEdges(bytes.NewReader(b))
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: edges for %s: %w", run.ID[:12], err)
	}
	return edges, run, nil
}

// Waves runs the idle-wave detector over a run's edge sidecar. A
// positive cols interprets ranks as a row-major cols-wide grid
// (Manhattan rank distance) instead of a 1-D chain.
func (a *Archive) Waves(id string, cols int) (*wave.Report, Run, error) {
	edges, run, err := a.Edges(id)
	if err != nil {
		return nil, Run{}, err
	}
	rep, err := wave.Detect(edges, wave.Options{P: run.P, Cols: cols, Reg: a.opts.Reg})
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: waves for %s: %w", run.ID[:12], err)
	}
	return rep, run, nil
}

// compactEdgesLocked removes edge sidecars whose run the manifest no
// longer references. Callers hold a.mu.
func (a *Archive) compactEdgesLocked() (removed int, firstErr error) {
	root := filepath.Join(a.dir, "edges")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, sub := range entries {
		if !sub.IsDir() {
			continue
		}
		subPath := filepath.Join(root, sub.Name())
		files, err := os.ReadDir(subPath)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, f := range files {
			id := strings.TrimSuffix(f.Name(), ".jsonl")
			if _, live := a.runs[id]; live {
				continue
			}
			if err := os.Remove(filepath.Join(subPath, f.Name())); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			removed++
		}
		os.Remove(subPath) // best-effort fan-out cleanup
	}
	return removed, firstErr
}
