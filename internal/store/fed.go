package store

// Federation glue: the pieces that connect one Archive to the mesh.
//
//   - archiveTarget adapts the Archive to mesh.Target so the
//     anti-entropy sweep can enumerate, check, and pull runs.
//   - FedLookup resolves a continuous query's golden run: locally
//     first, then from the run's owners across the mesh.
//   - BroadcastCQEvents pushes locally-emitted CQ events to every
//     other peer so a long-poll watcher on any peer sees them.
//   - rateLimiter is the per-tenant token bucket the HTTP edge
//     enforces (429 + Retry-After on breach). Intra-mesh traffic
//     bypasses it: fan-out writes and repair pulls are the system
//     talking to itself, and throttling them would amplify client
//     load R-fold.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"chameleon/internal/cq"
	"chameleon/internal/mesh"
	"chameleon/internal/trace"
)

// archiveTarget adapts an Archive to the mesh.Target surface.
type archiveTarget struct{ a *Archive }

// MeshTarget returns the archive's anti-entropy surface.
func (a *Archive) MeshTarget() mesh.Target { return archiveTarget{a} }

func (t archiveTarget) Entries() []mesh.Entry {
	t.a.mu.Lock()
	defer t.a.mu.Unlock()
	out := make([]mesh.Entry, 0, 64)
	for tenant, runs := range t.a.runs {
		for id := range runs {
			out = append(out, mesh.Entry{Tenant: tenant, ID: id, Edges: t.a.hasEdges(tenant, id)})
		}
	}
	return out
}

func (t archiveTarget) Have(tenant, id string) bool {
	t.a.mu.Lock()
	defer t.a.mu.Unlock()
	_, ok := t.a.runs[tenant][id]
	return ok
}

func (t archiveTarget) Pull(tenant string, payload []byte) error {
	tenant, err := NormalizeTenant(tenant)
	if err != nil {
		return err
	}
	_, _, err = t.a.Tenant(tenant).IngestBytes(payload)
	return err
}

func (t archiveTarget) HaveEdges(tenant, id string) bool {
	return t.a.hasEdges(tenant, id)
}

func (t archiveTarget) PullEdges(tenant, id string, jsonl []byte) error {
	tenant, err := NormalizeTenant(tenant)
	if err != nil {
		return err
	}
	_, _, err = t.a.Tenant(tenant).PutEdges(id, jsonl)
	return err
}

// FedLookup builds the cq.Lookup a federated engine uses to resolve
// golden runs — and the diff endpoint uses to resolve either side: the
// local archive first, then the run's owner peers (node nil means
// local-only). A run fetched from a peer is decoded but not ingested —
// resolution must not mutate placement.
func FedLookup(a *Archive, node *mesh.Node) cq.Lookup {
	return func(tenant, id string) (*trace.File, string, error) {
		f, run, err := a.Tenant(tenant).Get(id)
		if err == nil {
			return f, run.ID, nil
		}
		if node == nil {
			return nil, "", err
		}
		var lastErr error
		for _, peer := range ownersThenRest(node, id) {
			resp, err := node.Do(http.MethodGet, peer, "/runs/"+id, tenant, mesh.ForwardRepair, "", nil)
			if err != nil {
				lastErr = err
				continue
			}
			body, err := readOK(resp)
			if err != nil {
				lastErr = err
				continue
			}
			f, err := trace.ReadAny(bytes.NewReader(body))
			if err != nil {
				return nil, "", fmt.Errorf("store: run %s from %s: %w", id, peer, err)
			}
			_, cid, err := Encode(f)
			if err != nil {
				return nil, "", err
			}
			return f, cid, nil
		}
		if lastErr != nil {
			return nil, "", fmt.Errorf("store: run %s not found on any peer: %w", id, lastErr)
		}
		return nil, "", fmt.Errorf("store: run %q not found", id)
	}
}

// ownersThenRest orders peers for a read: the run's owners first
// (minus self), then every other peer — a run ingested as a fallback
// replica while its owner was down lives off-ring until anti-entropy
// converges, so misses must scatter wide, not give up at R peers.
func ownersThenRest(node *mesh.Node, id string) []string {
	seen := map[string]bool{node.Self(): true}
	out := make([]string, 0, len(node.Peers()))
	for _, p := range node.Owners(id) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range node.Others() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func readOK(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s", resp.Status)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BroadcastCQEvents returns an engine OnEvent hook that forwards each
// locally-emitted event to every other peer (POST /cq/events, fanout
// header), so a watcher long-polling any peer's feed sees gates fired
// anywhere in the mesh. Delivery is best-effort: the feed is
// observability, not a ledger, and receivers dedup by event ID. Peers
// are contacted concurrently on the short-timeout broadcast client, so
// a partitioned peer delays the ingest that fired the gate by at most
// the broadcast timeout, never the full request budget.
func BroadcastCQEvents(node *mesh.Node) func(cq.Event) {
	if node == nil {
		return nil
	}
	return func(ev cq.Event) {
		body, err := json.Marshal(ev)
		if err != nil {
			return
		}
		broadcast(node, func(peer string) (*http.Response, error) {
			return node.Broadcast(http.MethodPost, peer, "/cq/events", ev.Tenant, mesh.ForwardFanout,
				"application/json", bytes.NewReader(body))
		})
	}
}

// broadcast runs one best-effort call against every other peer
// concurrently and waits for all of them (each bounded by the node's
// broadcast timeout). Failures are dropped — anti-entropy re-syncs.
func broadcast(node *mesh.Node, call func(peer string) (*http.Response, error)) {
	var wg sync.WaitGroup
	for _, peer := range node.Others() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if resp, err := call(peer); err == nil {
				resp.Body.Close()
			}
		}(peer)
	}
	wg.Wait()
}

// rateLimiter is a per-tenant token bucket. The zero rate disables
// limiting.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*tokenBucket), now: time.Now}
}

// allow spends one token from the tenant's bucket. When the bucket is
// dry it returns false and how long until a token accrues (the
// Retry-After value).
func (rl *rateLimiter) allow(tenant string) (bool, time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	b.last = now
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
