package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chameleon/internal/obs"
)

func newTestServer(t *testing.T, archOpts Options, srvOpts ServerOptions) (*Archive, *httptest.Server) {
	t.Helper()
	a, err := Open(t.TempDir(), archOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(a, srvOpts))
	t.Cleanup(func() { srv.Close(); a.Close() })
	return a, srv
}

func putTrace(t *testing.T, url string, payload []byte, gzipBody bool) (*http.Response, Run) {
	t.Helper()
	body := payload
	if gzipBody {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		body = buf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPut, url+"/runs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if gzipBody {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var run Run
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
			t.Fatal(err)
		}
	}
	return resp, run
}

func TestPutIdempotent(t *testing.T) {
	_, srv := newTestServer(t, Options{}, ServerOptions{})
	payload, id, err := Encode(mkTrace(8, "PHASE", 1))
	if err != nil {
		t.Fatal(err)
	}

	resp1, run1 := putTrace(t, srv.URL, payload, false)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("first PUT: %s, want 201", resp1.Status)
	}
	if run1.ID != id {
		t.Fatalf("server content address %s, client computed %s", run1.ID, id)
	}
	if etag := resp1.Header.Get("ETag"); etag != `"`+id+`"` {
		t.Fatalf("ETag %q, want content address", etag)
	}

	resp2, run2 := putTrace(t, srv.URL, payload, false)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate PUT: %s, want 200 (dedup)", resp2.Status)
	}
	if run2.ID != run1.ID {
		t.Fatal("dedup PUT returned a different run")
	}
}

func TestGetBinaryJSONAndCache(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	f := mkTrace(8, "PHASE", 2)
	payload, id, _ := Encode(f)
	if _, _, err := a.Ingest(f); err != nil {
		t.Fatal(err)
	}

	// Binary fetch is byte-identical to the canonical payload.
	resp, err := http.Get(srv.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("binary GET: %s, %d bytes (want %d)", resp.Status, len(got), len(payload))
	}
	if resp.Header.Get("X-Raw-Bytes") == "" {
		t.Fatal("missing X-Raw-Bytes counter header")
	}

	// Prefix resolution over HTTP.
	resp, err = http.Get(srv.URL + "/runs/" + id[:12])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefix GET: %s", resp.Status)
	}

	// JSON rendering decodes as a trace file.
	resp, err = http.Get(srv.URL + "/runs/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var js map[string]any
	err = json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()
	if err != nil || js["p"] != float64(8) {
		t.Fatalf("JSON GET: err=%v p=%v", err, js["p"])
	}

	// Conditional fetch via ETag.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/runs/"+id, nil)
	req.Header.Set("If-None-Match", `"`+id+`"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %s, want 304", resp.Status)
	}

	// Unknown run.
	resp, err = http.Get(srv.URL + "/runs/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing run GET: %s, want 404", resp.Status)
	}
}

func TestGzipTransferEndToEnd(t *testing.T) {
	// Archive stores gzip segments; PUT arrives gzip; GET streams the
	// stored frame as Content-Encoding: gzip without recompressing.
	_, srv := newTestServer(t, Options{Gzip: true}, ServerOptions{})
	payload, id, _ := Encode(mkWideTrace(16, "STENCIL", 3))

	resp, run := putTrace(t, srv.URL, payload, true)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gzip PUT: %s", resp.Status)
	}
	if !run.Gzip || run.StoredBytes >= run.RawBytes {
		t.Fatalf("segment should be stored compressed: stored=%d raw=%d", run.StoredBytes, run.RawBytes)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/runs/"+id, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp2, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", resp2.Header.Get("Content-Encoding"))
	}
	wire, _ := io.ReadAll(resp2.Body)
	if int64(len(wire)) != run.StoredBytes {
		t.Fatalf("wire bytes %d != stored segment bytes %d (should stream the stored frame)", len(wire), run.StoredBytes)
	}
	zr, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, payload) {
		t.Fatal("gzip transfer lost bytes")
	}

	// The client helper sees both byte counts.
	fTrace, stats, err := LoadTraceStats(srv.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if fTrace.P != 16 || stats == nil || !stats.Gzip ||
		stats.WireBytes != run.StoredBytes || stats.RawBytes != run.RawBytes {
		t.Fatalf("LoadTraceStats: P=%d stats=%+v", fTrace.P, stats)
	}
}

func TestListEndpoint(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	for i := uint64(0); i < 3; i++ {
		if _, _, err := a.Ingest(mkTrace(8, "PHASE", 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.Ingest(mkTrace(4, "LU", 20)); err != nil {
		t.Fatal(err)
	}

	get := func(query string) (int, []Run) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /runs%s: %s", query, resp.Status)
		}
		var out struct {
			Total int   `json:"total"`
			Runs  []Run `json:"runs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Total, out.Runs
	}

	if total, runs := get(""); total != 4 || len(runs) != 4 {
		t.Fatalf("list all: %d/%d", len(runs), total)
	}
	if total, runs := get("?benchmark=PHASE&limit=2"); total != 3 || len(runs) != 2 {
		t.Fatalf("list PHASE limit 2: %d/%d", len(runs), total)
	}
	if total, _ := get("?p=4"); total != 1 {
		t.Fatalf("list p=4: %d", total)
	}
	_, all := get("")
	sigRun := all[0]
	if total, runs := get("?sig=" + "0x" + strings.ToLower(hexSig(sigRun.Sigs[0]))); total != 1 || runs[0].ID != sigRun.ID {
		t.Fatalf("list by sig: total=%d", total)
	}

	resp, err := http.Get(srv.URL + "/runs?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %s, want 400", resp.Status)
	}
}

func hexSig(s uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 16)
	for i := 60; i >= 0; i -= 4 {
		out = append(out, digits[(s>>uint(i))&0xf])
	}
	return string(out)
}

func TestDiffEndpoint(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	same1, _, err := a.Ingest(mkTrace(8, "PHASE", 30))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure re-ingested dedups, so diff a run against itself
	// and against a structurally different one.
	other, _, err := a.Ingest(mkTrace(8, "PHASE", 31))
	if err != nil {
		t.Fatal(err)
	}

	var d DiffResponse
	resp, err := http.Get(srv.URL + "/runs/" + same1.ID + "/diff/" + same1.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil || !d.Equivalent {
		t.Fatalf("self-diff: err=%v equivalent=%v reason=%q", err, d.Equivalent, d.Reason)
	}

	resp, err = http.Get(srv.URL + "/runs/" + same1.ID + "/diff/" + other.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil || d.Equivalent || d.Reason == "" {
		t.Fatalf("cross-diff: err=%v equivalent=%v reason=%q", err, d.Equivalent, d.Reason)
	}
}

func TestMaxBodyLimit(t *testing.T) {
	_, srv := newTestServer(t, Options{}, ServerOptions{MaxBodyBytes: 64})
	payload, _, _ := Encode(mkTrace(8, "PHASE", 40))
	resp, _ := putTrace(t, srv.URL, payload, false)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT: %s, want 413", resp.Status)
	}
}

func TestBadPayloadRejected(t *testing.T) {
	_, srv := newTestServer(t, Options{}, ServerOptions{})
	resp, _ := putTrace(t, srv.URL, []byte("not a trace at all"), false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT: %s, want 400", resp.Status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := Open(t.TempDir(), Options{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	srv := httptest.NewServer(NewServer(a, ServerOptions{Metrics: true, Reg: reg}))
	defer srv.Close()

	payload, _, _ := Encode(mkTrace(8, "PHASE", 50))
	if resp, _ := putTrace(t, srv.URL, payload, false); resp.StatusCode != http.StatusCreated {
		t.Fatal("seed ingest failed")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"store_ingests 1", "chamd_ingest_requests 1", "chamd_latency_ns_count"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || snap.Counters["store_ingests"] != 1 {
		t.Fatalf("metrics JSON: err=%v counters=%v", err, snap.Counters)
	}

	// Without the flag the route does not exist.
	srv2 := httptest.NewServer(NewServer(a, ServerOptions{Reg: reg}))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics without -metrics: %s, want 404", resp.Status)
	}
}

func TestHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{}, ServerOptions{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

func TestPushClient(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	f := mkTrace(8, "PHASE", 60)

	run, created, err := Push(srv.URL, f, true)
	if err != nil || !created {
		t.Fatalf("push: created=%v err=%v", created, err)
	}
	if a.Len() != 1 {
		t.Fatal("push did not ingest")
	}
	_, created, err = Push(srv.URL+"/runs", f, false) // trailing /runs accepted, plain body
	if err != nil || created {
		t.Fatalf("re-push: created=%v err=%v (want dedup)", created, err)
	}

	got, err := LoadTrace(srv.URL + "/runs/" + run.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, gotID, _ := Encode(got)
	if gotID != run.ID {
		t.Fatal("fetched trace does not round-trip to the pushed address")
	}
}

func TestStatsEndpoint(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	f := mkTrace(8, "PHASE", 3)
	run, _, err := a.Ingest(f)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/runs/" + run.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("stats GET: %s: %s", resp.Status, msg)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != run.ID {
		t.Errorf("stats ID = %s, want %s", out.ID, run.ID)
	}
	// mkTrace: loop(40){Send, Recv} + Allreduce over 8 ranks.
	wantEvents := uint64((40*2 + 1) * 8)
	if out.Report == nil || out.Report.Events != wantEvents {
		t.Fatalf("stats report events = %+v, want %d", out.Report, wantEvents)
	}
	if out.Report.P != 8 || len(out.Report.Windows) != 2 {
		t.Errorf("report shape: P=%d windows=%d, want 8/2", out.Report.P, len(out.Report.Windows))
	}
	if !out.Report.Match.Consistent {
		t.Errorf("ring trace must be match-consistent: %+v", out.Report.Match)
	}

	// Prefix resolution and error mapping follow the other run routes.
	resp2, err := http.Get(srv.URL + "/runs/" + run.ID[:12] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("prefix stats GET: %s", resp2.Status)
	}
	resp3, err := http.Get(srv.URL + "/runs/deadbeef/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("missing run stats GET: %s, want 404", resp3.Status)
	}

	// The client helper round-trips the same report.
	got, err := FetchStats(srv.URL, run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.Events != wantEvents {
		t.Errorf("FetchStats events = %d, want %d", got.Report.Events, wantEvents)
	}
}

// waveEdges synthesizes an edge stream with a clean idle wave from
// origin, JSONL-encoded the way chamrun -edges-out writes it.
func waveEdges(t *testing.T, p, origin int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	emit := func(e obs.Edge) {
		if err := enc.Encode(&e); err != nil {
			t.Fatal(err)
		}
	}
	ms := int64(1e6)
	for it := int64(0); it < 40; it++ { // jitter-scale background
		for r := 0; r < p; r++ {
			emit(obs.Edge{From: (r + 1) % p, To: r, RecvVT: it*2*ms + int64(r)*1000, WaitVT: 20_000 + int64(r)*500})
		}
	}
	for d := 0; d < p; d++ { // the wave front, both directions
		for _, r := range []int{origin - d, origin + d} {
			if r < 0 || r >= p {
				continue
			}
			emit(obs.Edge{From: origin, To: r, RecvVT: 100*ms + int64(d)*2*ms, WaitVT: 50 * ms})
		}
	}
	return buf.Bytes()
}

func TestEdgesAndWavesEndpoints(t *testing.T) {
	a, srv := newTestServer(t, Options{}, ServerOptions{})
	payload, id, err := Encode(mkTrace(8, "PHASE", 1))
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := putTrace(t, srv.URL, payload, false); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT trace: %s", resp.Status)
	}

	// No sidecar yet: 404 on both edge routes.
	for _, path := range []string{"/edges", "/waves"} {
		resp, err := http.Get(srv.URL + "/runs/" + id + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s before push: %s, want 404", path, resp.Status)
		}
	}

	jsonl := waveEdges(t, 8, 3)
	if err := PushEdges(srv.URL, id, jsonl, true); err != nil {
		t.Fatalf("PushEdges: %v", err)
	}
	// Replacing the sidecar is idempotent.
	if err := PushEdges(srv.URL, id[:12], jsonl, false); err != nil {
		t.Fatalf("PushEdges by prefix: %v", err)
	}

	edges, err := FetchEdges(srv.URL, id)
	if err != nil {
		t.Fatalf("FetchEdges: %v", err)
	}
	want, _ := obs.ReadEdges(bytes.NewReader(jsonl))
	if len(edges) != len(want) {
		t.Fatalf("fetched %d edges, want %d", len(edges), len(want))
	}

	waves, err := FetchWaves(srv.URL, id, 0)
	if err != nil {
		t.Fatalf("FetchWaves: %v", err)
	}
	if waves.ID != id || waves.Report == nil {
		t.Fatalf("waves response: %+v", waves)
	}
	if len(waves.Report.Waves) != 1 || waves.Report.Waves[0].OriginRank != 3 {
		t.Fatalf("server-side detector: %+v", waves.Report.Waves)
	}

	// ?cols= switches the detector to grid (Manhattan) rank distance;
	// the report must still come back, and a bad value is a 400.
	if _, err := FetchWaves(srv.URL, id, 4); err != nil {
		t.Fatalf("FetchWaves cols=4: %v", err)
	}
	resp400, err := http.Get(srv.URL + "/runs/" + id + "/waves?cols=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp400.Body.Close()
	if resp400.StatusCode != http.StatusBadRequest {
		t.Fatalf("waves?cols=bogus: %s, want 400", resp400.Status)
	}

	// Garbage bodies are rejected.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/runs/"+id+"/edges",
		strings.NewReader("{\"from\": not json\n"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edge body: %s, want 400", resp.Status)
	}

	// Deleting the run orphans the sidecar; Compact reclaims it.
	if err := a.Delete(id); err != nil {
		t.Fatal(err)
	}
	removed, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed < 2 { // segment + sidecar
		t.Fatalf("compact removed %d files, want >= 2", removed)
	}
	if _, _, err := a.EdgesPayload(id); err == nil {
		t.Fatal("sidecar survived delete+compact")
	}
}
