package store

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"chameleon/internal/obs"
)

// TestConcurrentArchive64 hammers one archive from 64 goroutines with a
// mix of ingest, dedup re-ingest, list, get, delete, and compaction —
// the workload `make test-race` runs under the race detector. The
// archive must stay consistent: every surviving run resolves, every
// payload passes its content-address integrity check, and no segment
// referenced by the manifest is ever reclaimed.
func TestConcurrentArchive64(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := Open(t.TempDir(), Options{Gzip: true, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const workers = 64
	const opsPerWorker = 12

	// A shared pool of traces: workers collide on seeds on purpose so
	// the dedup path and the create path race against each other.
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i)
	}

	var mu sync.Mutex
	ingested := map[string]bool{} // PHASE content addresses actually stored

	var wg sync.WaitGroup
	errs := make(chan error, workers*opsPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				seed := seeds[(w*opsPerWorker+op)%len(seeds)]
				switch (w + op) % 4 {
				case 0: // ingest (often a dedup of a colliding worker's run)
					run, _, err := a.Ingest(mkTrace(8, "PHASE", seed))
					if err != nil {
						errs <- fmt.Errorf("worker %d ingest: %w", w, err)
						return
					}
					mu.Lock()
					ingested[run.ID] = true
					mu.Unlock()
				case 1: // query: list + fetch (PHASE runs are never deleted,
					// so everything listed must resolve and verify)
					runs, _ := a.List(Query{Benchmark: "PHASE", Limit: 4})
					for _, r := range runs {
						if _, _, err := a.Payload(r.ID); err != nil {
							errs <- fmt.Errorf("worker %d get %s: %w", w, r.ID[:12], err)
							return
						}
					}
				case 2: // churn: ingest a worker-unique run, then delete it
					run, _, err := a.Ingest(mkTrace(4, "CHURN", uint64(1000+w*opsPerWorker+op)))
					if err != nil {
						errs <- fmt.Errorf("worker %d churn ingest: %w", w, err)
						return
					}
					if err := a.Delete(run.ID); err != nil {
						errs <- fmt.Errorf("worker %d delete: %w", w, err)
						return
					}
				case 3: // compaction races against everything above
					if _, err := a.Compact(); err != nil {
						errs <- fmt.Errorf("worker %d compact: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-conditions: every PHASE run ever ingested survives (none
	// were deleted) and every payload verifies.
	runs, total := a.List(Query{Benchmark: "PHASE"})
	if total != len(ingested) {
		t.Fatalf("PHASE runs after the storm = %d, want %d", total, len(ingested))
	}
	for _, r := range runs {
		if _, _, err := a.Payload(r.ID); err != nil {
			t.Fatalf("surviving run %s: %v", r.ID[:12], err)
		}
	}
	// And a final compact reclaims all churn orphans without touching
	// live segments.
	if _, err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := countSegments(t, a); got != len(ingested) {
		t.Fatalf("segments after final compact = %d, want %d", got, len(ingested))
	}
	snap := reg.Snapshot()
	if snap.Counters["store_ingests"] == 0 || snap.Counters["store_ingest_dedups"] == 0 {
		t.Fatalf("metrics did not observe the storm: %v", snap.Counters)
	}
}

// TestConcurrentHTTP drives the same mixed workload through the HTTP
// layer: 64 clients pushing, listing, fetching, and diffing at once.
func TestConcurrentHTTP(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	srv := httptest.NewServer(NewServer(a, ServerOptions{}))
	defer srv.Close()

	seedRun, _, err := a.Ingest(mkTrace(8, "PHASE", 0))
	if err != nil {
		t.Fatal(err)
	}

	payloads := make([][]byte, 8)
	for i := range payloads {
		if payloads[i], _, err = Encode(mkTrace(8, "PHASE", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0:
				if _, _, err := PushBytes(srv.URL, payloads[w%len(payloads)], w%2 == 0); err != nil {
					errs <- fmt.Errorf("worker %d push: %w", w, err)
				}
			case 1:
				resp, err := http.Get(srv.URL + "/runs?limit=3")
				if err != nil {
					errs <- fmt.Errorf("worker %d list: %w", w, err)
					return
				}
				resp.Body.Close()
				if _, err := LoadTrace(srv.URL + "/runs/" + seedRun.ID); err != nil {
					errs <- fmt.Errorf("worker %d fetch: %w", w, err)
				}
			case 2:
				resp, err := http.Get(srv.URL + "/runs/" + seedRun.ID + "/diff/" + seedRun.ID)
				if err != nil {
					errs <- fmt.Errorf("worker %d diff: %w", w, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d diff: %s", w, resp.Status)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if a.Len() != len(payloads) {
		t.Fatalf("archive holds %d runs, want %d (dedup under concurrency)", a.Len(), len(payloads))
	}
}
