// Package store is the persistent trace archive: a content-addressed,
// append-only segment store with a manifest index, built so online
// traces survive the run that produced them and can be compared across
// runs.
//
// Layout under the archive directory:
//
//	manifest.json              index of runs (atomic-swap on update)
//	segments/ab/abcd....seg    default-tenant v2 binary payloads (optionally gzip)
//	edges/ab/abcd....jsonl     default-tenant causal-edge sidecars (see edges.go)
//	tenants/<t>/segments/...   per-tenant payloads for every other tenant
//	tenants/<t>/edges/...      per-tenant sidecars
//	tmp/                       staging area for in-flight writes
//
// A run's identity is the SHA-256 of its canonical CHAMTRC2 encoding, so
// ingest is idempotent: pushing the same trace twice (in any input
// format — v1, v2, or JSON) normalizes to the same bytes, the same
// content address, and a single stored segment. Runs are namespaced by
// tenant (see tenant.go): content addresses dedup within a tenant, and
// tenants are fully isolated on disk — the same trace pushed by two
// tenants is stored twice, so deleting one tenant's data can never
// reach into another's.
//
// The manifest indexes each run by tenant, benchmark, rank count,
// Call-Path signature set, and ingest timestamp; it is only ever
// replaced whole (write-temp + rename), never edited in place, so a
// crash mid-update leaves the previous index intact and at worst an
// orphaned segment, which Compact reclaims.
package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/trace"
)

// Journal event kinds emitted by the archive.
const (
	KindIngest  = "store_ingest"  // one run ingested (Note: "new" or "dedup")
	KindCompact = "store_compact" // one compaction pass (Count: files removed)
)

// ErrQuotaExceeded marks an ingest rejected by a tenant storage quota.
// The HTTP layer maps it to 429 + Retry-After.
var ErrQuotaExceeded = errors.New("store: tenant storage quota exceeded")

// Options configures an Archive.
type Options struct {
	// Gzip compresses stored segments on disk. Reads transparently
	// decompress; the content address is always of the uncompressed
	// canonical payload, so a gzip archive dedups against a plain one.
	Gzip bool
	// QuotaBytes caps each tenant's stored run data, measured in
	// canonical (raw) payload bytes — deterministic regardless of the
	// Gzip setting. 0 means unlimited.
	QuotaBytes int64
	// TenantQuotas overrides QuotaBytes per tenant (0 entry = that
	// tenant is unlimited).
	TenantQuotas map[string]int64
	// Reg, when non-nil, receives ingest/query/compaction counters and
	// latency histograms.
	Reg *obs.Registry
	// Journal, when non-nil, receives store_ingest/store_compact events.
	Journal *obs.Journal
	// CompactEvery, when positive, starts a background goroutine that
	// sweeps orphaned segments at this period until Close.
	CompactEvery time.Duration
	// OnCompact, when non-nil, runs after each background compaction
	// pass — the hook chamd uses to piggyback the federation's
	// anti-entropy sweep on the same cadence.
	OnCompact func()
}

// Run is one archived trace: the manifest record the index keeps and
// the HTTP API serves.
type Run struct {
	// ID is the content address: hex SHA-256 of the canonical CHAMTRC2
	// payload.
	ID string `json:"id"`
	// Tenant is the namespace the run lives in (empty in old manifests
	// means DefaultTenant).
	Tenant string `json:"tenant,omitempty"`
	// Benchmark/Tracer/P/Clustered mirror the trace file metadata.
	Benchmark string `json:"benchmark,omitempty"`
	Tracer    string `json:"tracer,omitempty"`
	P         int    `json:"p"`
	Clustered bool   `json:"clustered,omitempty"`
	// Sigs is the sorted Call-Path signature set (the trace's interned
	// call-site table); SigSet is its SHA-256, a cheap equality key for
	// "same code paths, possibly different timings".
	Sigs   []uint64 `json:"sigs,omitempty"`
	SigSet string   `json:"sigset,omitempty"`
	// Ingested is the archive-local ingest timestamp.
	Ingested time.Time `json:"ingested"`
	// RawBytes and StoredBytes are the payload sizes before and after
	// segment compression (equal when Gzip is false).
	RawBytes    int64 `json:"raw_bytes"`
	StoredBytes int64 `json:"stored_bytes"`
	// Gzip reports whether the segment is stored gzip-compressed.
	Gzip bool `json:"gzip,omitempty"`
	// Events and Nodes summarize the trace (dynamic MPI events, total
	// PRSD nodes).
	Events uint64 `json:"events"`
	Nodes  int    `json:"nodes"`
}

// Query filters and paginates List. Zero fields match everything.
type Query struct {
	Benchmark string
	P         int
	Sig       uint64 // runs whose signature set contains this sig
	SigSet    string // exact signature-set hash
	Limit     int    // 0 = no limit
	Offset    int
}

// Archive is an open trace archive. All methods are safe for concurrent
// use.
type Archive struct {
	dir  string
	opts Options

	mu   sync.Mutex
	runs map[string]map[string]*Run // tenant -> content address -> run
	used map[string]int64           // tenant -> sum of RawBytes

	stop chan struct{}
	wg   sync.WaitGroup

	mIngest, mDedup, mGets, mLists, mDeletes *obs.Counter
	mCompacts, mOrphans                      *obs.Counter
	mRawBytes, mStoredBytes                  *obs.Counter
	mQuotaRejects                            *obs.Counter
	hIngest, hGet                            *obs.Histogram
}

type manifest struct {
	Version int    `json:"version"`
	Runs    []*Run `json:"runs"`
}

const manifestVersion = 1

// Open opens (creating if necessary) the archive rooted at dir.
func Open(dir string, opts Options) (*Archive, error) {
	for _, d := range []string{dir, filepath.Join(dir, "segments"), filepath.Join(dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	a := &Archive{
		dir:  dir,
		opts: opts,
		runs: make(map[string]map[string]*Run),
		used: make(map[string]int64),
		stop: make(chan struct{}),

		mIngest:       opts.Reg.Counter("store_ingests"),
		mDedup:        opts.Reg.Counter("store_ingest_dedups"),
		mGets:         opts.Reg.Counter("store_gets"),
		mLists:        opts.Reg.Counter("store_lists"),
		mDeletes:      opts.Reg.Counter("store_deletes"),
		mCompacts:     opts.Reg.Counter("store_compactions"),
		mOrphans:      opts.Reg.Counter("store_orphans_removed"),
		mRawBytes:     opts.Reg.Counter("store_raw_bytes"),
		mStoredBytes:  opts.Reg.Counter("store_stored_bytes"),
		mQuotaRejects: opts.Reg.Counter("store_quota_rejects"),
		hIngest:       opts.Reg.Histogram("store_ingest_ns"),
		hGet:          opts.Reg.Histogram("store_get_ns"),
	}
	if err := a.loadManifest(); err != nil {
		return nil, err
	}
	if opts.CompactEvery > 0 {
		a.wg.Add(1)
		go a.compactLoop(opts.CompactEvery)
	}
	return a, nil
}

// Close stops the background compactor (if any). The archive itself
// holds no open files between calls.
func (a *Archive) Close() error {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.wg.Wait()
	return nil
}

func (a *Archive) compactLoop(every time.Duration) {
	defer a.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.Compact() //nolint:errcheck — best-effort background sweep
			if a.opts.OnCompact != nil {
				a.opts.OnCompact()
			}
		}
	}
}

func (a *Archive) manifestPath() string { return filepath.Join(a.dir, "manifest.json") }

// tenantRoot returns the directory a tenant's payload tree lives
// under: the archive root for the default tenant (the pre-federation
// layout), tenants/<name> for everyone else.
func (a *Archive) tenantRoot(tenant string) string {
	if tenant == DefaultTenant {
		return a.dir
	}
	return filepath.Join(a.dir, "tenants", tenant)
}

func (a *Archive) segmentPath(tenant, id string) string {
	return filepath.Join(a.tenantRoot(tenant), "segments", id[:2], id+".seg")
}

func (a *Archive) loadManifest() error {
	data, err := os.ReadFile(a.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("store: manifest version %d not supported", m.Version)
	}
	for _, r := range m.Runs {
		if r.Tenant == "" {
			r.Tenant = DefaultTenant
		}
		a.putRunLocked(r)
	}
	return nil
}

// putRunLocked indexes a run and charges its tenant. Callers hold a.mu
// (or are still single-threaded in Open).
func (a *Archive) putRunLocked(r *Run) {
	t := a.runs[r.Tenant]
	if t == nil {
		t = make(map[string]*Run)
		a.runs[r.Tenant] = t
	}
	if _, dup := t[r.ID]; !dup {
		a.used[r.Tenant] += r.RawBytes
	}
	t[r.ID] = r
}

// writeManifest atomically replaces the on-disk index with the current
// in-memory run set. Callers hold a.mu.
func (a *Archive) writeManifest() error {
	m := manifest{Version: manifestVersion}
	for _, t := range a.runs {
		for _, r := range t {
			m.Runs = append(m.Runs, r)
		}
	}
	sort.Slice(m.Runs, func(i, j int) bool {
		if m.Runs[i].Tenant != m.Runs[j].Tenant {
			return m.Runs[i].Tenant < m.Runs[j].Tenant
		}
		return m.Runs[i].ID < m.Runs[j].ID
	})
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(a.dir, "tmp"), "manifest-*")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(name, a.manifestPath()); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: manifest: %w", err)
	}
	return nil
}

// Encode returns the canonical CHAMTRC2 payload and content address of
// a trace file. The same logical trace always encodes to the same bytes
// (site table in first-appearance order, deterministic varint layout),
// which is what makes the address stable across pushes.
func Encode(f *trace.File) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		return nil, "", err
	}
	out := buf.Bytes()
	sum := sha256.Sum256(out)
	return out, hex.EncodeToString(sum[:]), nil
}

// describe builds the manifest record for a payload (sans timestamps
// and storage sizes, which ingest fills in).
func describe(f *trace.File, payload []byte, id string) *Run {
	sigs := make([]uint64, 0, len(f.Sites))
	for _, s := range f.SiteTable() {
		sigs = append(sigs, s.Sig)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	h := sha256.New()
	var w [8]byte
	for _, s := range sigs {
		for i := 0; i < 8; i++ {
			w[i] = byte(s >> (8 * i))
		}
		h.Write(w[:])
	}
	return &Run{
		ID:        id,
		Benchmark: f.Benchmark,
		Tracer:    f.Tracer,
		P:         f.P,
		Clustered: f.Clustered,
		Sigs:      sigs,
		SigSet:    hex.EncodeToString(h.Sum(nil)),
		RawBytes:  int64(len(payload)),
		Events:    trace.DynamicEvents(f.Nodes),
		Nodes:     trace.NodeCount(f.Nodes),
	}
}

// Ingest archives a trace file into the default tenant. It returns the
// manifest record and whether a new segment was created (false when the
// content address was already present — the dedup path stores nothing).
func (a *Archive) Ingest(f *trace.File) (Run, bool, error) {
	return a.Tenant(DefaultTenant).Ingest(f)
}

// IngestBytes archives a serialized trace (any readable format: binary
// v1/v2 or JSON) into the default tenant. The payload is decoded —
// validating it — and re-encoded canonically, so equivalent pushes in
// different formats share one content address.
func (a *Archive) IngestBytes(b []byte) (Run, bool, error) {
	return a.Tenant(DefaultTenant).IngestBytes(b)
}

// quotaFor returns a tenant's raw-byte quota (0 = unlimited).
func (a *Archive) quotaFor(tenant string) int64 {
	if q, ok := a.opts.TenantQuotas[tenant]; ok {
		return q
	}
	return a.opts.QuotaBytes
}

func (a *Archive) ingest(tenant string, f *trace.File, payload []byte, id string) (Run, bool, error) {
	start := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()

	if r, ok := a.runs[tenant][id]; ok {
		a.mIngest.Inc()
		a.mDedup.Inc()
		a.opts.Journal.Emit(obs.Event{Kind: KindIngest, Note: "dedup", Bytes: r.RawBytes})
		return *r, false, nil
	}

	if quota := a.quotaFor(tenant); quota > 0 && a.used[tenant]+int64(len(payload)) > quota {
		a.mQuotaRejects.Inc()
		return Run{}, false, fmt.Errorf("%w: tenant %q holds %d of %d bytes, run needs %d more",
			ErrQuotaExceeded, tenant, a.used[tenant], quota, len(payload))
	}

	run := describe(f, payload, id)
	run.Tenant = tenant
	run.Ingested = time.Now().UTC()
	run.Gzip = a.opts.Gzip

	stored, err := a.writeSegment(tenant, id, payload)
	if err != nil {
		return Run{}, false, err
	}
	run.StoredBytes = stored

	a.putRunLocked(run)
	if err := a.writeManifest(); err != nil {
		// Roll back the index entry; the segment becomes an orphan that
		// the next Compact reclaims.
		delete(a.runs[tenant], id)
		a.used[tenant] -= run.RawBytes
		return Run{}, false, err
	}

	a.mIngest.Inc()
	a.mRawBytes.Add(uint64(run.RawBytes))
	a.mStoredBytes.Add(uint64(run.StoredBytes))
	a.hIngest.Observe(time.Since(start).Nanoseconds())
	a.opts.Journal.Emit(obs.Event{Kind: KindIngest, Note: "new", Bytes: run.RawBytes})
	return *run, true, nil
}

// writeSegment stages the payload in tmp/ and renames it into place, so
// a segment path either doesn't exist or holds complete bytes. Callers
// hold a.mu.
func (a *Archive) writeSegment(tenant, id string, payload []byte) (int64, error) {
	path := a.segmentPath(tenant, id)
	if fi, err := os.Stat(path); err == nil {
		// Orphan left by a crashed ingest whose manifest swap never
		// landed: the bytes are content-addressed, reuse them.
		return fi.Size(), nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(a.dir, "tmp"), "seg-*")
	if err != nil {
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	name := tmp.Name()
	fail := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(name)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	if a.opts.Gzip {
		zw := gzip.NewWriter(tmp)
		if _, err := zw.Write(payload); err != nil {
			return fail(err)
		}
		if err := zw.Close(); err != nil {
			return fail(err)
		}
	} else if _, err := tmp.Write(payload); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	fi, err := os.Stat(name)
	if err != nil {
		os.Remove(name)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	return fi.Size(), nil
}

// Resolve looks a default-tenant run up by full content address or by
// unique prefix (at least 6 hex digits).
func (a *Archive) Resolve(id string) (Run, error) {
	return a.Tenant(DefaultTenant).Resolve(id)
}

func (a *Archive) resolve(tenant, id string) (Run, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	runs := a.runs[tenant]
	if r, ok := runs[id]; ok {
		return *r, nil
	}
	if len(id) >= 6 && len(id) < 64 {
		var found *Run
		for k, r := range runs {
			if strings.HasPrefix(k, id) {
				if found != nil {
					return Run{}, fmt.Errorf("store: run %q is ambiguous", id)
				}
				found = r
			}
		}
		if found != nil {
			return *found, nil
		}
	}
	return Run{}, fmt.Errorf("store: run %q not found", id)
}

// Payload returns the canonical (uncompressed) segment bytes of a
// default-tenant run, verifying them against the content address.
func (a *Archive) Payload(id string) ([]byte, Run, error) {
	return a.Tenant(DefaultTenant).Payload(id)
}

func (a *Archive) payload(tenant, id string) ([]byte, Run, error) {
	start := time.Now()
	run, err := a.resolve(tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	raw, err := a.readSegment(run)
	if err != nil {
		return nil, Run{}, err
	}
	sum := sha256.Sum256(raw)
	if hex.EncodeToString(sum[:]) != run.ID {
		return nil, Run{}, fmt.Errorf("store: segment %s is corrupt (content hash mismatch)", run.ID[:12])
	}
	a.mGets.Inc()
	a.hGet.Observe(time.Since(start).Nanoseconds())
	return raw, run, nil
}

// StoredPayload returns the on-disk segment bytes of a default-tenant
// run as stored (gzip frame intact when the archive compresses), for
// zero-copy HTTP serving with Content-Encoding: gzip.
func (a *Archive) StoredPayload(id string) ([]byte, Run, error) {
	return a.Tenant(DefaultTenant).StoredPayload(id)
}

func (a *Archive) storedPayload(tenant, id string) ([]byte, Run, error) {
	run, err := a.resolve(tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	b, err := os.ReadFile(a.segmentPath(tenant, run.ID))
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: segment: %w", err)
	}
	a.mGets.Inc()
	return b, run, nil
}

func (a *Archive) readSegment(run Run) ([]byte, error) {
	f, err := os.Open(a.segmentPath(run.Tenant, run.ID))
	if err != nil {
		return nil, fmt.Errorf("store: segment: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if run.Gzip {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", run.ID[:12], err)
		}
		defer zr.Close()
		r = zr
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", run.ID[:12], err)
	}
	return b, nil
}

// Get decodes an archived default-tenant run back into a trace file.
func (a *Archive) Get(id string) (*trace.File, Run, error) {
	return a.Tenant(DefaultTenant).Get(id)
}

// List returns the default-tenant runs matching q, newest first, plus
// the total match count before pagination.
func (a *Archive) List(q Query) ([]Run, int) {
	return a.Tenant(DefaultTenant).List(q)
}

func (a *Archive) list(tenant string, q Query) ([]Run, int) {
	a.mu.Lock()
	matched := make([]Run, 0, len(a.runs[tenant]))
	for _, r := range a.runs[tenant] {
		if q.Benchmark != "" && r.Benchmark != q.Benchmark {
			continue
		}
		if q.P != 0 && r.P != q.P {
			continue
		}
		if q.SigSet != "" && r.SigSet != q.SigSet {
			continue
		}
		if q.Sig != 0 && !containsSig(r.Sigs, q.Sig) {
			continue
		}
		matched = append(matched, *r)
	}
	a.mu.Unlock()
	a.mLists.Inc()

	sort.Slice(matched, func(i, j int) bool {
		if !matched[i].Ingested.Equal(matched[j].Ingested) {
			return matched[i].Ingested.After(matched[j].Ingested)
		}
		return matched[i].ID < matched[j].ID
	})
	total := len(matched)
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil, total
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, total
}

func containsSig(sorted []uint64, sig uint64) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= sig })
	return i < len(sorted) && sorted[i] == sig
}

// Delete drops a default-tenant run from the manifest. The segment
// stays on disk as an orphan (the store is append-only) until Compact
// reclaims it.
func (a *Archive) Delete(id string) error {
	return a.Tenant(DefaultTenant).Delete(id)
}

func (a *Archive) deleteRun(tenant, id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.runs[tenant][id]
	if !ok {
		return fmt.Errorf("store: run %q not found", id)
	}
	delete(a.runs[tenant], id)
	a.used[tenant] -= r.RawBytes
	if err := a.writeManifest(); err != nil {
		a.runs[tenant][id] = r
		a.used[tenant] += r.RawBytes
		return err
	}
	a.mDeletes.Inc()
	return nil
}

// Compact removes segment files no manifest run references (crashed
// ingests, deleted runs) across every tenant and clears the tmp staging
// area. It returns the number of files removed.
func (a *Archive) Compact() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	removed := 0
	var firstErr error

	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Every tenant payload tree: the legacy default-tenant layout plus
	// tenants/<name>/ for everyone else — including directories of
	// tenants the manifest no longer mentions at all.
	roots := map[string]string{DefaultTenant: a.dir}
	if entries, err := os.ReadDir(filepath.Join(a.dir, "tenants")); err == nil {
		for _, e := range entries {
			if e.IsDir() {
				roots[e.Name()] = filepath.Join(a.dir, "tenants", e.Name())
			}
		}
	}
	for tenant, root := range roots {
		n, err := a.compactTreeLocked(tenant, filepath.Join(root, "segments"), ".seg")
		removed += n
		note(err)
		n, err = a.compactTreeLocked(tenant, filepath.Join(root, "edges"), ".jsonl")
		removed += n
		note(err)
		if tenant != DefaultTenant {
			// Drop a fully emptied tenant directory; best-effort.
			os.Remove(filepath.Join(root, "segments"))
			os.Remove(filepath.Join(root, "edges"))
			os.Remove(root)
		}
	}

	// Ingest holds the same lock while staging, so anything left in
	// tmp/ is debris from a crashed process.
	if tmps, err := os.ReadDir(filepath.Join(a.dir, "tmp")); err == nil {
		for _, t := range tmps {
			if os.Remove(filepath.Join(a.dir, "tmp", t.Name())) == nil {
				removed++
			}
		}
	}

	a.mCompacts.Inc()
	a.mOrphans.Add(uint64(removed))
	if removed > 0 || firstErr != nil {
		a.opts.Journal.Emit(obs.Event{Kind: KindCompact, Count: uint64(removed)})
	}
	if firstErr != nil {
		return removed, fmt.Errorf("store: compact: %w", firstErr)
	}
	return removed, nil
}

// compactTreeLocked removes files under a fan-out tree (segments or
// edges) whose trimmed name is not a live run of the tenant. Callers
// hold a.mu.
func (a *Archive) compactTreeLocked(tenant, root, ext string) (removed int, firstErr error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, sub := range entries {
		if !sub.IsDir() {
			continue
		}
		subPath := filepath.Join(root, sub.Name())
		files, err := os.ReadDir(subPath)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, f := range files {
			id := strings.TrimSuffix(f.Name(), ext)
			if _, live := a.runs[tenant][id]; live {
				continue
			}
			if err := os.Remove(filepath.Join(subPath, f.Name())); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			removed++
		}
		os.Remove(subPath) // drop now-empty fan-out directories; best-effort
	}
	return removed, firstErr
}

// Len returns the number of archived runs across all tenants.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, t := range a.runs {
		n += len(t)
	}
	return n
}
