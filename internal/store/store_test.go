package store

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
)

// mkTrace builds a small deterministic trace file; seed perturbs the
// call-site signatures so distinct seeds yield distinct content
// addresses.
func mkTrace(p int, benchmark string, seed uint64) *trace.File {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	ranks := ranklist.FromRanks(all)
	send := trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(seed*100 + 1)), Dest: trace.Relative(1), Tag: 1, Bytes: 256}
	recv := trace.Event{Op: mpi.OpRecv, Stack: sig.Stack(sig.Mix(seed*100 + 2)), Src: trace.Relative(-1), Tag: 1, Bytes: 256}
	coll := trace.Event{Op: mpi.OpAllreduce, Stack: sig.Stack(sig.Mix(seed*100 + 3)), Bytes: 8}
	return &trace.File{
		P:         p,
		Benchmark: benchmark,
		Tracer:    "chameleon",
		Nodes: []*trace.Node{
			trace.NewLoop(40, []*trace.Node{
				trace.NewLeaf(send, ranks, 1000),
				trace.NewLeaf(recv, ranks, 0),
			}),
			trace.NewLeaf(coll, ranks, 500),
		},
	}
}

// mkWideTrace is mkTrace with many distinct call sites, large enough
// that gzip actually shrinks the payload.
func mkWideTrace(p int, benchmark string, seed uint64) *trace.File {
	f := mkTrace(p, benchmark, seed)
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	ranks := ranklist.FromRanks(all)
	for i := uint64(0); i < 128; i++ {
		ev := trace.Event{Op: mpi.OpBcast, Stack: sig.Stack(sig.Mix(seed*1000 + i)), Bytes: int(8 * i)}
		f.Nodes = append(f.Nodes, trace.NewLeaf(ev, ranks, int64(100*i)))
	}
	return f
}

func openTemp(t *testing.T, opts Options) *Archive {
	t.Helper()
	a, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func countSegments(t *testing.T, a *Archive) int {
	t.Helper()
	n := 0
	err := filepath.Walk(filepath.Join(a.dir, "segments"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && strings.HasSuffix(path, ".seg") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestIngestDedup(t *testing.T) {
	a := openTemp(t, Options{})
	f := mkTrace(8, "PHASE", 1)

	r1, created, err := a.Ingest(f)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first ingest should create a segment")
	}
	r2, created, err := a.Ingest(mkTrace(8, "PHASE", 1)) // fresh but identical File
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("second ingest of identical content must dedup")
	}
	if r1.ID != r2.ID {
		t.Fatalf("content addresses differ: %s vs %s", r1.ID, r2.ID)
	}
	if got := countSegments(t, a); got != 1 {
		t.Fatalf("segments on disk = %d, want 1", got)
	}
	if a.Len() != 1 {
		t.Fatalf("manifest runs = %d, want 1", a.Len())
	}
	if r1.P != 8 || r1.Benchmark != "PHASE" || r1.Events == 0 || len(r1.Sigs) != 3 {
		t.Fatalf("manifest record incomplete: %+v", r1)
	}
}

func TestIngestBytesNormalizesFormats(t *testing.T) {
	a := openTemp(t, Options{})
	f := mkTrace(4, "STENCIL", 2)

	var binV2 bytes.Buffer
	if err := f.WriteBinary(&binV2); err != nil {
		t.Fatal(err)
	}
	var asJSON bytes.Buffer
	if err := f.Write(&asJSON); err != nil {
		t.Fatal(err)
	}

	r1, created, err := a.IngestBytes(binV2.Bytes())
	if err != nil || !created {
		t.Fatalf("binary ingest: created=%v err=%v", created, err)
	}
	r2, created, err := a.IngestBytes(asJSON.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if created || r1.ID != r2.ID {
		t.Fatalf("JSON push of the same run must dedup against the binary push (created=%v, %s vs %s)",
			created, r1.ID[:12], r2.ID[:12])
	}
}

func TestGetRoundTripAndIntegrity(t *testing.T) {
	a := openTemp(t, Options{})
	f := mkTrace(8, "PHASE", 3)
	canonical, id, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Ingest(f); err != nil {
		t.Fatal(err)
	}

	payload, run, err := a.Payload(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, canonical) {
		t.Fatal("stored payload is not byte-identical to the canonical encoding")
	}
	if run.RawBytes != int64(len(canonical)) {
		t.Fatalf("RawBytes = %d, want %d", run.RawBytes, len(canonical))
	}

	got, _, err := a.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	re, reID, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if reID != id || !bytes.Equal(re, canonical) {
		t.Fatal("decoded trace does not re-encode to the same content address")
	}

	// Corrupt the segment on disk; the content-address check must catch it.
	seg := a.segmentPath(DefaultTenant, id)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Payload(id); err == nil {
		t.Fatal("corrupt segment must fail the integrity check")
	}
}

func TestGzipSegments(t *testing.T) {
	a := openTemp(t, Options{Gzip: true})
	f := mkWideTrace(16, "PHASE", 4)
	run, created, err := a.Ingest(f)
	if err != nil || !created {
		t.Fatalf("ingest: created=%v err=%v", created, err)
	}
	if !run.Gzip {
		t.Fatal("run should record gzip storage")
	}

	// The on-disk segment is a gzip frame.
	raw, err := os.ReadFile(a.segmentPath(DefaultTenant, run.ID))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != run.StoredBytes {
		t.Fatalf("StoredBytes = %d, file is %d", run.StoredBytes, len(raw))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("segment is not gzip: %v", err)
	}
	zr.Close()

	// Reads transparently decompress and still verify the address.
	payload, _, err := a.Payload(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	canonical, id, _ := Encode(f)
	if id != run.ID || !bytes.Equal(payload, canonical) {
		t.Fatal("gzip round-trip lost bytes")
	}

	// A gzip archive dedups against the same content pushed again.
	if _, created, _ := a.Ingest(f); created {
		t.Fatal("gzip archive must dedup identical content")
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, _, err := a.Ingest(mkTrace(4, "LU", 5))
	if err != nil {
		t.Fatal(err)
	}
	a.Close()

	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 1 {
		t.Fatalf("reopened archive has %d runs, want 1", b.Len())
	}
	got, rec, err := b.Get(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Benchmark != "LU" || got.P != 4 {
		t.Fatalf("reopened run lost metadata: %+v", rec)
	}
}

func TestListQueryAndPagination(t *testing.T) {
	a := openTemp(t, Options{})
	var phase Run
	for i := uint64(0); i < 5; i++ {
		r, _, err := a.Ingest(mkTrace(8, "PHASE", 10+i))
		if err != nil {
			t.Fatal(err)
		}
		phase = r
	}
	for i := uint64(0); i < 3; i++ {
		if _, _, err := a.Ingest(mkTrace(16, "STENCIL", 20+i)); err != nil {
			t.Fatal(err)
		}
	}

	runs, total := a.List(Query{})
	if total != 8 || len(runs) != 8 {
		t.Fatalf("List all: %d/%d, want 8/8", len(runs), total)
	}
	runs, total = a.List(Query{Benchmark: "PHASE"})
	if total != 5 || len(runs) != 5 {
		t.Fatalf("List PHASE: %d/%d, want 5/5", len(runs), total)
	}
	runs, total = a.List(Query{P: 16})
	if total != 3 {
		t.Fatalf("List P=16: total %d, want 3", total)
	}
	runs, total = a.List(Query{Benchmark: "PHASE", Limit: 2})
	if total != 5 || len(runs) != 2 {
		t.Fatalf("List limited: %d/%d, want 2/5", len(runs), total)
	}
	runs, _ = a.List(Query{Benchmark: "PHASE", Limit: 2, Offset: 4})
	if len(runs) != 1 {
		t.Fatalf("List offset tail: %d, want 1", len(runs))
	}
	if runs, _ = a.List(Query{Offset: 100}); len(runs) != 0 {
		t.Fatal("offset past the end must return nothing")
	}

	// Sig containment: one of PHASE's interned signatures.
	if len(phase.Sigs) == 0 {
		t.Fatal("run has no signature set")
	}
	runs, total = a.List(Query{Sig: phase.Sigs[0]})
	if total != 1 || runs[0].ID != phase.ID {
		t.Fatalf("List by sig: got %d runs, want exactly the matching one", total)
	}
	// SigSet exact match.
	runs, _ = a.List(Query{SigSet: phase.SigSet})
	if len(runs) != 1 || runs[0].ID != phase.ID {
		t.Fatal("List by sigset must match exactly one run")
	}
}

func TestDeleteAndCompact(t *testing.T) {
	a := openTemp(t, Options{})
	keep, _, err := a.Ingest(mkTrace(4, "PHASE", 30))
	if err != nil {
		t.Fatal(err)
	}
	drop, _, err := a.Ingest(mkTrace(4, "PHASE", 31))
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Delete(drop.ID); err != nil {
		t.Fatal(err)
	}
	// Append-only: the segment survives deletion until compaction.
	if got := countSegments(t, a); got != 2 {
		t.Fatalf("segments after delete = %d, want 2", got)
	}
	// Plant tmp debris as a crashed ingest would leave.
	if err := os.WriteFile(filepath.Join(a.dir, "tmp", "seg-debris"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // orphaned segment + tmp debris
		t.Fatalf("compact removed %d files, want 2", removed)
	}
	if got := countSegments(t, a); got != 1 {
		t.Fatalf("segments after compact = %d, want 1", got)
	}
	if _, _, err := a.Get(drop.ID); err == nil {
		t.Fatal("deleted run must not resolve")
	}
	if _, _, err := a.Get(keep.ID); err != nil {
		t.Fatalf("surviving run broken after compact: %v", err)
	}
}

func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{CompactEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	run, _, err := a.Ingest(mkTrace(4, "PHASE", 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Delete(run.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for countSegments(t, a) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compactor never reclaimed the orphan")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestResolvePrefix(t *testing.T) {
	a := openTemp(t, Options{})
	run, _, err := a.Ingest(mkTrace(4, "PHASE", 50))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Resolve(run.ID[:12])
	if err != nil || got.ID != run.ID {
		t.Fatalf("prefix resolve: %v", err)
	}
	if _, err := a.Resolve(run.ID[:4]); err == nil {
		t.Fatal("too-short prefix must not resolve")
	}
	if _, err := a.Resolve("ffffffffffff"); err == nil {
		t.Fatal("unknown prefix must not resolve")
	}
}

func TestManifestSwapLeavesNoTemp(t *testing.T) {
	a := openTemp(t, Options{})
	for i := uint64(0); i < 4; i++ {
		if _, _, err := a.Ingest(mkTrace(2, "BT", 60+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(a.manifestPath()); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	tmps, err := os.ReadDir(filepath.Join(a.dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("tmp staging not empty after ingests: %d files", len(tmps))
	}
}
