//go:build race

package store

// stormPushers under -race: 64 workers, enough to exercise every
// cross-peer lock while staying inside the race detector's overhead.
const stormPushers = 64
