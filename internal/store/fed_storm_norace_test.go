//go:build !race

package store

// stormPushers is the storm test's concurrency. The full 1024-pusher
// storm runs in normal test builds; under -race the build-tagged
// sibling drops it to 64 so the race detector's per-goroutine overhead
// keeps the test inside CI budgets.
const stormPushers = 1024
