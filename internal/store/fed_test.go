package store

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"chameleon/internal/cq"
	"chameleon/internal/mesh"
	"chameleon/internal/trace"
)

// fedPeer is one in-process federated chamd: archive, ring state, CQ
// engine, and a live HTTP listener on a real port (the mesh dials
// peers over loopback TCP, exactly like production).
type fedPeer struct {
	url  string
	a    *Archive
	node *mesh.Node
	eng  *cq.Engine
	srv  *httptest.Server
}

// meshConfig tunes startMesh per test.
type meshConfig struct {
	replicas int
	secret   string
	archive  func(i int) Options
	server   func(i int) ServerOptions
}

// startMesh boots n federated peers. Ports are reserved up front so
// every node is built with the full, final peer list.
func startMesh(t *testing.T, n int, cfg meshConfig) []*fedPeer {
	t.Helper()
	if cfg.replicas == 0 {
		cfg.replicas = 2
	}
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}

	peers := make([]*fedPeer, n)
	for i := range peers {
		var aOpts Options
		if cfg.archive != nil {
			aOpts = cfg.archive(i)
		}
		a, err := Open(t.TempDir(), aOpts)
		if err != nil {
			t.Fatal(err)
		}
		node, err := mesh.NewNode(mesh.Options{Self: urls[i], Peers: urls, Replicas: cfg.replicas, Secret: cfg.secret})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cq.New(cq.Options{
			Lookup:  FedLookup(a, node),
			Origin:  urls[i],
			OnEvent: BroadcastCQEvents(node),
		})
		if err != nil {
			t.Fatal(err)
		}
		var sOpts ServerOptions
		if cfg.server != nil {
			sOpts = cfg.server(i)
		}
		sOpts.Mesh, sOpts.CQ = node, eng
		srv := httptest.NewUnstartedServer(NewServer(a, sOpts))
		srv.Listener.Close()
		srv.Listener = listeners[i]
		srv.Start()
		peers[i] = &fedPeer{url: urls[i], a: a, node: node, eng: eng, srv: srv}
		t.Cleanup(func() { srv.Close(); a.Close() })
	}
	return peers
}

// tenantDo issues a request with an explicit tenant header and optional
// extra headers, returning status, body, and response headers.
func tenantDo(t *testing.T, method, url, tenant string, body []byte, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(mesh.HeaderTenant, tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// localGet reads strictly from one peer (forwarded header suppresses
// the proxy), so tests can assert where replicas physically live.
func localGet(t *testing.T, p *fedPeer, tenant, path string) (int, []byte) {
	t.Helper()
	code, body, _ := tenantDo(t, http.MethodGet, p.url+path, tenant, nil,
		map[string]string{mesh.HeaderForward: mesh.ForwardFanout})
	return code, body
}

// pushVia PUTs a trace through one peer and returns the stored run.
func pushVia(t *testing.T, p *fedPeer, tenant string, f *trace.File) Run {
	t.Helper()
	canon, _, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	code, body, _ := tenantDo(t, http.MethodPut, p.url+"/runs", tenant, canon, nil)
	if code != http.StatusOK && code != http.StatusCreated {
		t.Fatalf("PUT /runs via %s: %d: %s", p.url, code, body)
	}
	var run Run
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("PUT /runs response: %v", err)
	}
	return run
}

func TestFedReplicationAndByteIdenticalReads(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})

	type pushed struct {
		id    string
		canon []byte
	}
	var runs []pushed
	for seed := uint64(0); seed < 12; seed++ {
		f := mkTrace(4, "lulesh", seed)
		canon, id, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		run := pushVia(t, peers[int(seed)%3], "", f)
		if run.ID != id {
			t.Fatalf("stored ID %s != content address %s", run.ID, id)
		}
		runs = append(runs, pushed{id: id, canon: canon})
	}

	for _, r := range runs {
		owners := peers[0].node.Owners(r.id)
		if len(owners) != 2 {
			t.Fatalf("run %s: %d owners", r.id[:12], len(owners))
		}
		ownerSet := map[string]bool{}
		for _, o := range owners {
			ownerSet[o] = true
		}
		copies := 0
		for _, p := range peers {
			code, body := localGet(t, p, "", "/runs/"+r.id)
			switch code {
			case http.StatusOK:
				copies++
				if !bytes.Equal(body, r.canon) {
					t.Fatalf("run %s: replica on %s not byte-identical", r.id[:12], p.url)
				}
				if !ownerSet[p.url] {
					t.Fatalf("run %s: replica on non-owner %s", r.id[:12], p.url)
				}
			case http.StatusNotFound:
				if ownerSet[p.url] {
					t.Fatalf("run %s: owner %s lacks its replica", r.id[:12], p.url)
				}
			default:
				t.Fatalf("run %s: local GET on %s: %d", r.id[:12], p.url, code)
			}
		}
		if copies != 2 {
			t.Fatalf("run %s: %d copies, want R=2", r.id[:12], copies)
		}

		// Every peer serves the same bytes publicly, proxying when the
		// replica lives elsewhere.
		for _, p := range peers {
			code, body, hdr := tenantDo(t, http.MethodGet, p.url+"/runs/"+r.id, "", nil, nil)
			if code != http.StatusOK || !bytes.Equal(body, r.canon) {
				t.Fatalf("run %s: public GET via %s: %d (%d bytes)", r.id[:12], p.url, code, len(body))
			}
			if etag := hdr.Get("ETag"); etag != `"`+r.id+`"` {
				t.Fatalf("run %s: ETag %q", r.id[:12], etag)
			}
		}
	}
}

func TestFedScatterListPagination(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	want := map[string]bool{}
	for seed := uint64(0); seed < 12; seed++ {
		run := pushVia(t, peers[int(seed)%3], "", mkTrace(4, "lulesh", seed))
		want[run.ID] = true
	}

	got := map[string]bool{}
	offset, pages := 0, 0
	for {
		lr, err := FetchRuns(peers[1].url, "", 5, offset)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Total != 12 {
			t.Fatalf("page at offset %d: total %d, want 12", offset, lr.Total)
		}
		if lr.Offset != offset {
			t.Fatalf("page echoed offset %d, want %d", lr.Offset, offset)
		}
		for _, r := range lr.Runs {
			if got[r.ID] {
				t.Fatalf("run %s appeared on two pages", r.ID[:12])
			}
			got[r.ID] = true
		}
		pages++
		if lr.Next == 0 {
			break
		}
		if lr.Next != offset+len(lr.Runs) {
			t.Fatalf("next %d, want %d", lr.Next, offset+len(lr.Runs))
		}
		offset = lr.Next
	}
	if pages != 3 || len(got) != 12 {
		t.Fatalf("walked %d pages, %d runs; want 3 pages, 12 runs", pages, len(got))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("scatter list lost run %s", id[:12])
		}
	}

	// No explicit limit: the server's documented default page size
	// applies (100 — covers all 12 here) and the listing is exhausted.
	lr, err := FetchRuns(peers[2].url, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Runs) != 12 || lr.Next != 0 {
		t.Fatalf("default page: %d runs, next %d", len(lr.Runs), lr.Next)
	}
	// Oversized limits are clamped server-side, not errors.
	if _, err := FetchRuns(peers[0].url, "", 100000, 0); err != nil {
		t.Fatalf("oversized limit: %v", err)
	}

	// Filters ride the scatter: only the lulesh runs at p=4 match a
	// different-p filter negatively.
	lr, err = FetchRuns(peers[0].url, "benchmark=lulesh&p=8", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Total != 0 {
		t.Fatalf("p=8 filter matched %d runs", lr.Total)
	}
}

func TestFedTenantIsolationAndQuota(t *testing.T) {
	small := mkTrace(4, "quota", 1)
	canonSmall, _, err := Encode(small)
	if err != nil {
		t.Fatal(err)
	}
	// The capped tenant can hold exactly the small run and nothing more;
	// mkWideTrace is strictly larger, so it busts the quota on every
	// peer whether or not that peer already holds the small run.
	quota := int64(len(canonSmall))
	peers := startMesh(t, 3, meshConfig{
		replicas: 2,
		archive:  func(int) Options { return Options{TenantQuotas: map[string]int64{"capped": quota}} },
	})

	run := pushVia(t, peers[0], "capped", small)

	// Tenant isolation: the run is invisible to other tenants on every
	// peer, even through the proxy.
	for _, p := range peers {
		if code, _, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID, "elsewhere", nil, nil); code != http.StatusNotFound {
			t.Fatalf("cross-tenant GET via %s: %d, want 404", p.url, code)
		}
	}
	lr, err := FetchRuns(peers[1].url, "", 0, 0) // default tenant
	if err != nil {
		t.Fatal(err)
	}
	if lr.Total != 0 {
		t.Fatalf("capped tenant's run leaked into the default listing: %+v", lr)
	}

	// Over quota: 429 with Retry-After, on whichever peer takes the PUT.
	wide := mkWideTrace(4, "quota", 2)
	wideCanon, _, err := Encode(wide)
	if err != nil {
		t.Fatal(err)
	}
	code, body, hdr := tenantDo(t, http.MethodPut, peers[2].url+"/runs", "capped", wideCanon, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota PUT: %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("over-quota 429 missing Retry-After")
	}
	if !strings.Contains(string(body), "quota") {
		t.Fatalf("over-quota body does not say why: %s", body)
	}

	// Quotas are per-tenant: the same bytes land fine elsewhere, and
	// re-pushing a run the tenant already owns stays idempotent.
	if r := pushVia(t, peers[2], "", wide); r.ID == "" {
		t.Fatal("default tenant rejected the wide run")
	}
	if r := pushVia(t, peers[1], "capped", small); r.ID != run.ID {
		t.Fatalf("idempotent re-push changed ID: %s vs %s", r.ID, run.ID)
	}

	// Malformed tenant names are rejected at the edge.
	if code, _, _ := tenantDo(t, http.MethodGet, peers[0].url+"/runs", "..", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("tenant \"..\": %d, want 400", code)
	}
}

func TestFedRateLimit(t *testing.T) {
	a := openTemp(t, Options{})
	srv := httptest.NewServer(NewServer(a, ServerOptions{RateLimit: 1, RateBurst: 2}))
	defer srv.Close()

	var last int
	var hdr http.Header
	for i := 0; i < 3; i++ {
		last, _, hdr = tenantDo(t, http.MethodGet, srv.URL+"/runs", "", nil, nil)
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("third burst request: %d, want 429", last)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("throttled response Retry-After = %q", ra)
	}

	// Tenant buckets are independent: a different tenant still gets in.
	if code, _, _ := tenantDo(t, http.MethodGet, srv.URL+"/runs", "other", nil, nil); code != http.StatusOK {
		t.Fatalf("second tenant throttled by the first: %d", code)
	}
	// Intra-mesh traffic and probes are exempt.
	if code, _, _ := tenantDo(t, http.MethodGet, srv.URL+"/runs", "", nil,
		map[string]string{mesh.HeaderForward: mesh.ForwardFanout}); code != http.StatusOK {
		t.Fatalf("forwarded request throttled: %d", code)
	}
	if code, _, _ := tenantDo(t, http.MethodGet, srv.URL+"/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz throttled: %d", code)
	}
}

func TestFedConditionalStatsAndWaves(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	f := mkTrace(4, "etag", 3)
	run := pushVia(t, peers[0], "", f)

	// stats: the report is a pure function of the run, so the ETag is
	// stable and honored on every peer (including across the proxy).
	var etag string
	for i, p := range peers {
		code, _, hdr := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID+"/stats", "", nil, nil)
		if code != http.StatusOK {
			t.Fatalf("stats via %s: %d", p.url, code)
		}
		if i == 0 {
			etag = hdr.Get("ETag")
			if etag == "" {
				t.Fatal("stats response missing ETag")
			}
		} else if hdr.Get("ETag") != etag {
			t.Fatalf("stats ETag differs across peers: %q vs %q", hdr.Get("ETag"), etag)
		}
	}
	for _, p := range peers {
		code, _, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID+"/stats", "", nil,
			map[string]string{"If-None-Match": etag})
		if code != http.StatusNotModified {
			t.Fatalf("conditional stats via %s: %d, want 304", p.url, code)
		}
	}

	// waves: attach a sidecar on a peer that physically holds the run.
	holder := peers[0]
	for _, p := range peers {
		if code, _ := localGet(t, p, "", "/runs/"+run.ID); code == http.StatusOK {
			holder = p
			break
		}
	}
	sidecar := []byte(`{"from":0,"to":1,"seq":1,"send_ns":100,"arrive_ns":200,"recv_ns":250}` + "\n")
	if code, body, _ := tenantDo(t, http.MethodPut, holder.url+"/runs/"+run.ID+"/edges", "", sidecar, nil); code != http.StatusOK {
		t.Fatalf("PUT edges: %d: %s", code, body)
	}
	code, _, hdr := tenantDo(t, http.MethodGet, holder.url+"/runs/"+run.ID+"/waves", "", nil, nil)
	if code != http.StatusOK || hdr.Get("ETag") == "" {
		t.Fatalf("waves: %d, ETag %q", code, hdr.Get("ETag"))
	}
	wavesTag := hdr.Get("ETag")
	if code, _, _ = tenantDo(t, http.MethodGet, holder.url+"/runs/"+run.ID+"/waves", "", nil,
		map[string]string{"If-None-Match": wavesTag}); code != http.StatusNotModified {
		t.Fatalf("conditional waves: %d, want 304", code)
	}
	// The sidecar is replaceable, so its ETag covers the bytes: a new
	// sidecar invalidates the old tag.
	sidecar2 := append(sidecar, []byte(`{"from":1,"to":2,"seq":2,"send_ns":300,"arrive_ns":400,"recv_ns":500}`+"\n")...)
	if code, _, _ := tenantDo(t, http.MethodPut, holder.url+"/runs/"+run.ID+"/edges", "", sidecar2, nil); code != http.StatusOK {
		t.Fatalf("PUT edges (replace): %d", code)
	}
	code, _, hdr = tenantDo(t, http.MethodGet, holder.url+"/runs/"+run.ID+"/waves", "", nil,
		map[string]string{"If-None-Match": wavesTag})
	if code != http.StatusOK || hdr.Get("ETag") == wavesTag {
		t.Fatalf("stale waves ETag survived a sidecar replace: %d %q", code, hdr.Get("ETag"))
	}
}

func TestFedCQRegressionGate(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})

	golden := pushVia(t, peers[0], "", mkTrace(4, "lulesh", 7))

	spec, err := RegisterCQ(peers[0].url, cq.Spec{Name: "gate", Benchmark: "lulesh", Golden: golden.ID[:16]})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tenant != DefaultTenant || spec.UpdatedUnixMs == 0 {
		t.Fatalf("stored spec: %+v", spec)
	}
	// Registration fans out: every peer can be a future primary owner.
	for _, p := range peers {
		specs, err := FetchCQs(p.url)
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != 1 || specs[0].Name != "gate" {
			t.Fatalf("spec not fanned out to %s: %+v", p.url, specs)
		}
	}

	// An equivalent run under a different content address gates ok:
	// timings differ, structure does not.
	ok := mkTrace(4, "lulesh", 7)
	ok.Nodes[1].Delta.Add(999)
	okRun := pushVia(t, peers[1], "", ok)
	if okRun.ID == golden.ID {
		t.Fatal("timing perturbation did not change the content address")
	}

	// A structural drift gates as a regression, and the event reaches a
	// watcher long-polling any peer.
	drift := mkTrace(4, "lulesh", 7)
	drift.Nodes[0].Iters++
	driftRun := pushVia(t, peers[2], "", drift)

	view, err := WatchCQFeed(peers[1].url, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Events) != 2 {
		t.Fatalf("feed has %d events, want 2: %+v", len(view.Events), view.Events)
	}
	byRun := map[string]cq.Event{}
	for _, ev := range view.Events {
		byRun[ev.Run] = ev
	}
	if ev := byRun[okRun.ID]; ev.Verdict != cq.VerdictOK {
		t.Fatalf("equivalent run gated %q (%s)", ev.Verdict, ev.Reason)
	}
	if ev := byRun[driftRun.ID]; ev.Verdict != cq.VerdictRegression || ev.Reason == "" {
		t.Fatalf("drifted run gated %q (%s)", ev.Verdict, ev.Reason)
	}
	if byRun[driftRun.ID].Golden != golden.ID {
		t.Fatalf("event resolved golden %q, want %s", byRun[driftRun.ID].Golden, golden.ID)
	}

	// Broadcast: every peer's feed carries the same events (same IDs).
	for _, p := range peers {
		fv, err := FetchCQFeed(p.url)
		if err != nil {
			t.Fatal(err)
		}
		ids := map[string]bool{}
		for _, ev := range fv.Events {
			ids[ev.ID] = true
		}
		for _, ev := range view.Events {
			if !ids[ev.ID] {
				t.Fatalf("event %s missing from %s's feed", ev.ID, p.url)
			}
		}
	}

	// External clients cannot forge feed entries.
	forged := []byte(`{"id":"evil#1","tenant":"default","verdict":"regression"}`)
	if code, _, _ := tenantDo(t, http.MethodPost, peers[0].url+"/cq/events", "", forged, nil); code != http.StatusForbidden {
		t.Fatalf("unforwarded event POST: %d, want 403", code)
	}

	// Deletion fans out too.
	if err := DeleteCQ(peers[2].url, "gate"); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		specs, err := FetchCQs(p.url)
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != 0 {
			t.Fatalf("deleted spec survives on %s: %+v", p.url, specs)
		}
	}
}

func TestFedAntiEntropySweep(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})

	// Simulate a fallback replica: a run living only on a peer that
	// does not own it (its owners were down at ingest time).
	f := mkTrace(4, "repair", 11)
	_, id, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]bool{}
	for _, o := range peers[0].node.Owners(id) {
		owners[o] = true
	}
	var stray, owner *fedPeer
	for _, p := range peers {
		if owners[p.url] {
			owner = p
		} else {
			stray = p
		}
	}
	if _, _, err := stray.a.Tenant("acme").Ingest(f); err != nil {
		t.Fatal(err)
	}
	// An edge sidecar attached to the stray replica must converge too —
	// owners pull sidecars alongside the runs they repair.
	sidecar := []byte(`{"from":0,"to":1,"seq":1,"send_ns":100,"arrive_ns":200,"recv_ns":250}` + "\n")
	if _, _, err := stray.a.Tenant("acme").PutEdges(id, sidecar); err != nil {
		t.Fatal(err)
	}
	// A CQ registered only on the stray peer rides the same sweep.
	if _, err := stray.eng.Register(cq.Spec{Tenant: "acme", Name: "synced", Golden: id}); err != nil {
		t.Fatal(err)
	}

	if code, _ := localGet(t, owner, "acme", "/runs/"+id); code != http.StatusNotFound {
		t.Fatalf("owner already has the run before the sweep: %d", code)
	}

	rep, err := TriggerSweep(owner.url)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pulled < 1 {
		t.Fatalf("sweep pulled %d runs, want >=1: %+v", rep.Pulled, rep)
	}
	if rep.EdgesPulled < 1 {
		t.Fatalf("sweep pulled %d sidecars, want >=1: %+v", rep.EdgesPulled, rep)
	}
	if rep.CQMerged < 1 {
		t.Fatalf("sweep merged %d CQ specs, want >=1: %+v", rep.CQMerged, rep)
	}

	code, body := localGet(t, owner, "acme", "/runs/"+id)
	if code != http.StatusOK {
		t.Fatalf("owner lacks the run after the sweep: %d", code)
	}
	canon, _, _ := Encode(f)
	if !bytes.Equal(body, canon) {
		t.Fatal("pulled replica not byte-identical")
	}
	if code, got := localGet(t, owner, "acme", "/runs/"+id+"/edges"); code != http.StatusOK || !bytes.Equal(got, sidecar) {
		t.Fatalf("owner lacks the sidecar after the sweep: %d", code)
	}
	if specs := owner.eng.List("acme"); len(specs) != 1 || specs[0].Name != "synced" {
		t.Fatalf("CQ spec did not sync: %+v", specs)
	}

	// Sweeps are idempotent: a second pass finds nothing to do.
	rep, err = TriggerSweep(owner.url)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pulled != 0 || rep.EdgesPulled != 0 {
		t.Fatalf("second sweep re-pulled %d runs, %d sidecars", rep.Pulled, rep.EdgesPulled)
	}
}

func TestFedWriteSurvivesDeadOwners(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	survivor := peers[0]

	// Find a run owned by neither... impossible at R=2 with one
	// survivor in the write path only when both owners are the dead
	// peers — hunt for such an ID.
	var f *trace.File
	var id string
	for seed := uint64(100); ; seed++ {
		cand := mkTrace(4, "failover", seed)
		_, cid, err := Encode(cand)
		if err != nil {
			t.Fatal(err)
		}
		ownedBySurvivor := false
		for _, o := range survivor.node.Owners(cid) {
			if o == survivor.url {
				ownedBySurvivor = true
			}
		}
		if !ownedBySurvivor {
			f, id = cand, cid
			break
		}
	}
	peers[1].srv.Close()
	peers[2].srv.Close()

	run := pushVia(t, survivor, "", f)
	if run.ID != id {
		t.Fatalf("fallback ingest stored %s, want %s", run.ID, id)
	}
	// The write landed locally (off-ring) and is served locally.
	if code, _ := localGet(t, survivor, "", "/runs/"+id); code != http.StatusOK {
		t.Fatalf("fallback replica not on the surviving peer: %d", code)
	}
	// Reads and scatter lists degrade gracefully with the fleet down.
	if code, _, _ := tenantDo(t, http.MethodGet, survivor.url+"/runs/"+id, "", nil, nil); code != http.StatusOK {
		t.Fatalf("public GET with dead owners: %d", code)
	}
	lr, err := FetchRuns(survivor.url, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Total != 1 {
		t.Fatalf("degraded scatter list total %d, want 1", lr.Total)
	}
}

func TestFedEdgesFanout(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	run := pushVia(t, peers[0], "", mkTrace(4, "edges", 5))

	owners := map[string]bool{}
	for _, o := range peers[0].node.Owners(run.ID) {
		owners[o] = true
	}
	var nonOwner *fedPeer
	for _, p := range peers {
		if !owners[p.url] {
			nonOwner = p
		}
	}

	// An edge PUT through a peer that does not hold the run fans out to
	// its owners instead of failing with a strictly-local 404.
	sidecar := []byte(`{"from":0,"to":1,"seq":1,"send_ns":100,"arrive_ns":200,"recv_ns":250}` + "\n")
	code, body, _ := tenantDo(t, http.MethodPut, nonOwner.url+"/runs/"+run.ID+"/edges", "", sidecar, nil)
	if code != http.StatusOK {
		t.Fatalf("edge PUT via non-owner: %d: %s", code, body)
	}
	var res struct {
		ID    string `json:"id"`
		Edges int    `json:"edges"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != run.ID || res.Edges != 1 {
		t.Fatalf("edge PUT result: %s", body)
	}

	// The sidecar physically lands on the run's owners, not the ingress
	// peer, and every peer serves it publicly via the proxy.
	for _, p := range peers {
		code, got := localGet(t, p, "", "/runs/"+run.ID+"/edges")
		switch {
		case owners[p.url] && (code != http.StatusOK || !bytes.Equal(got, sidecar)):
			t.Fatalf("owner %s lacks the sidecar: %d", p.url, code)
		case !owners[p.url] && code != http.StatusNotFound:
			t.Fatalf("non-owner %s holds the sidecar: %d", p.url, code)
		}
	}
	for _, p := range peers {
		code, got, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID+"/edges", "", nil, nil)
		if code != http.StatusOK || !bytes.Equal(got, sidecar) {
			t.Fatalf("public edge GET via %s: %d", p.url, code)
		}
	}

	// Prefix references resolve across the fan-out too, and a re-push
	// replaces the sidecar everywhere it lives.
	sidecar2 := append(append([]byte{}, sidecar...),
		[]byte(`{"from":1,"to":2,"seq":2,"send_ns":300,"arrive_ns":400,"recv_ns":450}`+"\n")...)
	code, body, _ = tenantDo(t, http.MethodPut, nonOwner.url+"/runs/"+run.ID[:16]+"/edges", "", sidecar2, nil)
	if code != http.StatusOK {
		t.Fatalf("edge PUT by prefix via non-owner: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != run.ID || res.Edges != 2 {
		t.Fatalf("prefix edge PUT result: %s", body)
	}
	for _, p := range peers {
		if code, got, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID+"/edges", "", nil, nil); code != http.StatusOK || !bytes.Equal(got, sidecar2) {
			t.Fatalf("replaced sidecar via %s: %d", p.url, code)
		}
	}

	// Malformed payloads and unknown runs fail at the ingress edge.
	if code, _, _ := tenantDo(t, http.MethodPut, nonOwner.url+"/runs/"+run.ID+"/edges", "", []byte("not an edge\n"), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed edges: %d, want 400", code)
	}
	if code, _, _ := tenantDo(t, http.MethodPut, nonOwner.url+"/runs/ffffffffffffffff/edges", "", sidecar, nil); code != http.StatusNotFound {
		t.Fatalf("edges for unknown run: %d, want 404", code)
	}
}

func TestFedDiffProxies(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})

	// Hunt for two distinct runs placed on the same owner pair: the
	// third peer then holds neither side, so a strictly-local diff
	// there cannot work.
	ownerKey := func(id string) string {
		o := append([]string{}, peers[0].node.Owners(id)...)
		sort.Strings(o)
		return strings.Join(o, "|")
	}
	type cand struct {
		f  *trace.File
		id string
	}
	first := map[string]cand{}
	var a, b cand
	for seed := uint64(0); ; seed++ {
		f := mkTrace(4, "diff", seed)
		_, id, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		k := ownerKey(id)
		if prev, ok := first[k]; ok && prev.id != id {
			a, b = prev, cand{f, id}
			break
		}
		first[k] = cand{f, id}
	}
	pushVia(t, peers[0], "", a.f)
	pushVia(t, peers[1], "", b.f)

	var outside *fedPeer
	owned := map[string]bool{}
	for _, o := range peers[0].node.Owners(a.id) {
		owned[o] = true
	}
	for _, p := range peers {
		if !owned[p.url] {
			outside = p
		}
	}
	if code, _ := localGet(t, outside, "", "/runs/"+a.id); code != http.StatusNotFound {
		t.Fatalf("outside peer unexpectedly holds run A: %d", code)
	}
	if code, _ := localGet(t, outside, "", "/runs/"+b.id); code != http.StatusNotFound {
		t.Fatalf("outside peer unexpectedly holds run B: %d", code)
	}

	// The diff endpoint resolves each side from its owners, so the
	// outside peer answers even though it holds neither run.
	code, body, _ := tenantDo(t, http.MethodGet, outside.url+"/runs/"+a.id+"/diff/"+b.id, "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("federated diff via outside peer: %d: %s", code, body)
	}
	var d DiffResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.A != a.id || d.B != b.id {
		t.Fatalf("diff resolved (%s, %s), want (%s, %s)", d.A, d.B, a.id, b.id)
	}
	// Self-diff through the proxy is trivially equivalent.
	code, body, _ = tenantDo(t, http.MethodGet, outside.url+"/runs/"+a.id+"/diff/"+a.id, "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("federated self-diff: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Equivalent {
		t.Fatalf("self-diff not equivalent: %s", body)
	}
	// Unknown runs still 404 rather than 502.
	if code, _, _ := tenantDo(t, http.MethodGet, outside.url+"/runs/"+a.id+"/diff/ffffffffffffffff", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("diff against unknown run: %d, want 404", code)
	}
}

func TestFedMeshSecret(t *testing.T) {
	const key = "swordfish"
	peers := startMesh(t, 3, meshConfig{replicas: 2, secret: key})
	withKey := func(h map[string]string) map[string]string {
		out := map[string]string{mesh.HeaderKey: key}
		for k, v := range h {
			out[k] = v
		}
		return out
	}
	spoof := map[string]string{mesh.HeaderForward: mesh.ForwardFanout}

	// The mesh still functions end-to-end with the key in play: PUT
	// fan-out places R=2 replicas, public reads proxy.
	run := pushVia(t, peers[0], "acme", mkTrace(4, "secured", 3))
	copies := 0
	for _, p := range peers {
		code, _, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID, "acme", nil, withKey(spoof))
		if code == http.StatusOK {
			copies++
		}
	}
	if copies != 2 {
		t.Fatalf("secured mesh placed %d copies, want 2", copies)
	}
	for _, p := range peers {
		if code, _, _ := tenantDo(t, http.MethodGet, p.url+"/runs/"+run.ID, "acme", nil, nil); code != http.StatusOK {
			t.Fatalf("public GET via %s: %d", p.url, code)
		}
	}

	// A spoofed forward header without the key carries no privilege:
	// feed events cannot be forged...
	ev := []byte(`{"id":"evil#1","tenant":"acme","verdict":"regression"}`)
	if code, _, _ := tenantDo(t, http.MethodPost, peers[0].url+"/cq/events", "acme", ev, spoof); code != http.StatusForbidden {
		t.Fatal("spoofed forward header forged a feed event")
	}
	if code, _, _ := tenantDo(t, http.MethodPost, peers[0].url+"/cq/events", "acme", ev, withKey(spoof)); code != http.StatusNoContent {
		t.Fatal("key-carrying event broadcast rejected")
	}

	// ...?all=1 listings stay scoped to the caller's tenant...
	specJSON := []byte(`{"name":"gate","golden":"` + run.ID + `"}`)
	if code, body, _ := tenantDo(t, http.MethodPut, peers[0].url+"/cq", "acme", specJSON, nil); code != http.StatusCreated {
		t.Fatalf("register CQ under acme: %d: %s", code, body)
	}
	code, body, _ := tenantDo(t, http.MethodGet, peers[0].url+"/cq?all=1", "other", nil, spoof)
	var specs []cq.Spec
	if code != http.StatusOK || json.Unmarshal(body, &specs) != nil {
		t.Fatalf("spoofed ?all=1: %d: %s", code, body)
	}
	if len(specs) != 0 {
		t.Fatalf("spoofed ?all=1 leaked other tenants' specs: %+v", specs)
	}
	code, body, _ = tenantDo(t, http.MethodGet, peers[0].url+"/cq?all=1", "other", nil, withKey(spoof))
	if code != http.StatusOK || json.Unmarshal(body, &specs) != nil || len(specs) != 1 {
		t.Fatalf("keyed ?all=1: %d: %s", code, body)
	}

	// ...and the manifest reveals only the caller's own holdings.
	code, body, _ = tenantDo(t, http.MethodGet, peers[0].url+"/mesh/manifest", "other", nil, nil)
	var entries []mesh.Entry
	if code != http.StatusOK || json.Unmarshal(body, &entries) != nil {
		t.Fatalf("manifest: %d: %s", code, body)
	}
	for _, e := range entries {
		if e.Tenant != "other" {
			t.Fatalf("unkeyed manifest leaked tenant %q's run %s", e.Tenant, e.ID[:12])
		}
	}
	code, body, _ = tenantDo(t, http.MethodGet, peers[0].url+"/mesh/manifest", "other", nil, withKey(spoof))
	if code != http.StatusOK || json.Unmarshal(body, &entries) != nil {
		t.Fatalf("keyed manifest: %d: %s", code, body)
	}
	found := false
	for _, e := range entries {
		if e.Tenant == "acme" && e.ID == run.ID {
			found = true
		}
	}
	if !found && len(peers[0].node.Owners(run.ID)) > 0 {
		// peers[0] only advertises what it physically holds; ask an owner.
		owner := peers[0].node.Owners(run.ID)[0]
		code, body, _ = tenantDo(t, http.MethodGet, owner+"/mesh/manifest", "other", nil, withKey(spoof))
		if code != http.StatusOK || json.Unmarshal(body, &entries) != nil {
			t.Fatalf("keyed owner manifest: %d: %s", code, body)
		}
		for _, e := range entries {
			if e.Tenant == "acme" && e.ID == run.ID {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("keyed manifest hides the acme run from the mesh")
	}

	// Anti-entropy keeps working under the secret (sweeps carry the key).
	if rep, err := TriggerSweep(peers[0].url); err != nil || rep.PeersFailed != 0 {
		t.Fatalf("sweep on secured mesh: %+v, %v", rep, err)
	}
}

func TestFedMeshSecretRateLimit(t *testing.T) {
	// On a secured mesh a spoofed forward header must not bypass the
	// per-tenant rate limit; the real mesh key stays exempt.
	peers := startMesh(t, 2, meshConfig{
		replicas: 1,
		secret:   "swordfish",
		server:   func(int) ServerOptions { return ServerOptions{RateLimit: 1, RateBurst: 2} },
	})
	spoof := map[string]string{mesh.HeaderForward: mesh.ForwardFanout}
	var last int
	var hdr http.Header
	for i := 0; i < 3; i++ {
		last, _, hdr = tenantDo(t, http.MethodGet, peers[0].url+"/runs", "probe", nil, spoof)
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("spoofed forward header bypassed the rate limit: %d", last)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("throttled response missing Retry-After")
	}
	keyed := map[string]string{mesh.HeaderForward: mesh.ForwardFanout, mesh.HeaderKey: "swordfish"}
	for i := 0; i < 3; i++ {
		if code, _, _ := tenantDo(t, http.MethodGet, peers[0].url+"/runs", "probe", nil, keyed); code != http.StatusOK {
			t.Fatalf("key-carrying mesh request throttled: %d", code)
		}
	}
}

func TestFedCQDeleteTombstone(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	golden := pushVia(t, peers[0], "", mkTrace(4, "lulesh", 7))
	if _, err := RegisterCQ(peers[0].url, cq.Spec{Name: "gate", Benchmark: "lulesh", Golden: golden.ID}); err != nil {
		t.Fatal(err)
	}

	// Simulate a delete whose fan-out one peer missed: retire the spec
	// on peer 0's engine only. Peers 1 and 2 still list it.
	if err := peers[0].eng.Delete(DefaultTenant, "gate"); err != nil {
		t.Fatal(err)
	}
	if specs := peers[1].eng.List(DefaultTenant); len(specs) != 1 {
		t.Fatalf("peer 1 lost the spec without a delete: %+v", specs)
	}

	// Anti-entropy must not resurrect the deleted gate: peer 0 sweeps
	// against two peers that still advertise the live spec.
	if _, err := TriggerSweep(peers[0].url); err != nil {
		t.Fatal(err)
	}
	if specs, err := FetchCQs(peers[0].url); err != nil || len(specs) != 0 {
		t.Fatalf("deleted CQ resurrected by the sweep: %+v (%v)", specs, err)
	}
	// And the tombstone retires the spec on the peers that missed the
	// delete once they sweep.
	for _, p := range peers[1:] {
		if _, err := TriggerSweep(p.url); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		if specs, err := FetchCQs(p.url); err != nil || len(specs) != 0 {
			t.Fatalf("deleted CQ survives on %s: %+v (%v)", p.url, specs, err)
		}
	}

	// Re-registration out-ranks the tombstone mesh-wide.
	if _, err := RegisterCQ(peers[2].url, cq.Spec{Name: "gate", Benchmark: "lulesh", Golden: golden.ID}); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if specs, err := FetchCQs(p.url); err != nil || len(specs) != 1 {
			t.Fatalf("re-registered CQ missing on %s: %+v (%v)", p.url, specs, err)
		}
	}
}

func TestFedMeshStatus(t *testing.T) {
	peers := startMesh(t, 3, meshConfig{replicas: 2})
	pushVia(t, peers[0], "acme", mkTrace(4, "status", 21))

	st, err := FetchMeshStatus(peers[0].url)
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != peers[0].url || len(st.Peers) != 3 || st.Replicas != 2 {
		t.Fatalf("mesh status: %+v", st)
	}
	totalRuns := 0
	for _, p := range peers {
		s, err := FetchMeshStatus(p.url)
		if err != nil {
			t.Fatal(err)
		}
		totalRuns += s.Runs
		if s.Runs > 0 && s.Tenants["acme"] <= 0 {
			t.Fatalf("peer %s holds runs but reports no acme usage: %+v", p.url, s)
		}
	}
	if totalRuns != 2 {
		t.Fatalf("fleet holds %d copies, want 2", totalRuns)
	}
}
