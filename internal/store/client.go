package store

// HTTP client helpers: the CLI tools accept `http(s)://` run references
// wherever they accept a trace path, and chamrun -push uploads the
// merged online trace to a chamd archive after Finalize.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"chameleon/internal/cq"
	"chameleon/internal/mesh"
	"chameleon/internal/obs"
	"chameleon/internal/trace"
)

// httpClient disables the transport's transparent gzip so transfer
// byte counts are observable; decompression is explicit in fetch.
var httpClient = &http.Client{
	Timeout: 60 * time.Second,
	Transport: &http.Transport{
		DisableCompression: true,
	},
}

// clientTenant is the tenant every client helper stamps on its
// requests (the CLI tools' -tenant flag). Empty means the server-side
// default tenant.
var clientTenant string

// SetTenant namespaces all subsequent client-helper requests from this
// process under the named tenant.
func SetTenant(tenant string) { clientTenant = tenant }

// doReq sends a client request with the process tenant attached.
func doReq(req *http.Request) (*http.Response, error) {
	if clientTenant != "" {
		req.Header.Set(mesh.HeaderTenant, clientTenant)
	}
	return httpClient.Do(req)
}

// clientGet is httpClient.Get with the tenant header.
func clientGet(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return doReq(req)
}

// IsRef reports whether the trace reference is an HTTP(S) URL rather
// than a local path.
func IsRef(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://")
}

// TransferStats describes one HTTP trace fetch: bytes moved on the
// wire vs. the decoded payload size (they differ under gzip transfer).
type TransferStats struct {
	WireBytes int64
	RawBytes  int64
	Gzip      bool
}

func (t TransferStats) String() string {
	if t.Gzip {
		return fmt.Sprintf("%d B gzip on the wire, %d B raw", t.WireBytes, t.RawBytes)
	}
	return fmt.Sprintf("%d B on the wire", t.WireBytes)
}

// FetchBytes GETs a run reference and returns the decoded payload plus
// transfer statistics.
func FetchBytes(url string) ([]byte, TransferStats, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, TransferStats{}, err
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := doReq(req)
	if err != nil {
		return nil, TransferStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, TransferStats{}, fmt.Errorf("GET %s: %s: %s",
			url, resp.Status, strings.TrimSpace(string(msg)))
	}
	wire, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, TransferStats{}, fmt.Errorf("GET %s: %w", url, err)
	}
	stats := TransferStats{WireBytes: int64(len(wire))}
	payload := wire
	if resp.Header.Get("Content-Encoding") == "gzip" {
		stats.Gzip = true
		zr, err := gzip.NewReader(bytes.NewReader(wire))
		if err != nil {
			return nil, TransferStats{}, fmt.Errorf("GET %s: gzip: %w", url, err)
		}
		payload, err = io.ReadAll(zr)
		if err != nil {
			return nil, TransferStats{}, fmt.Errorf("GET %s: gzip: %w", url, err)
		}
		if err := zr.Close(); err != nil {
			return nil, TransferStats{}, fmt.Errorf("GET %s: gzip: %w", url, err)
		}
	}
	stats.RawBytes = int64(len(payload))
	return payload, stats, nil
}

// LoadTraceStats resolves a trace reference — a local path or an
// http(s):// run URL — into a decoded trace file. The stats pointer is
// non-nil exactly for remote fetches.
func LoadTraceStats(ref string) (*trace.File, *TransferStats, error) {
	if !IsRef(ref) {
		f, err := trace.LoadAny(ref)
		return f, nil, err
	}
	payload, stats, err := FetchBytes(ref)
	if err != nil {
		return nil, nil, err
	}
	f, err := trace.ReadAny(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", ref, err)
	}
	return f, &stats, nil
}

// LoadTrace resolves a trace reference (local path or http(s):// run
// URL) into a decoded trace file.
func LoadTrace(ref string) (*trace.File, error) {
	f, _, err := LoadTraceStats(ref)
	return f, err
}

// OpenRef opens a reference as a byte stream: a local file, or the
// body of an HTTP GET (journals, edge files, Chrome traces).
func OpenRef(ref string) (io.ReadCloser, error) {
	if !IsRef(ref) {
		return os.Open(ref)
	}
	payload, _, err := FetchBytes(ref)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(payload)), nil
}

// FetchStats GETs a run's compressed-domain analysis report from a
// chamd archive: base is the archive root, id a run reference (full
// content address or unique prefix). The report is computed server-side
// without expanding the stored trace.
func FetchStats(base, id string) (StatsResponse, error) {
	url := strings.TrimSuffix(base, "/") + "/runs/" + id + "/stats"
	resp, err := clientGet(url)
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return StatsResponse{}, fmt.Errorf("GET %s: %s: %s",
			url, resp.Status, strings.TrimSpace(string(msg)))
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, fmt.Errorf("GET %s: decode response: %w", url, err)
	}
	return out, nil
}

// FetchWaves requests the server-side idle-wave report over a run's
// edge sidecar. A positive cols asks the server to treat ranks as a
// row-major cols-wide grid (?cols= query param).
func FetchWaves(base, id string, cols int) (WavesResponse, error) {
	url := strings.TrimSuffix(base, "/") + "/runs/" + id + "/waves"
	if cols > 0 {
		url += fmt.Sprintf("?cols=%d", cols)
	}
	resp, err := clientGet(url)
	if err != nil {
		return WavesResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return WavesResponse{}, fmt.Errorf("GET %s: %s: %s",
			url, resp.Status, strings.TrimSpace(string(msg)))
	}
	var out WavesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return WavesResponse{}, fmt.Errorf("GET %s: decode response: %w", url, err)
	}
	return out, nil
}

// FetchEdges downloads a run's causal edge sidecar.
func FetchEdges(base, id string) ([]obs.Edge, error) {
	url := strings.TrimSuffix(base, "/") + "/runs/" + id + "/edges"
	resp, err := clientGet(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s",
			url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return obs.ReadEdges(resp.Body)
}

// PushEdges attaches a causal edge sidecar (JSONL bytes, the format
// obs.WriteEdges produces) to an already-pushed run.
func PushEdges(base, id string, jsonl []byte, useGzip bool) error {
	url := strings.TrimSuffix(base, "/") + "/runs/" + id + "/edges"
	body := jsonl
	var buf bytes.Buffer
	if useGzip {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(jsonl); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		body = buf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if useGzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := doReq(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("PUT %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Push uploads a trace to a chamd archive rooted at base (e.g.
// "http://host:8321"; a trailing "/runs" is accepted too). It returns
// the server's manifest record and whether the run was new to the
// archive (false = content-address dedup).
func Push(base string, f *trace.File, useGzip bool) (Run, bool, error) {
	payload, _, err := Encode(f)
	if err != nil {
		return Run{}, false, err
	}
	return PushBytes(base, payload, useGzip)
}

// PushBytes uploads an already-serialized trace payload.
func PushBytes(base string, payload []byte, useGzip bool) (Run, bool, error) {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasSuffix(url, "/runs") {
		url += "/runs"
	}
	body := payload
	var buf bytes.Buffer
	if useGzip {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			return Run{}, false, err
		}
		if err := zw.Close(); err != nil {
			return Run{}, false, err
		}
		body = buf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return Run{}, false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if useGzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := doReq(req)
	if err != nil {
		return Run{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Run{}, false, fmt.Errorf("PUT %s: %s: %s",
			url, resp.Status, strings.TrimSpace(string(msg)))
	}
	var run Run
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		return Run{}, false, fmt.Errorf("PUT %s: decode response: %w", url, err)
	}
	return run, resp.StatusCode == http.StatusCreated, nil
}

// FetchRuns lists a chamd archive's runs. query is the raw filter
// string ("benchmark=lulesh&p=64"), without limit/offset; those come
// from the offset parameter and the server's page size. The returned
// ListResponse carries Next when more pages remain.
func FetchRuns(base, query string, limit, offset int) (ListResponse, error) {
	u := strings.TrimSuffix(base, "/") + "/runs"
	sep := "?"
	if query != "" {
		u += sep + query
		sep = "&"
	}
	if limit > 0 {
		u += fmt.Sprintf("%slimit=%d", sep, limit)
		sep = "&"
	}
	if offset > 0 {
		u += fmt.Sprintf("%soffset=%d", sep, offset)
	}
	var out ListResponse
	if err := getJSON(u, &out); err != nil {
		return ListResponse{}, err
	}
	return out, nil
}

// RegisterCQ registers (or replaces) a continuous query on a chamd
// archive and returns the stored spec.
func RegisterCQ(base string, spec cq.Spec) (cq.Spec, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return cq.Spec{}, err
	}
	url := strings.TrimSuffix(base, "/") + "/cq"
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return cq.Spec{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := doReq(req)
	if err != nil {
		return cq.Spec{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return cq.Spec{}, fmt.Errorf("PUT %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	var out cq.Spec
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return cq.Spec{}, fmt.Errorf("PUT %s: decode response: %w", url, err)
	}
	return out, nil
}

// FetchCQs lists the tenant's registered continuous queries.
func FetchCQs(base string) ([]cq.Spec, error) {
	var out []cq.Spec
	if err := getJSON(strings.TrimSuffix(base, "/")+"/cq", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteCQ drops a registered continuous query by name.
func DeleteCQ(base, name string) error {
	url := strings.TrimSuffix(base, "/") + "/cq/" + name
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := doReq(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("DELETE %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// FetchCQFeed fetches the tenant's continuous-query event feed.
func FetchCQFeed(base string) (cq.FeedView, error) {
	var out cq.FeedView
	if err := getJSON(strings.TrimSuffix(base, "/")+"/cq/events", &out); err != nil {
		return cq.FeedView{}, err
	}
	return out, nil
}

// WatchCQFeed long-polls the tenant's CQ feed until its version
// exceeds after or timeout elapses server-side.
func WatchCQFeed(base string, after uint64, timeout time.Duration) (cq.FeedView, error) {
	u := fmt.Sprintf("%s/cq/events?version=%d&timeout=%s",
		strings.TrimSuffix(base, "/"), after, timeout)
	var out cq.FeedView
	if err := getJSON(u, &out); err != nil {
		return cq.FeedView{}, err
	}
	return out, nil
}

// FetchMeshStatus fetches a peer's federation identity and per-tenant
// usage.
func FetchMeshStatus(base string) (MeshStatus, error) {
	var out MeshStatus
	if err := getJSON(strings.TrimSuffix(base, "/")+"/mesh/status", &out); err != nil {
		return MeshStatus{}, err
	}
	return out, nil
}

// TriggerSweep asks a peer to run one anti-entropy pass now and
// returns its report.
func TriggerSweep(base string) (mesh.SweepReport, error) {
	url := strings.TrimSuffix(base, "/") + "/mesh/sweep"
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		return mesh.SweepReport{}, err
	}
	resp, err := doReq(req)
	if err != nil {
		return mesh.SweepReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return mesh.SweepReport{}, fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	var out struct {
		mesh.SweepReport
		Error string `json:"error,omitempty"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return mesh.SweepReport{}, fmt.Errorf("POST %s: decode response: %w", url, err)
	}
	if out.Error != "" {
		return out.SweepReport, fmt.Errorf("sweep: %s", out.Error)
	}
	return out.SweepReport, nil
}
