package store

// Tenancy: every run, edge sidecar, live session, and continuous query
// is namespaced by a tenant name. The default tenant keeps the
// pre-federation disk layout (segments/ and edges/ at the archive
// root), so single-tenant archives upgrade in place; every other tenant
// lives under tenants/<name>/. TenantView is the scoped handle the HTTP
// layer works through after extracting the X-Cham-Tenant header.

import (
	"bytes"
	"fmt"
	"sort"

	"chameleon/internal/obs"
	"chameleon/internal/trace"
	"chameleon/internal/wave"
)

// DefaultTenant is the namespace used when no tenant is specified.
const DefaultTenant = "default"

// ValidTenant reports whether a tenant name is acceptable: 1-64
// characters of [A-Za-z0-9._-]. The same alphabet as live session IDs,
// and safe as a directory name.
func ValidTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	// "." and ".." are valid by alphabet but are path traversal.
	return name != "." && name != ".."
}

// NormalizeTenant maps the empty string to DefaultTenant and validates
// everything else.
func NormalizeTenant(name string) (string, error) {
	if name == "" {
		return DefaultTenant, nil
	}
	if !ValidTenant(name) {
		return "", fmt.Errorf("store: invalid tenant name %q", name)
	}
	return name, nil
}

// TenantView is an Archive scoped to one tenant. The zero value is not
// usable; obtain one from Archive.Tenant.
type TenantView struct {
	a      *Archive
	tenant string
}

// Tenant returns a view of the archive scoped to the named tenant
// (empty = default). The name is assumed validated; use
// NormalizeTenant at trust boundaries.
func (a *Archive) Tenant(name string) TenantView {
	if name == "" {
		name = DefaultTenant
	}
	return TenantView{a: a, tenant: name}
}

// Name returns the tenant this view is scoped to.
func (v TenantView) Name() string { return v.tenant }

// Ingest archives a trace file. See Archive.Ingest.
func (v TenantView) Ingest(f *trace.File) (Run, bool, error) {
	payload, id, err := Encode(f)
	if err != nil {
		return Run{}, false, err
	}
	return v.a.ingest(v.tenant, f, payload, id)
}

// IngestBytes archives a serialized trace in any readable format. See
// Archive.IngestBytes.
func (v TenantView) IngestBytes(b []byte) (Run, bool, error) {
	f, err := trace.ReadAny(bytes.NewReader(b))
	if err != nil {
		return Run{}, false, fmt.Errorf("store: ingest: %w", err)
	}
	payload, id, err := Encode(f)
	if err != nil {
		return Run{}, false, err
	}
	return v.a.ingest(v.tenant, f, payload, id)
}

// Resolve looks a run up by full content address or unique prefix.
func (v TenantView) Resolve(id string) (Run, error) { return v.a.resolve(v.tenant, id) }

// Payload returns the canonical segment bytes, hash-verified.
func (v TenantView) Payload(id string) ([]byte, Run, error) { return v.a.payload(v.tenant, id) }

// StoredPayload returns the on-disk segment bytes as stored.
func (v TenantView) StoredPayload(id string) ([]byte, Run, error) {
	return v.a.storedPayload(v.tenant, id)
}

// Get decodes an archived run back into a trace file.
func (v TenantView) Get(id string) (*trace.File, Run, error) {
	raw, run, err := v.a.payload(v.tenant, id)
	if err != nil {
		return nil, Run{}, err
	}
	f, err := trace.ReadAny(bytes.NewReader(raw))
	if err != nil {
		return nil, Run{}, fmt.Errorf("store: segment %s: %w", run.ID[:12], err)
	}
	return f, run, nil
}

// List returns the tenant's runs matching q, newest first, plus the
// total match count before pagination.
func (v TenantView) List(q Query) ([]Run, int) { return v.a.list(v.tenant, q) }

// Delete drops a run from the manifest.
func (v TenantView) Delete(id string) error { return v.a.deleteRun(v.tenant, id) }

// PutEdges attaches a causal edge stream (JSONL bytes) to an archived
// run, replacing any previous sidecar.
func (v TenantView) PutEdges(id string, jsonl []byte) (int, Run, error) {
	return v.a.putEdges(v.tenant, id, jsonl)
}

// EdgesPayload returns the raw JSONL sidecar bytes for a run.
func (v TenantView) EdgesPayload(id string) ([]byte, Run, error) {
	return v.a.edgesPayload(v.tenant, id)
}

// Edges loads the decoded edge sidecar for a run.
func (v TenantView) Edges(id string) ([]obs.Edge, Run, error) {
	return v.a.edges(v.tenant, id)
}

// Waves runs idle-wave detection over a run's edge sidecar.
func (v TenantView) Waves(id string, cols int) (*wave.Report, Run, error) {
	return v.a.waves(v.tenant, id, cols)
}

// Used returns the tenant's stored raw bytes (the quota-accounted
// measure).
func (v TenantView) Used() int64 {
	v.a.mu.Lock()
	defer v.a.mu.Unlock()
	return v.a.used[v.tenant]
}

// Quota returns the tenant's raw-byte quota (0 = unlimited).
func (v TenantView) Quota() int64 { return v.a.quotaFor(v.tenant) }

// Tenants returns every tenant with at least one archived run, sorted.
func (a *Archive) Tenants() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.runs))
	for t, runs := range a.runs {
		if len(runs) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
