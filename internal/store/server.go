package store

// The HTTP face of the archive: the handler cmd/chamd serves and the
// httptest harness exercises. Routes:
//
//	PUT  /runs                  ingest a trace (idempotent: content address = ETag)
//	GET  /runs                  list runs (benchmark=, p=, sig=, sigset=, limit=, offset=)
//	GET  /runs/{id}             fetch one run (binary; ?format=json or Accept: application/json)
//	GET  /runs/{id}/stats       compressed-domain analysis report (zan; never expands the trace)
//	PUT  /runs/{id}/edges       attach a causal edge sidecar (JSONL body)
//	GET  /runs/{id}/edges       fetch a run's edge sidecar
//	GET  /runs/{id}/waves       idle-wave detector report over the edge sidecar
//	GET  /runs/{a}/diff/{b}     server-side per-site divergence (chamstat -diff engine)
//	POST /live/sessions/{id}/deltas   ingest a live telemetry delta batch
//	GET  /live/sessions               list in-flight sessions
//	GET  /live/sessions/{id}          one session's live view (?metrics=1 includes snapshot)
//	GET  /live/sessions/{id}/watch    long-poll: block until version > ?version= or ?timeout=
//	GET  /metrics               Prometheus text exposition (JSON behind Accept: application/json)
//	GET  /healthz               liveness probe
//
// Requests and responses speak optional gzip (Content-Encoding /
// Accept-Encoding); when the archive itself stores gzip segments a
// compressed GET streams the stored frame without recompressing.

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"chameleon/internal/analysis"
	"chameleon/internal/fault"
	"chameleon/internal/obs"
	"chameleon/internal/wave"
	"chameleon/internal/zan"
)

// ServerOptions harden and instrument the HTTP layer.
type ServerOptions struct {
	// MaxBodyBytes caps PUT bodies (after transfer decompression);
	// 0 means the 64 MiB default.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling; 0 means 30s.
	RequestTimeout time.Duration
	// Metrics exposes the registry at GET /metrics.
	Metrics bool
	// Reg receives request counters and latency histograms (it may be
	// the same registry the archive reports into).
	Reg *obs.Registry
	// Live tracks in-flight sessions; nil builds a default tracker
	// reporting into Reg (live endpoints are always served).
	Live *Live
}

const (
	defaultMaxBody        = 64 << 20
	defaultRequestTimeout = 30 * time.Second
)

type server struct {
	a    *Archive
	opts ServerOptions
	live *Live

	mRequests, mErrors          *obs.Counter
	mIngestReqs, mQueryReqs     *obs.Counter
	mLiveReqs                   *obs.Counter
	mBytesIn, mBytesOut         *obs.Counter
	hLatency, hIngest, hQueries *obs.Histogram
}

// NewServer builds the archive's HTTP handler: mux, per-request
// timeout, body limits, instrumentation.
func NewServer(a *Archive, opts ServerOptions) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	if opts.Live == nil {
		opts.Live = NewLive(LiveOptions{Reg: opts.Reg})
	}
	s := &server{
		a:    a,
		opts: opts,
		live: opts.Live,

		mRequests:   opts.Reg.Counter("chamd_requests"),
		mErrors:     opts.Reg.Counter("chamd_errors"),
		mIngestReqs: opts.Reg.Counter("chamd_ingest_requests"),
		mQueryReqs:  opts.Reg.Counter("chamd_query_requests"),
		mLiveReqs:   opts.Reg.Counter("chamd_live_requests"),
		mBytesIn:    opts.Reg.Counter("chamd_bytes_in"),
		mBytesOut:   opts.Reg.Counter("chamd_bytes_out"),
		hLatency:    opts.Reg.Histogram("chamd_latency_ns"),
		hIngest:     opts.Reg.Histogram("chamd_ingest_latency_ns"),
		hQueries:    opts.Reg.Histogram("chamd_query_latency_ns"),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("PUT /runs", s.handlePut)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/stats", s.handleStats)
	mux.HandleFunc("PUT /runs/{id}/edges", s.handleEdgesPut)
	mux.HandleFunc("GET /runs/{id}/edges", s.handleEdgesGet)
	mux.HandleFunc("GET /runs/{id}/waves", s.handleWaves)
	mux.HandleFunc("GET /runs/{a}/diff/{b}", s.handleDiff)
	mux.HandleFunc("POST /live/sessions/{id}/deltas", s.handleLiveDeltas)
	mux.HandleFunc("GET /live/sessions", s.handleLiveList)
	mux.HandleFunc("GET /live/sessions/{id}", s.handleLiveGet)
	mux.HandleFunc("GET /live/sessions/{id}/watch", s.handleLiveWatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if opts.Metrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}

	instrumented := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mRequests.Inc()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(cw, r)
		s.hLatency.Observe(time.Since(start).Nanoseconds())
		s.mBytesOut.Add(uint64(cw.bytes))
		if cw.status >= 400 {
			s.mErrors.Inc()
		}
	})
	return http.TimeoutHandler(instrumented, opts.RequestTimeout, "chamd: request timed out\n")
}

// countingWriter tracks status and body bytes for instrumentation.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	c.status = code
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("chamd: "+format, args...), code)
}

func failCode(err error) int {
	if strings.Contains(err.Error(), "not found") {
		return http.StatusNotFound
	}
	if strings.Contains(err.Error(), "ambiguous") {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.mIngestReqs.Inc()
	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer body.Close()

	var in io.Reader = body
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "gzip body: %v", err)
			return
		}
		defer zr.Close()
		in = zr
	default:
		s.fail(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q", enc)
		return
	}

	payload, err := io.ReadAll(in)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	s.mBytesIn.Add(uint64(len(payload)))

	run, created, err := s.a.IngestBytes(payload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.hIngest.Observe(time.Since(start).Nanoseconds())

	w.Header().Set("ETag", `"`+run.ID+`"`)
	w.Header().Set("Location", "/runs/"+run.ID)
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(run) //nolint:errcheck — client gone is fine
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	id := r.PathValue("id")

	run, err := s.a.Resolve(id)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	etag := `"` + run.ID + `"`
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	asJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if asJSON {
		f, _, err := s.a.Get(run.ID)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", "application/json")
		if err := f.Write(w); err != nil {
			s.mErrors.Inc()
		}
		s.hQueries.Observe(time.Since(start).Nanoseconds())
		return
	}

	wantGzip := strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	var payload []byte
	if wantGzip && run.Gzip {
		// The segment is already a gzip frame; stream it as the
		// transfer encoding without recompressing.
		payload, _, err = s.a.StoredPayload(run.ID)
		if err == nil {
			w.Header().Set("Content-Encoding", "gzip")
		}
	} else {
		payload, _, err = s.a.Payload(run.ID)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Raw-Bytes", strconv.FormatInt(run.RawBytes, 10))
	w.Header().Set("X-Stored-Bytes", strconv.FormatInt(run.StoredBytes, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload) //nolint:errcheck — client gone is fine
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	q := Query{Benchmark: r.URL.Query().Get("benchmark"), SigSet: r.URL.Query().Get("sigset")}
	var err error
	if v := r.URL.Query().Get("p"); v != "" {
		if q.P, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, "p: %v", err)
			return
		}
	}
	if v := r.URL.Query().Get("sig"); v != "" {
		// Signatures print as hex (chamdump -sites); accept 0x-prefixed
		// hex, bare hex, or decimal.
		if q.Sig, err = parseSig(v); err != nil {
			s.fail(w, http.StatusBadRequest, "sig: %v", err)
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if q.Limit, err = strconv.Atoi(v); err != nil || q.Limit < 0 {
			s.fail(w, http.StatusBadRequest, "limit: %q", v)
			return
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		if q.Offset, err = strconv.Atoi(v); err != nil || q.Offset < 0 {
			s.fail(w, http.StatusBadRequest, "offset: %q", v)
			return
		}
	}

	runs, total := s.a.List(q)
	resp := struct {
		Total  int   `json:"total"`
		Offset int   `json:"offset"`
		Runs   []Run `json:"runs"`
	}{Total: total, Offset: q.Offset, Runs: runs}
	if resp.Runs == nil {
		resp.Runs = []Run{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func parseSig(v string) (uint64, error) {
	if strings.HasPrefix(v, "0x") || strings.HasPrefix(v, "0X") {
		return strconv.ParseUint(v[2:], 16, 64)
	}
	if n, err := strconv.ParseUint(v, 10, 64); err == nil {
		return n, nil
	}
	return strconv.ParseUint(v, 16, 64)
}

// StatsResponse is the JSON shape of GET /runs/{id}/stats: the
// compressed-domain analysis report, computed by walking the stored RSD
// tree once (internal/zan) — the archive never expands the trace to
// serve it.
type StatsResponse struct {
	ID     string      `json:"id"`
	Report *zan.Report `json:"report"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	f, run, err := s.a.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	rep, err := zan.Analyze(f, zan.Options{})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StatsResponse{ID: run.ID, Report: rep}) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func (s *server) handleEdgesPut(w http.ResponseWriter, r *http.Request) {
	s.mIngestReqs.Inc()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer body.Close()
	var in io.Reader = body
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "gzip body: %v", err)
			return
		}
		defer zr.Close()
		in = zr
	default:
		s.fail(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q", enc)
		return
	}
	payload, err := io.ReadAll(in)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	s.mBytesIn.Add(uint64(len(payload)))

	n, run, err := s.a.PutEdges(r.PathValue("id"), payload)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		ID    string `json:"id"`
		Edges int    `json:"edges"`
	}{ID: run.ID, Edges: n})
}

func (s *server) handleEdgesGet(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	payload, _, err := s.a.EdgesPayload(r.PathValue("id"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload) //nolint:errcheck — client gone is fine
}

// WavesResponse is the JSON shape of GET /runs/{id}/waves: the idle-wave
// detector report computed server-side over the run's edge sidecar.
type WavesResponse struct {
	ID     string       `json:"id"`
	Report *wave.Report `json:"report"`
}

func (s *server) handleWaves(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	cols := 0
	if v := r.URL.Query().Get("cols"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad cols %q: want a non-negative integer", v)
			return
		}
		cols = n
	}
	rep, run, err := s.a.Waves(r.PathValue("id"), cols)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(WavesResponse{ID: run.ID, Report: rep}) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

// DiffResponse is the JSON shape of GET /runs/{a}/diff/{b}: the
// chamstat per-site divergence verdict computed server-side.
type DiffResponse struct {
	A              string           `json:"a"`
	B              string           `json:"b"`
	Equivalent     bool             `json:"equivalent"`
	Reason         string           `json:"reason,omitempty"`
	TolerateRanks  []int            `json:"tolerate_ranks,omitempty"`
	MissingInA     int              `json:"missing_in_a,omitempty"`
	MissingInB     int              `json:"missing_in_b,omitempty"`
	EventDeltas    map[string]int64 `json:"event_deltas,omitempty"`
	SiteCountDelta map[string]int64 `json:"site_count_deltas,omitempty"`
}

func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	fa, runA, err := s.a.Get(r.PathValue("a"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	fb, runB, err := s.a.Get(r.PathValue("b"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}

	var tol []int
	switch spec := r.URL.Query().Get("tolerate"); spec {
	case "":
	case "auto":
		set := map[int]bool{}
		for _, rk := range fa.Retired {
			set[rk] = true
		}
		for _, rk := range fb.Retired {
			set[rk] = true
		}
		for rk := range set {
			tol = append(tol, rk)
		}
		sort.Ints(tol)
	default:
		rs, err := fault.ParseRankSet(spec)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "tolerate: %v", err)
			return
		}
		p := fa.P
		if fb.P > p {
			p = fb.P
		}
		tol = rs.Ranks(p)
	}

	d := analysis.CompareWith(fa, fb, analysis.CompareOpts{TolerateRanks: tol})
	resp := DiffResponse{
		A:             runA.ID,
		B:             runB.ID,
		Equivalent:    d.Equivalent(),
		TolerateRanks: tol,
		MissingInA:    len(d.MissingInA),
		MissingInB:    len(d.MissingInB),
	}
	if !d.Equivalent() {
		resp.Reason = d.Reason()
	}
	if len(d.EventDeltas) > 0 {
		resp.EventDeltas = map[string]int64{}
		for rank, delta := range d.EventDeltas {
			resp.EventDeltas[strconv.Itoa(rank)] = delta
		}
	}
	if len(d.SiteCountDeltas) > 0 {
		resp.SiteCountDelta = map[string]int64{}
		for site, delta := range d.SiteCountDeltas {
			resp.SiteCountDelta[fmt.Sprintf("%#x", site)] = delta
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.opts.Reg.Snapshot()
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	snap.WritePrometheus(w) //nolint:errcheck
}

// --- live telemetry endpoints ---

func (s *server) handleLiveDeltas(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer body.Close()
	var batch []obs.Delta
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "delta batch: %v", err)
		return
	}
	ackSeq, err := s.live.Apply(id, batch)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(obs.Ack{AckSeq: ackSeq}) //nolint:errcheck
}

func (s *server) handleLiveList(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	resp := struct {
		Sessions []LiveSummary `json:"sessions"`
	}{Sessions: s.live.List()}
	if resp.Sessions == nil {
		resp.Sessions = []LiveSummary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

func (s *server) handleLiveGet(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	withMetrics := r.URL.Query().Get("metrics") == "1"
	v, err := s.live.View(r.PathValue("id"), withMetrics)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (s *server) handleLiveWatch(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	var after uint64
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "version: %q", v)
			return
		}
		after = n
	}
	// The long-poll must resolve inside the server's request timeout
	// (the whole handler chain sits under http.TimeoutHandler).
	maxWait := s.opts.RequestTimeout * 3 / 4
	wait := maxWait
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.fail(w, http.StatusBadRequest, "timeout: %q", v)
			return
		}
		if d < wait {
			wait = d
		}
	}
	v, err := s.live.Watch(r.PathValue("id"), after, wait)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
