package store

// The HTTP face of the archive: the handler cmd/chamd serves and the
// httptest harness exercises. Routes:
//
//	PUT  /runs                  ingest a trace (idempotent: content address = ETag)
//	GET  /runs                  list runs (benchmark=, p=, sig=, sigset=, limit=, offset=)
//	GET  /runs/{id}             fetch one run (binary; ?format=json or Accept: application/json)
//	GET  /runs/{id}/stats       compressed-domain analysis report (zan; never expands the trace)
//	PUT  /runs/{id}/edges       attach a causal edge sidecar (JSONL body)
//	GET  /runs/{id}/edges       fetch a run's edge sidecar
//	GET  /runs/{id}/waves       idle-wave detector report over the edge sidecar
//	GET  /runs/{a}/diff/{b}     server-side per-site divergence (chamstat -diff engine)
//	POST /live/sessions/{id}/deltas   ingest a live telemetry delta batch
//	GET  /live/sessions               list in-flight sessions
//	GET  /live/sessions/{id}          one session's live view (?metrics=1 includes snapshot)
//	GET  /live/sessions/{id}/watch    long-poll: block until version > ?version= or ?timeout=
//	PUT  /cq                    register a continuous query (cq.Spec JSON)
//	GET  /cq                    list the tenant's continuous queries
//	DELETE /cq/{name}           drop a continuous query
//	GET  /cq/events             the tenant's CQ event feed (?version= long-polls)
//	GET  /mesh/manifest         every (tenant, run) this peer holds (anti-entropy)
//	GET  /mesh/status           federation identity: self, peers, replicas, tenants
//	POST /mesh/sweep            run one anti-entropy pass now
//	GET  /metrics               Prometheus text exposition (JSON behind Accept: application/json)
//	GET  /healthz               liveness probe
//
// Every run, live session, and query is namespaced by the
// X-Cham-Tenant header (default "default"); tenants are rate-limited
// (429 + Retry-After) and quota-bounded at this edge. When a mesh.Node
// is configured the handler federates: PUT fans out to the run's R
// owners, a GET miss transparently proxies to a peer that has the run,
// and GET /runs scatter-gathers the whole fleet. Intra-mesh traffic
// carries the X-Cham-Mesh header and is always served strictly locally
// — that header is the loop guard. On a mesh started with a shared
// secret the header is only honored alongside the matching
// X-Cham-Mesh-Key, so external clients cannot claim intra-mesh trust;
// without a secret the header is cooperative (docs/STORE.md).
//
// Requests and responses speak optional gzip (Content-Encoding /
// Accept-Encoding); when the archive itself stores gzip segments a
// compressed GET streams the stored frame without recompressing.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"chameleon/internal/analysis"
	"chameleon/internal/cq"
	"chameleon/internal/fault"
	"chameleon/internal/mesh"
	"chameleon/internal/obs"
	"chameleon/internal/trace"
	"chameleon/internal/wave"
	"chameleon/internal/zan"
)

// ServerOptions harden and instrument the HTTP layer.
type ServerOptions struct {
	// MaxBodyBytes caps PUT bodies (after transfer decompression);
	// 0 means the 64 MiB default.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling; 0 means 30s.
	RequestTimeout time.Duration
	// Metrics exposes the registry at GET /metrics.
	Metrics bool
	// Reg receives request counters and latency histograms (it may be
	// the same registry the archive reports into).
	Reg *obs.Registry
	// Live tracks in-flight sessions; nil builds a default tracker
	// reporting into Reg (live endpoints are always served).
	Live *Live
	// Mesh, when non-nil, federates this peer: PUT fan-out, GET proxy,
	// scatter-gather list, anti-entropy endpoints.
	Mesh *mesh.Node
	// CQ, when non-nil, serves the continuous-query endpoints and
	// evaluates registered gates on ingest.
	CQ *cq.Engine
	// RateLimit throttles each tenant to this many requests/second at
	// the edge (0 disables). Intra-mesh traffic is exempt.
	RateLimit float64
	// RateBurst is the token-bucket depth (default: RateLimit).
	RateBurst int
}

const (
	defaultMaxBody        = 64 << 20
	defaultRequestTimeout = 30 * time.Second

	// defaultListLimit is the page size GET /runs uses when the client
	// sends no limit; maxListLimit is the server-side cap a client
	// cannot exceed. Intra-mesh scatter reads are uncapped — the edge
	// peer needs complete sets to merge and paginate exactly.
	defaultListLimit = 100
	maxListLimit     = 500
)

type server struct {
	a       *Archive
	opts    ServerOptions
	live    *Live
	node    *mesh.Node
	cq      *cq.Engine
	limiter *rateLimiter

	mRequests, mErrors          *obs.Counter
	mIngestReqs, mQueryReqs     *obs.Counter
	mLiveReqs                   *obs.Counter
	mBytesIn, mBytesOut         *obs.Counter
	mThrottled                  *obs.Counter
	mFanouts, mProxied          *obs.Counter
	hLatency, hIngest, hQueries *obs.Histogram
}

// NewServer builds the archive's HTTP handler: mux, per-request
// timeout, body limits, tenancy, federation, instrumentation.
func NewServer(a *Archive, opts ServerOptions) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	if opts.Live == nil {
		opts.Live = NewLive(LiveOptions{Reg: opts.Reg})
	}
	s := &server{
		a:       a,
		opts:    opts,
		live:    opts.Live,
		node:    opts.Mesh,
		cq:      opts.CQ,
		limiter: newRateLimiter(opts.RateLimit, opts.RateBurst),

		mRequests:   opts.Reg.Counter("chamd_requests"),
		mErrors:     opts.Reg.Counter("chamd_errors"),
		mIngestReqs: opts.Reg.Counter("chamd_ingest_requests"),
		mQueryReqs:  opts.Reg.Counter("chamd_query_requests"),
		mLiveReqs:   opts.Reg.Counter("chamd_live_requests"),
		mBytesIn:    opts.Reg.Counter("chamd_bytes_in"),
		mBytesOut:   opts.Reg.Counter("chamd_bytes_out"),
		mThrottled:  opts.Reg.Counter("chamd_throttled"),
		mFanouts:    opts.Reg.Counter("chamd_mesh_fanouts"),
		mProxied:    opts.Reg.Counter("chamd_mesh_proxied"),
		hLatency:    opts.Reg.Histogram("chamd_latency_ns"),
		hIngest:     opts.Reg.Histogram("chamd_ingest_latency_ns"),
		hQueries:    opts.Reg.Histogram("chamd_query_latency_ns"),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("PUT /runs", s.handlePut)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/stats", s.handleStats)
	mux.HandleFunc("PUT /runs/{id}/edges", s.handleEdgesPut)
	mux.HandleFunc("GET /runs/{id}/edges", s.handleEdgesGet)
	mux.HandleFunc("GET /runs/{id}/waves", s.handleWaves)
	mux.HandleFunc("GET /runs/{a}/diff/{b}", s.handleDiff)
	mux.HandleFunc("POST /live/sessions/{id}/deltas", s.handleLiveDeltas)
	mux.HandleFunc("GET /live/sessions", s.handleLiveList)
	mux.HandleFunc("GET /live/sessions/{id}", s.handleLiveGet)
	mux.HandleFunc("GET /live/sessions/{id}/watch", s.handleLiveWatch)
	if s.cq != nil {
		mux.HandleFunc("PUT /cq", s.handleCQPut)
		mux.HandleFunc("GET /cq", s.handleCQList)
		mux.HandleFunc("DELETE /cq/{name}", s.handleCQDelete)
		mux.HandleFunc("GET /cq/events", s.handleCQEvents)
		mux.HandleFunc("POST /cq/events", s.handleCQEventPost)
	}
	mux.HandleFunc("GET /mesh/manifest", s.handleMeshManifest)
	mux.HandleFunc("GET /mesh/status", s.handleMeshStatus)
	if s.node != nil {
		mux.HandleFunc("POST /mesh/sweep", s.handleMeshSweep)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if opts.Metrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}

	instrumented := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mRequests.Inc()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		if code, retry := s.admit(r); code != 0 {
			if retry > 0 {
				cw.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds()+0.5)))
			}
			s.mThrottled.Inc()
			http.Error(cw, "chamd: tenant rate limit exceeded", code)
		} else {
			mux.ServeHTTP(cw, r)
		}
		s.hLatency.Observe(time.Since(start).Nanoseconds())
		s.mBytesOut.Add(uint64(cw.bytes))
		if cw.status >= 400 {
			s.mErrors.Inc()
		}
	})
	return http.TimeoutHandler(instrumented, opts.RequestTimeout, "chamd: request timed out\n")
}

// forwarded reports whether a request is trusted intra-mesh traffic.
// Under a mesh started with a shared secret (-mesh-secret), a bare
// X-Cham-Mesh header is not enough — the matching key must ride along,
// so external clients cannot claim intra-mesh trust. Without a secret
// (or without a mesh at all) the header is honored cooperatively; see
// docs/STORE.md, "Trust model".
func (s *server) forwarded(r *http.Request) bool {
	if s.node != nil {
		return s.node.Authorized(r)
	}
	return mesh.Forwarded(r)
}

// repair reports whether a request is a trusted anti-entropy pull.
func (s *server) repair(r *http.Request) bool {
	return s.forwarded(r) && mesh.Repair(r)
}

// admit applies the per-tenant rate limit. Intra-mesh traffic and
// probes are exempt; an invalid tenant header is handled later by the
// route handler (tenantOf), not here.
func (s *server) admit(r *http.Request) (code int, retry time.Duration) {
	if s.limiter == nil || s.forwarded(r) {
		return 0, 0
	}
	switch r.URL.Path {
	case "/healthz", "/metrics":
		return 0, 0
	}
	tenant, err := NormalizeTenant(r.Header.Get(mesh.HeaderTenant))
	if err != nil {
		return 0, 0
	}
	if ok, wait := s.limiter.allow(tenant); !ok {
		return http.StatusTooManyRequests, wait
	}
	return 0, 0
}

// tenantOf extracts and validates the request's tenant, writing the
// 400 itself on a bad name.
func (s *server) tenantOf(w http.ResponseWriter, r *http.Request) (string, bool) {
	tenant, err := NormalizeTenant(r.Header.Get(mesh.HeaderTenant))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return tenant, true
}

// countingWriter tracks status and body bytes for instrumentation.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	c.status = code
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("chamd: "+format, args...), code)
}

func failCode(err error) int {
	if errors.Is(err, ErrQuotaExceeded) {
		return http.StatusTooManyRequests
	}
	if strings.Contains(err.Error(), "not found") {
		return http.StatusNotFound
	}
	if strings.Contains(err.Error(), "ambiguous") {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// readBody drains a possibly-gzipped request body under the size cap,
// failing the request itself on error (nil return means handled).
func (s *server) readBody(w http.ResponseWriter, r *http.Request) []byte {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer body.Close()
	var in io.Reader = body
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "gzip body: %v", err)
			return nil
		}
		defer zr.Close()
		in = zr
	default:
		s.fail(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q", enc)
		return nil
	}
	payload, err := io.ReadAll(in)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
			return nil
		}
		s.fail(w, http.StatusBadRequest, "read body: %v", err)
		return nil
	}
	s.mBytesIn.Add(uint64(len(payload)))
	return payload
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.mIngestReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	payload := s.readBody(w, r)
	if payload == nil {
		return
	}
	f, err := trace.ReadAny(bytes.NewReader(payload))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "store: ingest: %v", err)
		return
	}
	canon, id, err := Encode(f)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	if s.node != nil && !s.forwarded(r) {
		s.fanoutPut(w, r, tenant, f, canon, id, start)
		return
	}

	run, created, err := s.ingestLocal(tenant, f, canon, id, !s.repair(r))
	if err != nil {
		if errors.Is(err, ErrQuotaExceeded) {
			w.Header().Set("Retry-After", "60")
		}
		s.fail(w, failCode(err), "%v", err)
		return
	}
	s.hIngest.Observe(time.Since(start).Nanoseconds())
	s.writeRun(w, run, created)
}

// ingestLocal stores the canonical payload and, when this peer is the
// run's primary owner (or there is no mesh), evaluates continuous
// queries against it. Repair ingests pass evaluate=false: anti-entropy
// must converge replicas without re-firing gates.
func (s *server) ingestLocal(tenant string, f *trace.File, canon []byte, id string, evaluate bool) (Run, bool, error) {
	run, created, err := s.a.ingest(tenant, f, canon, id)
	if err != nil {
		return Run{}, false, err
	}
	if evaluate && created && s.cq != nil && (s.node == nil || s.node.IsPrimary(id)) {
		s.cq.Evaluate(tenant, id, f)
	}
	return run, created, nil
}

func (s *server) writeRun(w http.ResponseWriter, run Run, created bool) {
	w.Header().Set("ETag", `"`+run.ID+`"`)
	w.Header().Set("Location", "/runs/"+run.ID)
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(run) //nolint:errcheck — client gone is fine
}

// fanoutPut replicates an edge ingest to the run's R owners. Self
// ingests directly; remote owners get a forwarded PUT. A dead remote
// owner is tolerated by ingesting locally as a fallback replica — the
// anti-entropy sweep moves the bytes onto the ring later — so a write
// succeeds as long as any peer can hold it.
func (s *server) fanoutPut(w http.ResponseWriter, r *http.Request, tenant string, f *trace.File, canon []byte, id string, start time.Time) {
	s.mFanouts.Inc()
	owners := s.node.Owners(id)
	var run *Run
	created := false
	stored := 0
	quotaHits := 0
	remoteFailed := false
	var lastErr error

	for _, owner := range owners {
		if owner == s.node.Self() {
			rr, c, err := s.ingestLocal(tenant, f, canon, id, !s.repair(r))
			if err != nil {
				if errors.Is(err, ErrQuotaExceeded) {
					quotaHits++
					lastErr = err
					continue
				}
				s.fail(w, failCode(err), "%v", err)
				return
			}
			run, created, stored = &rr, created || c, stored+1
			continue
		}
		resp, err := s.node.Do(http.MethodPut, owner, "/runs", tenant, mesh.ForwardFanout,
			"application/octet-stream", bytes.NewReader(canon))
		if err != nil {
			remoteFailed = true
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusCreated:
			created = created || resp.StatusCode == http.StatusCreated
			stored++
			if run == nil {
				var rr Run
				if json.Unmarshal(body, &rr) == nil && rr.ID != "" {
					run = &rr
				}
			}
		case http.StatusTooManyRequests:
			quotaHits++
			lastErr = fmt.Errorf("%s: %s", owner, strings.TrimSpace(string(body)))
		default:
			remoteFailed = true
			lastErr = fmt.Errorf("%s: %s: %s", owner, resp.Status, strings.TrimSpace(string(body)))
		}
	}

	if stored == 0 {
		if quotaHits > 0 && !remoteFailed {
			w.Header().Set("Retry-After", "60")
			s.fail(w, http.StatusTooManyRequests, "%v", lastErr)
			return
		}
		// Every owner is unreachable or full: last resort is this peer.
		rr, c, err := s.ingestLocal(tenant, f, canon, id, !s.repair(r))
		if err != nil {
			if errors.Is(err, ErrQuotaExceeded) {
				w.Header().Set("Retry-After", "60")
			}
			s.fail(w, failCode(err), "replicate %s: %v (owners: %v)", id[:12], err, lastErr)
			return
		}
		run, created = &rr, c
	}
	if run == nil {
		// Stored remotely but the owner's response didn't parse; build
		// the record locally — ingest metadata is deterministic.
		rr := *describe(f, canon, id)
		rr.Tenant = tenant
		run = &rr
	}
	s.hIngest.Observe(time.Since(start).Nanoseconds())
	s.writeRun(w, *run, created)
}

// proxyHeaders are the request headers a transparent peer proxy
// forwards and the response headers it relays back.
var proxyReqHeaders = []string{"Accept", "Accept-Encoding", "If-None-Match"}
var proxyRespHeaders = []string{"Content-Type", "Content-Encoding", "ETag", "Content-Length",
	"X-Raw-Bytes", "X-Stored-Bytes", "Location"}

// proxyRead forwards a GET this peer cannot serve to the run's owners
// (then the rest of the fleet) and relays the first definitive
// response. It reports whether the request was handled.
func (s *server) proxyRead(w http.ResponseWriter, r *http.Request, tenant, id, path string) bool {
	if s.node == nil || s.forwarded(r) {
		return false
	}
	target := path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	for _, peer := range ownersThenRest(s.node, id) {
		req, err := http.NewRequest(http.MethodGet, peer+target, nil)
		if err != nil {
			return false
		}
		s.node.Decorate(req, tenant, mesh.ForwardFanout)
		for _, h := range proxyReqHeaders {
			if v := r.Header.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
		resp, err := s.node.Send(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500 {
			resp.Body.Close()
			continue
		}
		for _, h := range proxyRespHeaders {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck — client gone is fine
		resp.Body.Close()
		s.mProxied.Inc()
		return true
	}
	return false
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	tv := s.a.Tenant(tenant)

	run, err := tv.Resolve(id)
	if err != nil {
		if strings.Contains(err.Error(), "not found") && s.proxyRead(w, r, tenant, id, "/runs/"+id) {
			return
		}
		s.fail(w, failCode(err), "%v", err)
		return
	}
	etag := `"` + run.ID + `"`
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	asJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if asJSON {
		f, _, err := tv.Get(run.ID)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", "application/json")
		if err := f.Write(w); err != nil {
			s.mErrors.Inc()
		}
		s.hQueries.Observe(time.Since(start).Nanoseconds())
		return
	}

	wantGzip := strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	var payload []byte
	if wantGzip && run.Gzip {
		// The segment is already a gzip frame; stream it as the
		// transfer encoding without recompressing.
		payload, _, err = tv.StoredPayload(run.ID)
		if err == nil {
			w.Header().Set("Content-Encoding", "gzip")
		}
	} else {
		payload, _, err = tv.Payload(run.ID)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Raw-Bytes", strconv.FormatInt(run.RawBytes, 10))
	w.Header().Set("X-Stored-Bytes", strconv.FormatInt(run.StoredBytes, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload) //nolint:errcheck — client gone is fine
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

// ListResponse is the JSON shape of GET /runs. Next, when present, is
// the offset of the page after this one; its absence means the listing
// is exhausted.
type ListResponse struct {
	Total  int   `json:"total"`
	Offset int   `json:"offset"`
	Next   int   `json:"next,omitempty"`
	Runs   []Run `json:"runs"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	q := Query{Benchmark: r.URL.Query().Get("benchmark"), SigSet: r.URL.Query().Get("sigset")}
	var err error
	if v := r.URL.Query().Get("p"); v != "" {
		if q.P, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, "p: %v", err)
			return
		}
	}
	if v := r.URL.Query().Get("sig"); v != "" {
		// Signatures print as hex (chamdump -sites); accept 0x-prefixed
		// hex, bare hex, or decimal.
		if q.Sig, err = parseSig(v); err != nil {
			s.fail(w, http.StatusBadRequest, "sig: %v", err)
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if q.Limit, err = strconv.Atoi(v); err != nil || q.Limit < 0 {
			s.fail(w, http.StatusBadRequest, "limit: %q", v)
			return
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		if q.Offset, err = strconv.Atoi(v); err != nil || q.Offset < 0 {
			s.fail(w, http.StatusBadRequest, "offset: %q", v)
			return
		}
	}

	fwd := s.forwarded(r)
	if !fwd {
		// Server-side page bounds: an unspecified limit gets the
		// documented default, an oversized one is clamped.
		if q.Limit == 0 || q.Limit > maxListLimit {
			if q.Limit > maxListLimit {
				q.Limit = maxListLimit
			} else {
				q.Limit = defaultListLimit
			}
		}
	}

	var runs []Run
	var total int
	if s.node != nil && !fwd {
		runs, total, err = s.scatterList(tenant, q, r.URL.Query())
		if err != nil {
			s.fail(w, http.StatusBadGateway, "%v", err)
			return
		}
	} else {
		runs, total = s.a.list(tenant, q)
	}

	resp := ListResponse{Total: total, Offset: q.Offset, Runs: runs}
	if resp.Runs == nil {
		resp.Runs = []Run{}
	}
	if next := q.Offset + len(resp.Runs); len(resp.Runs) > 0 && next < total {
		resp.Next = next
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

// scatterList merges the whole fleet's view of a tenant's runs:
// local set plus every peer's (forwarded, uncapped) listing, deduped
// by content address, newest first, then paginated exactly like a
// single-archive listing. An unreachable peer degrades the listing to
// the reachable subset rather than failing it — at R>=2 every run is
// still visible through a surviving owner.
func (s *server) scatterList(tenant string, q Query, params map[string][]string) ([]Run, int, error) {
	full := q
	full.Limit, full.Offset = 0, 0
	local, _ := s.a.list(tenant, full)
	byID := make(map[string]Run, len(local))
	for _, r := range local {
		byID[r.ID] = r
	}

	query := ""
	for _, k := range []string{"benchmark", "p", "sig", "sigset"} {
		if vs, ok := params[k]; ok && len(vs) > 0 && vs[0] != "" {
			if query != "" {
				query += "&"
			}
			query += k + "=" + vs[0]
		}
	}
	path := "/runs"
	if query != "" {
		path += "?" + query
	}
	for _, peer := range s.node.Others() {
		resp, err := s.node.Do(http.MethodGet, peer, path, tenant, mesh.ForwardFanout, "", nil)
		if err != nil {
			continue
		}
		body, err := readOK(resp)
		if err != nil {
			continue
		}
		var lr ListResponse
		if json.Unmarshal(body, &lr) != nil {
			continue
		}
		for _, r := range lr.Runs {
			if _, seen := byID[r.ID]; !seen {
				byID[r.ID] = r
			}
		}
	}

	merged := make([]Run, 0, len(byID))
	for _, r := range byID {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].Ingested.Equal(merged[j].Ingested) {
			return merged[i].Ingested.After(merged[j].Ingested)
		}
		return merged[i].ID < merged[j].ID
	})
	total := len(merged)
	if q.Offset > 0 {
		if q.Offset >= len(merged) {
			return nil, total, nil
		}
		merged = merged[q.Offset:]
	}
	if q.Limit > 0 && len(merged) > q.Limit {
		merged = merged[:q.Limit]
	}
	return merged, total, nil
}

func parseSig(v string) (uint64, error) {
	if strings.HasPrefix(v, "0x") || strings.HasPrefix(v, "0X") {
		return strconv.ParseUint(v[2:], 16, 64)
	}
	if n, err := strconv.ParseUint(v, 10, 64); err == nil {
		return n, nil
	}
	return strconv.ParseUint(v, 16, 64)
}

// StatsResponse is the JSON shape of GET /runs/{id}/stats: the
// compressed-domain analysis report, computed by walking the stored RSD
// tree once (internal/zan) — the archive never expands the trace to
// serve it.
type StatsResponse struct {
	ID     string      `json:"id"`
	Report *zan.Report `json:"report"`
}

// notModified handles If-None-Match against a computed ETag, setting
// the header either way and reporting whether a 304 was written.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	tv := s.a.Tenant(tenant)
	run, err := tv.Resolve(id)
	if err != nil {
		if strings.Contains(err.Error(), "not found") && s.proxyRead(w, r, tenant, id, "/runs/"+id+"/stats") {
			return
		}
		s.fail(w, failCode(err), "%v", err)
		return
	}
	// The report is a pure function of the immutable payload, so the
	// content address is its ETag.
	if notModified(w, r, `"stats-`+run.ID+`"`) {
		return
	}
	f, _, err := tv.Get(run.ID)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	rep, err := zan.Analyze(f, zan.Options{})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StatsResponse{ID: run.ID, Report: rep}) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func (s *server) handleEdgesPut(w http.ResponseWriter, r *http.Request) {
	s.mIngestReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	payload := s.readBody(w, r)
	if payload == nil {
		return
	}
	id := r.PathValue("id")
	if s.node != nil && !s.forwarded(r) {
		s.fanoutEdges(w, tenant, id, payload)
		return
	}
	n, run, err := s.a.Tenant(tenant).PutEdges(id, payload)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	s.writeEdgesResult(w, run.ID, n)
}

func (s *server) writeEdgesResult(w http.ResponseWriter, id string, edges int) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		ID    string `json:"id"`
		Edges int    `json:"edges"`
	}{ID: id, Edges: edges})
}

// fanoutEdges replicates an edge-sidecar PUT across the mesh, mirroring
// fanoutPut: the sidecar lands on every peer that holds the run (its
// owners, plus any off-ring fallback replica), so a push through a
// non-owner peer succeeds and the sidecar survives an owner's death at
// R>=2. Peers that own the run but currently lack it converge via the
// anti-entropy sweep, which replicates sidecars alongside runs.
func (s *server) fanoutEdges(w http.ResponseWriter, tenant, id string, payload []byte) {
	s.mFanouts.Inc()
	// Validate once at the edge so a malformed sidecar fails 400
	// regardless of where the run lives.
	if _, err := obs.ReadEdges(bytes.NewReader(payload)); err != nil {
		s.fail(w, http.StatusBadRequest, "store: edges: %v", err)
		return
	}

	resultID, resultEdges := "", 0
	stored := 0
	var lastErr error

	// Local first: a hit resolves a prefix reference to the full
	// content address, so the ring walk below targets the true owners.
	if n, run, err := s.a.Tenant(tenant).PutEdges(id, payload); err == nil {
		resultID, resultEdges = run.ID, n
		stored++
		id = run.ID
	} else if !strings.Contains(err.Error(), "not found") {
		s.fail(w, failCode(err), "%v", err)
		return
	}

	for _, peer := range ownersThenRest(s.node, id) {
		resp, err := s.node.Do(http.MethodPut, peer, "/runs/"+id+"/edges", tenant, mesh.ForwardFanout,
			"application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			stored++
			if resultID == "" {
				var out struct {
					ID    string `json:"id"`
					Edges int    `json:"edges"`
				}
				if json.Unmarshal(body, &out) == nil && out.ID != "" {
					resultID, resultEdges = out.ID, out.Edges
				}
			}
		case http.StatusNotFound:
			// That peer simply doesn't hold the run.
		default:
			lastErr = fmt.Errorf("%s: %s: %s", peer, resp.Status, strings.TrimSpace(string(body)))
		}
	}

	if stored == 0 {
		if lastErr != nil {
			s.fail(w, http.StatusBadGateway, "edges %s: no peer stored the sidecar: %v", id, lastErr)
			return
		}
		s.fail(w, http.StatusNotFound, "store: run %q not found", id)
		return
	}
	s.writeEdgesResult(w, resultID, resultEdges)
}

func (s *server) handleEdgesGet(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	payload, _, err := s.a.Tenant(tenant).EdgesPayload(id)
	if err != nil {
		if strings.Contains(err.Error(), "not found") && s.proxyRead(w, r, tenant, id, "/runs/"+id+"/edges") {
			return
		}
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload) //nolint:errcheck — client gone is fine
}

// WavesResponse is the JSON shape of GET /runs/{id}/waves: the idle-wave
// detector report computed server-side over the run's edge sidecar.
type WavesResponse struct {
	ID     string       `json:"id"`
	Report *wave.Report `json:"report"`
}

func (s *server) handleWaves(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	cols := 0
	if v := r.URL.Query().Get("cols"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad cols %q: want a non-negative integer", v)
			return
		}
		cols = n
	}
	id := r.PathValue("id")
	tv := s.a.Tenant(tenant)
	sidecar, run, err := tv.EdgesPayload(id)
	if err != nil {
		if strings.Contains(err.Error(), "not found") && s.proxyRead(w, r, tenant, id, "/runs/"+id+"/waves") {
			return
		}
		s.fail(w, failCode(err), "%v", err)
		return
	}
	// Unlike the trace payload the sidecar is replaceable, so the ETag
	// must cover its bytes (plus the detector's cols knob), not just
	// the run identity.
	sum := sha256.New()
	fmt.Fprintf(sum, "%s|%d|", run.ID, cols)
	sum.Write(sidecar)
	if notModified(w, r, `"waves-`+hex.EncodeToString(sum.Sum(nil)[:16])+`"`) {
		return
	}
	rep, _, err := tv.Waves(run.ID, cols)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(WavesResponse{ID: run.ID, Report: rep}) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

// DiffResponse is the JSON shape of GET /runs/{a}/diff/{b}: the
// chamstat per-site divergence verdict computed server-side.
type DiffResponse struct {
	A              string           `json:"a"`
	B              string           `json:"b"`
	Equivalent     bool             `json:"equivalent"`
	Reason         string           `json:"reason,omitempty"`
	TolerateRanks  []int            `json:"tolerate_ranks,omitempty"`
	MissingInA     int              `json:"missing_in_a,omitempty"`
	MissingInB     int              `json:"missing_in_b,omitempty"`
	EventDeltas    map[string]int64 `json:"event_deltas,omitempty"`
	SiteCountDelta map[string]int64 `json:"site_count_deltas,omitempty"`
}

func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	start := time.Now()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	// Resolve each side wherever it lives: locally first, then its
	// owner peers. Two federated runs need not be co-located on any
	// single peer, so a strictly-local lookup would 404 runs the mesh
	// holds. Forwarded requests stay local (loop guard).
	node := s.node
	if s.forwarded(r) {
		node = nil
	}
	lookup := FedLookup(s.a, node)
	fa, idA, err := lookup(tenant, r.PathValue("a"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	fb, idB, err := lookup(tenant, r.PathValue("b"))
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}

	var tol []int
	switch spec := r.URL.Query().Get("tolerate"); spec {
	case "":
	case "auto":
		set := map[int]bool{}
		for _, rk := range fa.Retired {
			set[rk] = true
		}
		for _, rk := range fb.Retired {
			set[rk] = true
		}
		for rk := range set {
			tol = append(tol, rk)
		}
		sort.Ints(tol)
	default:
		rs, err := fault.ParseRankSet(spec)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "tolerate: %v", err)
			return
		}
		p := fa.P
		if fb.P > p {
			p = fb.P
		}
		tol = rs.Ranks(p)
	}

	d := analysis.CompareWith(fa, fb, analysis.CompareOpts{TolerateRanks: tol})
	resp := DiffResponse{
		A:             idA,
		B:             idB,
		Equivalent:    d.Equivalent(),
		TolerateRanks: tol,
		MissingInA:    len(d.MissingInA),
		MissingInB:    len(d.MissingInB),
	}
	if !d.Equivalent() {
		resp.Reason = d.Reason()
	}
	if len(d.EventDeltas) > 0 {
		resp.EventDeltas = map[string]int64{}
		for rank, delta := range d.EventDeltas {
			resp.EventDeltas[strconv.Itoa(rank)] = delta
		}
	}
	if len(d.SiteCountDeltas) > 0 {
		resp.SiteCountDelta = map[string]int64{}
		for site, delta := range d.SiteCountDeltas {
			resp.SiteCountDelta[fmt.Sprintf("%#x", site)] = delta
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
	s.hQueries.Observe(time.Since(start).Nanoseconds())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.opts.Reg.Snapshot()
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	snap.WritePrometheus(w) //nolint:errcheck
}

// --- live telemetry endpoints ---

func (s *server) handleLiveDeltas(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer body.Close()
	var batch []obs.Delta
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "delta batch: %v", err)
		return
	}
	ackSeq, err := s.live.ApplyT(tenant, id, batch)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(obs.Ack{AckSeq: ackSeq}) //nolint:errcheck
}

func (s *server) handleLiveList(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	resp := struct {
		Sessions []LiveSummary `json:"sessions"`
	}{Sessions: s.live.ListT(tenant)}
	if resp.Sessions == nil {
		resp.Sessions = []LiveSummary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

func (s *server) handleLiveGet(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	withMetrics := r.URL.Query().Get("metrics") == "1"
	v, err := s.live.ViewT(tenant, r.PathValue("id"), withMetrics)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (s *server) handleLiveWatch(w http.ResponseWriter, r *http.Request) {
	s.mLiveReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	var after uint64
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "version: %q", v)
			return
		}
		after = n
	}
	wait, ok := s.longPollWait(w, r)
	if !ok {
		return
	}
	v, err := s.live.WatchT(tenant, r.PathValue("id"), after, wait)
	if err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// longPollWait resolves the ?timeout= parameter against the server's
// request timeout (the whole handler chain sits under
// http.TimeoutHandler, so the poll must resolve inside it).
func (s *server) longPollWait(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	maxWait := s.opts.RequestTimeout * 3 / 4
	wait := maxWait
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.fail(w, http.StatusBadRequest, "timeout: %q", v)
			return 0, false
		}
		if d < wait {
			wait = d
		}
	}
	return wait, true
}

// --- continuous-query endpoints ---

func (s *server) handleCQPut(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	payload := s.readBody(w, r)
	if payload == nil {
		return
	}
	var spec cq.Spec
	if err := json.Unmarshal(payload, &spec); err != nil {
		s.fail(w, http.StatusBadRequest, "cq spec: %v", err)
		return
	}
	spec.Tenant = tenant
	stored, err := s.cq.Register(spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Registrations fan out to the whole fleet (every peer can be the
	// primary owner of a future ingest); anti-entropy re-syncs any peer
	// that was down. Best-effort by design: concurrent, on the
	// short-timeout broadcast client, so a partitioned peer cannot
	// stall the registration for the full request budget.
	if s.node != nil && !s.forwarded(r) {
		body, _ := json.Marshal(stored)
		broadcast(s.node, func(peer string) (*http.Response, error) {
			return s.node.Broadcast(http.MethodPut, peer, "/cq", tenant, mesh.ForwardFanout,
				"application/json", bytes.NewReader(body))
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(stored) //nolint:errcheck
}

func (s *server) handleCQList(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	var specs []cq.Spec
	if r.URL.Query().Get("all") == "1" && s.forwarded(r) {
		// Anti-entropy sync path: a sweeping peer needs every tenant's
		// registrations; external clients only ever see their own.
		specs = s.cq.All()
	} else {
		specs = s.cq.List(tenant)
	}
	if specs == nil {
		specs = []cq.Spec{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(specs) //nolint:errcheck
}

func (s *server) handleCQDelete(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := s.cq.Delete(tenant, name); err != nil {
		s.fail(w, failCode(err), "%v", err)
		return
	}
	if s.node != nil && !s.forwarded(r) {
		// Peers that miss the broadcast converge anyway: Delete leaves a
		// tombstone whose stamp out-ranks the live spec, and the
		// anti-entropy merge propagates it instead of resurrecting.
		broadcast(s.node, func(peer string) (*http.Response, error) {
			return s.node.Broadcast(http.MethodDelete, peer, "/cq/"+name, tenant, mesh.ForwardFanout, "", nil)
		})
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleCQEvents(w http.ResponseWriter, r *http.Request) {
	s.mQueryReqs.Inc()
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	var view cq.FeedView
	if v := r.URL.Query().Get("version"); v != "" {
		after, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "version: %q", v)
			return
		}
		wait, ok := s.longPollWait(w, r)
		if !ok {
			return
		}
		view = s.cq.Watch(tenant, after, wait)
	} else {
		view = s.cq.Feed(tenant)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(view) //nolint:errcheck
}

// handleCQEventPost receives a peer's event broadcast. Forwarded-only
// (key-checked under -mesh-secret): external clients cannot forge feed
// entries on a secured mesh; without a secret the gate is cooperative
// (docs/STORE.md, "Trust model").
func (s *server) handleCQEventPost(w http.ResponseWriter, r *http.Request) {
	if !s.forwarded(r) {
		s.fail(w, http.StatusForbidden, "cq event broadcast is mesh-internal")
		return
	}
	payload := s.readBody(w, r)
	if payload == nil {
		return
	}
	var ev cq.Event
	if err := json.Unmarshal(payload, &ev); err != nil {
		s.fail(w, http.StatusBadRequest, "cq event: %v", err)
		return
	}
	s.cq.Append(ev)
	w.WriteHeader(http.StatusNoContent)
}

// --- mesh endpoints ---

func (s *server) handleMeshManifest(w http.ResponseWriter, r *http.Request) {
	entries := s.a.MeshTarget().Entries()
	if s.node != nil && s.node.Secured() && !s.forwarded(r) {
		// On a secured mesh the full cross-tenant manifest is reserved
		// for key-carrying peers; anyone else sees only their own
		// tenant's holdings.
		tenant, ok := s.tenantOf(w, r)
		if !ok {
			return
		}
		scoped := entries[:0]
		for _, e := range entries {
			if e.Tenant == tenant {
				scoped = append(scoped, e)
			}
		}
		entries = scoped
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Tenant != entries[j].Tenant {
			return entries[i].Tenant < entries[j].Tenant
		}
		return entries[i].ID < entries[j].ID
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(entries) //nolint:errcheck
}

// MeshStatus is the JSON shape of GET /mesh/status.
type MeshStatus struct {
	Self     string           `json:"self,omitempty"`
	Peers    []string         `json:"peers,omitempty"`
	Replicas int              `json:"replicas,omitempty"`
	Runs     int              `json:"runs"`
	Tenants  map[string]int64 `json:"tenants,omitempty"` // tenant -> used raw bytes
}

func (s *server) handleMeshStatus(w http.ResponseWriter, r *http.Request) {
	st := MeshStatus{Runs: s.a.Len(), Tenants: map[string]int64{}}
	for _, t := range s.a.Tenants() {
		st.Tenants[t] = s.a.Tenant(t).Used()
	}
	if s.node != nil {
		st.Self = s.node.Self()
		st.Peers = s.node.Peers()
		st.Replicas = s.node.Replicas()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

func (s *server) handleMeshSweep(w http.ResponseWriter, r *http.Request) {
	rep, err := s.node.Sweep(s.a.MeshTarget(), s.cq)
	w.Header().Set("Content-Type", "application/json")
	out := struct {
		mesh.SweepReport
		Error string `json:"error,omitempty"`
	}{SweepReport: rep}
	if err != nil {
		out.Error = err.Error()
	}
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
