package store

// The storm test: stormPushers concurrent writers blast unique traces
// at a 3-peer mesh through all three edges at once. The mesh must not
// lose a single run (every ID resolvable afterwards, exactly R copies
// placed) and tail latency must stay bounded — the replication fan-out
// serializes on per-archive locks, so this is the test that catches a
// lock held across a peer RPC.

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestFedStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short mode")
	}
	peers := startMesh(t, 3, meshConfig{replicas: 2})

	type result struct {
		id      string
		latency time.Duration
		err     error
	}
	results := make([]result, stormPushers)
	var wg sync.WaitGroup
	wg.Add(stormPushers)
	start := make(chan struct{})
	for i := 0; i < stormPushers; i++ {
		go func(i int) {
			defer wg.Done()
			f := mkTrace(4, fmt.Sprintf("storm-%d", i%16), uint64(1000+i))
			canon, id, err := Encode(f)
			if err != nil {
				results[i] = result{err: err}
				return
			}
			<-start
			t0 := time.Now()
			code, body, _ := tenantDo(t, http.MethodPut, peers[i%3].url+"/runs", "", canon, nil)
			lat := time.Since(t0)
			if code != http.StatusOK && code != http.StatusCreated {
				results[i] = result{err: fmt.Errorf("PUT: %d: %s", code, body)}
				return
			}
			results[i] = result{id: id, latency: lat}
		}(i)
	}
	close(start)
	wg.Wait()

	want := map[string]bool{}
	latencies := make([]time.Duration, 0, stormPushers)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("pusher %d: %v", i, r.err)
		}
		want[r.id] = true
		latencies = append(latencies, r.latency)
	}

	// No lost runs: the scatter-gather listing accounts for every ID.
	got := map[string]bool{}
	offset := 0
	for {
		lr, err := FetchRuns(peers[0].url, "", maxListLimit, offset)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range lr.Runs {
			got[r.ID] = true
		}
		if lr.Next == 0 {
			break
		}
		offset = lr.Next
	}
	if len(got) != len(want) {
		t.Fatalf("scatter list sees %d runs, pushed %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("run %s lost", id[:12])
		}
	}

	// Exact placement: with every peer alive the fleet holds R copies
	// of each run, no more (no spurious fallbacks), no fewer.
	totalCopies := 0
	for _, p := range peers {
		st, err := FetchMeshStatus(p.url)
		if err != nil {
			t.Fatal(err)
		}
		totalCopies += st.Runs
	}
	if wantCopies := 2 * len(want); totalCopies != wantCopies {
		t.Fatalf("fleet holds %d copies of %d runs, want %d", totalCopies, len(want), wantCopies)
	}

	// Bounded tail latency. The bound is deliberately loose — it exists
	// to catch collapse (a lock held across a peer RPC turns the storm
	// serial and blows straight past it), not to benchmark.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	t.Logf("storm: %d pushers, p50=%v p99=%v max=%v", stormPushers, p50, p99, latencies[len(latencies)-1])
	if p99 > 30*time.Second {
		t.Fatalf("p99 PUT latency %v exceeds 30s bound", p99)
	}
}
