package store

// Watcher-side live telemetry: the HTTP client chamtop -follow uses to
// list, fetch, and long-poll live sessions, and the text renderer that
// turns a SessionView into the refreshing terminal table.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

func liveBase(base string) string {
	return strings.TrimSuffix(base, "/") + "/live/sessions"
}

func getJSON(u string, out any) error {
	resp, err := clientGet(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// FetchLiveSessions lists the daemon's in-flight sessions.
func FetchLiveSessions(base string) ([]LiveSummary, error) {
	var resp struct {
		Sessions []LiveSummary `json:"sessions"`
	}
	if err := getJSON(liveBase(base), &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// FetchLiveView fetches one session's current view.
func FetchLiveView(base, id string) (*SessionView, error) {
	var v SessionView
	if err := getJSON(liveBase(base)+"/"+url.PathEscape(id), &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// WatchLiveView long-polls the session until its version exceeds after
// or timeout elapses server-side, returning the (possibly unchanged)
// view.
func WatchLiveView(base, id string, after uint64, timeout time.Duration) (*SessionView, error) {
	u := fmt.Sprintf("%s/%s/watch?version=%d&timeout=%s",
		liveBase(base), url.PathEscape(id), after, url.QueryEscape(timeout.String()))
	var v SessionView
	if err := getJSON(u, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// RenderSessionView writes the chamtop -follow frame: a session header,
// a per-rank progress table with flags, and the recent detector events.
func RenderSessionView(w io.Writer, v *SessionView) {
	state := "live"
	if v.Final {
		state = "final"
	}
	fmt.Fprintf(w, "session %s  %s  P=%d  seq=%d  deltas=%d  [%s]\n",
		v.Session, v.Benchmark, v.P, v.LastSeq, v.Deltas, state)

	if len(v.Windows) > 0 {
		last := v.Windows[len(v.Windows)-1]
		fmt.Fprintf(w, "window %d  arrive-skew %s  median-compute %s  slowest rank %d (%s)\n",
			last.Window, fmtNs(last.ArriveSkewNs), fmtNs(last.MedianComputeNs),
			last.SlowestRank, fmtNs(last.MaxComputeNs))
	}

	if len(v.Ranks) > 0 {
		fmt.Fprintf(w, "%6s %9s %14s %14s %12s  %s\n",
			"RANK", "WINDOWS", "ARRIVE-VT", "COMPUTE-VT", "OPS", "FLAGS")
		for _, rs := range v.Ranks {
			flags := strings.Join(rs.Flags, ",")
			if flags == "" {
				flags = "-"
			}
			fmt.Fprintf(w, "%6d %9d %14s %14s %12d  %s\n",
				rs.Rank, rs.Windows, fmtNs(rs.ArriveVT), fmtNs(rs.ComputeVT), rs.Ops, flags)
		}
	}

	if len(v.Stragglers) > 0 {
		strs := make([]int, len(v.Stragglers))
		copy(strs, v.Stragglers)
		sort.Ints(strs)
		parts := make([]string, len(strs))
		for i, r := range strs {
			parts[i] = fmt.Sprintf("%d", r)
		}
		fmt.Fprintf(w, "stragglers: %s\n", strings.Join(parts, " "))
	}

	if n := len(v.LiveEvents); n > 0 {
		fmt.Fprintln(w, "events:")
		start := 0
		if n > 8 {
			start = n - 8
		}
		for _, ev := range v.LiveEvents[start:] {
			at := time.UnixMilli(ev.AtUnixMs).Format("15:04:05.000")
			switch {
			case ev.Rank < 0:
				fmt.Fprintf(w, "  %s %-16s %s\n", at, ev.Kind, ev.Note)
			case ev.Flag != "":
				fmt.Fprintf(w, "  %s %-16s rank %d [%s] %s\n", at, ev.Kind, ev.Rank, ev.Flag, ev.Note)
			default:
				fmt.Fprintf(w, "  %s %-16s rank %d %s\n", at, ev.Kind, ev.Rank, ev.Note)
			}
		}
	}
}

// fmtNs renders a virtual-time nanosecond count compactly.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
