package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/obs"
)

// fakeClock is an injectable wall clock for deterministic heartbeat
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func ranksDelta(seq uint64, ranks ...obs.RankProgress) obs.Delta {
	return obs.Delta{Seq: seq, P: len(ranks), Ranks: ranks}
}

// TestLiveSlowFlag: a rank with >2x the median cumulative compute is
// flagged slow and produces one straggler event.
func TestLiveSlowFlag(t *testing.T) {
	clk := newFakeClock()
	l := NewLive(LiveOptions{Now: clk.now})
	d := ranksDelta(1,
		obs.RankProgress{Rank: 0, Windows: 5, ComputeVT: 100, Ops: 50},
		obs.RankProgress{Rank: 1, Windows: 5, ComputeVT: 110, Ops: 50},
		obs.RankProgress{Rank: 2, Windows: 5, ComputeVT: 105, Ops: 50},
		obs.RankProgress{Rank: 3, Windows: 5, ComputeVT: 420, Ops: 50},
	)
	if _, err := l.Apply("s1", []obs.Delta{d}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	v, err := l.View("s1", false)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if len(v.Stragglers) != 1 || v.Stragglers[0] != 3 {
		t.Fatalf("stragglers = %v, want [3]", v.Stragglers)
	}
	if !hasFlag(v.Ranks[3].Flags, FlagSlow) {
		t.Fatalf("rank 3 flags = %v, want slow", v.Ranks[3].Flags)
	}
	if n := countEvents(v.LiveEvents, LiveEventStraggler, FlagSlow); n != 1 {
		t.Fatalf("straggler(slow) events = %d, want 1", n)
	}
	// Re-reads don't duplicate the sticky event.
	v, _ = l.View("s1", false)
	if n := countEvents(v.LiveEvents, LiveEventStraggler, FlagSlow); n != 1 {
		t.Fatalf("straggler events duplicated on re-read: %d", n)
	}
}

// TestLiveBehindAndDeparted: a crash-frozen rank falls behind the
// median window count; a departed rank is flagged departed.
func TestLiveBehindAndDeparted(t *testing.T) {
	clk := newFakeClock()
	l := NewLive(LiveOptions{Now: clk.now})
	if _, err := l.Apply("s2", []obs.Delta{ranksDelta(1,
		obs.RankProgress{Rank: 0, Windows: 10, ComputeVT: 100, Ops: 99},
		obs.RankProgress{Rank: 1, Windows: 10, ComputeVT: 100, Ops: 99},
		obs.RankProgress{Rank: 2, Windows: 4, ComputeVT: 40, Ops: 30},
		obs.RankProgress{Rank: 3, Windows: 3, ComputeVT: 30, Ops: 20, Departed: true},
	)}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	v, err := l.View("s2", false)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if !hasFlag(v.Ranks[2].Flags, FlagBehind) {
		t.Fatalf("rank 2 flags = %v, want behind", v.Ranks[2].Flags)
	}
	if !hasFlag(v.Ranks[3].Flags, FlagDeparted) {
		t.Fatalf("rank 3 flags = %v, want departed", v.Ranks[3].Flags)
	}
	// The departed rank is excluded from the medians: with ranks 0/1 at
	// 10 and rank 2 at 4, the median over the living is 10.
	if len(v.Stragglers) != 2 {
		t.Fatalf("stragglers = %v, want two", v.Stragglers)
	}
}

// TestLiveMissedHeartbeat: a rank whose ops counter freezes is flagged
// stalled after HeartbeatTimeout of fake wall-clock, and produces a
// missed_heartbeat event — detected on read, with no shipper traffic.
func TestLiveMissedHeartbeat(t *testing.T) {
	clk := newFakeClock()
	l := NewLive(LiveOptions{Now: clk.now, HeartbeatTimeout: 2 * time.Second})
	apply := func(seq uint64, ops1 uint64) {
		if _, err := l.Apply("s3", []obs.Delta{ranksDelta(seq,
			obs.RankProgress{Rank: 0, Windows: seq, Ops: 10 * seq},
			obs.RankProgress{Rank: 1, Windows: 1, Ops: ops1},
		)}); err != nil {
			t.Fatalf("Apply(%d): %v", seq, err)
		}
	}
	apply(1, 7)
	clk.advance(time.Second)
	apply(2, 7) // rank 1's ops frozen, but only 1s elapsed: not yet stalled
	v, _ := l.View("s3", false)
	if hasFlag(v.Ranks[1].Flags, FlagStalled) {
		t.Fatalf("rank 1 stalled too early: %v", v.Ranks[1].Flags)
	}
	clk.advance(3 * time.Second)
	apply(3, 7)
	v, _ = l.View("s3", false)
	if !hasFlag(v.Ranks[1].Flags, FlagStalled) {
		t.Fatalf("rank 1 flags = %v, want stalled", v.Ranks[1].Flags)
	}
	if hasFlag(v.Ranks[0].Flags, FlagStalled) {
		t.Fatalf("rank 0 wrongly stalled: %v", v.Ranks[0].Flags)
	}
	if n := countEvents(v.LiveEvents, LiveEventMissedHeartbeat, FlagStalled); n != 1 {
		t.Fatalf("missed_heartbeat events = %d, want 1", n)
	}
	// A final session stops stalling (the run is over, silence is fine).
	if _, err := l.Apply("s3", []obs.Delta{{Seq: 4, Final: true}}); err != nil {
		t.Fatalf("final: %v", err)
	}
	clk.advance(time.Minute)
	v, _ = l.View("s3", false)
	if !v.Final {
		t.Fatal("session not final")
	}
	if hasFlag(v.Ranks[0].Flags, FlagStalled) {
		t.Fatalf("final session still stalling: %v", v.Ranks[0].Flags)
	}
}

// TestLiveSeqDedup: retried batches (duplicate seq) are applied once.
func TestLiveSeqDedup(t *testing.T) {
	l := NewLive(LiveOptions{Now: newFakeClock().now})
	d1 := ranksDelta(1, obs.RankProgress{Rank: 0, Windows: 1, Ops: 1})
	d2 := ranksDelta(2, obs.RankProgress{Rank: 0, Windows: 2, Ops: 2})
	ack, err := l.Apply("s4", []obs.Delta{d1, d2})
	if err != nil || ack != 2 {
		t.Fatalf("Apply = %d, %v", ack, err)
	}
	ack, err = l.Apply("s4", []obs.Delta{d1, d2}) // retry
	if err != nil || ack != 2 {
		t.Fatalf("retry Apply = %d, %v", ack, err)
	}
	v, _ := l.View("s4", false)
	if v.Deltas != 2 {
		t.Fatalf("deltas = %d, want 2 (dedup failed)", v.Deltas)
	}
}

// TestLiveEviction: sessions idle past the TTL vanish on the next
// lazily-swept call; the session cap evicts the stalest.
func TestLiveEviction(t *testing.T) {
	clk := newFakeClock()
	l := NewLive(LiveOptions{Now: clk.now, SessionTTL: time.Minute, MaxSessions: 2})
	one := ranksDelta(1, obs.RankProgress{Rank: 0, Windows: 1, Ops: 1})
	if _, err := l.Apply("old", []obs.Delta{one}); err != nil {
		t.Fatal(err)
	}
	clk.advance(30 * time.Second)
	if _, err := l.Apply("new", []obs.Delta{one}); err != nil {
		t.Fatal(err)
	}
	// Cap eviction: a third session pushes out the stalest ("old").
	if _, err := l.Apply("third", []obs.Delta{one}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.View("old", false); err == nil {
		t.Fatal("cap eviction kept the stalest session")
	}
	// TTL eviction.
	clk.advance(2 * time.Minute)
	if got := l.List(); len(got) != 0 {
		t.Fatalf("TTL sweep left %d sessions", len(got))
	}
}

// TestLiveWatchWakes: a blocked watch returns promptly once a delta
// bumps the version.
func TestLiveWatchWakes(t *testing.T) {
	l := NewLive(LiveOptions{})
	if _, err := l.Apply("s5", []obs.Delta{ranksDelta(1, obs.RankProgress{Rank: 0, Windows: 1, Ops: 1})}); err != nil {
		t.Fatal(err)
	}
	v, err := l.View("s5", false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *SessionView, 1)
	go func() {
		w, err := l.Watch("s5", v.Version, 5*time.Second)
		if err != nil {
			t.Errorf("Watch: %v", err)
			done <- nil
			return
		}
		done <- w
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Apply("s5", []obs.Delta{ranksDelta(2, obs.RankProgress{Rank: 0, Windows: 2, Ops: 2})}); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-done:
		if w == nil || w.Version <= v.Version {
			t.Fatalf("watch returned stale view: %+v", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watch did not wake on new delta")
	}
}

// TestLiveEndpoints drives the HTTP surface end to end: POST deltas,
// GET view, GET list, long-poll watch, Prometheus /metrics.
func TestLiveEndpoints(t *testing.T) {
	a := newTestArchive(t)
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewServer(a, ServerOptions{Metrics: true, Reg: reg}))
	defer srv.Close()

	batch := []obs.Delta{ranksDelta(1,
		obs.RankProgress{Rank: 0, Windows: 5, ComputeVT: 100, Ops: 10},
		obs.RankProgress{Rank: 1, Windows: 5, ComputeVT: 400, Ops: 10},
	)}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(srv.URL+"/live/sessions/e2e/deltas", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST deltas: %v", err)
	}
	var ack obs.Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || ack.AckSeq != 1 {
		t.Fatalf("ack = %+v, err %v", ack, err)
	}
	resp.Body.Close()

	v, err := FetchLiveView(srv.URL, "e2e")
	if err != nil {
		t.Fatalf("FetchLiveView: %v", err)
	}
	if len(v.Stragglers) != 1 || v.Stragglers[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", v.Stragglers)
	}
	sums, err := FetchLiveSessions(srv.URL)
	if err != nil || len(sums) != 1 || sums[0].Session != "e2e" || sums[0].Stragglers != 1 {
		t.Fatalf("FetchLiveSessions = %+v, err %v", sums, err)
	}
	w, err := WatchLiveView(srv.URL, "e2e", 0, 50*time.Millisecond)
	if err != nil || w.Session != "e2e" {
		t.Fatalf("WatchLiveView = %+v, err %v", w, err)
	}

	// Bad session IDs are rejected.
	resp, err = http.Post(srv.URL+"/live/sessions/bad%2Fid/deltas", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
		resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("slash session id: status %d", resp.StatusCode)
	}

	// Prometheus exposition with the live gauges.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE chamd_live_sessions gauge",
		"chamd_live_sessions 1",
		"chamd_live_deltas 1",
		"# TYPE chamd_latency_ns summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// The text renderer handles a straggler view.
	var frame bytes.Buffer
	RenderSessionView(&frame, v)
	if !strings.Contains(frame.String(), "stragglers: 1") {
		t.Fatalf("render missing straggler line:\n%s", frame.String())
	}
}

// TestLivePushStorm: the ISSUE's -race storm — 64 concurrent pushers,
// each its own session, against one chamd.
func TestLivePushStorm(t *testing.T) {
	a := newTestArchive(t)
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewServer(a, ServerOptions{Reg: reg}))
	defer srv.Close()

	const pushers = 64
	const deltasEach = 20
	var wg sync.WaitGroup
	errs := make(chan error, pushers)
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("storm-%02d", g)
			for seq := uint64(1); seq <= deltasEach; seq++ {
				batch := []obs.Delta{ranksDelta(seq,
					obs.RankProgress{Rank: 0, Windows: seq, ComputeVT: int64(seq) * 100, Ops: seq * 3},
					obs.RankProgress{Rank: 1, Windows: seq, ComputeVT: int64(seq) * 250, Ops: seq * 3},
				)}
				body, _ := json.Marshal(batch)
				resp, err := http.Post(srv.URL+"/live/sessions/"+id+"/deltas", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("%s seq %d: %w", id, seq, err)
					return
				}
				var ack obs.Ack
				err = json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if err != nil || ack.AckSeq != seq {
					errs <- fmt.Errorf("%s seq %d: ack %+v err %v", id, seq, ack, err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	// Concurrent watchers hammer views and lists while pushers run.
	stop := make(chan struct{})
	var watchWG sync.WaitGroup
	for g := 0; g < 8; g++ {
		watchWG.Add(1)
		go func(g int) {
			defer watchWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				FetchLiveSessions(srv.URL)                             //nolint:errcheck
				FetchLiveView(srv.URL, fmt.Sprintf("storm-%02d", g*7)) //nolint:errcheck
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	watchWG.Wait()
	for g := 0; g < pushers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	sums, err := FetchLiveSessions(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != pushers {
		t.Fatalf("sessions = %d, want %d", len(sums), pushers)
	}
	for _, s := range sums {
		if s.Version == 0 {
			t.Fatalf("session %s never advanced", s.Session)
		}
	}
}

func newTestArchive(t *testing.T) *Archive {
	t.Helper()
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open archive: %v", err)
	}
	return a
}

func hasFlag(flags []string, f string) bool {
	for _, x := range flags {
		if x == f {
			return true
		}
	}
	return false
}

func countEvents(evs []LiveEvent, kind, flag string) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == kind && ev.Flag == flag {
			n++
		}
	}
	return n
}

// TestLiveDesync: a contiguous band of ranks arriving late at the
// marker barrier fires a desync event; the event re-fires only when the
// band moves (a traveling front), not while it sits still.
func TestLiveDesync(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	l := NewLive(LiveOptions{Now: clk.now, Reg: reg})
	arrive := func(seq uint64, win uint64, vt [6]int64) obs.Delta {
		ranks := make([]obs.RankProgress, 6)
		for r := range ranks {
			ranks[r] = obs.RankProgress{Rank: r, Windows: win, ArriveVT: vt[r], Ops: 10 * win}
		}
		return ranksDelta(seq, ranks...)
	}
	ms := int64(time.Millisecond)

	// Window 1: healthy — skew below the 1ms default.
	if _, err := l.Apply("sd", []obs.Delta{arrive(1, 1, [6]int64{0, 100, 200, 100, 50, 0})}); err != nil {
		t.Fatal(err)
	}
	// Window 2: ranks 2,3 late by 40ms — a qualified band.
	if _, err := l.Apply("sd", []obs.Delta{arrive(2, 2, [6]int64{10 * ms, 10 * ms, 50 * ms, 50 * ms, 10 * ms, 10 * ms})}); err != nil {
		t.Fatal(err)
	}
	// Window 3: same band — no new event.
	if _, err := l.Apply("sd", []obs.Delta{arrive(3, 3, [6]int64{20 * ms, 20 * ms, 60 * ms, 60 * ms, 20 * ms, 20 * ms})}); err != nil {
		t.Fatal(err)
	}
	// Window 4: band moved to ranks 3,4 — the front traveled.
	if _, err := l.Apply("sd", []obs.Delta{arrive(4, 4, [6]int64{30 * ms, 30 * ms, 30 * ms, 70 * ms, 70 * ms, 30 * ms})}); err != nil {
		t.Fatal(err)
	}
	v, err := l.View("sd", false)
	if err != nil {
		t.Fatal(err)
	}
	var desyncs []LiveEvent
	for _, ev := range v.LiveEvents {
		if ev.Kind == LiveEventDesync {
			desyncs = append(desyncs, ev)
		}
	}
	if len(desyncs) != 2 {
		t.Fatalf("desync events = %d (%v), want 2", len(desyncs), desyncs)
	}
	if desyncs[0].Rank != 2 || desyncs[1].Rank != 3 {
		t.Errorf("desync band heads = %d,%d, want 2,3", desyncs[0].Rank, desyncs[1].Rank)
	}
	if got := reg.Counter("chamd_live_desync_events").Value(); got != 2 {
		t.Errorf("chamd_live_desync_events = %d, want 2", got)
	}
	// The window summaries carry the band.
	last := v.Windows[len(v.Windows)-1]
	if len(last.LateRanks) != 2 || last.LateRanks[0] != 3 || last.LateRanks[1] != 4 {
		t.Errorf("window late ranks = %v, want [3 4]", last.LateRanks)
	}
	if last.LateNs != 40*ms {
		t.Errorf("window late ns = %d, want %d", last.LateNs, 40*ms)
	}
}

// TestLiveDesyncRejectsNonWave: lone stragglers, scattered late ranks,
// and whole-machine lag never fire desync.
func TestLiveDesyncRejectsNonWave(t *testing.T) {
	clk := newFakeClock()
	l := NewLive(LiveOptions{Now: clk.now})
	ms := int64(time.Millisecond)
	apply := func(seq, win uint64, vt []int64) {
		t.Helper()
		ranks := make([]obs.RankProgress, len(vt))
		for r := range ranks {
			ranks[r] = obs.RankProgress{Rank: r, Windows: win, ArriveVT: vt[r], Ops: 10 * win}
		}
		if _, err := l.Apply("sn", []obs.Delta{ranksDelta(seq, ranks...)}); err != nil {
			t.Fatal(err)
		}
	}
	apply(1, 1, []int64{0, 50 * ms, 0, 0, 0, 0})             // lone straggler
	apply(2, 2, []int64{0, 60 * ms, 0, 70 * ms, 0, 80 * ms}) // scattered, no adjacency
	// Uniform lag: everyone moved together, nobody is late relative to
	// the window's earliest rank.
	apply(3, 3, []int64{50 * ms, 50 * ms, 50 * ms, 50 * ms, 50 * ms, 50 * ms})
	v, err := l.View("sn", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range v.LiveEvents {
		if ev.Kind == LiveEventDesync {
			t.Fatalf("unexpected desync event: %+v", ev)
		}
	}
	// Disabled detector records no band at all.
	ld := NewLive(LiveOptions{Now: clk.now, DesyncSkewNs: -1})
	ranks := []obs.RankProgress{
		{Rank: 0, Windows: 1, ArriveVT: 0, Ops: 10},
		{Rank: 1, Windows: 1, ArriveVT: 90 * ms, Ops: 10},
		{Rank: 2, Windows: 1, ArriveVT: 90 * ms, Ops: 10},
	}
	if _, err := ld.Apply("off", []obs.Delta{ranksDelta(1, ranks...)}); err != nil {
		t.Fatal(err)
	}
	v, _ = ld.View("off", false)
	if len(v.Windows) != 1 || v.Windows[0].LateRanks != nil {
		t.Errorf("disabled detector recorded band: %+v", v.Windows)
	}
}
