package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMean(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Sig() != 0 {
		t.Fatalf("zero Running: mean=%v sig=%v", r.Mean(), r.Sig())
	}
	for _, v := range []uint64{10, 20, 30} {
		r.Add(v)
	}
	if got := r.Mean(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d, want 3", r.Count())
	}
	if r.Sig() != 20 {
		t.Fatalf("sig = %d, want 20", r.Sig())
	}
}

func TestRunningNoOverflow(t *testing.T) {
	// The estimation function must survive values whose sum overflows.
	var r Running
	const big = math.MaxUint64 / 2
	for i := 0; i < 100; i++ {
		r.Add(big)
	}
	if got := r.Mean(); math.Abs(got-float64(big))/float64(big) > 1e-9 {
		t.Fatalf("mean drifted: %v", got)
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	for i := 0; i < 7; i++ {
		a.Add(42)
	}
	b.AddN(42, 7)
	if a.Mean() != b.Mean() || a.Count() != b.Count() {
		t.Fatalf("AddN mismatch: %v/%d vs %v/%d", a.Mean(), a.Count(), b.Mean(), b.Count())
	}
	b.AddN(10, 0) // no-op
	if b.Count() != 7 {
		t.Fatalf("AddN(_,0) changed count")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var all, a, b Running
		for _, x := range xs {
			all.Add(uint64(x))
			a.Add(uint64(x))
		}
		for _, y := range ys {
			all.Add(uint64(y))
			b.Add(uint64(y))
		}
		a.Merge(b)
		return math.Abs(all.Mean()-a.Mean()) < 1e-6 && all.Count() == a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := w.Std(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("std = %v, want 2", got)
	}
	if got := w.RelStd(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("relstd = %v, want 0.4", got)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []int8) bool {
		var all, a, b Welford
		for _, x := range xs {
			all.Add(float64(x))
			a.Add(float64(x))
		}
		for _, y := range ys {
			all.Add(float64(y))
			b.Add(float64(y))
		}
		a.Merge(b)
		return math.Abs(all.Mean()-a.Mean()) < 1e-6 &&
			math.Abs(all.Var()-a.Var()) < 1e-6 &&
			all.N() == a.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatalf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("fresh histogram not empty")
	}
	h.Add(100)
	h.Add(200)
	h.Add(300)
	if h.Min != 100 || h.Max != 300 {
		t.Fatalf("min/max = %d/%d", h.Min, h.Max)
	}
	if h.Mean() != 200 {
		t.Fatalf("mean = %d, want 200", h.Mean())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramAddN(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 5; i++ {
		a.Add(64)
	}
	b.AddN(64, 5)
	if a.Mean() != b.Mean() || a.Count() != b.Count() || a.Buckets != b.Buckets {
		t.Fatalf("AddN differs from repeated Add")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(10)
	b.Add(1000)
	b.Add(2000)
	a.Merge(b)
	if a.Count() != 3 || a.Min != 10 || a.Max != 2000 {
		t.Fatalf("merge: n=%d min=%d max=%d", a.Count(), a.Min, a.Max)
	}
	if got := a.Mean(); got != (10+1000+2000)/3 {
		t.Fatalf("merged mean = %d", got)
	}
	// Merging nil or empty is a no-op.
	before := *a
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != before.Count() {
		t.Fatalf("empty merge changed count")
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	c := h.Clone()
	c.Add(50)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d/%d", h.Count(), c.Count())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(0) // non-positive lands in bucket 0
	h.Add(-5)
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	h2 := NewHistogram()
	h2.Add(1 << 40)
	h2.Add(math.MaxInt64)
	if h2.Count() != 2 {
		t.Fatalf("large values dropped")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 5, 1024, 88, 7_000_000} {
		h.Add(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Min != h.Min || back.Max != h.Max ||
		back.Mean() != h.Mean() || back.Buckets != h.Buckets {
		t.Fatalf("round trip mismatch: %v vs %v", back.String(), h.String())
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	h := NewHistogram()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Fatalf("empty round trip has count %d", back.Count())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if h.String() != "hist{empty}" {
		t.Fatalf("empty string: %q", h.String())
	}
	h.Add(10)
	if h.String() == "hist{empty}" {
		t.Fatalf("non-empty histogram renders empty")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatalf("empty MeanStd = %v/%v", mean, std)
	}
}

func TestBucketMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketOf(x) <= bucketOf(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBoundsCoverBucketOf(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 4, 7, 8, 1000, 1 << 20, 1<<62 + 1} {
		b := BucketOf(v)
		low, high := BucketBounds(b)
		if v < low || v > high {
			t.Fatalf("v=%d bucket=%d bounds=[%d,%d]", v, b, low, high)
		}
	}
	if b := BucketOf(-5); b != 0 {
		t.Fatalf("negative bucket = %d", b)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	h.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-sample Quantile(%v) = %d", q, got)
		}
	}
}

func TestQuantileExtremesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %d", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestQuantileUniformWithinBucketError(t *testing.T) {
	// Uniform 1..4096: the log2 interpolation should land each quantile
	// within its bucket, i.e. within a factor of 2 of the exact value.
	h := NewHistogram()
	for v := int64(1); v <= 4096; v++ {
		h.Add(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		exact := float64(4096) * q
		got := float64(h.Quantile(q))
		if got < exact/2 || got > exact*2 {
			t.Fatalf("Quantile(%v) = %v, exact %v (off by more than 2x)", q, got, exact)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 500; i++ {
		h.Add(int64(i*i) % 100000)
	}
	prev := int64(math.MinInt64)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileRestoredFallsBackToMean(t *testing.T) {
	h := NewHistogram()
	h.Restore(10, 90, 40, 7)
	if got := h.Quantile(0.99); got != 40 {
		t.Fatalf("restored quantile = %d, want mean 40", got)
	}
}

// TestMergeScaledMatchesRepeatedMerge proves the O(1) scaled fold
// against the linear reference: merging a histogram k times one by one.
func TestMergeScaledMatchesRepeatedMerge(t *testing.T) {
	src := NewHistogram()
	for _, v := range []int64{10, 70, 70, 500, 9000} {
		src.Add(v)
	}
	const k = 7
	scaled, repeated := NewHistogram(), NewHistogram()
	scaled.Add(3) // pre-existing content on both sides
	repeated.Add(3)
	scaled.MergeScaled(src, k)
	for i := 0; i < k; i++ {
		repeated.Merge(src)
	}
	if scaled.Count() != repeated.Count() || scaled.Buckets != repeated.Buckets ||
		scaled.Min != repeated.Min || scaled.Max != repeated.Max {
		t.Fatalf("scaled fold diverges: %v vs %v", scaled, repeated)
	}
	if math.Abs(float64(scaled.Mean()-repeated.Mean())) > 1 {
		t.Fatalf("mean: scaled %d vs repeated %d", scaled.Mean(), repeated.Mean())
	}
	sm, rm := scaled.sum.Std(), repeated.sum.Std()
	if rm != 0 && math.Abs(sm-rm)/rm > 1e-9 {
		t.Fatalf("std: scaled %v vs repeated %v", sm, rm)
	}
	// k = 0 and empty sources are no-ops.
	before := scaled.Count()
	scaled.MergeScaled(src, 0)
	scaled.MergeScaled(NewHistogram(), 5)
	scaled.MergeScaled(nil, 5)
	if scaled.Count() != before {
		t.Fatalf("no-op MergeScaled changed count")
	}
}

func TestWelfordAddConst(t *testing.T) {
	var a, b Welford
	a.Add(5)
	b.Add(5)
	for i := 0; i < 1000; i++ {
		a.Add(42)
	}
	b.AddConst(42, 1000)
	if a.N() != b.N() {
		t.Fatalf("n: %d vs %d", a.N(), b.N())
	}
	if math.Abs(a.Mean()-b.Mean()) > 1e-9 {
		t.Fatalf("mean: %v vs %v", a.Mean(), b.Mean())
	}
	if math.Abs(a.Std()-b.Std()) > 1e-6 {
		t.Fatalf("std: %v vs %v", a.Std(), b.Std())
	}
}
