package stats

import "encoding/json"

// histJSON is the serialized form of a Histogram. Variance is not
// persisted (the replayer only consumes counts, extrema and the mean),
// so a round-tripped histogram reports Std()==0; this matches
// ScalaTrace's on-disk delta-time summaries.
type histJSON struct {
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Mean    float64        `json:"mean"`
	Count   uint64         `json:"count"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{Min: h.Min, Max: h.Max, Mean: h.sum.Mean(), Count: h.Count()}
	if h.Count() > 0 {
		j.Buckets = make(map[int]uint64)
		for i, c := range h.Buckets {
			if c > 0 {
				j.Buckets[i] = c
			}
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = *NewHistogram()
	h.Min, h.Max = j.Min, j.Max
	for i, c := range j.Buckets {
		if i >= 0 && i < len(h.Buckets) {
			h.Buckets[i] = c
		}
	}
	h.sum = Welford{n: j.Count, mean: j.Mean}
	return nil
}
