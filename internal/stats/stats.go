// Package stats provides the small statistical kernels the tracing stack
// relies on: overflow-safe running averages (the paper's "estimation
// function"), Welford mean/variance accumulators, and fixed-bucket
// histograms used to summarize inter-event computation times.
package stats

import (
	"fmt"
	"math"
)

// Running keeps an overflow-safe running mean of a stream of uint64
// samples. The paper notes that "aggregating event values and then taking
// the average could result in an overflow, [so] we utilized an estimation
// function"; Running is that function: it folds each sample into the mean
// incrementally so no sum is ever materialized.
type Running struct {
	mean  float64
	count uint64
}

// Add folds one sample into the running mean.
func (r *Running) Add(v uint64) {
	r.count++
	r.mean += (float64(v) - r.mean) / float64(r.count)
}

// AddN folds a sample observed n times.
func (r *Running) AddN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	total := r.count + n
	r.mean += (float64(v) - r.mean) * float64(n) / float64(total)
	r.count = total
}

// Merge combines another running mean into this one.
func (r *Running) Merge(o Running) {
	if o.count == 0 {
		return
	}
	total := r.count + o.count
	r.mean += (o.mean - r.mean) * float64(o.count) / float64(total)
	r.count = total
}

// Mean returns the current estimate. A fresh Running reports 0.
func (r *Running) Mean() float64 { return r.mean }

// Sig returns the mean collapsed to a 64-bit signature value.
func (r *Running) Sig() uint64 {
	if math.IsNaN(r.mean) || r.mean < 0 {
		return 0
	}
	return uint64(r.mean)
}

// Count returns how many samples have been folded in.
func (r *Running) Count() uint64 { return r.count }

// Welford accumulates mean and variance in a single pass.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddConst folds n observations of the same value x in O(1): the block
// has mean x and zero internal variance, so it merges as a synthetic
// accumulator. The compressed-domain analysis engine relies on this to
// weight a loop body's contribution by its iteration count without
// expanding the loop.
func (w *Welford) AddConst(x float64, n uint64) {
	if n == 0 {
		return
	}
	w.Merge(Welford{n: n, mean: x})
}

// MergeScaled folds k copies of another accumulator in O(1): k disjoint
// copies of o's sample set share o's mean, and their pooled
// sum-of-squared-deviations is k times o's, so the union merges as one
// synthetic accumulator — exact in real arithmetic, not an
// approximation.
func (w *Welford) MergeScaled(o Welford, k uint64) {
	if k == 0 || o.n == 0 {
		return
	}
	w.Merge(Welford{n: o.n * k, mean: o.mean, m2: o.m2 * float64(k)})
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance update), so per-rank accumulators can be reduced over a tree.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 if fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// RelStd returns the standard deviation as a fraction of the mean
// (the paper reports "standard deviation is less than x% of the average").
func (w *Welford) RelStd() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / math.Abs(w.mean)
}

// Histogram is a fixed-bucket log-scale histogram over non-negative
// int64 samples (nanoseconds in practice). ScalaTrace stores inter-event
// delta times in histograms so repetitive signatures with noisy timing
// still compress; replay draws the mean back out.
type Histogram struct {
	Buckets [64]uint64
	Min     int64
	Max     int64
	sum     Welford
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{Min: math.MaxInt64, Max: math.MinInt64}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 64 - leadingZeros(uint64(v))
	if b > 63 {
		b = 63
	}
	return b
}

// BucketOf returns the index of the log2 bucket that holds v: bucket 0
// holds all v <= 0 and bucket i (1 <= i <= 63) holds the values of bit
// length i, i.e. [2^(i-1), 2^i - 1].
func BucketOf(v int64) int { return bucketOf(v) }

// BucketBounds returns the inclusive [low, high] value range of bucket i.
func BucketBounds(i int) (low, high int64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= 63 {
		return 1 << 62, math.MaxInt64
	}
	return 1 << uint(i-1), 1<<uint(i) - 1
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.Buckets[bucketOf(v)]++
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.sum.Add(float64(v))
}

// AddN records a sample observed n times, in O(1) regardless of n (the
// n identical observations fold in as one constant block).
func (h *Histogram) AddN(v int64, n uint64) {
	if n == 0 {
		return
	}
	h.Buckets[bucketOf(v)] += n
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.sum.AddConst(float64(v), n)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count() == 0 {
		return
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.sum.Merge(o.sum)
}

// MergeScaled folds k copies of another histogram into this one in
// O(1): bucket counts scale exactly, extrema are unchanged by
// duplication, and the summary accumulator merges via
// Welford.MergeScaled. It is how compressed-domain analysis aggregates
// a leaf's delta-time histogram across loop iterations and rank-list
// members without expanding either.
func (h *Histogram) MergeScaled(o *Histogram, k uint64) {
	if o == nil || k == 0 || o.Count() == 0 {
		return
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i] * k
	}
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.sum.MergeScaled(o.sum, k)
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.sum.N() }

// Mean returns the mean sample value (0 if empty).
func (h *Histogram) Mean() int64 { return int64(h.sum.Mean()) }

// FMean returns the mean without integer truncation.
func (h *Histogram) FMean() float64 { return h.sum.Mean() }

// Std returns the population standard deviation of the samples (0 for
// restored summaries, which do not persist variance).
func (h *Histogram) Std() float64 { return h.sum.Std() }

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// samples by locating the log2 bucket containing the target rank and
// interpolating linearly inside it. The estimate is clamped to the
// observed [Min, Max] range, so exact-extreme queries (q = 0 or 1) are
// exact. A histogram rehydrated via Restore has no bucket detail; it
// falls back to the preserved mean.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var inBuckets uint64
	for _, c := range h.Buckets {
		inBuckets += c
	}
	if inBuckets == 0 {
		// Restored summary (see Restore): only scalar state survives.
		return h.Mean()
	}
	// Target rank in [1, inBuckets].
	rank := uint64(math.Ceil(q * float64(inBuckets)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if rank > cum+c {
			cum += c
			continue
		}
		low, high := BucketBounds(i)
		// Position of the target inside the bucket, in (0, 1].
		frac := float64(rank-cum) / float64(c)
		v := low + int64(frac*float64(high-low))
		return clampInt64(v, h.Min, h.Max)
	}
	return h.Max
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Reset returns the histogram to its freshly-constructed state so pooled
// trace nodes can reuse the allocation.
func (h *Histogram) Reset() {
	*h = Histogram{Min: math.MaxInt64, Max: math.MinInt64}
}

// SizeBytes approximates the in-memory footprint of the histogram, used
// by the trace-space ledger (Table IV).
func (h *Histogram) SizeBytes() int {
	// Fixed arrays plus scalar fields; matches unsafe.Sizeof within noise
	// but keeps the package free of unsafe.
	return 64*8 + 8 + 8 + 24
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.Count() == 0 {
		return "hist{empty}"
	}
	return fmt.Sprintf("hist{n=%d min=%d mean=%d max=%d}", h.Count(), h.Min, h.Mean(), h.Max)
}

// MeanStd reports mean and standard deviation of a float64 slice; it is
// the helper the experiment harness uses for "average of five runs".
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Std()
}

// Restore rehydrates a histogram's scalar summary from serialized state
// (variance is not persisted; see the JSON codec note).
func (h *Histogram) Restore(min, max int64, mean float64, count uint64) {
	h.Min, h.Max = min, max
	h.sum = Welford{n: count, mean: mean}
}
