package core

import (
	"chameleon/internal/mpi"
)

// AutoMarker addresses the paper's discussion item (2): "Finding of a
// good location for inserting marker and choosing an appropriate
// frequency call are open problems ... This could be automated in some
// cases. For iterative scientific applications (most scientific codes),
// the main loop gets executed by all processes (and marker insertion can
// be automated)."
//
// The automation anchors on a recurring *collective* call site: MPI
// requires every rank to invoke collectives on a communicator in the
// same order, so the k-th occurrence of a given collective call site is
// a consistent global point — exactly the "progress reporting point"
// the paper inserts its marker at, discovered instead of hand-placed.
// The anchor is elected after an observation window of collective
// events: the most frequent site wins (ties break on the smaller
// signature), which skips one-off setup broadcasts in favor of the
// per-timestep residual reduction. Every Frequency-th subsequent anchor
// occurrence triggers the normal marker processing (Algorithm 1/3) with
// no application change.
type AutoMarker struct {
	*Chameleon
	// ObserveFor is how many collective events the election watches.
	ObserveFor int
	// Frequency triggers marker processing every n-th anchor occurrence.
	Frequency int

	counts   map[uint64]int
	observed int
	anchor   uint64
	fired    int
}

// AutoOptions configures the automatic marker insertion.
type AutoOptions struct {
	Options
	// ObserveFor is the anchor-election observation window in collective
	// events (default 50).
	ObserveFor int
	// Frequency fires the marker at every n-th anchor occurrence
	// (default 1).
	Frequency int
}

// NewAuto returns a hook factory for an auto-marking Chameleon: the
// application needs no Marker calls at all.
func NewAuto(col *Collector, opt AutoOptions) func(p *mpi.Proc) mpi.Interposer {
	if opt.ObserveFor <= 0 {
		opt.ObserveFor = 50
	}
	if opt.Frequency <= 0 {
		opt.Frequency = 1
	}
	inner := New(col, opt.Options)
	return func(p *mpi.Proc) mpi.Interposer {
		return &AutoMarker{
			Chameleon:  inner(p).(*Chameleon),
			ObserveFor: opt.ObserveFor,
			Frequency:  opt.Frequency,
			counts:     make(map[uint64]int),
		}
	}
}

// Post implements mpi.Interposer: record the event as usual, then check
// whether it completes an anchor period.
func (a *AutoMarker) Post(ci *mpi.CallInfo) {
	a.Chameleon.Post(ci)
	if !ci.Op.IsCollective() || ci.Op == mpi.OpFinalize {
		return
	}
	// The recorder has just encoded this event; its stack signature is
	// the site identity (one map update per collective).
	site := a.rec.LastStack()
	if site == 0 {
		return
	}
	if a.anchor == 0 {
		a.counts[site]++
		a.observed++
		if a.observed >= a.ObserveFor {
			a.electAnchor()
		}
		return
	}
	if site != a.anchor {
		return
	}
	a.fired++
	if a.fired%a.Frequency != 0 {
		return
	}
	// The anchor collective has already synchronized the ranks; run the
	// marker processing as if the tool-inserted barrier just completed.
	a.onMarker()
}

// electAnchor picks the most frequent observed collective site. Every
// rank sees the same collective order, so the election is identical
// everywhere.
func (a *AutoMarker) electAnchor() {
	var best uint64
	bestCount := -1
	for site, count := range a.counts {
		if count > bestCount || (count == bestCount && site < best) {
			best, bestCount = site, count
		}
	}
	a.anchor = best
	a.counts = nil
}
