package core

import (
	"testing"

	"chameleon/internal/apps"
	"chameleon/internal/mpi"
	"chameleon/internal/scalatrace"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// ringApp is a repetitive SPMD kernel: `steps` timesteps of a ring
// exchange, a marker at every `freq`-th step.
func ringApp(steps, freq int) func(*mpi.Proc) {
	return func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < steps; it++ {
			p.Compute(100 * vtime.Microsecond)
			w.Sendrecv(next, 1, 256, nil, prev, 1)
			if (it+1)%freq == 0 {
				apps.Marker(p)
			}
		}
	}
}

// phaseApp alternates two distinct communication phases.
func phaseApp(stepsPerPhase, phases int) func(*mpi.Proc) {
	return func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for ph := 0; ph < phases; ph++ {
			for it := 0; it < stepsPerPhase; it++ {
				p.Compute(100 * vtime.Microsecond)
				if ph%2 == 0 {
					w.Sendrecv(next, 1, 256, nil, prev, 1)
				} else {
					w.Allreduce(8, uint64(it), mpi.OpSum)
				}
				apps.Marker(p)
			}
		}
	}
}

func runChameleon(t *testing.T, p int, opt Options, body func(*mpi.Proc)) *Collector {
	t.Helper()
	col := NewCollector(p)
	_, err := mpi.Run(mpi.Config{P: p, Hooks: New(col, opt)}, body)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestTransitionGraphRepetitive(t *testing.T) {
	// 10 markers over a perfectly repetitive kernel: AT (first), C
	// (second), then lead-phase L, finalize F.
	col := runChameleon(t, 8, Options{K: 3}, ringApp(100, 10))
	if col.StateCalls[StateAT] != 1 || col.StateCalls[StateC] != 1 ||
		col.StateCalls[StateL] != 8 || col.StateCalls[StateF] != 1 {
		t.Fatalf("states = %v", col.StateCalls)
	}
	if col.Reclusterings != 1 {
		t.Fatalf("reclusterings = %d", col.Reclusterings)
	}
	if len(col.LeadRanks) != 3 {
		t.Fatalf("leads = %v", col.LeadRanks)
	}
	if col.CallPathClusters != 1 {
		t.Fatalf("call paths = %d", col.CallPathClusters)
	}
	if len(col.Online) == 0 {
		t.Fatalf("no online trace")
	}
}

func TestTransitionGraphPhaseChange(t *testing.T) {
	// Two phases: the change forces a flush and a re-clustering.
	col := runChameleon(t, 8, Options{K: 3}, phaseApp(20, 2))
	if col.Reclusterings != 2 {
		t.Fatalf("reclusterings = %d, want 2", col.Reclusterings)
	}
	// The phase boundary shows up as extra AT calls (mismatch) around
	// the second clustering.
	if col.StateCalls[StateC] != 2 {
		t.Fatalf("C calls = %d", col.StateCalls[StateC])
	}
}

func TestCallFrequencySkips(t *testing.T) {
	// With Call_Frequency 5 only every fifth marker engages Algorithm 1.
	col := runChameleon(t, 4, Options{K: 2, CallFrequency: 5}, ringApp(100, 2)) // 50 markers
	engaged := col.StateCalls[StateAT] + col.StateCalls[StateC] + col.StateCalls[StateL]
	if engaged != 10 {
		t.Fatalf("engaged = %d, want 10", engaged)
	}
}

func TestNonLeadsStopTracing(t *testing.T) {
	col := runChameleon(t, 8, Options{K: 2}, ringApp(100, 10))
	isLead := map[int]bool{}
	for _, l := range col.LeadRanks {
		isLead[l] = true
	}
	nonLeads := 0
	for r := 0; r < 8; r++ {
		if isLead[r] {
			continue
		}
		nonLeads++
		if col.SpaceByState[r][StateL] != 0 {
			t.Fatalf("non-lead %d allocated %d bytes in L", r, col.SpaceByState[r][StateL])
		}
		if col.SpaceByState[r][StateF] != 0 {
			t.Fatalf("non-lead %d allocated %d bytes in F", r, col.SpaceByState[r][StateF])
		}
		if col.SpaceByState[r][StateAT] == 0 {
			t.Fatalf("non-lead %d allocated nothing in AT", r)
		}
	}
	if nonLeads == 0 {
		t.Fatalf("no non-leads with K=2, P=8")
	}
	// Rank 0 additionally holds the online trace.
	if col.OnlineBytes == 0 {
		t.Fatalf("online trace empty")
	}
}

func TestEventsObservedVsRecorded(t *testing.T) {
	col := runChameleon(t, 8, Options{K: 2}, ringApp(100, 10))
	if col.EventsObserved != 8*100 {
		t.Fatalf("observed = %d", col.EventsObserved)
	}
	// In the lead phase only 2 of 8 ranks record, so far fewer events
	// are recorded than observed (Observation 1).
	if col.EventsRecorded >= col.EventsObserved {
		t.Fatalf("recorded %d >= observed %d", col.EventsRecorded, col.EventsObserved)
	}
	if col.EventsRecorded < 100 {
		t.Fatalf("recorded suspiciously few: %d", col.EventsRecorded)
	}
}

// stacksOf collects the distinct stack signatures of a trace.
func stacksOf(seq []*trace.Node) map[uint64]struct{} {
	out := map[uint64]struct{}{}
	trace.CollectStacks(seq, out)
	return out
}

// dynamicFor counts per-rank dynamic events in a global trace.
func dynamicFor(seq []*trace.Node, rank int) uint64 {
	var total uint64
	var walk func(seq []*trace.Node, mult uint64)
	walk = func(seq []*trace.Node, mult uint64) {
		for _, n := range seq {
			if n.IsLoop() {
				walk(n.Body, mult*n.MeanIters())
			} else if n.Ranks.Contains(rank) {
				total += mult
			}
		}
	}
	walk(seq, 1)
	return total
}

func TestOnlineTraceMatchesScalaTrace(t *testing.T) {
	// The central correctness claim: Chameleon's incrementally built
	// online trace covers the same events as ScalaTrace's Finalize-time
	// global trace — same call sites, same per-rank dynamic counts.
	const P = 8
	body := ringApp(100, 10)

	stCol := scalatrace.NewCollector(P)
	if _, err := mpi.Run(mpi.Config{P: P, Hooks: scalatrace.New(stCol, scalatrace.Options{})}, body); err != nil {
		t.Fatal(err)
	}
	chCol := runChameleon(t, P, Options{K: 3}, body)

	stStacks, chStacks := stacksOf(stCol.Global), stacksOf(chCol.Online)
	if len(stStacks) != len(chStacks) {
		t.Fatalf("stack sets differ: %d vs %d", len(stStacks), len(chStacks))
	}
	for s := range stStacks {
		if _, ok := chStacks[s]; !ok {
			t.Fatalf("online trace missing call site %x", s)
		}
	}
	for r := 0; r < P; r++ {
		st, ch := dynamicFor(stCol.Global, r), dynamicFor(chCol.Online, r)
		if st != ch {
			t.Fatalf("rank %d: ScalaTrace %d events, Chameleon %d", r, st, ch)
		}
	}
}

func TestOnlineTraceMatchesWithPhases(t *testing.T) {
	const P = 8
	body := phaseApp(20, 3)
	stCol := scalatrace.NewCollector(P)
	if _, err := mpi.Run(mpi.Config{P: P, Hooks: scalatrace.New(stCol, scalatrace.Options{})}, body); err != nil {
		t.Fatal(err)
	}
	chCol := runChameleon(t, P, Options{K: 3}, body)
	for r := 0; r < P; r++ {
		st, ch := dynamicFor(stCol.Global, r), dynamicFor(chCol.Online, r)
		if st != ch {
			t.Fatalf("rank %d: %d vs %d events", r, st, ch)
		}
	}
}

func TestStateString(t *testing.T) {
	if StateAT.String() != "AT" || StateC.String() != "C" ||
		StateL.String() != "L" || StateF.String() != "F" {
		t.Fatalf("state names wrong")
	}
	if State(9).String() != "S?" {
		t.Fatalf("unknown state name")
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.K != 9 || o.CallFrequency != 1 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestOverheadCategoriesPopulated(t *testing.T) {
	const P = 8
	col := NewCollector(P)
	res, err := mpi.Run(mpi.Config{P: P, Hooks: New(col, Options{K: 2})}, ringApp(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	agg := res.AggregateLedger()
	for _, cat := range []vtime.Category{vtime.CatMarker, vtime.CatCluster, vtime.CatInterComp, vtime.CatIntra} {
		if agg.Spent(cat) <= 0 {
			t.Fatalf("category %v empty", cat)
		}
	}
}

func TestSigModeFilteredClusters(t *testing.T) {
	// A kernel whose inner loop trip count varies per timestep: only the
	// filtered signature mode achieves clustering.
	body := func(p *mpi.Proc) {
		w := p.World()
		for it := 0; it < 40; it++ {
			inner := 3 + (it*7)%5
			for k := 0; k < inner; k++ {
				w.Allreduce(8, uint64(k), mpi.OpSum)
			}
			if (it+1)%4 == 0 {
				apps.Marker(p)
			}
		}
	}
	full := runChameleon(t, 4, Options{K: 2, SigMode: tracer.SigFull, Filter: true}, body)
	if full.StateCalls[StateC] != 0 {
		t.Fatalf("full mode clustered an irregular kernel: %v", full.StateCalls)
	}
	filtered := runChameleon(t, 4, Options{K: 2, SigMode: tracer.SigFiltered, Filter: true}, body)
	if filtered.StateCalls[StateC] == 0 {
		t.Fatalf("filtered mode never clustered: %v", filtered.StateCalls)
	}
}
