// Package core implements Chameleon, the paper's primary contribution:
// online signature-based clustering of MPI program traces.
//
// Chameleon interposes on the application like ScalaTrace but treats a
// reserved-communicator barrier as a *marker* at interim execution
// points (timestep boundaries). At every Call_Frequency-th marker it
// runs the paper's Algorithm 1 (the transition graph): each rank
// compares the Call-Path signature of the window just ended against the
// previous window and all ranks vote with an O(log P) Reduce+Bcast.
// Repetitive behavior triggers one clustering step (Algorithm 3): ranks
// cluster by (Call-Path, SRC, DEST) signatures over a radix tree, K lead
// ranks are selected (Algorithm 2), lead traces — rank lists rewritten
// to cluster rank lists — merge over a radix tree of only the K leads,
// and rank 0 folds the result into the incrementally grown online trace.
// Non-lead ranks then stop tracing entirely until a phase change (a
// Call-Path mismatch) flushes the lead partials and returns everyone to
// the all-tracing state.
package core

import (
	"fmt"
	"sync"

	"chameleon/internal/cluster"
	"chameleon/internal/mpi"
	"chameleon/internal/obs"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/tracer"
	"chameleon/internal/vtime"
)

// State is a transition-graph state (Figure 2).
type State int

// Transition-graph states.
const (
	// StateAT: all ranks tracing; no stable repetitive behavior (yet).
	StateAT State = iota
	// StateC: repetitive behavior confirmed; clustering ran at this
	// marker and lead traces were flushed into the online trace.
	StateC
	// StateL: lead phase — only leads trace. Markers in this state are
	// either steady (vote only) or the flush on a phase change.
	StateL
	// StateF: final — MPI_Finalize flushed the remaining events.
	StateF
	// NumStates is the number of transition-graph states.
	NumStates
)

var stateNames = [...]string{"AT", "C", "L", "F"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "S?"
}

// Options configures Chameleon.
type Options struct {
	// K is the cluster budget (Table I gives the per-benchmark values).
	K int
	// Algo is the representative selector (K-Farthest by default).
	Algo cluster.Algorithm
	// CallFrequency engages Algorithm 1 only at every n-th marker
	// (paper parameter Call_Frequency; 1 engages every marker).
	CallFrequency int
	// SigMode selects full or filtered Call-Path construction.
	SigMode tracer.SigMode
	// Filter enables the loop-parameter filter during merging (POP).
	Filter bool
}

func (o Options) normalized() Options {
	if o.K <= 0 {
		o.K = 9
	}
	if o.CallFrequency <= 0 {
		o.CallFrequency = 1
	}
	return o
}

// Collector aggregates the run's outputs across ranks.
type Collector struct {
	mu sync.Mutex
	// Online is the final online (global) trace held by rank 0.
	Online []*trace.Node
	// StateCalls counts marker/finalize calls per resulting state
	// (identical across ranks; written by rank 0).
	StateCalls [NumStates]int
	// Reclusterings counts how many times clustering ran (the paper's r).
	Reclusterings int
	// LeadRanks is the lead set from the most recent clustering.
	LeadRanks []int
	// CallPathClusters is the number of distinct Call-Path groups at the
	// most recent clustering.
	CallPathClusters int
	// SpaceByState records per-rank trace bytes allocated while in each
	// state (Table IV). Indexed [rank][state].
	SpaceByState [][NumStates]int
	// CallsByState mirrors StateCalls (per-state marker call counts).
	// OnlineBytes is rank 0's online-trace allocation (monotone).
	OnlineBytes int
	// EventsObserved / EventsRecorded sum dynamic events across ranks.
	EventsObserved uint64
	EventsRecorded uint64
	// ObservedPerRank / RecordedPerRank hold the per-rank event counts
	// (inputs to the DVFS energy estimate: non-lead ranks observe events
	// they no longer record).
	ObservedPerRank []uint64
	RecordedPerRank []uint64
}

// NewCollector sizes a collector for p ranks.
func NewCollector(p int) *Collector {
	return &Collector{
		SpaceByState:    make([][NumStates]int, p),
		ObservedPerRank: make([]uint64, p),
		RecordedPerRank: make([]uint64, p),
	}
}

// File packages the online trace for the replayer.
func (c *Collector) File(p int, benchmark string, filter bool) *trace.File {
	f := &trace.File{
		P:         p,
		Benchmark: benchmark,
		Tracer:    "chameleon",
		Clustered: true,
		Filter:    filter,
		Nodes:     c.Online,
	}
	f.Sites = f.SiteTable()
	return f
}

// coreMetrics holds the pre-fetched core_* metric handles, shared by
// every rank of one run (the handles are atomics). Run-global series
// (markers, votes, transitions, ...) are incremented by rank 0 only, so
// their values count collective steps, not rank-multiplied steps;
// per-rank series (window sizes, event totals) sum over ranks.
type coreMetrics struct {
	markers       *obs.Counter
	engaged       *obs.Counter
	votes         *obs.Counter
	voteMismatch  *obs.Counter
	transitions   [NumStates]*obs.Counter
	state         *obs.Gauge
	reclusterings *obs.Counter
	flushes       *obs.Counter
	windowEvents  *obs.Histogram
	windowSites   *obs.Histogram
	leadCount     *obs.Gauge
	callPaths     *obs.Gauge
	onlineBytes   *obs.Gauge
	departures    *obs.Counter
	failovers     *obs.Counter
}

// newCoreMetrics always returns a usable struct: with metrics disabled
// every handle is nil, and nil handles absorb updates, so call sites
// never guard on the struct.
func newCoreMetrics(o *obs.Observer) *coreMetrics {
	m := &coreMetrics{
		markers:       o.Counter("core_marker_calls_total"),
		engaged:       o.Counter("core_markers_engaged_total"),
		votes:         o.Counter("core_votes_total"),
		voteMismatch:  o.Counter("core_vote_mismatch_ranks_total"),
		state:         o.Gauge("core_state"),
		reclusterings: o.Counter("core_reclusterings_total"),
		flushes:       o.Counter("core_flushes_total"),
		windowEvents:  o.Histogram("core_window_events"),
		windowSites:   o.Histogram("core_window_distinct_sites"),
		leadCount:     o.Gauge("core_lead_count"),
		callPaths:     o.Gauge("core_callpath_clusters"),
		onlineBytes:   o.Gauge("core_online_trace_bytes"),
		departures:    o.Counter("core_departures_total"),
		failovers:     o.Counter("core_lead_failovers_total"),
	}
	for s := StateAT; s < NumStates; s++ {
		m.transitions[s] = o.Counter("core_transitions_" + stateNames[s] + "_total")
	}
	return m
}

// Chameleon is the per-rank interposer.
type Chameleon struct {
	p   *mpi.Proc
	rec *tracer.Recorder
	opt Options
	col *Collector
	o   *obs.Observer
	met *coreMetrics

	// Algorithm 1 state.
	oldCallPath  uint64
	haveOld      bool
	reclustering bool
	steadyLead   bool
	lastState    State
	haveState    bool
	curSig       sig.Triple

	// Cluster state (valid while inLeadPhase).
	inLeadPhase bool
	isLead      bool
	leads       []int
	myCluster   ranklist.List // this lead's cluster rank list
	myVariant   bool          // cluster has rank-dependent end-points
	// Failover state (fault injection only). clusters is the full table
	// from the last clustering, kept so survivors can re-elect leads;
	// deadSeen marks departures already processed; failoverFlush arms a
	// FlushFailover at the next steady lead-phase marker, after the
	// affected cluster has re-traced for one window.
	clusters      []cluster.Item
	deadSeen      map[int]bool
	failoverFlush bool

	// Online trace (rank 0 only). onlinePool recycles nodes the online
	// compressor's folds discard.
	online      trace.Compressor
	onlinePool  trace.Pool
	onlineAlloc int

	markerCalls int
	engaged     int
	flushRound  int

	stateCalls [NumStates]int
	spaceState [NumStates]int
	allocSnap  int

	pre vtime.Time
}

// New returns a hook factory for mpi.Config.Hooks.
func New(col *Collector, opt Options) func(p *mpi.Proc) mpi.Interposer {
	opt = opt.normalized()
	var met *coreMetrics
	return func(p *mpi.Proc) mpi.Interposer {
		if met == nil {
			// The factory runs once per rank before the rank goroutines
			// start (see mpi.Run), so lazy shared-handle setup is safe.
			met = newCoreMetrics(p.Obs())
		}
		c := &Chameleon{
			p:            p,
			rec:          tracer.NewRecorder(p, opt.SigMode, opt.Filter),
			opt:          opt,
			col:          col,
			o:            p.Obs(),
			met:          met,
			reclustering: true,
		}
		c.online.Filter = opt.Filter
		c.online.Pool = &c.onlinePool
		return c
	}
}

// Pre implements mpi.Interposer.
func (c *Chameleon) Pre(ci *mpi.CallInfo) { c.pre = c.p.Clock.Now() }

// Post implements mpi.Interposer.
func (c *Chameleon) Post(ci *mpi.CallInfo) {
	if ci.Op == mpi.OpBarrier && ci.Comm == mpi.CommMarker {
		c.onMarker()
		return
	}
	if ci.Op == mpi.OpFinalize {
		return
	}
	c.rec.Record(ci, c.pre, 1)
}

// Recorder exposes the per-rank recorder (tests, space accounting).
func (c *Chameleon) Recorder() *tracer.Recorder { return c.rec }

// onMarker is the PMPI post-wrapper of the marker barrier: Algorithm 3's
// entry ("Increment Marker_Call_Counter; if counter % Call_Frequency !=
// 0 then return").
func (c *Chameleon) onMarker() {
	// The marker barrier itself is tool-inserted: book its tree-traversal
	// cost (the per-rank share of the barrier's message hops) as marker
	// overhead. The synchronization stall stays on the application clock
	// where it belongs — it is load imbalance the barrier merely exposes.
	model := c.p.Model()
	hops := vtime.Duration(vtime.Log2Ceil(c.groupSize()))
	c.p.Ledger.Charge(vtime.CatMarker, hops*(model.Alpha+model.CollectivePerLevel))
	c.markerCalls++
	if c.p.Rank() == 0 {
		c.met.markers.Inc()
	}
	// Live progress: the window count is the marker call count, and the
	// barrier-entry clock (saved by Pre) carries cross-rank skew the
	// barrier itself erases.
	c.o.Window(c.p.Rank(), uint64(c.markerCalls), c.pre)
	// Marker and clustering processing time must not leak into the
	// recorded inter-event computation deltas: exclude the whole marker
	// span (barrier entry through processing end) from the next delta,
	// keeping the application compute that preceded the marker.
	defer func(start vtime.Time) {
		c.rec.ExcludeSpan(vtime.Duration(c.p.Clock.Now() - start))
	}(c.pre)
	if c.markerCalls%c.opt.CallFrequency != 0 {
		return
	}
	c.engaged++
	if c.p.Rank() == 0 {
		c.met.engaged.Inc()
	}
	state := c.transition()
	c.stateCalls[state]++
	c.accountSpace(state)
	c.observeTransition(state)
	// Departures must be folded into the cluster table before any flush
	// at this marker: a merge tree spanning a dead lead would never
	// complete.
	c.handleDepartures()
	switch state {
	case StateC:
		c.runClustering()
		c.flushLeads(obs.FlushInitial)
		c.enterLeadPhase()
	case StateL:
		switch {
		case !c.steadyLead:
			// Phase change while leading: flush lead partials and
			// return everyone to all-tracing.
			c.flushLeads(obs.FlushPhaseChange)
			c.exitLeadPhase()
			c.failoverFlush = false
		case c.failoverFlush:
			// A lead died last window; its cluster re-traced for one
			// window and the promoted lead's partial flushes now.
			c.flushLeads(obs.FlushFailover)
			c.rec.Enabled = c.isLead
			c.failoverFlush = false
		}
	}
	c.steadyLead = false
}

// groupSize is the number of ranks participating in collective tracing
// steps: the survivors under fault injection, everyone otherwise.
func (c *Chameleon) groupSize() int {
	if alive := c.p.AliveRanks(); alive != nil {
		return len(alive)
	}
	return c.p.Size()
}

// observeTransition records one transition-graph step into the
// observability layer. Run-global series are emitted by rank 0 only
// (every rank computes the same state, so once is enough).
func (c *Chameleon) observeTransition(state State) {
	if c.p.Rank() != 0 {
		c.lastState, c.haveState = state, true
		return
	}
	c.met.transitions[state].Inc()
	c.met.state.Set(int64(state))
	from := ""
	if c.haveState {
		from = c.lastState.String()
	}
	c.o.Emit(obs.Event{
		Kind: obs.KindTransition, Rank: 0, VT: int64(c.p.Clock.Now()),
		Marker: c.markerCalls, From: from, To: state.String(),
	})
	c.lastState, c.haveState = state, true
}

// transition implements Algorithm 1. All ranks return the same state
// because of the Reduce+Bcast synchronization.
func (c *Chameleon) transition() State {
	model := c.p.Model()
	cur := c.rec.Win.Triple()
	c.curSig = cur
	c.met.windowEvents.Observe(int64(c.rec.Win.Events()))
	c.met.windowSites.Observe(int64(c.rec.Win.DistinctSites()))
	c.rec.Win.Reset()

	if !c.haveOld {
		// First time hitting the marker.
		c.oldCallPath = cur.CallPath
		c.haveOld = true
		return StateAT
	}
	mismatch := uint64(0)
	if c.oldCallPath != cur.CallPath {
		mismatch = 1
	}
	// The Reduce+Bcast vote: book its per-rank share of the O(log P)
	// message hops (the synchronization stall is already on the clock).
	// Under shrunken membership the vote runs over the survivors only and
	// carries the membership epoch in the payload's high bits, so a rank
	// voting on a stale view is caught immediately instead of corrupting
	// the mismatch sum.
	var glob uint64
	restore := c.p.CausalContext("vote", c.markerCalls)
	if alive := c.p.AliveRanks(); alive == nil {
		glob = c.p.MarkerComm().RawAllreduceU64(mismatch, mpi.OpSum)
	} else {
		epoch := uint64(c.p.Epoch())
		tot := mpi.GroupAllreduceU64(c.p, alive, voteTag(c.markerCalls),
			mismatch|epoch<<voteEpochShift, mpi.OpSum)
		if got, want := tot>>voteEpochShift, epoch*uint64(len(alive)); got != want {
			panic(fmt.Sprintf("core: vote epoch sum %d, want %d (rank %d epoch %d)",
				got, want, c.p.Rank(), epoch))
		}
		glob = tot & (1<<voteEpochShift - 1)
	}
	restore()
	hops := vtime.Duration(vtime.Log2Ceil(c.groupSize()))
	c.p.Ledger.Charge(vtime.CatMarker, hops*(model.Alpha+model.CollectivePerLevel))
	c.oldCallPath = cur.CallPath
	if c.p.Rank() == 0 {
		c.met.votes.Inc()
		c.met.voteMismatch.Add(glob)
		c.o.Emit(obs.Event{
			Kind: obs.KindVote, Rank: 0, VT: int64(c.p.Clock.Now()),
			Marker: c.markerCalls, Votes: obs.Vote(glob),
		})
	}

	if glob == 0 {
		if c.reclustering {
			c.reclustering = false
			return StateC
		}
		if c.inLeadPhase {
			// Lead phase without inter-compression: steady marker.
			c.steadyLead = true
			return StateL
		}
		return StateAT
	}
	if c.inLeadPhase {
		// Lead phase with inter-compression: flush.
		return StateL
	}
	c.reclustering = true
	return StateAT
}

// runClustering performs the distributed clustering of Algorithm 3's
// "Clustering" branch: gather signature items over the radix tree,
// cap each node's working set at K via Algorithm 2, and broadcast the
// final lead set.
func (c *Chameleon) runClustering() {
	p := c.p
	self := cluster.Item{
		Lead:  p.Rank(),
		Ranks: ranklist.SingleRank(p.Rank()),
		Sig:   c.curSig,
	}
	restore := p.CausalContext("cluster", c.markerCalls)
	top := cluster.DistributedSelectMembers(p, self, p.AliveRanks(),
		c.opt.K, c.opt.Algo, clusterTag(c.flushRound), vtime.CatCluster)
	restore()

	c.clusters = append(c.clusters[:0], top...)
	c.leads = c.leads[:0]
	c.isLead = false
	c.myCluster = ranklist.List{}
	c.myVariant = false
	paths := make(map[uint64]struct{})
	for _, it := range top {
		c.leads = append(c.leads, it.Lead)
		paths[it.Sig.CallPath] = struct{}{}
		if it.Lead == p.Rank() {
			c.isLead = true
			c.myCluster = it.Ranks
			c.myVariant = it.Variant
		}
	}

	if c.isLead {
		c.o.Emit(obs.Event{
			Kind: obs.KindLead, Rank: p.Rank(), VT: int64(p.Clock.Now()),
			Marker: c.markerCalls, Count: uint64(c.myCluster.Size()),
		})
	}
	if p.Rank() == 0 {
		c.col.mu.Lock()
		c.col.Reclusterings++
		c.col.LeadRanks = append([]int(nil), c.leads...)
		c.col.CallPathClusters = len(paths)
		c.col.mu.Unlock()
		c.met.reclusterings.Inc()
		c.met.leadCount.Set(int64(len(c.leads)))
		c.met.callPaths.Set(int64(len(paths)))
		c.o.Emit(obs.Event{
			Kind: obs.KindCluster, Rank: 0, VT: int64(p.Clock.Now()),
			Marker: c.markerCalls, K: c.opt.K,
			Leads: append([]int(nil), c.leads...),
			Count: uint64(len(paths)),
		})
	}
}

// handleDepartures folds newly crashed ranks into the cluster table.
// Every survivor sees the same membership view at the same marker (the
// injector is a shared failure-detector oracle) and the cluster table
// was broadcast, so all survivors take identical decisions without
// additional communication. Non-lead deaths retire the rank from its
// cluster rank list; a lead death re-runs the Algorithm 2 selection over
// the remaining members to promote a replacement, forces that cluster
// back to tracing (the promoted lead re-traces, representing the
// cluster), and arms a failover flush for the next steady marker. A
// cluster that dies entirely is dropped — its unflushed windows are
// lost, which the journal records rather than hiding.
func (c *Chameleon) handleDepartures() {
	p := c.p
	if p.AliveRanks() == nil {
		return
	}
	var newlyDead []int
	for r := 0; r < p.Size(); r++ {
		if p.Departed(r) && !c.deadSeen[r] {
			if c.deadSeen == nil {
				c.deadSeen = make(map[int]bool)
			}
			c.deadSeen[r] = true
			newlyDead = append(newlyDead, r)
		}
	}
	if len(newlyDead) == 0 {
		return
	}
	if p.Rank() == 0 {
		c.met.departures.Add(uint64(len(newlyDead)))
	}
	if len(c.clusters) == 0 {
		return
	}
	kept := c.clusters[:0]
	changed := false
	for _, it := range c.clusters {
		var survivors []int
		for _, r := range it.Ranks.Ranks() {
			if !p.Departed(r) {
				survivors = append(survivors, r)
			}
		}
		if len(survivors) == it.Ranks.Size() {
			kept = append(kept, it)
			continue
		}
		changed = true
		if !p.Departed(it.Lead) {
			// Non-lead death: retire the rank from the cluster list so
			// merged traces stay well-formed.
			it.Ranks = ranklist.FromRanks(survivors)
			if it.Lead == p.Rank() {
				c.myCluster = it.Ranks
			}
			kept = append(kept, it)
			continue
		}
		old := it.Lead
		if len(survivors) == 0 {
			// The lead died with its whole cluster; nothing to promote.
			if p.Rank() == 0 {
				c.met.failovers.Inc()
				c.o.Emit(obs.Event{
					Kind: obs.KindFailover, Rank: 0, VT: int64(p.Clock.Now()),
					Marker: c.markerCalls, Leads: []int{old}, Note: "cluster-lost",
				})
			}
			continue
		}
		// Re-run the Algorithm 2 selection over the remaining members to
		// pick the replacement lead (signatures are the cluster's, so
		// with identical items the selection is deterministic).
		cand := make([]cluster.Item, len(survivors))
		for i, r := range survivors {
			cand[i] = cluster.Item{Lead: r, Ranks: ranklist.SingleRank(r), Sig: it.Sig}
		}
		res := cluster.SelectLeads(cand, 1, c.opt.Algo)
		it.Lead = res.Top[0].Lead
		it.Ranks = ranklist.FromRanks(survivors)
		if it.Lead == p.Rank() {
			c.isLead = true
			c.myCluster = it.Ranks
			c.myVariant = it.Variant
			if c.inLeadPhase {
				// Force the cluster back to tracing for one window; the
				// failover flush next marker collects it.
				c.rec.Enabled = true
				c.rec.MarkEventBoundary()
			}
		}
		if c.inLeadPhase {
			c.failoverFlush = true
		}
		if p.Rank() == 0 {
			c.met.failovers.Inc()
			c.o.Emit(obs.Event{
				Kind: obs.KindFailover, Rank: 0, VT: int64(p.Clock.Now()),
				Marker: c.markerCalls, Leads: []int{old, it.Lead},
				Count: uint64(len(survivors)), Note: "promoted",
			})
		}
		kept = append(kept, it)
	}
	c.clusters = kept
	if !changed {
		return
	}
	c.leads = c.leads[:0]
	for _, it := range c.clusters {
		c.leads = append(c.leads, it.Lead)
	}
	if p.Rank() == 0 {
		c.col.mu.Lock()
		c.col.LeadRanks = append([]int(nil), c.leads...)
		c.col.mu.Unlock()
		c.met.leadCount.Set(int64(len(c.leads)))
	}
}

// flushLeads runs the online inter-node compression: lead partial traces
// (rank lists rewritten to cluster rank lists) merge over a radix tree
// of the K leads; the result folds into rank 0's online trace. Every
// rank then deletes its partial trace. The cause (initial clustering,
// phase change, finalize) is recorded in the journal.
func (c *Chameleon) flushLeads(cause string) {
	p := c.p
	model := p.Model()
	round := c.flushRound
	c.flushRound++
	// Name the merge tree's edges after the flush cause so the straggler
	// report separates initial, phase-change, failover, and final merges.
	defer p.CausalContext("merge:"+cause, round)()

	var partial []*trace.Node
	if c.isLead || (len(c.leads) == 0 && p.Rank() == 0) {
		mine := c.rec.TakePartial()
		if c.isLead && c.myVariant {
			trace.ResolveEndpoints(mine, p.Rank(), p.Size())
		}
		if c.isLead && !c.myCluster.Empty() {
			trace.RewriteRanks(mine, c.myCluster)
		}
		partial = tracer.MergeOverTree(p, c.leads, mine,
			c.opt.Filter, tracer.MergeTag(round+1), vtime.CatInterComp)
	} else {
		// Non-lead partials go nowhere; recycle their nodes.
		c.rec.DiscardPartial()
	}

	// Route the partial global trace to rank 0 ("if root of Top K list
	// != 0: send partial global trace to rank 0").
	rootLead := -1
	if len(c.leads) > 0 {
		rootLead = c.leads[0]
	}
	tag := onlineTag(round)
	switch {
	case rootLead == p.Rank() && rootLead != 0:
		t0 := p.Clock.Now()
		p.World().RawSend(0, tag, trace.SizeBytes(partial), partial)
		p.Ledger.Charge(vtime.CatInterComp, vtime.Duration(p.Clock.Now()-t0))
		partial = nil
	case p.Rank() == 0 && rootLead > 0:
		t0 := p.Clock.Now()
		msg := p.World().RawRecv(rootLead, tag)
		p.Ledger.Charge(vtime.CatInterComp, vtime.Duration(p.Clock.Now()-t0))
		partial, _ = msg.Payload.([]*trace.Node)
	}

	if p.Rank() == 0 && partial != nil {
		before := c.online.SizeBytes()
		c0 := c.online.Compares
		// Size the partial before appending: the online compressor owns
		// (and may fold and recycle) the nodes once appended.
		partialBytes := trace.SizeBytes(partial)
		for _, n := range partial {
			c.online.AppendNode(n)
		}
		p.ChargeOverhead(vtime.CatInterComp,
			vtime.Duration(c.online.Compares-c0)*model.ComparePerOp+
				vtime.Duration(partialBytes)*model.MergePerByte)
		if after := c.online.SizeBytes(); after > before {
			c.onlineAlloc += after - before
		}
	}
	if p.Rank() == 0 {
		c.met.flushes.Inc()
		c.met.onlineBytes.Set(int64(c.online.SizeBytes()))
		c.o.Emit(obs.Event{
			Kind: obs.KindFlush, Rank: 0, VT: int64(p.Clock.Now()),
			Marker: c.markerCalls, Round: round, Note: cause,
			Bytes: int64(c.online.SizeBytes()),
		})
	}
	// "All nodes: delete your partial trace" — TakePartial above already
	// detached it; restart delta-time tracking at this point.
	c.rec.MarkEventBoundary()
}

func (c *Chameleon) enterLeadPhase() {
	c.inLeadPhase = true
	c.rec.Enabled = c.isLead
	c.rec.MarkEventBoundary()
}

func (c *Chameleon) exitLeadPhase() {
	c.inLeadPhase = false
	c.isLead = false
	c.reclustering = true
	c.rec.Enabled = true
	c.rec.MarkEventBoundary()
}

// accountSpace attributes trace bytes allocated since the previous
// engaged marker to the state this marker produced (Table IV).
func (c *Chameleon) accountSpace(s State) {
	alloc := c.rec.AllocBytes + c.onlineAlloc
	c.spaceState[s] += alloc - c.allocSnap
	c.allocSnap = alloc
}

// Finalize implements mpi.Interposer: "at the end of the application,
// Algorithm 3 is called with a small modification ... re-clustering must
// be triggered but the inter-compression part remains the same."
func (c *Chameleon) Finalize() {
	c.curSig = c.rec.Win.Triple()
	c.rec.Win.Reset()
	if !c.inLeadPhase {
		// Forced re-clustering over the trailing all-tracing window.
		c.runClustering()
	}
	c.stateCalls[StateF]++
	c.accountSpace(StateF)
	c.observeTransition(StateF)
	c.flushLeads(obs.FlushFinal)
	c.o.Emit(obs.Event{
		Kind: obs.KindFinalize, Rank: c.p.Rank(), VT: int64(c.p.Clock.Now()),
		Count: c.rec.Events, Bytes: int64(c.rec.AllocBytes),
	})

	c.col.mu.Lock()
	defer c.col.mu.Unlock()
	c.col.SpaceByState[c.p.Rank()] = c.spaceState
	c.col.EventsObserved += c.rec.Observed
	c.col.EventsRecorded += c.rec.Events
	c.col.ObservedPerRank[c.p.Rank()] = c.rec.Observed
	c.col.RecordedPerRank[c.p.Rank()] = c.rec.Events
	if c.p.Rank() == 0 {
		c.col.StateCalls = c.stateCalls
		c.col.OnlineBytes = c.onlineAlloc
		c.p.ChargeOverhead(vtime.CatInterComp,
			vtime.Duration(c.online.SizeBytes())*c.p.Model().WritePerByte)
		c.col.Online = c.online.Seq
	}
}

func clusterTag(round int) int { return 1<<54 | round<<3 }
func onlineTag(round int) int  { return 1<<53 | round<<3 }

// voteTag namespaces the shrunken-membership vote per marker call.
func voteTag(marker int) int { return 1<<51 | marker<<4 }

// voteEpochShift positions the membership epoch in the vote payload's
// high bits. The mismatch sum is bounded by P < 2^20, and the epoch sum
// (epoch * survivors) stays below 2^40 after the shift, so the packed
// reduce can never overflow 64 bits.
const voteEpochShift = 20
