package core

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/vtime"
)

// anchoredApp is a marker-free iterative kernel with a per-timestep
// residual all-reduce — the recurring collective AutoMarker should
// discover and anchor on.
func anchoredApp(steps int) func(*mpi.Proc) {
	return func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < steps; it++ {
			p.Compute(100 * vtime.Microsecond)
			w.Sendrecv(next, 1, 256, nil, prev, 1)
			w.Allreduce(8, uint64(it), mpi.OpSum)
		}
	}
}

func runAuto(t *testing.T, p int, opt AutoOptions, body func(*mpi.Proc)) *Collector {
	t.Helper()
	col := NewCollector(p)
	if _, err := mpi.Run(mpi.Config{P: p, Hooks: NewAuto(col, opt)}, body); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestAutoMarkerClusters(t *testing.T) {
	col := runAuto(t, 8, AutoOptions{Options: Options{K: 3}}, anchoredApp(60))
	if col.Reclusterings != 1 {
		t.Fatalf("reclusterings = %d", col.Reclusterings)
	}
	if col.StateCalls[StateC] != 1 || col.StateCalls[StateL] == 0 {
		t.Fatalf("states = %v", col.StateCalls)
	}
	if len(col.Online) == 0 {
		t.Fatalf("no online trace")
	}
	if len(col.LeadRanks) != 3 {
		t.Fatalf("leads = %v", col.LeadRanks)
	}
}

func TestAutoMarkerFrequency(t *testing.T) {
	every := runAuto(t, 4, AutoOptions{Options: Options{K: 2}, Frequency: 1}, anchoredApp(60))
	sparse := runAuto(t, 4, AutoOptions{Options: Options{K: 2}, Frequency: 10}, anchoredApp(60))
	calls := func(c *Collector) int {
		return c.StateCalls[StateAT] + c.StateCalls[StateC] + c.StateCalls[StateL]
	}
	if calls(sparse) >= calls(every) {
		t.Fatalf("frequency did not reduce calls: %d vs %d", calls(sparse), calls(every))
	}
	if sparse.Reclusterings != 1 {
		t.Fatalf("sparse reclusterings = %d", sparse.Reclusterings)
	}
}

func TestAutoMarkerDetectAfter(t *testing.T) {
	// A high detection threshold delays anchoring, reducing engaged
	// marker calls.
	late := runAuto(t, 4, AutoOptions{Options: Options{K: 2}, ObserveFor: 55}, anchoredApp(60))
	early := runAuto(t, 4, AutoOptions{Options: Options{K: 2}, ObserveFor: 5}, anchoredApp(60))
	calls := func(c *Collector) int {
		return c.StateCalls[StateAT] + c.StateCalls[StateC] + c.StateCalls[StateL]
	}
	if calls(late) >= calls(early) {
		t.Fatalf("detection threshold had no effect: %d vs %d", calls(late), calls(early))
	}
}

func TestAutoMarkerNoCollectives(t *testing.T) {
	// Without any collective, AutoMarker never engages — the run must
	// still complete and flush everything at Finalize.
	col := runAuto(t, 4, AutoOptions{Options: Options{K: 2}}, func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < 20; it++ {
			w.Sendrecv(next, 1, 64, nil, prev, 1)
		}
	})
	if col.StateCalls[StateC] != 0 || col.StateCalls[StateF] != 1 {
		t.Fatalf("states = %v", col.StateCalls)
	}
	if len(col.Online) == 0 {
		t.Fatalf("finalize did not flush")
	}
	if col.EventsObserved != 4*20 {
		t.Fatalf("observed = %d", col.EventsObserved)
	}
}

func TestAutoMarkerMatchesManual(t *testing.T) {
	// The auto-anchored run must cover the same events as a manual
	// ScalaTrace-equivalent: per-rank dynamic counts in the online trace.
	const P = 8
	col := runAuto(t, P, AutoOptions{Options: Options{K: 3}}, anchoredApp(40))
	for r := 0; r < P; r++ {
		if got := dynamicFor(col.Online, r); got != 40*2 {
			t.Fatalf("rank %d covered %d events, want 80", r, got)
		}
	}
}
