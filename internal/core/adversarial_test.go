package core

import (
	"testing"

	"chameleon/internal/apps"
	"chameleon/internal/mpi"
	"chameleon/internal/vtime"
)

// TestNeverRepetitive drives the transition graph with a different
// Call-Path at every marker: clustering must never engage ("if in every
// marker call there is a different Call-Path ... Chameleon stays in
// state AT") and the Finalize-time forced clustering must still flush
// everything.
func TestNeverRepetitive(t *testing.T) {
	col := runChameleon(t, 4, Options{K: 2}, func(p *mpi.Proc) {
		w := p.World()
		for it := 0; it < 12; it++ {
			// The window content varies per step: it+1 allreduces.
			for k := 0; k <= it; k++ {
				w.Allreduce(8, uint64(k), mpi.OpSum)
			}
			apps.Marker(p)
		}
	})
	if got := col.StateCalls[StateC]; got != 0 {
		t.Fatalf("clustered %d times on never-repetitive input", got)
	}
	if col.StateCalls[StateAT] != 12 {
		t.Fatalf("AT = %d", col.StateCalls[StateAT])
	}
	// Finalize still produces a complete online trace.
	total := uint64(0)
	for it := 0; it < 12; it++ {
		total += uint64(it + 1)
	}
	for r := 0; r < 4; r++ {
		if got := dynamicFor(col.Online, r); got != total {
			t.Fatalf("rank %d covered %d events, want %d", r, got, total)
		}
	}
}

// TestAlternatingPhases flips between two behaviors every other marker:
// the vote alternates match/mismatch, so the system oscillates without
// ever reaching a steady lead phase collapse, and no events are lost.
func TestAlternatingPhases(t *testing.T) {
	col := runChameleon(t, 4, Options{K: 2}, func(p *mpi.Proc) {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		for it := 0; it < 20; it++ {
			if it%2 == 0 {
				w.Sendrecv(next, 1, 64, nil, prev, 1)
			} else {
				w.Allreduce(8, uint64(it), mpi.OpSum)
			}
			apps.Marker(p)
		}
	})
	for r := 0; r < 4; r++ {
		if got := dynamicFor(col.Online, r); got != 20 {
			t.Fatalf("rank %d covered %d events, want 20", r, got)
		}
	}
}

// TestSingleRank runs Chameleon degenerately on one rank.
func TestSingleRank(t *testing.T) {
	col := runChameleon(t, 1, Options{K: 1}, func(p *mpi.Proc) {
		for it := 0; it < 10; it++ {
			p.Compute(vtime.Microsecond)
			p.World().Barrier()
			apps.Marker(p)
		}
	})
	if col.StateCalls[StateC] != 1 {
		t.Fatalf("states: %v", col.StateCalls)
	}
	if dynamicFor(col.Online, 0) != 10 {
		t.Fatalf("events = %d", dynamicFor(col.Online, 0))
	}
}

// TestKOne clusters everything into a single lead.
func TestKOne(t *testing.T) {
	col := runChameleon(t, 8, Options{K: 1}, ringApp(60, 10))
	if len(col.LeadRanks) != 1 {
		t.Fatalf("leads = %v", col.LeadRanks)
	}
	for r := 0; r < 8; r++ {
		if got := dynamicFor(col.Online, r); got != 60 {
			t.Fatalf("rank %d covered %d events", r, got)
		}
	}
}

// TestMarkerOnlyApp traces a program whose only MPI activity is the
// marker itself: windows are empty, signatures are zero, and the run
// must not crash or cluster spuriously... it may cluster (empty windows
// match) but must produce an empty online trace without error.
func TestMarkerOnlyApp(t *testing.T) {
	col := runChameleon(t, 4, Options{K: 2}, func(p *mpi.Proc) {
		for it := 0; it < 5; it++ {
			apps.Marker(p)
		}
	})
	if got := dynamicFor(col.Online, 0); got != 0 {
		t.Fatalf("phantom events: %d", got)
	}
}

// TestTracerPanicSurfaced ensures a panic inside application code under
// tracing aborts the run with an error instead of deadlocking the
// tracing collectives.
func TestTracerPanicSurfaced(t *testing.T) {
	col := NewCollector(4)
	_, err := mpi.Run(mpi.Config{P: 4, Hooks: New(col, Options{K: 2})}, func(p *mpi.Proc) {
		w := p.World()
		for it := 0; it < 10; it++ {
			w.Allreduce(8, uint64(it), mpi.OpSum)
			if it == 5 && p.Rank() == 2 {
				panic("injected failure")
			}
			apps.Marker(p)
		}
	})
	if err == nil {
		t.Fatalf("injected failure not reported")
	}
}
